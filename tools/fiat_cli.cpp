// fiat — command-line front end for the FIAT library.
//
//   fiat analyze <capture.pcap> [--device IP] [--classic] [--mud out.json]
//       Predictability report for a packet capture; optionally export the
//       device's MUD profile (RFC 8520-shaped JSON).
//
//   fiat simulate --device EchoDot4 [--days 2] [--seed 1] [--location US]
//                 [--manual-per-day 4] --out trace.pcap
//       Generate a synthetic testbed trace and write it as a pcap.
//
//   fiat registry build --out models.bin [--days 10]
//       Train per-device classifiers on synthetic lab traces for all ten
//       testbed devices and publish a model-registry file (§7).
//
//   fiat registry list <models.bin>
//       Show the (device, version) entries of a registry file.
//
//   fiat fleet [--homes N] [--shards K] [--devices D] [--days X] [--seed S]
//              [--capacity C] [--shed] [--no-proofs] [--report-homes H]
//              [--telemetry-json PATH] [--telemetry-prom PATH]
//              [--telemetry-wall] [--trace-json PATH] [--trace-capacity T]
//              [--no-batch] [--simd on|off|auto]
//       Synthesize an N-home fleet, run it through the sharded FleetEngine,
//       and print the merged security report plus runtime counters.
//       Shards drain their queues through the batch pipeline (DESIGN.md
//       §15) by default; --no-batch forces the per-item scalar loop and
//       --simd controls the vector kernels — results are byte-identical in
//       every combination.
//       --telemetry-json writes the merged metrics snapshot (deterministic
//       under a fixed seed; add --telemetry-wall to include host wall-clock
//       metrics, which vary run to run). --trace-json writes Chrome
//       trace-event JSON, loadable in Perfetto (ui.perfetto.dev).
//       --correlate runs the fleet correlation observatory (DESIGN.md §14)
//       over the per-home behavioral signals and prints flagged
//       campaign-level actors; --correlation-json writes the deterministic
//       CorrelationReport document.
//
//   fiat cluster [--nodes N] [--homes H] [--zipf-skew Z] [--kill-node K
//                --kill-at T --detect-after W] [--rebalance-every T] ...
//       Run the fleet on the multi-node cluster tier (DESIGN.md §12): live
//       home migration, node-failure failover from the durable stores, and
//       the load-aware rebalancer. Prints the merged report plus the
//       control-plane summary.
//
//   fiat devices
//       List the built-in device profiles and their properties.
#include <algorithm>
#include <cstdio>
#include <map>

#include "core/event_dataset.hpp"
#include "core/humanness.hpp"
#include "core/manual_classifier.hpp"
#include "core/model_registry.hpp"
#include "core/mud.hpp"
#include "core/predictability.hpp"
#include "fleet/cli_options.hpp"
#include "fleet/cluster.hpp"
#include "fleet/engine.hpp"
#include "fleet/fleet_testbed.hpp"
#include "gen/testbed.hpp"
#include "net/pcap.hpp"
#include "telemetry/export.hpp"
#include "util/error.hpp"
#include "util/flags.hpp"
#include "util/json.hpp"

using namespace fiat;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  fiat analyze <capture.pcap> [--device IP] [--classic] [--mud out.json]\n"
               "  fiat simulate --device NAME [--days N] [--seed S] [--location US|JP|DE|IL]\n"
               "                [--manual-per-day R] --out trace.pcap\n"
               "  fiat registry build --out models.bin [--days N]\n"
               "  fiat registry list <models.bin>\n"
               "  fiat fleet [--homes N] [--shards K] [--devices D] [--days X] [--seed S]\n"
               "             [--capacity C] [--shed] [--no-proofs] [--report-homes H]\n"
               "             [--telemetry-json PATH] [--telemetry-prom PATH]\n"
               "             [--telemetry-wall] [--trace-json PATH] [--trace-capacity T]\n"
               "             [--snapshot-every SIM_S] [--crash-at ITEM]\n"
               "             [--crash-home HOME:ITEM]\n"
               "             [--no-batch] [--simd on|off|auto]\n"
               "             [--attack-coverage F] [--sybil-frac F]\n"
               "             [--attack-attempts N] [--attack-spacing S]\n"
               "             [--attack-seed S] [--attack-class NAME]\n"
               "             [--correlate] [--correlation-json PATH]\n"
               "             [--correlate-min-homes M] [--correlate-min-replays R]\n"
               "             [--correlate-epsilon E] [--correlate-min-cohort C]\n"
               "             [--churn-join F] [--churn-rotate-every SIM_S]\n"
               "             [--churn-revoke F] [--churn-revoke-at F]\n"
               "             [--churn-window SIM_S]\n"
               "  fiat cluster [--nodes N] [--homes H] [--devices D] [--days X] [--seed S]\n"
               "               [--capacity C] [--shed] [--no-proofs] [--report-homes H]\n"
               "               [--zipf-skew Z] [--zipf-max-devices M]\n"
               "               [--snapshot-every SIM_S] [--retention K] [--no-journal]\n"
               "               [--kill-node K --kill-at T] [--detect-after W]\n"
               "               [--cold-failover] [--rebalance-every T]\n"
               "               [--rebalance-top N] [--rebalance-ratio R]\n"
               "               [--telemetry-json PATH] [--telemetry-prom PATH]\n"
               "               [--telemetry-wall]\n"
               "               [--attack-coverage F] [--sybil-frac F]\n"
               "               [--attack-attempts N] [--attack-spacing S]\n"
               "               [--attack-seed S] [--attack-class NAME]\n"
               "               [--correlate] [--correlation-json PATH]\n"
               "               [--correlate-min-homes M] [--correlate-min-replays R]\n"
               "               [--correlate-epsilon E] [--correlate-min-cohort C]\n"
               "               [--churn-join F] [--churn-rotate-every SIM_S]\n"
               "               [--churn-revoke F] [--churn-revoke-at F]\n"
               "               [--churn-window SIM_S]\n"
               "  fiat devices\n");
  return 2;
}

net::Ipv4Addr guess_device(const std::vector<net::PacketRecord>& packets) {
  std::map<std::uint32_t, std::size_t> counts;
  for (const auto& pkt : packets) {
    if (pkt.src_ip.is_private()) counts[pkt.src_ip.value()]++;
    if (pkt.dst_ip.is_private()) counts[pkt.dst_ip.value()]++;
  }
  std::uint32_t best = 0;
  std::size_t best_count = 0;
  for (auto [ip, count] : counts) {
    if (count > best_count) {
      best = ip;
      best_count = count;
    }
  }
  return net::Ipv4Addr(best);
}

int cmd_analyze(const util::Flags& flags) {
  if (flags.positional().size() < 2) return usage();
  auto packets = net::read_pcap_records(flags.positional()[1]);
  if (packets.empty()) {
    std::fprintf(stderr, "no IPv4 packets in %s\n", flags.positional()[1].c_str());
    return 1;
  }
  net::Ipv4Addr device = flags.get("device")
                             ? net::Ipv4Addr::parse(*flags.get("device"))
                             : guess_device(packets);
  net::ReverseResolver reverse;
  core::PredictabilityConfig config;
  config.mode = flags.has("classic") ? core::FlowMode::kClassic
                                     : core::FlowMode::kPortLess;
  config.reverse = &reverse;
  auto result = core::analyze_predictability(packets, device, config);
  std::printf("device %s: %zu packets, %.1f%% predictable (%s), %zu buckets\n",
              device.str().c_str(), packets.size(), 100.0 * result.ratio(),
              core::flow_mode_name(config.mode), result.buckets.size());
  auto events = core::group_events(packets, result.predictable);
  std::printf("unpredictable events (5 s grouping): %zu\n", events.size());

  if (auto mud_path = flags.get("mud")) {
    auto profile = core::derive_mud_profile(packets, device, "captured-device");
    std::FILE* f = std::fopen(mud_path->c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", mud_path->c_str());
      return 1;
    }
    auto json = profile.to_json();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("MUD profile (%zu ACL entries) written to %s\n",
                profile.entries.size(), mud_path->c_str());
  }
  return 0;
}

int cmd_simulate(const util::Flags& flags) {
  auto device = flags.get("device");
  auto out = flags.get("out");
  if (!device || !out) return usage();
  gen::LocationEnv env(flags.get_or("location", "US"));
  gen::TraceConfig config;
  config.duration_days = flags.number_or("days", 2.0);
  config.seed = static_cast<std::uint64_t>(flags.number_or("seed", 1.0));
  config.manual_per_day_override = flags.number_or("manual-per-day", -1.0);
  auto trace = gen::generate_trace(gen::profile_by_name(*device), env, config);
  std::vector<net::PacketRecord> records;
  records.reserve(trace.packets.size());
  for (const auto& lp : trace.packets) records.push_back(lp.pkt);
  net::write_pcap_records(*out, records);
  std::printf("%s: %zu packets over %.1f days -> %s\n", device->c_str(),
              records.size(), config.duration_days, out->c_str());
  return 0;
}

int cmd_registry(const util::Flags& flags) {
  if (flags.positional().size() < 2) return usage();
  const std::string& action = flags.positional()[1];

  if (action == "list") {
    if (flags.positional().size() < 3) return usage();
    auto registry = core::ModelRegistry::load_file(flags.positional()[2]);
    std::printf("%zu models:\n", registry.size());
    for (const auto& [model, version] : registry.keys()) {
      std::printf("  %-12s %s\n", model.c_str(), version.c_str());
    }
    return 0;
  }

  if (action == "build") {
    auto out = flags.get("out");
    if (!out) return usage();
    double days = flags.number_or("days", 10.0);
    core::ModelRegistry registry;
    std::uint32_t index = 0;
    for (const auto& profile : gen::testbed_profiles()) {
      if (profile.simple_rule) {
        registry.put(profile.name, "fw-1.0",
                     core::ManualEventClassifier::simple_rule(profile.rule_packet_size));
        std::printf("  %-12s simple rule (%u B)\n", profile.name.c_str(),
                    profile.rule_packet_size);
      } else {
        gen::LocationEnv env("US");
        gen::TraceConfig config;
        config.duration_days = days;
        config.seed = 5000 + index;
        config.device_index = index;
        config.manual_per_day_override = 6.0;
        auto trace = gen::generate_trace(profile, env, config);
        registry.put(profile.name, "fw-1.0",
                     core::ManualEventClassifier::train(
                         core::extract_labeled_events(trace), trace.device_ip));
        std::printf("  %-12s BernoulliNB trained on %zu packets\n",
                    profile.name.c_str(), trace.packets.size());
      }
      ++index;
    }
    registry.save_file(*out);
    std::printf("registry (%zu models, %zu bytes) -> %s\n", registry.size(),
                registry.save().size(), out->c_str());
    return 0;
  }
  return usage();
}

fleet::FleetScenario synthesize(const fleet::FleetScenarioConfig& config) {
  std::printf("synthesizing %zu homes x %zu devices, %.2f days...\n",
              config.homes, config.devices_per_home, config.duration_days);
  auto scenario = fleet::make_fleet_scenario(config);
  std::printf("  %zu packets + %zu proofs across %zu homes\n",
              scenario.packet_count, scenario.proof_count,
              scenario.homes.size());
  if (config.attack.enabled()) {
    std::printf(
        "  campaign: %zu attacked homes, %zu sybil homes, %llu attack "
        "packets + %llu attack proofs, %zu commands\n",
        scenario.attack.attacked_homes.size(),
        scenario.attack.sybil_homes.size(),
        static_cast<unsigned long long>(scenario.attack.packets),
        static_cast<unsigned long long>(scenario.attack.proofs),
        scenario.attack.commands.size());
  }
  if (config.churn.enabled()) {
    std::printf(
        "  churn: %zu affected homes, %llu lifecycle commands "
        "(%llu enroll, %llu rotate, %llu revoke), window %.0fs\n",
        scenario.churn.homes.size(),
        static_cast<unsigned long long>(scenario.churn.lifecycle_commands),
        static_cast<unsigned long long>(scenario.churn.enrollments),
        static_cast<unsigned long long>(scenario.churn.rotations),
        static_cast<unsigned long long>(scenario.churn.revocations),
        scenario.churn.revocation_window);
  }
  return scenario;
}

void print_latency_summaries(const telemetry::MetricsRegistry& metrics) {
  if (const auto* h = metrics.find_histogram("proxy.decision_latency_seconds")) {
    std::printf(
        "decision latency (sim): n=%zu p50=%.6g p95=%.6g p99=%.6g s\n",
        static_cast<std::size_t>(h->count()), h->quantile(0.5),
        h->quantile(0.95), h->quantile(0.99));
  }
  if (const auto* h = metrics.find_histogram("fleet.queue_wait_seconds")) {
    std::printf("queue wait (wall): n=%zu p50=%.6g p95=%.6g p99=%.6g s\n",
                static_cast<std::size_t>(h->count()), h->quantile(0.5),
                h->quantile(0.95), h->quantile(0.99));
  }
}

int export_telemetry(const util::Flags& flags,
                     const telemetry::MetricsRegistry& metrics) {
  bool include_wall = flags.has("telemetry-wall");
  if (auto path = flags.get("telemetry-json")) {
    if (!util::write_json_file(*path, telemetry::metrics_json(metrics, include_wall))) {
      std::fprintf(stderr, "cannot write %s\n", path->c_str());
      return 1;
    }
    std::printf("telemetry snapshot (%s) -> %s\n",
                include_wall ? "sim+wall" : "sim only, deterministic",
                path->c_str());
  }
  if (auto path = flags.get("telemetry-prom")) {
    std::string text = telemetry::prometheus_text(metrics, include_wall);
    std::FILE* f = std::fopen(path->c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", path->c_str());
      return 1;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("prometheus text -> %s\n", path->c_str());
  }
  return 0;
}

/// Shared tail of `fleet` / `cluster` --correlate handling: print the
/// correlation report and, when requested, write the JSON document.
int emit_correlation(const fleet::CorrelateOptions& opts,
                     const fleet::CorrelationReport& correlation) {
  std::fputs(correlation.render().c_str(), stdout);
  if (opts.json_path.empty()) return 0;
  if (!util::write_json_file(opts.json_path, correlation.to_json())) {
    std::fprintf(stderr, "cannot write %s\n", opts.json_path.c_str());
    return 1;
  }
  std::printf("correlation report (%zu homes flagged) -> %s\n",
              correlation.flagged_homes(), opts.json_path.c_str());
  return 0;
}

int cmd_fleet(const util::Flags& flags) {
  auto scenario_config = fleet::parse_scenario_flags(flags);
  auto fleet_config = fleet::parse_fleet_flags(flags, scenario_config.homes);
  auto correlate_opts = fleet::parse_correlate_flags(flags, "fleet");
  scenario_config.churn = fleet::parse_churn_flags(flags, "fleet");
  auto scenario = synthesize(scenario_config);

  auto humanness = core::HumannessVerifier::train_synthetic(scenario_config.seed);
  fleet::FleetEngine engine(std::move(scenario.homes), humanness, fleet_config);
  engine.start();
  for (auto& item : scenario.items) engine.ingest(std::move(item));
  engine.drain();

  auto report = engine.report();
  fleet::CorrelationReport correlation;
  if (correlate_opts.enabled) {
    correlation = fleet::correlate(engine.signals(), correlate_opts.config);
    engine.annotate_stats(report.stats, correlation);
  }
  auto max_homes = static_cast<std::size_t>(flags.number_or("report-homes", 8.0));
  std::fputs(report.render(max_homes).c_str(), stdout);
  if (const auto* supervisor = engine.supervisor()) {
    std::fputs(supervisor->render().c_str(), stdout);
  }
  if (correlate_opts.enabled) {
    if (int rc = emit_correlation(correlate_opts, correlation)) return rc;
  }

  auto metrics = engine.merged_metrics();
  if (correlate_opts.enabled) correlation.rollups_into(metrics);
  print_latency_summaries(metrics);
  if (int rc = export_telemetry(flags, metrics)) return rc;
  if (auto path = flags.get("trace-json")) {
    auto spans = engine.merged_trace();
    if (!util::write_json_file(*path, telemetry::chrome_trace_json(spans))) {
      std::fprintf(stderr, "cannot write %s\n", path->c_str());
      return 1;
    }
    std::printf("trace (%zu spans) -> %s (load in ui.perfetto.dev)\n",
                spans.size(), path->c_str());
  }
  return 0;
}

int cmd_cluster(const util::Flags& flags) {
  auto scenario_config = fleet::parse_scenario_flags(flags);
  auto cluster_config = fleet::parse_cluster_flags(flags);
  auto correlate_opts = fleet::parse_correlate_flags(flags, "cluster");
  scenario_config.churn = fleet::parse_churn_flags(flags, "cluster");
  auto scenario = synthesize(scenario_config);

  auto humanness = core::HumannessVerifier::train_synthetic(scenario_config.seed);
  fleet::ClusterEngine engine(std::move(scenario.homes), humanness,
                              cluster_config);
  engine.start();
  for (auto& item : scenario.items) engine.ingest(std::move(item));
  engine.drain();

  auto report = engine.report();
  fleet::CorrelationReport correlation;
  if (correlate_opts.enabled) {
    correlation = fleet::correlate(engine.signals(), correlate_opts.config);
    engine.annotate_stats(report.stats, correlation);
  }
  auto max_homes = static_cast<std::size_t>(flags.number_or("report-homes", 8.0));
  std::fputs(report.render(max_homes).c_str(), stdout);
  std::fputs(engine.render_control_plane().c_str(), stdout);
  if (correlate_opts.enabled) {
    if (int rc = emit_correlation(correlate_opts, correlation)) return rc;
  }

  auto metrics = engine.merged_metrics();
  if (correlate_opts.enabled) correlation.rollups_into(metrics);
  print_latency_summaries(metrics);
  return export_telemetry(flags, metrics);
}

int cmd_devices() {
  std::printf("%-12s %-11s %-10s %s\n", "device", "classifier", "cmd-N", "routines");
  for (const auto& profile : gen::testbed_profiles()) {
    std::printf("%-12s %-11s %-10d %zu\n", profile.name.c_str(),
                profile.simple_rule ? "rule" : "BernoulliNB",
                profile.min_command_packets, profile.routines.size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    auto flags = util::Flags::parse(argc, argv);
    if (flags.positional().empty()) return usage();
    const std::string& command = flags.positional()[0];
    if (command == "analyze") return cmd_analyze(flags);
    if (command == "simulate") return cmd_simulate(flags);
    if (command == "registry") return cmd_registry(flags);
    if (command == "fleet") return cmd_fleet(flags);
    if (command == "cluster") return cmd_cluster(flags);
    if (command == "devices") return cmd_devices();
    return usage();
  } catch (const fiat::Error& e) {
    std::fprintf(stderr, "fiat: %s\n", e.what());
    return 1;
  }
}
