// fiat_json_validate — strict RFC 8259 check for one or more JSON files.
//
// Exists so ci.sh can validate the CLI's telemetry/trace exports without
// depending on python or jq being in the image. Exit 0 iff every file
// parses; prints the first error (with byte offset) otherwise.
#include <cstdio>
#include <string>

#include "util/json.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: fiat_json_validate FILE...\n");
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    std::FILE* f = std::fopen(argv[i], "rb");
    if (!f) {
      std::fprintf(stderr, "%s: cannot open\n", argv[i]);
      rc = 1;
      continue;
    }
    std::string text;
    char buf[65536];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    std::fclose(f);
    std::string error;
    if (!fiat::util::json_valid(text, &error)) {
      std::fprintf(stderr, "%s: invalid JSON: %s\n", argv[i], error.c_str());
      rc = 1;
    } else {
      std::printf("%s: valid JSON (%zu bytes)\n", argv[i], text.size());
    }
  }
  return rc;
}
