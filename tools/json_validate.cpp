// fiat_json_validate — strict RFC 8259 check for one or more JSON files.
//
// Exists so ci.sh can validate the CLI's telemetry/trace exports without
// depending on python or jq being in the image. Exit 0 iff every file
// parses; prints the first error (with byte offset) otherwise.
//
// With --schema-version N, each file must additionally carry a top-level
// "schema_version": N field (the telemetry/export.cpp emitter writes one),
// so CI catches format skew, not just syntax errors.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/json.hpp"

namespace {

// The emitters are ours (util::Json, indent 2, top-level field first-ish),
// so a structural substring check suffices — no full JSON DOM needed. Accept
// any spacing around the colon that json_valid already vetted.
bool has_schema_version(const std::string& text, long version) {
  char needle[64];
  std::snprintf(needle, sizeof(needle), "\"schema_version\": %ld", version);
  return text.find(needle) != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  long schema_version = -1;
  int first_file = 1;
  if (argc >= 3 && std::string(argv[1]) == "--schema-version") {
    char* end = nullptr;
    schema_version = std::strtol(argv[2], &end, 10);
    if (!end || *end != '\0' || schema_version < 0) {
      std::fprintf(stderr, "fiat_json_validate: bad --schema-version value\n");
      return 2;
    }
    first_file = 3;
  }
  if (first_file >= argc) {
    std::fprintf(stderr,
                 "usage: fiat_json_validate [--schema-version N] FILE...\n");
    return 2;
  }
  int rc = 0;
  for (int i = first_file; i < argc; ++i) {
    std::FILE* f = std::fopen(argv[i], "rb");
    if (!f) {
      std::fprintf(stderr, "%s: cannot open\n", argv[i]);
      rc = 1;
      continue;
    }
    std::string text;
    char buf[65536];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    std::fclose(f);
    std::string error;
    if (!fiat::util::json_valid(text, &error)) {
      std::fprintf(stderr, "%s: invalid JSON: %s\n", argv[i], error.c_str());
      rc = 1;
    } else if (schema_version >= 0 && !has_schema_version(text, schema_version)) {
      std::fprintf(stderr, "%s: missing \"schema_version\": %ld\n", argv[i],
                   schema_version);
      rc = 1;
    } else {
      std::printf("%s: valid JSON (%zu bytes)\n", argv[i], text.size());
    }
  }
  return rc;
}
