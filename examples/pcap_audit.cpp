// pcap_audit: predictability report for a packet capture.
//
// This is the "point FIAT at your own tcpdump" workflow: read a .pcap, pick
// the device (the most-talkative private address unless one is given), run
// the §2.1 heuristic under both flow definitions, and print a per-flow
// report plus the unpredictable events the FIAT proxy would have had to
// classify.
//
// Usage:
//   ./build/examples/pcap_audit                      # self-demo: writes and
//                                                    # audits a synthetic pcap
//   ./build/examples/pcap_audit capture.pcap [device-ip]
#include <algorithm>
#include <cstdio>
#include <map>

#include "core/event_dataset.hpp"
#include "core/predictability.hpp"
#include "gen/testbed.hpp"
#include "net/pcap.hpp"

using namespace fiat;

namespace {

std::string make_demo_pcap() {
  gen::LocationEnv env("US");
  gen::TraceConfig config;
  config.duration_days = 0.25;  // six hours
  config.seed = 99;
  config.manual_per_day_override = 20.0;
  auto trace = gen::generate_trace(gen::profile_by_name("WyzeCam"), env, config);
  std::vector<net::PacketRecord> records;
  records.reserve(trace.packets.size());
  for (const auto& lp : trace.packets) records.push_back(lp.pkt);
  std::string path = "/tmp/fiat_demo_wyzecam.pcap";
  net::write_pcap_records(path, records);
  std::printf("(no capture given: wrote a 6-hour synthetic WyzeCam capture to %s)\n\n",
              path.c_str());
  return path;
}

net::Ipv4Addr guess_device(const std::vector<net::PacketRecord>& packets) {
  std::map<std::uint32_t, std::size_t> counts;
  for (const auto& p : packets) {
    if (p.src_ip.is_private()) counts[p.src_ip.value()]++;
    if (p.dst_ip.is_private()) counts[p.dst_ip.value()]++;
  }
  std::uint32_t best = 0;
  std::size_t best_count = 0;
  for (auto [ip, count] : counts) {
    if (count > best_count) {
      best = ip;
      best_count = count;
    }
  }
  return net::Ipv4Addr(best);
}

}  // namespace

int main(int argc, char** argv) {
  std::string path = argc > 1 ? argv[1] : make_demo_pcap();
  auto packets = net::read_pcap_records(path);
  if (packets.empty()) {
    std::fprintf(stderr, "no IPv4 packets in %s\n", path.c_str());
    return 1;
  }
  net::Ipv4Addr device =
      argc > 2 ? net::Ipv4Addr::parse(argv[2]) : guess_device(packets);
  std::printf("capture: %zu packets over %.1f min; device: %s\n\n", packets.size(),
              (packets.back().ts - packets.front().ts) / 60.0, device.str().c_str());

  net::ReverseResolver reverse;
  for (auto mode : {core::FlowMode::kClassic, core::FlowMode::kPortLess}) {
    core::PredictabilityConfig config;
    config.mode = mode;
    config.reverse = &reverse;
    auto result = core::analyze_predictability(packets, device, config);
    std::printf("%-9s: %5.1f%% predictable (%zu buckets)\n",
                core::flow_mode_name(mode), 100.0 * result.ratio(),
                result.buckets.size());
    if (mode == core::FlowMode::kPortLess) {
      // Top flows by volume.
      std::vector<std::pair<std::string, core::BucketStats>> flows(
          result.buckets.begin(), result.buckets.end());
      std::sort(flows.begin(), flows.end(), [](const auto& a, const auto& b) {
        return a.second.packets > b.second.packets;
      });
      std::printf("\n%-52s %8s %12s %10s\n", "flow", "packets", "predictable",
                  "interval");
      for (std::size_t i = 0; i < 8 && i < flows.size(); ++i) {
        const auto& [key, stats] = flows[i];
        std::printf("%-52.52s %8zu %11.1f%% %9.1fs\n", key.c_str(), stats.packets,
                    100.0 * static_cast<double>(stats.predictable) /
                        static_cast<double>(stats.packets),
                    stats.max_matched_interval);
      }

      // The unpredictable residue FIAT's classifier would see.
      auto events = core::group_events(packets, result.predictable);
      std::printf("\nunpredictable events (5 s grouping): %zu\n", events.size());
      std::size_t shown = 0;
      for (const auto& event : events) {
        if (++shown > 5) break;
        std::printf("  t=%9.1fs  %2zu packets, first %u B %s\n", event.start(),
                    event.packets.size(), event.packets.front().size,
                    event.packets.front().outbound_from(device) ? "outbound"
                                                                : "inbound");
      }
      if (events.size() > 5) std::printf("  ... %zu more\n", events.size() - 5);
    }
  }
  return 0;
}
