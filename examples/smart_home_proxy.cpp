// Smart-home scenario: a full FIAT deployment defending three devices.
//
// The story (the paper's §1 motivation + §7 attack discussion):
//   1. A household runs a smart plug, a camera, and a speaker behind one
//      FIAT proxy. The proxy bootstraps for 20 minutes, learning rules.
//   2. The phone is paired; the user toggles the plug — FIAT sees the
//      humanness proof and lets the command through.
//   3. A remote attacker who compromised the IoT account sends the same
//      command with no human at the phone — dropped, alert raised.
//   4. The attacker brute-forces; the device is disconnected (lockout).
//   5. An Alexa->plug DAG rule lets hub-initiated automations through.
//   6. A §7 "piggyback" attacker synchronizes with a real user interaction —
//      and succeeds, demonstrating the documented residual risk.
//
// Run: ./build/examples/smart_home_proxy
#include <cstdio>

#include "core/humanness.hpp"
#include "core/manual_classifier.hpp"
#include "core/proxy.hpp"
#include "core/report.hpp"
#include "gen/sensors.hpp"

using namespace fiat;

namespace {

const net::Ipv4Addr kPlug(192, 168, 1, 101);
const net::Ipv4Addr kCamera(192, 168, 1, 102);
const net::Ipv4Addr kSpeaker(192, 168, 1, 103);
const net::Ipv4Addr kAlexa(192, 168, 1, 104);
const net::Ipv4Addr kCloud(52, 20, 30, 40);

net::PacketRecord heartbeat(net::Ipv4Addr device, double ts) {
  net::PacketRecord p;
  p.ts = ts;
  p.size = 120;
  p.src_ip = device;
  p.dst_ip = kCloud;
  p.src_port = 50000;
  p.dst_port = 443;
  p.proto = net::Transport::kTcp;
  return p;
}

net::PacketRecord command(net::Ipv4Addr device, double ts, std::uint32_t size = 235,
                          net::Ipv4Addr from = kCloud) {
  net::PacketRecord p;
  p.ts = ts;
  p.size = size;
  p.src_ip = from;
  p.dst_ip = device;
  p.src_port = 443;
  p.dst_port = 50001;
  p.proto = net::Transport::kTcp;
  return p;
}

const char* verdict_name(core::Verdict v) {
  return v == core::Verdict::kAllow ? "ALLOW" : "DROP";
}

}  // namespace

int main() {
  std::printf("== FIAT smart-home walkthrough ==\n\n");

  core::ProxyConfig config;
  config.bootstrap_duration = 1200.0;  // the paper's 20 minutes
  core::FiatProxy proxy(config, core::HumannessVerifier::train_synthetic(2024));

  for (auto [name, ip, rule, app] :
       {std::tuple{"plug", kPlug, 235u, "com.teckin.app"},
        std::tuple{"camera", kCamera, 412u, "com.wyze.app"},
        std::tuple{"speaker", kSpeaker, 318u, "com.amazon.alexa"}}) {
    core::ProxyDevice dev;
    dev.name = name;
    dev.ip = ip;
    dev.allowed_prefix = 0;
    dev.classifier = core::ManualEventClassifier::simple_rule(rule);
    dev.app_package = app;
    proxy.add_device(dev);
  }
  std::vector<std::uint8_t> psk(32, 0x99);
  proxy.pair_phone("family-phone", psk);
  proxy.add_dag_edge(kAlexa, kPlug);  // "Alexa, turn on the plug"

  // 1. Bootstrap: heartbeats every 30 s for 20 minutes.
  for (double t = 0; t <= 1260; t += 30) {
    for (auto device : {kPlug, kCamera, kSpeaker}) proxy.process(heartbeat(device, t));
  }
  std::printf("[bootstrap] learned %zu rules across 3 devices\n\n", proxy.rule_count());

  crypto::KeyStore phone_tee;
  auto key = phone_tee.import_key(psk, "pairing");
  sim::Rng rng(5);
  std::uint64_t seq = 1;
  auto send_proof = [&](double now, const char* app, bool human) {
    core::AuthMessage msg;
    msg.app_package = app;
    msg.capture_time = now;
    gen::SensorConfig clean;
    clean.gentle_human_prob = 0.0;
    clean.noisy_machine_prob = 0.0;
    msg.features = gen::sensor_features(gen::generate_sensor_trace(rng, human, clean));
    auto sealed = core::seal_auth_message(phone_tee, key, seq, msg);
    util::ByteWriter payload;
    payload.u64be(seq++);
    payload.raw(std::span<const std::uint8_t>(sealed.data(), sealed.size()));
    proxy.on_auth_payload("family-phone", payload.bytes(), now);
  };

  // 2. Legit user toggles the plug.
  send_proof(1500.0, "com.teckin.app", /*human=*/true);
  auto v = proxy.process(command(kPlug, 1500.5));
  std::printf("[user]      plug command with human proof        -> %s\n",
              verdict_name(v));

  // 3. Remote attacker with the stolen account, no phone interaction.
  v = proxy.process(command(kPlug, 1600.0));
  std::printf("[attacker]  plug command, no proof               -> %s (alerts: %zu)\n",
              verdict_name(v), proxy.alerts());

  // 4. Brute force -> lockout.
  proxy.process(command(kPlug, 1650.0));
  proxy.process(command(kPlug, 1700.0));
  std::printf("[attacker]  3 attempts in 5 min                  -> device locked: %s\n",
              proxy.device_locked("plug", 1701.0) ? "yes" : "no");
  v = proxy.process(heartbeat(kPlug, 1710.0));
  std::printf("[lockout]   even heartbeats now                  -> %s\n",
              verdict_name(v));
  proxy.unlock_device("plug");
  std::printf("[user]      manually re-enables the plug         -> locked: %s\n",
              proxy.device_locked("plug", 1720.0) ? "yes" : "no");

  // 5. Hub automation through the DAG edge.
  v = proxy.process(command(kPlug, 1800.0, 235, kAlexa));
  std::printf("[alexa]     hub-initiated command (DAG edge)     -> %s\n",
              verdict_name(v));

  // 6. The §7 piggyback attack: the attacker watches for a real interaction
  //    and fires within the freshness window. FIAT cannot tell the two
  //    commands apart — the documented residual risk.
  send_proof(2000.0, "com.wyze.app", /*human=*/true);
  proxy.process(command(kCamera, 2000.5, 412));       // the user's own command
  v = proxy.process(command(kCamera, 2002.0, 412));   // attacker piggybacks
  std::printf("[piggyback] synced attack during user activity   -> %s (residual risk, §7)\n\n",
              verdict_name(v));

  // 7. The §7 "Technology Acceptance" report the companion app would show —
  //    the tamper-evident record that lets users notice silent incidents.
  proxy.flush_events();
  std::printf("%s", core::build_security_report(proxy).render().c_str());
  return 0;
}
