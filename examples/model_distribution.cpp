// Model distribution — the §7 production story end to end:
//
//   vendor lab side:   collect traces per device model/version, train the
//                      per-device classifiers, publish one ModelRegistry file
//   household side:    a new device joins the LAN; the proxy fingerprints it
//                      from its first minutes of traffic (DeviceIdentifier),
//                      downloads the registry, resolves the right classifier,
//                      and starts enforcing without any local training.
//
// Run: ./build/examples/model_distribution
#include <cstdio>

#include "core/device_id.hpp"
#include "core/event_dataset.hpp"
#include "core/model_registry.hpp"
#include "gen/testbed.hpp"
#include "ml/metrics.hpp"

using namespace fiat;

namespace {

gen::LabeledTrace collect(const char* device, std::uint64_t seed, double days,
                          std::uint32_t index) {
  gen::LocationEnv env("US");
  gen::TraceConfig config;
  config.duration_days = days;
  config.seed = seed;
  config.device_index = index;
  config.manual_per_day_override = 5.0;
  return gen::generate_trace(gen::profile_by_name(device), env, config);
}

}  // namespace

int main() {
  std::printf("== FIAT model distribution (§7 'Road to Production') ==\n\n");
  const char* devices[] = {"EchoDot4", "WyzeCam", "HomeMini"};

  // ---- vendor lab: train + publish -------------------------------------
  std::printf("[lab] training per-device classifiers...\n");
  core::ModelRegistry registry;
  std::vector<gen::LabeledTrace> lab_traces;
  std::uint32_t index = 0;
  for (const char* device : devices) {
    auto trace = collect(device, 1000 + index, 10, index);
    auto classifier = core::ManualEventClassifier::train(
        core::extract_labeled_events(trace), trace.device_ip);
    registry.put(device, "fw-1.0", classifier);
    lab_traces.push_back(std::move(trace));
    ++index;
  }
  registry.put("SP10", "fw-2.1", core::ManualEventClassifier::simple_rule(235));
  std::string path = "/tmp/fiat_models.bin";
  registry.save_file(path);
  std::printf("[lab] published %zu models to %s (%zu bytes)\n\n", registry.size(),
              path.c_str(), registry.save().size());

  // The identifier ships with the registry (trained on the same lab traces).
  auto identifier = core::DeviceIdentifier::train(lab_traces);

  // ---- household: identify, download, enforce ---------------------------
  auto downloaded = core::ModelRegistry::load_file(path);
  std::printf("[home] downloaded registry with keys:\n");
  for (const auto& [model, version] : downloaded.keys()) {
    std::printf("         %s @ %s\n", model.c_str(), version.c_str());
  }

  std::printf("\n[home] a new device joins; fingerprinting 15 minutes of traffic...\n");
  auto mystery = collect("WyzeCam", 777, 3, 9);  // unknown to the household
  std::vector<net::PacketRecord> window;
  for (const auto& lp : mystery.packets) {
    if (lp.pkt.ts > 900.0) break;
    window.push_back(lp.pkt);
  }
  double confidence = 0;
  auto who = identifier.identify(window, mystery.device_ip, &confidence);
  if (!who) {
    std::printf("[home] identification failed\n");
    return 1;
  }
  std::printf("[home] identified as %s (confidence %.2f)\n", who->c_str(), confidence);

  auto classifier = downloaded.resolve(*who, "fw-1.3" /* local fw, no exact match */);
  if (!classifier) {
    std::printf("[home] no model available\n");
    return 1;
  }
  std::printf("[home] resolved classifier (nearest version) — enforcing immediately\n\n");

  // Validate the downloaded model against this household's own traffic.
  auto events = core::extract_labeled_events(mystery);
  std::vector<int> truth, predicted;
  for (const auto& le : events) {
    truth.push_back(le.label == gen::TrafficClass::kManual ? 1 : 0);
    predicted.push_back(classifier->is_manual(le.event, mystery.device_ip) ? 1 : 0);
  }
  auto prf = ml::prf_for_class(truth, predicted, 1, 2);
  std::printf("manual-event detection with the downloaded model: P=%.2f R=%.2f F1=%.2f\n",
              prf.precision, prf.recall, prf.f1);
  std::printf("(no local training happened in this household)\n");
  return 0;
}
