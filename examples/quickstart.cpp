// Quickstart: the FIAT analysis pipeline end to end on one device.
//
//   1. Generate a two-week labeled trace for an Echo Dot 4 (synthetic
//      testbed, US vantage).
//   2. Measure traffic predictability per class (the §2 heuristic).
//   3. Group unpredictable packets into events and train the manual-event
//      classifier (BernoulliNB over the 66 features).
//   4. Train the humanness verifier and show a human vs. machine decision.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "core/event_dataset.hpp"
#include "core/humanness.hpp"
#include "core/manual_classifier.hpp"
#include "gen/sensors.hpp"
#include "gen/testbed.hpp"
#include "ml/cross_val.hpp"
#include "ml/naive_bayes.hpp"

using namespace fiat;

int main() {
  // 1. Synthesize the trace.
  gen::LocationEnv env("US");
  gen::TraceConfig config;
  config.duration_days = 14;
  config.seed = 42;
  config.manual_per_day_override = 6.0;  // NJ-style scripted interactions
  const gen::DeviceProfile& profile = gen::profile_by_name("EchoDot4");
  gen::LabeledTrace trace = gen::generate_trace(profile, env, config);
  std::printf("trace: %zu packets over %.1f days (%zu control, %zu automated, %zu manual)\n",
              trace.packets.size(), trace.duration() / 86400.0,
              trace.count_of(gen::TrafficClass::kControl),
              trace.count_of(gen::TrafficClass::kAutomated),
              trace.count_of(gen::TrafficClass::kManual));

  // 2. Predictability per class (PortLess definition).
  core::ClassPredictability pred = core::class_predictability(trace);
  for (auto cls : {gen::TrafficClass::kControl, gen::TrafficClass::kAutomated,
                   gen::TrafficClass::kManual}) {
    std::printf("predictability[%s] = %.1f%%\n", gen::traffic_class_name(cls),
                100.0 * pred.ratio(cls));
  }

  // 3. Unpredictable events -> classifier.
  auto events = core::extract_labeled_events(trace);
  std::size_t by_class[3] = {0, 0, 0};
  for (const auto& e : events) by_class[static_cast<int>(e.label)]++;
  std::printf("unpredictable events: %zu (control %zu, automated %zu, manual %zu)\n",
              events.size(), by_class[0], by_class[1], by_class[2]);

  ml::Dataset data = core::event_dataset(events, trace.device_ip);
  ml::BernoulliNB nb;
  auto cv = ml::cross_validate(nb, data, 5, /*seed=*/7,
                               static_cast<int>(gen::TrafficClass::kManual));
  std::printf("BernoulliNB 5-fold: balanced accuracy %.3f; manual P=%.2f R=%.2f F1=%.2f\n",
              cv.mean_balanced_accuracy, cv.mean_prf.precision, cv.mean_prf.recall,
              cv.mean_prf.f1);

  // 4. Humanness verification.
  core::HumannessVerifier verifier = core::HumannessVerifier::train_synthetic(99);
  sim::Rng rng(123);
  auto human = gen::generate_sensor_trace(rng, /*human=*/true);
  auto machine = gen::generate_sensor_trace(rng, /*human=*/false);
  std::printf("humanness(human window)   = %s\n",
              verifier.is_human(gen::sensor_features(human)) ? "human" : "machine");
  std::printf("humanness(machine window) = %s\n",
              verifier.is_human(gen::sensor_features(machine)) ? "human" : "machine");
  return 0;
}
