// Cross-location knowledge transfer (the §4.3 production story): train a
// manual-event classifier on a WyzeCam observed in one household / vantage
// point, ship the model, and deploy it against the same device model
// elsewhere — no retraining, because the classifier leans on transferable
// features (protocol, direction, TLS) rather than IPs.
//
// Run: ./build/examples/transfer_learning
#include <cstdio>

#include "core/event_dataset.hpp"
#include "core/manual_classifier.hpp"
#include "gen/testbed.hpp"
#include "ml/metrics.hpp"

using namespace fiat;

namespace {

gen::LabeledTrace collect(const char* location, std::uint64_t seed) {
  gen::LocationEnv env(location);
  gen::TraceConfig config;
  config.duration_days = 10;
  config.seed = seed;
  config.manual_per_day_override = 5.0;
  return gen::generate_trace(gen::profile_by_name("WyzeCam"), env, config);
}

double manual_f1(const core::ManualEventClassifier& classifier,
                 const gen::LabeledTrace& trace) {
  auto events = core::extract_labeled_events(trace);
  std::vector<int> truth, predicted;
  for (const auto& le : events) {
    truth.push_back(le.label == gen::TrafficClass::kManual ? 1 : 0);
    predicted.push_back(
        classifier.classify(le.event, trace.device_ip) == gen::TrafficClass::kManual
            ? 1
            : 0);
  }
  return ml::prf_for_class(truth, predicted, 1, 2).f1;
}

}  // namespace

int main() {
  std::printf("== Train once, deploy anywhere (WyzeCam, BernoulliNB) ==\n\n");

  auto us = collect("US", 11);
  std::printf("collected US trace: %zu packets\n", us.packets.size());
  auto classifier =
      core::ManualEventClassifier::train(core::extract_labeled_events(us),
                                         us.device_ip);

  std::printf("\n%-24s manual-event F1\n", "deployment");
  std::printf("%-24s %.2f  (training household)\n", "US (in-sample)",
              manual_f1(classifier, us));
  for (const char* loc : {"US", "JP", "DE"}) {
    auto target = collect(loc, 400 + static_cast<std::uint64_t>(loc[0]));
    std::printf("%-24s %.2f\n",
                (std::string(loc) + " (fresh household)").c_str(),
                manual_f1(classifier, target));
  }

  std::printf("\nThe JP/DE deployments resolve entirely different cloud IPs\n"
              "(google.co.jp-style localization), yet the classifier holds —\n"
              "the Table 4/5 observation that IP features carry no weight.\n");
  return 0;
}
