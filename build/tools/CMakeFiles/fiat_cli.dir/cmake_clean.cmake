file(REMOVE_RECURSE
  "CMakeFiles/fiat_cli.dir/fiat_cli.cpp.o"
  "CMakeFiles/fiat_cli.dir/fiat_cli.cpp.o.d"
  "fiat"
  "fiat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fiat_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
