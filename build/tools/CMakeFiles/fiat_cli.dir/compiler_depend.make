# Empty compiler generated dependencies file for fiat_cli.
# This may be replaced when dependencies are built.
