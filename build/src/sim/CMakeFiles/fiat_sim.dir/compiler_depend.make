# Empty compiler generated dependencies file for fiat_sim.
# This may be replaced when dependencies are built.
