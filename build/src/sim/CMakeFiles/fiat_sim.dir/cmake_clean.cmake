file(REMOVE_RECURSE
  "CMakeFiles/fiat_sim.dir/rng.cpp.o"
  "CMakeFiles/fiat_sim.dir/rng.cpp.o.d"
  "CMakeFiles/fiat_sim.dir/scheduler.cpp.o"
  "CMakeFiles/fiat_sim.dir/scheduler.cpp.o.d"
  "libfiat_sim.a"
  "libfiat_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fiat_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
