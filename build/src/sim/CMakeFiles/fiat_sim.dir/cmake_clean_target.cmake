file(REMOVE_RECURSE
  "libfiat_sim.a"
)
