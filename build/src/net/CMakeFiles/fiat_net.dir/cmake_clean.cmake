file(REMOVE_RECURSE
  "CMakeFiles/fiat_net.dir/checksum.cpp.o"
  "CMakeFiles/fiat_net.dir/checksum.cpp.o.d"
  "CMakeFiles/fiat_net.dir/dns.cpp.o"
  "CMakeFiles/fiat_net.dir/dns.cpp.o.d"
  "CMakeFiles/fiat_net.dir/frame.cpp.o"
  "CMakeFiles/fiat_net.dir/frame.cpp.o.d"
  "CMakeFiles/fiat_net.dir/ip.cpp.o"
  "CMakeFiles/fiat_net.dir/ip.cpp.o.d"
  "CMakeFiles/fiat_net.dir/packet.cpp.o"
  "CMakeFiles/fiat_net.dir/packet.cpp.o.d"
  "CMakeFiles/fiat_net.dir/pcap.cpp.o"
  "CMakeFiles/fiat_net.dir/pcap.cpp.o.d"
  "CMakeFiles/fiat_net.dir/tls.cpp.o"
  "CMakeFiles/fiat_net.dir/tls.cpp.o.d"
  "libfiat_net.a"
  "libfiat_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fiat_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
