file(REMOVE_RECURSE
  "libfiat_net.a"
)
