# Empty compiler generated dependencies file for fiat_net.
# This may be replaced when dependencies are built.
