
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/checksum.cpp" "src/net/CMakeFiles/fiat_net.dir/checksum.cpp.o" "gcc" "src/net/CMakeFiles/fiat_net.dir/checksum.cpp.o.d"
  "/root/repo/src/net/dns.cpp" "src/net/CMakeFiles/fiat_net.dir/dns.cpp.o" "gcc" "src/net/CMakeFiles/fiat_net.dir/dns.cpp.o.d"
  "/root/repo/src/net/frame.cpp" "src/net/CMakeFiles/fiat_net.dir/frame.cpp.o" "gcc" "src/net/CMakeFiles/fiat_net.dir/frame.cpp.o.d"
  "/root/repo/src/net/ip.cpp" "src/net/CMakeFiles/fiat_net.dir/ip.cpp.o" "gcc" "src/net/CMakeFiles/fiat_net.dir/ip.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/net/CMakeFiles/fiat_net.dir/packet.cpp.o" "gcc" "src/net/CMakeFiles/fiat_net.dir/packet.cpp.o.d"
  "/root/repo/src/net/pcap.cpp" "src/net/CMakeFiles/fiat_net.dir/pcap.cpp.o" "gcc" "src/net/CMakeFiles/fiat_net.dir/pcap.cpp.o.d"
  "/root/repo/src/net/tls.cpp" "src/net/CMakeFiles/fiat_net.dir/tls.cpp.o" "gcc" "src/net/CMakeFiles/fiat_net.dir/tls.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fiat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
