file(REMOVE_RECURSE
  "libfiat_core.a"
)
