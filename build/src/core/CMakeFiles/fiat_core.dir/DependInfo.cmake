
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/appendix_a.cpp" "src/core/CMakeFiles/fiat_core.dir/appendix_a.cpp.o" "gcc" "src/core/CMakeFiles/fiat_core.dir/appendix_a.cpp.o.d"
  "/root/repo/src/core/auth_message.cpp" "src/core/CMakeFiles/fiat_core.dir/auth_message.cpp.o" "gcc" "src/core/CMakeFiles/fiat_core.dir/auth_message.cpp.o.d"
  "/root/repo/src/core/bucket.cpp" "src/core/CMakeFiles/fiat_core.dir/bucket.cpp.o" "gcc" "src/core/CMakeFiles/fiat_core.dir/bucket.cpp.o.d"
  "/root/repo/src/core/client_app.cpp" "src/core/CMakeFiles/fiat_core.dir/client_app.cpp.o" "gcc" "src/core/CMakeFiles/fiat_core.dir/client_app.cpp.o.d"
  "/root/repo/src/core/device_id.cpp" "src/core/CMakeFiles/fiat_core.dir/device_id.cpp.o" "gcc" "src/core/CMakeFiles/fiat_core.dir/device_id.cpp.o.d"
  "/root/repo/src/core/event_dataset.cpp" "src/core/CMakeFiles/fiat_core.dir/event_dataset.cpp.o" "gcc" "src/core/CMakeFiles/fiat_core.dir/event_dataset.cpp.o.d"
  "/root/repo/src/core/event_sequences.cpp" "src/core/CMakeFiles/fiat_core.dir/event_sequences.cpp.o" "gcc" "src/core/CMakeFiles/fiat_core.dir/event_sequences.cpp.o.d"
  "/root/repo/src/core/events.cpp" "src/core/CMakeFiles/fiat_core.dir/events.cpp.o" "gcc" "src/core/CMakeFiles/fiat_core.dir/events.cpp.o.d"
  "/root/repo/src/core/features.cpp" "src/core/CMakeFiles/fiat_core.dir/features.cpp.o" "gcc" "src/core/CMakeFiles/fiat_core.dir/features.cpp.o.d"
  "/root/repo/src/core/humanness.cpp" "src/core/CMakeFiles/fiat_core.dir/humanness.cpp.o" "gcc" "src/core/CMakeFiles/fiat_core.dir/humanness.cpp.o.d"
  "/root/repo/src/core/intercept.cpp" "src/core/CMakeFiles/fiat_core.dir/intercept.cpp.o" "gcc" "src/core/CMakeFiles/fiat_core.dir/intercept.cpp.o.d"
  "/root/repo/src/core/manual_classifier.cpp" "src/core/CMakeFiles/fiat_core.dir/manual_classifier.cpp.o" "gcc" "src/core/CMakeFiles/fiat_core.dir/manual_classifier.cpp.o.d"
  "/root/repo/src/core/model_registry.cpp" "src/core/CMakeFiles/fiat_core.dir/model_registry.cpp.o" "gcc" "src/core/CMakeFiles/fiat_core.dir/model_registry.cpp.o.d"
  "/root/repo/src/core/mud.cpp" "src/core/CMakeFiles/fiat_core.dir/mud.cpp.o" "gcc" "src/core/CMakeFiles/fiat_core.dir/mud.cpp.o.d"
  "/root/repo/src/core/predictability.cpp" "src/core/CMakeFiles/fiat_core.dir/predictability.cpp.o" "gcc" "src/core/CMakeFiles/fiat_core.dir/predictability.cpp.o.d"
  "/root/repo/src/core/proxy.cpp" "src/core/CMakeFiles/fiat_core.dir/proxy.cpp.o" "gcc" "src/core/CMakeFiles/fiat_core.dir/proxy.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/fiat_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/fiat_core.dir/report.cpp.o.d"
  "/root/repo/src/core/rules.cpp" "src/core/CMakeFiles/fiat_core.dir/rules.cpp.o" "gcc" "src/core/CMakeFiles/fiat_core.dir/rules.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fiat_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fiat_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fiat_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/fiat_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fiat_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/fiat_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/fiat_gen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
