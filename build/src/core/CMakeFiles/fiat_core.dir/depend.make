# Empty dependencies file for fiat_core.
# This may be replaced when dependencies are built.
