file(REMOVE_RECURSE
  "CMakeFiles/fiat_crypto.dir/aead.cpp.o"
  "CMakeFiles/fiat_crypto.dir/aead.cpp.o.d"
  "CMakeFiles/fiat_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/fiat_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/fiat_crypto.dir/hkdf.cpp.o"
  "CMakeFiles/fiat_crypto.dir/hkdf.cpp.o.d"
  "CMakeFiles/fiat_crypto.dir/hmac.cpp.o"
  "CMakeFiles/fiat_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/fiat_crypto.dir/keystore.cpp.o"
  "CMakeFiles/fiat_crypto.dir/keystore.cpp.o.d"
  "CMakeFiles/fiat_crypto.dir/replay_cache.cpp.o"
  "CMakeFiles/fiat_crypto.dir/replay_cache.cpp.o.d"
  "CMakeFiles/fiat_crypto.dir/sha256.cpp.o"
  "CMakeFiles/fiat_crypto.dir/sha256.cpp.o.d"
  "libfiat_crypto.a"
  "libfiat_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fiat_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
