
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aead.cpp" "src/crypto/CMakeFiles/fiat_crypto.dir/aead.cpp.o" "gcc" "src/crypto/CMakeFiles/fiat_crypto.dir/aead.cpp.o.d"
  "/root/repo/src/crypto/chacha20.cpp" "src/crypto/CMakeFiles/fiat_crypto.dir/chacha20.cpp.o" "gcc" "src/crypto/CMakeFiles/fiat_crypto.dir/chacha20.cpp.o.d"
  "/root/repo/src/crypto/hkdf.cpp" "src/crypto/CMakeFiles/fiat_crypto.dir/hkdf.cpp.o" "gcc" "src/crypto/CMakeFiles/fiat_crypto.dir/hkdf.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/crypto/CMakeFiles/fiat_crypto.dir/hmac.cpp.o" "gcc" "src/crypto/CMakeFiles/fiat_crypto.dir/hmac.cpp.o.d"
  "/root/repo/src/crypto/keystore.cpp" "src/crypto/CMakeFiles/fiat_crypto.dir/keystore.cpp.o" "gcc" "src/crypto/CMakeFiles/fiat_crypto.dir/keystore.cpp.o.d"
  "/root/repo/src/crypto/replay_cache.cpp" "src/crypto/CMakeFiles/fiat_crypto.dir/replay_cache.cpp.o" "gcc" "src/crypto/CMakeFiles/fiat_crypto.dir/replay_cache.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/fiat_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/fiat_crypto.dir/sha256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fiat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
