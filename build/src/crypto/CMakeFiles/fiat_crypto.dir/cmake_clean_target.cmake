file(REMOVE_RECURSE
  "libfiat_crypto.a"
)
