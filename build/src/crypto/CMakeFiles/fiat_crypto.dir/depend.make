# Empty dependencies file for fiat_crypto.
# This may be replaced when dependencies are built.
