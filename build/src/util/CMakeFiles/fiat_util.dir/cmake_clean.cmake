file(REMOVE_RECURSE
  "CMakeFiles/fiat_util.dir/bytes.cpp.o"
  "CMakeFiles/fiat_util.dir/bytes.cpp.o.d"
  "CMakeFiles/fiat_util.dir/flags.cpp.o"
  "CMakeFiles/fiat_util.dir/flags.cpp.o.d"
  "CMakeFiles/fiat_util.dir/hex.cpp.o"
  "CMakeFiles/fiat_util.dir/hex.cpp.o.d"
  "CMakeFiles/fiat_util.dir/strings.cpp.o"
  "CMakeFiles/fiat_util.dir/strings.cpp.o.d"
  "libfiat_util.a"
  "libfiat_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fiat_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
