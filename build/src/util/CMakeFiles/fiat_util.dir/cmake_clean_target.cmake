file(REMOVE_RECURSE
  "libfiat_util.a"
)
