
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/bytes.cpp" "src/util/CMakeFiles/fiat_util.dir/bytes.cpp.o" "gcc" "src/util/CMakeFiles/fiat_util.dir/bytes.cpp.o.d"
  "/root/repo/src/util/flags.cpp" "src/util/CMakeFiles/fiat_util.dir/flags.cpp.o" "gcc" "src/util/CMakeFiles/fiat_util.dir/flags.cpp.o.d"
  "/root/repo/src/util/hex.cpp" "src/util/CMakeFiles/fiat_util.dir/hex.cpp.o" "gcc" "src/util/CMakeFiles/fiat_util.dir/hex.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/util/CMakeFiles/fiat_util.dir/strings.cpp.o" "gcc" "src/util/CMakeFiles/fiat_util.dir/strings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
