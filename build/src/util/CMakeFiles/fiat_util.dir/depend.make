# Empty dependencies file for fiat_util.
# This may be replaced when dependencies are built.
