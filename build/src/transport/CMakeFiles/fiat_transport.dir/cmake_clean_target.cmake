file(REMOVE_RECURSE
  "libfiat_transport.a"
)
