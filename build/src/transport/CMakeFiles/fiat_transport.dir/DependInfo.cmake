
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/netpath.cpp" "src/transport/CMakeFiles/fiat_transport.dir/netpath.cpp.o" "gcc" "src/transport/CMakeFiles/fiat_transport.dir/netpath.cpp.o.d"
  "/root/repo/src/transport/network.cpp" "src/transport/CMakeFiles/fiat_transport.dir/network.cpp.o" "gcc" "src/transport/CMakeFiles/fiat_transport.dir/network.cpp.o.d"
  "/root/repo/src/transport/quic_lite.cpp" "src/transport/CMakeFiles/fiat_transport.dir/quic_lite.cpp.o" "gcc" "src/transport/CMakeFiles/fiat_transport.dir/quic_lite.cpp.o.d"
  "/root/repo/src/transport/tcp_model.cpp" "src/transport/CMakeFiles/fiat_transport.dir/tcp_model.cpp.o" "gcc" "src/transport/CMakeFiles/fiat_transport.dir/tcp_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fiat_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fiat_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fiat_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
