file(REMOVE_RECURSE
  "CMakeFiles/fiat_transport.dir/netpath.cpp.o"
  "CMakeFiles/fiat_transport.dir/netpath.cpp.o.d"
  "CMakeFiles/fiat_transport.dir/network.cpp.o"
  "CMakeFiles/fiat_transport.dir/network.cpp.o.d"
  "CMakeFiles/fiat_transport.dir/quic_lite.cpp.o"
  "CMakeFiles/fiat_transport.dir/quic_lite.cpp.o.d"
  "CMakeFiles/fiat_transport.dir/tcp_model.cpp.o"
  "CMakeFiles/fiat_transport.dir/tcp_model.cpp.o.d"
  "libfiat_transport.a"
  "libfiat_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fiat_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
