# Empty compiler generated dependencies file for fiat_transport.
# This may be replaced when dependencies are built.
