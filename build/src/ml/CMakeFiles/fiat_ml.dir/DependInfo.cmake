
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/adaboost.cpp" "src/ml/CMakeFiles/fiat_ml.dir/adaboost.cpp.o" "gcc" "src/ml/CMakeFiles/fiat_ml.dir/adaboost.cpp.o.d"
  "/root/repo/src/ml/cross_val.cpp" "src/ml/CMakeFiles/fiat_ml.dir/cross_val.cpp.o" "gcc" "src/ml/CMakeFiles/fiat_ml.dir/cross_val.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/fiat_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/fiat_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/ml/CMakeFiles/fiat_ml.dir/decision_tree.cpp.o" "gcc" "src/ml/CMakeFiles/fiat_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/ml/CMakeFiles/fiat_ml.dir/knn.cpp.o" "gcc" "src/ml/CMakeFiles/fiat_ml.dir/knn.cpp.o.d"
  "/root/repo/src/ml/linear_svc.cpp" "src/ml/CMakeFiles/fiat_ml.dir/linear_svc.cpp.o" "gcc" "src/ml/CMakeFiles/fiat_ml.dir/linear_svc.cpp.o.d"
  "/root/repo/src/ml/lstm.cpp" "src/ml/CMakeFiles/fiat_ml.dir/lstm.cpp.o" "gcc" "src/ml/CMakeFiles/fiat_ml.dir/lstm.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/fiat_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/fiat_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/mlp.cpp" "src/ml/CMakeFiles/fiat_ml.dir/mlp.cpp.o" "gcc" "src/ml/CMakeFiles/fiat_ml.dir/mlp.cpp.o.d"
  "/root/repo/src/ml/naive_bayes.cpp" "src/ml/CMakeFiles/fiat_ml.dir/naive_bayes.cpp.o" "gcc" "src/ml/CMakeFiles/fiat_ml.dir/naive_bayes.cpp.o.d"
  "/root/repo/src/ml/nearest_centroid.cpp" "src/ml/CMakeFiles/fiat_ml.dir/nearest_centroid.cpp.o" "gcc" "src/ml/CMakeFiles/fiat_ml.dir/nearest_centroid.cpp.o.d"
  "/root/repo/src/ml/permutation.cpp" "src/ml/CMakeFiles/fiat_ml.dir/permutation.cpp.o" "gcc" "src/ml/CMakeFiles/fiat_ml.dir/permutation.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/ml/CMakeFiles/fiat_ml.dir/random_forest.cpp.o" "gcc" "src/ml/CMakeFiles/fiat_ml.dir/random_forest.cpp.o.d"
  "/root/repo/src/ml/scaler.cpp" "src/ml/CMakeFiles/fiat_ml.dir/scaler.cpp.o" "gcc" "src/ml/CMakeFiles/fiat_ml.dir/scaler.cpp.o.d"
  "/root/repo/src/ml/serialize.cpp" "src/ml/CMakeFiles/fiat_ml.dir/serialize.cpp.o" "gcc" "src/ml/CMakeFiles/fiat_ml.dir/serialize.cpp.o.d"
  "/root/repo/src/ml/shapley.cpp" "src/ml/CMakeFiles/fiat_ml.dir/shapley.cpp.o" "gcc" "src/ml/CMakeFiles/fiat_ml.dir/shapley.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fiat_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fiat_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
