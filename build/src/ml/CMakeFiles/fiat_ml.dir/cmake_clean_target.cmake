file(REMOVE_RECURSE
  "libfiat_ml.a"
)
