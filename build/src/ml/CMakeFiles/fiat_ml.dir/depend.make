# Empty dependencies file for fiat_ml.
# This may be replaced when dependencies are built.
