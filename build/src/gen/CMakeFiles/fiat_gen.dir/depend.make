# Empty dependencies file for fiat_gen.
# This may be replaced when dependencies are built.
