file(REMOVE_RECURSE
  "CMakeFiles/fiat_gen.dir/attacks.cpp.o"
  "CMakeFiles/fiat_gen.dir/attacks.cpp.o.d"
  "CMakeFiles/fiat_gen.dir/location.cpp.o"
  "CMakeFiles/fiat_gen.dir/location.cpp.o.d"
  "CMakeFiles/fiat_gen.dir/profiles.cpp.o"
  "CMakeFiles/fiat_gen.dir/profiles.cpp.o.d"
  "CMakeFiles/fiat_gen.dir/public_dataset.cpp.o"
  "CMakeFiles/fiat_gen.dir/public_dataset.cpp.o.d"
  "CMakeFiles/fiat_gen.dir/sensors.cpp.o"
  "CMakeFiles/fiat_gen.dir/sensors.cpp.o.d"
  "CMakeFiles/fiat_gen.dir/testbed.cpp.o"
  "CMakeFiles/fiat_gen.dir/testbed.cpp.o.d"
  "libfiat_gen.a"
  "libfiat_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fiat_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
