file(REMOVE_RECURSE
  "libfiat_gen.a"
)
