
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/attacks.cpp" "src/gen/CMakeFiles/fiat_gen.dir/attacks.cpp.o" "gcc" "src/gen/CMakeFiles/fiat_gen.dir/attacks.cpp.o.d"
  "/root/repo/src/gen/location.cpp" "src/gen/CMakeFiles/fiat_gen.dir/location.cpp.o" "gcc" "src/gen/CMakeFiles/fiat_gen.dir/location.cpp.o.d"
  "/root/repo/src/gen/profiles.cpp" "src/gen/CMakeFiles/fiat_gen.dir/profiles.cpp.o" "gcc" "src/gen/CMakeFiles/fiat_gen.dir/profiles.cpp.o.d"
  "/root/repo/src/gen/public_dataset.cpp" "src/gen/CMakeFiles/fiat_gen.dir/public_dataset.cpp.o" "gcc" "src/gen/CMakeFiles/fiat_gen.dir/public_dataset.cpp.o.d"
  "/root/repo/src/gen/sensors.cpp" "src/gen/CMakeFiles/fiat_gen.dir/sensors.cpp.o" "gcc" "src/gen/CMakeFiles/fiat_gen.dir/sensors.cpp.o.d"
  "/root/repo/src/gen/testbed.cpp" "src/gen/CMakeFiles/fiat_gen.dir/testbed.cpp.o" "gcc" "src/gen/CMakeFiles/fiat_gen.dir/testbed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fiat_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fiat_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fiat_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/fiat_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
