# Empty dependencies file for transfer_learning.
# This may be replaced when dependencies are built.
