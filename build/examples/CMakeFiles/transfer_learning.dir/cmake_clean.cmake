file(REMOVE_RECURSE
  "CMakeFiles/transfer_learning.dir/transfer_learning.cpp.o"
  "CMakeFiles/transfer_learning.dir/transfer_learning.cpp.o.d"
  "transfer_learning"
  "transfer_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
