file(REMOVE_RECURSE
  "CMakeFiles/smart_home_proxy.dir/smart_home_proxy.cpp.o"
  "CMakeFiles/smart_home_proxy.dir/smart_home_proxy.cpp.o.d"
  "smart_home_proxy"
  "smart_home_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_home_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
