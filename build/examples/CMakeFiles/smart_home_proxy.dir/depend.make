# Empty dependencies file for smart_home_proxy.
# This may be replaced when dependencies are built.
