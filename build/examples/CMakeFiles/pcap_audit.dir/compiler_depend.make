# Empty compiler generated dependencies file for pcap_audit.
# This may be replaced when dependencies are built.
