file(REMOVE_RECURSE
  "CMakeFiles/pcap_audit.dir/pcap_audit.cpp.o"
  "CMakeFiles/pcap_audit.dir/pcap_audit.cpp.o.d"
  "pcap_audit"
  "pcap_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
