file(REMOVE_RECURSE
  "CMakeFiles/model_distribution.dir/model_distribution.cpp.o"
  "CMakeFiles/model_distribution.dir/model_distribution.cpp.o.d"
  "model_distribution"
  "model_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
