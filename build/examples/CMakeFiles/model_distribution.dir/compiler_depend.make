# Empty compiler generated dependencies file for model_distribution.
# This may be replaced when dependencies are built.
