file(REMOVE_RECURSE
  "CMakeFiles/bench_attack_eval.dir/bench_attack_eval.cpp.o"
  "CMakeFiles/bench_attack_eval.dir/bench_attack_eval.cpp.o.d"
  "bench_attack_eval"
  "bench_attack_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attack_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
