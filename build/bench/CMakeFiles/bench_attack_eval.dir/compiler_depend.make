# Empty compiler generated dependencies file for bench_attack_eval.
# This may be replaced when dependencies are built.
