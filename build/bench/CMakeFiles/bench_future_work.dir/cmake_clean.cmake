file(REMOVE_RECURSE
  "CMakeFiles/bench_future_work.dir/bench_future_work.cpp.o"
  "CMakeFiles/bench_future_work.dir/bench_future_work.cpp.o.d"
  "bench_future_work"
  "bench_future_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_future_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
