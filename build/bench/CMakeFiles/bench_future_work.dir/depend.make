# Empty dependencies file for bench_future_work.
# This may be replaced when dependencies are built.
