# Empty compiler generated dependencies file for bench_fig1a.
# This may be replaced when dependencies are built.
