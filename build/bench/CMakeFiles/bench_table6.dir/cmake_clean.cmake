file(REMOVE_RECURSE
  "CMakeFiles/bench_table6.dir/bench_table6.cpp.o"
  "CMakeFiles/bench_table6.dir/bench_table6.cpp.o.d"
  "bench_table6"
  "bench_table6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
