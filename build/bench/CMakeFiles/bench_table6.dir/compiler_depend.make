# Empty compiler generated dependencies file for bench_table6.
# This may be replaced when dependencies are built.
