file(REMOVE_RECURSE
  "CMakeFiles/bench_delay_tolerance.dir/bench_delay_tolerance.cpp.o"
  "CMakeFiles/bench_delay_tolerance.dir/bench_delay_tolerance.cpp.o.d"
  "bench_delay_tolerance"
  "bench_delay_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delay_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
