# Empty compiler generated dependencies file for bench_delay_tolerance.
# This may be replaced when dependencies are built.
