# Empty dependencies file for bench_fig1b.
# This may be replaced when dependencies are built.
