# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_ml[1]_include.cmake")
include("/root/repo/build/tests/test_transport[1]_include.cmake")
include("/root/repo/build/tests/test_predictability[1]_include.cmake")
include("/root/repo/build/tests/test_events[1]_include.cmake")
include("/root/repo/build/tests/test_rules[1]_include.cmake")
include("/root/repo/build/tests/test_classifier[1]_include.cmake")
include("/root/repo/build/tests/test_humanness[1]_include.cmake")
include("/root/repo/build/tests/test_auth_message[1]_include.cmake")
include("/root/repo/build/tests/test_proxy[1]_include.cmake")
include("/root/repo/build/tests/test_gen[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_lstm[1]_include.cmake")
include("/root/repo/build/tests/test_shapley[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_device_id[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_intercept[1]_include.cmake")
include("/root/repo/build/tests/test_mud[1]_include.cmake")
include("/root/repo/build/tests/test_appendix_a[1]_include.cmake")
include("/root/repo/build/tests/test_client_app[1]_include.cmake")
include("/root/repo/build/tests/test_attacks[1]_include.cmake")
