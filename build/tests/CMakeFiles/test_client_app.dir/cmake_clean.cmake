file(REMOVE_RECURSE
  "CMakeFiles/test_client_app.dir/test_client_app.cpp.o"
  "CMakeFiles/test_client_app.dir/test_client_app.cpp.o.d"
  "test_client_app"
  "test_client_app.pdb"
  "test_client_app[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_client_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
