# Empty compiler generated dependencies file for test_client_app.
# This may be replaced when dependencies are built.
