file(REMOVE_RECURSE
  "CMakeFiles/test_proxy.dir/test_proxy.cpp.o"
  "CMakeFiles/test_proxy.dir/test_proxy.cpp.o.d"
  "test_proxy"
  "test_proxy.pdb"
  "test_proxy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
