file(REMOVE_RECURSE
  "CMakeFiles/test_predictability.dir/test_predictability.cpp.o"
  "CMakeFiles/test_predictability.dir/test_predictability.cpp.o.d"
  "test_predictability"
  "test_predictability.pdb"
  "test_predictability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predictability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
