# Empty compiler generated dependencies file for test_predictability.
# This may be replaced when dependencies are built.
