# Empty dependencies file for test_events.
# This may be replaced when dependencies are built.
