file(REMOVE_RECURSE
  "CMakeFiles/test_events.dir/test_events.cpp.o"
  "CMakeFiles/test_events.dir/test_events.cpp.o.d"
  "test_events"
  "test_events.pdb"
  "test_events[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
