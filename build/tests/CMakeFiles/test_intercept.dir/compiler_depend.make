# Empty compiler generated dependencies file for test_intercept.
# This may be replaced when dependencies are built.
