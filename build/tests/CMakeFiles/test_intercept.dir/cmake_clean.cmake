file(REMOVE_RECURSE
  "CMakeFiles/test_intercept.dir/test_intercept.cpp.o"
  "CMakeFiles/test_intercept.dir/test_intercept.cpp.o.d"
  "test_intercept"
  "test_intercept.pdb"
  "test_intercept[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_intercept.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
