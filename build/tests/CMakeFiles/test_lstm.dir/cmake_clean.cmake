file(REMOVE_RECURSE
  "CMakeFiles/test_lstm.dir/test_lstm.cpp.o"
  "CMakeFiles/test_lstm.dir/test_lstm.cpp.o.d"
  "test_lstm"
  "test_lstm.pdb"
  "test_lstm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lstm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
