# Empty compiler generated dependencies file for test_lstm.
# This may be replaced when dependencies are built.
