# Empty dependencies file for test_lstm.
# This may be replaced when dependencies are built.
