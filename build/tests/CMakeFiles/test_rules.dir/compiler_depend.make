# Empty compiler generated dependencies file for test_rules.
# This may be replaced when dependencies are built.
