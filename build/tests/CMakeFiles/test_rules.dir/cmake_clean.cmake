file(REMOVE_RECURSE
  "CMakeFiles/test_rules.dir/test_rules.cpp.o"
  "CMakeFiles/test_rules.dir/test_rules.cpp.o.d"
  "test_rules"
  "test_rules.pdb"
  "test_rules[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
