# Empty compiler generated dependencies file for test_attacks.
# This may be replaced when dependencies are built.
