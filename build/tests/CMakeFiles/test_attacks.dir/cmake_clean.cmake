file(REMOVE_RECURSE
  "CMakeFiles/test_attacks.dir/test_attacks.cpp.o"
  "CMakeFiles/test_attacks.dir/test_attacks.cpp.o.d"
  "test_attacks"
  "test_attacks.pdb"
  "test_attacks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
