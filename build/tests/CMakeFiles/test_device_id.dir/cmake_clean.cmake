file(REMOVE_RECURSE
  "CMakeFiles/test_device_id.dir/test_device_id.cpp.o"
  "CMakeFiles/test_device_id.dir/test_device_id.cpp.o.d"
  "test_device_id"
  "test_device_id.pdb"
  "test_device_id[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_device_id.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
