# Empty dependencies file for test_device_id.
# This may be replaced when dependencies are built.
