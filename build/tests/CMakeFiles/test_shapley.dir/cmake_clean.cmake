file(REMOVE_RECURSE
  "CMakeFiles/test_shapley.dir/test_shapley.cpp.o"
  "CMakeFiles/test_shapley.dir/test_shapley.cpp.o.d"
  "test_shapley"
  "test_shapley.pdb"
  "test_shapley[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shapley.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
