# Empty compiler generated dependencies file for test_mud.
# This may be replaced when dependencies are built.
