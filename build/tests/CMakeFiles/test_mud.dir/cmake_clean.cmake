file(REMOVE_RECURSE
  "CMakeFiles/test_mud.dir/test_mud.cpp.o"
  "CMakeFiles/test_mud.dir/test_mud.cpp.o.d"
  "test_mud"
  "test_mud.pdb"
  "test_mud[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
