# Empty compiler generated dependencies file for test_appendix_a.
# This may be replaced when dependencies are built.
