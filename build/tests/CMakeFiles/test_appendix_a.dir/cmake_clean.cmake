file(REMOVE_RECURSE
  "CMakeFiles/test_appendix_a.dir/test_appendix_a.cpp.o"
  "CMakeFiles/test_appendix_a.dir/test_appendix_a.cpp.o.d"
  "test_appendix_a"
  "test_appendix_a.pdb"
  "test_appendix_a[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_appendix_a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
