file(REMOVE_RECURSE
  "CMakeFiles/test_humanness.dir/test_humanness.cpp.o"
  "CMakeFiles/test_humanness.dir/test_humanness.cpp.o.d"
  "test_humanness"
  "test_humanness.pdb"
  "test_humanness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_humanness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
