# Empty dependencies file for test_humanness.
# This may be replaced when dependencies are built.
