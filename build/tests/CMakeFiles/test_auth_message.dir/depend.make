# Empty dependencies file for test_auth_message.
# This may be replaced when dependencies are built.
