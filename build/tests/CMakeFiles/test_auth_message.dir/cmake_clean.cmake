file(REMOVE_RECURSE
  "CMakeFiles/test_auth_message.dir/test_auth_message.cpp.o"
  "CMakeFiles/test_auth_message.dir/test_auth_message.cpp.o.d"
  "test_auth_message"
  "test_auth_message.pdb"
  "test_auth_message[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_auth_message.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
