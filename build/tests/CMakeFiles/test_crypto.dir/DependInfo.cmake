
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_crypto.cpp" "tests/CMakeFiles/test_crypto.dir/test_crypto.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/test_crypto.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fiat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/fiat_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fiat_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/fiat_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fiat_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/fiat_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fiat_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fiat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
