# Empty dependencies file for test_crypto.
# This may be replaced when dependencies are built.
