# Empty compiler generated dependencies file for test_classifier.
# This may be replaced when dependencies are built.
