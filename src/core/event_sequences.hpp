// Event -> packet-sequence adaptor for the temporal (LSTM) classifier
// (§7 future work). Each packet becomes a 12-dimensional step vector —
// the same per-packet signals the 66-feature representation uses, but kept
// as a variable-length sequence instead of a fixed 5-packet block, and
// roughly unit-scaled so the recurrent model trains without a fitted scaler.
#pragma once

#include "core/event_dataset.hpp"
#include "ml/lstm.hpp"

namespace fiat::core {

constexpr std::size_t kSequenceStepDim = 12;

/// Per-packet step vector (direction, remote octets/255, proto, flags/255,
/// ports/65535, tls/0x0304, len/1500, iat seconds).
std::vector<double> packet_step(const net::PacketRecord& pkt, net::Ipv4Addr device,
                                double iat);

/// Featurizes one event into a sequence (all packets, in order).
ml::Sequence event_sequence(const UnpredictableEvent& event, net::Ipv4Addr device,
                            int label = 0);

/// Builds the LSTM dataset from labeled events.
ml::SequenceDataset sequence_dataset(const std::vector<LabeledEvent>& events,
                                     net::Ipv4Addr device);

}  // namespace fiat::core
