#include "core/event_sequences.hpp"

#include "net/tls.hpp"

#include "util/error.hpp"

namespace fiat::core {

std::vector<double> packet_step(const net::PacketRecord& pkt, net::Ipv4Addr device,
                                double iat) {
  bool outbound = pkt.outbound_from(device);
  net::Ipv4Addr remote = pkt.remote_of(device);
  std::vector<double> step;
  step.reserve(kSequenceStepDim);
  step.push_back(outbound ? 1.0 : 0.0);
  for (int o = 0; o < 4; ++o) step.push_back(remote.octet(o) / 255.0);
  step.push_back(pkt.proto == net::Transport::kTcp ? 0.5
                 : pkt.proto == net::Transport::kUdp ? 1.0 : 0.0);
  step.push_back(pkt.tcp_flags / 255.0);
  step.push_back(pkt.src_port / 65535.0);
  step.push_back(pkt.dst_port / 65535.0);
  step.push_back(pkt.tls_version / static_cast<double>(net::kTls13));
  step.push_back(pkt.size / 1500.0);
  step.push_back(iat);
  return step;
}

ml::Sequence event_sequence(const UnpredictableEvent& event, net::Ipv4Addr device,
                            int label) {
  if (event.packets.empty()) throw LogicError("event_sequence: empty event");
  ml::Sequence seq;
  seq.label = label;
  seq.steps.reserve(event.packets.size());
  for (std::size_t i = 0; i < event.packets.size(); ++i) {
    double iat = i == 0 ? 0.0 : event.packets[i].ts - event.packets[i - 1].ts;
    seq.steps.push_back(packet_step(event.packets[i], device, iat));
  }
  return seq;
}

ml::SequenceDataset sequence_dataset(const std::vector<LabeledEvent>& events,
                                     net::Ipv4Addr device) {
  ml::SequenceDataset data;
  data.items.reserve(events.size());
  for (const auto& le : events) {
    data.items.push_back(event_sequence(le.event, device, static_cast<int>(le.label)));
  }
  return data;
}

}  // namespace fiat::core
