#include "core/state_codec.hpp"

#include <cstring>

#include "core/proxy.hpp"
#include "crypto/replay_cache.hpp"
#include "crypto/sha256.hpp"
#include "util/error.hpp"

namespace fiat::core {

const char* codec_status_name(CodecStatus s) {
  switch (s) {
    case CodecStatus::kOk: return "ok";
    case CodecStatus::kBadMagic: return "bad-magic";
    case CodecStatus::kVersionSkew: return "version-skew";
    case CodecStatus::kTruncated: return "truncated";
    case CodecStatus::kCorrupt: return "corrupt";
    case CodecStatus::kWrongHome: return "wrong-home";
    case CodecStatus::kBadPayload: return "bad-payload";
  }
  return "?";
}

util::Bytes seal_state(StateKind kind, std::uint32_t home,
                       const util::Bytes& payload) {
  util::ByteWriter w(kStateOverhead + payload.size());
  w.u32be(kStateMagic);
  w.u16be(kStateVersion);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u8(0);  // flags, reserved
  w.u32be(home);
  w.u64be(payload.size());
  w.raw(payload);
  crypto::Digest256 digest = crypto::Sha256::hash(w.bytes());
  w.raw(std::span<const std::uint8_t>(digest.data(), kStateChecksumSize));
  return w.take();
}

OpenResult open_state(std::span<const std::uint8_t> blob, StateKind expect_kind,
                      std::uint32_t expect_home) {
  OpenResult out;
  if (blob.size() < kStateOverhead) {
    out.status = CodecStatus::kTruncated;
    return out;
  }
  util::ByteReader r(blob);
  if (r.u32be() != kStateMagic) {
    out.status = CodecStatus::kBadMagic;
    return out;
  }
  std::uint16_t version = r.u16be();
  auto kind = static_cast<StateKind>(r.u8());
  r.skip(1);  // flags
  std::uint32_t home = r.u32be();
  std::uint64_t payload_len = r.u64be();
  if (blob.size() != kStateOverhead + payload_len) {
    out.status = CodecStatus::kTruncated;
    return out;
  }
  // Checksum before version: a future version may checksum the same way, and
  // "skewed but intact" is a more actionable diagnosis than "corrupt".
  crypto::Digest256 digest =
      crypto::Sha256::hash(blob.first(blob.size() - kStateChecksumSize));
  if (std::memcmp(digest.data(), blob.data() + blob.size() - kStateChecksumSize,
                  kStateChecksumSize) != 0) {
    out.status = CodecStatus::kCorrupt;
    return out;
  }
  if (version != kStateVersion) {
    out.status = CodecStatus::kVersionSkew;
    return out;
  }
  if (kind != expect_kind) {
    out.status = CodecStatus::kBadPayload;
    return out;
  }
  if (expect_home != kAnyHome && home != expect_home) {
    out.status = CodecStatus::kWrongHome;
    return out;
  }
  out.status = CodecStatus::kOk;
  out.payload = blob.subspan(kStateHeaderSize, payload_len);
  return out;
}

util::Bytes encode_proxy_state(const FiatProxy& proxy, std::uint32_t home) {
  util::ByteWriter w;
  proxy.encode_durable_state(w);
  return seal_state(StateKind::kProxy, home, w.bytes());
}

CodecStatus decode_proxy_state(FiatProxy& proxy,
                               std::span<const std::uint8_t> blob,
                               std::uint32_t home) {
  OpenResult opened = open_state(blob, StateKind::kProxy, home);
  if (opened.status != CodecStatus::kOk) return opened.status;
  try {
    util::ByteReader r(opened.payload);
    proxy.decode_durable_state(r);
    if (!r.done()) return CodecStatus::kBadPayload;
  } catch (const ParseError&) {
    return CodecStatus::kBadPayload;
  }
  return CodecStatus::kOk;
}

util::Bytes encode_replay_cache(const crypto::ReplayCache& cache) {
  util::ByteWriter w;
  cache.encode_state(w);
  return seal_state(StateKind::kReplayCache, kAnyHome, w.bytes());
}

CodecStatus decode_replay_cache(crypto::ReplayCache& cache,
                                std::span<const std::uint8_t> blob) {
  OpenResult opened = open_state(blob, StateKind::kReplayCache, kAnyHome);
  if (opened.status != CodecStatus::kOk) return opened.status;
  try {
    util::ByteReader r(opened.payload);
    cache.decode_state(r);
    if (!r.done()) return CodecStatus::kBadPayload;
  } catch (const ParseError&) {
    return CodecStatus::kBadPayload;
  }
  return CodecStatus::kOk;
}

void write_packet_record(util::ByteWriter& w, const net::PacketRecord& pkt) {
  w.f64be(pkt.ts);
  w.u32be(pkt.size);
  w.u32be(pkt.src_ip.value());
  w.u32be(pkt.dst_ip.value());
  w.u16be(pkt.src_port);
  w.u16be(pkt.dst_port);
  w.u8(static_cast<std::uint8_t>(pkt.proto));
  w.u8(pkt.tcp_flags);
  w.u16be(pkt.tls_version);
}

net::PacketRecord read_packet_record(util::ByteReader& r) {
  net::PacketRecord pkt;
  pkt.ts = r.f64be();
  pkt.size = r.u32be();
  pkt.src_ip = net::Ipv4Addr(r.u32be());
  pkt.dst_ip = net::Ipv4Addr(r.u32be());
  pkt.src_port = r.u16be();
  pkt.dst_port = r.u16be();
  pkt.proto = static_cast<net::Transport>(r.u8());
  pkt.tcp_flags = r.u8();
  pkt.tls_version = r.u16be();
  return pkt;
}

}  // namespace fiat::core
