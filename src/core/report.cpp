#include "core/report.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

namespace fiat::core {

SecurityReport build_security_report(const FiatProxy& proxy) {
  SecurityReport report;
  report.proofs_accepted = proxy.proofs_accepted();
  report.proofs_rejected_signature = proxy.proofs_rejected_signature();
  report.proofs_rejected_nonhuman = proxy.proofs_rejected_nonhuman();
  report.proofs_late = proxy.proofs_late();
  report.proofs_duplicate = proxy.proofs_duplicate();
  report.events_decided_degraded = proxy.events_decided_degraded();
  report.degraded_allows = proxy.degraded_allows();
  report.violations_forgiven = proxy.violations_forgiven();
  report.devices_locked = proxy.locked_device_count();
  report.attack = proxy.attack_ledger();
  report.mimicry_escalations = proxy.mimicry_escalations();
  report.notification_escalations = proxy.notification_escalations();
  report.escalation_signatures = proxy.escalation_signatures().size();

  std::map<std::string, DeviceReport> devices;
  for (const auto& decision : proxy.decision_log()) {
    if (decision.device.empty()) continue;
    auto& dev = devices[decision.device];
    dev.device = decision.device;
    if (decision.verdict == Verdict::kAllow) {
      dev.packets_allowed++;
    } else {
      dev.packets_dropped++;
    }
    if (decision.why == Disposition::kLockout) {
      // One incident per lockout *streak* start.
      if (report.incidents.empty() ||
          report.incidents.back().device != decision.device ||
          report.incidents.back().description.find("lockout") == std::string::npos ||
          decision.ts - report.incidents.back().ts > 60.0) {
        report.incidents.push_back(
            {decision.ts, decision.device,
             "device under brute-force lockout; traffic dropped"});
      }
    }
  }

  for (const auto& outcome : proxy.event_outcomes()) {
    auto& dev = devices[outcome.device];
    dev.device = outcome.device;
    dev.events_total++;
    if (outcome.treated_as_manual) {
      if (outcome.human_validated) {
        dev.events_manual_validated++;
      } else if (outcome.degraded_allowed) {
        // Fail-open let it through; the user must learn validation was off.
        report.incidents.push_back(
            {outcome.start, outcome.device,
             "manual-looking traffic ALLOWED WITHOUT VALIDATION (proxy "
             "degraded, fail-open policy)"});
      } else {
        dev.events_manual_blocked++;
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "manual-looking traffic with no human present (%zu packets "
                      "blocked)%s",
                      outcome.packets_dropped,
                      outcome.degraded ? " [proxy degraded]" : "");
        report.incidents.push_back({outcome.start, outcome.device, buf});
      }
    } else {
      dev.events_non_manual++;
    }
  }

  for (auto& [name, dev] : devices) report.devices.push_back(dev);
  std::sort(report.incidents.begin(), report.incidents.end(),
            [](const Incident& a, const Incident& b) { return a.ts < b.ts; });
  return report;
}

std::string SecurityReport::render() const {
  std::string out = "=== FIAT security report ===\n\n";
  char line[256];
  std::snprintf(line, sizeof(line),
                "humanness proofs: %zu accepted, %zu bad signature, %zu non-human\n",
                proofs_accepted, proofs_rejected_signature, proofs_rejected_nonhuman);
  out += line;
  std::snprintf(line, sizeof(line),
                "proof channel health: %zu late, %zu duplicated/replayed\n",
                proofs_late, proofs_duplicate);
  out += line;
  std::snprintf(line, sizeof(line),
                "degraded-mode decisions: %zu events, %zu allowed unvalidated, "
                "%zu lockout violations forgiven\n\n",
                events_decided_degraded, degraded_allows, violations_forgiven);
  out += line;

  std::snprintf(line, sizeof(line), "%-12s %9s %9s %7s %10s %9s %8s\n", "device",
                "allowed", "dropped", "events", "validated", "blocked", "other");
  out += line;
  for (const auto& dev : devices) {
    std::snprintf(line, sizeof(line), "%-12s %9zu %9zu %7zu %10zu %9zu %8zu\n",
                  dev.device.c_str(), dev.packets_allowed, dev.packets_dropped,
                  dev.events_total, dev.events_manual_validated,
                  dev.events_manual_blocked, dev.events_non_manual);
    out += line;
  }

  // Escalation sketch: only rendered when a guard committed signatures, so
  // benign reports stay byte-identical to pre-correlation builds.
  if (escalation_signatures > 0) {
    std::snprintf(line, sizeof(line),
                  "\nescalation sketch: %zu distinct costume signatures "
                  "(fleet correlation input)\n",
                  escalation_signatures);
    out += line;
  }

  // Campaign ground truth: only rendered when labeled attack traffic ran, so
  // benign-only reports stay byte-identical to pre-campaign builds.
  if (!attack.empty()) {
    std::snprintf(line, sizeof(line),
                  "\nattack traffic (ground truth): %llu packets injected, "
                  "%llu dropped; %llu proofs injected, %llu rejected\n",
                  static_cast<unsigned long long>(attack.injected()),
                  static_cast<unsigned long long>(attack.dropped()),
                  static_cast<unsigned long long>(attack.proofs_injected()),
                  static_cast<unsigned long long>(attack.proofs_rejected()));
    out += line;
    std::snprintf(line, sizeof(line),
                  "attack commands: %llu blocked, %llu completed; escalations: "
                  "%zu mimicry, %zu notification; devices locked: %zu\n",
                  static_cast<unsigned long long>(attack.commands_blocked()),
                  static_cast<unsigned long long>(attack.commands_completed()),
                  mimicry_escalations, notification_escalations, devices_locked);
    out += line;
    for (std::size_t i = 0; i < attack.by_class.size(); ++i) {
      const AttackClassTally& t = attack.by_class[i];
      if (t.packets == 0 && t.proofs == 0) continue;
      std::snprintf(line, sizeof(line),
                    "  %-18s %7llu pkts %7llu dropped %6llu proofs %6llu rejected\n",
                    gen::attack_name(static_cast<gen::AttackType>(i)),
                    static_cast<unsigned long long>(t.packets),
                    static_cast<unsigned long long>(t.packets_dropped),
                    static_cast<unsigned long long>(t.proofs),
                    static_cast<unsigned long long>(t.proofs_rejected));
      out += line;
    }
  }

  out += "\nincidents";
  if (incidents.empty()) {
    out += ": none\n";
  } else {
    out += ":\n";
    for (const auto& incident : incidents) {
      std::snprintf(line, sizeof(line), "  [t=%10.1fs] %-12s %s\n", incident.ts,
                    incident.device.c_str(), incident.description.c_str());
      out += line;
    }
  }
  return out;
}

}  // namespace fiat::core
