// FIAT's client-side app (§5.3), simulated on the discrete-event scheduler.
//
// The Android service's critical path when a user opens an IoT companion
// app: detect the foreground app (accessibility service, ~60-90 ms), read
// the pairing key from the TEE-backed keystore (~50 ms), extract + sign the
// 48 motion features, and ship them to the proxy over QuicLite — 0-RTT when
// a session ticket is available, 1-RTT otherwise. Sensor sampling (~250 ms
// at 250 Hz) happens off the critical path: with 1-RTT it overlaps the
// handshake; with 0-RTT the app keeps a lazy low-frequency buffer and only
// the 60-80 ms frequency ramp-up gates (the paper's accounting, which we
// follow when reporting "time to human validation").
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "core/auth_message.hpp"
#include "crypto/keystore.hpp"
#include "gen/sensors.hpp"
#include "transport/quic_lite.hpp"

namespace fiat::core {

/// One Table 7-style latency breakdown for a reported interaction.
struct ClientLatencyBreakdown {
  double app_detection = 0.0;      // seconds
  double sensor_sampling = 0.0;    // off the critical path; reported anyway
  double keystore_access = 0.0;
  double quic_round_trip = 0.0;    // send -> proxy ack at the client
  bool zero_rtt = false;
  /// App-detect + keystore + QUIC round trip (sensor sampling excluded, as
  /// in the paper). Proxy-side ML validation time is added by the bench.
  double time_to_validation() const {
    return app_detection + keystore_access + quic_round_trip;
  }
};

struct ClientTimingModel {
  double app_detect_min = 0.060, app_detect_max = 0.090;
  double sensor_sampling_mean = 0.250, sensor_sampling_sd = 0.006;
  double keystore_mean = 0.050, keystore_sd = 0.003;
  /// Userspace stack overhead added to each QUIC exchange (Cronet/JNI etc.).
  double stack_overhead_0rtt = 0.012;
  double stack_overhead_1rtt = 0.017;
};

class FiatClientApp {
 public:
  /// `psk` is the 32-byte pairing key agreed at pairing time; it is imported
  /// into the phone's keystore and never used directly.
  FiatClientApp(transport::Network& network, transport::EndpointId endpoint,
                transport::EndpointId proxy_endpoint, std::string client_id,
                std::span<const std::uint8_t> psk, sim::Rng& rng,
                ClientTimingModel timing = {});

  /// Performs a 1-RTT handshake to mint a session ticket (what a freshly
  /// paired app does in the background). `done` gets the handshake time.
  void warm_up(std::function<void(double)> done);

  /// A user (or attacker script) interacted with `app_package`; `sensors`
  /// is the captured motion window. Sends the signed proof to the proxy and
  /// reports the breakdown once the proxy acknowledges. If the transport
  /// exhausts its retransmit budget (including the 0-RTT -> 1-RTT
  /// fallback), `failed` fires instead — the proof is known-lost and the
  /// caller should capture a fresh window and re-prove, not assume the
  /// proxy saw anything.
  void report_interaction(const std::string& app_package,
                          const gen::SensorTrace& sensors,
                          std::function<void(const ClientLatencyBreakdown&)> done,
                          std::function<void()> failed = nullptr);

  /// Transport retry policy (backoff, budget, 0-RTT fallback).
  void set_retry_config(transport::QuicRetryConfig retry) {
    quic_.set_retry_config(retry);
  }

  /// Re-send the last proof verbatim (replay-attack experiments).
  bool replay_last_report() { return quic_.replay_last_zero_rtt(); }

  bool has_ticket() const { return quic_.has_ticket(); }
  crypto::KeyStore& keystore() { return keystore_; }

 private:
  transport::Network& network_;
  sim::Rng& rng_;
  ClientTimingModel timing_;
  crypto::KeyStore keystore_;  // the phone's TEE
  crypto::KeyHandle pairing_key_;
  std::uint64_t next_seq_ = 1;
  transport::QuicClient quic_;
};

}  // namespace fiat::core
