#include "core/predictability.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/error.hpp"

namespace fiat::core {

namespace {

// Uniform pointer-returning find over the packed (FlatMap) and legacy
// (unordered_map) bucket internals, so add_to_bucket can be one template.
template <class K, class V, class H>
V* map_find(util::FlatMap<K, V, H>& m, const K& k) {
  return m.find(k);
}
template <class K, class V>
V* map_find(std::unordered_map<K, V>& m, const K& k) {
  auto it = m.find(k);
  return it == m.end() ? nullptr : &it->second;
}

}  // namespace

PredictabilityAnalyzer::PredictabilityAnalyzer(net::Ipv4Addr device,
                                               PredictabilityConfig config)
    : device_(device), config_(config) {
  if (config_.bin <= 0) throw LogicError("PredictabilityAnalyzer: bin must be > 0");
  if (config_.max_match_interval <= 0) {
    throw LogicError("PredictabilityAnalyzer: max_match_interval must be > 0");
  }
}

template <class Bucket>
void PredictabilityAnalyzer::add_to_bucket(Bucket& bucket,
                                           const net::PacketRecord& pkt,
                                           std::size_t index) {
  bucket.packets++;
  if (bucket.last_ts >= 0.0) {
    double delta = pkt.ts - bucket.last_ts;
    if (delta < 0) throw LogicError("PredictabilityAnalyzer: packets out of order");
    if (delta <= config_.max_match_interval) {
      auto bin = static_cast<std::int64_t>(std::llround(delta / config_.bin));
      if (double* matched = map_find(bucket.matched, bin)) {
        // Bin already promoted: both endpoints of this delta are predictable.
        predictable_[bucket.last_index] = true;
        predictable_[index] = true;
        *matched = std::max(*matched, delta);
      } else {
        auto& pending = bucket.pending[bin];
        bool first_delta_in_bin = pending.empty();
        pending.push_back(bucket.last_index);
        pending.push_back(index);
        if (!first_delta_in_bin) {
          // Second delta with this inter-arrival: promote the bin and mark
          // everything associated with it, past and present.
          for (std::size_t i : pending) predictable_[i] = true;
          bucket.matched[bin] = delta;
          bucket.pending.erase(bin);
        }
      }
    }
  }
  bucket.last_ts = pkt.ts;
  bucket.last_index = index;
}

std::size_t PredictabilityAnalyzer::add(const net::PacketRecord& pkt) {
  std::size_t index = predictable_.size();
  predictable_.push_back(false);
  if (config_.legacy_keys) {
    std::string key =
        bucket_key(pkt, device_, config_.mode, config_.dns, config_.reverse);
    legacy_bucket_of_.push_back(key);
    add_to_bucket(legacy_buckets_[key], pkt, index);
    return index;
  }
  BucketKey key = make_bucket_key(pkt, device_, config_.mode, config_.dns,
                                  config_.reverse, interner_);
  bucket_of_.push_back(key);
  add_to_bucket(buckets_[key], pkt, index);
  return index;
}

PredictabilityResult PredictabilityAnalyzer::finish() const {
  PredictabilityResult result;
  result.predictable = predictable_;
  result.total = predictable_.size();
  for (bool p : predictable_) {
    if (p) result.predictable_count++;
  }
  if (config_.legacy_keys) {
    for (const auto& [key, state] : legacy_buckets_) {
      BucketStats stats;
      stats.packets = state.packets;
      for (const auto& [bin, interval] : state.matched) {
        stats.max_matched_interval = std::max(stats.max_matched_interval, interval);
      }
      result.buckets.emplace(key, stats);
    }
    for (std::size_t i = 0; i < predictable_.size(); ++i) {
      if (predictable_[i]) result.buckets[legacy_bucket_of_[i]].predictable++;
    }
    return result;
  }
  // Count predictable packets per packed key first, then materialize the
  // legacy string once per bucket (not once per packet) at this boundary.
  util::FlatMap<BucketKey, std::size_t> pred_counts;
  for (std::size_t i = 0; i < predictable_.size(); ++i) {
    if (predictable_[i]) pred_counts[bucket_of_[i]]++;
  }
  for (const auto& [key, state] : buckets_) {
    BucketStats stats;
    stats.packets = state.packets;
    for (const auto& [bin, interval] : state.matched) {
      stats.max_matched_interval = std::max(stats.max_matched_interval, interval);
    }
    if (const std::size_t* n = pred_counts.find(key)) stats.predictable = *n;
    result.buckets.emplace(bucket_key_string(key, config_.mode, interner_), stats);
  }
  return result;
}

PredictabilityResult analyze_predictability(std::span<const net::PacketRecord> packets,
                                            net::Ipv4Addr device,
                                            PredictabilityConfig config) {
  PredictabilityAnalyzer analyzer(device, config);
  for (const auto& pkt : packets) analyzer.add(pkt);
  return analyzer.finish();
}

std::vector<net::PacketRecord> aggregate_windows(
    std::span<const net::PacketRecord> packets, net::Ipv4Addr device,
    double window) {
  if (window <= 0) throw LogicError("aggregate_windows: window must be > 0");
  // (flow identity without size, window index) -> aggregate
  struct Agg {
    net::PacketRecord proto_pkt;
    std::uint64_t total_size = 0;
  };
  // Deliberately NOT ported to FlatMap: the sorted std::map iteration order
  // feeds the final ts-sort, whose equal-ts tie order would change under a
  // different input permutation. This is offline §2.2 analysis, not the
  // packet hot path.
  std::map<std::pair<std::string, std::int64_t>, Agg> aggregates;
  for (const auto& pkt : packets) {
    bool outbound = pkt.outbound_from(device);
    std::string flow_id = std::string(outbound ? "out|" : "in|") +
                          pkt.remote_of(device).str() + '|' +
                          net::transport_name(pkt.proto);
    auto win = static_cast<std::int64_t>(pkt.ts / window);
    auto& agg = aggregates[{flow_id, win}];
    if (agg.total_size == 0) {
      agg.proto_pkt = pkt;
      agg.proto_pkt.ts = static_cast<double>(win) * window;
    }
    agg.total_size += pkt.size;
  }
  std::vector<net::PacketRecord> out;
  out.reserve(aggregates.size());
  for (auto& [key, agg] : aggregates) {
    net::PacketRecord rec = agg.proto_pkt;
    // The window's byte total becomes the "size" the heuristic buckets on;
    // one odd packet shifts the sum and breaks the whole window (§2.2).
    rec.size = static_cast<std::uint32_t>(std::min<std::uint64_t>(agg.total_size, 0xffffffff));
    out.push_back(rec);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.ts < b.ts;
  });
  return out;
}

}  // namespace fiat::core
