#include "core/intercept.hpp"

#include "net/dns.hpp"
#include "util/error.hpp"

namespace fiat::core {

InterceptPoint::InterceptPoint(FiatProxy& proxy, ForwardFn forward)
    : proxy_(proxy), forward_(std::move(forward)) {
  if (!forward_) throw LogicError("InterceptPoint: forward callback required");
}

void InterceptPoint::snoop_dns(const net::ParsedFrame& parsed) {
  if (parsed.proto != net::Transport::kUdp || parsed.src_port != net::kDnsPort) {
    return;
  }
  try {
    auto msg = net::decode_dns(parsed.payload);
    std::size_t before = proxy_.dns().size();
    proxy_.dns().observe_message(msg);
    dns_learned_ += proxy_.dns().size() - before;
  } catch (const ParseError&) {
    // Not (parseable) DNS; the packet still goes through the normal pipeline.
  }
}

Verdict InterceptPoint::handle_frame(double ts, std::span<const std::uint8_t> frame) {
  ++frames_;
  std::optional<net::ParsedFrame> parsed;
  try {
    parsed = net::parse_frame(frame);
  } catch (const ParseError&) {
    ++malformed_;
    forward_(frame, Verdict::kDrop);
    return Verdict::kDrop;
  }
  if (!parsed) {
    // Non-IPv4 (ARP, IPv6, ...): outside FIAT's scope, forward as-is.
    forward_(frame, Verdict::kAllow);
    return Verdict::kAllow;
  }
  snoop_dns(*parsed);
  Verdict verdict = proxy_.process(parsed->to_record(ts));
  forward_(frame, verdict);
  return verdict;
}

}  // namespace fiat::core
