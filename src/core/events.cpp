#include "core/events.hpp"

#include "util/error.hpp"

namespace fiat::core {

EventGrouper::EventGrouper(double gap_threshold) : gap_(gap_threshold) {
  if (gap_threshold <= 0) throw LogicError("EventGrouper: gap must be > 0");
}

std::optional<UnpredictableEvent> EventGrouper::add(const net::PacketRecord& pkt) {
  std::optional<UnpredictableEvent> closed;
  if (!current_.empty() && pkt.ts - current_.back().ts > gap_) {
    closed = UnpredictableEvent{std::move(current_)};
    current_.clear();
  }
  current_.push_back(pkt);
  return closed;
}

std::optional<UnpredictableEvent> EventGrouper::flush() {
  if (current_.empty()) return std::nullopt;
  UnpredictableEvent event{std::move(current_)};
  current_.clear();
  return event;
}

std::vector<UnpredictableEvent> group_events(
    std::span<const net::PacketRecord> packets, const std::vector<bool>& predictable,
    double gap_threshold) {
  if (packets.size() != predictable.size()) {
    throw LogicError("group_events: flag vector size mismatch");
  }
  EventGrouper grouper(gap_threshold);
  std::vector<UnpredictableEvent> events;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    if (predictable[i]) continue;
    if (auto closed = grouper.add(packets[i])) events.push_back(std::move(*closed));
  }
  if (auto last = grouper.flush()) events.push_back(std::move(*last));
  return events;
}

}  // namespace fiat::core
