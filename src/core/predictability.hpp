// The predictability heuristic (§2.1) in its offline/measurement form.
//
// Packets go into buckets (see bucket.hpp); within a bucket we compute the
// inter-arrival time between consecutive packets. If an inter-arrival
// matches a previously observed inter-arrival for that bucket, then *all*
// packets associated with that inter-arrival — previous or future — are
// predictable. "Matches" is implemented by quantizing inter-arrivals to
// `bin`-second buckets, and only inter-arrivals up to `max_match_interval`
// participate (the paper deliberately refuses to chase daily-scale
// recurrence, §3.2, and its Figure 1(c) bounds useful intervals at ~10 min).
//
// Hot path: buckets are keyed by packed core::BucketKey in open-addressing
// util::FlatMap (no per-packet string build); finish() reconstructs the
// legacy string keys once per bucket so PredictabilityResult is unchanged
// for every consumer. The seed's string-keyed path survives behind
// PredictabilityConfig::legacy_keys for the bench baseline and the
// golden-equivalence suite.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/bucket.hpp"
#include "core/bucket_key.hpp"
#include "util/flat_map.hpp"

namespace fiat::core {

struct PredictabilityConfig {
  FlowMode mode = FlowMode::kPortLess;
  double bin = 0.5;                  // seconds; inter-arrival quantization
  double max_match_interval = 1200.0; // 2x the Fig 1(c) max of 10 minutes
  const net::DnsTable* dns = nullptr;
  const net::ReverseResolver* reverse = nullptr;
  /// Seed-fidelity baseline: per-packet string keys in node-based
  /// containers. Behavior identical (golden-equivalence tested).
  bool legacy_keys = false;
};

struct BucketStats {
  std::size_t packets = 0;
  std::size_t predictable = 0;
  double max_matched_interval = 0.0;  // seconds; 0 if nothing ever matched

  bool operator==(const BucketStats&) const = default;
};

struct PredictabilityResult {
  std::vector<bool> predictable;  // parallel to the input packets
  std::size_t total = 0;
  std::size_t predictable_count = 0;
  std::unordered_map<std::string, BucketStats> buckets;

  double ratio() const {
    return total == 0 ? 0.0 : static_cast<double>(predictable_count) /
                                  static_cast<double>(total);
  }
};

/// Streaming analyzer; feed packets in timestamp order, then finish().
class PredictabilityAnalyzer {
 public:
  explicit PredictabilityAnalyzer(net::Ipv4Addr device,
                                  PredictabilityConfig config = {});

  /// Returns the index assigned to this packet.
  std::size_t add(const net::PacketRecord& pkt);
  /// Finalizes and returns the result (the analyzer can keep accepting
  /// packets afterwards; finish() may be called repeatedly).
  PredictabilityResult finish() const;

  const PredictabilityConfig& config() const { return config_; }

 private:
  struct BucketState {
    double last_ts = -1.0;
    std::size_t last_index = 0;
    std::size_t packets = 0;
    /// bin -> indices of packets involved in a delta of this bin, kept until
    /// the bin matches (then flushed and the bin is promoted).
    util::FlatMap<std::int64_t, std::vector<std::size_t>> pending;
    /// bins with >= 2 observed deltas: every associated packet is predictable.
    util::FlatMap<std::int64_t, double> matched;  // bin -> raw interval
  };
  struct LegacyBucketState {
    double last_ts = -1.0;
    std::size_t last_index = 0;
    std::size_t packets = 0;
    std::unordered_map<std::int64_t, std::vector<std::size_t>> pending;
    std::unordered_map<std::int64_t, double> matched;
  };

  template <class Bucket>
  void add_to_bucket(Bucket& bucket, const net::PacketRecord& pkt,
                     std::size_t index);

  net::Ipv4Addr device_;
  PredictabilityConfig config_;
  DomainInterner interner_;  // per-device; owns this analyzer's domain ids
  std::vector<bool> predictable_;

  util::FlatMap<BucketKey, BucketState> buckets_;
  std::vector<BucketKey> bucket_of_;  // per packet, for per-bucket stats

  // legacy_keys baseline state (empty unless the flag is set).
  std::unordered_map<std::string, LegacyBucketState> legacy_buckets_;
  std::vector<std::string> legacy_bucket_of_;
};

/// One-shot convenience over a full trace.
PredictabilityResult analyze_predictability(std::span<const net::PacketRecord> packets,
                                            net::Ipv4Addr device,
                                            PredictabilityConfig config = {});

/// IoT-Inspector-style degradation (§2.2): collapses the trace into 5-second
/// per-bucket aggregates (one synthetic packet per bucket per window, size =
/// sum of sizes) before analysis, showing how coarse aggregation destroys
/// predictability.
std::vector<net::PacketRecord> aggregate_windows(
    std::span<const net::PacketRecord> packets, net::Ipv4Addr device,
    double window = 5.0);

}  // namespace fiat::core
