// FIAT's server-side IoT proxy (§5.4, Figure 4).
//
// Pipeline per intercepted packet (ARP-spoof + NFQUEUE in the paper; here an
// in-process intercept point fed by the simulator):
//
//   bootstrap?  -> allow + learn rules
//   rule hit?   -> predictable -> ALLOW
//   else        -> group into unpredictable events (5 s gap);
//                  the first N packets of an event are allowed, then the
//                  per-device classifier runs on what was seen:
//                    non-manual -> ALLOW the rest of the event
//                    manual     -> ALLOW only if a fresh, signed, humanness-
//                                  validated proof from the paired phone
//                                  covers this window; otherwise DROP, alert,
//                                  and count towards brute-force lockout.
//
// The proxy also honours DAG device-to-device edges (§7) and keeps a
// tamper-evident decision log (§7 "Technology Acceptance").
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/attack_label.hpp"
#include "core/auth_message.hpp"
#include "core/events.hpp"
#include "core/humanness.hpp"
#include "core/manual_classifier.hpp"
#include "core/rules.hpp"
#include "crypto/keystore.hpp"
#include "crypto/lifecycle.hpp"
#include "telemetry/sink.hpp"

namespace fiat::core {

enum class Verdict { kAllow, kDrop };

enum class Disposition {
  kNonIot,        // packet does not involve a registered device
  kBootstrap,     // learning window: allow all
  kRuleHit,       // predictable
  kEventPrefix,   // first N packets of an unpredictable event
  kNonManual,     // event classified control/automated
  kManualValidated,
  kManualUnvalidated,  // dropped: no humanness proof
  kLockout,       // device under brute-force lockout
  kDagEdge,       // device-to-device whitelist
  kDegradedAllow, // allowed by fail-open/grace policy while degraded
};

/// Number of Disposition values (for counter arrays indexed by disposition).
inline constexpr std::size_t kDispositionCount = 10;

const char* disposition_name(Disposition d);

/// What the proxy does with a manual-looking event it cannot properly
/// validate because the system itself is degraded — the proof channel is
/// dark (network fault between phone and proxy) or the device's classifier
/// is missing/untrained:
///   * kFailClosed — strict paper behavior: drop, alert, count towards
///     lockout. Secure, but a flaky network can disconnect devices.
///   * kFailOpen   — allow the event (available but insecure; what every
///     middlebox that silently wedges effectively does).
///   * kGrace      — fail closed for verdicts, but stretch proof freshness
///     by `degraded_grace` seconds and do NOT count lockout violations
///     while the proof channel is dark: a device must never be locked out
///     because the network ate its proofs. An accepted proof additionally
///     grants late-proof amnesty: violations recorded inside the window it
///     covers are retroactively forgiven (the proof shows a real user was
///     there; the network merely delayed it), unlocking the device if that
///     drops it back below the lockout threshold. Attack traffic gets no
///     amnesty — no proof ever arrives for it.
enum class FailPolicy { kFailClosed, kFailOpen, kGrace };

const char* fail_policy_name(FailPolicy p);

struct ProxyConfig {
  RuleTableConfig rules;
  double bootstrap_duration = 1200.0;  // 20 minutes (§6)
  /// Keep promoting inter-arrival bins to rules after bootstrap (a miss
  /// still becomes an unpredictable event; this only lets slow flows earn
  /// rules over time).
  bool continue_learning = true;
  double event_gap = 5.0;
  /// Freshness window: a humanness proof covers manual events starting
  /// within this many seconds after (or slightly before) the proof.
  double human_validity_window = 10.0;
  double human_pre_window = 2.0;  // proof may trail the traffic slightly
  int lockout_threshold = 3;
  double lockout_window = 300.0;
  bool auto_unlock = false;        // paper: manual re-enable by the user
  double lockout_duration = 3600.0;  // used when auto_unlock is true

  // ---- degraded-mode policy ----------------------------------------------
  FailPolicy degraded_policy = FailPolicy::kFailClosed;
  /// kGrace: extra proof-staleness allowance while degraded.
  double degraded_grace = 30.0;
  /// The proof channel is considered dark when it was active before but has
  /// shown no traffic (not even rejected proofs) for this long.
  double channel_dark_after = 60.0;

  // ---- mimicry / evasion hardening ---------------------------------------
  /// WiFinger counter-measure: an unpredictable event whose packets are
  /// mostly *known-bucket misses* (the 6-tuple matches a bucket that has
  /// earned allow rules, but the inter-arrival bin is wrong) looks like
  /// someone replaying the device's own predictable signatures off-rhythm.
  /// If the classifier calls such an event non-manual, escalate it to the
  /// humanness gate instead of waving the rest of the event through.
  bool mimicry_guard = true;
  /// Minimum known-bucket misses in the event before the guard can fire.
  std::size_t mimicry_min_costume = 3;
  /// ... and they must be at least this fraction of the event's packets.
  double mimicry_costume_fraction = 0.6;
  /// Chaff-prefix counter-measure for simple-rule devices: their classifier
  /// keys on the FIRST packet only, so an attacker can open an event with
  /// junk and slip the real command notification through mid-event. When a
  /// packet matching the device's notification signature (inbound, exact
  /// rule size) arrives inside an event already classified non-manual,
  /// re-escalate the event to the humanness gate.
  bool notification_escalation = true;

  // ---- batch pipeline (DESIGN.md §15) ------------------------------------
  /// Use the SIMD kernels (core/simd.hpp) for batched key hashing and size
  /// saturation inside process_batch(). The kernels replicate the scalar
  /// math bit for bit, so this is a pure performance knob — verdicts,
  /// telemetry, and serialized state are identical either way. Resolved
  /// from the CLI's --simd on|off|auto; ignored when the build carries no
  /// vector ISA (simd::available() is false).
  bool simd = true;

  // ---- credential lifecycle (crypto/lifecycle.hpp, DESIGN.md §16) --------
  /// Rotation overlap / enrollment TTL / credential expiry for the proxy's
  /// credential registry.
  crypto::LifecycleConfig lifecycle;
};

struct ProxyDevice {
  std::string name;
  net::Ipv4Addr ip;
  /// Packets of an unpredictable event allowed before classification (the
  /// footnote-2 N; simple-rule devices decide on the first packet, so 0).
  std::size_t allowed_prefix = 5;
  ManualEventClassifier classifier;
  /// Companion app package a humanness proof must name.
  std::string app_package;
};

struct Decision {
  double ts = 0.0;
  std::string device;
  Verdict verdict = Verdict::kAllow;
  Disposition why = Disposition::kNonIot;
  int event_seq = -1;
};

/// O(1)-snapshot running counters, maintained on every decision. A fleet
/// runtime aggregating thousands of proxies reads these instead of walking
/// the decision log (which grows with traffic).
struct ProxyCounters {
  std::size_t packets_allowed = 0;
  std::size_t packets_dropped = 0;
  /// Decisions by Disposition (index = static_cast<std::size_t>(why)).
  std::array<std::size_t, kDispositionCount> by_disposition{};
  std::size_t events_closed = 0;
  std::size_t alerts = 0;
  std::size_t proofs_accepted = 0;
  std::size_t proofs_rejected_signature = 0;
  std::size_t proofs_rejected_nonhuman = 0;
  std::size_t proofs_late = 0;
  std::size_t proofs_duplicate = 0;
  std::size_t events_decided_degraded = 0;
  std::size_t degraded_allows = 0;
  std::size_t violations_forgiven = 0;

  ProxyCounters& operator+=(const ProxyCounters& o);
  bool operator==(const ProxyCounters&) const = default;
};

/// Outcome of one completed (or closed) unpredictable event.
struct EventOutcome {
  std::string device;
  int event_seq = -1;
  double start = 0.0;
  gen::TrafficClass classified = gen::TrafficClass::kControl;
  bool treated_as_manual = false;
  bool human_validated = false;
  /// Event was decided while the proxy was degraded (dark proof channel or
  /// untrained classifier) ...
  bool degraded = false;
  /// ... and the fail policy let it through without a proof.
  bool degraded_allowed = false;
  std::size_t packets_allowed = 0;
  std::size_t packets_dropped = 0;
};

class FiatProxy {
 public:
  FiatProxy(ProxyConfig config, HumannessVerifier humanness);

  // Movable so a fleet shard can own proxies in a vector. The DNS table
  // lives behind a unique_ptr because rule tables hold a pointer into it;
  // moving the proxy must not invalidate them. Not copyable (rule tables
  // would keep pointing at the source's DNS view).
  FiatProxy(FiatProxy&&) = default;
  FiatProxy& operator=(FiatProxy&&) = default;
  FiatProxy(const FiatProxy&) = delete;
  FiatProxy& operator=(const FiatProxy&) = delete;

  // ---- setup -------------------------------------------------------------
  void add_device(ProxyDevice device);
  /// Pairs a phone statically (the seed path): installs a generation-0
  /// credential whose key goes straight into the proxy's TEE keystore.
  void pair_phone(const std::string& client_id, std::span<const std::uint8_t> psk);
  /// Registers the out-of-band setup code for a phone that will enroll via
  /// the lifecycle protocol instead of being pre-provisioned. No proof from
  /// this client verifies until enrollment completes.
  void register_enrollable(const std::string& client_id,
                           std::span<const std::uint8_t> setup_code);
  void add_dag_edge(net::Ipv4Addr src, net::Ipv4Addr dst);
  /// The proxy's passive DNS view (fed by observed DNS responses; rules use
  /// it for the PortLess bucket keys).
  net::DnsTable& dns() { return *dns_; }

  /// Attaches a telemetry sink (thread-owned by whoever runs this proxy;
  /// see telemetry/sink.hpp). All proxy metrics are Domain::kSim — they
  /// derive from packet timestamps and counts only. `home` tags the trace
  /// spans (Chrome pid) so a fleet merge keeps homes apart. Pass nullptr to
  /// detach. Metric pointers are cached here, so steady-state recording
  /// never does a name lookup.
  void set_telemetry(telemetry::Sink* sink, std::uint32_t home = 0);

  // ---- data path ---------------------------------------------------------
  /// Processes one intercepted packet; `now` defaults to the packet time.
  Verdict process(const net::PacketRecord& pkt);
  /// Same, with a ground-truth attack label (campaign replays). The verdict
  /// is tallied into the attack ledger; a benign label is inert, so this is
  /// byte-for-byte the unlabeled path for normal traffic.
  Verdict process(const net::PacketRecord& pkt, const AttackLabel& label);

  /// Humanness proof arriving from the phone (QuicLite payload: u64 seq ||
  /// sealed auth message). Returns the validated message when the signature
  /// verifies AND the motion features pass the humanness tree.
  std::optional<AuthMessage> on_auth_payload(const std::string& client_id,
                                             std::span<const std::uint8_t> payload,
                                             double now);
  /// Labeled variant: attack proof deliveries (replay floods) are tallied
  /// into the ledger's proof columns.
  std::optional<AuthMessage> on_auth_payload(const std::string& client_id,
                                             std::span<const std::uint8_t> payload,
                                             double now, const AttackLabel& label);

  /// Applies one credential-lifecycle command (enroll begin/complete,
  /// rotate, revoke) at sim time `now`. Fleet items of Kind::kLifecycle land
  /// here; the QUIC enrollment session (fleet/enrollment.hpp) produces the
  /// enroll commands from datagrams. Idempotent for revocations, so restores
  /// can re-drive the fleet revocation ledger without perturbing state.
  crypto::CredentialRegistry::ApplyResult on_lifecycle(
      const std::string& client_id, const crypto::LifecycleCommand& cmd,
      double now);

  /// Batched data path (DESIGN.md §15): byte-identical to calling process()
  /// per packet in order — same verdicts, decision log, counters, ledger,
  /// signals, telemetry, and serialized state — but amortizes the per-packet
  /// work: the whole batch is key-packed into a reusable SoA scratch, keys
  /// are hashed in bulk (core/simd.hpp), and the rule tables are probed with
  /// software prefetch before packets are resolved one by one. Packets that
  /// fall outside the fast path (non-IoT, DAG edges, legacy tables, lockout
  /// drops, event-forming misses) take the scalar leg and are counted in
  /// batch_scalar_fallbacks(). `labels` is either empty (all benign) or
  /// exactly pkts.size() ground-truth labels.
  void process_batch(std::span<const net::PacketRecord> pkts,
                     std::span<const AttackLabel> labels = {});

  /// Packets process_batch() routed through the scalar leg (see above).
  /// Sim-deterministic: a pure function of the traffic, independent of how
  /// the stream was segmented into batches. Mirrored into the sim-domain
  /// "proxy.batch.scalar_fallbacks" counter when telemetry is attached.
  std::size_t batch_scalar_fallbacks() const { return batch_fallbacks_; }

  /// User manually re-enables a locked-out device (§5.4).
  void unlock_device(const std::string& name);

  // ---- degraded-mode signals ---------------------------------------------
  /// Any sign of life on the proof channel (a datagram from a paired phone,
  /// even one that fails validation). on_auth_payload() calls this
  /// implicitly; transport glue may also call it for channel keep-alives.
  void on_proof_channel_activity(double now);
  /// Operator override: force the proof channel to be treated as down/up
  /// regardless of the staleness heuristic.
  void set_proof_channel_forced_down(bool down) { channel_forced_down_ = down; }
  /// True when the channel was alive before but has been silent longer than
  /// `channel_dark_after` (or is forced down). Before first contact the
  /// channel is unknown, not dark — a proxy fresh out of bootstrap must not
  /// start in degraded mode.
  bool proof_channel_dark(double now) const;

  // ---- introspection -----------------------------------------------------
  /// Cheap counters snapshot: O(1), no log walk. This is what FleetEngine
  /// aggregates per report; the full SecurityReport still comes from
  /// build_security_report().
  ProxyCounters counters() const;
  const std::vector<Decision>& decision_log() const { return log_; }
  const std::vector<EventOutcome>& event_outcomes() const { return outcomes_; }
  /// Closes any open events (end of trace) so their outcomes are recorded.
  void flush_events();

  // ---- durable state (state_codec.hpp) -----------------------------------
  /// Serializes everything a crash must not lose: learned rules (packed or
  /// legacy form), the DNS view, per-device event/lockout state, proof
  /// freshness, counters, the decision/outcome logs, and bootstrap progress.
  /// Devices, phone pairings, classifiers, and DAG edges are NOT included —
  /// they are configuration, rebuilt from the same spec that built this
  /// proxy. Field order is canonical (sorted), so encode→decode→encode is
  /// byte-identical.
  void encode_durable_state(util::ByteWriter& w) const;
  /// Restores a snapshot taken from a proxy built from the *same* spec.
  /// Throws fiat::ParseError on malformed input or a device-set mismatch; on
  /// throw the proxy state is unspecified — discard it and rebuild from the
  /// spec (state_codec's cold-start fallback).
  void decode_durable_state(util::ByteReader& r);
  /// Marks the bootstrap window as already elapsed as of `now`. A cold
  /// restart under fail-closed uses this: re-learning rules from attack-
  /// reachable traffic would hand an attacker the 20-minute allow-all
  /// window, so the restarted proxy starts strict instead.
  void force_bootstrap_elapsed(double now);

  std::size_t rule_count() const;
  bool in_bootstrap(double now) const;
  bool device_locked(const std::string& name, double now) const;
  std::size_t alerts() const { return alerts_; }
  std::size_t proofs_accepted() const { return proofs_accepted_; }
  std::size_t proofs_rejected_signature() const { return proofs_bad_sig_; }
  std::size_t proofs_rejected_nonhuman() const { return proofs_nonhuman_; }
  // Degraded-mode health counters (surfaced in the security report).
  std::size_t proofs_late() const { return proofs_late_; }
  std::size_t proofs_duplicate() const { return proofs_duplicate_; }
  std::size_t events_decided_degraded() const { return events_degraded_; }
  std::size_t degraded_allows() const { return degraded_allows_; }
  /// Would-be lockout violations forgiven by kGrace while degraded.
  std::size_t violations_forgiven() const { return violations_forgiven_; }
  /// Proofs rejected because the client's credentials were revoked, expired
  /// or not yet enrolled (distinct from signature failures: the pairing is
  /// *known*, its lifecycle state just forbids use).
  std::size_t proofs_rejected_lifecycle() const { return proofs_lifecycle_; }
  /// Per-client sim time of the FIRST lifecycle-rejected proof — with the
  /// revocation's effective time this measures observed revocation latency.
  const std::map<std::string, double>& first_lifecycle_reject_ts() const {
    return first_lifecycle_reject_ts_;
  }
  /// The credential registry (enrollment/rotation/revocation bookkeeping).
  const crypto::CredentialRegistry& credentials() const { return credentials_; }
  /// Ground-truth attack accounting (empty unless labeled traffic ran).
  const AttackLedger& attack_ledger() const { return ledger_; }
  /// Events the mimicry guard escalated to the humanness gate.
  std::size_t mimicry_escalations() const { return mimicry_escalations_; }
  /// Events re-escalated by the notification-signature check.
  std::size_t notification_escalations() const { return notification_escalations_; }
  /// Devices currently under brute-force lockout.
  std::size_t locked_device_count() const;

  // ---- fleet-correlation signals (telemetry/signals.hpp) ------------------
  /// signature → count of costume packets inside guard-escalated events: the
  /// cross-home fingerprint a sniff-and-replay campaign leaves behind.
  const std::map<std::uint64_t, std::uint64_t>& escalation_signatures() const {
    return escalation_signatures_;
  }
  /// Per-client accepted-proof sequence high-water.
  const std::map<std::string, std::uint64_t>& proof_seq_high_water() const {
    return last_proof_seq_;
  }
  /// Per-client rejected proof payloads (duplicate + bad signature).
  const std::map<std::string, std::uint64_t>& proof_rejections() const {
    return proof_rejections_;
  }

 private:
  struct HumanProof {
    double time = 0.0;
    std::string app_package;
  };

  struct DeviceState {
    ProxyDevice config;
    RuleTable rules;
    EventGrouper grouper;
    // Open-event state.
    int event_seq = -1;
    std::size_t event_packets = 0;
    std::size_t allowed = 0;
    std::size_t dropped = 0;
    double event_start = 0.0;
    double event_last = 0.0;  // ts of the newest packet in the open event
    std::optional<gen::TrafficClass> classified;
    bool human_validated = false;
    bool degraded = false;       // event decided while proxy degraded
    bool degraded_open = false;  // fail-open verdict for this event
    // Mimicry bookkeeping for the open event.
    std::size_t event_costume = 0;  // known-bucket misses (off-rhythm replays)
    bool escalated = false;         // a guard re-routed this event to manual
    /// Signatures (telemetry::packet_signature) of the open event's costume
    /// packets; committed into the home's escalation sketch at close iff a
    /// guard escalated the event, discarded otherwise.
    std::vector<std::uint64_t> pending_costume_sigs;
    // Lockout bookkeeping.
    std::deque<double> recent_violations;
    double locked_until = -1.0;
    bool locked = false;

    DeviceState(ProxyDevice cfg, const RuleTableConfig& rules_cfg, double gap)
        : config(std::move(cfg)), rules(config.ip, rules_cfg), grouper(gap) {}
  };

  /// Per-packet lane assignment inside process_batch (BatchScratch::lane).
  enum : std::uint8_t {
    kLaneScalar = 0,   // full process_packet(): non-IoT, DAG edge, legacy keys
    kLanePrepared = 1, // key packed + hashed + bucket probed up front
    kLaneResolve = 2,  // device eligible but key not peekable (interner miss)
  };

  /// Reusable SoA scratch for process_batch: parallel per-packet arrays,
  /// grown on demand and never shrunk, so steady-state batches allocate
  /// nothing. Not part of durable state.
  struct BatchScratch {
    std::vector<std::uint8_t> lane;
    std::vector<DeviceState*> dev;
    std::vector<std::uint32_t> sizes;  // saturated classic sizes
    std::vector<BucketKey> keys;
    std::vector<std::uint64_t> hashes;
    std::vector<RuleTable::BucketState*> buckets;
    std::vector<std::uint64_t> snaps;  // bucket-table mutation snapshots
    /// Per-device gather lists for the probe phase (probe_batch is a
    /// RuleTable op, and each device owns its own table). Grow-only: slots
    /// are reused across batches to keep the idx capacity.
    struct DevGroup {
      DeviceState* dev = nullptr;
      std::vector<std::uint32_t> idx;  // packet indices, arrival order
    };
    std::vector<DevGroup> groups;
    std::vector<BucketKey> gkeys;          // gathered keys, one device
    std::vector<std::uint64_t> ghashes;    // gathered hashes
    std::vector<RuleTable::BucketState*> gbuckets;
    /// Deferred counter bumps for the in-flight batch. While a batch drains,
    /// record() and count_batch_fallback() accumulate here instead of
    /// touching counters_/the telemetry registry per packet; the deltas are
    /// flushed before process_batch returns, so anything that observes the
    /// proxy between batches sees exactly the scalar values. The decision
    /// log entry and trace span are NOT deferred — their per-packet order is
    /// part of the byte-identity contract.
    struct Tally {
      std::uint64_t allowed = 0;
      std::uint64_t dropped = 0;
      std::array<std::uint64_t, kDispositionCount> by_disposition{};
      std::uint64_t fallbacks = 0;
    };
    Tally tally;
  };

  DeviceState* device_of(const net::PacketRecord& pkt);
  Verdict process_packet(const net::PacketRecord& pkt);
  /// Resolves one eligible (kLanePrepared/kLaneResolve) packet in arrival
  /// order: the lockout/bootstrap/match state machine of process_packet with
  /// the key work already done.
  Verdict process_batch_lane(const net::PacketRecord& pkt, DeviceState& dev,
                             bool prepared, const BucketKey& key,
                             std::uint64_t hash, RuleTable::BucketState* bucket,
                             std::uint64_t snap);
  /// Ledger tally shared by process(pkt, label) and process_batch.
  void tally_attack(const AttackLabel& label, Verdict v);
  void count_batch_fallback();
  Verdict decide_event_packet(DeviceState& dev, const net::PacketRecord& pkt);
  /// The manual-classification gate shared by genuine classifications and
  /// guard escalations: degraded accounting, proof lookup, alert/violation.
  void enter_manual_gate(DeviceState& dev, double now, bool degraded);
  void close_event(DeviceState& dev);
  bool fresh_proof_for(const DeviceState& dev, double now, double slack = 0.0) const;
  void count_violation(DeviceState& dev, double now, bool degraded);
  /// kGrace late-proof amnesty: a proof for `app` captured at `capture_time`
  /// and accepted at `now` forgives violations inside the span it covers.
  void forgive_covered_violations(const std::string& app, double capture_time,
                                  double now);
  Verdict record(double ts, const std::string& device, Verdict v, Disposition why,
                 int event_seq);

  ProxyConfig config_;
  HumannessVerifier humanness_;
  crypto::KeyStore keystore_;  // the proxy's SGX-style enclave store
  /// Phone pairings with their full lifecycle (generations, pending
  /// enrollments); replaces the old flat client -> handle map. Durable
  /// (state version 4).
  crypto::CredentialRegistry credentials_;
  std::map<std::uint32_t, DeviceState> devices_;  // by device IP
  /// Flat (ip, state) mirror of devices_ for the hot path: homes have a
  /// handful of devices, so a linear scan beats two map descents per packet.
  /// Map nodes are stable, so the pointers survive proxy moves; rebuilt by
  /// add_device and never changed while traffic flows.
  std::vector<std::pair<std::uint32_t, DeviceState*>> device_index_;
  DeviceDag dag_;
  // unique_ptr: rule tables capture a pointer to this table, which must
  // survive a move of the proxy (see the move-constructor comment).
  std::unique_ptr<net::DnsTable> dns_ = std::make_unique<net::DnsTable>();

  double first_packet_ts_ = -1.0;
  bool bootstrap_forced_ = false;  // force_bootstrap_elapsed() was called
  int next_event_seq_ = 0;
  ProxyCounters counters_;
  std::vector<Decision> log_;
  std::vector<EventOutcome> outcomes_;
  std::vector<HumanProof> proofs_;
  std::size_t alerts_ = 0;
  std::size_t proofs_accepted_ = 0;
  std::size_t proofs_bad_sig_ = 0;
  std::size_t proofs_nonhuman_ = 0;

  // Degraded-mode state.
  bool channel_ever_active_ = false;
  bool channel_forced_down_ = false;
  double last_channel_activity_ = -1.0;
  std::map<std::string, std::uint64_t> last_proof_seq_;  // per client, dedup
  std::size_t proofs_late_ = 0;
  std::size_t proofs_duplicate_ = 0;
  std::size_t events_degraded_ = 0;
  std::size_t degraded_allows_ = 0;
  std::size_t violations_forgiven_ = 0;

  // Attack accounting (ground-truth labels) + guard escalations.
  AttackLedger ledger_;
  std::size_t mimicry_escalations_ = 0;
  std::size_t notification_escalations_ = 0;

  // Batch pipeline (not durable: a restore replays through either path).
  BatchScratch scratch_;
  std::size_t batch_fallbacks_ = 0;
  /// config_.simd && simd::available(), resolved once at construction so
  /// process_batch pays no per-call dispatch query.
  bool simd_ready_ = false;
  /// True only while process_batch drains; routes record()'s counter bumps
  /// into scratch_.tally.
  bool batch_tally_active_ = false;

  // Fleet-correlation signals (durable, state version 3).
  std::map<std::uint64_t, std::uint64_t> escalation_signatures_;
  std::map<std::string, std::uint64_t> proof_rejections_;  // per client

  // Credential-lifecycle rejections (durable, state version 4).
  std::size_t proofs_lifecycle_ = 0;
  std::map<std::string, double> first_lifecycle_reject_ts_;  // per client

  // Telemetry (optional; cached metric pointers, see set_telemetry()).
  telemetry::Sink* telemetry_ = nullptr;
  std::uint32_t telemetry_home_ = 0;
  telemetry::Counter* tm_allowed_ = nullptr;
  telemetry::Counter* tm_dropped_ = nullptr;
  std::array<telemetry::Counter*, kDispositionCount> tm_disposition_{};
  telemetry::Histogram* tm_decision_latency_ = nullptr;
  std::array<telemetry::Histogram*, kDispositionCount> tm_latency_by_why_{};
  telemetry::Histogram* tm_event_duration_ = nullptr;
  telemetry::Histogram* tm_proof_age_ = nullptr;
  telemetry::Counter* tm_batch_fallbacks_ = nullptr;
};

}  // namespace fiat::core
