// Unpredictable-event grouping (§3.2).
//
// Given the stream of *unpredictable* packets, consecutive packets less than
// `gap_threshold` (5 s in the paper; the choice "has very limited impact")
// apart belong to the same event; a larger gap closes the event and starts
// the next one.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "net/packet.hpp"

namespace fiat::core {

struct UnpredictableEvent {
  std::vector<net::PacketRecord> packets;
  double start() const { return packets.front().ts; }
  double end() const { return packets.back().ts; }
};

class EventGrouper {
 public:
  explicit EventGrouper(double gap_threshold = 5.0);

  /// Feeds one unpredictable packet (in timestamp order). Returns the event
  /// that just *closed*, if this packet opened a new one.
  std::optional<UnpredictableEvent> add(const net::PacketRecord& pkt);
  /// Closes and returns the in-progress event, if any.
  std::optional<UnpredictableEvent> flush();

  /// Peek at the currently-open event (empty if none).
  const std::vector<net::PacketRecord>& open_packets() const { return current_; }
  double gap_threshold() const { return gap_; }

  /// State-codec hook (state_codec.hpp): reinstates the in-progress event
  /// exactly as snapshotted, so a warm-restored proxy closes it at the same
  /// packet the uninterrupted run would have.
  void restore_open(std::vector<net::PacketRecord> packets) {
    current_ = std::move(packets);
  }

 private:
  double gap_;
  std::vector<net::PacketRecord> current_;
};

/// One-shot: groups a full trace's unpredictable packets. `predictable` is
/// parallel to `packets` (the PredictabilityResult flag vector); only
/// packets with predictable[i] == false join events.
std::vector<UnpredictableEvent> group_events(
    std::span<const net::PacketRecord> packets, const std::vector<bool>& predictable,
    double gap_threshold = 5.0);

}  // namespace fiat::core
