#include "core/manual_classifier.hpp"

#include "core/features.hpp"
#include "ml/naive_bayes.hpp"
#include "util/error.hpp"

namespace fiat::core {

ManualEventClassifier ManualEventClassifier::simple_rule(std::uint32_t rule_size) {
  if (rule_size == 0) throw LogicError("simple_rule: size must be non-zero");
  ManualEventClassifier c;
  c.rule_size_ = rule_size;
  return c;
}

ManualEventClassifier ManualEventClassifier::train(
    const std::vector<LabeledEvent>& events, net::Ipv4Addr device,
    std::unique_ptr<ml::Classifier> model) {
  ml::Dataset data = event_dataset(events, device);
  bool has_manual = false;
  for (int y : data.y) {
    if (y == static_cast<int>(gen::TrafficClass::kManual)) has_manual = true;
  }
  if (!has_manual) {
    throw LogicError("ManualEventClassifier::train: no manual events in training data");
  }

  ManualEventClassifier c;
  data.validate();
  ml::Dataset scaled = c.scaler_.fit_transform(data);
  std::unique_ptr<ml::Classifier> m =
      model ? std::move(model) : std::make_unique<ml::BernoulliNB>();
  m->fit(scaled);
  c.model_ = std::shared_ptr<const ml::Classifier>(std::move(m));
  return c;
}

util::Bytes ManualEventClassifier::save() const {
  util::ByteWriter w;
  if (uses_simple_rule()) {
    w.u8(1);
    w.u32be(rule_size_);
    return w.take();
  }
  const auto* nb = dynamic_cast<const ml::BernoulliNB*>(model_.get());
  if (!nb) {
    throw LogicError(
        "ManualEventClassifier::save: only simple-rule and BernoulliNB "
        "classifiers are serializable");
  }
  w.u8(2);
  scaler_.save(w);
  nb->save(w);
  return w.take();
}

ManualEventClassifier ManualEventClassifier::load(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  std::uint8_t kind = r.u8();
  if (kind == 1) {
    return simple_rule(r.u32be());
  }
  if (kind != 2) throw ParseError("ManualEventClassifier: unknown model kind");
  ManualEventClassifier c;
  c.scaler_ = ml::StandardScaler::load(r);
  c.model_ = std::make_shared<ml::BernoulliNB>(ml::BernoulliNB::load(r));
  if (!r.done()) throw ParseError("ManualEventClassifier: trailing bytes");
  return c;
}

gen::TrafficClass ManualEventClassifier::classify(const UnpredictableEvent& event,
                                                  net::Ipv4Addr device) const {
  if (event.packets.empty()) throw LogicError("classify: empty event");
  if (uses_simple_rule()) {
    const auto& first = event.packets.front();
    bool inbound = !first.outbound_from(device);
    return (inbound && first.size == rule_size_) ? gen::TrafficClass::kManual
                                                 : gen::TrafficClass::kControl;
  }
  if (!model_) throw LogicError("classify: untrained ML classifier");
  auto features = event_features(event, device);
  int label = model_->predict(scaler_.transform(features));
  if (label < 0 || label > 2) return gen::TrafficClass::kControl;
  return static_cast<gen::TrafficClass>(label);
}

}  // namespace fiat::core
