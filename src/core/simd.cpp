#include "core/simd.hpp"

#include <algorithm>

#include "util/flat_map.hpp"

#if defined(__SSE2__) || (defined(_M_X64) && !defined(_M_ARM64EC))
#define FIAT_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__aarch64__) || defined(__ARM_NEON)
#define FIAT_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace fiat::core::simd {

namespace {

std::uint64_t hash_one(const BucketKey& key) {
  return util::flat_mix64(key.w0 ^ util::flat_mix64(key.w1));
}

void hash_scalar(const BucketKey* keys, std::uint64_t* hashes, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) hashes[i] = hash_one(keys[i]);
}

void saturate_scalar(const std::uint32_t* sizes, std::uint32_t* out,
                     std::size_t n, std::uint32_t cap) {
  for (std::size_t i = 0; i < n; ++i) out[i] = std::min(sizes[i], cap);
}

#if defined(FIAT_SIMD_SSE2)

// 64x64->64 low multiply, two lanes. SSE2 has only the 32x32->64 widening
// multiply (_mm_mul_epu32 on the even 32-bit lanes), so compose the low 64
// bits from three partial products: lo(a)*lo(b) + ((hi(a)*lo(b) +
// lo(a)*hi(b)) << 32). The discarded hi(a)*hi(b) term only feeds bits >= 64.
inline __m128i mul64_lo(__m128i a, __m128i b) {
  __m128i a_hi = _mm_srli_epi64(a, 32);
  __m128i b_hi = _mm_srli_epi64(b, 32);
  __m128i lo = _mm_mul_epu32(a, b);
  __m128i cross =
      _mm_add_epi64(_mm_mul_epu32(a_hi, b), _mm_mul_epu32(a, b_hi));
  return _mm_add_epi64(lo, _mm_slli_epi64(cross, 32));
}

// splitmix64 finalizer (util::flat_mix64), two lanes at a time.
inline __m128i mix64(__m128i x) {
  x = _mm_add_epi64(x, _mm_set1_epi64x(0x9e3779b97f4a7c15LL));
  x = mul64_lo(_mm_xor_si128(x, _mm_srli_epi64(x, 30)),
               _mm_set1_epi64x(0xbf58476d1ce4e5b9LL));
  x = mul64_lo(_mm_xor_si128(x, _mm_srli_epi64(x, 27)),
               _mm_set1_epi64x(0x94d049bb133111ebLL));
  return _mm_xor_si128(x, _mm_srli_epi64(x, 31));
}

void hash_simd(const BucketKey* keys, std::uint64_t* hashes, std::size_t n) {
  static_assert(sizeof(BucketKey) == 16, "SoA gather below assumes {w0,w1}");
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // Two keys = four contiguous u64: [w0 w1 | w0' w1']. Unpack into a w0
    // lane pair and a w1 lane pair.
    __m128i k0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + i));
    __m128i k1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + i + 1));
    __m128i w0 = _mm_unpacklo_epi64(k0, k1);
    __m128i w1 = _mm_unpackhi_epi64(k0, k1);
    __m128i h = mix64(_mm_xor_si128(w0, mix64(w1)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(hashes + i), h);
  }
  for (; i < n; ++i) hashes[i] = hash_one(keys[i]);
}

void saturate_simd(const std::uint32_t* sizes, std::uint32_t* out,
                   std::size_t n, std::uint32_t cap) {
  // SSE2 lacks an unsigned 32-bit min; sizes and the cap are far below 2^31
  // in practice, but stay exact anyway by biasing into signed range.
  const __m128i bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i capv = _mm_set1_epi32(static_cast<int>(cap ^ 0x80000000u));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(sizes + i));
    __m128i vb = _mm_xor_si128(v, bias);
    __m128i gt = _mm_cmpgt_epi32(vb, capv);
    __m128i capped = _mm_set1_epi32(static_cast<int>(cap));
    __m128i r = _mm_or_si128(_mm_and_si128(gt, capped),
                             _mm_andnot_si128(gt, v));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), r);
  }
  for (; i < n; ++i) out[i] = std::min(sizes[i], cap);
}

#elif defined(FIAT_SIMD_NEON)

inline uint64x2_t mul64_lo(uint64x2_t a, uint64x2_t b) {
  uint32x2_t a_lo = vmovn_u64(a);
  uint32x2_t b_lo = vmovn_u64(b);
  uint32x2_t a_hi = vshrn_n_u64(a, 32);
  uint32x2_t b_hi = vshrn_n_u64(b, 32);
  uint64x2_t lo = vmull_u32(a_lo, b_lo);
  uint64x2_t cross = vmlal_u32(vmull_u32(a_hi, b_lo), a_lo, b_hi);
  return vaddq_u64(lo, vshlq_n_u64(cross, 32));
}

inline uint64x2_t mix64(uint64x2_t x) {
  x = vaddq_u64(x, vdupq_n_u64(0x9e3779b97f4a7c15ULL));
  x = mul64_lo(veorq_u64(x, vshrq_n_u64(x, 30)),
               vdupq_n_u64(0xbf58476d1ce4e5b9ULL));
  x = mul64_lo(veorq_u64(x, vshrq_n_u64(x, 27)),
               vdupq_n_u64(0x94d049bb133111ebULL));
  return veorq_u64(x, vshrq_n_u64(x, 31));
}

void hash_simd(const BucketKey* keys, std::uint64_t* hashes, std::size_t n) {
  static_assert(sizeof(BucketKey) == 16, "SoA gather below assumes {w0,w1}");
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t k0 = vld1q_u64(reinterpret_cast<const std::uint64_t*>(keys + i));
    uint64x2_t k1 =
        vld1q_u64(reinterpret_cast<const std::uint64_t*>(keys + i + 1));
    uint64x2_t w0 = vtrn1q_u64(k0, k1);
    uint64x2_t w1 = vtrn2q_u64(k0, k1);
    uint64x2_t h = mix64(veorq_u64(w0, mix64(w1)));
    vst1q_u64(hashes + i, h);
  }
  for (; i < n; ++i) hashes[i] = hash_one(keys[i]);
}

void saturate_simd(const std::uint32_t* sizes, std::uint32_t* out,
                   std::size_t n, std::uint32_t cap) {
  uint32x4_t capv = vdupq_n_u32(cap);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_u32(out + i, vminq_u32(vld1q_u32(sizes + i), capv));
  }
  for (; i < n; ++i) out[i] = std::min(sizes[i], cap);
}

#endif

}  // namespace

bool available() {
#if defined(FIAT_SIMD_SSE2) || defined(FIAT_SIMD_NEON)
  return true;
#else
  return false;
#endif
}

const char* isa_name() {
#if defined(FIAT_SIMD_SSE2)
  return "sse2";
#elif defined(FIAT_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

void hash_keys(const BucketKey* keys, std::uint64_t* hashes, std::size_t n,
               bool use_simd) {
#if defined(FIAT_SIMD_SSE2) || defined(FIAT_SIMD_NEON)
  if (use_simd) {
    hash_simd(keys, hashes, n);
    return;
  }
#else
  (void)use_simd;
#endif
  hash_scalar(keys, hashes, n);
}

void saturate_sizes(const std::uint32_t* sizes, std::uint32_t* out,
                    std::size_t n, std::uint32_t cap, bool use_simd) {
#if defined(FIAT_SIMD_SSE2) || defined(FIAT_SIMD_NEON)
  if (use_simd) {
    saturate_simd(sizes, out, n, cap);
    return;
  }
#else
  (void)use_simd;
#endif
  saturate_scalar(sizes, out, n, cap);
}

}  // namespace fiat::core::simd
