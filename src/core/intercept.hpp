// InterceptPoint — the NFQUEUE/ARP-spoof stand-in (§5.4 "Traffic Intercept").
//
// In the paper, iptables redirects every forwarded packet into an NFQUEUE;
// a userspace process sees the raw frame, runs FIAT's analysis, and returns
// an ACCEPT/DROP verdict to the kernel. InterceptPoint is that userspace
// half: it consumes raw Ethernet frames (e.g. straight from a pcap), parses
// them, snoops DNS responses into the proxy's resolver table (which the
// PortLess rules depend on), asks the FiatProxy for a verdict, and hands the
// frame + verdict to a forwarding callback. Swapping this class for a real
// libnetfilter_queue binding is the only change a Linux deployment needs.
#pragma once

#include <functional>

#include "core/proxy.hpp"
#include "net/frame.hpp"

namespace fiat::core {

class InterceptPoint {
 public:
  /// `forward` receives every frame with its verdict (kAllow => reinject).
  using ForwardFn =
      std::function<void(std::span<const std::uint8_t> frame, Verdict verdict)>;

  InterceptPoint(FiatProxy& proxy, ForwardFn forward);

  /// Handles one captured frame at capture time `ts`. Non-IPv4 frames (ARP
  /// etc.) are forwarded unconditionally, as the paper's proxy does.
  /// Malformed IPv4 is dropped (and counted) — a safe-default for a security
  /// middlebox. Returns the verdict applied.
  Verdict handle_frame(double ts, std::span<const std::uint8_t> frame);

  std::size_t frames_seen() const { return frames_; }
  std::size_t malformed_dropped() const { return malformed_; }
  std::size_t dns_records_learned() const { return dns_learned_; }

 private:
  void snoop_dns(const net::ParsedFrame& parsed);

  FiatProxy& proxy_;
  ForwardFn forward_;
  std::size_t frames_ = 0;
  std::size_t malformed_ = 0;
  std::size_t dns_learned_ = 0;
};

}  // namespace fiat::core
