// Flow bucket keys (§2.1).
//
// The predictability heuristic stores packets in buckets keyed by everything
// except the arrival timestamp. Two definitions:
//  * Classic: <ip_src, ip_dst, port_src, port_dst, proto, size>
//  * PortLess: drops the ports and replaces the remote IP with its domain
//    name (from in-trace DNS when available, reverse lookup otherwise),
//    keyed from the device's perspective: <device, direction, remote, proto,
//    size>.
#pragma once

#include <optional>
#include <string>

#include "net/dns.hpp"
#include "net/packet.hpp"

namespace fiat::core {

enum class FlowMode { kClassic, kPortLess };

const char* flow_mode_name(FlowMode mode);

/// Builds the bucket key for one packet. `device` identifies which endpoint
/// is the IoT device (the paper analyzes per-device). For PortLess, `dns`
/// maps remote IPs to domains and `reverse` fills the gaps; either may be
/// null, in which case the dotted-quad is used — the same degradation the
/// paper notes for IPs missing from trace DNS.
std::string bucket_key(const net::PacketRecord& pkt, net::Ipv4Addr device,
                       FlowMode mode, const net::DnsTable* dns,
                       const net::ReverseResolver* reverse);

}  // namespace fiat::core
