// Ground-truth attack labels and the proxy-side attack ledger.
//
// The campaign composer (gen::AttackDirector) stamps every injected packet
// and proof with an AttackLabel; the fleet plumbing carries the label
// alongside the item through shards / supervisors / the cluster control
// plane, and FiatProxy::process(pkt, label) tallies the proxy's *verdict*
// against the label into an AttackLedger. Recall and collateral metrics then
// come from joining the ledger against the scenario's AttackTruth — no
// post-hoc packet matching, no heuristics: 100% of injected traffic is
// labeled at generation time.
//
// Labels are inert for benign traffic (cls < 0): the unlabeled process()
// overload forwards a default AttackLabel, and an all-benign run leaves the
// ledger empty so reports and snapshots stay byte-identical to pre-campaign
// builds.
#pragma once

// The fleet correlator detects campaigns from behavioral signals alone; the
// ground-truth labels in this header exist only to GRADE it. Its translation
// unit defines FIAT_CORRELATOR_TU, so any include path that would leak labels
// into the detector fails the build instead of quietly biasing the results.
#ifdef FIAT_CORRELATOR_TU
#error "correlator must not read AttackLabel ground truth"
#endif

#include <array>
#include <cstdint>
#include <map>

#include "gen/attack_types.hpp"

namespace fiat::core {

/// Ground-truth tag attached to one injected packet or proof delivery.
struct AttackLabel {
  /// Attack class (gen::AttackType) or -1 for benign traffic.
  std::int16_t cls = -1;
  /// Campaign-unique command id, or -1 when the packet is cover chaff /
  /// ambient Sybil noise rather than part of a distinct command attempt.
  std::int32_t cmd = -1;
  /// True for the packets that carry the actual command payload — the ones
  /// that must be DROPPED for the attack command to count as blocked.
  bool payload = false;

  bool benign() const { return cls < 0; }
};

/// Per-attack-class packet/proof tallies, as seen by one proxy.
struct AttackClassTally {
  std::uint64_t packets = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t proofs = 0;
  std::uint64_t proofs_rejected = 0;
};

/// Per-command outcome: a command attempt is *blocked* iff at least one of
/// its payload packets was dropped, *completed* iff payload packets were
/// seen and none dropped.
struct AttackCmdState {
  std::int16_t cls = -1;
  std::uint64_t payload_seen = 0;
  std::uint64_t payload_dropped = 0;
};

/// The proxy's running account of labeled attack traffic and what happened
/// to it. Owned by FiatProxy; aggregated across homes by the fleet layers.
struct AttackLedger {
  std::array<AttackClassTally, static_cast<std::size_t>(gen::kAttackTypeCount)>
      by_class{};
  /// Keyed by campaign command id (sorted: deterministic encode order).
  std::map<std::int32_t, AttackCmdState> commands;

  std::uint64_t injected() const {
    std::uint64_t n = 0;
    for (const auto& t : by_class) n += t.packets;
    return n;
  }
  std::uint64_t dropped() const {
    std::uint64_t n = 0;
    for (const auto& t : by_class) n += t.packets_dropped;
    return n;
  }
  std::uint64_t proofs_injected() const {
    std::uint64_t n = 0;
    for (const auto& t : by_class) n += t.proofs;
    return n;
  }
  std::uint64_t proofs_rejected() const {
    std::uint64_t n = 0;
    for (const auto& t : by_class) n += t.proofs_rejected;
    return n;
  }
  std::uint64_t commands_blocked() const {
    std::uint64_t n = 0;
    for (const auto& [cmd, st] : commands) {
      if (st.payload_dropped > 0) ++n;
    }
    return n;
  }
  std::uint64_t commands_completed() const {
    std::uint64_t n = 0;
    for (const auto& [cmd, st] : commands) {
      if (st.payload_seen > 0 && st.payload_dropped == 0) ++n;
    }
    return n;
  }
  bool empty() const {
    return commands.empty() && injected() == 0 && proofs_injected() == 0;
  }

  void merge(const AttackLedger& other) {
    for (std::size_t i = 0; i < by_class.size(); ++i) {
      by_class[i].packets += other.by_class[i].packets;
      by_class[i].packets_dropped += other.by_class[i].packets_dropped;
      by_class[i].proofs += other.by_class[i].proofs;
      by_class[i].proofs_rejected += other.by_class[i].proofs_rejected;
    }
    for (const auto& [cmd, st] : other.commands) {
      AttackCmdState& mine = commands[cmd];
      mine.cls = st.cls;
      mine.payload_seen += st.payload_seen;
      mine.payload_dropped += st.payload_dropped;
    }
  }
};

}  // namespace fiat::core
