// Packed flow-bucket keys for the per-packet hot path (DESIGN.md §10).
//
// The legacy bucket key (bucket.hpp) is a formatted std::string — one or two
// heap allocations plus a string hash per packet. BucketKey packs the same
// identity into a 128-bit POD so key construction is pure bit-twiddling
// (Classic) or a single memoized IP→id probe (PortLess), and the tables
// that consume it (util::FlatMap / FlatSet) hash two words instead of a
// string. Layouts:
//
//   Classic   w0 = src_ip:32 | dst_ip:32
//             w1 = src_port:16 | dst_port:16 | proto:2 | size:30
//   PortLess  w0 = direction:1 | proto:2 | domain_id:32   (low bits)
//             w1 = size:32
//
// Classic sizes saturate at 2^30-1: the IPv4 total-length field is 16 bits,
// so only synthetic aggregates (aggregate_windows() byte sums) could exceed
// the cap, and those would need > 1 GiB per flow per window. The packed key
// is bijective with the legacy string key everywhere below that bound —
// bucket_key_string() reconstructs the exact legacy string, which is what
// the golden-equivalence suite asserts end to end.
//
// `domain_id` comes from a per-device DomainInterner (one per RuleTable /
// PredictabilityAnalyzer — ids are table-local and never compared across
// devices). The interner resolves each remote IP once (in-trace DNS, then
// reverse lookup, then the dotted quad — the same cascade as the legacy
// key) and memoizes the IP→id mapping; the memo is invalidated when the
// DnsTable's generation changes, so a domain learned mid-trace re-keys
// future packets exactly as the per-packet string resolution did.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/bucket.hpp"
#include "util/bytes.hpp"
#include "util/flat_map.hpp"

namespace fiat::core {

struct BucketKey {
  std::uint64_t w0 = 0;
  std::uint64_t w1 = 0;

  bool operator==(const BucketKey&) const = default;
  /// Lexicographic (w0, w1) order. Only used by the state codec, which must
  /// serialize FlatMap contents in a canonical order independent of
  /// insertion history so snapshot round-trips are byte-identical.
  bool operator<(const BucketKey& o) const {
    return w0 != o.w0 ? w0 < o.w0 : w1 < o.w1;
  }
};

/// Transport codes fit the 2 key bits; the enum's wire values (0/6/17) do not.
std::uint64_t transport_code(net::Transport proto);
net::Transport transport_from_code(std::uint64_t code);

/// Classic size field: 30 bits, saturating (see header comment).
inline constexpr std::uint32_t kClassicSizeMax = (1u << 30) - 1;

/// String→u32 domain interner with a memoized IP→id mapping. One instance
/// per device table; not thread-safe (tables are shard-owned, like all
/// per-home state).
class DomainInterner {
 public:
  /// The domain id for the packet's remote endpoint, resolving
  /// DNS → reverse → dotted-quad once per IP and memoizing the result.
  std::uint32_t id_of(net::Ipv4Addr remote, const net::DnsTable* dns,
                      const net::ReverseResolver* reverse);

  /// Interns a name directly (no IP memo) — shared by callers that resolve
  /// names themselves (e.g. MUD profiling).
  std::uint32_t intern(const std::string& name);

  const std::string& name_of(std::uint32_t id) const { return names_[id]; }
  std::size_t size() const { return names_.size(); }

  /// Counting hooks for the hot-path regression tests: total id_of() calls
  /// vs. how many missed the memo and did a full DNS/reverse resolution.
  std::size_t lookups() const { return lookups_; }
  std::size_t resolves() const { return resolves_; }

  /// Memo-only lookup for the batch pipeline's pure phase: the id for
  /// `remote` iff the memo is current for `dns`'s generation and already
  /// holds this IP. Never mutates — no counters, no resolution, no memo
  /// reset. nullptr means the caller must take the mutating id_of() path.
  const std::uint32_t* peek_id(net::Ipv4Addr remote,
                               const net::DnsTable* dns) const;

  /// Counter mirror for batch resolution: a prepared key built from
  /// peek_id() that actually gets consumed must bump lookups_ exactly as
  /// the scalar id_of() memo hit would have, or serialized interner state
  /// diverges between the batch and scalar paths.
  void count_lookup() { ++lookups_; }

  /// State-codec hooks (state_codec.hpp): canonical serialization of the
  /// full interner (names in id order, IP memo sorted by IP). Ids must
  /// survive a snapshot→restore round trip because learned BucketKeys embed
  /// them.
  void encode_state(util::ByteWriter& w) const;
  void decode_state(util::ByteReader& r);

 private:
  util::FlatMap<std::uint32_t, std::uint32_t> by_ip_;  // IP → id memo
  std::uint64_t dns_generation_ = 0;  // DnsTable generation the memo matches
  std::unordered_map<std::string, std::uint32_t> by_name_;  // name → id
  std::vector<std::string> names_;                          // id → name
  std::size_t lookups_ = 0;
  std::size_t resolves_ = 0;
};

/// Packed equivalent of bucket_key() (bucket.hpp). For PortLess the
/// interner supplies (and remembers) the domain id.
BucketKey make_bucket_key(const net::PacketRecord& pkt, net::Ipv4Addr device,
                          FlowMode mode, const net::DnsTable* dns,
                          const net::ReverseResolver* reverse,
                          DomainInterner& interner);

// Batch-pipeline packers (DESIGN.md §15): pure bit packing with the
// mutating/saturating parts hoisted out, so a whole batch can be key-packed
// in a tight loop (sizes saturated en masse via simd::saturate_sizes,
// domain ids peeked via DomainInterner::peek_id). Bit layouts are identical
// to make_bucket_key.

/// `saturated_size` must be min(pkt.size, kClassicSizeMax).
BucketKey pack_classic_key(const net::PacketRecord& pkt,
                           std::uint32_t saturated_size);

/// `domain_id` must be what id_of(pkt.remote_of(device), ...) returns.
BucketKey pack_portless_key(const net::PacketRecord& pkt,
                            net::Ipv4Addr device, std::uint32_t domain_id);

/// Reconstructs the exact legacy string form of a packed key (for report /
/// telemetry boundaries, which stay byte-identical to the string-key
/// implementation). `interner` must be the one that built the key.
std::string bucket_key_string(const BucketKey& key, FlowMode mode,
                              const DomainInterner& interner);

}  // namespace fiat::core

namespace fiat::util {

template <>
struct FlatHash<core::BucketKey> {
  std::uint64_t operator()(const core::BucketKey& key) const {
    return flat_mix64(key.w0 ^ flat_mix64(key.w1));
  }
};

}  // namespace fiat::util
