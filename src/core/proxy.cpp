#include "core/proxy.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "core/simd.hpp"
#include "core/state_codec.hpp"
#include "telemetry/signals.hpp"
#include "util/error.hpp"

namespace fiat::core {

const char* disposition_name(Disposition d) {
  switch (d) {
    case Disposition::kNonIot: return "non-iot";
    case Disposition::kBootstrap: return "bootstrap";
    case Disposition::kRuleHit: return "rule-hit";
    case Disposition::kEventPrefix: return "event-prefix";
    case Disposition::kNonManual: return "non-manual";
    case Disposition::kManualValidated: return "manual-validated";
    case Disposition::kManualUnvalidated: return "manual-unvalidated";
    case Disposition::kLockout: return "lockout";
    case Disposition::kDagEdge: return "dag-edge";
    case Disposition::kDegradedAllow: return "degraded-allow";
  }
  return "?";
}

const char* fail_policy_name(FailPolicy p) {
  switch (p) {
    case FailPolicy::kFailClosed: return "fail-closed";
    case FailPolicy::kFailOpen: return "fail-open";
    case FailPolicy::kGrace: return "grace";
  }
  return "?";
}

ProxyCounters& ProxyCounters::operator+=(const ProxyCounters& o) {
  packets_allowed += o.packets_allowed;
  packets_dropped += o.packets_dropped;
  for (std::size_t i = 0; i < by_disposition.size(); ++i) {
    by_disposition[i] += o.by_disposition[i];
  }
  events_closed += o.events_closed;
  alerts += o.alerts;
  proofs_accepted += o.proofs_accepted;
  proofs_rejected_signature += o.proofs_rejected_signature;
  proofs_rejected_nonhuman += o.proofs_rejected_nonhuman;
  proofs_late += o.proofs_late;
  proofs_duplicate += o.proofs_duplicate;
  events_decided_degraded += o.events_decided_degraded;
  degraded_allows += o.degraded_allows;
  violations_forgiven += o.violations_forgiven;
  return *this;
}

FiatProxy::FiatProxy(ProxyConfig config, HumannessVerifier humanness)
    : config_(config), humanness_(std::move(humanness)),
      credentials_(config.lifecycle) {
  if (!config_.rules.dns) config_.rules.dns = dns_.get();
  simd_ready_ = config_.simd && simd::available();
}

void FiatProxy::set_telemetry(telemetry::Sink* sink, std::uint32_t home) {
  telemetry_ = sink;
  telemetry_home_ = home;
  tm_allowed_ = tm_dropped_ = nullptr;
  tm_disposition_.fill(nullptr);
  tm_decision_latency_ = nullptr;
  tm_latency_by_why_.fill(nullptr);
  tm_event_duration_ = nullptr;
  tm_proof_age_ = nullptr;
  tm_batch_fallbacks_ = nullptr;
  if (!sink) return;
  auto& m = sink->metrics;
  tm_allowed_ = &m.counter("proxy.packets_allowed");
  tm_dropped_ = &m.counter("proxy.packets_dropped");
  for (std::size_t i = 0; i < kDispositionCount; ++i) {
    tm_disposition_[i] = &m.counter(
        std::string("proxy.decisions.") +
        disposition_name(static_cast<Disposition>(i)));
  }
  // Decision latency = sim time from event open to its classification
  // verdict; aggregate plus one histogram per classification outcome.
  tm_decision_latency_ = &m.histogram("proxy.decision_latency_seconds");
  for (Disposition d :
       {Disposition::kNonManual, Disposition::kManualValidated,
        Disposition::kManualUnvalidated, Disposition::kDegradedAllow}) {
    tm_latency_by_why_[static_cast<std::size_t>(d)] = &m.histogram(
        std::string("proxy.decision_latency_seconds.") + disposition_name(d));
  }
  tm_event_duration_ = &m.histogram("proxy.event_duration_seconds");
  tm_proof_age_ = &m.histogram("proxy.proof_age_seconds");
  // Sim-domain: the fallback count is a pure function of the traffic (see
  // batch_scalar_fallbacks()), so it belongs in deterministic snapshots.
  // Scalar-only runs export it as 0.
  tm_batch_fallbacks_ = &m.counter("proxy.batch.scalar_fallbacks");
}

void FiatProxy::add_device(ProxyDevice device) {
  std::uint32_t key = device.ip.value();
  if (devices_.contains(key)) throw LogicError("FiatProxy: duplicate device IP");
  devices_.emplace(key,
                   DeviceState(std::move(device), config_.rules, config_.event_gap));
  device_index_.clear();
  device_index_.reserve(devices_.size());
  for (auto& [ip, dev] : devices_) device_index_.emplace_back(ip, &dev);
}

void FiatProxy::pair_phone(const std::string& client_id,
                           std::span<const std::uint8_t> psk) {
  credentials_.install_static(keystore_, client_id, psk);
}

void FiatProxy::register_enrollable(const std::string& client_id,
                                    std::span<const std::uint8_t> setup_code) {
  credentials_.register_setup_code(client_id, setup_code);
}

crypto::CredentialRegistry::ApplyResult FiatProxy::on_lifecycle(
    const std::string& client_id, const crypto::LifecycleCommand& cmd,
    double now) {
  auto result = credentials_.apply(keystore_, client_id, cmd, now);
  // Lifecycle ops are rare (orders of magnitude below packets), so their
  // telemetry goes through the registry by name like proof outcomes do.
  if (telemetry_) {
    telemetry_->metrics
        .counter(std::string("proxy.lifecycle.") +
                 crypto::lifecycle_op_name(cmd.op))
        .inc();
  }
  return result;
}

void FiatProxy::add_dag_edge(net::Ipv4Addr src, net::Ipv4Addr dst) {
  dag_.add_edge(src, dst);
}

bool FiatProxy::in_bootstrap(double now) const {
  return !bootstrap_forced_ && first_packet_ts_ >= 0 &&
         now - first_packet_ts_ < config_.bootstrap_duration;
}

bool FiatProxy::device_locked(const std::string& name, double now) const {
  for (const auto& [ip, dev] : devices_) {
    if (dev.config.name != name) continue;
    if (!dev.locked) return false;
    if (config_.auto_unlock && now >= dev.locked_until) return false;
    return true;
  }
  return false;
}

std::size_t FiatProxy::rule_count() const {
  std::size_t n = 0;
  for (const auto& [ip, dev] : devices_) n += dev.rules.rule_count();
  return n;
}

FiatProxy::DeviceState* FiatProxy::device_of(const net::PacketRecord& pkt) {
  // Same src-then-dst preference as the original two map descents, over the
  // flat mirror: homes hold a handful of devices, so two linear sweeps of a
  // cached vector win on every packet.
  std::uint32_t src = pkt.src_ip.value();
  for (auto& [ip, dev] : device_index_) {
    if (ip == src) return dev;
  }
  std::uint32_t dst = pkt.dst_ip.value();
  for (auto& [ip, dev] : device_index_) {
    if (ip == dst) return dev;
  }
  return nullptr;
}

Verdict FiatProxy::record(double ts, const std::string& device, Verdict v,
                          Disposition why, int event_seq) {
  if (batch_tally_active_) {
    // Mid-batch: four scattered read-modify-writes collapse into a hot
    // scratch struct, flushed once per batch (see process_batch).
    BatchScratch::Tally& t = scratch_.tally;
    ++(v == Verdict::kAllow ? t.allowed : t.dropped);
    ++t.by_disposition[static_cast<std::size_t>(why)];
  } else {
    if (v == Verdict::kAllow) {
      ++counters_.packets_allowed;
    } else {
      ++counters_.packets_dropped;
    }
    ++counters_.by_disposition[static_cast<std::size_t>(why)];
    if (telemetry_) {
      (v == Verdict::kAllow ? tm_allowed_ : tm_dropped_)->inc();
      tm_disposition_[static_cast<std::size_t>(why)]->inc();
    }
  }
  log_.emplace_back(ts, device, v, why, event_seq);
  if (telemetry_) {
    if (telemetry::TraceSpan* span = telemetry_->trace.begin_span()) {
      span->name = disposition_name(why);
      span->category = "proxy.decision";
      span->start = ts;
      span->home = telemetry_home_;
      if (device.empty()) {
        span->track = "non-iot";
      } else {
        span->track = device;  // assign reuses the recycled slot's capacity
      }
    }
  }
  return v;
}

ProxyCounters FiatProxy::counters() const {
  ProxyCounters c = counters_;
  c.alerts = alerts_;
  c.proofs_accepted = proofs_accepted_;
  c.proofs_rejected_signature = proofs_bad_sig_;
  c.proofs_rejected_nonhuman = proofs_nonhuman_;
  c.proofs_late = proofs_late_;
  c.proofs_duplicate = proofs_duplicate_;
  c.events_decided_degraded = events_degraded_;
  c.degraded_allows = degraded_allows_;
  c.violations_forgiven = violations_forgiven_;
  return c;
}

bool FiatProxy::fresh_proof_for(const DeviceState& dev, double now,
                                double slack) const {
  for (auto it = proofs_.rbegin(); it != proofs_.rend(); ++it) {
    if (now - it->time > config_.human_validity_window + slack) break;  // too old
    if (it->time - now > config_.human_pre_window) continue;  // from the future
    if (it->app_package == dev.config.app_package) return true;
  }
  return false;
}

void FiatProxy::on_proof_channel_activity(double now) {
  channel_ever_active_ = true;
  last_channel_activity_ = std::max(last_channel_activity_, now);
}

bool FiatProxy::proof_channel_dark(double now) const {
  if (channel_forced_down_) return true;
  if (!channel_ever_active_) return false;
  return now - last_channel_activity_ > config_.channel_dark_after;
}

void FiatProxy::count_violation(DeviceState& dev, double now, bool degraded) {
  if (degraded && config_.degraded_policy == FailPolicy::kGrace) {
    // The proof channel being dark (or the classifier missing) is the
    // network's fault, not evidence of brute force: drop the traffic but do
    // not advance the lockout counter.
    ++violations_forgiven_;
    return;
  }
  dev.recent_violations.push_back(now);
  while (!dev.recent_violations.empty() &&
         now - dev.recent_violations.front() > config_.lockout_window) {
    dev.recent_violations.pop_front();
  }
  if (static_cast<int>(dev.recent_violations.size()) >= config_.lockout_threshold) {
    dev.locked = true;
    dev.locked_until = now + config_.lockout_duration;
  }
}

void FiatProxy::forgive_covered_violations(const std::string& app,
                                           double capture_time, double now) {
  // A proof that was captured before (or while) the violating traffic ran
  // but crawled in late proves the user was real — the network merely
  // delayed it. Erase the violations it covers; a lockout built on them is
  // released too. Attack traffic never gets this: no proof arrives for it.
  double from = capture_time - config_.human_pre_window;
  for (auto& [ip, dev] : devices_) {
    if (dev.config.app_package != app) continue;
    auto& v = dev.recent_violations;
    std::size_t before = v.size();
    v.erase(std::remove_if(v.begin(), v.end(),
                           [&](double t) { return t >= from && t <= now; }),
            v.end());
    violations_forgiven_ += before - v.size();
    if (dev.locked && before > v.size() &&
        static_cast<int>(v.size()) < config_.lockout_threshold) {
      dev.locked = false;
      dev.locked_until = -1.0;
    }
  }
}

void FiatProxy::close_event(DeviceState& dev) {
  if (dev.event_seq < 0) return;
  EventOutcome outcome;
  outcome.device = dev.config.name;
  outcome.event_seq = dev.event_seq;
  outcome.start = dev.event_start;
  outcome.classified = dev.classified.value_or(gen::TrafficClass::kControl);
  outcome.treated_as_manual =
      dev.classified && *dev.classified == gen::TrafficClass::kManual;
  outcome.human_validated = dev.human_validated;
  outcome.degraded = dev.degraded;
  outcome.degraded_allowed = dev.degraded_open;
  outcome.packets_allowed = dev.allowed;
  outcome.packets_dropped = dev.dropped;
  if (telemetry_) {
    double duration = std::max(0.0, dev.event_last - dev.event_start);
    tm_event_duration_->record(duration);
    if (telemetry_->trace.enabled()) {
      telemetry::TraceSpan span;
      span.name = "event";
      span.category = "proxy.event";
      span.start = dev.event_start;
      span.duration = duration;
      span.home = telemetry_home_;
      span.track = dev.config.name;
      span.args = {
          {"class", gen::traffic_class_name(outcome.classified)},
          {"validated", outcome.human_validated ? "true" : "false"},
          {"degraded", outcome.degraded ? "true" : "false"},
          {"allowed", std::to_string(outcome.packets_allowed)},
          {"dropped", std::to_string(outcome.packets_dropped)},
      };
      telemetry_->trace.record(std::move(span));
    }
  }
  outcomes_.push_back(std::move(outcome));
  ++counters_.events_closed;

  // Escalated events feed the fleet correlator's signature sketch; events the
  // guards never fired on contribute nothing (benign homes stay blank).
  if (dev.escalated) {
    for (std::uint64_t sig : dev.pending_costume_sigs) {
      ++escalation_signatures_[sig];
    }
  }
  dev.pending_costume_sigs.clear();

  dev.event_seq = -1;
  dev.event_packets = 0;
  dev.allowed = 0;
  dev.dropped = 0;
  dev.classified.reset();
  dev.human_validated = false;
  dev.degraded = false;
  dev.degraded_open = false;
  dev.event_costume = 0;
  dev.escalated = false;
}

void FiatProxy::enter_manual_gate(DeviceState& dev, double now, bool degraded) {
  dev.degraded = degraded;
  if (degraded) ++events_degraded_;
  // Under kGrace while degraded, a proof that went stale during the
  // dark window keeps covering the device for `degraded_grace` extra
  // seconds — the network ate the refresh, not the user.
  double slack = (degraded && config_.degraded_policy == FailPolicy::kGrace)
                     ? config_.degraded_grace
                     : 0.0;
  dev.human_validated = fresh_proof_for(dev, now, slack);
  if (!dev.human_validated) {
    if (degraded && config_.degraded_policy == FailPolicy::kFailOpen) {
      dev.degraded_open = true;  // availability over security, by choice
    } else {
      ++alerts_;
      count_violation(dev, now, degraded);
    }
  }
}

Verdict FiatProxy::decide_event_packet(DeviceState& dev, const net::PacketRecord& pkt) {
  double now = pkt.ts;
  if (dev.event_packets == 1) {
    dev.event_seq = next_event_seq_++;
    dev.event_start = now;
  }
  dev.event_last = now;

  // Phase 1: allowed prefix.
  if (!dev.classified && dev.event_packets <= dev.config.allowed_prefix) {
    dev.allowed++;
    return record(now, dev.config.name, Verdict::kAllow, Disposition::kEventPrefix,
                  dev.event_seq);
  }

  // Phase 2: classify once, on the packets seen so far (first N + this one).
  bool just_classified = false;
  if (!dev.classified) {
    just_classified = true;
    bool degraded = proof_channel_dark(now);
    if (!dev.config.classifier.trained()) {
      // No classifier for this device (model never distributed / training
      // failed): we cannot tell manual from automated, so treat the event
      // as manual-unknown and let the fail policy below decide.
      dev.classified = gen::TrafficClass::kManual;
      degraded = true;
    } else {
      UnpredictableEvent seen{dev.grouper.open_packets()};
      dev.classified = dev.config.classifier.classify(seen, dev.config.ip);
      if (*dev.classified == gen::TrafficClass::kManual) {
        // Command-shaped traffic must keep facing the humanness gate forever:
        // its buckets are barred from online rule promotion, or a patient
        // attacker repeating the command at a constant pace would eventually
        // be whitelisted as "predictable".
        for (const auto& event_pkt : seen.packets) {
          dev.rules.forbid_online(event_pkt);
        }
      } else if (config_.mimicry_guard &&
                 dev.event_costume >= config_.mimicry_min_costume &&
                 static_cast<double>(dev.event_costume) >=
                     config_.mimicry_costume_fraction *
                         static_cast<double>(dev.event_packets)) {
        // The event is mostly off-rhythm replays of the device's own
        // predictable buckets — WiFinger-style mimicry cover, not a shape
        // the classifier was trained to flag. Escalate to the humanness
        // gate. (No forbid_online here: the mimicked buckets are the
        // device's genuine signatures.)
        dev.classified = gen::TrafficClass::kManual;
        dev.escalated = true;
        ++mimicry_escalations_;
      } else if (config_.notification_escalation &&
                 dev.config.classifier.simple_rule_size() > 0) {
        // The first-packet rule saw chaff, but the command-notification
        // packet may be hiding later in the prefix (or be this very
        // packet, when the chaff exactly fills the allowed prefix).
        for (const auto& event_pkt : seen.packets) {
          if (event_pkt.dst_ip == dev.config.ip &&
              event_pkt.size == dev.config.classifier.simple_rule_size()) {
            dev.classified = gen::TrafficClass::kManual;
            dev.escalated = true;
            ++notification_escalations_;
            // Same bar as the natural manual classification above: the
            // event's buckets (the notification's especially) must never
            // self-promote, or a patient attacker repeating the chaffed
            // command on a schedule would whitelist the notification.
            for (const auto& ban_pkt : seen.packets) {
              dev.rules.forbid_online(ban_pkt);
            }
            break;
          }
        }
      }
    }
    if (*dev.classified == gen::TrafficClass::kManual) {
      enter_manual_gate(dev, now, degraded);
    }
  } else if (config_.notification_escalation && !dev.escalated &&
             *dev.classified != gen::TrafficClass::kManual &&
             dev.config.classifier.simple_rule_size() > 0 &&
             pkt.dst_ip == dev.config.ip &&
             pkt.size == dev.config.classifier.simple_rule_size()) {
    // A packet matching the device's command-notification signature arrived
    // inside an event the first-packet classifier already waved through —
    // the chaff-prefix evasion. Re-run the gate for the rest of the event.
    dev.classified = gen::TrafficClass::kManual;
    dev.escalated = true;
    ++notification_escalations_;
    dev.rules.forbid_online(pkt);  // the notification must never self-promote
    enter_manual_gate(dev, now, proof_channel_dark(now));
  }

  // Phase 3: verdict by classification.
  Disposition why;
  Verdict v;
  if (*dev.classified != gen::TrafficClass::kManual) {
    why = Disposition::kNonManual;
    v = Verdict::kAllow;
  } else if (dev.human_validated) {
    why = Disposition::kManualValidated;
    v = Verdict::kAllow;
  } else if (dev.degraded_open) {
    why = Disposition::kDegradedAllow;
    v = Verdict::kAllow;
    ++degraded_allows_;
  } else {
    why = Disposition::kManualUnvalidated;
    v = Verdict::kDrop;
  }
  if (v == Verdict::kAllow) {
    dev.allowed++;
  } else {
    dev.dropped++;
  }
  if (just_classified && telemetry_) {
    // Latency from event open to the classification verdict — the time an
    // attacker-observable decision took, in sim seconds.
    double latency = now - dev.event_start;
    tm_decision_latency_->record(latency);
    if (auto* h = tm_latency_by_why_[static_cast<std::size_t>(why)]) {
      h->record(latency);
    }
  }
  return record(now, dev.config.name, v, why, dev.event_seq);
}

Verdict FiatProxy::process_packet(const net::PacketRecord& pkt) {
  double now = pkt.ts;
  if (first_packet_ts_ < 0) first_packet_ts_ = now;

  DeviceState* dev = device_of(pkt);
  if (!dev) return record(now, "", Verdict::kAllow, Disposition::kNonIot, -1);

  // Device-to-device DAG whitelist (§7): e.g. Alexa -> smart light.
  if (dag_.allows(pkt.src_ip, pkt.dst_ip)) {
    return record(now, dev->config.name, Verdict::kAllow, Disposition::kDagEdge, -1);
  }

  // Brute-force lockout: device disconnected until re-enabled.
  if (dev->locked) {
    if (config_.auto_unlock && now >= dev->locked_until) {
      dev->locked = false;
      dev->recent_violations.clear();
    } else {
      return record(now, dev->config.name, Verdict::kDrop, Disposition::kLockout,
                    dev->event_seq);
    }
  }

  // Bootstrap: allow everything and learn.
  if (in_bootstrap(now)) {
    dev->rules.learn(pkt);
    return record(now, dev->config.name, Verdict::kAllow, Disposition::kBootstrap, -1);
  }

  // Predictable: rule hit.
  bool hit = config_.continue_learning ? dev->rules.match_and_learn(pkt)
                                       : dev->rules.match(pkt);
  if (hit) {
    return record(now, dev->config.name, Verdict::kAllow, Disposition::kRuleHit, -1);
  }
  // A miss on a bucket that HAS earned allow rules is the mimicry-guard
  // signal (off-rhythm replay of a predictable signature). Sample it before
  // the grouper may close the previous event, apply it to the event this
  // packet joins.
  bool costume = dev->rules.last_miss_known_bucket();

  // Unpredictable: event grouping + classification gate.
  if (auto closed = dev->grouper.add(pkt)) close_event(*dev);
  dev->event_packets++;
  if (costume) {
    dev->event_costume++;
    // Remember what the costume looked like: if a guard later escalates this
    // event, these signatures become the home's contribution to the fleet
    // correlator's shared-signature sketch. Only profile-stable fields go
    // into the hash — remotes/ports are per-home RNG artifacts.
    dev->pending_costume_sigs.push_back(telemetry::packet_signature(
        pkt.dst_ip == dev->config.ip,
        static_cast<std::uint8_t>(pkt.proto), pkt.size));
  }
  return decide_event_packet(*dev, pkt);
}

Verdict FiatProxy::process(const net::PacketRecord& pkt) {
  return process(pkt, AttackLabel{});
}

Verdict FiatProxy::process(const net::PacketRecord& pkt, const AttackLabel& label) {
  Verdict v = process_packet(pkt);
  tally_attack(label, v);
  return v;
}

void FiatProxy::tally_attack(const AttackLabel& label, Verdict v) {
  if (label.benign()) return;
  AttackClassTally& tally = ledger_.by_class[static_cast<std::size_t>(label.cls)];
  ++tally.packets;
  if (v == Verdict::kDrop) ++tally.packets_dropped;
  if (label.cmd >= 0 && label.payload) {
    AttackCmdState& cmd = ledger_.commands[label.cmd];
    cmd.cls = label.cls;
    ++cmd.payload_seen;
    if (v == Verdict::kDrop) ++cmd.payload_dropped;
  }
}

void FiatProxy::count_batch_fallback() {
  ++batch_fallbacks_;
  if (batch_tally_active_) {
    ++scratch_.tally.fallbacks;
  } else if (tm_batch_fallbacks_) {
    tm_batch_fallbacks_->inc();
  }
}

Verdict FiatProxy::process_batch_lane(const net::PacketRecord& pkt,
                                      DeviceState& dev, bool prepared,
                                      const BucketKey& key, std::uint64_t hash,
                                      RuleTable::BucketState* bucket,
                                      std::uint64_t snap) {
  // process_packet() from the lockout check on: device and DAG were ruled
  // out in the pure phase (neither changes while traffic flows), and the key
  // work is already done for prepared lanes.
  double now = pkt.ts;
  if (first_packet_ts_ < 0) first_packet_ts_ = now;

  if (dev.locked) {
    if (config_.auto_unlock && now >= dev.locked_until) {
      dev.locked = false;
      dev.recent_violations.clear();
    } else {
      count_batch_fallback();
      return record(now, dev.config.name, Verdict::kDrop, Disposition::kLockout,
                    dev.event_seq);
    }
  }

  if (in_bootstrap(now)) {
    if (prepared) {
      dev.rules.learn_prepared(pkt, key, hash, bucket, snap);
    } else {
      dev.rules.learn(pkt);
    }
    return record(now, dev.config.name, Verdict::kAllow, Disposition::kBootstrap, -1);
  }

  bool hit;
  if (prepared) {
    hit = config_.continue_learning
              ? dev.rules.match_and_learn_prepared(pkt, key, hash, bucket, snap)
              : dev.rules.match_prepared(pkt, key, hash, bucket, snap);
  } else {
    hit = config_.continue_learning ? dev.rules.match_and_learn(pkt)
                                    : dev.rules.match(pkt);
  }
  if (hit) {
    return record(now, dev.config.name, Verdict::kAllow, Disposition::kRuleHit, -1);
  }

  // Event path: the minority of packets, through the same machinery as the
  // scalar pipeline (see process_packet for the commentary).
  count_batch_fallback();
  bool costume = dev.rules.last_miss_known_bucket();
  if (auto closed = dev.grouper.add(pkt)) close_event(dev);
  dev.event_packets++;
  if (costume) {
    dev.event_costume++;
    dev.pending_costume_sigs.push_back(telemetry::packet_signature(
        pkt.dst_ip == dev.config.ip,
        static_cast<std::uint8_t>(pkt.proto), pkt.size));
  }
  return decide_event_packet(dev, pkt);
}

void FiatProxy::process_batch(std::span<const net::PacketRecord> pkts,
                              std::span<const AttackLabel> labels) {
  if (!labels.empty() && labels.size() != pkts.size()) {
    throw LogicError("FiatProxy::process_batch: labels/packets size mismatch");
  }
  const std::size_t n = pkts.size();
  if (n == 0) return;

  // Grow-only scratch: the phases below write every slot they later read
  // (stale bytes behind non-prepared lanes are never dereferenced), so a
  // steady-state batch touches no allocator and clears nothing.
  BatchScratch& s = scratch_;
  if (s.lane.size() < n) {
    s.lane.resize(n);
    s.dev.resize(n);
    s.sizes.resize(n);
    s.keys.resize(n);
    s.hashes.resize(n);
    s.buckets.resize(n);
    s.snaps.resize(n);
  }

  const bool use_simd = simd_ready_;

  // Phase A: pure classification — no proxy state changes. Saturate all
  // classic sizes in one sweep, then assign each packet a lane. peek_key
  // reads only the interner memo; mid-batch id_of() calls (kLaneResolve
  // lanes) can add memo entries but never change or drop one (the DNS
  // generation cannot move while we drain a batch), so keys peeked here stay
  // what the scalar path would compute at resolve time.
  for (std::size_t i = 0; i < n; ++i) s.sizes[i] = pkts[i].size;
  simd::saturate_sizes(s.sizes.data(), s.sizes.data(), n, kClassicSizeMax,
                       use_simd);
  const bool have_dag = dag_.edge_count() > 0;
  std::size_t prepared_lanes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const net::PacketRecord& pkt = pkts[i];
    std::uint8_t lane = kLaneScalar;  // non-IoT, DAG edge, legacy keys
    DeviceState* dev = device_of(pkt);
    if (dev && !(have_dag && dag_.allows(pkt.src_ip, pkt.dst_ip)) &&
        !dev->rules.config().legacy_keys) {
      s.dev[i] = dev;
      if (dev->rules.peek_key(pkt, s.sizes[i], s.keys[i])) {
        lane = kLanePrepared;
        ++prepared_lanes;
      } else {
        lane = kLaneResolve;
      }
    }
    s.lane[i] = lane;
  }

  // Phase A2 + B only exist for prepared lanes: bulk-hash the key array,
  // gather prepared lanes per device (each device owns its own rule table),
  // and bulk-probe with prefetch.
  if (prepared_lanes > 0) {
    simd::hash_keys(s.keys.data(), s.hashes.data(), n, use_simd);
    std::size_t groups_used = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (s.lane[i] != kLanePrepared) continue;
      BatchScratch::DevGroup* group = nullptr;
      for (std::size_t g = 0; g < groups_used; ++g) {
        if (s.groups[g].dev == s.dev[i]) {
          group = &s.groups[g];
          break;
        }
      }
      if (!group) {
        if (groups_used == s.groups.size()) s.groups.emplace_back();
        group = &s.groups[groups_used++];
        group->dev = s.dev[i];
        group->idx.clear();
      }
      group->idx.push_back(static_cast<std::uint32_t>(i));
    }
    for (std::size_t g = 0; g < groups_used; ++g) {
      BatchScratch::DevGroup& group = s.groups[g];
      const std::size_t count = group.idx.size();
      if (s.gkeys.size() < count) {
        s.gkeys.resize(count);
        s.ghashes.resize(count);
        s.gbuckets.resize(count);
      }
      for (std::size_t j = 0; j < count; ++j) {
        s.gkeys[j] = s.keys[group.idx[j]];
        s.ghashes[j] = s.hashes[group.idx[j]];
      }
      std::uint64_t snap = group.dev->rules.probe_batch(
          s.gkeys.data(), s.ghashes.data(), s.gbuckets.data(), count);
      for (std::size_t j = 0; j < count; ++j) {
        s.buckets[group.idx[j]] = s.gbuckets[j];
        s.snaps[group.idx[j]] = snap;
      }
      group.dev = nullptr;  // release the slot; idx keeps its capacity
    }
  }

  // Phase C: resolve in arrival order. Every state mutation happens here, in
  // exactly the order the scalar loop would make it. Counter bumps are
  // deferred into scratch_.tally for the duration (the flush below restores
  // the exact scalar values before anything outside this call can look).
  s.tally = BatchScratch::Tally{};
  batch_tally_active_ = true;
  try {
    for (std::size_t i = 0; i < n; ++i) {
      const net::PacketRecord& pkt = pkts[i];
      Verdict v;
      if (s.lane[i] == kLaneScalar) {
        count_batch_fallback();
        v = process_packet(pkt);
      } else {
        v = process_batch_lane(pkt, *s.dev[i], s.lane[i] == kLanePrepared,
                               s.keys[i], s.hashes[i], s.buckets[i],
                               s.snaps[i]);
      }
      if (!labels.empty()) tally_attack(labels[i], v);
    }
  } catch (...) {
    // A throwing packet invalidates the proxy (recovery rebuilds it from a
    // snapshot); just make sure the deferral flag cannot leak into a later
    // scalar call.
    batch_tally_active_ = false;
    throw;
  }
  batch_tally_active_ = false;
  counters_.packets_allowed += s.tally.allowed;
  counters_.packets_dropped += s.tally.dropped;
  for (std::size_t d = 0; d < kDispositionCount; ++d) {
    counters_.by_disposition[d] += s.tally.by_disposition[d];
  }
  if (telemetry_) {
    tm_allowed_->inc(s.tally.allowed);
    tm_dropped_->inc(s.tally.dropped);
    for (std::size_t d = 0; d < kDispositionCount; ++d) {
      if (s.tally.by_disposition[d]) {
        tm_disposition_[d]->inc(s.tally.by_disposition[d]);
      }
    }
    if (s.tally.fallbacks) tm_batch_fallbacks_->inc(s.tally.fallbacks);
  }
}

std::size_t FiatProxy::locked_device_count() const {
  std::size_t n = 0;
  for (const auto& [ip, dev] : devices_) {
    if (dev.locked) ++n;
  }
  return n;
}

std::optional<AuthMessage> FiatProxy::on_auth_payload(
    const std::string& client_id, std::span<const std::uint8_t> payload,
    double now) {
  // Any datagram on the proof channel — even one that fails every check —
  // proves the phone can still reach us.
  on_proof_channel_activity(now);
  // Proofs are rare (a handful per device per day), so outcome counters go
  // through the registry by name instead of cached pointers.
  auto proof_outcome = [&](const char* name) {
    if (telemetry_) telemetry_->metrics.counter(name).inc();
  };
  if (!credentials_.known_client(client_id)) {
    ++proofs_bad_sig_;
    ++proof_rejections_[client_id];
    proof_outcome("proxy.proofs_rejected_signature");
    return std::nullopt;
  }
  // A *known* pairing whose lifecycle state forbids use right now: revoked,
  // expired, or enrollment not yet complete. Counted apart from signature
  // failures — the delta between a revocation's effective time and the first
  // entry in first_lifecycle_reject_ts_ is the observed revocation latency.
  std::vector<crypto::KeyHandle> handles =
      credentials_.usable_handles(client_id, now);
  if (handles.empty()) {
    ++proofs_lifecycle_;
    ++proof_rejections_[client_id];
    first_lifecycle_reject_ts_.try_emplace(client_id, now);
    proof_outcome("proxy.proofs_rejected_lifecycle");
    return std::nullopt;
  }
  if (payload.size() < 8) {
    ++proofs_bad_sig_;
    ++proof_rejections_[client_id];
    proof_outcome("proxy.proofs_rejected_signature");
    return std::nullopt;
  }
  util::ByteReader r(payload);
  std::uint64_t seq = r.u64be();
  auto sealed = r.raw(r.remaining());
  // Newest generation first; during a rotation-overlap window the retiring
  // key still verifies, so a proof sealed just before the rotation passes.
  std::optional<AuthMessage> msg;
  for (crypto::KeyHandle handle : handles) {
    msg = open_auth_message(keystore_, handle, seq, sealed);
    if (msg) break;
  }
  if (!msg) {
    ++proofs_bad_sig_;
    ++proof_rejections_[client_id];
    proof_outcome("proxy.proofs_rejected_signature");
    return std::nullopt;
  }
  // Sequence must advance strictly: the same authenticated proof delivered
  // again (1-RTT retransmit race, network duplication, or an attacker
  // replay) is counted but never re-admitted.
  auto [seq_it, first_contact] = last_proof_seq_.try_emplace(client_id, 0);
  if (!first_contact && seq <= seq_it->second) {
    ++proofs_duplicate_;
    ++proof_rejections_[client_id];
    proof_outcome("proxy.proofs_duplicate");
    return std::nullopt;
  }
  seq_it->second = seq;
  if (!humanness_.is_human(msg->features)) {
    ++proofs_nonhuman_;
    proof_outcome("proxy.proofs_rejected_nonhuman");
    return std::nullopt;
  }
  // A proof that spent longer in flight than the freshness window is
  // useless to the user it authenticated; count it so the report can show
  // the network is eating proofs.
  if (now - msg->capture_time > config_.human_validity_window) {
    ++proofs_late_;
    proof_outcome("proxy.proofs_late");
  }
  ++proofs_accepted_;
  proof_outcome("proxy.proofs_accepted");
  if (telemetry_) {
    double age = std::max(0.0, now - msg->capture_time);
    tm_proof_age_->record(age);
    if (telemetry_->trace.enabled()) {
      char age_buf[32];
      std::snprintf(age_buf, sizeof(age_buf), "%.6g", age);
      telemetry::TraceSpan span;
      span.name = "proof";
      span.category = "proxy.proof";
      span.start = now;
      span.home = telemetry_home_;
      span.track = client_id;
      span.args = {{"age_s", age_buf}, {"app", msg->app_package}};
      telemetry_->trace.record(std::move(span));
    }
  }
  proofs_.push_back(HumanProof{now, msg->app_package});
  if (config_.degraded_policy == FailPolicy::kGrace) {
    forgive_covered_violations(msg->app_package, msg->capture_time, now);
  }
  return msg;
}

std::optional<AuthMessage> FiatProxy::on_auth_payload(
    const std::string& client_id, std::span<const std::uint8_t> payload,
    double now, const AttackLabel& label) {
  std::optional<AuthMessage> msg = on_auth_payload(client_id, payload, now);
  if (!label.benign()) {
    AttackClassTally& tally = ledger_.by_class[static_cast<std::size_t>(label.cls)];
    ++tally.proofs;
    if (!msg) ++tally.proofs_rejected;
  }
  return msg;
}

void FiatProxy::unlock_device(const std::string& name) {
  for (auto& [ip, dev] : devices_) {
    if (dev.config.name == name) {
      dev.locked = false;
      dev.recent_violations.clear();
    }
  }
}

void FiatProxy::flush_events() {
  for (auto& [ip, dev] : devices_) {
    if (auto last = dev.grouper.flush(); last || dev.event_seq >= 0) {
      close_event(dev);
    }
  }
}

namespace {

void write_counters(util::ByteWriter& w, const ProxyCounters& c) {
  w.u64be(c.packets_allowed);
  w.u64be(c.packets_dropped);
  for (std::size_t n : c.by_disposition) w.u64be(n);
  w.u64be(c.events_closed);
}

void read_counters(util::ByteReader& r, ProxyCounters& c) {
  c.packets_allowed = r.u64be();
  c.packets_dropped = r.u64be();
  for (std::size_t& n : c.by_disposition) n = r.u64be();
  c.events_closed = r.u64be();
}

void write_string(util::ByteWriter& w, const std::string& s) {
  w.u32be(static_cast<std::uint32_t>(s.size()));
  w.raw(s);
}

std::string read_string(util::ByteReader& r) { return r.str(r.u32be()); }

}  // namespace

void FiatProxy::encode_durable_state(util::ByteWriter& w) const {
  // -- scalars --------------------------------------------------------------
  w.f64be(first_packet_ts_);
  w.u8(bootstrap_forced_ ? 1 : 0);
  w.u32be(static_cast<std::uint32_t>(next_event_seq_));
  write_counters(w, counters_);
  w.u64be(alerts_);
  w.u64be(proofs_accepted_);
  w.u64be(proofs_bad_sig_);
  w.u64be(proofs_nonhuman_);
  w.u8(channel_ever_active_ ? 1 : 0);
  w.u8(channel_forced_down_ ? 1 : 0);
  w.f64be(last_channel_activity_);
  w.u64be(proofs_late_);
  w.u64be(proofs_duplicate_);
  w.u64be(events_degraded_);
  w.u64be(degraded_allows_);
  w.u64be(violations_forgiven_);

  // -- logs and proof freshness --------------------------------------------
  w.u64be(log_.size());
  for (const Decision& d : log_) {
    w.f64be(d.ts);
    write_string(w, d.device);
    w.u8(d.verdict == Verdict::kDrop ? 1 : 0);
    w.u8(static_cast<std::uint8_t>(d.why));
    w.u32be(static_cast<std::uint32_t>(d.event_seq));
  }
  w.u64be(outcomes_.size());
  for (const EventOutcome& o : outcomes_) {
    write_string(w, o.device);
    w.u32be(static_cast<std::uint32_t>(o.event_seq));
    w.f64be(o.start);
    w.u8(static_cast<std::uint8_t>(o.classified));
    w.u8(o.treated_as_manual ? 1 : 0);
    w.u8(o.human_validated ? 1 : 0);
    w.u8(o.degraded ? 1 : 0);
    w.u8(o.degraded_allowed ? 1 : 0);
    w.u64be(o.packets_allowed);
    w.u64be(o.packets_dropped);
  }
  w.u64be(proofs_.size());
  for (const HumanProof& p : proofs_) {
    w.f64be(p.time);
    write_string(w, p.app_package);
  }
  w.u32be(static_cast<std::uint32_t>(last_proof_seq_.size()));
  for (const auto& [client, seq] : last_proof_seq_) {  // std::map: sorted
    write_string(w, client);
    w.u64be(seq);
  }

  // -- DNS view -------------------------------------------------------------
  dns_->encode_state(w);

  // -- per-device state (std::map keyed by IP: already sorted) --------------
  w.u32be(static_cast<std::uint32_t>(devices_.size()));
  for (const auto& [ip, dev] : devices_) {
    w.u32be(ip);
    dev.rules.encode_state(w);
    const auto& open = dev.grouper.open_packets();
    w.u32be(static_cast<std::uint32_t>(open.size()));
    for (const net::PacketRecord& pkt : open) write_packet_record(w, pkt);
    w.u32be(static_cast<std::uint32_t>(dev.event_seq));
    w.u64be(dev.event_packets);
    w.u64be(dev.allowed);
    w.u64be(dev.dropped);
    w.f64be(dev.event_start);
    w.f64be(dev.event_last);
    w.u8(dev.classified ? 1 : 0);
    w.u8(dev.classified ? static_cast<std::uint8_t>(*dev.classified) : 0);
    w.u8(dev.human_validated ? 1 : 0);
    w.u8(dev.degraded ? 1 : 0);
    w.u8(dev.degraded_open ? 1 : 0);
    w.u32be(static_cast<std::uint32_t>(dev.recent_violations.size()));
    for (double t : dev.recent_violations) w.f64be(t);
    w.f64be(dev.locked_until);
    w.u8(dev.locked ? 1 : 0);
    w.u64be(dev.event_costume);
    w.u8(dev.escalated ? 1 : 0);
    w.u32be(static_cast<std::uint32_t>(dev.pending_costume_sigs.size()));
    for (std::uint64_t sig : dev.pending_costume_sigs) w.u64be(sig);
  }

  // -- attack ledger + guard escalations (state version 2) ------------------
  w.u64be(mimicry_escalations_);
  w.u64be(notification_escalations_);
  for (const AttackClassTally& t : ledger_.by_class) {
    w.u64be(t.packets);
    w.u64be(t.packets_dropped);
    w.u64be(t.proofs);
    w.u64be(t.proofs_rejected);
  }
  w.u32be(static_cast<std::uint32_t>(ledger_.commands.size()));
  for (const auto& [cmd, st] : ledger_.commands) {  // std::map: sorted
    w.u32be(static_cast<std::uint32_t>(cmd));
    w.u32be(static_cast<std::uint32_t>(st.cls));
    w.u64be(st.payload_seen);
    w.u64be(st.payload_dropped);
  }

  // -- fleet-correlation signals (state version 3) --------------------------
  w.u32be(static_cast<std::uint32_t>(escalation_signatures_.size()));
  for (const auto& [sig, count] : escalation_signatures_) {  // std::map: sorted
    w.u64be(sig);
    w.u64be(count);
  }
  w.u32be(static_cast<std::uint32_t>(proof_rejections_.size()));
  for (const auto& [client, n] : proof_rejections_) {  // std::map: sorted
    write_string(w, client);
    w.u64be(n);
  }

  // -- credential lifecycle (state version 4) -------------------------------
  // The registry serializes its own maps (sorted) including pending
  // enrollments: a crash between EnrollBegin and EnrollComplete restores the
  // issued challenge, so the journaled EnrollComplete still verifies.
  credentials_.encode(w);
  w.u64be(proofs_lifecycle_);
  w.u32be(static_cast<std::uint32_t>(first_lifecycle_reject_ts_.size()));
  for (const auto& [client, ts] : first_lifecycle_reject_ts_) {  // sorted
    write_string(w, client);
    w.f64be(ts);
  }
}

void FiatProxy::decode_durable_state(util::ByteReader& r) {
  first_packet_ts_ = r.f64be();
  bootstrap_forced_ = r.u8() != 0;
  next_event_seq_ = static_cast<int>(r.u32be());
  read_counters(r, counters_);
  alerts_ = r.u64be();
  proofs_accepted_ = r.u64be();
  proofs_bad_sig_ = r.u64be();
  proofs_nonhuman_ = r.u64be();
  channel_ever_active_ = r.u8() != 0;
  channel_forced_down_ = r.u8() != 0;
  last_channel_activity_ = r.f64be();
  proofs_late_ = r.u64be();
  proofs_duplicate_ = r.u64be();
  events_degraded_ = r.u64be();
  degraded_allows_ = r.u64be();
  violations_forgiven_ = r.u64be();

  log_.clear();
  std::uint64_t log_count = r.u64be();
  log_.reserve(log_count);
  for (std::uint64_t i = 0; i < log_count; ++i) {
    Decision d;
    d.ts = r.f64be();
    d.device = read_string(r);
    d.verdict = r.u8() != 0 ? Verdict::kDrop : Verdict::kAllow;
    d.why = static_cast<Disposition>(r.u8());
    d.event_seq = static_cast<int>(r.u32be());
    log_.push_back(std::move(d));
  }
  outcomes_.clear();
  std::uint64_t outcome_count = r.u64be();
  outcomes_.reserve(outcome_count);
  for (std::uint64_t i = 0; i < outcome_count; ++i) {
    EventOutcome o;
    o.device = read_string(r);
    o.event_seq = static_cast<int>(r.u32be());
    o.start = r.f64be();
    o.classified = static_cast<gen::TrafficClass>(r.u8());
    o.treated_as_manual = r.u8() != 0;
    o.human_validated = r.u8() != 0;
    o.degraded = r.u8() != 0;
    o.degraded_allowed = r.u8() != 0;
    o.packets_allowed = r.u64be();
    o.packets_dropped = r.u64be();
    outcomes_.push_back(std::move(o));
  }
  proofs_.clear();
  std::uint64_t proof_count = r.u64be();
  proofs_.reserve(proof_count);
  for (std::uint64_t i = 0; i < proof_count; ++i) {
    HumanProof p;
    p.time = r.f64be();
    p.app_package = read_string(r);
    proofs_.push_back(std::move(p));
  }
  last_proof_seq_.clear();
  std::uint32_t seq_count = r.u32be();
  for (std::uint32_t i = 0; i < seq_count; ++i) {
    std::string client = read_string(r);
    last_proof_seq_[std::move(client)] = r.u64be();
  }

  dns_->decode_state(r);

  std::uint32_t device_count = r.u32be();
  if (device_count != devices_.size()) {
    throw ParseError("proxy snapshot device count mismatch");
  }
  for (std::uint32_t i = 0; i < device_count; ++i) {
    std::uint32_t ip = r.u32be();
    auto it = devices_.find(ip);
    if (it == devices_.end()) {
      throw ParseError("proxy snapshot names unknown device IP");
    }
    DeviceState& dev = it->second;
    dev.rules.decode_state(r);
    std::uint32_t open_count = r.u32be();
    std::vector<net::PacketRecord> open;
    open.reserve(open_count);
    for (std::uint32_t j = 0; j < open_count; ++j) {
      open.push_back(read_packet_record(r));
    }
    dev.grouper.restore_open(std::move(open));
    dev.event_seq = static_cast<int>(r.u32be());
    dev.event_packets = r.u64be();
    dev.allowed = r.u64be();
    dev.dropped = r.u64be();
    dev.event_start = r.f64be();
    dev.event_last = r.f64be();
    bool has_class = r.u8() != 0;
    auto klass = static_cast<gen::TrafficClass>(r.u8());
    dev.classified = has_class ? std::optional<gen::TrafficClass>(klass)
                               : std::nullopt;
    dev.human_validated = r.u8() != 0;
    dev.degraded = r.u8() != 0;
    dev.degraded_open = r.u8() != 0;
    dev.recent_violations.clear();
    std::uint32_t violation_count = r.u32be();
    for (std::uint32_t j = 0; j < violation_count; ++j) {
      dev.recent_violations.push_back(r.f64be());
    }
    dev.locked_until = r.f64be();
    dev.locked = r.u8() != 0;
    dev.event_costume = r.u64be();
    dev.escalated = r.u8() != 0;
    dev.pending_costume_sigs.clear();
    std::uint32_t sig_count = r.u32be();
    dev.pending_costume_sigs.reserve(sig_count);
    for (std::uint32_t j = 0; j < sig_count; ++j) {
      dev.pending_costume_sigs.push_back(r.u64be());
    }
  }

  mimicry_escalations_ = r.u64be();
  notification_escalations_ = r.u64be();
  for (AttackClassTally& t : ledger_.by_class) {
    t.packets = r.u64be();
    t.packets_dropped = r.u64be();
    t.proofs = r.u64be();
    t.proofs_rejected = r.u64be();
  }
  ledger_.commands.clear();
  std::uint32_t cmd_count = r.u32be();
  for (std::uint32_t i = 0; i < cmd_count; ++i) {
    auto cmd = static_cast<std::int32_t>(r.u32be());
    AttackCmdState st;
    st.cls = static_cast<std::int16_t>(r.u32be());
    st.payload_seen = r.u64be();
    st.payload_dropped = r.u64be();
    ledger_.commands.emplace(cmd, st);
  }

  escalation_signatures_.clear();
  std::uint32_t esc_count = r.u32be();
  for (std::uint32_t i = 0; i < esc_count; ++i) {
    std::uint64_t sig = r.u64be();
    escalation_signatures_[sig] = r.u64be();
  }
  proof_rejections_.clear();
  std::uint32_t rej_count = r.u32be();
  for (std::uint32_t i = 0; i < rej_count; ++i) {
    std::string client = read_string(r);
    proof_rejections_[std::move(client)] = r.u64be();
  }

  // Re-imports live credential material into the keystore; the handles the
  // spec-built proxy installed are superseded (never reachable again).
  credentials_.decode(r, keystore_);
  proofs_lifecycle_ = r.u64be();
  first_lifecycle_reject_ts_.clear();
  std::uint32_t lc_count = r.u32be();
  for (std::uint32_t i = 0; i < lc_count; ++i) {
    std::string client = read_string(r);
    first_lifecycle_reject_ts_[std::move(client)] = r.f64be();
  }
}

void FiatProxy::force_bootstrap_elapsed(double now) {
  // A flag, not timestamp arithmetic: a restart *during* the bootstrap
  // window (now < bootstrap_duration) could not otherwise express "window
  // over" without going negative, which process() treats as "no packet yet".
  bootstrap_forced_ = true;
  if (first_packet_ts_ < 0) first_packet_ts_ = now;
}

}  // namespace fiat::core
