#include "core/proxy.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fiat::core {

const char* disposition_name(Disposition d) {
  switch (d) {
    case Disposition::kNonIot: return "non-iot";
    case Disposition::kBootstrap: return "bootstrap";
    case Disposition::kRuleHit: return "rule-hit";
    case Disposition::kEventPrefix: return "event-prefix";
    case Disposition::kNonManual: return "non-manual";
    case Disposition::kManualValidated: return "manual-validated";
    case Disposition::kManualUnvalidated: return "manual-unvalidated";
    case Disposition::kLockout: return "lockout";
    case Disposition::kDagEdge: return "dag-edge";
  }
  return "?";
}

FiatProxy::FiatProxy(ProxyConfig config, HumannessVerifier humanness)
    : config_(config), humanness_(std::move(humanness)) {
  if (!config_.rules.dns) config_.rules.dns = &dns_;
}

void FiatProxy::add_device(ProxyDevice device) {
  std::uint32_t key = device.ip.value();
  if (devices_.contains(key)) throw LogicError("FiatProxy: duplicate device IP");
  devices_.emplace(key,
                   DeviceState(std::move(device), config_.rules, config_.event_gap));
}

void FiatProxy::pair_phone(const std::string& client_id,
                           std::span<const std::uint8_t> psk) {
  phone_keys_[client_id] = keystore_.import_key(psk, "phone:" + client_id);
}

void FiatProxy::add_dag_edge(net::Ipv4Addr src, net::Ipv4Addr dst) {
  dag_.add_edge(src, dst);
}

bool FiatProxy::in_bootstrap(double now) const {
  return first_packet_ts_ >= 0 &&
         now - first_packet_ts_ < config_.bootstrap_duration;
}

bool FiatProxy::device_locked(const std::string& name, double now) const {
  for (const auto& [ip, dev] : devices_) {
    if (dev.config.name != name) continue;
    if (!dev.locked) return false;
    if (config_.auto_unlock && now >= dev.locked_until) return false;
    return true;
  }
  return false;
}

std::size_t FiatProxy::rule_count() const {
  std::size_t n = 0;
  for (const auto& [ip, dev] : devices_) n += dev.rules.rule_count();
  return n;
}

FiatProxy::DeviceState* FiatProxy::device_of(const net::PacketRecord& pkt) {
  auto it = devices_.find(pkt.src_ip.value());
  if (it != devices_.end()) return &it->second;
  it = devices_.find(pkt.dst_ip.value());
  if (it != devices_.end()) return &it->second;
  return nullptr;
}

Verdict FiatProxy::record(double ts, const std::string& device, Verdict v,
                          Disposition why, int event_seq) {
  log_.push_back(Decision{ts, device, v, why, event_seq});
  return v;
}

bool FiatProxy::fresh_proof_for(const DeviceState& dev, double now) const {
  for (auto it = proofs_.rbegin(); it != proofs_.rend(); ++it) {
    if (now - it->time > config_.human_validity_window) break;  // too old
    if (it->time - now > config_.human_pre_window) continue;    // from the future
    if (it->app_package == dev.config.app_package) return true;
  }
  return false;
}

void FiatProxy::close_event(DeviceState& dev) {
  if (dev.event_seq < 0) return;
  EventOutcome outcome;
  outcome.device = dev.config.name;
  outcome.event_seq = dev.event_seq;
  outcome.start = dev.event_start;
  outcome.classified = dev.classified.value_or(gen::TrafficClass::kControl);
  outcome.treated_as_manual =
      dev.classified && *dev.classified == gen::TrafficClass::kManual;
  outcome.human_validated = dev.human_validated;
  outcome.packets_allowed = dev.allowed;
  outcome.packets_dropped = dev.dropped;
  outcomes_.push_back(std::move(outcome));

  dev.event_seq = -1;
  dev.event_packets = 0;
  dev.allowed = 0;
  dev.dropped = 0;
  dev.classified.reset();
  dev.human_validated = false;
}

Verdict FiatProxy::decide_event_packet(DeviceState& dev, const net::PacketRecord& pkt) {
  double now = pkt.ts;
  if (dev.event_packets == 1) {
    dev.event_seq = next_event_seq_++;
    dev.event_start = now;
  }

  // Phase 1: allowed prefix.
  if (!dev.classified && dev.event_packets <= dev.config.allowed_prefix) {
    dev.allowed++;
    return record(now, dev.config.name, Verdict::kAllow, Disposition::kEventPrefix,
                  dev.event_seq);
  }

  // Phase 2: classify once, on the packets seen so far (first N + this one).
  if (!dev.classified) {
    UnpredictableEvent seen{dev.grouper.open_packets()};
    dev.classified = dev.config.classifier.classify(seen, dev.config.ip);
    if (*dev.classified == gen::TrafficClass::kManual) {
      // Command-shaped traffic must keep facing the humanness gate forever:
      // its buckets are barred from online rule promotion, or a patient
      // attacker repeating the command at a constant pace would eventually
      // be whitelisted as "predictable".
      for (const auto& event_pkt : seen.packets) {
        dev.rules.forbid_online(event_pkt);
      }
      dev.human_validated = fresh_proof_for(dev, now);
      if (!dev.human_validated) {
        ++alerts_;
        dev.recent_violations.push_back(now);
        while (!dev.recent_violations.empty() &&
               now - dev.recent_violations.front() > config_.lockout_window) {
          dev.recent_violations.pop_front();
        }
        if (static_cast<int>(dev.recent_violations.size()) >=
            config_.lockout_threshold) {
          dev.locked = true;
          dev.locked_until = now + config_.lockout_duration;
        }
      }
    }
  }

  // Phase 3: verdict by classification.
  if (*dev.classified != gen::TrafficClass::kManual) {
    dev.allowed++;
    return record(now, dev.config.name, Verdict::kAllow, Disposition::kNonManual,
                  dev.event_seq);
  }
  if (dev.human_validated) {
    dev.allowed++;
    return record(now, dev.config.name, Verdict::kAllow,
                  Disposition::kManualValidated, dev.event_seq);
  }
  dev.dropped++;
  return record(now, dev.config.name, Verdict::kDrop,
                Disposition::kManualUnvalidated, dev.event_seq);
}

Verdict FiatProxy::process(const net::PacketRecord& pkt) {
  double now = pkt.ts;
  if (first_packet_ts_ < 0) first_packet_ts_ = now;

  DeviceState* dev = device_of(pkt);
  if (!dev) return record(now, "", Verdict::kAllow, Disposition::kNonIot, -1);

  // Device-to-device DAG whitelist (§7): e.g. Alexa -> smart light.
  if (dag_.allows(pkt.src_ip, pkt.dst_ip)) {
    return record(now, dev->config.name, Verdict::kAllow, Disposition::kDagEdge, -1);
  }

  // Brute-force lockout: device disconnected until re-enabled.
  if (dev->locked) {
    if (config_.auto_unlock && now >= dev->locked_until) {
      dev->locked = false;
      dev->recent_violations.clear();
    } else {
      return record(now, dev->config.name, Verdict::kDrop, Disposition::kLockout,
                    dev->event_seq);
    }
  }

  // Bootstrap: allow everything and learn.
  if (in_bootstrap(now)) {
    dev->rules.learn(pkt);
    return record(now, dev->config.name, Verdict::kAllow, Disposition::kBootstrap, -1);
  }

  // Predictable: rule hit.
  bool hit = config_.continue_learning ? dev->rules.match_and_learn(pkt)
                                       : dev->rules.match(pkt);
  if (hit) {
    return record(now, dev->config.name, Verdict::kAllow, Disposition::kRuleHit, -1);
  }

  // Unpredictable: event grouping + classification gate.
  if (auto closed = dev->grouper.add(pkt)) close_event(*dev);
  dev->event_packets++;
  return decide_event_packet(*dev, pkt);
}

std::optional<AuthMessage> FiatProxy::on_auth_payload(
    const std::string& client_id, std::span<const std::uint8_t> payload,
    double now) {
  auto key_it = phone_keys_.find(client_id);
  if (key_it == phone_keys_.end()) {
    ++proofs_bad_sig_;
    return std::nullopt;
  }
  if (payload.size() < 8) {
    ++proofs_bad_sig_;
    return std::nullopt;
  }
  util::ByteReader r(payload);
  std::uint64_t seq = r.u64be();
  auto sealed = r.raw(r.remaining());
  auto msg = open_auth_message(keystore_, key_it->second, seq, sealed);
  if (!msg) {
    ++proofs_bad_sig_;
    return std::nullopt;
  }
  if (!humanness_.is_human(msg->features)) {
    ++proofs_nonhuman_;
    return std::nullopt;
  }
  ++proofs_accepted_;
  proofs_.push_back(HumanProof{now, msg->app_package});
  return msg;
}

void FiatProxy::unlock_device(const std::string& name) {
  for (auto& [ip, dev] : devices_) {
    if (dev.config.name == name) {
      dev.locked = false;
      dev.recent_violations.clear();
    }
  }
}

void FiatProxy::flush_events() {
  for (auto& [ip, dev] : devices_) {
    if (auto last = dev.grouper.flush(); last || dev.event_seq >= 0) {
      close_event(dev);
    }
  }
}

}  // namespace fiat::core
