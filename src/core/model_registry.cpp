#include "core/model_registry.hpp"

#include <cstdio>

#include "util/error.hpp"

namespace fiat::core {

namespace {
constexpr std::uint32_t kRegistryMagic = 0x464d5231;  // "FMR1"

void put_str(util::ByteWriter& w, const std::string& s) {
  w.u16be(static_cast<std::uint16_t>(s.size()));
  w.raw(s);
}

std::string get_str(util::ByteReader& r) { return r.str(r.u16be()); }
}  // namespace

void ModelRegistry::put(const std::string& device_model, const std::string& version,
                        const ManualEventClassifier& classifier) {
  if (device_model.empty()) throw LogicError("ModelRegistry: empty device model");
  entries_[device_model][version] = classifier.save();
}

std::optional<ManualEventClassifier> ModelRegistry::get(
    const std::string& device_model, const std::string& version) const {
  auto model_it = entries_.find(device_model);
  if (model_it == entries_.end()) return std::nullopt;
  auto version_it = model_it->second.find(version);
  if (version_it == model_it->second.end()) return std::nullopt;
  return ManualEventClassifier::load(version_it->second);
}

std::optional<ManualEventClassifier> ModelRegistry::resolve(
    const std::string& device_model, const std::string& version) const {
  if (auto exact = get(device_model, version)) return exact;
  auto model_it = entries_.find(device_model);
  if (model_it == entries_.end() || model_it->second.empty()) return std::nullopt;
  // Newest (lexicographically greatest) version as the fallback.
  return ManualEventClassifier::load(model_it->second.rbegin()->second);
}

std::vector<std::pair<std::string, std::string>> ModelRegistry::keys() const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [model, versions] : entries_) {
    for (const auto& [version, blob] : versions) out.emplace_back(model, version);
  }
  return out;
}

util::Bytes ModelRegistry::save() const {
  util::ByteWriter w;
  w.u32be(kRegistryMagic);
  std::uint32_t count = 0;
  for (const auto& [model, versions] : entries_) {
    count += static_cast<std::uint32_t>(versions.size());
  }
  w.u32be(count);
  for (const auto& [model, versions] : entries_) {
    for (const auto& [version, blob] : versions) {
      put_str(w, model);
      put_str(w, version);
      w.u32be(static_cast<std::uint32_t>(blob.size()));
      w.raw(std::span<const std::uint8_t>(blob.data(), blob.size()));
    }
  }
  return w.take();
}

ModelRegistry ModelRegistry::load(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  if (r.u32be() != kRegistryMagic) throw ParseError("bad model registry magic");
  std::uint32_t count = r.u32be();
  ModelRegistry registry;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string model = get_str(r);
    std::string version = get_str(r);
    std::uint32_t len = r.u32be();
    auto blob = r.raw(len);
    // Validate the blob parses before accepting it.
    (void)ManualEventClassifier::load(blob);
    registry.entries_[model][version].assign(blob.begin(), blob.end());
  }
  if (!r.done()) throw ParseError("model registry: trailing bytes");
  return registry;
}

void ModelRegistry::save_file(const std::string& path) const {
  auto blob = save();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) throw IoError("cannot write model registry: " + path);
  std::size_t written = std::fwrite(blob.data(), 1, blob.size(), f);
  std::fclose(f);
  if (written != blob.size()) throw IoError("short write to " + path);
}

ModelRegistry ModelRegistry::load_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw IoError("cannot read model registry: " + path);
  util::Bytes blob;
  std::uint8_t buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    blob.insert(blob.end(), buf, buf + n);
  }
  std::fclose(f);
  return load(blob);
}

}  // namespace fiat::core
