#include "core/humanness.hpp"

#include <chrono>

#include "gen/sensors.hpp"
#include "util/error.hpp"

namespace fiat::core {

HumannessVerifier HumannessVerifier::train(const ml::Dataset& data, int max_depth) {
  if (data.size() == 0) throw LogicError("HumannessVerifier: empty training data");
  HumannessVerifier v;
  ml::TreeConfig config;
  config.max_depth = max_depth;
  config.min_samples_leaf = 2;
  v.tree_ = ml::DecisionTree(config);
  v.tree_.fit(data);

  // Measure a representative validation latency on the training data.
  auto t0 = std::chrono::steady_clock::now();
  constexpr int kReps = 200;
  int sink = 0;
  for (int i = 0; i < kReps; ++i) {
    sink += v.tree_.predict(data.X[static_cast<std::size_t>(i) % data.size()]);
  }
  asm volatile("" : : "r"(sink) : "memory");  // keep the loop from folding away
  auto t1 = std::chrono::steady_clock::now();
  v.measured_seconds_ =
      std::chrono::duration<double>(t1 - t0).count() / kReps;
  return v;
}

HumannessVerifier HumannessVerifier::train_synthetic(std::uint64_t seed,
                                                     std::size_t per_class) {
  sim::Rng rng(seed);
  ml::Dataset data = gen::make_humanness_dataset(rng, per_class);
  return train(data);
}

bool HumannessVerifier::is_human(std::span<const double> features48) const {
  if (features48.size() != gen::kSensorFeatureCount) {
    throw LogicError("HumannessVerifier: expected 48 features");
  }
  return tree_.predict(features48) == 1;
}

}  // namespace fiat::core
