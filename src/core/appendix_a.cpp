#include "core/appendix_a.hpp"

#include "util/error.hpp"

namespace fiat::core {

PipelineErrorRates appendix_a_error_rates(const PipelineRecalls& recalls) {
  for (double r : {recalls.manual, recalls.non_manual, recalls.human,
                   recalls.non_human}) {
    if (r < 0.0 || r > 1.0) throw LogicError("appendix_a: recall outside [0,1]");
  }
  PipelineErrorRates rates;
  // Eq. (3), corrected: misclassified non-manual is only blocked when the
  // (absent) human is correctly not detected.
  rates.fp_non_manual = (1.0 - recalls.non_manual) * recalls.non_human;
  // Eq. (4): correctly classified manual blocked by a humanness miss.
  rates.fp_manual = recalls.manual * (1.0 - recalls.human);
  // Eq. (5): attack passes when classified non-manual, or classified manual
  // but the non-human actor is mistaken for a human.
  rates.fn = (1.0 - recalls.manual) + recalls.manual * (1.0 - recalls.non_human);
  return rates;
}

}  // namespace fiat::core
