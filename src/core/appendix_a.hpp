// Appendix A — closed-form false-positive / false-negative probabilities of
// the combined (event classifier x humanness validator) pipeline.
//
// With R_manual / R_non_manual the event classifier's per-class recalls and
// R_human / R_non_human the humanness validator's recalls:
//
//   FP-N (blocked control/automated)  = (1 - R_non_manual) * R_non_human
//   FP-M (blocked legitimate manual)  = R_manual * (1 - R_human)
//   FN   (synchronized attack passes) = (1 - R_manual)
//                                       + R_manual * (1 - R_non_human)
//
// Note: the paper's Eq. (2) last line and Eq. (3) write R_human where the
// derivation requires R_non_human; we implement the corrected form. The FN
// formula with the paper's EchoDot4 inputs (R_manual = 0.98,
// R_non_human = 0.982) reproduces its printed 3.76% exactly, which is how
// this module is validated (see tests/test_appendix_a.cpp).
#pragma once

namespace fiat::core {

struct PipelineRecalls {
  double manual = 1.0;      // event classifier, manual class
  double non_manual = 1.0;  // event classifier, control/automated class
  double human = 1.0;       // humanness validator, human class
  double non_human = 1.0;   // humanness validator, non-human class
};

struct PipelineErrorRates {
  double fp_non_manual = 0.0;  // legit control/automated blocked
  double fp_manual = 0.0;      // legit manual blocked
  double fn = 0.0;             // attack traffic passes
};

/// Evaluates the Appendix A equations. Throws fiat::LogicError if any recall
/// is outside [0, 1].
PipelineErrorRates appendix_a_error_rates(const PipelineRecalls& recalls);

}  // namespace fiat::core
