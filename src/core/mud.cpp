#include "core/mud.hpp"

#include <algorithm>
#include <tuple>

#include "core/bucket_key.hpp"
#include "util/error.hpp"
#include "util/flat_map.hpp"

namespace fiat::core {

MudProfile derive_mud_profile(std::span<const net::PacketRecord> packets,
                              net::Ipv4Addr device, const std::string& device_name,
                              const net::DnsTable* dns, std::size_t min_packets) {
  // Counting pass on packed keys: interned remote name (32) | port (16) |
  // proto code (8) | direction (8). The legacy code keyed a std::map with a
  // {string, ...} tuple — one string build plus O(log n) string compares per
  // packet. Output order is restored by a single sort at the end.
  DomainInterner interner;
  util::FlatMap<std::uint64_t, std::size_t> counts;
  for (const auto& pkt : packets) {
    if (pkt.src_ip != device && pkt.dst_ip != device) continue;
    net::Ipv4Addr remote = pkt.remote_of(device);
    std::uint32_t name_id;
    if (dns) {
      if (auto domain = dns->domain_of(remote)) {
        name_id = interner.intern(*domain);
      } else {
        name_id = interner.id_of(remote, nullptr, nullptr);
      }
    } else {
      name_id = interner.id_of(remote, nullptr, nullptr);
    }
    std::uint64_t key =
        (static_cast<std::uint64_t>(name_id) << 32) |
        (static_cast<std::uint64_t>(pkt.remote_port_of(device)) << 16) |
        (transport_code(pkt.proto) << 8) |
        static_cast<std::uint64_t>(pkt.outbound_from(device));
    counts[key]++;
  }

  MudProfile profile;
  profile.device_name = device_name;
  profile.mud_url = "https://fiat.example/mud/" + device_name + ".json";
  for (const auto& [key, count] : counts) {
    if (count < min_packets) continue;
    profile.entries.push_back(MudAclEntry{
        interner.name_of(static_cast<std::uint32_t>(key >> 32)),
        transport_from_code((key >> 8) & 0xff),
        static_cast<std::uint16_t>(key >> 16), (key & 1) != 0, count});
  }
  // Same order the sorted std::map produced (MudProfile documents its
  // entries as sorted; to_json() depends on it for determinism).
  std::sort(profile.entries.begin(), profile.entries.end(),
            [](const MudAclEntry& a, const MudAclEntry& b) {
              return std::tie(a.remote, a.proto, a.remote_port, a.outbound) <
                     std::tie(b.remote, b.proto, b.remote_port, b.outbound);
            });
  return profile;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void render_acl(std::string& out, const std::string& acl_name,
                const std::vector<const MudAclEntry*>& entries) {
  out += "      {\n        \"name\": \"" + acl_name + "\",\n";
  out += "        \"type\": \"ipv4-acl-type\",\n        \"aces\": {\n"
         "          \"ace\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& entry = *entries[i];
    out += "            {\n";
    out += "              \"name\": \"" + acl_name + "-" + std::to_string(i) + "\",\n";
    out += "              \"matches\": {\n";
    bool is_domain = entry.remote.find_first_not_of("0123456789.") != std::string::npos;
    out += std::string("                \"ipv4\": { \"") +
           (is_domain ? "ietf-acldns:dst-dnsname" : "destination-ipv4-network") +
           "\": \"" + json_escape(entry.remote) + "\" },\n";
    out += std::string("                \"") +
           (entry.proto == net::Transport::kTcp ? "tcp" : "udp") +
           "\": { \"destination-port\": { \"operator\": \"eq\", \"port\": " +
           std::to_string(entry.remote_port) + " } }\n";
    out += "              },\n";
    out += "              \"actions\": { \"forwarding\": \"accept\" }\n";
    out += i + 1 < entries.size() ? "            },\n" : "            }\n";
  }
  out += "          ]\n        }\n      }";
}

}  // namespace

std::string MudProfile::to_json() const {
  std::vector<const MudAclEntry*> from_device, to_device;
  for (const auto& entry : entries) {
    (entry.outbound ? from_device : to_device).push_back(&entry);
  }

  std::string out = "{\n  \"ietf-mud:mud\": {\n";
  out += "    \"mud-version\": 1,\n";
  out += "    \"mud-url\": \"" + json_escape(mud_url) + "\",\n";
  out += "    \"systeminfo\": \"" + json_escape(device_name) +
         " (profile derived by FIAT)\",\n";
  out += "    \"from-device-policy\": { \"access-lists\": { \"access-list\": "
         "[ { \"name\": \"from-" + json_escape(device_name) + "\" } ] } },\n";
  out += "    \"to-device-policy\": { \"access-lists\": { \"access-list\": "
         "[ { \"name\": \"to-" + json_escape(device_name) + "\" } ] } }\n";
  out += "  },\n  \"ietf-access-control-list:acls\": {\n    \"acl\": [\n";
  render_acl(out, "from-" + device_name, from_device);
  out += ",\n";
  render_acl(out, "to-" + device_name, to_device);
  out += "\n    ]\n  }\n}\n";
  return out;
}

}  // namespace fiat::core
