#include "core/mud.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace fiat::core {

MudProfile derive_mud_profile(std::span<const net::PacketRecord> packets,
                              net::Ipv4Addr device, const std::string& device_name,
                              const net::DnsTable* dns, std::size_t min_packets) {
  struct Key {
    std::string remote;
    net::Transport proto;
    std::uint16_t port;
    bool outbound;
    bool operator<(const Key& other) const {
      return std::tie(remote, proto, port, outbound) <
             std::tie(other.remote, other.proto, other.port, other.outbound);
    }
  };
  std::map<Key, std::size_t> counts;
  for (const auto& pkt : packets) {
    if (pkt.src_ip != device && pkt.dst_ip != device) continue;
    net::Ipv4Addr remote = pkt.remote_of(device);
    std::string name = remote.str();
    if (dns) {
      if (auto domain = dns->domain_of(remote)) name = *domain;
    }
    counts[Key{name, pkt.proto, pkt.remote_port_of(device),
               pkt.outbound_from(device)}]++;
  }

  MudProfile profile;
  profile.device_name = device_name;
  profile.mud_url = "https://fiat.example/mud/" + device_name + ".json";
  for (const auto& [key, count] : counts) {
    if (count < min_packets) continue;
    profile.entries.push_back(
        MudAclEntry{key.remote, key.proto, key.port, key.outbound, count});
  }
  return profile;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void render_acl(std::string& out, const std::string& acl_name,
                const std::vector<const MudAclEntry*>& entries) {
  out += "      {\n        \"name\": \"" + acl_name + "\",\n";
  out += "        \"type\": \"ipv4-acl-type\",\n        \"aces\": {\n"
         "          \"ace\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& entry = *entries[i];
    out += "            {\n";
    out += "              \"name\": \"" + acl_name + "-" + std::to_string(i) + "\",\n";
    out += "              \"matches\": {\n";
    bool is_domain = entry.remote.find_first_not_of("0123456789.") != std::string::npos;
    out += std::string("                \"ipv4\": { \"") +
           (is_domain ? "ietf-acldns:dst-dnsname" : "destination-ipv4-network") +
           "\": \"" + json_escape(entry.remote) + "\" },\n";
    out += std::string("                \"") +
           (entry.proto == net::Transport::kTcp ? "tcp" : "udp") +
           "\": { \"destination-port\": { \"operator\": \"eq\", \"port\": " +
           std::to_string(entry.remote_port) + " } }\n";
    out += "              },\n";
    out += "              \"actions\": { \"forwarding\": \"accept\" }\n";
    out += i + 1 < entries.size() ? "            },\n" : "            }\n";
  }
  out += "          ]\n        }\n      }";
}

}  // namespace

std::string MudProfile::to_json() const {
  std::vector<const MudAclEntry*> from_device, to_device;
  for (const auto& entry : entries) {
    (entry.outbound ? from_device : to_device).push_back(&entry);
  }

  std::string out = "{\n  \"ietf-mud:mud\": {\n";
  out += "    \"mud-version\": 1,\n";
  out += "    \"mud-url\": \"" + json_escape(mud_url) + "\",\n";
  out += "    \"systeminfo\": \"" + json_escape(device_name) +
         " (profile derived by FIAT)\",\n";
  out += "    \"from-device-policy\": { \"access-lists\": { \"access-list\": "
         "[ { \"name\": \"from-" + json_escape(device_name) + "\" } ] } },\n";
  out += "    \"to-device-policy\": { \"access-lists\": { \"access-list\": "
         "[ { \"name\": \"to-" + json_escape(device_name) + "\" } ] } }\n";
  out += "  },\n  \"ietf-access-control-list:acls\": {\n    \"acl\": [\n";
  render_acl(out, "from-" + device_name, from_device);
  out += ",\n";
  render_acl(out, "to-" + device_name, to_device);
  out += "\n    ]\n  }\n}\n";
  return out;
}

}  // namespace fiat::core
