// Model registry — §7 "Road to Production": "we envision one model per IoT
// device and software version which is downloaded and applied automatically
// as FIAT identifies a new device."
//
// The registry maps (device model, firmware version) to a serialized
// ManualEventClassifier. A FIAT proxy resolves a newly identified device to
// its classifier, preferring an exact version match and falling back to the
// newest model for the device model (version strings compare
// lexicographically, which works for dotted numeric schemes of equal arity).
// Registries round-trip to a single binary file for distribution.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/manual_classifier.hpp"

namespace fiat::core {

class ModelRegistry {
 public:
  /// Registers (replacing any existing entry) a classifier for a device
  /// model + firmware version.
  void put(const std::string& device_model, const std::string& version,
           const ManualEventClassifier& classifier);

  /// Exact (model, version) lookup.
  std::optional<ManualEventClassifier> get(const std::string& device_model,
                                           const std::string& version) const;
  /// Exact match, else the newest version registered for the model.
  std::optional<ManualEventClassifier> resolve(const std::string& device_model,
                                               const std::string& version) const;

  /// Number of (model, version) entries.
  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& [model, versions] : entries_) n += versions.size();
    return n;
  }
  /// All (model, version) keys, sorted.
  std::vector<std::pair<std::string, std::string>> keys() const;

  /// Whole-registry serialization (the downloadable artifact).
  util::Bytes save() const;
  static ModelRegistry load(std::span<const std::uint8_t> data);
  /// File convenience wrappers; throw fiat::IoError on failure.
  void save_file(const std::string& path) const;
  static ModelRegistry load_file(const std::string& path);

 private:
  // key: device model -> version -> blob
  std::map<std::string, std::map<std::string, util::Bytes>> entries_;
};

}  // namespace fiat::core
