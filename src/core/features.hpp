// The 66-feature event representation for manual-traffic classification
// (§4.1).
//
// Per packet i (i = 1..5, zero-padded when the event is shorter), 12
// features:
//   pktI-direction, pktI-dst-ip1..4 (the remote endpoint's four octets),
//   pktI-proto, pktI-tcp-flags, pktI-src-port, pktI-dst-port, pktI-tls,
//   pktI-len, pktI-iat   (pkt1-iat is always 0)
// giving 5 x 12 = 60, plus 6 aggregate statistics:
//   ev-mean-len, ev-std-len, ev-mean-iat, ev-std-iat, ev-pkt-count,
//   ev-total-bytes
// for a total of 66. Feature names match Table 4's (pkt1-proto,
// pkt1-direction, pkt3-tls, pkt1-dst-ip1, ...).
#pragma once

#include <string>
#include <vector>

#include "core/events.hpp"
#include "net/packet.hpp"

namespace fiat::core {

constexpr std::size_t kEventFeaturePackets = 5;
constexpr std::size_t kEventFeatureCount = 66;

/// Extracts the 66 features for one event, relative to `device` (direction
/// and remote endpoint are device-relative). Aggregate statistics are over
/// all unpredictable packets of the event, matching §4.1's "statistics such
/// as mean of packet sizes and inter-arrival times between unpredictable
/// packets"; the per-packet block uses only the first 5.
std::vector<double> event_features(const UnpredictableEvent& event,
                                   net::Ipv4Addr device);

/// Variant consuming at most the first `prefix` packets for both blocks —
/// this is what the online proxy has when it must decide after N packets.
std::vector<double> event_features_prefix(const UnpredictableEvent& event,
                                          net::Ipv4Addr device, std::size_t prefix);

std::vector<std::string> event_feature_names();

}  // namespace fiat::core
