#include "core/bucket_key.hpp"

#include <algorithm>

namespace fiat::core {

namespace {

// Bit layout constants (see the header diagram).
constexpr std::uint64_t kClassicProtoShift = 30;
constexpr std::uint64_t kPortLessProtoShift = 32;
constexpr std::uint64_t kPortLessDirShift = 34;

}  // namespace

std::uint64_t transport_code(net::Transport proto) {
  switch (proto) {
    case net::Transport::kTcp: return 1;
    case net::Transport::kUdp: return 2;
    case net::Transport::kOther: return 0;
  }
  return 0;
}

net::Transport transport_from_code(std::uint64_t code) {
  switch (code) {
    case 1: return net::Transport::kTcp;
    case 2: return net::Transport::kUdp;
    default: return net::Transport::kOther;
  }
}

std::uint32_t DomainInterner::intern(const std::string& name) {
  auto [it, inserted] = by_name_.try_emplace(name, static_cast<std::uint32_t>(names_.size()));
  if (inserted) names_.push_back(name);
  return it->second;
}

std::uint32_t DomainInterner::id_of(net::Ipv4Addr remote, const net::DnsTable* dns,
                                    const net::ReverseResolver* reverse) {
  ++lookups_;
  if (dns && dns->generation() != dns_generation_) {
    // The DNS view changed: every memoized IP→name binding may be stale.
    // Ids stay stable (names are never forgotten); only the memo resets, so
    // the next packet per IP re-runs the resolution cascade — exactly what
    // the per-packet string path did on every packet.
    by_ip_.clear();
    dns_generation_ = dns->generation();
  }
  if (const std::uint32_t* id = by_ip_.find(remote.value())) return *id;

  ++resolves_;
  // Same cascade as the legacy bucket_key(): in-trace DNS, then reverse
  // lookup for public IPs, then the dotted quad.
  std::string name;
  if (dns) {
    if (auto domain = dns->domain_of(remote)) name = *domain;
  }
  if (name.empty() && reverse && !remote.is_private()) {
    name = reverse->resolve(remote);
  }
  if (name.empty()) name = remote.str();

  std::uint32_t id = intern(name);
  by_ip_[remote.value()] = id;
  return id;
}

BucketKey make_bucket_key(const net::PacketRecord& pkt, net::Ipv4Addr device,
                          FlowMode mode, const net::DnsTable* dns,
                          const net::ReverseResolver* reverse,
                          DomainInterner& interner) {
  BucketKey key;
  if (mode == FlowMode::kClassic) {
    key.w0 = (static_cast<std::uint64_t>(pkt.src_ip.value()) << 32) |
             pkt.dst_ip.value();
    key.w1 = (static_cast<std::uint64_t>(pkt.src_port) << 48) |
             (static_cast<std::uint64_t>(pkt.dst_port) << 32) |
             (transport_code(pkt.proto) << kClassicProtoShift) |
             std::min(pkt.size, kClassicSizeMax);
    return key;
  }
  bool outbound = pkt.outbound_from(device);
  std::uint32_t domain_id = interner.id_of(pkt.remote_of(device), dns, reverse);
  key.w0 = (static_cast<std::uint64_t>(outbound) << kPortLessDirShift) |
           (transport_code(pkt.proto) << kPortLessProtoShift) | domain_id;
  key.w1 = pkt.size;
  return key;
}

std::string bucket_key_string(const BucketKey& key, FlowMode mode,
                              const DomainInterner& interner) {
  std::string out;
  if (mode == FlowMode::kClassic) {
    out.reserve(48);
    out += net::Ipv4Addr(static_cast<std::uint32_t>(key.w0 >> 32)).str();
    out += '>';
    out += net::Ipv4Addr(static_cast<std::uint32_t>(key.w0)).str();
    out += '|';
    out += std::to_string(static_cast<std::uint16_t>(key.w1 >> 48));
    out += '>';
    out += std::to_string(static_cast<std::uint16_t>(key.w1 >> 32));
    out += '|';
    out += net::transport_name(
        transport_from_code((key.w1 >> kClassicProtoShift) & 0x3));
    out += '|';
    out += std::to_string(static_cast<std::uint32_t>(key.w1 & kClassicSizeMax));
    return out;
  }
  const std::string& name =
      interner.name_of(static_cast<std::uint32_t>(key.w0 & 0xffffffffu));
  out.reserve(name.size() + 24);
  out += ((key.w0 >> kPortLessDirShift) & 1) ? "out|" : "in|";
  out += name;
  out += '|';
  out += net::transport_name(
      transport_from_code((key.w0 >> kPortLessProtoShift) & 0x3));
  out += '|';
  out += std::to_string(static_cast<std::uint32_t>(key.w1));
  return out;
}

}  // namespace fiat::core
