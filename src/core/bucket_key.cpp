#include "core/bucket_key.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace fiat::core {

namespace {

// Bit layout constants (see the header diagram).
constexpr std::uint64_t kClassicProtoShift = 30;
constexpr std::uint64_t kPortLessProtoShift = 32;
constexpr std::uint64_t kPortLessDirShift = 34;

}  // namespace

std::uint64_t transport_code(net::Transport proto) {
  switch (proto) {
    case net::Transport::kTcp: return 1;
    case net::Transport::kUdp: return 2;
    case net::Transport::kOther: return 0;
  }
  return 0;
}

net::Transport transport_from_code(std::uint64_t code) {
  switch (code) {
    case 1: return net::Transport::kTcp;
    case 2: return net::Transport::kUdp;
    default: return net::Transport::kOther;
  }
}

std::uint32_t DomainInterner::intern(const std::string& name) {
  auto [it, inserted] = by_name_.try_emplace(name, static_cast<std::uint32_t>(names_.size()));
  if (inserted) names_.push_back(name);
  return it->second;
}

std::uint32_t DomainInterner::id_of(net::Ipv4Addr remote, const net::DnsTable* dns,
                                    const net::ReverseResolver* reverse) {
  ++lookups_;
  if (dns && dns->generation() != dns_generation_) {
    // The DNS view changed: every memoized IP→name binding may be stale.
    // Ids stay stable (names are never forgotten); only the memo resets, so
    // the next packet per IP re-runs the resolution cascade — exactly what
    // the per-packet string path did on every packet.
    by_ip_.clear();
    dns_generation_ = dns->generation();
  }
  if (const std::uint32_t* id = by_ip_.find(remote.value())) return *id;

  ++resolves_;
  // Same cascade as the legacy bucket_key(): in-trace DNS, then reverse
  // lookup for public IPs, then the dotted quad.
  std::string name;
  if (dns) {
    if (auto domain = dns->domain_of(remote)) name = *domain;
  }
  if (name.empty() && reverse && !remote.is_private()) {
    name = reverse->resolve(remote);
  }
  if (name.empty()) name = remote.str();

  std::uint32_t id = intern(name);
  by_ip_[remote.value()] = id;
  return id;
}

void DomainInterner::encode_state(util::ByteWriter& w) const {
  // Names in id order: ids embedded in learned BucketKeys must map to the
  // same strings after restore.
  w.u32be(static_cast<std::uint32_t>(names_.size()));
  for (const std::string& name : names_) {
    w.u32be(static_cast<std::uint32_t>(name.size()));
    w.raw(name);
  }
  w.u64be(dns_generation_);
  // IP memo sorted by IP value (FlatMap iterates in insertion order, which
  // is not canonical).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> memo;
  memo.reserve(by_ip_.size());
  for (const auto& [ip, id] : by_ip_) memo.emplace_back(ip, id);
  std::sort(memo.begin(), memo.end());
  w.u32be(static_cast<std::uint32_t>(memo.size()));
  for (const auto& [ip, id] : memo) {
    w.u32be(ip);
    w.u32be(id);
  }
  w.u64be(lookups_);
  w.u64be(resolves_);
}

void DomainInterner::decode_state(util::ByteReader& r) {
  names_.clear();
  by_name_.clear();
  by_ip_.clear();
  std::uint32_t name_count = r.u32be();
  names_.reserve(name_count);
  for (std::uint32_t i = 0; i < name_count; ++i) {
    std::string name = r.str(r.u32be());
    by_name_.emplace(name, i);
    names_.push_back(std::move(name));
  }
  dns_generation_ = r.u64be();
  std::uint32_t memo_count = r.u32be();
  by_ip_.reserve(memo_count);
  for (std::uint32_t i = 0; i < memo_count; ++i) {
    std::uint32_t ip = r.u32be();
    std::uint32_t id = r.u32be();
    if (id >= names_.size()) throw ParseError("interner memo id out of range");
    by_ip_[ip] = id;
  }
  lookups_ = r.u64be();
  resolves_ = r.u64be();
}

const std::uint32_t* DomainInterner::peek_id(net::Ipv4Addr remote,
                                             const net::DnsTable* dns) const {
  // A generation mismatch means id_of() would reset the memo first — the
  // memoized id (if any) is not what the scalar path would use.
  if (dns && dns->generation() != dns_generation_) return nullptr;
  return by_ip_.find(remote.value());
}

BucketKey pack_classic_key(const net::PacketRecord& pkt,
                           std::uint32_t saturated_size) {
  BucketKey key;
  key.w0 = (static_cast<std::uint64_t>(pkt.src_ip.value()) << 32) |
           pkt.dst_ip.value();
  key.w1 = (static_cast<std::uint64_t>(pkt.src_port) << 48) |
           (static_cast<std::uint64_t>(pkt.dst_port) << 32) |
           (transport_code(pkt.proto) << kClassicProtoShift) | saturated_size;
  return key;
}

BucketKey pack_portless_key(const net::PacketRecord& pkt,
                            net::Ipv4Addr device, std::uint32_t domain_id) {
  BucketKey key;
  bool outbound = pkt.outbound_from(device);
  key.w0 = (static_cast<std::uint64_t>(outbound) << kPortLessDirShift) |
           (transport_code(pkt.proto) << kPortLessProtoShift) | domain_id;
  key.w1 = pkt.size;
  return key;
}

BucketKey make_bucket_key(const net::PacketRecord& pkt, net::Ipv4Addr device,
                          FlowMode mode, const net::DnsTable* dns,
                          const net::ReverseResolver* reverse,
                          DomainInterner& interner) {
  if (mode == FlowMode::kClassic) {
    return pack_classic_key(pkt, std::min(pkt.size, kClassicSizeMax));
  }
  std::uint32_t domain_id = interner.id_of(pkt.remote_of(device), dns, reverse);
  return pack_portless_key(pkt, device, domain_id);
}

std::string bucket_key_string(const BucketKey& key, FlowMode mode,
                              const DomainInterner& interner) {
  std::string out;
  if (mode == FlowMode::kClassic) {
    out.reserve(48);
    out += net::Ipv4Addr(static_cast<std::uint32_t>(key.w0 >> 32)).str();
    out += '>';
    out += net::Ipv4Addr(static_cast<std::uint32_t>(key.w0)).str();
    out += '|';
    out += std::to_string(static_cast<std::uint16_t>(key.w1 >> 48));
    out += '>';
    out += std::to_string(static_cast<std::uint16_t>(key.w1 >> 32));
    out += '|';
    out += net::transport_name(
        transport_from_code((key.w1 >> kClassicProtoShift) & 0x3));
    out += '|';
    out += std::to_string(static_cast<std::uint32_t>(key.w1 & kClassicSizeMax));
    return out;
  }
  const std::string& name =
      interner.name_of(static_cast<std::uint32_t>(key.w0 & 0xffffffffu));
  out.reserve(name.size() + 24);
  out += ((key.w0 >> kPortLessDirShift) & 1) ? "out|" : "in|";
  out += name;
  out += '|';
  out += net::transport_name(
      transport_from_code((key.w0 >> kPortLessProtoShift) & 0x3));
  out += '|';
  out += std::to_string(static_cast<std::uint32_t>(key.w1));
  return out;
}

}  // namespace fiat::core
