#include "core/auth_message.hpp"

#include <bit>
#include <cstring>

#include "util/error.hpp"

namespace fiat::core {

namespace {

std::uint64_t double_bits(double v) { return std::bit_cast<std::uint64_t>(v); }
double bits_double(std::uint64_t v) { return std::bit_cast<double>(v); }

}  // namespace

util::Bytes encode_auth_message(const AuthMessage& msg) {
  if (msg.app_package.size() > 0xffff) throw LogicError("app package name too long");
  util::ByteWriter w(32 + msg.app_package.size() + msg.features.size() * 8);
  w.u16be(static_cast<std::uint16_t>(msg.app_package.size()));
  w.raw(msg.app_package);
  w.u64be(double_bits(msg.capture_time));
  w.u16be(static_cast<std::uint16_t>(msg.features.size()));
  for (double f : msg.features) w.u64be(double_bits(f));
  return w.take();
}

AuthMessage decode_auth_message(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  AuthMessage msg;
  std::uint16_t name_len = r.u16be();
  msg.app_package = r.str(name_len);
  msg.capture_time = bits_double(r.u64be());
  std::uint16_t n = r.u16be();
  msg.features.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) msg.features.push_back(bits_double(r.u64be()));
  if (!r.done()) throw ParseError("auth message has trailing bytes");
  return msg;
}

util::Bytes seal_auth_message(crypto::KeyStore& keystore, crypto::KeyHandle key,
                              std::uint64_t seq, const AuthMessage& msg) {
  static constexpr char kAad[] = "fiat-auth-v1";
  util::Bytes plain = encode_auth_message(msg);
  return keystore.seal(key, seq,
                       std::span<const std::uint8_t>(
                           reinterpret_cast<const std::uint8_t*>(kAad), sizeof(kAad) - 1),
                       plain);
}

std::optional<AuthMessage> open_auth_message(crypto::KeyStore& keystore,
                                             crypto::KeyHandle key, std::uint64_t seq,
                                             std::span<const std::uint8_t> sealed) {
  static constexpr char kAad[] = "fiat-auth-v1";
  auto plain = keystore.open(key, seq,
                             std::span<const std::uint8_t>(
                                 reinterpret_cast<const std::uint8_t*>(kAad),
                                 sizeof(kAad) - 1),
                             sealed);
  if (!plain) return std::nullopt;
  try {
    return decode_auth_message(*plain);
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

}  // namespace fiat::core
