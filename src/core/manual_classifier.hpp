// Per-device unpredictable-event classifier (§4, §5.4).
//
// Two flavours, exactly as deployed in the paper's evaluation (footnote 2):
//  * simple rule — for SP10, WP3 and Nest-E, whose manual traffic is
//    identified by a fixed-size notification packet (235 B / 267 B);
//  * ML — BernoulliNB (default; best transferability) or any fiat::ml
//    Classifier over the 66 event features, trained on labeled events and
//    scaled to unit variance. The online proxy classifies from the first
//    N = 5 packets of an event.
#pragma once

#include <memory>

#include "core/event_dataset.hpp"
#include "ml/dataset.hpp"
#include "ml/scaler.hpp"

namespace fiat::core {

class ManualEventClassifier {
 public:
  /// Untrained classifier; classify() throws until one of the factories
  /// below replaces it. Allows aggregate types (ProxyDevice) to be built
  /// field by field.
  ManualEventClassifier() = default;

  /// Simple-rule classifier: an event is manual iff its first packet is
  /// inbound with exactly `rule_size` bytes.
  static ManualEventClassifier simple_rule(std::uint32_t rule_size);

  /// Trains an ML classifier on labeled events. `model` defaults to
  /// BernoulliNB when null. Throws fiat::LogicError if no manual events are
  /// present (nothing to learn).
  static ManualEventClassifier train(const std::vector<LabeledEvent>& events,
                                     net::Ipv4Addr device,
                                     std::unique_ptr<ml::Classifier> model = nullptr);

  /// Classifies an event (may be a prefix the proxy captured online).
  gen::TrafficClass classify(const UnpredictableEvent& event,
                             net::Ipv4Addr device) const;
  bool is_manual(const UnpredictableEvent& event, net::Ipv4Addr device) const {
    return classify(event, device) == gen::TrafficClass::kManual;
  }

  bool uses_simple_rule() const { return rule_size_ != 0; }
  /// The simple rule's notification size (0 in ML mode). The proxy's
  /// chaff-prefix escalation keys on this signature.
  std::uint32_t simple_rule_size() const { return rule_size_; }
  /// False for a default-constructed classifier (classify() would throw);
  /// the proxy treats such devices via its degraded-mode FailPolicy.
  bool trained() const { return rule_size_ != 0 || model_ != nullptr; }

  /// Serialization for model distribution (§7 "Road to Production": one
  /// model per device and software version, downloaded automatically).
  /// ML-mode classifiers must wrap BernoulliNB (the deployed model);
  /// save() throws fiat::LogicError for other model types.
  util::Bytes save() const;
  static ManualEventClassifier load(std::span<const std::uint8_t> data);

 private:
  std::uint32_t rule_size_ = 0;  // 0 => ML mode
  ml::StandardScaler scaler_;
  std::shared_ptr<const ml::Classifier> model_;  // shared: classifier is copyable
};

}  // namespace fiat::core
