// SIMD kernels for the batch decision pipeline (DESIGN.md §15).
//
// The batch hot path hashes every packet's BucketKey and saturates every
// classic-key size before probing the rule tables. Both loops are pure bit
// math over independent lanes, so they vectorize trivially: SSE2 on x86-64
// (baseline, no runtime CPUID needed), NEON on aarch64, and a scalar loop
// everywhere else. The kernels are bit-exact replicas of the scalar code —
// util::flat_mix64 and std::min against kClassicSizeMax — so the `--simd`
// flag is a pure performance knob: verdicts, reports, telemetry, and
// serialized state are byte-identical with SIMD on or off.
//
// Dispatch is runtime-per-call (a bool), not per-build: one binary carries
// both legs and the golden tests diff them against each other.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/bucket_key.hpp"

namespace fiat::core::simd {

/// True when this build carries a vector leg (SSE2 or NEON); false means
/// hash_keys/saturate_sizes always take the scalar loop and `--simd on`
/// is rejected at flag validation.
bool available();

/// "sse2", "neon", or "scalar" — surfaced in bench JSON and --help text.
const char* isa_name();

/// hashes[i] = FlatHash<BucketKey>{}(keys[i]) for i in [0, n): the same
/// flat_mix64(w0 ^ flat_mix64(w1)) the tables compute one key at a time.
/// `use_simd` selects the vector leg when available() (callers pass the
/// resolved --simd flag); results are identical either way.
void hash_keys(const BucketKey* keys, std::uint64_t* hashes, std::size_t n,
               bool use_simd);

/// out[i] = min(sizes[i], cap) — the classic-key size saturation
/// (kClassicSizeMax) applied across a whole batch before key packing.
void saturate_sizes(const std::uint32_t* sizes, std::uint32_t* out,
                    std::size_t n, std::uint32_t cap, bool use_simd);

}  // namespace fiat::core::simd
