// Humanness verification (§5.4 "Human Input Validation").
//
// Following zkSENSE, FIAT validates that a human was physically interacting
// with the phone using a 9-level decision tree over 48
// accelerometer/gyroscope features. The verifier runs inside the IoT proxy;
// the phone app only extracts and signs the features.
#pragma once

#include <span>

#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"
#include "sim/rng.hpp"

namespace fiat::ml {
class Dataset;
}

namespace fiat::core {

class HumannessVerifier {
 public:
  /// Trains the depth-9 tree on a labeled dataset (label 1 = human).
  static HumannessVerifier train(const ml::Dataset& data, int max_depth = 9);
  /// Convenience: trains on a synthetic zkSENSE-style dataset generated with
  /// `seed` (`per_class` windows per class).
  static HumannessVerifier train_synthetic(std::uint64_t seed,
                                           std::size_t per_class = 600);

  bool is_human(std::span<const double> features48) const;
  /// Wall-clock of one validation, measured — the paper reports ~2 ms
  /// (Table 7, "ML-based human validation"); ours is microseconds, and the
  /// Table 7 bench uses the measured value rather than assuming.
  double measured_validation_seconds() const { return measured_seconds_; }

  const ml::DecisionTree& tree() const { return tree_; }

 private:
  HumannessVerifier() : tree_(ml::TreeConfig{}) {}
  ml::DecisionTree tree_;
  double measured_seconds_ = 0.0;
};

}  // namespace fiat::core
