#include "core/bucket.hpp"

namespace fiat::core {

const char* flow_mode_name(FlowMode mode) {
  return mode == FlowMode::kClassic ? "Classic" : "PortLess";
}

std::string bucket_key(const net::PacketRecord& pkt, net::Ipv4Addr device,
                       FlowMode mode, const net::DnsTable* dns,
                       const net::ReverseResolver* reverse) {
  if (mode == FlowMode::kClassic) {
    // Exact 6-tuple, direction preserved.
    std::string key;
    key.reserve(48);
    key += pkt.src_ip.str();
    key += '>';
    key += pkt.dst_ip.str();
    key += '|';
    key += std::to_string(pkt.src_port);
    key += '>';
    key += std::to_string(pkt.dst_port);
    key += '|';
    key += net::transport_name(pkt.proto);
    key += '|';
    key += std::to_string(pkt.size);
    return key;
  }

  // PortLess: device + direction + remote domain + proto + size.
  bool outbound = pkt.outbound_from(device);
  net::Ipv4Addr remote = pkt.remote_of(device);
  std::string remote_name;
  if (dns) {
    if (auto domain = dns->domain_of(remote)) remote_name = *domain;
  }
  if (remote_name.empty() && reverse && !remote.is_private()) {
    remote_name = reverse->resolve(remote);
  }
  if (remote_name.empty()) remote_name = remote.str();

  std::string key;
  key.reserve(remote_name.size() + 24);
  key += outbound ? "out|" : "in|";
  key += remote_name;
  key += '|';
  key += net::transport_name(pkt.proto);
  key += '|';
  key += std::to_string(pkt.size);
  return key;
}

}  // namespace fiat::core
