#include "core/event_dataset.hpp"

#include "core/features.hpp"

namespace fiat::core {

namespace {

PredictabilityResult analyze_trace(const gen::LabeledTrace& trace,
                                   PredictabilityConfig& config) {
  if (!config.dns) config.dns = &trace.dns;
  PredictabilityAnalyzer analyzer(trace.device_ip, config);
  for (const auto& lp : trace.packets) analyzer.add(lp.pkt);
  return analyzer.finish();
}

}  // namespace

std::vector<LabeledEvent> extract_labeled_events(const gen::LabeledTrace& trace,
                                                 double gap_threshold,
                                                 PredictabilityConfig config) {
  PredictabilityResult result = analyze_trace(trace, config);

  std::vector<LabeledEvent> out;
  EventGrouper grouper(gap_threshold);
  std::vector<gen::TrafficClass> open_labels;

  auto close = [&](UnpredictableEvent event) {
    // Majority label over the member packets.
    std::size_t counts[3] = {0, 0, 0};
    for (std::size_t i = 0; i < event.packets.size() && i < open_labels.size(); ++i) {
      counts[static_cast<std::size_t>(open_labels[i])]++;
    }
    std::size_t best = 0;
    for (std::size_t c = 1; c < 3; ++c) {
      if (counts[c] > counts[best]) best = c;
    }
    LabeledEvent le;
    le.event = std::move(event);
    le.label = static_cast<gen::TrafficClass>(best);
    out.push_back(std::move(le));
    open_labels.erase(open_labels.begin(),
                      open_labels.begin() +
                          static_cast<long>(std::min(open_labels.size(),
                                                     out.back().event.packets.size())));
  };

  for (std::size_t i = 0; i < trace.packets.size(); ++i) {
    if (result.predictable[i]) continue;
    if (auto closed = grouper.add(trace.packets[i].pkt)) close(std::move(*closed));
    open_labels.push_back(trace.packets[i].label);
  }
  if (auto last = grouper.flush()) close(std::move(*last));
  return out;
}

ml::Dataset event_dataset(const std::vector<LabeledEvent>& events,
                          net::Ipv4Addr device) {
  ml::Dataset data;
  data.feature_names = event_feature_names();
  for (const auto& le : events) {
    data.add(event_features(le.event, device), static_cast<int>(le.label));
  }
  return data;
}

ClassPredictability class_predictability(const gen::LabeledTrace& trace,
                                         PredictabilityConfig config) {
  PredictabilityResult result = analyze_trace(trace, config);
  ClassPredictability out;
  for (std::size_t i = 0; i < trace.packets.size(); ++i) {
    auto c = static_cast<std::size_t>(trace.packets[i].label);
    out.total[c]++;
    if (result.predictable[i]) out.predictable[c]++;
  }
  return out;
}

}  // namespace fiat::core
