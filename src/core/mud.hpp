// MUD profile export — §8: "the IETF is proposing the Manufacturer Usage
// Description (MUD), which formally specifies the purpose of IoT devices"
// (RFC 8520), and Hamza et al. generate MUD profiles from traffic.
//
// FIAT's learned rule state is exactly the raw material for a MUD profile:
// the endpoints/protocols/ports a device legitimately talks to. This module
// distills a device's observed traffic into MUD-style ACL entries and
// renders an RFC 8520-shaped JSON document, so a FIAT deployment can hand
// its knowledge to MUD-aware network gear.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "net/dns.hpp"
#include "net/packet.hpp"

namespace fiat::core {

struct MudAclEntry {
  std::string remote;           // domain when known, dotted quad otherwise
  net::Transport proto = net::Transport::kTcp;
  std::uint16_t remote_port = 0;
  bool outbound = true;         // from-device (true) / to-device (false)
  std::size_t packets = 0;      // evidence count behind this entry
};

struct MudProfile {
  std::string device_name;
  std::string mud_url;
  std::vector<MudAclEntry> entries;  // sorted, deduplicated

  /// RFC 8520-shaped JSON ("ietf-mud:mud" container with from/to
  /// device-policy ACLs). Deterministic output.
  std::string to_json() const;
};

/// Distills a traffic sample into a profile. Entries seen fewer than
/// `min_packets` times are treated as noise and omitted (the Hamza et al.
/// generation approach). `dns` maps remotes to domains; LAN peers keep
/// their addresses.
MudProfile derive_mud_profile(std::span<const net::PacketRecord> packets,
                              net::Ipv4Addr device, const std::string& device_name,
                              const net::DnsTable* dns = nullptr,
                              std::size_t min_packets = 3);

}  // namespace fiat::core
