// Versioned, checksummed serialization of FiatProxy durable state
// (DESIGN.md §11).
//
// FIAT's proxy earns its rule table during a ~20-minute bootstrap; a crash
// that loses it forces the fleet to choose between re-running bootstrap
// fail-open (insecure) or fail-closed (20 minutes of lockouts). The state
// codec makes that loss bounded: everything a proxy learned — rules (packed
// or legacy key form), the DNS view and domain interner, per-device
// event/lockout state, proof freshness, counters, the decision/outcome logs,
// and bootstrap progress — round-trips through a self-validating envelope:
//
//   magic "FSNP" : u32be
//   version      : u16be   (kStateVersion)
//   kind         : u8      (StateKind)
//   flags        : u8      (reserved, 0)
//   home         : u32be   (owner home id; kAnyHome = unowned)
//   payload_len  : u64be
//   payload      : payload_len bytes
//   checksum     : first 8 bytes of SHA-256 over everything above
//
// Hostile-bytes-from-disk threat model: open_state() never throws on bad
// input — every malformed, corrupted, version-skewed, or misdirected blob
// maps to a CodecStatus the caller turns into a cold start. Serialization is
// canonical (sorted container order everywhere), so encode→decode→encode is
// byte-identical — the property the snapshot round-trip tests pin.
#pragma once

#include <cstdint>
#include <span>

#include "net/packet.hpp"
#include "util/bytes.hpp"

namespace fiat::crypto {
class ReplayCache;
}

namespace fiat::core {

class FiatProxy;

inline constexpr std::uint32_t kStateMagic = 0x46534e50;  // "FSNP"
// v2: proxy durable state gained the attack ledger, guard-escalation
// counters, and per-device mimicry bookkeeping (event_costume/escalated).
// v3: fleet-correlation signals — per-device pending costume signatures,
// the home's escalation-signature sketch, and per-client proof rejections.
// v4: credential lifecycle — the per-client credential registry
// (generations, pending enrollments, revocations), lifecycle-rejection
// counters, and the widened AttackLedger (kRevokedCredential class).
inline constexpr std::uint16_t kStateVersion = 4;
/// Envelope bytes before the payload (magic..payload_len).
inline constexpr std::size_t kStateHeaderSize = 20;
inline constexpr std::size_t kStateChecksumSize = 8;
inline constexpr std::size_t kStateOverhead = kStateHeaderSize + kStateChecksumSize;
/// `home` value for state not owned by a fleet home (e.g. a ReplayCache
/// serialized outside the fleet runtime).
inline constexpr std::uint32_t kAnyHome = 0xffffffffu;

enum class StateKind : std::uint8_t {
  kProxy = 1,        // FiatProxy durable state
  kReplayCache = 2,  // crypto::ReplayCache window
  kStoreFile = 3,    // reserved for on-disk snapshot-store containers
};

enum class CodecStatus : std::uint8_t {
  kOk,
  kBadMagic,     // not a state blob at all
  kVersionSkew,  // valid blob from an incompatible codec version
  kTruncated,    // shorter than its header claims (torn write)
  kCorrupt,      // checksum mismatch (bit rot, partial overwrite)
  kWrongHome,    // valid blob, but for a different home
  kBadPayload,   // envelope fine, payload failed structural validation
};

const char* codec_status_name(CodecStatus s);

/// Wraps `payload` in the checksummed envelope.
util::Bytes seal_state(StateKind kind, std::uint32_t home,
                       const util::Bytes& payload);

struct OpenResult {
  CodecStatus status = CodecStatus::kBadMagic;
  /// Valid only when status == kOk; views into the input blob.
  std::span<const std::uint8_t> payload;
};

/// Validates the envelope. Checks run in severity order — truncation, magic,
/// length, checksum, version, kind, home — so the corruption matrix gets a
/// precise diagnosis (a version-skewed blob with a *valid* checksum reports
/// kVersionSkew, not kCorrupt). `expect_home == kAnyHome` accepts any owner.
OpenResult open_state(std::span<const std::uint8_t> blob, StateKind expect_kind,
                      std::uint32_t expect_home);

// ---- typed wrappers ---------------------------------------------------------

/// Snapshot of a proxy's durable state, sealed for `home`.
util::Bytes encode_proxy_state(const FiatProxy& proxy, std::uint32_t home);

/// Restores `proxy` (built from the same HomeSpec) from a sealed snapshot.
/// On any non-kOk return the snapshot was REJECTED; the proxy may be
/// partially mutated and must be discarded and rebuilt from its spec (the
/// cold-start fallback). Never throws on malformed input.
CodecStatus decode_proxy_state(FiatProxy& proxy,
                               std::span<const std::uint8_t> blob,
                               std::uint32_t home);

util::Bytes encode_replay_cache(const crypto::ReplayCache& cache);
CodecStatus decode_replay_cache(crypto::ReplayCache& cache,
                                std::span<const std::uint8_t> blob);

// ---- shared low-level helpers ----------------------------------------------

/// Fixed 25-byte packet record codec shared by every durable structure that
/// embeds packets (open event buffers).
void write_packet_record(util::ByteWriter& w, const net::PacketRecord& pkt);
net::PacketRecord read_packet_record(util::ByteReader& r);

}  // namespace fiat::core
