#include "core/features.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace fiat::core {

namespace {

void packet_block(const net::PacketRecord& pkt, net::Ipv4Addr device, double iat,
                  std::vector<double>& out) {
  bool outbound = pkt.outbound_from(device);
  net::Ipv4Addr remote = pkt.remote_of(device);
  out.push_back(outbound ? 1.0 : 0.0);
  for (int o = 0; o < 4; ++o) out.push_back(static_cast<double>(remote.octet(o)));
  out.push_back(pkt.proto == net::Transport::kTcp ? 1.0
                : pkt.proto == net::Transport::kUdp ? 2.0 : 0.0);
  out.push_back(static_cast<double>(pkt.tcp_flags));
  out.push_back(static_cast<double>(pkt.src_port));
  out.push_back(static_cast<double>(pkt.dst_port));
  out.push_back(static_cast<double>(pkt.tls_version));
  out.push_back(static_cast<double>(pkt.size));
  out.push_back(iat);
}

}  // namespace

std::vector<double> event_features_prefix(const UnpredictableEvent& event,
                                          net::Ipv4Addr device, std::size_t prefix) {
  if (event.packets.empty()) throw LogicError("event_features: empty event");
  std::size_t n = std::min(prefix, event.packets.size());

  std::vector<double> out;
  out.reserve(kEventFeatureCount);
  for (std::size_t i = 0; i < kEventFeaturePackets; ++i) {
    if (i < n) {
      double iat = (i == 0) ? 0.0 : event.packets[i].ts - event.packets[i - 1].ts;
      packet_block(event.packets[i], device, iat, out);
    } else {
      for (int j = 0; j < 12; ++j) out.push_back(0.0);
    }
  }

  // Aggregate statistics over the visible packets.
  double mean_len = 0.0, mean_iat = 0.0, total_bytes = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mean_len += event.packets[i].size;
    total_bytes += event.packets[i].size;
    if (i > 0) mean_iat += event.packets[i].ts - event.packets[i - 1].ts;
  }
  mean_len /= static_cast<double>(n);
  if (n > 1) mean_iat /= static_cast<double>(n - 1);
  double var_len = 0.0, var_iat = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double dl = event.packets[i].size - mean_len;
    var_len += dl * dl;
    if (i > 0) {
      double di = (event.packets[i].ts - event.packets[i - 1].ts) - mean_iat;
      var_iat += di * di;
    }
  }
  var_len /= static_cast<double>(n);
  if (n > 1) var_iat /= static_cast<double>(n - 1);

  out.push_back(mean_len);
  out.push_back(std::sqrt(var_len));
  out.push_back(mean_iat);
  out.push_back(std::sqrt(var_iat));
  out.push_back(static_cast<double>(n));
  out.push_back(total_bytes);

  if (out.size() != kEventFeatureCount) throw LogicError("event feature count drift");
  return out;
}

std::vector<double> event_features(const UnpredictableEvent& event,
                                   net::Ipv4Addr device) {
  // Per-packet block limited to 5; aggregates over the whole event.
  auto out = event_features_prefix(event, device, kEventFeaturePackets);
  std::size_t n = event.packets.size();
  if (n > kEventFeaturePackets) {
    // Recompute the aggregate tail over the full event.
    double mean_len = 0.0, mean_iat = 0.0, total_bytes = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      mean_len += event.packets[i].size;
      total_bytes += event.packets[i].size;
      if (i > 0) mean_iat += event.packets[i].ts - event.packets[i - 1].ts;
    }
    mean_len /= static_cast<double>(n);
    mean_iat /= static_cast<double>(n - 1);
    double var_len = 0.0, var_iat = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double dl = event.packets[i].size - mean_len;
      var_len += dl * dl;
      if (i > 0) {
        double di = (event.packets[i].ts - event.packets[i - 1].ts) - mean_iat;
        var_iat += di * di;
      }
    }
    var_len /= static_cast<double>(n);
    var_iat /= static_cast<double>(n - 1);
    std::size_t tail = kEventFeatureCount - 6;
    out[tail] = mean_len;
    out[tail + 1] = std::sqrt(var_len);
    out[tail + 2] = mean_iat;
    out[tail + 3] = std::sqrt(var_iat);
    out[tail + 4] = static_cast<double>(n);
    out[tail + 5] = total_bytes;
  }
  return out;
}

std::vector<std::string> event_feature_names() {
  std::vector<std::string> names;
  names.reserve(kEventFeatureCount);
  for (std::size_t i = 1; i <= kEventFeaturePackets; ++i) {
    std::string p = "pkt" + std::to_string(i) + "-";
    names.push_back(p + "direction");
    names.push_back(p + "dst-ip1");
    names.push_back(p + "dst-ip2");
    names.push_back(p + "dst-ip3");
    names.push_back(p + "dst-ip4");
    names.push_back(p + "proto");
    names.push_back(p + "tcp-flags");
    names.push_back(p + "src-port");
    names.push_back(p + "dst-port");
    names.push_back(p + "tls");
    names.push_back(p + "len");
    names.push_back(p + "iat");
  }
  names.push_back("ev-mean-len");
  names.push_back("ev-std-len");
  names.push_back("ev-mean-iat");
  names.push_back("ev-std-iat");
  names.push_back("ev-pkt-count");
  names.push_back("ev-total-bytes");
  return names;
}

}  // namespace fiat::core
