#include "core/client_app.hpp"

#include <memory>

#include "util/error.hpp"

namespace fiat::core {

FiatClientApp::FiatClientApp(transport::Network& network,
                             transport::EndpointId endpoint,
                             transport::EndpointId proxy_endpoint,
                             std::string client_id,
                             std::span<const std::uint8_t> psk, sim::Rng& rng,
                             ClientTimingModel timing)
    : network_(network),
      rng_(rng),
      timing_(timing),
      pairing_key_(keystore_.import_key(psk, "fiat-pairing")),
      quic_(network, std::move(endpoint), std::move(proxy_endpoint),
            std::move(client_id), psk, rng) {}

void FiatClientApp::warm_up(std::function<void(double)> done) {
  quic_.connect([done = std::move(done)](double connect_time) {
    if (done) done(connect_time);
  });
}

void FiatClientApp::report_interaction(
    const std::string& app_package, const gen::SensorTrace& sensors,
    std::function<void(const ClientLatencyBreakdown&)> done,
    std::function<void()> failed) {
  auto breakdown = std::make_shared<ClientLatencyBreakdown>();
  breakdown->app_detection = rng_.uniform(timing_.app_detect_min, timing_.app_detect_max);
  breakdown->sensor_sampling =
      std::max(0.2, rng_.normal(timing_.sensor_sampling_mean, timing_.sensor_sampling_sd));
  breakdown->keystore_access =
      std::max(0.03, rng_.normal(timing_.keystore_mean, timing_.keystore_sd));

  AuthMessage msg;
  msg.app_package = app_package;
  msg.capture_time = network_.scheduler().now();
  msg.features = gen::sensor_features(sensors);

  std::uint64_t seq = next_seq_++;
  util::Bytes sealed = seal_auth_message(keystore_, pairing_key_, seq, msg);
  util::ByteWriter payload(8 + sealed.size());
  payload.u64be(seq);
  payload.raw(std::span<const std::uint8_t>(sealed.data(), sealed.size()));

  bool zero_rtt = quic_.has_ticket();
  breakdown->zero_rtt = zero_rtt;
  double pre_send = breakdown->app_detection + breakdown->keystore_access;
  double overhead =
      zero_rtt ? timing_.stack_overhead_0rtt : timing_.stack_overhead_1rtt;

  // Model the on-phone latency before the datagram leaves, then send.
  network_.scheduler().after(pre_send, [this, payload = payload.take(), zero_rtt,
                                        overhead, breakdown,
                                        done = std::move(done),
                                        failed = std::move(failed)]() mutable {
    auto on_ack = [breakdown, overhead, done](double ack_time) {
      breakdown->quic_round_trip = ack_time + overhead;
      if (done) done(*breakdown);
    };
    if (zero_rtt) {
      quic_.send_zero_rtt(std::move(payload), on_ack, std::move(failed));
    } else if (quic_.connected()) {
      quic_.send(std::move(payload), on_ack, std::move(failed));
    } else {
      // Cold start: handshake first (sensor sampling overlaps it), then
      // send; the reported exchange time covers handshake + data + ack.
      double hs_start = network_.scheduler().now();
      auto failed_shared = std::make_shared<std::function<void()>>(std::move(failed));
      quic_.connect(
          [this, payload = std::move(payload), on_ack, failed_shared,
           hs_start](double) mutable {
            quic_.send(
                std::move(payload),
                [this, on_ack, hs_start](double) {
                  on_ack(network_.scheduler().now() - hs_start);
                },
                *failed_shared);
          },
          [failed_shared]() {
            if (*failed_shared) (*failed_shared)();
          });
    }
  });
}

}  // namespace fiat::core
