// Passive device identification — the §7 production dependency ("Device
// identification is not the focus of this study but solutions from the
// related work could be applied to FIAT"), in the style of Meidan et al. /
// IoT Sentinel (§8): classify which device model produced a window of
// traffic from flow-level statistics, so the proxy can fetch the right
// classifier from the ModelRegistry when a new device joins the LAN.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "gen/labels.hpp"
#include "ml/random_forest.hpp"
#include "ml/scaler.hpp"
#include "net/packet.hpp"

namespace fiat::core {

constexpr std::size_t kDeviceIdFeatureCount = 14;

/// Window-level fingerprint features: traffic rate, size statistics,
/// protocol/TLS/direction mix, endpoint and port diversity, and the
/// dominant heartbeat period.
std::vector<double> device_id_features(std::span<const net::PacketRecord> window,
                                       net::Ipv4Addr device);
std::vector<std::string> device_id_feature_names();

class DeviceIdentifier {
 public:
  /// Trains on labeled traces, slicing each into `window_seconds` windows.
  static DeviceIdentifier train(const std::vector<gen::LabeledTrace>& traces,
                                double window_seconds = 600.0,
                                std::uint64_t seed = 99);

  /// Identifies the device behind a traffic window; nullopt when the window
  /// is empty. `confidence` (optional out) is the winning vote fraction.
  std::optional<std::string> identify(std::span<const net::PacketRecord> window,
                                      net::Ipv4Addr device,
                                      double* confidence = nullptr) const;

  const std::vector<std::string>& labels() const { return labels_; }

 private:
  DeviceIdentifier() = default;
  std::vector<std::string> labels_;
  ml::StandardScaler scaler_;
  ml::RandomForest forest_;
};

}  // namespace fiat::core
