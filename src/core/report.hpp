// User-facing security reporting — §7 "Technology Acceptance": FIAT's proxy
// "keeps logs of all the unpredictable events ... Reporting such logs to the
// users can effectively relieve the concerns and allow the users to notice
// the silent false negatives. While this function is not explored in this
// paper, they are certainly achievable by FIAT."
//
// SecurityReport digests a proxy's decision/event/proof logs into per-device
// statistics and a chronological incident list, and renders a plain-text
// summary a companion app could display. Because the logs live inside the
// proxy's TEE boundary (the keystore audit trail covers every signature
// check), an attacker who can spoof 2FA SMS still cannot scrub these records.
#pragma once

#include <string>
#include <vector>

#include "core/proxy.hpp"

namespace fiat::core {

struct DeviceReport {
  std::string device;
  std::size_t packets_allowed = 0;
  std::size_t packets_dropped = 0;
  std::size_t events_total = 0;
  std::size_t events_manual_validated = 0;
  std::size_t events_manual_blocked = 0;
  std::size_t events_non_manual = 0;
};

struct Incident {
  double ts = 0.0;
  std::string device;
  std::string description;
};

struct SecurityReport {
  std::vector<DeviceReport> devices;
  std::vector<Incident> incidents;  // chronological
  std::size_t proofs_accepted = 0;
  std::size_t proofs_rejected_signature = 0;
  std::size_t proofs_rejected_nonhuman = 0;
  // Degraded-mode health: is the network eating proofs, and what did the
  // proxy decide while it could not validate properly?
  std::size_t proofs_late = 0;
  std::size_t proofs_duplicate = 0;
  std::size_t events_decided_degraded = 0;
  std::size_t degraded_allows = 0;
  std::size_t violations_forgiven = 0;
  std::size_t devices_locked = 0;
  // Ground-truth attack accounting (campaign replays only; all zero — and
  // absent from render() — for purely benign traffic).
  AttackLedger attack;
  std::size_t mimicry_escalations = 0;
  std::size_t notification_escalations = 0;
  // Distinct costume signatures committed to the home's escalation sketch —
  // this home's contribution to fleet-level correlation (telemetry/signals).
  std::size_t escalation_signatures = 0;

  /// Plain-text rendering (what the companion app would show).
  std::string render() const;
};

/// Builds the report from the proxy's current logs. Call
/// proxy.flush_events() first if the trace has ended.
SecurityReport build_security_report(const FiatProxy& proxy);

}  // namespace fiat::core
