// Access-control rule table (§5.4 "Rules Creation" / "Access Control").
//
// During the ~20-minute bootstrap window (2x the Figure 1(c) maximum
// predictable interval) the proxy allows everything and learns, per device,
// which flow buckets recur at which inter-arrival bins. After bootstrap, a
// packet "hits" when its bucket has a learned rule and its inter-arrival
// from the previous packet of the bucket falls in a learned bin — i.e. the
// online form of the §2.1 heuristic. Rules use the PortLess definition by
// default, "given its superior performance".
//
// Hot path: the table is keyed by packed core::BucketKey (bucket_key.hpp)
// stored in open-addressing util::FlatMap / FlatSet — one key computation
// and zero heap allocations per steady-state packet. The seed's
// string-keyed implementation survives behind RuleTableConfig::legacy_keys
// as the measured baseline (bench_hotpath --legacy-keys) and the reference
// the golden-equivalence suite compares against.
//
// The table also holds the §7 "Complex Scenarios" extension: DAG edges that
// whitelist unidirectional device-to-device traffic (e.g. Alexa -> smart
// light), so hub-initiated commands are not mistaken for attacks.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/bucket.hpp"
#include "core/bucket_key.hpp"
#include "util/flat_map.hpp"

namespace fiat::core {

struct RuleTableConfig {
  FlowMode mode = FlowMode::kPortLess;
  double bin = 0.5;
  double max_match_interval = 1200.0;
  /// Floor for *online* rule promotion (match_and_learn). Without it, an
  /// attacker could blast identical packets at a constant sub-second pace
  /// and have the proxy promote their rhythm into an allow rule after three
  /// packets. Legitimate keep-alives beat at seconds-to-minutes scale, so a
  /// 2 s floor costs nothing; bootstrap learning is exempt (the window is
  /// assumed attack-free, as in the paper).
  double min_online_learn_interval = 2.0;
  const net::DnsTable* dns = nullptr;
  const net::ReverseResolver* reverse = nullptr;
  /// Seed-fidelity baseline: string bucket keys in node-based containers,
  /// including the seed's duplicate key computation in match_and_learn.
  /// Behavior is identical (golden-equivalence tested); only cost differs.
  bool legacy_keys = false;
};

class RuleTable {
 public:
  explicit RuleTable(net::Ipv4Addr device, RuleTableConfig config = {});

  /// Per-bucket timing/rule state. Public only so the batch pipeline can
  /// hold probe_batch() result pointers; treat as opaque outside this class.
  struct BucketState {
    double last_ts = -1.0;
    util::FlatSet<std::int64_t> seen_bins;     // observed once
    util::FlatSet<std::int64_t> matched_bins;  // observed twice => rule
  };

  /// Learning-phase ingestion: observes the packet, updating bucket state
  /// and promoting inter-arrival bins seen twice into rules.
  void learn(const net::PacketRecord& pkt);

  /// Post-bootstrap matching: returns true (rule hit => predictable =>
  /// allow) and updates the bucket's timing state. A miss also updates
  /// state, so later packets of the same flow can still hit.
  bool match(const net::PacketRecord& pkt);

  /// Matching with continued learning: like match(), but a miss also feeds
  /// the learner, so flows whose period exceeds the bootstrap window (up to
  /// 10 minutes, Fig 1c) eventually earn rules instead of producing
  /// unpredictable events forever.
  bool match_and_learn(const net::PacketRecord& pkt);

  /// Permanently excludes the packet's bucket from *online* promotion.
  /// The proxy calls this for every packet of an event classified manual:
  /// otherwise an attacker issuing real commands at a constant pace teaches
  /// the learner their own rhythm and gets whitelisted after three attempts.
  /// Bootstrap-learned rules for the bucket keep matching.
  void forbid_online(const net::PacketRecord& pkt);
  std::size_t forbidden_count() const;

  /// Number of (bucket, bin) rules learned.
  std::size_t rule_count() const;
  std::size_t bucket_count() const;
  net::Ipv4Addr device() const { return device_; }

  /// Counting hook: bucket-key computations performed (packed or legacy).
  /// The hot-path regression test pins this to one per packet on the packed
  /// path; the seed's match_and_learn computed two.
  std::size_t keygen_count() const { return keygen_count_; }

  /// True iff the most recent match()/match_and_learn() MISSED on a bucket
  /// that already holds promoted rules — the packet's 6-tuple is one of the
  /// device's predictable signatures, but it arrived off-rhythm. This is the
  /// WiFinger mimicry tell the proxy's mimicry guard keys on: replayed
  /// predictable buckets at the wrong inter-arrival bins.
  bool last_miss_known_bucket() const { return last_miss_known_bucket_; }

  /// State-codec hooks (state_codec.hpp). Learned buckets, banned sets, and
  /// the interner are serialized in a canonical sorted order (FlatMap/FlatSet
  /// iterate in insertion order, which is not). decode_state throws
  /// fiat::ParseError if the stream's legacy flag disagrees with this table's
  /// config — packed and legacy state are not interchangeable.
  void encode_state(util::ByteWriter& w) const;
  void decode_state(util::ByteReader& r);

  // ---- batch pipeline (DESIGN.md §15) --------------------------------------
  //
  // FiatProxy::process_batch peeks keys in a pure phase, hashes them in bulk
  // (core/simd.hpp), probes the bucket table with software prefetch, then
  // resolves each packet in arrival order through the *_prepared ops. The
  // prepared ops mirror the scalar ops' counter increments exactly
  // (keygen_count_, interner lookups), so serialized table state is
  // byte-identical whichever path processed a packet.

  const RuleTableConfig& config() const { return config_; }

  /// Pure packed-key computation — no counters, no interner mutation.
  /// `saturated_size` must be min(pkt.size, kClassicSizeMax) (batched via
  /// simd::saturate_sizes). Classic keys always pack; PortLess only on a
  /// current-generation interner memo hit; legacy tables never. False means
  /// the caller must use the scalar ops, whose make_key() resolves (and
  /// counts) for real.
  bool peek_key(const net::PacketRecord& pkt, std::uint32_t saturated_size,
                BucketKey& out) const;

  /// Bulk probe of the packed bucket table: out[i] = current BucketState
  /// for keys[i], nullptr when the bucket does not exist yet. Returns the
  /// table's mutation counter at probe time; any later learn/match that
  /// creates a bucket invalidates every pointer (the prepared ops
  /// re-resolve via the cached hash when they see a newer counter).
  std::uint64_t probe_batch(const BucketKey* keys, const std::uint64_t* hashes,
                            BucketState** out, std::size_t n);

  /// Prefetches the lines a prepared op for `hash` touches first.
  void prefetch(std::uint64_t hash) const {
    buckets_.prefetch(hash);
    banned_.prefetch(hash);
  }

  // Scalar ops with the key work hoisted out: (key, hash) from peek_key +
  // simd::hash_keys, (cached, snapshot) from probe_batch (cached may be
  // nullptr — absent at probe time — or stale; both re-resolve).
  void learn_prepared(const net::PacketRecord& pkt, const BucketKey& key,
                      std::uint64_t hash, BucketState* cached,
                      std::uint64_t snapshot);
  bool match_prepared(const net::PacketRecord& pkt, const BucketKey& key,
                      std::uint64_t hash, BucketState* cached,
                      std::uint64_t snapshot);
  bool match_and_learn_prepared(const net::PacketRecord& pkt,
                                const BucketKey& key, std::uint64_t hash,
                                BucketState* cached, std::uint64_t snapshot);

 private:
  /// Seed containers, kept for the legacy_keys baseline: one node
  /// allocation per insert, string hashing per lookup.
  struct LegacyBucketState {
    double last_ts = -1.0;
    std::set<std::int64_t> seen_bins;
    std::set<std::int64_t> matched_bins;
  };

  /// Quantizes the inter-arrival against the bucket's previous packet;
  /// -1 = no usable delta. Updates the bucket's timing state.
  template <class Bucket>
  std::int64_t observe_bucket(Bucket& bucket, const net::PacketRecord& pkt);
  template <class Bucket>
  static void learn_bins(Bucket& bucket, std::int64_t bin);
  template <class Bucket>
  bool match_and_learn_bins(Bucket& bucket, std::int64_t bin, bool banned);

  BucketKey make_key(const net::PacketRecord& pkt);
  std::string make_legacy_key(const net::PacketRecord& pkt);

  /// Counter mirror of the make_key() a prepared op replaces.
  void count_prepared_key();
  /// The bucket a prepared op should mutate: the probe_batch pointer when
  /// still valid, else insert-or-find via the cached hash (the scalar
  /// `buckets_[key]` idiom).
  BucketState* resolve_bucket(const BucketKey& key, std::uint64_t hash,
                              BucketState* cached, std::uint64_t snapshot);

  net::Ipv4Addr device_;
  RuleTableConfig config_;
  DomainInterner interner_;  // per-device, owns this table's domain ids
  std::size_t keygen_count_ = 0;
  bool last_miss_known_bucket_ = false;  // see last_miss_known_bucket()

  util::FlatMap<BucketKey, BucketState> buckets_;
  util::FlatSet<BucketKey> banned_;  // excluded from online promotion

  // legacy_keys baseline state (empty unless the flag is set).
  std::unordered_map<std::string, LegacyBucketState> legacy_buckets_;
  std::set<std::string> legacy_banned_;
};

/// DAG of device-to-device allow edges (§7). Edges are directional.
class DeviceDag {
 public:
  /// Adds edge src -> dst. Throws fiat::LogicError if it would close a cycle
  /// (the paper envisions a DAG; cycles would let two compromised devices
  /// authorize each other forever).
  void add_edge(net::Ipv4Addr src, net::Ipv4Addr dst);
  bool allows(net::Ipv4Addr src, net::Ipv4Addr dst) const;
  std::size_t edge_count() const;

 private:
  bool reachable(net::Ipv4Addr from, net::Ipv4Addr to) const;
  std::unordered_map<std::uint32_t, std::set<std::uint32_t>> edges_;
};

}  // namespace fiat::core
