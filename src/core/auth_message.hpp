// The FIAT authentication message the phone app ships to the proxy (§5.3).
//
// Contents: which IoT companion app is in the foreground, a capture
// timestamp, and the 48 motion features extracted from the sensor window.
// The message is serialized, then signed/sealed with the pairing key held in
// the phone's TEE (KeyStore); the proxy verifies and feeds the features to
// its humanness verifier.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crypto/keystore.hpp"
#include "util/bytes.hpp"

namespace fiat::core {

struct AuthMessage {
  std::string app_package;   // e.g. "com.wyze.app"
  double capture_time = 0.0; // phone-side time of the sensor window
  std::vector<double> features;  // 48 motion features

  bool operator==(const AuthMessage&) const = default;
};

util::Bytes encode_auth_message(const AuthMessage& msg);
/// Throws fiat::ParseError on malformed input.
AuthMessage decode_auth_message(std::span<const std::uint8_t> data);

/// Seals an auth message with the pairing key (AEAD through the keystore,
/// sequence-numbered for nonce uniqueness).
util::Bytes seal_auth_message(crypto::KeyStore& keystore, crypto::KeyHandle key,
                              std::uint64_t seq, const AuthMessage& msg);
/// Opens and parses; nullopt when authentication fails.
std::optional<AuthMessage> open_auth_message(crypto::KeyStore& keystore,
                                             crypto::KeyHandle key, std::uint64_t seq,
                                             std::span<const std::uint8_t> sealed);

}  // namespace fiat::core
