// Bridges a labeled trace to the ML pipeline: runs the predictability
// heuristic, groups the unpredictable packets into events (§3.2), attaches
// ground-truth labels (majority label of the member packets, which is how
// the routine timestamps / user logs labelled events in the paper), and
// emits a 66-feature ml::Dataset.
#pragma once

#include "core/events.hpp"
#include "core/predictability.hpp"
#include "gen/labels.hpp"
#include "ml/dataset.hpp"

namespace fiat::core {

struct LabeledEvent {
  UnpredictableEvent event;
  gen::TrafficClass label = gen::TrafficClass::kControl;
};

/// Runs the heuristic over the trace (PortLess by default, using the
/// trace's own DNS table) and returns the labeled unpredictable events.
std::vector<LabeledEvent> extract_labeled_events(const gen::LabeledTrace& trace,
                                                 double gap_threshold = 5.0,
                                                 PredictabilityConfig config = {});

/// Featurizes labeled events into a dataset with y = int(TrafficClass)
/// (0 control / 1 automated / 2 manual).
ml::Dataset event_dataset(const std::vector<LabeledEvent>& events,
                          net::Ipv4Addr device);

/// Per-class predictability ratios of a labeled trace (Figure 2's bars):
/// indexed by TrafficClass, {predictable packets, total packets}.
struct ClassPredictability {
  std::size_t predictable[3] = {0, 0, 0};
  std::size_t total[3] = {0, 0, 0};
  double ratio(gen::TrafficClass c) const {
    auto i = static_cast<std::size_t>(c);
    return total[i] == 0 ? 0.0
                         : static_cast<double>(predictable[i]) /
                               static_cast<double>(total[i]);
  }
};
ClassPredictability class_predictability(const gen::LabeledTrace& trace,
                                         PredictabilityConfig config = {});

}  // namespace fiat::core
