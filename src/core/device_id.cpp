#include "core/device_id.hpp"

#include <algorithm>
#include <cmath>

#include "core/bucket_key.hpp"
#include "util/error.hpp"
#include "util/flat_map.hpp"

namespace fiat::core {

std::vector<double> device_id_features(std::span<const net::PacketRecord> window,
                                       net::Ipv4Addr device) {
  if (window.empty()) throw LogicError("device_id_features: empty window");
  double duration =
      std::max(1.0, window.back().ts - window.front().ts);

  double total_bytes = 0, udp = 0, tls = 0, inbound = 0;
  double mean_size = 0;
  util::FlatSet<std::uint32_t> remotes;
  util::FlatSet<std::uint16_t> remote_ports;
  // Packed (size, proto) flow bucket — the legacy code built a
  // "size|proto" string per packet here.
  util::FlatMap<std::uint64_t, std::vector<double>> bucket_times;  // -> ts
  for (const auto& pkt : window) {
    total_bytes += pkt.size;
    mean_size += pkt.size;
    if (pkt.proto == net::Transport::kUdp) udp += 1;
    if (pkt.tls_version != 0) tls += 1;
    if (!pkt.outbound_from(device)) inbound += 1;
    remotes.insert(pkt.remote_of(device).value());
    remote_ports.insert(pkt.remote_port_of(device));
    std::uint64_t bucket =
        (static_cast<std::uint64_t>(pkt.size) << 8) | transport_code(pkt.proto);
    bucket_times[bucket].push_back(pkt.ts);
  }
  auto n = static_cast<double>(window.size());
  mean_size /= n;
  double var_size = 0;
  for (const auto& pkt : window) {
    var_size += (pkt.size - mean_size) * (pkt.size - mean_size);
  }
  var_size /= n;

  // Dominant heartbeat: the median inter-arrival of the busiest bucket.
  // The legacy std::map walked buckets in "size|proto" string order and a
  // strict `>` kept the first max-count bucket, so ties resolved to the
  // lexicographically smallest string. FlatMap iteration is unordered;
  // replicate the tie-break by materializing the legacy string only for
  // the (rare) max-count candidates.
  double heartbeat = 0.0;
  std::size_t busiest = 0;
  for (const auto& [key, times] : bucket_times) {
    if (times.size() >= 3) busiest = std::max(busiest, times.size());
  }
  if (busiest > 0) {
    const std::vector<double>* winner_times = nullptr;
    std::string winner_name;
    for (const auto& [key, times] : bucket_times) {
      if (times.size() != busiest) continue;
      std::string name = std::to_string(static_cast<std::uint32_t>(key >> 8)) +
                         "|" + net::transport_name(transport_from_code(key & 0xff));
      if (!winner_times || name < winner_name) {
        winner_times = &times;
        winner_name = std::move(name);
      }
    }
    std::vector<double> deltas;
    for (std::size_t i = 1; i < winner_times->size(); ++i) {
      deltas.push_back((*winner_times)[i] - (*winner_times)[i - 1]);
    }
    std::nth_element(deltas.begin(), deltas.begin() + static_cast<long>(deltas.size() / 2),
                     deltas.end());
    heartbeat = deltas[deltas.size() / 2];
  }

  std::vector<double> out;
  out.reserve(kDeviceIdFeatureCount);
  out.push_back(n / duration * 60.0);            // packets per minute
  out.push_back(total_bytes / duration);         // bytes per second
  out.push_back(mean_size);
  out.push_back(std::sqrt(var_size));
  out.push_back(udp / n);
  out.push_back(tls / n);
  out.push_back(inbound / n);
  out.push_back(static_cast<double>(remotes.size()));
  out.push_back(static_cast<double>(remote_ports.size()));
  out.push_back(heartbeat);
  out.push_back(static_cast<double>(busiest) / n);  // busiest-flow share
  out.push_back(static_cast<double>(bucket_times.size()));  // distinct buckets
  // Size quantiles (min/max) round out the fingerprint.
  auto [min_it, max_it] = std::minmax_element(
      window.begin(), window.end(),
      [](const auto& a, const auto& b) { return a.size < b.size; });
  out.push_back(static_cast<double>(min_it->size));
  out.push_back(static_cast<double>(max_it->size));
  if (out.size() != kDeviceIdFeatureCount) throw LogicError("device-id feature drift");
  return out;
}

std::vector<std::string> device_id_feature_names() {
  return {"pkts-per-min", "bytes-per-sec", "mean-size", "std-size",
          "udp-frac",     "tls-frac",      "in-frac",   "remotes",
          "remote-ports", "heartbeat",     "top-flow-share", "buckets",
          "min-size",     "max-size"};
}

DeviceIdentifier DeviceIdentifier::train(const std::vector<gen::LabeledTrace>& traces,
                                         double window_seconds, std::uint64_t seed) {
  if (traces.empty()) throw LogicError("DeviceIdentifier: no training traces");
  DeviceIdentifier identifier;
  ml::Dataset data;
  data.feature_names = device_id_feature_names();

  for (const auto& trace : traces) {
    auto label_it = std::find(identifier.labels_.begin(), identifier.labels_.end(),
                              trace.device_name);
    int label;
    if (label_it == identifier.labels_.end()) {
      label = static_cast<int>(identifier.labels_.size());
      identifier.labels_.push_back(trace.device_name);
    } else {
      label = static_cast<int>(label_it - identifier.labels_.begin());
    }

    std::vector<net::PacketRecord> window;
    double window_start = trace.packets.empty() ? 0.0 : trace.packets.front().pkt.ts;
    for (const auto& lp : trace.packets) {
      if (lp.pkt.ts - window_start >= window_seconds && window.size() >= 20) {
        data.add(device_id_features(window, trace.device_ip), label);
        window.clear();
        window_start = lp.pkt.ts;
      }
      window.push_back(lp.pkt);
    }
    if (window.size() >= 20) {
      data.add(device_id_features(window, trace.device_ip), label);
    }
  }
  if (data.size() < identifier.labels_.size() * 2) {
    throw LogicError("DeviceIdentifier: not enough windows to train");
  }

  ml::Dataset scaled = identifier.scaler_.fit_transform(data);
  ml::ForestConfig config;
  config.n_trees = 60;
  config.seed = seed;
  identifier.forest_ = ml::RandomForest(config);
  identifier.forest_.fit(scaled);
  return identifier;
}

std::optional<std::string> DeviceIdentifier::identify(
    std::span<const net::PacketRecord> window, net::Ipv4Addr device,
    double* confidence) const {
  if (window.empty()) return std::nullopt;
  auto features = scaler_.transform(device_id_features(window, device));
  auto votes = forest_.vote_fractions(features);
  int label = 0;
  for (std::size_t c = 1; c < votes.size(); ++c) {
    if (votes[c] > votes[static_cast<std::size_t>(label)]) label = static_cast<int>(c);
  }
  if (static_cast<std::size_t>(label) >= labels_.size()) return std::nullopt;
  if (confidence) *confidence = votes[static_cast<std::size_t>(label)];
  return labels_[static_cast<std::size_t>(label)];
}

}  // namespace fiat::core
