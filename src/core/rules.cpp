#include "core/rules.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace fiat::core {

RuleTable::RuleTable(net::Ipv4Addr device, RuleTableConfig config)
    : device_(device), config_(config) {
  if (config_.bin <= 0) throw LogicError("RuleTable: bin must be > 0");
}

BucketKey RuleTable::make_key(const net::PacketRecord& pkt) {
  ++keygen_count_;
  return make_bucket_key(pkt, device_, config_.mode, config_.dns,
                         config_.reverse, interner_);
}

std::string RuleTable::make_legacy_key(const net::PacketRecord& pkt) {
  ++keygen_count_;
  return bucket_key(pkt, device_, config_.mode, config_.dns, config_.reverse);
}

template <class Bucket>
std::int64_t RuleTable::observe_bucket(Bucket& bucket, const net::PacketRecord& pkt) {
  std::int64_t bin = -1;
  if (bucket.last_ts >= 0.0) {
    double delta = pkt.ts - bucket.last_ts;
    if (delta >= 0 && delta <= config_.max_match_interval) {
      bin = static_cast<std::int64_t>(std::llround(delta / config_.bin));
    }
  }
  bucket.last_ts = pkt.ts;
  return bin;
}

template <class Bucket>
void RuleTable::learn_bins(Bucket& bucket, std::int64_t bin) {
  if (bucket.seen_bins.contains(bin)) {
    bucket.matched_bins.insert(bin);
  } else {
    bucket.seen_bins.insert(bin);
  }
}

template <class Bucket>
bool RuleTable::match_and_learn_bins(Bucket& bucket, std::int64_t bin, bool banned) {
  if (bucket.matched_bins.contains(bin)) return true;
  // Online promotion floor: fast rhythms never earn rules after bootstrap
  // (see RuleTableConfig::min_online_learn_interval).
  if (static_cast<double>(bin) * config_.bin < config_.min_online_learn_interval) {
    return false;
  }
  // Buckets implicated in manual-classified events never self-promote.
  if (banned) return false;
  learn_bins(bucket, bin);
  return false;
}

void RuleTable::learn(const net::PacketRecord& pkt) {
  if (config_.legacy_keys) {
    auto& bucket = legacy_buckets_[make_legacy_key(pkt)];
    std::int64_t bin = observe_bucket(bucket, pkt);
    if (bin >= 0) learn_bins(bucket, bin);
    return;
  }
  auto& bucket = buckets_[make_key(pkt)];
  std::int64_t bin = observe_bucket(bucket, pkt);
  if (bin >= 0) learn_bins(bucket, bin);
}

bool RuleTable::match(const net::PacketRecord& pkt) {
  if (config_.legacy_keys) {
    auto& bucket = legacy_buckets_[make_legacy_key(pkt)];
    std::int64_t bin = observe_bucket(bucket, pkt);
    bool hit = bin >= 0 && bucket.matched_bins.contains(bin);
    last_miss_known_bucket_ = !hit && !bucket.matched_bins.empty();
    return hit;
  }
  auto& bucket = buckets_[make_key(pkt)];
  std::int64_t bin = observe_bucket(bucket, pkt);
  bool hit = bin >= 0 && bucket.matched_bins.contains(bin);
  last_miss_known_bucket_ = !hit && !bucket.matched_bins.empty();
  return hit;
}

bool RuleTable::match_and_learn(const net::PacketRecord& pkt) {
  if (config_.legacy_keys) {
    // Seed fidelity: the banned check recomputes the key (the duplicate
    // computation the packed path eliminates), and std::set's node
    // allocations stand in for the seed's per-insert cost.
    auto& bucket = legacy_buckets_[make_legacy_key(pkt)];
    std::int64_t bin = observe_bucket(bucket, pkt);
    if (bin < 0) {
      last_miss_known_bucket_ = !bucket.matched_bins.empty();
      return false;
    }
    if (bucket.matched_bins.contains(bin)) {
      last_miss_known_bucket_ = false;
      return true;
    }
    last_miss_known_bucket_ = !bucket.matched_bins.empty();
    if (static_cast<double>(bin) * config_.bin < config_.min_online_learn_interval) {
      return false;
    }
    if (legacy_banned_.contains(make_legacy_key(pkt))) return false;
    learn_bins(bucket, bin);
    return false;
  }
  // One key computation serves the bucket lookup AND the banned check.
  BucketKey key = make_key(pkt);
  auto& bucket = buckets_[key];
  std::int64_t bin = observe_bucket(bucket, pkt);
  if (bin < 0) {
    last_miss_known_bucket_ = !bucket.matched_bins.empty();
    return false;
  }
  // Flag sampled BEFORE learn_bins may promote this very bin (the legacy
  // branch reads it pre-learn too — golden equivalence requires identical
  // observations on both key paths).
  bool known = !bucket.matched_bins.empty();
  bool hit = match_and_learn_bins(bucket, bin, banned_.contains(key));
  last_miss_known_bucket_ = !hit && known;
  return hit;
}

bool RuleTable::peek_key(const net::PacketRecord& pkt,
                         std::uint32_t saturated_size, BucketKey& out) const {
  if (config_.legacy_keys) return false;
  if (config_.mode == FlowMode::kClassic) {
    out = pack_classic_key(pkt, saturated_size);
    return true;
  }
  const std::uint32_t* id =
      interner_.peek_id(pkt.remote_of(device_), config_.dns);
  if (!id) return false;
  out = pack_portless_key(pkt, device_, *id);
  return true;
}

std::uint64_t RuleTable::probe_batch(const BucketKey* keys,
                                     const std::uint64_t* hashes,
                                     BucketState** out, std::size_t n) {
  buckets_.probe_batch(keys, hashes, out, n);
  return buckets_.mutations();
}

void RuleTable::count_prepared_key() {
  // A prepared key replaces exactly one make_key() call; PortLess keys only
  // peek successfully on an interner memo hit, which the scalar id_of()
  // would have counted as a lookup (and nothing else).
  ++keygen_count_;
  if (config_.mode == FlowMode::kPortLess) interner_.count_lookup();
}

RuleTable::BucketState* RuleTable::resolve_bucket(const BucketKey& key,
                                                  std::uint64_t hash,
                                                  BucketState* cached,
                                                  std::uint64_t snapshot) {
  if (cached && buckets_.mutations() == snapshot) return cached;
  return buckets_.try_emplace_hashed(key, hash).first;
}

void RuleTable::learn_prepared(const net::PacketRecord& pkt,
                               const BucketKey& key, std::uint64_t hash,
                               BucketState* cached, std::uint64_t snapshot) {
  count_prepared_key();
  BucketState& bucket = *resolve_bucket(key, hash, cached, snapshot);
  std::int64_t bin = observe_bucket(bucket, pkt);
  if (bin >= 0) learn_bins(bucket, bin);
}

bool RuleTable::match_prepared(const net::PacketRecord& pkt,
                               const BucketKey& key, std::uint64_t hash,
                               BucketState* cached, std::uint64_t snapshot) {
  count_prepared_key();
  BucketState& bucket = *resolve_bucket(key, hash, cached, snapshot);
  std::int64_t bin = observe_bucket(bucket, pkt);
  bool hit = bin >= 0 && bucket.matched_bins.contains(bin);
  last_miss_known_bucket_ = !hit && !bucket.matched_bins.empty();
  return hit;
}

bool RuleTable::match_and_learn_prepared(const net::PacketRecord& pkt,
                                         const BucketKey& key,
                                         std::uint64_t hash,
                                         BucketState* cached,
                                         std::uint64_t snapshot) {
  count_prepared_key();
  BucketState& bucket = *resolve_bucket(key, hash, cached, snapshot);
  std::int64_t bin = observe_bucket(bucket, pkt);
  if (bin < 0) {
    last_miss_known_bucket_ = !bucket.matched_bins.empty();
    return false;
  }
  bool known = !bucket.matched_bins.empty();
  bool hit =
      match_and_learn_bins(bucket, bin, banned_.contains_hashed(key, hash));
  last_miss_known_bucket_ = !hit && known;
  return hit;
}

void RuleTable::forbid_online(const net::PacketRecord& pkt) {
  if (config_.legacy_keys) {
    legacy_banned_.insert(make_legacy_key(pkt));
    return;
  }
  banned_.insert(make_key(pkt));
}

std::size_t RuleTable::forbidden_count() const {
  return config_.legacy_keys ? legacy_banned_.size() : banned_.size();
}

std::size_t RuleTable::rule_count() const {
  std::size_t n = 0;
  if (config_.legacy_keys) {
    for (const auto& [key, bucket] : legacy_buckets_) n += bucket.matched_bins.size();
    return n;
  }
  for (const auto& [key, bucket] : buckets_) n += bucket.matched_bins.size();
  return n;
}

std::size_t RuleTable::bucket_count() const {
  return config_.legacy_keys ? legacy_buckets_.size() : buckets_.size();
}

namespace {

// Bin sets travel as sign-preserving u64 bit patterns, smallest bin first.
// FlatSet iterates in insertion order, so packed sets are sorted here;
// std::set (legacy) is already ordered.
void write_bins(util::ByteWriter& w, const util::FlatSet<std::int64_t>& bins) {
  std::vector<std::int64_t> sorted;
  sorted.reserve(bins.size());
  for (std::int64_t bin : bins) sorted.push_back(bin);
  std::sort(sorted.begin(), sorted.end());
  w.u32be(static_cast<std::uint32_t>(sorted.size()));
  for (std::int64_t bin : sorted) w.u64be(static_cast<std::uint64_t>(bin));
}

void write_bins(util::ByteWriter& w, const std::set<std::int64_t>& bins) {
  w.u32be(static_cast<std::uint32_t>(bins.size()));
  for (std::int64_t bin : bins) w.u64be(static_cast<std::uint64_t>(bin));
}

template <class Set>
void read_bins(util::ByteReader& r, Set& bins) {
  std::uint32_t count = r.u32be();
  for (std::uint32_t i = 0; i < count; ++i) {
    bins.insert(static_cast<std::int64_t>(r.u64be()));
  }
}

}  // namespace

void RuleTable::encode_state(util::ByteWriter& w) const {
  w.u8(config_.legacy_keys ? 1 : 0);
  w.u64be(keygen_count_);
  if (config_.legacy_keys) {
    // std::map-free canonical order: collect and sort the node-based
    // containers' keys (unordered_map iteration order is unspecified).
    std::vector<const std::string*> keys;
    keys.reserve(legacy_buckets_.size());
    for (const auto& [key, bucket] : legacy_buckets_) keys.push_back(&key);
    std::sort(keys.begin(), keys.end(),
              [](const std::string* a, const std::string* b) { return *a < *b; });
    w.u32be(static_cast<std::uint32_t>(keys.size()));
    for (const std::string* key : keys) {
      const LegacyBucketState& bucket = legacy_buckets_.at(*key);
      w.u32be(static_cast<std::uint32_t>(key->size()));
      w.raw(*key);
      w.f64be(bucket.last_ts);
      write_bins(w, bucket.seen_bins);
      write_bins(w, bucket.matched_bins);
    }
    w.u32be(static_cast<std::uint32_t>(legacy_banned_.size()));
    for (const std::string& key : legacy_banned_) {
      w.u32be(static_cast<std::uint32_t>(key.size()));
      w.raw(key);
    }
    return;
  }
  interner_.encode_state(w);
  std::vector<std::pair<BucketKey, const BucketState*>> entries;
  entries.reserve(buckets_.size());
  for (const auto& [key, bucket] : buckets_) entries.emplace_back(key, &bucket);
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.u32be(static_cast<std::uint32_t>(entries.size()));
  for (const auto& [key, bucket] : entries) {
    w.u64be(key.w0);
    w.u64be(key.w1);
    w.f64be(bucket->last_ts);
    write_bins(w, bucket->seen_bins);
    write_bins(w, bucket->matched_bins);
  }
  std::vector<BucketKey> banned;
  banned.reserve(banned_.size());
  for (const BucketKey& key : banned_) banned.push_back(key);
  std::sort(banned.begin(), banned.end());
  w.u32be(static_cast<std::uint32_t>(banned.size()));
  for (const BucketKey& key : banned) {
    w.u64be(key.w0);
    w.u64be(key.w1);
  }
}

void RuleTable::decode_state(util::ByteReader& r) {
  bool legacy = r.u8() != 0;
  if (legacy != config_.legacy_keys) {
    throw ParseError("rule table key-mode mismatch: snapshot is " +
                     std::string(legacy ? "legacy" : "packed") +
                     ", table configured " +
                     std::string(config_.legacy_keys ? "legacy" : "packed"));
  }
  keygen_count_ = r.u64be();
  buckets_.clear();
  banned_.clear();
  legacy_buckets_.clear();
  legacy_banned_.clear();
  if (legacy) {
    std::uint32_t bucket_count = r.u32be();
    for (std::uint32_t i = 0; i < bucket_count; ++i) {
      std::string key = r.str(r.u32be());
      LegacyBucketState& bucket = legacy_buckets_[std::move(key)];
      bucket.last_ts = r.f64be();
      read_bins(r, bucket.seen_bins);
      read_bins(r, bucket.matched_bins);
    }
    std::uint32_t banned_count = r.u32be();
    for (std::uint32_t i = 0; i < banned_count; ++i) {
      legacy_banned_.insert(r.str(r.u32be()));
    }
    return;
  }
  interner_.decode_state(r);
  std::uint32_t bucket_count = r.u32be();
  buckets_.reserve(bucket_count);
  for (std::uint32_t i = 0; i < bucket_count; ++i) {
    BucketKey key{r.u64be(), r.u64be()};
    BucketState& bucket = buckets_[key];
    bucket.last_ts = r.f64be();
    read_bins(r, bucket.seen_bins);
    read_bins(r, bucket.matched_bins);
  }
  std::uint32_t banned_count = r.u32be();
  banned_.reserve(banned_count);
  for (std::uint32_t i = 0; i < banned_count; ++i) {
    banned_.insert(BucketKey{r.u64be(), r.u64be()});
  }
}

void DeviceDag::add_edge(net::Ipv4Addr src, net::Ipv4Addr dst) {
  if (src == dst) throw LogicError("DeviceDag: self edge");
  if (reachable(dst, src)) {
    throw LogicError("DeviceDag: edge " + src.str() + "->" + dst.str() +
                     " would create a cycle");
  }
  edges_[src.value()].insert(dst.value());
}

bool DeviceDag::allows(net::Ipv4Addr src, net::Ipv4Addr dst) const {
  auto it = edges_.find(src.value());
  return it != edges_.end() && it->second.contains(dst.value());
}

std::size_t DeviceDag::edge_count() const {
  std::size_t n = 0;
  for (const auto& [src, dsts] : edges_) n += dsts.size();
  return n;
}

bool DeviceDag::reachable(net::Ipv4Addr from, net::Ipv4Addr to) const {
  // Iterative DFS with a visited set: the naive recursion re-explored every
  // path, which is exponential on diamond-shaped DAGs (2^layers paths).
  if (from == to) return true;
  util::FlatSet<std::uint32_t> visited;
  std::vector<std::uint32_t> stack{from.value()};
  visited.insert(from.value());
  while (!stack.empty()) {
    std::uint32_t cur = stack.back();
    stack.pop_back();
    auto it = edges_.find(cur);
    if (it == edges_.end()) continue;
    for (std::uint32_t next : it->second) {
      if (next == to.value()) return true;
      if (visited.insert(next)) stack.push_back(next);
    }
  }
  return false;
}

}  // namespace fiat::core
