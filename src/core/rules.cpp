#include "core/rules.hpp"

#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace fiat::core {

RuleTable::RuleTable(net::Ipv4Addr device, RuleTableConfig config)
    : device_(device), config_(config) {
  if (config_.bin <= 0) throw LogicError("RuleTable: bin must be > 0");
}

BucketKey RuleTable::make_key(const net::PacketRecord& pkt) {
  ++keygen_count_;
  return make_bucket_key(pkt, device_, config_.mode, config_.dns,
                         config_.reverse, interner_);
}

std::string RuleTable::make_legacy_key(const net::PacketRecord& pkt) {
  ++keygen_count_;
  return bucket_key(pkt, device_, config_.mode, config_.dns, config_.reverse);
}

template <class Bucket>
std::int64_t RuleTable::observe_bucket(Bucket& bucket, const net::PacketRecord& pkt) {
  std::int64_t bin = -1;
  if (bucket.last_ts >= 0.0) {
    double delta = pkt.ts - bucket.last_ts;
    if (delta >= 0 && delta <= config_.max_match_interval) {
      bin = static_cast<std::int64_t>(std::llround(delta / config_.bin));
    }
  }
  bucket.last_ts = pkt.ts;
  return bin;
}

template <class Bucket>
void RuleTable::learn_bins(Bucket& bucket, std::int64_t bin) {
  if (bucket.seen_bins.contains(bin)) {
    bucket.matched_bins.insert(bin);
  } else {
    bucket.seen_bins.insert(bin);
  }
}

template <class Bucket>
bool RuleTable::match_and_learn_bins(Bucket& bucket, std::int64_t bin, bool banned) {
  if (bucket.matched_bins.contains(bin)) return true;
  // Online promotion floor: fast rhythms never earn rules after bootstrap
  // (see RuleTableConfig::min_online_learn_interval).
  if (static_cast<double>(bin) * config_.bin < config_.min_online_learn_interval) {
    return false;
  }
  // Buckets implicated in manual-classified events never self-promote.
  if (banned) return false;
  learn_bins(bucket, bin);
  return false;
}

void RuleTable::learn(const net::PacketRecord& pkt) {
  if (config_.legacy_keys) {
    auto& bucket = legacy_buckets_[make_legacy_key(pkt)];
    std::int64_t bin = observe_bucket(bucket, pkt);
    if (bin >= 0) learn_bins(bucket, bin);
    return;
  }
  auto& bucket = buckets_[make_key(pkt)];
  std::int64_t bin = observe_bucket(bucket, pkt);
  if (bin >= 0) learn_bins(bucket, bin);
}

bool RuleTable::match(const net::PacketRecord& pkt) {
  if (config_.legacy_keys) {
    auto& bucket = legacy_buckets_[make_legacy_key(pkt)];
    std::int64_t bin = observe_bucket(bucket, pkt);
    return bin >= 0 && bucket.matched_bins.contains(bin);
  }
  auto& bucket = buckets_[make_key(pkt)];
  std::int64_t bin = observe_bucket(bucket, pkt);
  return bin >= 0 && bucket.matched_bins.contains(bin);
}

bool RuleTable::match_and_learn(const net::PacketRecord& pkt) {
  if (config_.legacy_keys) {
    // Seed fidelity: the banned check recomputes the key (the duplicate
    // computation the packed path eliminates), and std::set's node
    // allocations stand in for the seed's per-insert cost.
    auto& bucket = legacy_buckets_[make_legacy_key(pkt)];
    std::int64_t bin = observe_bucket(bucket, pkt);
    if (bin < 0) return false;
    if (bucket.matched_bins.contains(bin)) return true;
    if (static_cast<double>(bin) * config_.bin < config_.min_online_learn_interval) {
      return false;
    }
    if (legacy_banned_.contains(make_legacy_key(pkt))) return false;
    learn_bins(bucket, bin);
    return false;
  }
  // One key computation serves the bucket lookup AND the banned check.
  BucketKey key = make_key(pkt);
  auto& bucket = buckets_[key];
  std::int64_t bin = observe_bucket(bucket, pkt);
  if (bin < 0) return false;
  return match_and_learn_bins(bucket, bin, banned_.contains(key));
}

void RuleTable::forbid_online(const net::PacketRecord& pkt) {
  if (config_.legacy_keys) {
    legacy_banned_.insert(make_legacy_key(pkt));
    return;
  }
  banned_.insert(make_key(pkt));
}

std::size_t RuleTable::forbidden_count() const {
  return config_.legacy_keys ? legacy_banned_.size() : banned_.size();
}

std::size_t RuleTable::rule_count() const {
  std::size_t n = 0;
  if (config_.legacy_keys) {
    for (const auto& [key, bucket] : legacy_buckets_) n += bucket.matched_bins.size();
    return n;
  }
  for (const auto& [key, bucket] : buckets_) n += bucket.matched_bins.size();
  return n;
}

std::size_t RuleTable::bucket_count() const {
  return config_.legacy_keys ? legacy_buckets_.size() : buckets_.size();
}

void DeviceDag::add_edge(net::Ipv4Addr src, net::Ipv4Addr dst) {
  if (src == dst) throw LogicError("DeviceDag: self edge");
  if (reachable(dst, src)) {
    throw LogicError("DeviceDag: edge " + src.str() + "->" + dst.str() +
                     " would create a cycle");
  }
  edges_[src.value()].insert(dst.value());
}

bool DeviceDag::allows(net::Ipv4Addr src, net::Ipv4Addr dst) const {
  auto it = edges_.find(src.value());
  return it != edges_.end() && it->second.contains(dst.value());
}

std::size_t DeviceDag::edge_count() const {
  std::size_t n = 0;
  for (const auto& [src, dsts] : edges_) n += dsts.size();
  return n;
}

bool DeviceDag::reachable(net::Ipv4Addr from, net::Ipv4Addr to) const {
  // Iterative DFS with a visited set: the naive recursion re-explored every
  // path, which is exponential on diamond-shaped DAGs (2^layers paths).
  if (from == to) return true;
  util::FlatSet<std::uint32_t> visited;
  std::vector<std::uint32_t> stack{from.value()};
  visited.insert(from.value());
  while (!stack.empty()) {
    std::uint32_t cur = stack.back();
    stack.pop_back();
    auto it = edges_.find(cur);
    if (it == edges_.end()) continue;
    for (std::uint32_t next : it->second) {
      if (next == to.value()) return true;
      if (visited.insert(next)) stack.push_back(next);
    }
  }
  return false;
}

}  // namespace fiat::core
