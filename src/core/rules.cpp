#include "core/rules.hpp"

#include <cmath>

#include "util/error.hpp"

namespace fiat::core {

RuleTable::RuleTable(net::Ipv4Addr device, RuleTableConfig config)
    : device_(device), config_(config) {
  if (config_.bin <= 0) throw LogicError("RuleTable: bin must be > 0");
}

std::pair<RuleTable::BucketState*, std::int64_t> RuleTable::observe(
    const net::PacketRecord& pkt) {
  std::string key = bucket_key(pkt, device_, config_.mode, config_.dns, config_.reverse);
  BucketState& bucket = buckets_[key];
  std::int64_t bin = -1;
  if (bucket.last_ts >= 0.0) {
    double delta = pkt.ts - bucket.last_ts;
    if (delta >= 0 && delta <= config_.max_match_interval) {
      bin = static_cast<std::int64_t>(std::llround(delta / config_.bin));
    }
  }
  bucket.last_ts = pkt.ts;
  return {&bucket, bin};
}

void RuleTable::learn(const net::PacketRecord& pkt) {
  auto [bucket, bin] = observe(pkt);
  if (bin < 0) return;
  if (bucket->seen_bins.contains(bin)) {
    bucket->matched_bins.insert(bin);
  } else {
    bucket->seen_bins.insert(bin);
  }
}

bool RuleTable::match(const net::PacketRecord& pkt) {
  auto [bucket, bin] = observe(pkt);
  if (bin < 0) return false;
  return bucket->matched_bins.contains(bin);
}

bool RuleTable::match_and_learn(const net::PacketRecord& pkt) {
  auto [bucket, bin] = observe(pkt);
  if (bin < 0) return false;
  if (bucket->matched_bins.contains(bin)) return true;
  // Online promotion floor: fast rhythms never earn rules after bootstrap
  // (see RuleTableConfig::min_online_learn_interval).
  if (static_cast<double>(bin) * config_.bin < config_.min_online_learn_interval) {
    return false;
  }
  // Buckets implicated in manual-classified events never self-promote.
  if (banned_.contains(bucket_key(pkt, device_, config_.mode, config_.dns,
                                  config_.reverse))) {
    return false;
  }
  if (bucket->seen_bins.contains(bin)) {
    bucket->matched_bins.insert(bin);
  } else {
    bucket->seen_bins.insert(bin);
  }
  return false;
}

void RuleTable::forbid_online(const net::PacketRecord& pkt) {
  banned_.insert(
      bucket_key(pkt, device_, config_.mode, config_.dns, config_.reverse));
}

std::size_t RuleTable::rule_count() const {
  std::size_t n = 0;
  for (const auto& [key, bucket] : buckets_) n += bucket.matched_bins.size();
  return n;
}

void DeviceDag::add_edge(net::Ipv4Addr src, net::Ipv4Addr dst) {
  if (src == dst) throw LogicError("DeviceDag: self edge");
  if (reachable(dst, src)) {
    throw LogicError("DeviceDag: edge " + src.str() + "->" + dst.str() +
                     " would create a cycle");
  }
  edges_[src.value()].insert(dst.value());
}

bool DeviceDag::allows(net::Ipv4Addr src, net::Ipv4Addr dst) const {
  auto it = edges_.find(src.value());
  return it != edges_.end() && it->second.contains(dst.value());
}

std::size_t DeviceDag::edge_count() const {
  std::size_t n = 0;
  for (const auto& [src, dsts] : edges_) n += dsts.size();
  return n;
}

bool DeviceDag::reachable(net::Ipv4Addr from, net::Ipv4Addr to) const {
  if (from == to) return true;
  auto it = edges_.find(from.value());
  if (it == edges_.end()) return false;
  for (std::uint32_t next : it->second) {
    if (reachable(net::Ipv4Addr(next), to)) return true;
  }
  return false;
}

}  // namespace fiat::core
