#include "net/packet.hpp"

#include <cstdio>

namespace fiat::net {

const char* transport_name(Transport t) {
  switch (t) {
    case Transport::kTcp: return "TCP";
    case Transport::kUdp: return "UDP";
    case Transport::kOther: return "OTHER";
  }
  return "?";
}

std::string PacketRecord::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%.6f %s %s:%u > %s:%u len=%u flags=0x%02x tls=0x%04x",
                ts, transport_name(proto), src_ip.str().c_str(), src_port,
                dst_ip.str().c_str(), dst_port, size, tcp_flags, tls_version);
  return buf;
}

}  // namespace fiat::net
