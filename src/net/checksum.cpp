#include "net/checksum.hpp"

namespace fiat::net {

std::uint32_t checksum_accumulate(std::span<const std::uint8_t> data,
                                  std::uint32_t acc) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    acc += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < data.size()) acc += static_cast<std::uint32_t>(data[i]) << 8;
  return acc;
}

std::uint16_t checksum_finish(std::uint32_t acc) {
  while (acc >> 16) acc = (acc & 0xffff) + (acc >> 16);
  return static_cast<std::uint16_t>(~acc);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  return checksum_finish(checksum_accumulate(data));
}

}  // namespace fiat::net
