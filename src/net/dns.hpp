// DNS message codec and the IP→domain mapping the PortLess flow definition
// depends on (§2.1).
//
// The paper obtains domain names "either from DNS requests — when available
// in the trace — or via a reverse DNS lookup" sent to a fixed recursive
// resolver. We mirror both paths: DnsTable::observe_message() learns from A
// answers seen in the trace, and ReverseResolver simulates the fixed-resolver
// PTR path (deterministic IP→name mapping, with aliasing imprecision
// injectable for experiments).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ip.hpp"
#include "util/bytes.hpp"

namespace fiat::net {

constexpr std::uint16_t kDnsPort = 53;
constexpr std::uint16_t kDnsTypeA = 1;
constexpr std::uint16_t kDnsTypePtr = 12;
constexpr std::uint16_t kDnsClassIn = 1;

struct DnsQuestion {
  std::string name;  // lower-cased, no trailing dot
  std::uint16_t qtype = kDnsTypeA;
  std::uint16_t qclass = kDnsClassIn;
};

struct DnsAnswer {
  std::string name;
  std::uint16_t rtype = kDnsTypeA;
  std::uint32_t ttl = 300;
  Ipv4Addr address;       // for A records
  std::string ptr_name;   // for PTR records
};

struct DnsMessage {
  std::uint16_t id = 0;
  bool is_response = false;
  std::vector<DnsQuestion> questions;
  std::vector<DnsAnswer> answers;
};

/// Encodes a message (uncompressed names).
util::Bytes encode_dns(const DnsMessage& msg);

/// Decodes a message; supports RFC 1035 name compression. Throws
/// fiat::ParseError on malformed input (including compression loops).
DnsMessage decode_dns(std::span<const std::uint8_t> data);

/// Builds a simple A query / response pair (helpers for trace generation).
DnsMessage make_a_query(std::uint16_t id, const std::string& name);
DnsMessage make_a_response(std::uint16_t id, const std::string& name, Ipv4Addr addr,
                           std::uint32_t ttl = 300);

/// IP→domain table learned passively from DNS responses in the trace.
class DnsTable {
 public:
  /// Records every A answer in `msg`.
  void observe_message(const DnsMessage& msg);
  void add(Ipv4Addr addr, const std::string& domain);

  /// Most recently learned domain for an IP, if any.
  std::optional<std::string> domain_of(Ipv4Addr addr) const;
  std::size_t size() const { return map_.size(); }

  /// Bumped on every mutation. Caches built over domain_of() answers (e.g.
  /// core::DomainInterner's IP→id memo) compare this to decide whether their
  /// memoized resolutions are still exact — the table keeps learning from
  /// in-trace DNS responses while traffic flows.
  std::uint64_t generation() const { return generation_; }

  /// State-codec hooks (core/state_codec.hpp): canonical serialization of the
  /// learned table, sorted by IP so the byte stream is independent of
  /// observation order within a snapshot round trip.
  void encode_state(util::ByteWriter& w) const;
  void decode_state(util::ByteReader& r);

 private:
  std::unordered_map<Ipv4Addr, std::string, Ipv4AddrHash> map_;
  std::uint64_t generation_ = 0;
};

/// Simulated reverse-DNS path: deterministic PTR-style names for unknown IPs.
/// The paper notes reverse lookups are consistent (same resolver) but less
/// precise than in-trace DNS because of domain aliases; `alias_buckets`
/// models that imprecision — IPs within the same /24 share one PTR name when
/// alias_buckets is true.
class ReverseResolver {
 public:
  explicit ReverseResolver(bool alias_buckets = false)
      : alias_buckets_(alias_buckets) {}

  std::string resolve(Ipv4Addr addr) const;

 private:
  bool alias_buckets_;
};

}  // namespace fiat::net
