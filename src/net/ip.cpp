#include "net/ip.hpp"

#include <cstdio>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace fiat::net {

Ipv4Addr Ipv4Addr::parse(std::string_view text) {
  auto parts = util::split(text, '.');
  if (parts.size() != 4) throw ParseError("bad IPv4 address: " + std::string(text));
  std::uint32_t value = 0;
  for (const auto& p : parts) {
    if (p.empty() || p.size() > 3) throw ParseError("bad IPv4 octet: " + p);
    int octet = 0;
    for (char c : p) {
      if (c < '0' || c > '9') throw ParseError("bad IPv4 octet: " + p);
      octet = octet * 10 + (c - '0');
    }
    if (octet > 255) throw ParseError("IPv4 octet out of range: " + p);
    value = (value << 8) | static_cast<std::uint32_t>(octet);
  }
  return Ipv4Addr(value);
}

std::string Ipv4Addr::str() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", octet(0), octet(1), octet(2), octet(3));
  return buf;
}

MacAddr MacAddr::parse(std::string_view text) {
  auto parts = util::split(text, ':');
  if (parts.size() != 6) throw ParseError("bad MAC address: " + std::string(text));
  std::array<std::uint8_t, 6> bytes{};
  for (std::size_t i = 0; i < 6; ++i) {
    const auto& p = parts[i];
    if (p.size() != 2) throw ParseError("bad MAC byte: " + p);
    int v = 0;
    for (char c : p) {
      int nib;
      if (c >= '0' && c <= '9') nib = c - '0';
      else if (c >= 'a' && c <= 'f') nib = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') nib = c - 'A' + 10;
      else throw ParseError("bad MAC byte: " + p);
      v = (v << 4) | nib;
    }
    bytes[i] = static_cast<std::uint8_t>(v);
  }
  return MacAddr(bytes);
}

std::string MacAddr::str() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", bytes_[0],
                bytes_[1], bytes_[2], bytes_[3], bytes_[4], bytes_[5]);
  return buf;
}

}  // namespace fiat::net
