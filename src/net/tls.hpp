// Minimal TLS record sniffing.
//
// The event classifier's feature vector includes a per-packet "TLS version"
// (§4.1). Like passive monitors do, we look only at the 5-byte TLS record
// header at the start of the transport payload.
#pragma once

#include <cstdint>
#include <span>

namespace fiat::net {

constexpr std::uint16_t kTls10 = 0x0301;
constexpr std::uint16_t kTls11 = 0x0302;
constexpr std::uint16_t kTls12 = 0x0303;
constexpr std::uint16_t kTls13 = 0x0304;

/// Returns the record-layer version (0x0301..0x0304) if `payload` starts with
/// a plausible TLS record, else 0.
std::uint16_t sniff_tls_version(std::span<const std::uint8_t> payload);

/// Builds a TLS application-data record header + opaque body of `body_len`
/// bytes (used by the trace generators to make realistic encrypted payloads).
void make_tls_record(std::uint16_t version, std::uint8_t content_type,
                     std::size_t body_len, std::span<std::uint8_t> out5);

}  // namespace fiat::net
