#include "net/dns.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace fiat::net {

namespace {

void encode_name(util::ByteWriter& w, const std::string& name) {
  if (!name.empty()) {
    for (const auto& label : util::split(name, '.')) {
      if (label.empty() || label.size() > 63) throw ParseError("bad DNS label: " + label);
      w.u8(static_cast<std::uint8_t>(label.size()));
      w.raw(label);
    }
  }
  w.u8(0);
}

// Decodes a possibly-compressed name starting at the reader's position.
std::string decode_name(util::ByteReader& r, std::span<const std::uint8_t> whole) {
  std::vector<std::string> labels;
  std::size_t jumps = 0;
  // After the first pointer jump we read from `detached`, leaving `r` at the
  // byte after the 2-byte pointer.
  std::optional<util::ByteReader> detached;
  util::ByteReader* cur = &r;
  while (true) {
    std::uint8_t len = cur->u8();
    if (len == 0) break;
    if ((len & 0xc0) == 0xc0) {
      if (++jumps > 32) throw ParseError("DNS compression loop");
      std::uint16_t offset = static_cast<std::uint16_t>((len & 0x3f) << 8) | cur->u8();
      if (offset >= whole.size()) throw ParseError("DNS pointer out of range");
      detached.emplace(whole.subspan(offset));
      cur = &*detached;
      continue;
    }
    if ((len & 0xc0) != 0) throw ParseError("bad DNS label length");
    labels.push_back(util::to_lower(cur->str(len)));
  }
  return util::join(labels, ".");
}

}  // namespace

util::Bytes encode_dns(const DnsMessage& msg) {
  util::ByteWriter w(64);
  w.u16be(msg.id);
  // Flags: QR bit + RD; responses also set RA.
  w.u16be(msg.is_response ? 0x8180 : 0x0100);
  w.u16be(static_cast<std::uint16_t>(msg.questions.size()));
  w.u16be(static_cast<std::uint16_t>(msg.answers.size()));
  w.u16be(0);  // authority
  w.u16be(0);  // additional
  for (const auto& q : msg.questions) {
    encode_name(w, q.name);
    w.u16be(q.qtype);
    w.u16be(q.qclass);
  }
  for (const auto& a : msg.answers) {
    encode_name(w, a.name);
    w.u16be(a.rtype);
    w.u16be(kDnsClassIn);
    w.u32be(a.ttl);
    if (a.rtype == kDnsTypeA) {
      w.u16be(4);
      w.u32be(a.address.value());
    } else if (a.rtype == kDnsTypePtr) {
      util::ByteWriter name_w;
      encode_name(name_w, a.ptr_name);
      w.u16be(static_cast<std::uint16_t>(name_w.size()));
      w.raw(std::span<const std::uint8_t>(name_w.bytes().data(), name_w.size()));
    } else {
      w.u16be(0);
    }
  }
  return w.take();
}

DnsMessage decode_dns(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  DnsMessage msg;
  msg.id = r.u16be();
  std::uint16_t flags = r.u16be();
  msg.is_response = (flags & 0x8000) != 0;
  std::uint16_t qdcount = r.u16be();
  std::uint16_t ancount = r.u16be();
  r.skip(4);  // authority + additional counts (records themselves ignored)

  for (std::uint16_t i = 0; i < qdcount; ++i) {
    DnsQuestion q;
    q.name = decode_name(r, data);
    q.qtype = r.u16be();
    q.qclass = r.u16be();
    msg.questions.push_back(std::move(q));
  }
  for (std::uint16_t i = 0; i < ancount; ++i) {
    DnsAnswer a;
    a.name = decode_name(r, data);
    a.rtype = r.u16be();
    r.skip(2);  // class
    a.ttl = r.u32be();
    std::uint16_t rdlength = r.u16be();
    if (a.rtype == kDnsTypeA && rdlength == 4) {
      a.address = Ipv4Addr(r.u32be());
    } else if (a.rtype == kDnsTypePtr) {
      util::ByteReader rd(data.subspan(r.offset(), rdlength));
      a.ptr_name = decode_name(rd, data);
      r.skip(rdlength);
    } else {
      r.skip(rdlength);
    }
    msg.answers.push_back(std::move(a));
  }
  return msg;
}

DnsMessage make_a_query(std::uint16_t id, const std::string& name) {
  DnsMessage msg;
  msg.id = id;
  msg.questions.push_back(DnsQuestion{util::to_lower(name), kDnsTypeA, kDnsClassIn});
  return msg;
}

DnsMessage make_a_response(std::uint16_t id, const std::string& name, Ipv4Addr addr,
                           std::uint32_t ttl) {
  DnsMessage msg = make_a_query(id, name);
  msg.is_response = true;
  DnsAnswer a;
  a.name = util::to_lower(name);
  a.rtype = kDnsTypeA;
  a.ttl = ttl;
  a.address = addr;
  msg.answers.push_back(std::move(a));
  return msg;
}

void DnsTable::observe_message(const DnsMessage& msg) {
  if (!msg.is_response) return;
  for (const auto& a : msg.answers) {
    if (a.rtype == kDnsTypeA) {
      map_[a.address] = a.name;
      ++generation_;
    }
  }
}

void DnsTable::add(Ipv4Addr addr, const std::string& domain) {
  map_[addr] = util::to_lower(domain);
  ++generation_;
}

std::optional<std::string> DnsTable::domain_of(Ipv4Addr addr) const {
  auto it = map_.find(addr);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

void DnsTable::encode_state(util::ByteWriter& w) const {
  std::vector<std::pair<std::uint32_t, const std::string*>> entries;
  entries.reserve(map_.size());
  for (const auto& [ip, name] : map_) entries.emplace_back(ip.value(), &name);
  std::sort(entries.begin(), entries.end());
  w.u32be(static_cast<std::uint32_t>(entries.size()));
  for (const auto& [ip, name] : entries) {
    w.u32be(ip);
    w.u32be(static_cast<std::uint32_t>(name->size()));
    w.raw(*name);
  }
  w.u64be(generation_);
}

void DnsTable::decode_state(util::ByteReader& r) {
  map_.clear();
  std::uint32_t count = r.u32be();
  map_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Ipv4Addr ip(r.u32be());
    map_[ip] = r.str(r.u32be());
  }
  generation_ = r.u64be();
}

std::string ReverseResolver::resolve(Ipv4Addr addr) const {
  char buf[64];
  if (alias_buckets_) {
    // Alias imprecision: one shared CDN-style name per /24.
    std::snprintf(buf, sizeof(buf), "edge-%u-%u-%u.cdn.example", addr.octet(0),
                  addr.octet(1), addr.octet(2));
  } else {
    std::snprintf(buf, sizeof(buf), "host-%u-%u-%u-%u.rdns.example", addr.octet(0),
                  addr.octet(1), addr.octet(2), addr.octet(3));
  }
  return buf;
}

}  // namespace fiat::net
