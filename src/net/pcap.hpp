// pcap file reader/writer (classic libpcap format, microsecond resolution,
// LINKTYPE_ETHERNET), implemented from scratch so traces round-trip to disk
// exactly like the paper's tcpdump captures would.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/packet.hpp"
#include "util/bytes.hpp"

namespace fiat::net {

constexpr std::uint32_t kPcapMagic = 0xa1b2c3d4;  // microsecond timestamps
constexpr std::uint32_t kLinktypeEthernet = 1;

struct PcapPacket {
  double ts = 0.0;  // seconds (+ fractional microseconds)
  util::Bytes frame;
};

/// Streams frames to a pcap file. The file header is written on open.
class PcapWriter {
 public:
  explicit PcapWriter(const std::string& path, std::uint32_t snaplen = 65535);
  ~PcapWriter();
  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  void write(double ts, std::span<const std::uint8_t> frame);
  void close();
  std::size_t packets_written() const { return count_; }

 private:
  struct Impl;
  Impl* impl_;
  std::size_t count_ = 0;
};

/// Reads a whole pcap file into memory.
std::vector<PcapPacket> read_pcap(const std::string& path);

/// Streams a pcap file, invoking `sink` per packet; returns packet count.
std::size_t read_pcap(const std::string& path,
                      const std::function<void(const PcapPacket&)>& sink);

/// Convenience: reads a pcap and converts every IPv4 frame to a PacketRecord
/// (non-IPv4 frames are skipped, as the paper's analysis does).
std::vector<PacketRecord> read_pcap_records(const std::string& path);

/// Convenience: writes PacketRecords as synthesized frames. `mac_of` supplies
/// stable MACs for addresses. Payload bytes are zeros except for a TLS record
/// header when rec.tls_version is set, so records survive the round-trip.
void write_pcap_records(const std::string& path,
                        std::span<const PacketRecord> records);

}  // namespace fiat::net
