// PacketRecord: the normalized per-packet view the whole FIAT pipeline
// consumes (§2.1: arrival timestamp, size, source/destination IPs, transport
// protocol, ports — plus the TCP flags and sniffed TLS version that the event
// classifier's 66 features need).
#pragma once

#include <cstdint>
#include <string>

#include "net/ip.hpp"

namespace fiat::net {

enum class Transport : std::uint8_t { kTcp = 6, kUdp = 17, kOther = 0 };

/// TCP flag bits (subset we model).
struct TcpFlags {
  static constexpr std::uint8_t kFin = 0x01;
  static constexpr std::uint8_t kSyn = 0x02;
  static constexpr std::uint8_t kRst = 0x04;
  static constexpr std::uint8_t kPsh = 0x08;
  static constexpr std::uint8_t kAck = 0x10;
};

struct PacketRecord {
  double ts = 0.0;          // seconds since trace start
  std::uint32_t size = 0;   // IP packet length in bytes
  Ipv4Addr src_ip;
  Ipv4Addr dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Transport proto = Transport::kOther;
  std::uint8_t tcp_flags = 0;      // 0 for UDP
  std::uint16_t tls_version = 0;   // 0 = no TLS record seen; else 0x0301..0x0304

  /// True if the packet was *sent by* `device` (device -> remote).
  bool outbound_from(Ipv4Addr device) const { return src_ip == device; }
  /// The non-device endpoint relative to `device`.
  Ipv4Addr remote_of(Ipv4Addr device) const {
    return outbound_from(device) ? dst_ip : src_ip;
  }
  std::uint16_t remote_port_of(Ipv4Addr device) const {
    return outbound_from(device) ? dst_port : src_port;
  }

  std::string summary() const;
};

const char* transport_name(Transport t);

}  // namespace fiat::net
