#include "net/tls.hpp"

namespace fiat::net {

std::uint16_t sniff_tls_version(std::span<const std::uint8_t> payload) {
  if (payload.size() < 5) return 0;
  std::uint8_t content_type = payload[0];
  // change_cipher_spec(20), alert(21), handshake(22), application_data(23).
  if (content_type < 20 || content_type > 23) return 0;
  std::uint16_t version = static_cast<std::uint16_t>((payload[1] << 8) | payload[2]);
  if (version < kTls10 || version > kTls13) return 0;
  std::uint16_t record_len = static_cast<std::uint16_t>((payload[3] << 8) | payload[4]);
  if (record_len == 0 || record_len > 16384 + 256) return 0;
  return version;
}

void make_tls_record(std::uint16_t version, std::uint8_t content_type,
                     std::size_t body_len, std::span<std::uint8_t> out5) {
  out5[0] = content_type;
  out5[1] = static_cast<std::uint8_t>(version >> 8);
  out5[2] = static_cast<std::uint8_t>(version);
  out5[3] = static_cast<std::uint8_t>(body_len >> 8);
  out5[4] = static_cast<std::uint8_t>(body_len);
}

}  // namespace fiat::net
