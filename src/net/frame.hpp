// Ethernet II + IPv4 + TCP/UDP frame codec.
//
// The trace generators emit real byte-level frames through this codec and
// the analyzers parse them back, so the whole pipeline is exercised on actual
// wire formats (and traces round-trip through .pcap files, see pcap.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "net/ip.hpp"
#include "net/packet.hpp"
#include "util/bytes.hpp"

namespace fiat::net {

constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
constexpr std::uint16_t kEtherTypeArp = 0x0806;

/// Everything needed to build one frame. `payload` is the transport payload.
struct FrameSpec {
  MacAddr src_mac;
  MacAddr dst_mac;
  Ipv4Addr src_ip;
  Ipv4Addr dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Transport proto = Transport::kTcp;
  std::uint8_t tcp_flags = TcpFlags::kAck;
  std::uint32_t tcp_seq = 0;
  std::uint32_t tcp_ack = 0;
  std::uint8_t ttl = 64;
  util::Bytes payload;
};

/// A fully parsed frame: link/network/transport headers plus a payload view
/// into the original buffer.
struct ParsedFrame {
  MacAddr src_mac;
  MacAddr dst_mac;
  Ipv4Addr src_ip;
  Ipv4Addr dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Transport proto = Transport::kOther;
  std::uint8_t tcp_flags = 0;
  std::uint32_t tcp_seq = 0;
  std::uint32_t tcp_ack = 0;
  std::uint8_t ttl = 0;
  std::uint16_t ip_total_length = 0;
  std::span<const std::uint8_t> payload;

  /// Converts to the normalized record the analyzers consume, sniffing the
  /// TLS version from the payload.
  PacketRecord to_record(double ts) const;
};

/// Serializes a frame; IPv4 header and TCP/UDP checksums are computed.
util::Bytes build_frame(const FrameSpec& spec);

/// Parses an Ethernet II frame carrying IPv4. Returns nullopt for non-IPv4
/// ethertypes (e.g. ARP); throws fiat::ParseError on truncated/corrupt input.
std::optional<ParsedFrame> parse_frame(std::span<const std::uint8_t> frame);

/// Validates the IPv4 header checksum of a parsed buffer (used by tests and
/// by the proxy's sanity checks).
bool verify_ipv4_checksum(std::span<const std::uint8_t> frame);

}  // namespace fiat::net
