// IPv4 and MAC addressing primitives.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace fiat::net {

/// IPv4 address as a host-order 32-bit value with dotted-quad conversion.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t host_order) : addr_(host_order) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : addr_((static_cast<std::uint32_t>(a) << 24) |
              (static_cast<std::uint32_t>(b) << 16) |
              (static_cast<std::uint32_t>(c) << 8) | d) {}

  /// Parses "a.b.c.d"; throws fiat::ParseError on malformed input.
  static Ipv4Addr parse(std::string_view text);

  constexpr std::uint32_t value() const { return addr_; }
  /// Octet 0 is the most significant ("a" in a.b.c.d).
  constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(addr_ >> (8 * (3 - i)));
  }
  std::string str() const;

  constexpr bool operator==(const Ipv4Addr&) const = default;
  constexpr auto operator<=>(const Ipv4Addr&) const = default;

  /// True for RFC 1918 private ranges (used to split LAN vs WAN endpoints).
  constexpr bool is_private() const {
    return (octet(0) == 10) || (octet(0) == 172 && octet(1) >= 16 && octet(1) <= 31) ||
           (octet(0) == 192 && octet(1) == 168);
  }

 private:
  std::uint32_t addr_ = 0;
};

struct Ipv4AddrHash {
  std::size_t operator()(const Ipv4Addr& a) const noexcept {
    // splitmix-style avalanche of the 32-bit value.
    std::uint64_t x = a.value() + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

/// 48-bit Ethernet MAC address.
class MacAddr {
 public:
  constexpr MacAddr() = default;
  constexpr explicit MacAddr(std::array<std::uint8_t, 6> bytes) : bytes_(bytes) {}

  static MacAddr parse(std::string_view text);  // "aa:bb:cc:dd:ee:ff"
  /// Deterministic locally-administered MAC derived from an index (testbeds).
  static constexpr MacAddr from_index(std::uint32_t idx) {
    return MacAddr({0x02, 0x00, static_cast<std::uint8_t>(idx >> 24),
                    static_cast<std::uint8_t>(idx >> 16),
                    static_cast<std::uint8_t>(idx >> 8),
                    static_cast<std::uint8_t>(idx)});
  }

  constexpr const std::array<std::uint8_t, 6>& bytes() const { return bytes_; }
  std::string str() const;

  constexpr bool operator==(const MacAddr&) const = default;

 private:
  std::array<std::uint8_t, 6> bytes_{};
};

}  // namespace fiat::net
