#include "net/frame.hpp"

#include "net/checksum.hpp"
#include "net/tls.hpp"
#include "util/error.hpp"

namespace fiat::net {

namespace {

constexpr std::size_t kEthHeaderLen = 14;
constexpr std::size_t kIpv4HeaderLen = 20;  // we never emit IP options
constexpr std::size_t kTcpHeaderLen = 20;   // no TCP options
constexpr std::size_t kUdpHeaderLen = 8;

// Pseudo-header checksum seed for TCP/UDP.
std::uint32_t pseudo_header_sum(Ipv4Addr src, Ipv4Addr dst, std::uint8_t proto,
                                std::uint16_t transport_len) {
  std::uint32_t acc = 0;
  acc += src.value() >> 16;
  acc += src.value() & 0xffff;
  acc += dst.value() >> 16;
  acc += dst.value() & 0xffff;
  acc += proto;
  acc += transport_len;
  return acc;
}

}  // namespace

util::Bytes build_frame(const FrameSpec& spec) {
  if (spec.proto == Transport::kOther) {
    throw LogicError("build_frame: transport must be TCP or UDP");
  }
  const bool tcp = spec.proto == Transport::kTcp;
  const std::size_t transport_len =
      (tcp ? kTcpHeaderLen : kUdpHeaderLen) + spec.payload.size();
  const std::size_t ip_len = kIpv4HeaderLen + transport_len;
  if (ip_len > 0xffff) throw LogicError("build_frame: payload too large");

  util::ByteWriter w(kEthHeaderLen + ip_len);
  // Ethernet II.
  w.raw(std::span<const std::uint8_t>(spec.dst_mac.bytes().data(), 6));
  w.raw(std::span<const std::uint8_t>(spec.src_mac.bytes().data(), 6));
  w.u16be(kEtherTypeIpv4);

  // IPv4 header.
  const std::size_t ip_start = w.size();
  w.u8(0x45);  // version 4, IHL 5
  w.u8(0);     // DSCP/ECN
  w.u16be(static_cast<std::uint16_t>(ip_len));
  w.u16be(0);       // identification
  w.u16be(0x4000);  // flags: DF
  w.u8(spec.ttl);
  w.u8(static_cast<std::uint8_t>(spec.proto));
  w.u16be(0);  // checksum placeholder
  w.u32be(spec.src_ip.value());
  w.u32be(spec.dst_ip.value());
  std::uint16_t ip_csum = internet_checksum(
      std::span<const std::uint8_t>(w.bytes().data() + ip_start, kIpv4HeaderLen));
  w.patch_u16be(ip_start + 10, ip_csum);

  // Transport header.
  const std::size_t tr_start = w.size();
  if (tcp) {
    w.u16be(spec.src_port);
    w.u16be(spec.dst_port);
    w.u32be(spec.tcp_seq);
    w.u32be(spec.tcp_ack);
    w.u8(0x50);  // data offset 5
    w.u8(spec.tcp_flags);
    w.u16be(0xffff);  // window
    w.u16be(0);       // checksum placeholder
    w.u16be(0);       // urgent pointer
  } else {
    w.u16be(spec.src_port);
    w.u16be(spec.dst_port);
    w.u16be(static_cast<std::uint16_t>(transport_len));
    w.u16be(0);  // checksum placeholder
  }
  w.raw(std::span<const std::uint8_t>(spec.payload.data(), spec.payload.size()));

  // Transport checksum over pseudo-header + header + payload.
  std::uint32_t acc = pseudo_header_sum(spec.src_ip, spec.dst_ip,
                                        static_cast<std::uint8_t>(spec.proto),
                                        static_cast<std::uint16_t>(transport_len));
  acc = checksum_accumulate(
      std::span<const std::uint8_t>(w.bytes().data() + tr_start, transport_len), acc);
  std::uint16_t tr_csum = checksum_finish(acc);
  if (!tcp && tr_csum == 0) tr_csum = 0xffff;  // UDP: 0 means "no checksum"
  w.patch_u16be(tr_start + (tcp ? 16 : 6), tr_csum);

  return w.take();
}

std::optional<ParsedFrame> parse_frame(std::span<const std::uint8_t> frame) {
  util::ByteReader r(frame);
  ParsedFrame out;

  std::array<std::uint8_t, 6> mac{};
  auto dst = r.raw(6);
  std::copy(dst.begin(), dst.end(), mac.begin());
  out.dst_mac = MacAddr(mac);
  auto src = r.raw(6);
  std::copy(src.begin(), src.end(), mac.begin());
  out.src_mac = MacAddr(mac);
  std::uint16_t ethertype = r.u16be();
  if (ethertype != kEtherTypeIpv4) return std::nullopt;

  std::uint8_t ver_ihl = r.u8();
  if ((ver_ihl >> 4) != 4) throw ParseError("not IPv4");
  std::size_t ihl = static_cast<std::size_t>(ver_ihl & 0x0f) * 4;
  if (ihl < kIpv4HeaderLen) throw ParseError("bad IHL");
  r.skip(1);  // DSCP/ECN
  out.ip_total_length = r.u16be();
  r.skip(4);  // id, flags/fragment
  out.ttl = r.u8();
  std::uint8_t proto = r.u8();
  r.skip(2);  // checksum (verified separately)
  out.src_ip = Ipv4Addr(r.u32be());
  out.dst_ip = Ipv4Addr(r.u32be());
  if (ihl > kIpv4HeaderLen) r.skip(ihl - kIpv4HeaderLen);

  if (out.ip_total_length < ihl ||
      out.ip_total_length > frame.size() - kEthHeaderLen) {
    throw ParseError("IP total length inconsistent with frame");
  }
  std::size_t transport_len = out.ip_total_length - ihl;
  if (transport_len > r.remaining()) throw ParseError("truncated transport payload");

  if (proto == 6) {
    out.proto = Transport::kTcp;
    if (transport_len < kTcpHeaderLen) throw ParseError("truncated TCP header");
    out.src_port = r.u16be();
    out.dst_port = r.u16be();
    out.tcp_seq = r.u32be();
    out.tcp_ack = r.u32be();
    std::uint8_t offset = r.u8() >> 4;
    std::size_t tcp_hdr = static_cast<std::size_t>(offset) * 4;
    if (tcp_hdr < kTcpHeaderLen || tcp_hdr > transport_len) throw ParseError("bad TCP offset");
    out.tcp_flags = r.u8();
    r.skip(2 + 2 + 2);  // window, checksum, urgent
    if (tcp_hdr > kTcpHeaderLen) r.skip(tcp_hdr - kTcpHeaderLen);
    out.payload = r.raw(transport_len - tcp_hdr);
  } else if (proto == 17) {
    out.proto = Transport::kUdp;
    if (transport_len < kUdpHeaderLen) throw ParseError("truncated UDP header");
    out.src_port = r.u16be();
    out.dst_port = r.u16be();
    std::uint16_t udp_len = r.u16be();
    if (udp_len < kUdpHeaderLen || udp_len > transport_len) throw ParseError("bad UDP length");
    r.skip(2);  // checksum
    out.payload = r.raw(udp_len - kUdpHeaderLen);
  } else {
    out.proto = Transport::kOther;
    out.payload = r.raw(transport_len);
  }
  return out;
}

bool verify_ipv4_checksum(std::span<const std::uint8_t> frame) {
  if (frame.size() < kEthHeaderLen + kIpv4HeaderLen) return false;
  std::size_t ihl = static_cast<std::size_t>(frame[kEthHeaderLen] & 0x0f) * 4;
  if (frame.size() < kEthHeaderLen + ihl) return false;
  // A correct header checksums (one's-complement) to zero.
  return internet_checksum(frame.subspan(kEthHeaderLen, ihl)) == 0;
}

PacketRecord ParsedFrame::to_record(double ts) const {
  PacketRecord rec;
  rec.ts = ts;
  rec.size = ip_total_length;
  rec.src_ip = src_ip;
  rec.dst_ip = dst_ip;
  rec.src_port = src_port;
  rec.dst_port = dst_port;
  rec.proto = proto;
  rec.tcp_flags = tcp_flags;
  rec.tls_version = sniff_tls_version(payload);
  return rec;
}

}  // namespace fiat::net
