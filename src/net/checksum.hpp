// RFC 1071 internet checksum, used by the IPv4/TCP/UDP frame codec.
#pragma once

#include <cstdint>
#include <span>

namespace fiat::net {

/// One's-complement sum over `data` folded to 16 bits (not yet complemented).
std::uint32_t checksum_accumulate(std::span<const std::uint8_t> data,
                                  std::uint32_t acc = 0);

/// Finalizes an accumulated sum into the checksum field value.
std::uint16_t checksum_finish(std::uint32_t acc);

/// Convenience one-shot checksum.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

}  // namespace fiat::net
