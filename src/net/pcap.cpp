#include "net/pcap.hpp"

#include <cmath>
#include <cstdio>

#include "net/tls.hpp"
#include "util/error.hpp"

namespace fiat::net {

struct PcapWriter::Impl {
  std::FILE* file = nullptr;
};

PcapWriter::PcapWriter(const std::string& path, std::uint32_t snaplen)
    : impl_(new Impl) {
  impl_->file = std::fopen(path.c_str(), "wb");
  if (!impl_->file) {
    delete impl_;
    throw IoError("cannot open pcap for writing: " + path);
  }
  util::ByteWriter w(24);
  w.u32le(kPcapMagic);
  w.u16le(2);  // version major
  w.u16le(4);  // version minor
  w.u32le(0);  // thiszone
  w.u32le(0);  // sigfigs
  w.u32le(snaplen);
  w.u32le(kLinktypeEthernet);
  if (std::fwrite(w.bytes().data(), 1, w.size(), impl_->file) != w.size()) {
    std::fclose(impl_->file);
    delete impl_;
    throw IoError("cannot write pcap header: " + path);
  }
}

PcapWriter::~PcapWriter() {
  close();
  delete impl_;
}

void PcapWriter::close() {
  if (impl_->file) {
    std::fclose(impl_->file);
    impl_->file = nullptr;
  }
}

void PcapWriter::write(double ts, std::span<const std::uint8_t> frame) {
  if (!impl_->file) throw IoError("pcap writer already closed");
  if (ts < 0) throw LogicError("pcap timestamps must be non-negative");
  auto secs = static_cast<std::uint32_t>(ts);
  auto usecs = static_cast<std::uint32_t>(std::llround((ts - secs) * 1e6));
  if (usecs >= 1000000) {  // rounding carried into the next second
    secs += 1;
    usecs -= 1000000;
  }
  util::ByteWriter w(16);
  w.u32le(secs);
  w.u32le(usecs);
  w.u32le(static_cast<std::uint32_t>(frame.size()));  // captured length
  w.u32le(static_cast<std::uint32_t>(frame.size()));  // original length
  if (std::fwrite(w.bytes().data(), 1, w.size(), impl_->file) != w.size() ||
      std::fwrite(frame.data(), 1, frame.size(), impl_->file) != frame.size()) {
    throw IoError("pcap write failed");
  }
  ++count_;
}

std::size_t read_pcap(const std::string& path,
                      const std::function<void(const PcapPacket&)>& sink) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw IoError("cannot open pcap: " + path);
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{f};

  std::uint8_t header[24];
  if (std::fread(header, 1, 24, f) != 24) throw ParseError("pcap: short file header");
  util::ByteReader hr({header, 24});
  std::uint32_t magic = hr.u32le();
  bool swapped;
  if (magic == kPcapMagic) {
    swapped = false;
  } else if (magic == 0xd4c3b2a1) {
    swapped = true;
  } else {
    throw ParseError("pcap: bad magic");
  }
  // Remaining header fields are not needed; linktype sanity-checked below.
  hr.skip(16);
  std::uint32_t linktype = swapped ? __builtin_bswap32(hr.u32le()) : hr.u32le();
  if (linktype != kLinktypeEthernet) throw ParseError("pcap: unsupported linktype");

  std::size_t count = 0;
  std::uint8_t rec_hdr[16];
  std::size_t hdr_read;
  while ((hdr_read = std::fread(rec_hdr, 1, 16, f)) == 16) {
    util::ByteReader rr({rec_hdr, 16});
    std::uint32_t secs = rr.u32le();
    std::uint32_t usecs = rr.u32le();
    std::uint32_t caplen = rr.u32le();
    std::uint32_t origlen = rr.u32le();
    if (swapped) {
      secs = __builtin_bswap32(secs);
      usecs = __builtin_bswap32(usecs);
      caplen = __builtin_bswap32(caplen);
      origlen = __builtin_bswap32(origlen);
    }
    (void)origlen;
    if (caplen > 10 * 1024 * 1024) throw ParseError("pcap: absurd caplen");
    PcapPacket pkt;
    pkt.ts = static_cast<double>(secs) + static_cast<double>(usecs) * 1e-6;
    pkt.frame.resize(caplen);
    if (std::fread(pkt.frame.data(), 1, caplen, f) != caplen) {
      throw ParseError("pcap: truncated packet record");
    }
    sink(pkt);
    ++count;
  }
  // A clean capture ends exactly on a record boundary. A partial record
  // header means the file was cut mid-write (or crafted); silently treating
  // it as EOF would hide data loss, so reject like any other truncation.
  if (hdr_read != 0) throw ParseError("pcap: truncated record header");
  return count;
}

std::vector<PcapPacket> read_pcap(const std::string& path) {
  std::vector<PcapPacket> out;
  read_pcap(path, [&out](const PcapPacket& p) { out.push_back(p); });
  return out;
}

std::vector<PacketRecord> read_pcap_records(const std::string& path) {
  std::vector<PacketRecord> out;
  read_pcap(path, [&out](const PcapPacket& p) {
    auto parsed = parse_frame(p.frame);
    if (parsed) out.push_back(parsed->to_record(p.ts));
  });
  return out;
}

void write_pcap_records(const std::string& path,
                        std::span<const PacketRecord> records) {
  PcapWriter writer(path);
  for (const auto& rec : records) {
    FrameSpec spec;
    spec.src_mac = MacAddr::from_index(rec.src_ip.value() & 0xffffff);
    spec.dst_mac = MacAddr::from_index(rec.dst_ip.value() & 0xffffff);
    spec.src_ip = rec.src_ip;
    spec.dst_ip = rec.dst_ip;
    spec.src_port = rec.src_port;
    spec.dst_port = rec.dst_port;
    spec.proto = rec.proto == Transport::kOther ? Transport::kUdp : rec.proto;
    spec.tcp_flags = rec.tcp_flags;
    // rec.size is the IP total length; derive the transport payload size.
    std::size_t headers = 20 + (spec.proto == Transport::kTcp ? 20u : 8u);
    std::size_t payload_len = rec.size > headers ? rec.size - headers : 0;
    spec.payload.assign(payload_len, 0);
    if (rec.tls_version != 0 && payload_len >= 5) {
      make_tls_record(rec.tls_version, 23, payload_len - 5,
                      std::span<std::uint8_t>(spec.payload.data(), 5));
    }
    writer.write(rec.ts, build_frame(spec));
  }
}

}  // namespace fiat::net
