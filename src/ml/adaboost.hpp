// AdaBoost (multi-class SAMME) over shallow CART trees (Table 2 baseline;
// sklearn's AdaBoostClassifier defaults to depth-1 stumps).
#pragma once

#include "ml/decision_tree.hpp"

namespace fiat::ml {

struct AdaBoostConfig {
  std::size_t n_estimators = 50;
  int base_depth = 1;
  double learning_rate = 1.0;
};

class AdaBoost : public Classifier {
 public:
  explicit AdaBoost(AdaBoostConfig config = {}) : config_(config) {}

  void fit(const Dataset& data) override;
  int predict(std::span<const double> x) const override;
  std::string name() const override;
  std::unique_ptr<Classifier> clone_config() const override {
    return std::make_unique<AdaBoost>(config_);
  }

  std::size_t estimator_count() const { return estimators_.size(); }

 private:
  AdaBoostConfig config_;
  std::vector<DecisionTree> estimators_;
  std::vector<double> alphas_;
  int num_classes_ = 0;
};

}  // namespace fiat::ml
