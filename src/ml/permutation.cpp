#include "ml/permutation.hpp"

#include <algorithm>

#include "ml/metrics.hpp"
#include "util/error.hpp"

namespace fiat::ml {

namespace {

double score_of(const Classifier& model, const Dataset& data, int score_class) {
  std::vector<int> predicted = model.predict_batch(data.X);
  int num_classes = data.num_classes();
  for (int p : predicted) num_classes = std::max(num_classes, p + 1);
  ConfusionMatrix cm(data.y, predicted, num_classes);
  return score_class >= 0 ? cm.f1(score_class) : cm.balanced_accuracy();
}

}  // namespace

std::vector<FeatureImportance> permutation_importance(
    const Classifier& model, const Dataset& eval_data, int score_class,
    std::size_t n_repeats, std::uint64_t seed) {
  eval_data.validate();
  if (eval_data.size() < 2) throw LogicError("permutation_importance: need >= 2 rows");
  if (n_repeats == 0) throw LogicError("permutation_importance: n_repeats must be >= 1");

  double baseline = score_of(model, eval_data, score_class);
  sim::Rng rng(seed);

  std::vector<FeatureImportance> out;
  out.reserve(eval_data.dim());
  Dataset working = eval_data;  // mutated column-by-column, then restored

  for (std::size_t f = 0; f < eval_data.dim(); ++f) {
    std::vector<double> column(eval_data.size());
    for (std::size_t i = 0; i < eval_data.size(); ++i) column[i] = eval_data.X[i][f];

    double permuted_sum = 0.0;
    for (std::size_t rep = 0; rep < n_repeats; ++rep) {
      std::vector<double> shuffled = column;
      rng.shuffle(shuffled);
      for (std::size_t i = 0; i < working.size(); ++i) working.X[i][f] = shuffled[i];
      permuted_sum += score_of(model, working, score_class);
    }
    for (std::size_t i = 0; i < working.size(); ++i) working.X[i][f] = column[i];

    FeatureImportance fi;
    fi.feature = f;
    fi.name = (f < eval_data.feature_names.size()) ? eval_data.feature_names[f]
                                                   : ("f" + std::to_string(f));
    fi.importance = baseline - permuted_sum / static_cast<double>(n_repeats);
    out.push_back(std::move(fi));
  }

  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.importance > b.importance;
  });
  return out;
}

}  // namespace fiat::ml
