// StandardScaler: zero-mean unit-variance feature scaling, matching the
// paper's preprocessing ("scaling all the features to unit variance before
// training and testing", §4.1).
#pragma once

#include <vector>

#include "ml/dataset.hpp"
#include "util/bytes.hpp"

namespace fiat::ml {

class StandardScaler {
 public:
  void fit(const Dataset& data);
  Row transform(const Row& x) const;
  Dataset transform(const Dataset& data) const;
  /// fit() then transform() on the same data.
  Dataset fit_transform(const Dataset& data);

  bool fitted() const { return !mean_.empty(); }
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& stddev() const { return std_; }

  /// Serialization for model distribution (§7).
  void save(util::ByteWriter& w) const;
  static StandardScaler load(util::ByteReader& r);

 private:
  std::vector<double> mean_;
  std::vector<double> std_;  // constant features get std 1 (identity scaling)
};

}  // namespace fiat::ml
