// Random forest: bagged CART trees with sqrt-feature subsampling and
// majority voting (Table 2 baseline).
#pragma once

#include "ml/decision_tree.hpp"
#include "sim/rng.hpp"

namespace fiat::ml {

struct ForestConfig {
  std::size_t n_trees = 100;
  int max_depth = 12;
  std::size_t min_samples_leaf = 1;
  std::uint64_t seed = 42;
};

class RandomForest : public Classifier {
 public:
  explicit RandomForest(ForestConfig config = {}) : config_(config) {}

  void fit(const Dataset& data) override;
  int predict(std::span<const double> x) const override;
  std::string name() const override;
  std::unique_ptr<Classifier> clone_config() const override {
    return std::make_unique<RandomForest>(config_);
  }

  std::size_t tree_count() const { return trees_.size(); }
  /// Per-class vote fractions (sums to 1 once fitted).
  std::vector<double> vote_fractions(std::span<const double> x) const;

 private:
  ForestConfig config_;
  std::vector<DecisionTree> trees_;
  int num_classes_ = 0;
};

}  // namespace fiat::ml
