// Naive Bayes classifiers.
//
// BernoulliNB is the classifier FIAT actually deploys at the proxy (§6,
// footnote 2: "we choose the BernoulliNB model with default parameters of
// sklearn"), so it matches sklearn's defaults: binarize threshold 0.0,
// Laplace smoothing alpha 1.0, fitted class priors. GaussianNB appears in
// the Table 2 model sweep.
#pragma once

#include "ml/dataset.hpp"
#include "util/bytes.hpp"

namespace fiat::ml {

class BernoulliNB : public Classifier {
 public:
  explicit BernoulliNB(double alpha = 1.0, double binarize = 0.0)
      : alpha_(alpha), binarize_(binarize) {}

  void fit(const Dataset& data) override;
  int predict(std::span<const double> x) const override;
  std::string name() const override { return "BernoulliNB"; }
  std::unique_ptr<Classifier> clone_config() const override {
    return std::make_unique<BernoulliNB>(alpha_, binarize_);
  }

  /// Per-class log-likelihoods (exposed for calibration experiments).
  std::vector<double> log_scores(std::span<const double> x) const;

  /// Serialization (model distribution, §7 "Road to Production"): writes /
  /// restores the fitted parameters. load() throws fiat::ParseError on
  /// malformed input.
  void save(util::ByteWriter& w) const;
  static BernoulliNB load(util::ByteReader& r);

 private:
  double alpha_;
  double binarize_;
  std::vector<double> log_prior_;
  std::vector<Row> log_p_;      // log P(feature=1 | class)
  std::vector<Row> log_not_p_;  // log P(feature=0 | class)
  std::vector<bool> class_present_;
};

class GaussianNB : public Classifier {
 public:
  explicit GaussianNB(double var_smoothing = 1e-9) : var_smoothing_(var_smoothing) {}

  void fit(const Dataset& data) override;
  int predict(std::span<const double> x) const override;
  std::string name() const override { return "GaussianNB"; }
  std::unique_ptr<Classifier> clone_config() const override {
    return std::make_unique<GaussianNB>(var_smoothing_);
  }

 private:
  double var_smoothing_;
  std::vector<double> log_prior_;
  std::vector<Row> mean_;
  std::vector<Row> var_;
  std::vector<bool> class_present_;
};

}  // namespace fiat::ml
