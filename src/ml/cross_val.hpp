// Stratified k-fold cross-validation (the paper reports 5-fold CV means,
// §4.2) plus train/test splitting helpers.
#pragma once

#include <functional>

#include "ml/dataset.hpp"
#include "ml/metrics.hpp"
#include "sim/rng.hpp"

namespace fiat::ml {

/// Index pairs for one fold.
struct FoldSplit {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Stratified folds: each fold's class mix approximates the full dataset's.
/// Shuffling is seeded for reproducibility.
std::vector<FoldSplit> stratified_kfold(const Dataset& data, std::size_t k,
                                        std::uint64_t seed);

/// Stratified single split; `test_fraction` of each class goes to test.
FoldSplit stratified_split(const Dataset& data, double test_fraction,
                           std::uint64_t seed);

struct CvResult {
  std::vector<double> fold_balanced_accuracy;
  std::vector<PrfScore> fold_prf;  // for `prf_class` if >= 0
  double mean_balanced_accuracy = 0.0;
  PrfScore mean_prf;

  // Pooled over all folds' test predictions (for confusion inspection).
  std::vector<int> truth;
  std::vector<int> predicted;
};

/// Runs k-fold CV: per fold, fits a scaler + a fresh clone of `model` on the
/// training split (scaling is fitted on train only, as the paper's
/// methodology requires) and evaluates on the test split.
/// `prf_class` selects the class whose precision/recall/F1 is tracked
/// (e.g. the "manual" class); pass -1 to skip.
CvResult cross_validate(const Classifier& model, const Dataset& data,
                        std::size_t k, std::uint64_t seed, int prf_class = -1,
                        bool scale = true);

/// Train on `train_data`, test on `test_data` (transfer experiments,
/// Table 5). Scaler fitted on the training set.
CvResult train_test_evaluate(const Classifier& model, const Dataset& train_data,
                             const Dataset& test_data, int prf_class = -1,
                             bool scale = true);

}  // namespace fiat::ml
