#include "ml/adaboost.hpp"

#include <cmath>

#include "util/error.hpp"

namespace fiat::ml {

void AdaBoost::fit(const Dataset& data) {
  data.validate();
  if (data.size() == 0) throw LogicError("AdaBoost::fit on empty dataset");
  num_classes_ = data.num_classes();
  estimators_.clear();
  alphas_.clear();

  std::vector<double> weights(data.size(), 1.0 / static_cast<double>(data.size()));
  TreeConfig tree_config;
  tree_config.max_depth = config_.base_depth;

  for (std::size_t round = 0; round < config_.n_estimators; ++round) {
    DecisionTree tree(tree_config);
    tree.fit_weighted(data, weights, nullptr);

    double err = 0.0;
    std::vector<bool> wrong(data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
      wrong[i] = tree.predict(data.X[i]) != data.y[i];
      if (wrong[i]) err += weights[i];
    }

    if (err <= 1e-12) {
      // Perfect learner: give it a large fixed weight and stop boosting.
      estimators_.push_back(std::move(tree));
      alphas_.push_back(10.0);
      break;
    }
    // SAMME stopping rule: a learner no better than chance ends boosting.
    double chance = 1.0 - 1.0 / static_cast<double>(num_classes_);
    if (err >= chance) {
      if (estimators_.empty()) {  // keep at least one estimator
        estimators_.push_back(std::move(tree));
        alphas_.push_back(1.0);
      }
      break;
    }

    double alpha = config_.learning_rate *
                   (std::log((1.0 - err) / err) + std::log(num_classes_ - 1.0));
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (wrong[i]) weights[i] *= std::exp(alpha);
    }
    double total = 0.0;
    for (double w : weights) total += w;
    for (double& w : weights) w /= total;

    estimators_.push_back(std::move(tree));
    alphas_.push_back(alpha);
  }
}

int AdaBoost::predict(std::span<const double> x) const {
  if (estimators_.empty()) throw LogicError("AdaBoost used before fit");
  std::vector<double> scores(static_cast<std::size_t>(num_classes_), 0.0);
  for (std::size_t e = 0; e < estimators_.size(); ++e) {
    int label = estimators_[e].predict(x);
    if (label >= 0 && label < num_classes_) {
      scores[static_cast<std::size_t>(label)] += alphas_[e];
    }
  }
  int best = 0;
  for (int c = 1; c < num_classes_; ++c) {
    if (scores[static_cast<std::size_t>(c)] > scores[static_cast<std::size_t>(best)]) {
      best = c;
    }
  }
  return best;
}

std::string AdaBoost::name() const {
  return "AdaBoost(n=" + std::to_string(config_.n_estimators) + ")";
}

}  // namespace fiat::ml
