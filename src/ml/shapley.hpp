// Monte-Carlo Shapley value estimation for feature attribution — the §7
// future-work item ("other techniques such as SHAP [65, 72] would help to
// verify/measure the effectiveness of each feature"), implemented after the
// cited Štrumbelj & Kononenko sampling algorithm.
//
// For a value function v (e.g. the model's probability of the "manual"
// class) and an instance x, each feature's Shapley value is estimated by
// sampling random permutations and background rows: features "absent" from a
// coalition take their value from a random background instance.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/naive_bayes.hpp"
#include "sim/rng.hpp"

namespace fiat::ml {

using ValueFn = std::function<double(std::span<const double>)>;

struct ShapleyAttribution {
  std::size_t feature = 0;
  std::string name;
  double value = 0.0;  // signed contribution to v(x) - E[v]
};

/// Estimates per-feature Shapley values of `v` at `instance`, using rows of
/// `background` to marginalize absent features. `n_permutations` random
/// permutations (each touching every feature once). Returns attributions in
/// feature order (not sorted).
std::vector<ShapleyAttribution> shapley_values(const ValueFn& v,
                                               const Dataset& background,
                                               const Row& instance,
                                               std::size_t n_permutations,
                                               std::uint64_t seed);

/// Value function adaptor: BernoulliNB's (softmaxed) probability of `cls`.
ValueFn bernoulli_nb_probability(const BernoulliNB& model, int cls);

/// Efficiency check helper: sum of attributions should equal
/// v(instance) - mean_background(v). Exposed for tests/benches.
double shapley_efficiency_gap(const std::vector<ShapleyAttribution>& attributions,
                              const ValueFn& v, const Dataset& background,
                              const Row& instance);

}  // namespace fiat::ml
