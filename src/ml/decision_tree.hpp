// CART decision tree (Gini impurity, axis-aligned splits).
//
// Used three ways in the reproduction: directly in the Table 2 sweep (best
// max_depth 3 per §4.1), as the base learner for RandomForest and AdaBoost,
// and at depth 9 as FIAT's humanness validator (§5.4, following zkSENSE).
// Supports per-sample weights so AdaBoost can reweight between rounds.
#pragma once

#include <cstdint>
#include <optional>

#include "ml/dataset.hpp"
#include "util/bytes.hpp"
#include "sim/rng.hpp"

namespace fiat::ml {

struct TreeConfig {
  int max_depth = 10;
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Number of features examined per split; 0 = all. RandomForest sets
  /// sqrt(d) and supplies an Rng for the subsampling.
  std::size_t max_features = 0;
};

class DecisionTree : public Classifier {
 public:
  explicit DecisionTree(TreeConfig config = {}) : config_(config) {}

  void fit(const Dataset& data) override;
  /// Weighted fit; `weights` must sum to a positive value.
  void fit_weighted(const Dataset& data, std::span<const double> weights,
                    sim::Rng* feature_rng = nullptr);
  int predict(std::span<const double> x) const override;
  std::string name() const override;
  std::unique_ptr<Classifier> clone_config() const override {
    return std::make_unique<DecisionTree>(config_);
  }

  int depth() const;
  std::size_t node_count() const { return nodes_.size(); }
  const TreeConfig& config() const { return config_; }

  /// Serialization for model distribution (§7).
  void save(util::ByteWriter& w) const;
  static DecisionTree load(util::ByteReader& r);

 private:
  struct Node {
    bool leaf = true;
    int label = 0;               // for leaves
    std::size_t feature = 0;     // for internal nodes
    double threshold = 0.0;      // go left if x[feature] <= threshold
    std::int32_t left = -1;
    std::int32_t right = -1;
  };

  std::int32_t build(const Dataset& data, std::span<const double> weights,
                     std::vector<std::size_t>& indices, int depth,
                     sim::Rng* feature_rng);
  int depth_of(std::int32_t node) const;

  TreeConfig config_;
  std::vector<Node> nodes_;
  int num_classes_ = 0;
};

}  // namespace fiat::ml
