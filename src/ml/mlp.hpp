// Multi-layer perceptron: configurable hidden layers (the paper swept 1-10
// layers of width 128, best at 8; §4.1), ReLU activations, softmax output,
// cross-entropy loss, mini-batch SGD with momentum.
#pragma once

#include "ml/dataset.hpp"
#include "sim/rng.hpp"

namespace fiat::ml {

struct MlpConfig {
  std::vector<std::size_t> hidden_layers = {128, 128};
  double learning_rate = 0.01;
  double momentum = 0.9;
  std::size_t epochs = 60;
  std::size_t batch_size = 16;
  std::uint64_t seed = 1234;
};

class Mlp : public Classifier {
 public:
  explicit Mlp(MlpConfig config = {}) : config_(config) {}

  void fit(const Dataset& data) override;
  int predict(std::span<const double> x) const override;
  std::string name() const override;
  std::unique_ptr<Classifier> clone_config() const override {
    return std::make_unique<Mlp>(config_);
  }

  /// Softmax class probabilities.
  std::vector<double> predict_proba(std::span<const double> x) const;

 private:
  struct Layer {
    std::size_t in = 0, out = 0;
    std::vector<double> w;   // row-major out x in
    std::vector<double> b;
    std::vector<double> vw;  // momentum buffers
    std::vector<double> vb;
  };

  std::vector<double> forward(std::span<const double> x,
                              std::vector<std::vector<double>>* activations) const;

  MlpConfig config_;
  std::vector<Layer> layers_;
  int num_classes_ = 0;
};

}  // namespace fiat::ml
