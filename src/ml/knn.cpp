#include "ml/knn.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fiat::ml {

void Knn::fit(const Dataset& data) {
  data.validate();
  if (data.size() == 0) throw LogicError("Knn::fit on empty dataset");
  if (k_ == 0) throw LogicError("Knn: k must be >= 1");
  train_ = data;
  num_classes_ = data.num_classes();
}

int Knn::predict(std::span<const double> x) const {
  if (train_.size() == 0) throw LogicError("Knn used before fit");
  std::size_t k = std::min(k_, train_.size());

  // Partial selection of the k nearest (distance, label) pairs.
  std::vector<std::pair<double, int>> dists;
  dists.reserve(train_.size());
  for (std::size_t i = 0; i < train_.size(); ++i) {
    dists.emplace_back(vector_distance(metric_, x, train_.X[i]), train_.y[i]);
  }
  std::nth_element(dists.begin(), dists.begin() + static_cast<long>(k - 1), dists.end());

  std::vector<int> votes(static_cast<std::size_t>(num_classes_), 0);
  for (std::size_t i = 0; i < k; ++i) {
    votes[static_cast<std::size_t>(dists[i].second)]++;
  }
  int best = 0;
  for (int c = 1; c < num_classes_; ++c) {
    if (votes[static_cast<std::size_t>(c)] > votes[static_cast<std::size_t>(best)]) best = c;
  }
  return best;
}

std::string Knn::name() const {
  return "kNN(k=" + std::to_string(k_) + "," + distance_name(metric_) + ")";
}

}  // namespace fiat::ml
