// Permutation feature importance (§4.3 / Table 4): for each feature, shuffle
// its values across the evaluation rows and measure how much the model's F1
// for the class of interest drops. Averaged over `n_repeats` shuffles (the
// paper uses 50).
#pragma once

#include <string>

#include "ml/dataset.hpp"
#include "sim/rng.hpp"

namespace fiat::ml {

struct FeatureImportance {
  std::size_t feature = 0;
  std::string name;
  double importance = 0.0;  // baseline score minus mean permuted score
};

/// `model` must already be fitted on data in the same feature space as
/// `eval_data` (including any scaling). Returns importances sorted
/// descending. `score_class`: class whose F1 is the score (e.g. manual);
/// pass -1 to use balanced accuracy instead.
std::vector<FeatureImportance> permutation_importance(
    const Classifier& model, const Dataset& eval_data, int score_class,
    std::size_t n_repeats, std::uint64_t seed);

}  // namespace fiat::ml
