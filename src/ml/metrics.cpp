#include "ml/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "util/error.hpp"

namespace fiat::ml {

ConfusionMatrix::ConfusionMatrix(int num_classes) : num_classes_(num_classes) {
  if (num_classes <= 0) throw LogicError("ConfusionMatrix: need >= 1 class");
  cells_.assign(static_cast<std::size_t>(num_classes) * num_classes, 0);
}

ConfusionMatrix::ConfusionMatrix(std::span<const int> truth,
                                 std::span<const int> predicted, int num_classes)
    : ConfusionMatrix(num_classes) {
  if (truth.size() != predicted.size()) {
    throw LogicError("ConfusionMatrix: truth/prediction size mismatch");
  }
  for (std::size_t i = 0; i < truth.size(); ++i) add(truth[i], predicted[i]);
}

void ConfusionMatrix::add(int truth, int predicted) {
  if (truth < 0 || truth >= num_classes_ || predicted < 0 || predicted >= num_classes_) {
    throw LogicError("ConfusionMatrix: label out of range");
  }
  cells_[static_cast<std::size_t>(truth) * num_classes_ + predicted]++;
  ++total_;
}

std::size_t ConfusionMatrix::count(int truth, int predicted) const {
  return cells_[static_cast<std::size_t>(truth) * num_classes_ + predicted];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t correct = 0;
  for (int c = 0; c < num_classes_; ++c) correct += count(c, c);
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::balanced_accuracy() const {
  double sum = 0.0;
  int present = 0;
  for (int c = 0; c < num_classes_; ++c) {
    std::size_t row_total = 0;
    for (int p = 0; p < num_classes_; ++p) row_total += count(c, p);
    if (row_total == 0) continue;
    sum += static_cast<double>(count(c, c)) / static_cast<double>(row_total);
    ++present;
  }
  return present == 0 ? 0.0 : sum / present;
}

double ConfusionMatrix::precision(int cls) const {
  std::size_t col_total = 0;
  for (int t = 0; t < num_classes_; ++t) col_total += count(t, cls);
  if (col_total == 0) return 0.0;
  return static_cast<double>(count(cls, cls)) / static_cast<double>(col_total);
}

double ConfusionMatrix::recall(int cls) const {
  std::size_t row_total = 0;
  for (int p = 0; p < num_classes_; ++p) row_total += count(cls, p);
  if (row_total == 0) return 0.0;
  return static_cast<double>(count(cls, cls)) / static_cast<double>(row_total);
}

double ConfusionMatrix::f1(int cls) const {
  double p = precision(cls);
  double r = recall(cls);
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double ConfusionMatrix::macro_f1() const {
  double sum = 0.0;
  int present = 0;
  for (int c = 0; c < num_classes_; ++c) {
    std::size_t row_total = 0;
    for (int p = 0; p < num_classes_; ++p) row_total += count(c, p);
    if (row_total == 0) continue;
    sum += f1(c);
    ++present;
  }
  return present == 0 ? 0.0 : sum / present;
}

std::string ConfusionMatrix::to_string(std::span<const std::string> class_names) const {
  std::string out = "truth\\pred";
  for (int p = 0; p < num_classes_; ++p) {
    out += "\t";
    out += (static_cast<std::size_t>(p) < class_names.size())
               ? class_names[p]
               : ("c" + std::to_string(p));
  }
  out += "\n";
  for (int t = 0; t < num_classes_; ++t) {
    out += (static_cast<std::size_t>(t) < class_names.size())
               ? class_names[t]
               : ("c" + std::to_string(t));
    for (int p = 0; p < num_classes_; ++p) {
      out += "\t" + std::to_string(count(t, p));
    }
    out += "\n";
  }
  return out;
}

PrfScore prf_for_class(std::span<const int> truth, std::span<const int> predicted,
                       int cls, int num_classes) {
  ConfusionMatrix cm(truth, predicted, num_classes);
  return PrfScore{cm.precision(cls), cm.recall(cls), cm.f1(cls)};
}

}  // namespace fiat::ml
