#include "ml/random_forest.hpp"

#include <cmath>

#include "util/error.hpp"

namespace fiat::ml {

void RandomForest::fit(const Dataset& data) {
  data.validate();
  if (data.size() == 0) throw LogicError("RandomForest::fit on empty dataset");
  num_classes_ = data.num_classes();
  trees_.clear();
  trees_.reserve(config_.n_trees);
  sim::Rng rng(config_.seed);

  TreeConfig tree_config;
  tree_config.max_depth = config_.max_depth;
  tree_config.min_samples_leaf = config_.min_samples_leaf;
  tree_config.max_features = static_cast<std::size_t>(
      std::max(1.0, std::floor(std::sqrt(static_cast<double>(data.dim())))));

  std::vector<double> weights(data.size());
  for (std::size_t t = 0; t < config_.n_trees; ++t) {
    // Bootstrap as multiplicity weights (equivalent to resampling rows and
    // cheaper than copying the dataset per tree).
    std::fill(weights.begin(), weights.end(), 0.0);
    for (std::size_t i = 0; i < data.size(); ++i) {
      auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(data.size()) - 1));
      weights[pick] += 1.0;
    }
    // Guarantee at least one sample of some class remains in play.
    bool any = false;
    for (double w : weights) {
      if (w > 0) { any = true; break; }
    }
    if (!any) weights[0] = 1.0;

    sim::Rng tree_rng = rng.fork();
    DecisionTree tree(tree_config);
    tree.fit_weighted(data, weights, &tree_rng);
    trees_.push_back(std::move(tree));
  }
}

std::vector<double> RandomForest::vote_fractions(std::span<const double> x) const {
  if (trees_.empty()) throw LogicError("RandomForest used before fit");
  std::vector<double> votes(static_cast<std::size_t>(num_classes_), 0.0);
  for (const auto& tree : trees_) {
    int label = tree.predict(x);
    if (label >= 0 && label < num_classes_) votes[static_cast<std::size_t>(label)] += 1.0;
  }
  for (auto& v : votes) v /= static_cast<double>(trees_.size());
  return votes;
}

int RandomForest::predict(std::span<const double> x) const {
  auto votes = vote_fractions(x);
  int best = 0;
  for (int c = 1; c < num_classes_; ++c) {
    if (votes[static_cast<std::size_t>(c)] > votes[static_cast<std::size_t>(best)]) best = c;
  }
  return best;
}

std::string RandomForest::name() const {
  return "RandomForest(n=" + std::to_string(config_.n_trees) + ")";
}

}  // namespace fiat::ml
