#include "ml/naive_bayes.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace fiat::ml {

void BernoulliNB::fit(const Dataset& data) {
  data.validate();
  if (data.size() == 0) throw LogicError("BernoulliNB::fit on empty dataset");
  int k = data.num_classes();
  std::size_t d = data.dim();
  std::vector<std::size_t> counts(static_cast<std::size_t>(k), 0);
  std::vector<Row> ones(static_cast<std::size_t>(k), Row(d, 0.0));
  for (std::size_t i = 0; i < data.size(); ++i) {
    auto cls = static_cast<std::size_t>(data.y[i]);
    counts[cls]++;
    for (std::size_t j = 0; j < d; ++j) {
      if (data.X[i][j] > binarize_) ones[cls][j] += 1.0;
    }
  }
  log_prior_.assign(static_cast<std::size_t>(k), 0.0);
  log_p_.assign(static_cast<std::size_t>(k), Row(d, 0.0));
  log_not_p_.assign(static_cast<std::size_t>(k), Row(d, 0.0));
  class_present_.assign(static_cast<std::size_t>(k), false);
  for (std::size_t c = 0; c < counts.size(); ++c) {
    if (counts[c] == 0) continue;
    class_present_[c] = true;
    log_prior_[c] = std::log(static_cast<double>(counts[c]) /
                             static_cast<double>(data.size()));
    double denom = static_cast<double>(counts[c]) + 2.0 * alpha_;
    for (std::size_t j = 0; j < d; ++j) {
      double p = (ones[c][j] + alpha_) / denom;
      log_p_[c][j] = std::log(p);
      log_not_p_[c][j] = std::log(1.0 - p);
    }
  }
}

std::vector<double> BernoulliNB::log_scores(std::span<const double> x) const {
  if (log_p_.empty()) throw LogicError("BernoulliNB used before fit");
  std::vector<double> scores(log_p_.size(), -std::numeric_limits<double>::infinity());
  for (std::size_t c = 0; c < log_p_.size(); ++c) {
    if (!class_present_[c]) continue;
    double s = log_prior_[c];
    for (std::size_t j = 0; j < x.size(); ++j) {
      s += (x[j] > binarize_) ? log_p_[c][j] : log_not_p_[c][j];
    }
    scores[c] = s;
  }
  return scores;
}

int BernoulliNB::predict(std::span<const double> x) const {
  auto scores = log_scores(x);
  int best = 0;
  for (std::size_t c = 1; c < scores.size(); ++c) {
    if (scores[c] > scores[static_cast<std::size_t>(best)]) best = static_cast<int>(c);
  }
  return best;
}

void GaussianNB::fit(const Dataset& data) {
  data.validate();
  if (data.size() == 0) throw LogicError("GaussianNB::fit on empty dataset");
  int k = data.num_classes();
  std::size_t d = data.dim();
  std::vector<std::size_t> counts(static_cast<std::size_t>(k), 0);
  mean_.assign(static_cast<std::size_t>(k), Row(d, 0.0));
  var_.assign(static_cast<std::size_t>(k), Row(d, 0.0));
  class_present_.assign(static_cast<std::size_t>(k), false);
  log_prior_.assign(static_cast<std::size_t>(k), 0.0);

  for (std::size_t i = 0; i < data.size(); ++i) {
    auto cls = static_cast<std::size_t>(data.y[i]);
    counts[cls]++;
    for (std::size_t j = 0; j < d; ++j) mean_[cls][j] += data.X[i][j];
  }
  for (std::size_t c = 0; c < counts.size(); ++c) {
    if (counts[c] == 0) continue;
    for (auto& v : mean_[c]) v /= static_cast<double>(counts[c]);
  }
  // Global max variance drives the smoothing floor (as sklearn does).
  double max_var = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    auto cls = static_cast<std::size_t>(data.y[i]);
    for (std::size_t j = 0; j < d; ++j) {
      double diff = data.X[i][j] - mean_[cls][j];
      var_[cls][j] += diff * diff;
    }
  }
  for (std::size_t c = 0; c < counts.size(); ++c) {
    if (counts[c] == 0) continue;
    class_present_[c] = true;
    log_prior_[c] = std::log(static_cast<double>(counts[c]) /
                             static_cast<double>(data.size()));
    for (auto& v : var_[c]) {
      v /= static_cast<double>(counts[c]);
      max_var = std::max(max_var, v);
    }
  }
  double floor = var_smoothing_ * (max_var > 0 ? max_var : 1.0);
  for (std::size_t c = 0; c < var_.size(); ++c) {
    if (!class_present_[c]) continue;
    for (auto& v : var_[c]) v += floor;
  }
}

int GaussianNB::predict(std::span<const double> x) const {
  if (mean_.empty()) throw LogicError("GaussianNB used before fit");
  int best = -1;
  double best_score = -std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < mean_.size(); ++c) {
    if (!class_present_[c]) continue;
    double s = log_prior_[c];
    for (std::size_t j = 0; j < x.size(); ++j) {
      double diff = x[j] - mean_[c][j];
      s += -0.5 * std::log(2.0 * M_PI * var_[c][j]) - diff * diff / (2.0 * var_[c][j]);
    }
    if (s > best_score) {
      best_score = s;
      best = static_cast<int>(c);
    }
  }
  return best;
}

}  // namespace fiat::ml
