// Nearest Centroid Classifier — the best model in the paper's Table 2
// (mean balanced accuracy 0.931 with Chebyshev distance, §4.1).
#pragma once

#include "ml/dataset.hpp"

namespace fiat::ml {

enum class Distance { kEuclidean, kManhattan, kChebyshev };

const char* distance_name(Distance d);

/// Computes the distance between two equal-length vectors.
double vector_distance(Distance metric, std::span<const double> a,
                       std::span<const double> b);

class NearestCentroid : public Classifier {
 public:
  explicit NearestCentroid(Distance metric = Distance::kChebyshev)
      : metric_(metric) {}

  void fit(const Dataset& data) override;
  int predict(std::span<const double> x) const override;
  std::string name() const override;
  std::unique_ptr<Classifier> clone_config() const override;

  const std::vector<Row>& centroids() const { return centroids_; }

 private:
  Distance metric_;
  std::vector<Row> centroids_;       // index = class label
  std::vector<bool> class_present_;  // classes with no training rows are skipped
};

}  // namespace fiat::ml
