// Linear support vector classifier: one-vs-rest hinge loss with L2
// regularization, trained by SGD (Pegasos-style schedule). Table 2 baseline.
#pragma once

#include "ml/dataset.hpp"
#include "sim/rng.hpp"

namespace fiat::ml {

struct SvcConfig {
  double reg_lambda = 1e-3;
  std::size_t epochs = 50;
  std::uint64_t seed = 7;
};

class LinearSvc : public Classifier {
 public:
  explicit LinearSvc(SvcConfig config = {}) : config_(config) {}

  void fit(const Dataset& data) override;
  int predict(std::span<const double> x) const override;
  std::string name() const override { return "LinearSVC"; }
  std::unique_ptr<Classifier> clone_config() const override {
    return std::make_unique<LinearSvc>(config_);
  }

  /// Raw decision value for class `cls` (margin; larger = more confident).
  double decision(int cls, std::span<const double> x) const;

 private:
  SvcConfig config_;
  std::vector<Row> weights_;  // one weight vector per class
  std::vector<double> bias_;
  int num_classes_ = 0;
};

}  // namespace fiat::ml
