#include "ml/shapley.hpp"

#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace fiat::ml {

std::vector<ShapleyAttribution> shapley_values(const ValueFn& v,
                                               const Dataset& background,
                                               const Row& instance,
                                               std::size_t n_permutations,
                                               std::uint64_t seed) {
  if (!v) throw LogicError("shapley_values: empty value function");
  if (background.size() == 0) throw LogicError("shapley_values: empty background");
  if (background.dim() != instance.size()) {
    throw LogicError("shapley_values: dimension mismatch");
  }
  if (n_permutations == 0) throw LogicError("shapley_values: need >= 1 permutation");

  const std::size_t d = instance.size();
  sim::Rng rng(seed);
  std::vector<double> phi(d, 0.0);
  std::vector<std::size_t> perm(d);
  std::iota(perm.begin(), perm.end(), 0);

  for (std::size_t p = 0; p < n_permutations; ++p) {
    rng.shuffle(perm);
    // Start from a random background row; walk the permutation, switching
    // one feature at a time to the instance's value. Each switch's marginal
    // effect is that feature's contribution under this coalition ordering.
    const Row& bg = background.X[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(background.size()) - 1))];
    Row current = bg;
    double prev = v(current);
    for (std::size_t feature : perm) {
      current[feature] = instance[feature];
      double next = v(current);
      phi[feature] += next - prev;
      prev = next;
    }
  }

  std::vector<ShapleyAttribution> out;
  out.reserve(d);
  for (std::size_t f = 0; f < d; ++f) {
    ShapleyAttribution a;
    a.feature = f;
    a.name = f < background.feature_names.size() ? background.feature_names[f]
                                                 : ("f" + std::to_string(f));
    a.value = phi[f] / static_cast<double>(n_permutations);
    out.push_back(std::move(a));
  }
  return out;
}

ValueFn bernoulli_nb_probability(const BernoulliNB& model, int cls) {
  return [&model, cls](std::span<const double> x) {
    auto scores = model.log_scores(x);
    double max_s = scores[0];
    for (double s : scores) max_s = std::max(max_s, s);
    double denom = 0.0;
    for (double s : scores) denom += std::exp(s - max_s);
    return std::exp(scores[static_cast<std::size_t>(cls)] - max_s) / denom;
  };
}

double shapley_efficiency_gap(const std::vector<ShapleyAttribution>& attributions,
                              const ValueFn& v, const Dataset& background,
                              const Row& instance) {
  double sum_phi = 0.0;
  for (const auto& a : attributions) sum_phi += a.value;
  double mean_bg = 0.0;
  for (const auto& row : background.X) mean_bg += v(row);
  mean_bg /= static_cast<double>(background.size());
  return std::fabs(sum_phi - (v(instance) - mean_bg));
}

}  // namespace fiat::ml
