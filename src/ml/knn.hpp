// k-nearest-neighbours classifier (Table 2 baseline; the paper found k=5
// with Euclidean distance best, and still the weakest model at 0.621).
#pragma once

#include "ml/dataset.hpp"
#include "ml/nearest_centroid.hpp"  // Distance + vector_distance

namespace fiat::ml {

class Knn : public Classifier {
 public:
  explicit Knn(std::size_t k = 5, Distance metric = Distance::kEuclidean)
      : k_(k), metric_(metric) {}

  void fit(const Dataset& data) override;
  int predict(std::span<const double> x) const override;
  std::string name() const override;
  std::unique_ptr<Classifier> clone_config() const override {
    return std::make_unique<Knn>(k_, metric_);
  }

 private:
  std::size_t k_;
  Distance metric_;
  Dataset train_;
  int num_classes_ = 0;
};

}  // namespace fiat::ml
