#include "ml/linear_svc.hpp"

#include <numeric>

#include "util/error.hpp"

namespace fiat::ml {

void LinearSvc::fit(const Dataset& data) {
  data.validate();
  if (data.size() == 0) throw LogicError("LinearSvc::fit on empty dataset");
  num_classes_ = data.num_classes();
  std::size_t d = data.dim();
  weights_.assign(static_cast<std::size_t>(num_classes_), Row(d, 0.0));
  bias_.assign(static_cast<std::size_t>(num_classes_), 0.0);

  sim::Rng rng(config_.seed);
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  // Pegasos: step size 1/(lambda * t) with projection implied by the decay.
  std::size_t t = 1;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t i : order) {
      double eta = 1.0 / (config_.reg_lambda * static_cast<double>(t++));
      for (int c = 0; c < num_classes_; ++c) {
        auto& w = weights_[static_cast<std::size_t>(c)];
        double target = (data.y[i] == c) ? 1.0 : -1.0;
        double margin = bias_[static_cast<std::size_t>(c)];
        for (std::size_t j = 0; j < d; ++j) margin += w[j] * data.X[i][j];
        margin *= target;
        // L2 shrink then hinge subgradient step.
        double shrink = 1.0 - eta * config_.reg_lambda;
        if (shrink < 0) shrink = 0;
        for (std::size_t j = 0; j < d; ++j) w[j] *= shrink;
        if (margin < 1.0) {
          for (std::size_t j = 0; j < d; ++j) w[j] += eta * target * data.X[i][j];
          bias_[static_cast<std::size_t>(c)] += eta * target;
        }
      }
    }
  }
}

double LinearSvc::decision(int cls, std::span<const double> x) const {
  if (weights_.empty()) throw LogicError("LinearSvc used before fit");
  const auto& w = weights_[static_cast<std::size_t>(cls)];
  double v = bias_[static_cast<std::size_t>(cls)];
  for (std::size_t j = 0; j < x.size() && j < w.size(); ++j) v += w[j] * x[j];
  return v;
}

int LinearSvc::predict(std::span<const double> x) const {
  if (weights_.empty()) throw LogicError("LinearSvc used before fit");
  int best = 0;
  double best_score = decision(0, x);
  for (int c = 1; c < num_classes_; ++c) {
    double s = decision(c, x);
    if (s > best_score) {
      best_score = s;
      best = c;
    }
  }
  return best;
}

}  // namespace fiat::ml
