#include "ml/lstm.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace fiat::ml {

namespace {

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

void softmax_inplace(std::vector<double>& v) {
  double max_v = *std::max_element(v.begin(), v.end());
  double sum = 0.0;
  for (double& x : v) {
    x = std::exp(x - max_v);
    sum += x;
  }
  for (double& x : v) x /= sum;
}

void clip(std::vector<double>& grad, double limit) {
  double norm_sq = 0.0;
  for (double g : grad) norm_sq += g * g;
  double norm = std::sqrt(norm_sq);
  if (norm > limit && norm > 0) {
    double scale = limit / norm;
    for (double& g : grad) g *= scale;
  }
}

}  // namespace

int SequenceDataset::num_classes() const {
  int max_label = -1;
  for (const auto& item : items) max_label = std::max(max_label, item.label);
  return max_label + 1;
}

std::vector<LstmClassifier::Gates> LstmClassifier::forward(
    const Sequence& seq, std::vector<double>* logits) const {
  const std::size_t H = config_.hidden;
  const std::size_t In = input_dim_;
  std::vector<Gates> cache;
  std::vector<double> h(H, 0.0), c(H, 0.0);

  std::size_t steps = std::min(seq.steps.size(), config_.max_steps);
  for (std::size_t t = 0; t < steps; ++t) {
    Gates g;
    g.x = seq.steps[t];
    g.x.resize(In, 0.0);  // tolerate short rows
    g.i.resize(H);
    g.f.resize(H);
    g.o.resize(H);
    g.g.resize(H);
    g.c.resize(H);
    g.h.resize(H);
    for (std::size_t j = 0; j < H; ++j) {
      // Pre-activations for the four gates of unit j.
      double pre[4];
      for (int gate = 0; gate < 4; ++gate) {
        std::size_t row = static_cast<std::size_t>(gate) * H + j;
        double sum = b_gates_[row];
        const double* w = &w_gates_[row * (In + H)];
        for (std::size_t k = 0; k < In; ++k) sum += w[k] * g.x[k];
        for (std::size_t k = 0; k < H; ++k) sum += w[In + k] * h[k];
        pre[gate] = sum;
      }
      g.i[j] = sigmoid(pre[0]);
      g.f[j] = sigmoid(pre[1]);
      g.o[j] = sigmoid(pre[2]);
      g.g[j] = std::tanh(pre[3]);
      g.c[j] = g.f[j] * c[j] + g.i[j] * g.g[j];
      g.h[j] = g.o[j] * std::tanh(g.c[j]);
    }
    h = g.h;
    c = g.c;
    cache.push_back(std::move(g));
  }

  if (logits) {
    logits->assign(static_cast<std::size_t>(num_classes_), 0.0);
    for (int cls = 0; cls < num_classes_; ++cls) {
      double sum = b_out_[static_cast<std::size_t>(cls)];
      for (std::size_t k = 0; k < H; ++k) {
        sum += w_out_[static_cast<std::size_t>(cls) * H + k] * h[k];
      }
      (*logits)[static_cast<std::size_t>(cls)] = sum;
    }
  }
  return cache;
}

void LstmClassifier::fit(const SequenceDataset& data) {
  if (data.size() == 0) throw LogicError("LstmClassifier::fit on empty dataset");
  input_dim_ = data.input_dim();
  if (input_dim_ == 0) throw LogicError("LstmClassifier: zero input dimension");
  num_classes_ = data.num_classes();
  const std::size_t H = config_.hidden;
  const std::size_t In = input_dim_;

  sim::Rng rng(config_.seed);
  double scale = 1.0 / std::sqrt(static_cast<double>(In + H));
  w_gates_.resize(4 * H * (In + H));
  for (auto& w : w_gates_) w = rng.normal(0.0, scale);
  b_gates_.assign(4 * H, 0.0);
  // Forget-gate bias starts positive: standard trick for gradient flow.
  for (std::size_t j = 0; j < H; ++j) b_gates_[H + j] = 1.0;
  w_out_.resize(static_cast<std::size_t>(num_classes_) * H);
  for (auto& w : w_out_) w = rng.normal(0.0, 1.0 / std::sqrt(static_cast<double>(H)));
  b_out_.assign(static_cast<std::size_t>(num_classes_), 0.0);

  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t idx : order) {
      const Sequence& seq = data.items[idx];
      if (seq.steps.empty()) continue;
      std::vector<double> logits;
      auto cache = forward(seq, &logits);
      if (cache.empty()) continue;
      softmax_inplace(logits);

      // Output-layer gradients.
      std::vector<double> d_logits = logits;
      d_logits[static_cast<std::size_t>(seq.label)] -= 1.0;
      const auto& h_last = cache.back().h;
      std::vector<double> gw_out(w_out_.size(), 0.0), gb_out(b_out_.size(), 0.0);
      std::vector<double> dh(H, 0.0), dc(H, 0.0);
      for (int cls = 0; cls < num_classes_; ++cls) {
        gb_out[static_cast<std::size_t>(cls)] = d_logits[static_cast<std::size_t>(cls)];
        for (std::size_t k = 0; k < H; ++k) {
          gw_out[static_cast<std::size_t>(cls) * H + k] =
              d_logits[static_cast<std::size_t>(cls)] * h_last[k];
          dh[k] += w_out_[static_cast<std::size_t>(cls) * H + k] *
                   d_logits[static_cast<std::size_t>(cls)];
        }
      }

      // BPTT through the cached steps.
      std::vector<double> gw_gates(w_gates_.size(), 0.0), gb_gates(b_gates_.size(), 0.0);
      for (std::size_t t = cache.size(); t-- > 0;) {
        const Gates& g = cache[t];
        const std::vector<double>* h_prev = t > 0 ? &cache[t - 1].h : nullptr;
        const std::vector<double>* c_prev = t > 0 ? &cache[t - 1].c : nullptr;
        std::vector<double> dh_prev(H, 0.0), dc_prev(H, 0.0);
        for (std::size_t j = 0; j < H; ++j) {
          double tanh_c = std::tanh(g.c[j]);
          double do_ = dh[j] * tanh_c;
          double dcj = dc[j] + dh[j] * g.o[j] * (1.0 - tanh_c * tanh_c);
          double di = dcj * g.g[j];
          double dg = dcj * g.i[j];
          double cp = c_prev ? (*c_prev)[j] : 0.0;
          double df = dcj * cp;
          dc_prev[j] = dcj * g.f[j];

          // Through the gate nonlinearities.
          double d_pre[4] = {di * g.i[j] * (1.0 - g.i[j]),
                             df * g.f[j] * (1.0 - g.f[j]),
                             do_ * g.o[j] * (1.0 - g.o[j]),
                             dg * (1.0 - g.g[j] * g.g[j])};
          for (int gate = 0; gate < 4; ++gate) {
            std::size_t row = static_cast<std::size_t>(gate) * H + j;
            gb_gates[row] += d_pre[gate];
            double* gw = &gw_gates[row * (In + H)];
            const double* w = &w_gates_[row * (In + H)];
            for (std::size_t k = 0; k < In; ++k) gw[k] += d_pre[gate] * g.x[k];
            for (std::size_t k = 0; k < H; ++k) {
              double hp = h_prev ? (*h_prev)[k] : 0.0;
              gw[In + k] += d_pre[gate] * hp;
              dh_prev[k] += d_pre[gate] * w[In + k];
            }
          }
        }
        dh = std::move(dh_prev);
        dc = std::move(dc_prev);
      }

      clip(gw_gates, config_.grad_clip);
      clip(gb_gates, config_.grad_clip);
      clip(gw_out, config_.grad_clip);
      clip(gb_out, config_.grad_clip);
      double lr = config_.learning_rate;
      for (std::size_t k = 0; k < w_gates_.size(); ++k) w_gates_[k] -= lr * gw_gates[k];
      for (std::size_t k = 0; k < b_gates_.size(); ++k) b_gates_[k] -= lr * gb_gates[k];
      for (std::size_t k = 0; k < w_out_.size(); ++k) w_out_[k] -= lr * gw_out[k];
      for (std::size_t k = 0; k < b_out_.size(); ++k) b_out_[k] -= lr * gb_out[k];
    }
  }
}

std::vector<double> LstmClassifier::predict_proba(const Sequence& seq) const {
  if (!trained()) throw LogicError("LstmClassifier used before fit");
  if (seq.steps.empty()) throw LogicError("LstmClassifier: empty sequence");
  std::vector<double> logits;
  forward(seq, &logits);
  softmax_inplace(logits);
  return logits;
}

int LstmClassifier::predict(const Sequence& seq) const {
  auto probs = predict_proba(seq);
  return static_cast<int>(std::max_element(probs.begin(), probs.end()) - probs.begin());
}

}  // namespace fiat::ml
