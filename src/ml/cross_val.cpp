#include "ml/cross_val.hpp"

#include <algorithm>
#include <cmath>

#include "ml/scaler.hpp"
#include "util/error.hpp"

namespace fiat::ml {

std::vector<FoldSplit> stratified_kfold(const Dataset& data, std::size_t k,
                                        std::uint64_t seed) {
  if (k < 2) throw LogicError("stratified_kfold: k must be >= 2");
  data.validate();
  int num_classes = data.num_classes();

  // Shuffle indices within each class, then deal them round-robin to folds.
  sim::Rng rng(seed);
  std::vector<std::vector<std::size_t>> by_class(static_cast<std::size_t>(num_classes));
  for (std::size_t i = 0; i < data.size(); ++i) {
    by_class[static_cast<std::size_t>(data.y[i])].push_back(i);
  }
  std::vector<std::vector<std::size_t>> fold_members(k);
  for (auto& members : by_class) {
    rng.shuffle(members);
    for (std::size_t i = 0; i < members.size(); ++i) {
      fold_members[i % k].push_back(members[i]);
    }
  }

  std::vector<FoldSplit> folds(k);
  for (std::size_t f = 0; f < k; ++f) {
    folds[f].test = fold_members[f];
    std::sort(folds[f].test.begin(), folds[f].test.end());
    for (std::size_t other = 0; other < k; ++other) {
      if (other == f) continue;
      folds[f].train.insert(folds[f].train.end(), fold_members[other].begin(),
                            fold_members[other].end());
    }
    std::sort(folds[f].train.begin(), folds[f].train.end());
  }
  return folds;
}

FoldSplit stratified_split(const Dataset& data, double test_fraction,
                           std::uint64_t seed) {
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    throw LogicError("stratified_split: test_fraction must be in (0,1)");
  }
  data.validate();
  sim::Rng rng(seed);
  std::vector<std::vector<std::size_t>> by_class(
      static_cast<std::size_t>(data.num_classes()));
  for (std::size_t i = 0; i < data.size(); ++i) {
    by_class[static_cast<std::size_t>(data.y[i])].push_back(i);
  }
  FoldSplit split;
  for (auto& members : by_class) {
    rng.shuffle(members);
    auto n_test = static_cast<std::size_t>(
        std::max(1.0, std::round(test_fraction * static_cast<double>(members.size()))));
    if (n_test >= members.size() && members.size() > 1) n_test = members.size() - 1;
    for (std::size_t i = 0; i < members.size(); ++i) {
      (i < n_test ? split.test : split.train).push_back(members[i]);
    }
  }
  std::sort(split.train.begin(), split.train.end());
  std::sort(split.test.begin(), split.test.end());
  return split;
}

namespace {

void evaluate_fold(const Classifier& model, const Dataset& train,
                   const Dataset& test, int prf_class, bool scale,
                   CvResult& result) {
  StandardScaler scaler;
  Dataset train_s = scale ? scaler.fit_transform(train) : train;
  Dataset test_s = scale ? scaler.transform(test) : test;

  auto fitted = model.clone_config();
  fitted->fit(train_s);
  std::vector<int> predicted = fitted->predict_batch(test_s.X);

  int num_classes = std::max(train.num_classes(), test.num_classes());
  ConfusionMatrix cm(test_s.y, predicted, num_classes);
  result.fold_balanced_accuracy.push_back(cm.balanced_accuracy());
  if (prf_class >= 0) {
    result.fold_prf.push_back(prf_for_class(test_s.y, predicted, prf_class, num_classes));
  }
  result.truth.insert(result.truth.end(), test_s.y.begin(), test_s.y.end());
  result.predicted.insert(result.predicted.end(), predicted.begin(), predicted.end());
}

void finalize(CvResult& result) {
  double sum = 0.0;
  for (double b : result.fold_balanced_accuracy) sum += b;
  if (!result.fold_balanced_accuracy.empty()) {
    result.mean_balanced_accuracy = sum / static_cast<double>(result.fold_balanced_accuracy.size());
  }
  if (!result.fold_prf.empty()) {
    for (const auto& prf : result.fold_prf) {
      result.mean_prf.precision += prf.precision;
      result.mean_prf.recall += prf.recall;
      result.mean_prf.f1 += prf.f1;
    }
    auto n = static_cast<double>(result.fold_prf.size());
    result.mean_prf.precision /= n;
    result.mean_prf.recall /= n;
    result.mean_prf.f1 /= n;
  }
}

}  // namespace

CvResult cross_validate(const Classifier& model, const Dataset& data,
                        std::size_t k, std::uint64_t seed, int prf_class,
                        bool scale) {
  CvResult result;
  for (const auto& fold : stratified_kfold(data, k, seed)) {
    evaluate_fold(model, data.subset(fold.train), data.subset(fold.test), prf_class,
                  scale, result);
  }
  finalize(result);
  return result;
}

CvResult train_test_evaluate(const Classifier& model, const Dataset& train_data,
                             const Dataset& test_data, int prf_class, bool scale) {
  CvResult result;
  evaluate_fold(model, train_data, test_data, prf_class, scale, result);
  finalize(result);
  return result;
}

}  // namespace fiat::ml
