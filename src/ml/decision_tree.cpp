#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace fiat::ml {

namespace {

/// Gini impurity from weighted class mass.
double gini(std::span<const double> class_mass, double total) {
  if (total <= 0.0) return 0.0;
  double sum_sq = 0.0;
  for (double m : class_mass) {
    double p = m / total;
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

}  // namespace

void DecisionTree::fit(const Dataset& data) {
  std::vector<double> weights(data.size(), 1.0);
  fit_weighted(data, weights, nullptr);
}

void DecisionTree::fit_weighted(const Dataset& data, std::span<const double> weights,
                                sim::Rng* feature_rng) {
  data.validate();
  if (data.size() == 0) throw LogicError("DecisionTree::fit on empty dataset");
  if (weights.size() != data.size()) throw LogicError("DecisionTree: weight size mismatch");
  nodes_.clear();
  num_classes_ = data.num_classes();
  std::vector<std::size_t> indices(data.size());
  std::iota(indices.begin(), indices.end(), 0);
  build(data, weights, indices, 0, feature_rng);
}

std::int32_t DecisionTree::build(const Dataset& data, std::span<const double> weights,
                                 std::vector<std::size_t>& indices, int depth,
                                 sim::Rng* feature_rng) {
  // Weighted class mass of this node.
  std::vector<double> mass(static_cast<std::size_t>(num_classes_), 0.0);
  double total = 0.0;
  for (std::size_t i : indices) {
    mass[static_cast<std::size_t>(data.y[i])] += weights[i];
    total += weights[i];
  }
  int majority = 0;
  for (int c = 1; c < num_classes_; ++c) {
    if (mass[static_cast<std::size_t>(c)] > mass[static_cast<std::size_t>(majority)]) {
      majority = c;
    }
  }

  auto make_leaf = [&]() -> std::int32_t {
    Node node;
    node.leaf = true;
    node.label = majority;
    nodes_.push_back(node);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  double node_gini = gini(mass, total);
  if (depth >= config_.max_depth || indices.size() < config_.min_samples_split ||
      node_gini <= 1e-12) {
    return make_leaf();
  }

  // Candidate features: all, or a random subset for forests.
  std::size_t d = data.dim();
  std::vector<std::size_t> features(d);
  std::iota(features.begin(), features.end(), 0);
  std::size_t n_features = d;
  if (config_.max_features > 0 && config_.max_features < d) {
    if (!feature_rng) throw LogicError("DecisionTree: max_features needs an Rng");
    feature_rng->shuffle(features);
    n_features = config_.max_features;
  }

  double best_impurity = node_gini;
  std::size_t best_feature = 0;
  double best_threshold = 0.0;
  bool found = false;

  std::vector<std::pair<double, std::size_t>> sorted;  // (value, row index)
  sorted.reserve(indices.size());
  std::vector<double> left_mass(static_cast<std::size_t>(num_classes_));

  for (std::size_t f = 0; f < n_features; ++f) {
    std::size_t feature = features[f];
    sorted.clear();
    for (std::size_t i : indices) sorted.emplace_back(data.X[i][feature], i);
    std::sort(sorted.begin(), sorted.end());

    std::fill(left_mass.begin(), left_mass.end(), 0.0);
    double left_total = 0.0;
    std::size_t left_count = 0;
    for (std::size_t s = 0; s + 1 < sorted.size(); ++s) {
      std::size_t row = sorted[s].second;
      left_mass[static_cast<std::size_t>(data.y[row])] += weights[row];
      left_total += weights[row];
      ++left_count;
      // Only split between distinct feature values.
      if (sorted[s].first == sorted[s + 1].first) continue;
      std::size_t right_count = sorted.size() - left_count;
      if (left_count < config_.min_samples_leaf || right_count < config_.min_samples_leaf) {
        continue;
      }
      double right_total = total - left_total;
      std::vector<double> right_mass(static_cast<std::size_t>(num_classes_));
      for (int c = 0; c < num_classes_; ++c) {
        right_mass[static_cast<std::size_t>(c)] =
            mass[static_cast<std::size_t>(c)] - left_mass[static_cast<std::size_t>(c)];
      }
      double impurity = (left_total * gini(left_mass, left_total) +
                         right_total * gini(right_mass, right_total)) /
                        total;
      if (impurity + 1e-12 < best_impurity) {
        best_impurity = impurity;
        best_feature = feature;
        best_threshold = 0.5 * (sorted[s].first + sorted[s + 1].first);
        found = true;
      }
    }
  }

  if (!found) return make_leaf();

  std::vector<std::size_t> left_idx, right_idx;
  for (std::size_t i : indices) {
    (data.X[i][best_feature] <= best_threshold ? left_idx : right_idx).push_back(i);
  }
  if (left_idx.empty() || right_idx.empty()) return make_leaf();

  // Reserve this node's slot before recursing so children get later indices.
  Node node;
  node.leaf = false;
  node.label = majority;
  node.feature = best_feature;
  node.threshold = best_threshold;
  nodes_.push_back(node);
  auto self = static_cast<std::int32_t>(nodes_.size() - 1);
  std::int32_t left = build(data, weights, left_idx, depth + 1, feature_rng);
  std::int32_t right = build(data, weights, right_idx, depth + 1, feature_rng);
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

int DecisionTree::predict(std::span<const double> x) const {
  if (nodes_.empty()) throw LogicError("DecisionTree used before fit");
  std::int32_t cur = 0;
  while (true) {
    const Node& node = nodes_[static_cast<std::size_t>(cur)];
    if (node.leaf) return node.label;
    if (node.feature >= x.size()) throw LogicError("DecisionTree: input dim too small");
    cur = (x[node.feature] <= node.threshold) ? node.left : node.right;
  }
}

int DecisionTree::depth_of(std::int32_t node) const {
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  if (n.leaf) return 0;
  return 1 + std::max(depth_of(n.left), depth_of(n.right));
}

int DecisionTree::depth() const {
  if (nodes_.empty()) return 0;
  return depth_of(0);
}

std::string DecisionTree::name() const {
  return "DecisionTree(depth<=" + std::to_string(config_.max_depth) + ")";
}

}  // namespace fiat::ml
