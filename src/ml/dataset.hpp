// Dataset container and the Classifier interface all fiat::ml models share.
//
// This is a from-scratch replacement for the scikit-learn pieces the paper
// uses (§4, §6): each model implements fit/predict over dense double feature
// matrices with integer class labels.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace fiat::ml {

using Row = std::vector<double>;

struct Dataset {
  std::vector<Row> X;
  std::vector<int> y;
  std::vector<std::string> feature_names;  // optional; used by reports

  std::size_t size() const { return X.size(); }
  std::size_t dim() const { return X.empty() ? 0 : X[0].size(); }
  /// 1 + max label (labels must be 0-based and contiguous).
  int num_classes() const;

  void add(Row features, int label);
  /// Subset by row indices (copies).
  Dataset subset(std::span<const std::size_t> indices) const;
  /// Per-class row counts.
  std::vector<std::size_t> class_counts() const;
  /// Throws fiat::LogicError if rows are ragged or labels negative.
  void validate() const;
};

/// Interface every model implements. fit() may be called repeatedly; each
/// call retrains from scratch.
class Classifier {
 public:
  virtual ~Classifier() = default;

  virtual void fit(const Dataset& data) = 0;
  virtual int predict(std::span<const double> x) const = 0;
  virtual std::string name() const = 0;
  /// Fresh untrained copy with the same hyperparameters (for CV folds).
  virtual std::unique_ptr<Classifier> clone_config() const = 0;

  std::vector<int> predict_batch(const std::vector<Row>& X) const;
};

}  // namespace fiat::ml
