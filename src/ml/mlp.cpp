#include "ml/mlp.hpp"

#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace fiat::ml {

namespace {

void softmax_inplace(std::vector<double>& v) {
  double max_v = v[0];
  for (double x : v) max_v = std::max(max_v, x);
  double sum = 0.0;
  for (double& x : v) {
    x = std::exp(x - max_v);
    sum += x;
  }
  for (double& x : v) x /= sum;
}

}  // namespace

void Mlp::fit(const Dataset& data) {
  data.validate();
  if (data.size() == 0) throw LogicError("Mlp::fit on empty dataset");
  num_classes_ = data.num_classes();
  std::size_t input_dim = data.dim();
  sim::Rng rng(config_.seed);

  // Build layer stack: hidden layers + output layer.
  layers_.clear();
  std::size_t prev = input_dim;
  auto add_layer = [&](std::size_t out) {
    Layer layer;
    layer.in = prev;
    layer.out = out;
    layer.w.resize(out * prev);
    layer.b.assign(out, 0.0);
    layer.vw.assign(out * prev, 0.0);
    layer.vb.assign(out, 0.0);
    // He initialization for ReLU nets.
    double scale = std::sqrt(2.0 / static_cast<double>(prev));
    for (auto& w : layer.w) w = rng.normal(0.0, scale);
    layers_.push_back(std::move(layer));
    prev = out;
  };
  for (std::size_t h : config_.hidden_layers) add_layer(h);
  add_layer(static_cast<std::size_t>(num_classes_));

  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < order.size(); start += config_.batch_size) {
      std::size_t end = std::min(order.size(), start + config_.batch_size);
      double inv_batch = 1.0 / static_cast<double>(end - start);

      // Accumulate gradients over the batch.
      std::vector<std::vector<double>> grad_w(layers_.size());
      std::vector<std::vector<double>> grad_b(layers_.size());
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        grad_w[l].assign(layers_[l].w.size(), 0.0);
        grad_b[l].assign(layers_[l].b.size(), 0.0);
      }

      for (std::size_t s = start; s < end; ++s) {
        std::size_t i = order[s];
        std::vector<std::vector<double>> acts;  // acts[0]=input, acts[l+1]=layer l output
        std::vector<double> probs = forward(data.X[i], &acts);
        softmax_inplace(probs);

        // delta at output: softmax + cross-entropy gradient.
        std::vector<double> delta = probs;
        delta[static_cast<std::size_t>(data.y[i])] -= 1.0;

        for (std::size_t li = layers_.size(); li-- > 0;) {
          Layer& layer = layers_[li];
          const auto& input = acts[li];
          for (std::size_t o = 0; o < layer.out; ++o) {
            grad_b[li][o] += delta[o];
            for (std::size_t j = 0; j < layer.in; ++j) {
              grad_w[li][o * layer.in + j] += delta[o] * input[j];
            }
          }
          if (li == 0) break;
          // Propagate to previous layer through W^T, gated by ReLU derivative.
          std::vector<double> prev_delta(layer.in, 0.0);
          for (std::size_t j = 0; j < layer.in; ++j) {
            double sum = 0.0;
            for (std::size_t o = 0; o < layer.out; ++o) {
              sum += layer.w[o * layer.in + j] * delta[o];
            }
            prev_delta[j] = acts[li][j] > 0.0 ? sum : 0.0;
          }
          delta = std::move(prev_delta);
        }
      }

      // SGD with momentum.
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        Layer& layer = layers_[l];
        for (std::size_t k = 0; k < layer.w.size(); ++k) {
          layer.vw[k] = config_.momentum * layer.vw[k] -
                        config_.learning_rate * grad_w[l][k] * inv_batch;
          layer.w[k] += layer.vw[k];
        }
        for (std::size_t k = 0; k < layer.b.size(); ++k) {
          layer.vb[k] = config_.momentum * layer.vb[k] -
                        config_.learning_rate * grad_b[l][k] * inv_batch;
          layer.b[k] += layer.vb[k];
        }
      }
    }
  }
}

std::vector<double> Mlp::forward(std::span<const double> x,
                                 std::vector<std::vector<double>>* activations) const {
  std::vector<double> cur(x.begin(), x.end());
  if (activations) {
    activations->clear();
    activations->push_back(cur);
  }
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const Layer& layer = layers_[li];
    std::vector<double> next(layer.out);
    for (std::size_t o = 0; o < layer.out; ++o) {
      double sum = layer.b[o];
      for (std::size_t j = 0; j < layer.in && j < cur.size(); ++j) {
        sum += layer.w[o * layer.in + j] * cur[j];
      }
      // ReLU on hidden layers; raw logits at the output.
      next[o] = (li + 1 < layers_.size()) ? std::max(0.0, sum) : sum;
    }
    cur = std::move(next);
    if (activations) activations->push_back(cur);
  }
  return cur;
}

std::vector<double> Mlp::predict_proba(std::span<const double> x) const {
  if (layers_.empty()) throw LogicError("Mlp used before fit");
  std::vector<double> logits = forward(x, nullptr);
  softmax_inplace(logits);
  return logits;
}

int Mlp::predict(std::span<const double> x) const {
  if (layers_.empty()) throw LogicError("Mlp used before fit");
  std::vector<double> logits = forward(x, nullptr);
  int best = 0;
  for (std::size_t c = 1; c < logits.size(); ++c) {
    if (logits[c] > logits[static_cast<std::size_t>(best)]) best = static_cast<int>(c);
  }
  return best;
}

std::string Mlp::name() const {
  return "MLP(" + std::to_string(config_.hidden_layers.size()) + "x" +
         std::to_string(config_.hidden_layers.empty() ? 0 : config_.hidden_layers[0]) +
         ")";
}

}  // namespace fiat::ml
