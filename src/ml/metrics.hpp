// Classification metrics used throughout the evaluation: confusion matrix,
// accuracy, balanced accuracy (Table 2), per-class precision/recall/F1
// (Tables 3, 5, 6).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace fiat::ml {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);
  /// Builds from parallel truth/prediction vectors.
  ConfusionMatrix(std::span<const int> truth, std::span<const int> predicted,
                  int num_classes);

  void add(int truth, int predicted);
  std::size_t count(int truth, int predicted) const;
  std::size_t total() const { return total_; }
  int num_classes() const { return num_classes_; }

  double accuracy() const;
  /// Mean of per-class recalls; classes absent from the truth are skipped.
  double balanced_accuracy() const;
  double precision(int cls) const;  // 0 when the class is never predicted
  double recall(int cls) const;     // 0 when the class never occurs
  double f1(int cls) const;
  /// Unweighted mean F1 over classes present in the truth.
  double macro_f1() const;

  std::string to_string(std::span<const std::string> class_names = {}) const;

 private:
  int num_classes_;
  std::vector<std::size_t> cells_;  // row = truth, col = predicted
  std::size_t total_ = 0;
};

/// Precision/recall/F1 triple for one class of interest (e.g. "manual").
struct PrfScore {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

PrfScore prf_for_class(std::span<const int> truth, std::span<const int> predicted,
                       int cls, int num_classes);

}  // namespace fiat::ml
