// Serialization of the deployed models (BernoulliNB + StandardScaler for
// event classification, DecisionTree for humanness) — the substrate of §7's
// "one model per IoT device and software version which is downloaded and
// applied automatically".
//
// Wire format: per-model magic tag, then fields in declaration order;
// doubles as IEEE-754 bit patterns (u64be), vectors length-prefixed.
#include <bit>

#include "ml/decision_tree.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/scaler.hpp"
#include "util/error.hpp"

namespace fiat::ml {

namespace {

constexpr std::uint32_t kScalerMagic = 0x46534331;  // "FSC1"
constexpr std::uint32_t kBnbMagic = 0x464e4231;     // "FNB1"
constexpr std::uint32_t kTreeMagic = 0x46445431;    // "FDT1"

void put_f64(util::ByteWriter& w, double v) { w.u64be(std::bit_cast<std::uint64_t>(v)); }
double get_f64(util::ByteReader& r) { return std::bit_cast<double>(r.u64be()); }

void put_vec(util::ByteWriter& w, const std::vector<double>& v) {
  w.u32be(static_cast<std::uint32_t>(v.size()));
  for (double x : v) put_f64(w, x);
}

std::vector<double> get_vec(util::ByteReader& r) {
  std::uint32_t n = r.u32be();
  if (n > 1u << 24) throw ParseError("model vector absurdly large");
  std::vector<double> v(n);
  for (auto& x : v) x = get_f64(r);
  return v;
}

void expect_magic(util::ByteReader& r, std::uint32_t magic, const char* what) {
  if (r.u32be() != magic) throw ParseError(std::string("bad model magic for ") + what);
}

}  // namespace

// ---- StandardScaler ---------------------------------------------------------

void StandardScaler::save(util::ByteWriter& w) const {
  w.u32be(kScalerMagic);
  put_vec(w, mean_);
  put_vec(w, std_);
}

StandardScaler StandardScaler::load(util::ByteReader& r) {
  expect_magic(r, kScalerMagic, "StandardScaler");
  StandardScaler s;
  s.mean_ = get_vec(r);
  s.std_ = get_vec(r);
  if (s.mean_.size() != s.std_.size()) throw ParseError("scaler size mismatch");
  return s;
}

// ---- BernoulliNB --------------------------------------------------------------

void BernoulliNB::save(util::ByteWriter& w) const {
  w.u32be(kBnbMagic);
  put_f64(w, alpha_);
  put_f64(w, binarize_);
  put_vec(w, log_prior_);
  w.u32be(static_cast<std::uint32_t>(log_p_.size()));
  for (std::size_t c = 0; c < log_p_.size(); ++c) {
    w.u8(class_present_[c] ? 1 : 0);
    put_vec(w, log_p_[c]);
    put_vec(w, log_not_p_[c]);
  }
}

BernoulliNB BernoulliNB::load(util::ByteReader& r) {
  expect_magic(r, kBnbMagic, "BernoulliNB");
  double alpha = get_f64(r);
  double binarize = get_f64(r);
  BernoulliNB model(alpha, binarize);
  model.log_prior_ = get_vec(r);
  std::uint32_t classes = r.u32be();
  if (classes != model.log_prior_.size()) throw ParseError("BernoulliNB class count mismatch");
  model.class_present_.resize(classes);
  model.log_p_.resize(classes);
  model.log_not_p_.resize(classes);
  std::size_t dim = 0;
  for (std::uint32_t c = 0; c < classes; ++c) {
    model.class_present_[c] = r.u8() != 0;
    model.log_p_[c] = get_vec(r);
    model.log_not_p_[c] = get_vec(r);
    if (model.log_p_[c].size() != model.log_not_p_[c].size()) {
      throw ParseError("BernoulliNB row size mismatch");
    }
    if (c == 0) dim = model.log_p_[c].size();
    if (model.log_p_[c].size() != dim) throw ParseError("BernoulliNB ragged rows");
  }
  return model;
}

// ---- DecisionTree ---------------------------------------------------------------

void DecisionTree::save(util::ByteWriter& w) const {
  w.u32be(kTreeMagic);
  w.u32be(static_cast<std::uint32_t>(config_.max_depth));
  w.u32be(static_cast<std::uint32_t>(config_.min_samples_split));
  w.u32be(static_cast<std::uint32_t>(config_.min_samples_leaf));
  w.u32be(static_cast<std::uint32_t>(config_.max_features));
  w.u32be(static_cast<std::uint32_t>(num_classes_));
  w.u32be(static_cast<std::uint32_t>(nodes_.size()));
  for (const auto& node : nodes_) {
    w.u8(node.leaf ? 1 : 0);
    w.u32be(static_cast<std::uint32_t>(node.label));
    w.u32be(static_cast<std::uint32_t>(node.feature));
    put_f64(w, node.threshold);
    w.u32be(static_cast<std::uint32_t>(node.left));
    w.u32be(static_cast<std::uint32_t>(node.right));
  }
}

DecisionTree DecisionTree::load(util::ByteReader& r) {
  expect_magic(r, kTreeMagic, "DecisionTree");
  TreeConfig config;
  config.max_depth = static_cast<int>(r.u32be());
  config.min_samples_split = r.u32be();
  config.min_samples_leaf = r.u32be();
  config.max_features = r.u32be();
  DecisionTree tree(config);
  tree.num_classes_ = static_cast<int>(r.u32be());
  std::uint32_t n = r.u32be();
  if (n > 1u << 24) throw ParseError("tree absurdly large");
  tree.nodes_.resize(n);
  for (auto& node : tree.nodes_) {
    node.leaf = r.u8() != 0;
    node.label = static_cast<int>(r.u32be());
    node.feature = r.u32be();
    node.threshold = get_f64(r);
    node.left = static_cast<std::int32_t>(r.u32be());
    node.right = static_cast<std::int32_t>(r.u32be());
  }
  // Structural validation: children must point into range (or be -1).
  auto in_range = [n](std::int32_t idx) {
    return idx == -1 || (idx >= 0 && static_cast<std::uint32_t>(idx) < n);
  };
  for (const auto& node : tree.nodes_) {
    if (!node.leaf && (!in_range(node.left) || !in_range(node.right) ||
                       node.left == -1 || node.right == -1)) {
      throw ParseError("tree child index out of range");
    }
  }
  return tree;
}

}  // namespace fiat::ml
