#include "ml/scaler.hpp"

#include <cmath>

#include "util/error.hpp"

namespace fiat::ml {

void StandardScaler::fit(const Dataset& data) {
  if (data.size() == 0) throw LogicError("StandardScaler::fit on empty dataset");
  std::size_t d = data.dim();
  mean_.assign(d, 0.0);
  std_.assign(d, 0.0);
  for (const auto& row : data.X) {
    for (std::size_t j = 0; j < d; ++j) mean_[j] += row[j];
  }
  for (std::size_t j = 0; j < d; ++j) mean_[j] /= static_cast<double>(data.size());
  for (const auto& row : data.X) {
    for (std::size_t j = 0; j < d; ++j) {
      double diff = row[j] - mean_[j];
      std_[j] += diff * diff;
    }
  }
  for (std::size_t j = 0; j < d; ++j) {
    std_[j] = std::sqrt(std_[j] / static_cast<double>(data.size()));
    if (std_[j] < 1e-12) std_[j] = 1.0;  // constant feature: leave centred only
  }
}

Row StandardScaler::transform(const Row& x) const {
  if (!fitted()) throw LogicError("StandardScaler used before fit");
  if (x.size() != mean_.size()) throw LogicError("StandardScaler dimension mismatch");
  Row out(x.size());
  for (std::size_t j = 0; j < x.size(); ++j) out[j] = (x[j] - mean_[j]) / std_[j];
  return out;
}

Dataset StandardScaler::transform(const Dataset& data) const {
  Dataset out;
  out.feature_names = data.feature_names;
  out.y = data.y;
  out.X.reserve(data.size());
  for (const auto& row : data.X) out.X.push_back(transform(row));
  return out;
}

Dataset StandardScaler::fit_transform(const Dataset& data) {
  fit(data);
  return transform(data);
}

}  // namespace fiat::ml
