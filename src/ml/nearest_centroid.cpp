#include "ml/nearest_centroid.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace fiat::ml {

const char* distance_name(Distance d) {
  switch (d) {
    case Distance::kEuclidean: return "euclidean";
    case Distance::kManhattan: return "manhattan";
    case Distance::kChebyshev: return "chebyshev";
  }
  return "?";
}

double vector_distance(Distance metric, std::span<const double> a,
                       std::span<const double> b) {
  if (a.size() != b.size()) throw LogicError("vector_distance: dim mismatch");
  switch (metric) {
    case Distance::kEuclidean: {
      double sum = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        double d = a[i] - b[i];
        sum += d * d;
      }
      return std::sqrt(sum);
    }
    case Distance::kManhattan: {
      double sum = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
      return sum;
    }
    case Distance::kChebyshev: {
      double best = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        best = std::max(best, std::fabs(a[i] - b[i]));
      }
      return best;
    }
  }
  throw LogicError("vector_distance: bad metric");
}

void NearestCentroid::fit(const Dataset& data) {
  data.validate();
  if (data.size() == 0) throw LogicError("NearestCentroid::fit on empty dataset");
  int k = data.num_classes();
  std::size_t d = data.dim();
  centroids_.assign(static_cast<std::size_t>(k), Row(d, 0.0));
  class_present_.assign(static_cast<std::size_t>(k), false);
  std::vector<std::size_t> counts(static_cast<std::size_t>(k), 0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    auto cls = static_cast<std::size_t>(data.y[i]);
    counts[cls]++;
    for (std::size_t j = 0; j < d; ++j) centroids_[cls][j] += data.X[i][j];
  }
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    if (counts[c] == 0) continue;
    class_present_[c] = true;
    for (auto& v : centroids_[c]) v /= static_cast<double>(counts[c]);
  }
}

int NearestCentroid::predict(std::span<const double> x) const {
  if (centroids_.empty()) throw LogicError("NearestCentroid used before fit");
  int best = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    if (!class_present_[c]) continue;
    double dist = vector_distance(metric_, x, centroids_[c]);
    if (dist < best_dist) {
      best_dist = dist;
      best = static_cast<int>(c);
    }
  }
  return best;
}

std::string NearestCentroid::name() const {
  return std::string("NearestCentroid(") + distance_name(metric_) + ")";
}

std::unique_ptr<Classifier> NearestCentroid::clone_config() const {
  return std::make_unique<NearestCentroid>(metric_);
}

}  // namespace fiat::ml
