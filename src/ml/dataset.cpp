#include "ml/dataset.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fiat::ml {

int Dataset::num_classes() const {
  int max_label = -1;
  for (int label : y) max_label = std::max(max_label, label);
  return max_label + 1;
}

void Dataset::add(Row features, int label) {
  X.push_back(std::move(features));
  y.push_back(label);
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out;
  out.feature_names = feature_names;
  out.X.reserve(indices.size());
  out.y.reserve(indices.size());
  for (std::size_t i : indices) {
    if (i >= X.size()) throw LogicError("Dataset::subset index out of range");
    out.X.push_back(X[i]);
    out.y.push_back(y[i]);
  }
  return out;
}

std::vector<std::size_t> Dataset::class_counts() const {
  std::vector<std::size_t> counts(static_cast<std::size_t>(num_classes()), 0);
  for (int label : y) counts[static_cast<std::size_t>(label)]++;
  return counts;
}

void Dataset::validate() const {
  if (X.size() != y.size()) throw LogicError("Dataset: X/y size mismatch");
  std::size_t d = dim();
  for (const auto& row : X) {
    if (row.size() != d) throw LogicError("Dataset: ragged feature rows");
  }
  for (int label : y) {
    if (label < 0) throw LogicError("Dataset: negative label");
  }
}

std::vector<int> Classifier::predict_batch(const std::vector<Row>& X) const {
  std::vector<int> out;
  out.reserve(X.size());
  for (const auto& row : X) out.push_back(predict(row));
  return out;
}

}  // namespace fiat::ml
