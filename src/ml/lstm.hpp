// LSTM sequence classifier — the paper's §7 future-work item ("we plan to
// also experiment with temporally-relevant models, e.g., LSTM, to handle the
// temporal variation in devices' behaviors").
//
// Unlike the fixed-66-feature models, this consumes an event as a *sequence*
// of per-packet feature vectors (variable length), runs a single LSTM layer,
// and classifies from the final hidden state through a dense softmax head.
// Trained with truncated BPTT over whole (short) sequences, Adam-style
// updates. Implemented from scratch like everything else in fiat::ml.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hpp"

namespace fiat::ml {

/// One training/inference example: a sequence of per-step feature vectors.
struct Sequence {
  std::vector<std::vector<double>> steps;  // [T][input_dim]
  int label = 0;
};

struct SequenceDataset {
  std::vector<Sequence> items;
  std::size_t size() const { return items.size(); }
  std::size_t input_dim() const {
    return items.empty() || items[0].steps.empty() ? 0 : items[0].steps[0].size();
  }
  int num_classes() const;
};

struct LstmConfig {
  std::size_t hidden = 32;
  std::size_t max_steps = 10;     // sequences are truncated to this length
  double learning_rate = 0.01;
  std::size_t epochs = 40;
  std::uint64_t seed = 77;
  double grad_clip = 5.0;
};

class LstmClassifier {
 public:
  explicit LstmClassifier(LstmConfig config = {}) : config_(config) {}

  void fit(const SequenceDataset& data);
  int predict(const Sequence& seq) const;
  std::vector<double> predict_proba(const Sequence& seq) const;
  std::string name() const { return "LSTM(h=" + std::to_string(config_.hidden) + ")"; }

  const LstmConfig& config() const { return config_; }
  bool trained() const { return !w_out_.empty(); }

 private:
  struct Gates {  // per-step forward pass cache (for BPTT)
    std::vector<double> i, f, o, g, c, h, x;
  };
  std::vector<Gates> forward(const Sequence& seq, std::vector<double>* logits) const;

  LstmConfig config_;
  std::size_t input_dim_ = 0;
  int num_classes_ = 0;
  // Gate weight matrices, row-major [4H x (input + hidden)], bias [4H];
  // gate order: input, forget, output, candidate.
  std::vector<double> w_gates_;
  std::vector<double> b_gates_;
  // Output head [classes x hidden] + bias.
  std::vector<double> w_out_;
  std::vector<double> b_out_;
};

}  // namespace fiat::ml
