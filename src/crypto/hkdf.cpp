#include "crypto/hkdf.hpp"

#include "crypto/hmac.hpp"
#include "util/error.hpp"

namespace fiat::crypto {

std::vector<std::uint8_t> hkdf_extract(std::span<const std::uint8_t> salt,
                                       std::span<const std::uint8_t> ikm) {
  Digest256 prk = hmac_sha256(salt, ikm);
  return {prk.begin(), prk.end()};
}

std::vector<std::uint8_t> hkdf_expand(std::span<const std::uint8_t> prk,
                                      std::string_view info, std::size_t length) {
  if (length > 255 * 32) throw LogicError("hkdf_expand: length too large");
  std::vector<std::uint8_t> okm;
  okm.reserve(length);
  std::vector<std::uint8_t> t;
  std::uint8_t counter = 1;
  while (okm.size() < length) {
    std::vector<std::uint8_t> input = t;
    input.insert(input.end(), info.begin(), info.end());
    input.push_back(counter++);
    Digest256 block = hmac_sha256(prk, input);
    t.assign(block.begin(), block.end());
    std::size_t take = std::min<std::size_t>(32, length - okm.size());
    okm.insert(okm.end(), t.begin(), t.begin() + static_cast<long>(take));
  }
  return okm;
}

std::vector<std::uint8_t> hkdf(std::span<const std::uint8_t> salt,
                               std::span<const std::uint8_t> ikm,
                               std::string_view info, std::size_t length) {
  auto prk = hkdf_extract(salt, ikm);
  return hkdf_expand(prk, info, length);
}

}  // namespace fiat::crypto
