// Replay cache for QuicLite 0-RTT.
//
// QUIC 0-RTT is vulnerable to replay (the paper cites Fischlin & Günther);
// FIAT's answer (§5.3) is that a home proxy serves only a handful of paired
// devices, so it can afford to remember every 0-RTT token it has accepted.
// This cache implements exactly that: a bounded, time-windowed set of seen
// nonces; re-presenting a nonce inside the window is rejected.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_set>

#include "util/bytes.hpp"

namespace fiat::crypto {

class ReplayCache {
 public:
  /// `window_seconds`: how long an accepted nonce stays "seen".
  /// `max_entries`: hard bound on memory; oldest entries are evicted first.
  explicit ReplayCache(double window_seconds = 600.0, std::size_t max_entries = 65536);

  /// Returns true (and records the nonce) if `nonce` has not been seen within
  /// the window; false if this is a replay.
  ///
  /// `now` values need not be monotone (datagram reordering, clock skew):
  /// times are clamped to the newest time ever observed, so an early `now`
  /// can neither un-expire old entries nor break the eviction order.
  bool check_and_insert(std::uint64_t nonce, double now);

  /// Drops entries older than the window.
  void expire(double now);

  std::size_t size() const { return order_.size(); }
  double window() const { return window_; }
  /// Newest (clamped) timestamp observed; entries expire relative to this.
  double high_water() const { return high_water_; }

  /// State-codec hooks (core/state_codec.hpp): the deque is serialized in
  /// accept order (its natural, canonical order — times are monotone by the
  /// clamping invariant); the `seen_` index is rebuilt on decode.
  void encode_state(util::ByteWriter& w) const;
  void decode_state(util::ByteReader& r);

 private:
  double window_;
  std::size_t max_entries_;
  double high_water_ = 0.0;
  std::unordered_set<std::uint64_t> seen_;
  std::deque<std::pair<double, std::uint64_t>> order_;  // (accept time, nonce)
};

}  // namespace fiat::crypto
