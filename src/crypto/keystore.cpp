#include "crypto/keystore.hpp"

#include <algorithm>

#include "crypto/hkdf.hpp"
#include "crypto/hmac.hpp"
#include "util/error.hpp"

namespace fiat::crypto {

KeyStore::KeyStore(std::size_t audit_capacity)
    : audit_capacity_(audit_capacity == 0 ? 1 : audit_capacity) {}

KeyHandle KeyStore::import_key(std::span<const std::uint8_t> material,
                               std::string label) {
  if (material.size() != 32) throw CryptoError("KeyStore: keys must be 32 bytes");
  KeyHandle h = next_handle_++;
  keys_[h] = Entry{{material.begin(), material.end()}, std::move(label)};
  audit(h, "import", true);
  return h;
}

KeyHandle KeyStore::generate_key(std::span<const std::uint8_t> entropy,
                                 std::string label) {
  if (entropy.empty()) throw CryptoError("KeyStore: entropy required");
  Digest256 material = Sha256::hash(entropy);
  KeyHandle h = next_handle_++;
  keys_[h] = Entry{{material.begin(), material.end()}, std::move(label)};
  audit(h, "generate", true);
  return h;
}

const KeyStore::Entry& KeyStore::entry(KeyHandle handle) const {
  auto it = keys_.find(handle);
  if (it == keys_.end()) throw CryptoError("KeyStore: unknown key handle");
  return it->second;
}

const KeyStore::Entry& KeyStore::usable_entry(KeyHandle handle) const {
  const Entry& e = entry(handle);
  if (e.revoked) {
    // A denied access is exactly what a tamper-evident log exists to show.
    audit(handle, "denied", false);
    throw CryptoError("KeyStore: key revoked: " + e.label);
  }
  return e;
}

void KeyStore::audit(KeyHandle handle, std::string op, bool success) const {
  if (audit_.size() >= audit_capacity_) {
    audit_.pop_front();
    ++audit_dropped_;
  }
  audit_.push_back(AuditEntry{handle, std::move(op), success});
}

Digest256 KeyStore::sign(KeyHandle handle, std::span<const std::uint8_t> data) {
  const auto& e = usable_entry(handle);
  audit(handle, "sign", true);
  return hmac_sha256(e.material, data);
}

bool KeyStore::verify(KeyHandle handle, std::span<const std::uint8_t> data,
                      std::span<const std::uint8_t> signature) {
  const auto& e = usable_entry(handle);
  Digest256 expect = hmac_sha256(e.material, data);
  bool ok = constant_time_equal(signature, expect);
  audit(handle, "verify", ok);
  return ok;
}

std::vector<std::uint8_t> KeyStore::seal(KeyHandle handle, std::uint64_t seq,
                                         std::span<const std::uint8_t> aad,
                                         std::span<const std::uint8_t> plaintext) {
  const auto& e = usable_entry(handle);
  Aead aead(e.material);
  audit(handle, "seal", true);
  return aead.seal(Aead::nonce_from_seq(seq), aad, plaintext);
}

std::optional<std::vector<std::uint8_t>> KeyStore::open(
    KeyHandle handle, std::uint64_t seq, std::span<const std::uint8_t> aad,
    std::span<const std::uint8_t> sealed) {
  const auto& e = usable_entry(handle);
  Aead aead(e.material);
  auto out = aead.open(Aead::nonce_from_seq(seq), aad, sealed);
  audit(handle, "open", out.has_value());
  return out;
}

Digest256 KeyStore::fingerprint(KeyHandle handle) const {
  const auto& e = entry(handle);
  // Fingerprint hashes a domain-separated copy, never the raw key.
  std::vector<std::uint8_t> input;
  const char* prefix = "fiat key fingerprint:";
  input.insert(input.end(), prefix, prefix + 21);
  input.insert(input.end(), e.material.begin(), e.material.end());
  return Sha256::hash(input);
}

std::optional<std::string> KeyStore::label(KeyHandle handle) const {
  auto it = keys_.find(handle);
  if (it == keys_.end()) return std::nullopt;
  return it->second.label;
}

void KeyStore::revoke_key(KeyHandle handle) {
  auto it = keys_.find(handle);
  if (it == keys_.end()) throw CryptoError("KeyStore: unknown key handle");
  if (it->second.revoked) {
    audit(handle, "revoke", false);
    throw CryptoError("KeyStore: key already revoked: " + it->second.label);
  }
  it->second.revoked = true;
  // The material is gone for good: a warm restore re-imports only what the
  // durable lifecycle state says is still live.
  std::fill(it->second.material.begin(), it->second.material.end(),
            std::uint8_t{0});
  audit(handle, "revoke", true);
}

bool KeyStore::is_revoked(KeyHandle handle) const {
  return entry(handle).revoked;
}

}  // namespace fiat::crypto
