// HMAC-SHA256 (RFC 2104). Used to authenticate FIAT sensor reports and
// QuicLite packets.
#pragma once

#include <cstdint>
#include <span>

#include "crypto/sha256.hpp"

namespace fiat::crypto {

/// Computes HMAC-SHA256(key, data).
Digest256 hmac_sha256(std::span<const std::uint8_t> key,
                      std::span<const std::uint8_t> data);

/// Constant-time comparison of two MACs; prevents timing side channels when
/// the proxy verifies auth messages.
bool constant_time_equal(std::span<const std::uint8_t> a,
                         std::span<const std::uint8_t> b);

}  // namespace fiat::crypto
