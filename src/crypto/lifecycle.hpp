// Credential lifecycle for phone/proxy pairings (PION-style onboarding).
//
// The seed fleet was static: every pairing key existed from t=0, imported
// straight into the KeyStore. This module adds the missing trust lifecycle
// the ROADMAP names — enrollment (temporary identity -> challenge/response
// against the home authenticator -> credential issuance), rotation (an
// overlap window where the old and new credential both verify, then the old
// one retires), revocation (all generations stop verifying at a bounded
// effective time) and expiry (credentials age out after a TTL).
//
// Everything is deterministic: the challenge, the enrollment proof and every
// credential key are HKDF/HMAC derivations from the out-of-band setup code
// (the QR-code secret of the paper's pairing UX), so the phone side and the
// proxy side independently derive identical key material and **no key bytes
// ever cross the wire**. That is also what makes the whole registry durable:
// the proxy's sealed state snapshot (core/state_codec.hpp, the stand-in for
// TEE-sealed storage) carries the registry, and a warm restore re-imports
// the material into a fresh KeyStore and resumes mid-enrollment sessions
// from the journal.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "crypto/keystore.hpp"
#include "util/bytes.hpp"

namespace fiat::crypto {

enum class CredentialStatus : std::uint8_t {
  kActive = 1,    // verifies proofs
  kRetiring = 2,  // rotation overlap: verifies until retire_at
  kRevoked = 3,   // never verifies once now >= revoked_at
};

const char* credential_status_name(CredentialStatus status);

/// Tuning knobs for the proxy-side registry (part of ProxyConfig).
struct LifecycleConfig {
  /// Seconds after a rotation during which the previous generation still
  /// verifies (a proof sealed with the old key just before the rotation must
  /// not lock the user out).
  double rotation_overlap = 30.0;
  /// Seconds a pending enrollment (challenge issued, proof not yet seen)
  /// stays answerable before it must be restarted.
  double enrollment_ttl = 600.0;
  /// Seconds a credential verifies after issuance; 0 = never expires.
  double credential_ttl = 0.0;

  bool operator==(const LifecycleConfig&) const = default;
};

/// One credential generation for one client. `material` is the durable
/// truth; `handle` is the runtime KeyStore import and is rebuilt on restore.
struct CredentialRecord {
  std::uint32_t generation = 0;
  CredentialStatus status = CredentialStatus::kActive;
  double enrolled_at = 0.0;
  double retire_at = 0.0;   // kRetiring: last instant this key verifies
  double revoked_at = 0.0;  // kRevoked: first instant this key is dead
  std::array<std::uint8_t, 32> material{};
  KeyHandle handle = 0;  // runtime-only; not serialized
};

/// Challenge issued, proof not yet verified. Durable so a crash between
/// EnrollBegin and EnrollComplete resumes instead of half-enrolling.
struct PendingEnrollment {
  std::string temp_id;
  std::array<std::uint8_t, 32> challenge{};
  double begun_at = 0.0;
};

/// The lifecycle operations a proxy accepts (fleet items of Kind::kLifecycle
/// carry one of these; the QUIC enrollment session in fleet/enrollment.hpp
/// produces the first two from datagrams).
struct LifecycleCommand {
  enum class Op : std::uint8_t {
    kEnrollBegin = 1,    // temp_id announces itself; proxy issues challenge
    kEnrollComplete = 2, // proof answers the challenge; credential issued
    kRotate = 3,         // proof under the current key; next generation
    kRevoke = 4,         // tear down every generation at effective_ts
  };

  Op op = Op::kEnrollBegin;
  std::string temp_id;               // kEnrollBegin
  std::vector<std::uint8_t> proof;   // kEnrollComplete / kRotate
  double effective_ts = 0.0;         // kRevoke: when proofs must stop passing

  bool operator==(const LifecycleCommand&) const = default;
};

const char* lifecycle_op_name(LifecycleCommand::Op op);

// ---- deterministic derivations (phone side and proxy side run the same
// ---- code; nothing below ever appears on the wire except the proofs) ------

/// challenge = HMAC(setup_code, "fiat enroll challenge" || client || temp).
std::array<std::uint8_t, 32> derive_enroll_challenge(
    std::span<const std::uint8_t> setup_code, const std::string& client_id,
    const std::string& temp_id);

/// proof = HMAC(setup_code, "fiat enroll proof" || challenge).
std::array<std::uint8_t, 32> derive_enroll_proof(
    std::span<const std::uint8_t> setup_code,
    std::span<const std::uint8_t> challenge);

/// Generation-g credential key: HKDF(salt=challenge, ikm=setup_code).
std::array<std::uint8_t, 32> derive_credential_key(
    std::span<const std::uint8_t> setup_code,
    std::span<const std::uint8_t> challenge, std::uint32_t generation);

/// Next-generation key ratcheted from the current one (no wire bytes).
std::array<std::uint8_t, 32> derive_rotation_key(
    std::span<const std::uint8_t> current_key, std::uint32_t new_generation);

/// proof = HMAC(current_key, "fiat rotate proof" || new_generation).
std::array<std::uint8_t, 32> derive_rotation_proof(
    std::span<const std::uint8_t> current_key, std::uint32_t new_generation);

/// Per-client lifecycle bookkeeping for one home proxy. Owns no crypto —
/// key material lives in the registry records and is imported into the
/// proxy's KeyStore so verification still runs behind the TEE boundary.
///
/// Determinism contract: every mutation is keyed off the driving item's sim
/// timestamp (never wall time), all maps are ordered, and apply() is
/// idempotent for revocations — re-applying a revocation that durable state
/// already carries is a no-op, which is what lets a restore re-drive the
/// fleet-wide revocation ledger without perturbing byte-identity.
class CredentialRegistry {
 public:
  /// Outcome of apply(); the proxy turns these into counters.
  enum class ApplyResult : std::uint8_t {
    kEnrollStarted,
    kEnrolled,
    kRotated,
    kRevoked,
    kNoop,      // idempotent re-apply (e.g. revoke of an already-revoked client)
    kRejected,  // bad proof / unknown client / expired pending enrollment
  };

  explicit CredentialRegistry(LifecycleConfig config = {}) : config_(config) {}

  const LifecycleConfig& config() const { return config_; }

  /// Statically installs a generation-0 credential (the seed path:
  /// HomeSpec phones pre-provisioned at t=0). Material is imported into
  /// `keystore` immediately.
  void install_static(KeyStore& keystore, const std::string& client_id,
                      std::span<const std::uint8_t> psk);

  /// Registers the out-of-band setup code for a client that will enroll
  /// later (the QR-code scan of the pairing UX). No credential exists yet.
  void register_setup_code(const std::string& client_id,
                           std::span<const std::uint8_t> setup_code);

  /// Applies one lifecycle command at sim time `now`. Issues/retires/revokes
  /// credentials in the registry and (de)installs keys in `keystore`.
  ApplyResult apply(KeyStore& keystore, const std::string& client_id,
                    const LifecycleCommand& cmd, double now);

  /// Key handles that verify a proof from `client_id` at time `now`, newest
  /// generation first (rotation overlap = two handles). Empty when the
  /// client is unknown, not yet enrolled, revoked or expired. Purely
  /// evaluative: never mutates, so calling it cannot perturb the encoded
  /// state (batch vs scalar segmentation invariance).
  std::vector<KeyHandle> usable_handles(const std::string& client_id,
                                        double now) const;

  bool known_client(const std::string& client_id) const;
  /// True when the client has at least one generation (enrolled or static).
  bool has_credentials(const std::string& client_id) const;
  /// First instant at which every generation of the client is dead, if the
  /// client was revoked (max over revoked_at).
  std::optional<double> revoked_since(const std::string& client_id) const;

  std::size_t enrollments_started() const { return enrollments_started_; }
  std::size_t enrollments_completed() const { return enrollments_completed_; }
  std::size_t rotations_completed() const { return rotations_completed_; }
  std::size_t revocations_applied() const { return revocations_applied_; }
  std::size_t commands_rejected() const { return commands_rejected_; }
  std::size_t pending_count() const { return pending_.size(); }
  std::size_t client_count() const { return credentials_.size(); }

  /// Serialization into the durable-state envelope (core/state_codec.hpp
  /// version >= 4). encode() writes only durable fields; decode() rebuilds
  /// the registry and re-imports live material into `keystore` so handles
  /// are valid again. Throws fiat::ParseError on malformed input.
  void encode(util::ByteWriter& w) const;
  void decode(util::ByteReader& r, KeyStore& keystore);

 private:
  struct ClientState {
    std::array<std::uint8_t, 32> setup_code{};
    bool has_setup_code = false;
    std::vector<CredentialRecord> generations;  // ascending by generation
  };

  ApplyResult enroll_begin(const std::string& client_id,
                           const LifecycleCommand& cmd, double now);
  ApplyResult enroll_complete(KeyStore& keystore, const std::string& client_id,
                              const LifecycleCommand& cmd, double now);
  ApplyResult rotate(KeyStore& keystore, const std::string& client_id,
                     const LifecycleCommand& cmd, double now);
  ApplyResult revoke(const std::string& client_id, const LifecycleCommand& cmd);
  ApplyResult reject();

  LifecycleConfig config_;
  std::map<std::string, ClientState> credentials_;
  std::map<std::string, PendingEnrollment> pending_;
  std::size_t enrollments_started_ = 0;
  std::size_t enrollments_completed_ = 0;
  std::size_t rotations_completed_ = 0;
  std::size_t revocations_applied_ = 0;
  std::size_t commands_rejected_ = 0;
};

}  // namespace fiat::crypto
