// Encrypt-then-MAC AEAD built from ChaCha20 + HMAC-SHA256 (truncated 16-byte
// tag). This protects QuicLite packets and FIAT auth messages.
//
// Wire layout of a sealed message: ciphertext || tag(16).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "crypto/chacha20.hpp"

namespace fiat::crypto {

constexpr std::size_t kAeadTagLen = 16;

class Aead {
 public:
  /// `key` must be 32 bytes of keying material; it is split internally into
  /// independent encryption and MAC keys via HKDF.
  explicit Aead(std::span<const std::uint8_t> key);

  /// Seals plaintext under (nonce, aad). The 12-byte nonce must be unique per
  /// key; QuicLite uses the packet number.
  std::vector<std::uint8_t> seal(const ChaChaNonce& nonce,
                                 std::span<const std::uint8_t> aad,
                                 std::span<const std::uint8_t> plaintext) const;

  /// Opens a sealed message; returns nullopt on authentication failure.
  std::optional<std::vector<std::uint8_t>> open(
      const ChaChaNonce& nonce, std::span<const std::uint8_t> aad,
      std::span<const std::uint8_t> sealed) const;

  /// Builds a nonce from a 64-bit sequence number (low 8 bytes LE, top 4 zero).
  static ChaChaNonce nonce_from_seq(std::uint64_t seq);

 private:
  ChaChaKey enc_key_;
  std::vector<std::uint8_t> mac_key_;
};

}  // namespace fiat::crypto
