#include "crypto/chacha20.hpp"

namespace fiat::crypto {

namespace {

std::uint32_t rotl(std::uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                   std::uint32_t& d) {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

std::uint32_t load32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

std::array<std::uint8_t, 64> chacha20_block(const ChaChaKey& key,
                                            const ChaChaNonce& nonce,
                                            std::uint32_t counter) {
  // "expand 32-byte k" constants.
  std::uint32_t state[16] = {0x61707865, 0x3320646e, 0x79622d32, 0x6b206574,
                             load32le(&key[0]),  load32le(&key[4]),
                             load32le(&key[8]),  load32le(&key[12]),
                             load32le(&key[16]), load32le(&key[20]),
                             load32le(&key[24]), load32le(&key[28]),
                             counter,
                             load32le(&nonce[0]), load32le(&nonce[4]),
                             load32le(&nonce[8])};
  std::uint32_t working[16];
  for (int i = 0; i < 16; ++i) working[i] = state[i];

  for (int round = 0; round < 10; ++round) {
    quarter_round(working[0], working[4], working[8], working[12]);
    quarter_round(working[1], working[5], working[9], working[13]);
    quarter_round(working[2], working[6], working[10], working[14]);
    quarter_round(working[3], working[7], working[11], working[15]);
    quarter_round(working[0], working[5], working[10], working[15]);
    quarter_round(working[1], working[6], working[11], working[12]);
    quarter_round(working[2], working[7], working[8], working[13]);
    quarter_round(working[3], working[4], working[9], working[14]);
  }

  std::array<std::uint8_t, 64> out;
  for (int i = 0; i < 16; ++i) {
    std::uint32_t v = working[i] + state[i];
    out[4 * i] = static_cast<std::uint8_t>(v);
    out[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
  return out;
}

void chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                  std::uint32_t counter, std::span<std::uint8_t> data) {
  std::size_t pos = 0;
  while (pos < data.size()) {
    auto block = chacha20_block(key, nonce, counter++);
    std::size_t take = std::min<std::size_t>(64, data.size() - pos);
    for (std::size_t i = 0; i < take; ++i) data[pos + i] ^= block[i];
    pos += take;
  }
}

std::vector<std::uint8_t> chacha20(const ChaChaKey& key, const ChaChaNonce& nonce,
                                   std::uint32_t counter,
                                   std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t> out(data.begin(), data.end());
  chacha20_xor(key, nonce, counter, out);
  return out;
}

}  // namespace fiat::crypto
