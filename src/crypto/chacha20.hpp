// ChaCha20 stream cipher (RFC 8439), from scratch. QuicLite packet
// protection uses ChaCha20 for confidentiality and HMAC-SHA256 for integrity
// (an encrypt-then-MAC AEAD; see aead.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace fiat::crypto {

using ChaChaKey = std::array<std::uint8_t, 32>;
using ChaChaNonce = std::array<std::uint8_t, 12>;

/// XORs `data` in place with the ChaCha20 keystream for (key, nonce) starting
/// at block `counter`. Encryption and decryption are the same operation.
void chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                  std::uint32_t counter, std::span<std::uint8_t> data);

/// Convenience: returns the transformed copy.
std::vector<std::uint8_t> chacha20(const ChaChaKey& key, const ChaChaNonce& nonce,
                                   std::uint32_t counter,
                                   std::span<const std::uint8_t> data);

/// Generates a single 64-byte keystream block (exposed for test vectors).
std::array<std::uint8_t, 64> chacha20_block(const ChaChaKey& key,
                                            const ChaChaNonce& nonce,
                                            std::uint32_t counter);

}  // namespace fiat::crypto
