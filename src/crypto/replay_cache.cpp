#include "crypto/replay_cache.hpp"

namespace fiat::crypto {

ReplayCache::ReplayCache(double window_seconds, std::size_t max_entries)
    : window_(window_seconds), max_entries_(max_entries) {}

bool ReplayCache::check_and_insert(std::uint64_t nonce, double now) {
  expire(now);
  if (seen_.contains(nonce)) return false;
  if (order_.size() >= max_entries_) {
    seen_.erase(order_.front().second);
    order_.pop_front();
  }
  seen_.insert(nonce);
  order_.emplace_back(now, nonce);
  return true;
}

void ReplayCache::expire(double now) {
  while (!order_.empty() && order_.front().first + window_ < now) {
    seen_.erase(order_.front().second);
    order_.pop_front();
  }
}

}  // namespace fiat::crypto
