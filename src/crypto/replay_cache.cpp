#include "crypto/replay_cache.hpp"

#include <algorithm>

namespace fiat::crypto {

ReplayCache::ReplayCache(double window_seconds, std::size_t max_entries)
    : window_(window_seconds), max_entries_(max_entries) {}

bool ReplayCache::check_and_insert(std::uint64_t nonce, double now) {
  // Clamp to the monotone high-water mark: inserting at a raw earlier time
  // would break the deque's sorted-by-time invariant, letting a later
  // expire() strand unexpired-looking entries behind an expired front.
  high_water_ = std::max(high_water_, now);
  expire(high_water_);
  if (seen_.contains(nonce)) return false;
  if (order_.size() >= max_entries_) {
    seen_.erase(order_.front().second);
    order_.pop_front();
  }
  seen_.insert(nonce);
  order_.emplace_back(high_water_, nonce);
  return true;
}

void ReplayCache::expire(double now) {
  high_water_ = std::max(high_water_, now);
  while (!order_.empty() && order_.front().first + window_ < high_water_) {
    seen_.erase(order_.front().second);
    order_.pop_front();
  }
}

void ReplayCache::encode_state(util::ByteWriter& w) const {
  w.f64be(window_);
  w.u64be(max_entries_);
  w.f64be(high_water_);
  w.u64be(order_.size());
  for (const auto& [time, nonce] : order_) {
    w.f64be(time);
    w.u64be(nonce);
  }
}

void ReplayCache::decode_state(util::ByteReader& r) {
  window_ = r.f64be();
  max_entries_ = r.u64be();
  high_water_ = r.f64be();
  seen_.clear();
  order_.clear();
  std::uint64_t count = r.u64be();
  for (std::uint64_t i = 0; i < count; ++i) {
    double time = r.f64be();
    std::uint64_t nonce = r.u64be();
    order_.emplace_back(time, nonce);
    seen_.insert(nonce);
  }
}

}  // namespace fiat::crypto
