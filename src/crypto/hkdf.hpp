// HKDF-SHA256 (RFC 5869). QuicLite derives its handshake, 0-RTT, and
// application keys from the pre-shared pairing key with this.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace fiat::crypto {

/// HKDF-Extract: PRK = HMAC(salt, ikm).
std::vector<std::uint8_t> hkdf_extract(std::span<const std::uint8_t> salt,
                                       std::span<const std::uint8_t> ikm);

/// HKDF-Expand to `length` bytes (length <= 255*32).
std::vector<std::uint8_t> hkdf_expand(std::span<const std::uint8_t> prk,
                                      std::string_view info, std::size_t length);

/// Extract-then-expand convenience.
std::vector<std::uint8_t> hkdf(std::span<const std::uint8_t> salt,
                               std::span<const std::uint8_t> ikm,
                               std::string_view info, std::size_t length);

}  // namespace fiat::crypto
