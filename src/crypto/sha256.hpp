// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used by HMAC/HKDF, QuicLite key derivation, and FIAT auth-message
// signatures. Verified against NIST test vectors in tests/crypto.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

namespace fiat::crypto {

using Digest256 = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view data);
  /// Finalizes and returns the digest; the hasher must be reset() before reuse.
  Digest256 finish();

  /// One-shot convenience.
  static Digest256 hash(std::span<const std::uint8_t> data);
  static Digest256 hash(std::string_view data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finished_ = false;
};

}  // namespace fiat::crypto
