#include "crypto/hmac.hpp"

#include <cstring>

namespace fiat::crypto {

Digest256 hmac_sha256(std::span<const std::uint8_t> key,
                      std::span<const std::uint8_t> data) {
  std::uint8_t block[64];
  std::memset(block, 0, sizeof(block));
  if (key.size() > 64) {
    Digest256 kh = Sha256::hash(key);
    std::memcpy(block, kh.data(), kh.size());
  } else if (!key.empty()) {  // empty span has a null data(), UB for memcpy
    std::memcpy(block, key.data(), key.size());
  }

  std::uint8_t ipad[64], opad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = block[i] ^ 0x36;
    opad[i] = block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(std::span<const std::uint8_t>(ipad, 64));
  inner.update(data);
  Digest256 inner_digest = inner.finish();

  Sha256 outer;
  outer.update(std::span<const std::uint8_t>(opad, 64));
  outer.update(std::span<const std::uint8_t>(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

bool constant_time_equal(std::span<const std::uint8_t> a,
                         std::span<const std::uint8_t> b) {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace fiat::crypto
