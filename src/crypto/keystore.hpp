// KeyStore: stand-in for the hardware-backed trusted execution environments
// the paper relies on (Android secure keystore on the phone, SGX on the
// proxy).
//
// The trust property we preserve in software: key *material* never leaves the
// store — callers hand data in and get signatures/AEAD results out, identified
// by an opaque handle. Every access is recorded in an audit log, which the
// paper's "Technology Acceptance" discussion (§7) relies on: the proxy keeps
// tamper-evident records of unpredictable events inside the TEE boundary.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "crypto/aead.hpp"
#include "crypto/sha256.hpp"

namespace fiat::crypto {

using KeyHandle = std::uint32_t;

class KeyStore {
 public:
  struct AuditEntry {
    KeyHandle handle;
    std::string operation;  // "generate", "import", "sign", "verify", "seal",
                            // "open", "revoke", "denied" (use after revoke)
    bool success;
  };

  /// `audit_capacity` bounds the audit log (a TEE has finite tamper-evident
  /// storage); once full, the oldest entries are dropped and counted.
  /// 0 is clamped to 1.
  explicit KeyStore(std::size_t audit_capacity = kDefaultAuditCapacity);

  /// Imports 32 bytes of key material; returns an opaque handle.
  KeyHandle import_key(std::span<const std::uint8_t> material, std::string label);

  /// Generates a key from the given entropy bytes (the caller supplies
  /// entropy so simulations stay deterministic).
  KeyHandle generate_key(std::span<const std::uint8_t> entropy, std::string label);

  /// HMAC-SHA256 signature over `data` with the handle's key.
  Digest256 sign(KeyHandle handle, std::span<const std::uint8_t> data);

  /// Verifies a signature in constant time.
  bool verify(KeyHandle handle, std::span<const std::uint8_t> data,
              std::span<const std::uint8_t> signature);

  /// AEAD-seals/opens with a key derived from the handle's key.
  std::vector<std::uint8_t> seal(KeyHandle handle, std::uint64_t seq,
                                 std::span<const std::uint8_t> aad,
                                 std::span<const std::uint8_t> plaintext);
  std::optional<std::vector<std::uint8_t>> open(KeyHandle handle, std::uint64_t seq,
                                                std::span<const std::uint8_t> aad,
                                                std::span<const std::uint8_t> sealed);

  /// SHA-256 fingerprint of the public identity of a key (for pairing UX,
  /// e.g. displayed as a QR code in the paper's pairing step).
  Digest256 fingerprint(KeyHandle handle) const;

  /// Label lookup (labels are not secret).
  std::optional<std::string> label(KeyHandle handle) const;

  /// Marks the handle unusable: any later sign/verify/seal/open throws.
  /// Unknown handles and double-revokes throw (the lifecycle layer must
  /// never lose track of which credentials it already tore down).
  void revoke_key(KeyHandle handle);
  bool is_revoked(KeyHandle handle) const;

  const std::deque<AuditEntry>& audit_log() const { return audit_; }
  /// Entries evicted from the front of the audit ring since construction.
  std::size_t audit_dropped() const { return audit_dropped_; }
  std::size_t audit_capacity() const { return audit_capacity_; }
  std::size_t key_count() const { return keys_.size(); }

  static constexpr std::size_t kDefaultAuditCapacity = 4096;

 private:
  struct Entry {
    std::vector<std::uint8_t> material;
    std::string label;
    bool revoked = false;
  };
  const Entry& entry(KeyHandle handle) const;
  const Entry& usable_entry(KeyHandle handle) const;
  void audit(KeyHandle handle, std::string op, bool success) const;

  std::map<KeyHandle, Entry> keys_;
  KeyHandle next_handle_ = 1;
  std::size_t audit_capacity_ = kDefaultAuditCapacity;
  // Mutable: denied accesses on revoked keys are audited from const paths.
  mutable std::deque<AuditEntry> audit_;
  mutable std::size_t audit_dropped_ = 0;
};

}  // namespace fiat::crypto
