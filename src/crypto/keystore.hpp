// KeyStore: stand-in for the hardware-backed trusted execution environments
// the paper relies on (Android secure keystore on the phone, SGX on the
// proxy).
//
// The trust property we preserve in software: key *material* never leaves the
// store — callers hand data in and get signatures/AEAD results out, identified
// by an opaque handle. Every access is recorded in an audit log, which the
// paper's "Technology Acceptance" discussion (§7) relies on: the proxy keeps
// tamper-evident records of unpredictable events inside the TEE boundary.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "crypto/aead.hpp"
#include "crypto/sha256.hpp"

namespace fiat::crypto {

using KeyHandle = std::uint32_t;

class KeyStore {
 public:
  struct AuditEntry {
    KeyHandle handle;
    std::string operation;  // "generate", "import", "sign", "verify", "seal", "open"
    bool success;
  };

  /// Imports 32 bytes of key material; returns an opaque handle.
  KeyHandle import_key(std::span<const std::uint8_t> material, std::string label);

  /// Generates a key from the given entropy bytes (the caller supplies
  /// entropy so simulations stay deterministic).
  KeyHandle generate_key(std::span<const std::uint8_t> entropy, std::string label);

  /// HMAC-SHA256 signature over `data` with the handle's key.
  Digest256 sign(KeyHandle handle, std::span<const std::uint8_t> data);

  /// Verifies a signature in constant time.
  bool verify(KeyHandle handle, std::span<const std::uint8_t> data,
              std::span<const std::uint8_t> signature);

  /// AEAD-seals/opens with a key derived from the handle's key.
  std::vector<std::uint8_t> seal(KeyHandle handle, std::uint64_t seq,
                                 std::span<const std::uint8_t> aad,
                                 std::span<const std::uint8_t> plaintext);
  std::optional<std::vector<std::uint8_t>> open(KeyHandle handle, std::uint64_t seq,
                                                std::span<const std::uint8_t> aad,
                                                std::span<const std::uint8_t> sealed);

  /// SHA-256 fingerprint of the public identity of a key (for pairing UX,
  /// e.g. displayed as a QR code in the paper's pairing step).
  Digest256 fingerprint(KeyHandle handle) const;

  /// Label lookup (labels are not secret).
  std::optional<std::string> label(KeyHandle handle) const;

  const std::vector<AuditEntry>& audit_log() const { return audit_; }
  std::size_t key_count() const { return keys_.size(); }

 private:
  struct Entry {
    std::vector<std::uint8_t> material;
    std::string label;
  };
  const Entry& entry(KeyHandle handle) const;
  void audit(KeyHandle handle, std::string op, bool success);

  std::map<KeyHandle, Entry> keys_;
  KeyHandle next_handle_ = 1;
  std::vector<AuditEntry> audit_;
};

}  // namespace fiat::crypto
