#include "crypto/aead.hpp"

#include <cstring>

#include "crypto/hkdf.hpp"
#include "crypto/hmac.hpp"
#include "util/error.hpp"

namespace fiat::crypto {

Aead::Aead(std::span<const std::uint8_t> key) {
  if (key.size() != 32) throw CryptoError("Aead requires a 32-byte key");
  auto enc = hkdf(/*salt=*/{}, key, "fiat aead enc", 32);
  std::memcpy(enc_key_.data(), enc.data(), 32);
  mac_key_ = hkdf(/*salt=*/{}, key, "fiat aead mac", 32);
}

namespace {

// MAC input: aad || nonce || ciphertext || len(aad) as u64le. Binding the aad
// length prevents boundary-shifting between aad and ciphertext.
Digest256 compute_tag(std::span<const std::uint8_t> mac_key,
                      const ChaChaNonce& nonce,
                      std::span<const std::uint8_t> aad,
                      std::span<const std::uint8_t> ciphertext) {
  std::vector<std::uint8_t> mac_input;
  mac_input.reserve(aad.size() + nonce.size() + ciphertext.size() + 8);
  mac_input.insert(mac_input.end(), aad.begin(), aad.end());
  mac_input.insert(mac_input.end(), nonce.begin(), nonce.end());
  mac_input.insert(mac_input.end(), ciphertext.begin(), ciphertext.end());
  std::uint64_t alen = aad.size();
  for (int i = 0; i < 8; ++i) mac_input.push_back(static_cast<std::uint8_t>(alen >> (8 * i)));
  return hmac_sha256(mac_key, mac_input);
}

}  // namespace

std::vector<std::uint8_t> Aead::seal(const ChaChaNonce& nonce,
                                     std::span<const std::uint8_t> aad,
                                     std::span<const std::uint8_t> plaintext) const {
  // Counter starts at 1 to mirror RFC 8439's AEAD construction, which
  // reserves block 0 for the one-time MAC key.
  std::vector<std::uint8_t> out = chacha20(enc_key_, nonce, 1, plaintext);
  Digest256 tag = compute_tag(mac_key_, nonce, aad, out);
  out.insert(out.end(), tag.begin(), tag.begin() + kAeadTagLen);
  return out;
}

std::optional<std::vector<std::uint8_t>> Aead::open(
    const ChaChaNonce& nonce, std::span<const std::uint8_t> aad,
    std::span<const std::uint8_t> sealed) const {
  if (sealed.size() < kAeadTagLen) return std::nullopt;
  auto ciphertext = sealed.subspan(0, sealed.size() - kAeadTagLen);
  auto tag = sealed.subspan(sealed.size() - kAeadTagLen);
  Digest256 expect = compute_tag(mac_key_, nonce, aad, ciphertext);
  if (!constant_time_equal(tag, std::span<const std::uint8_t>(expect.data(), kAeadTagLen))) {
    return std::nullopt;
  }
  return chacha20(enc_key_, nonce, 1, ciphertext);
}

ChaChaNonce Aead::nonce_from_seq(std::uint64_t seq) {
  ChaChaNonce nonce{};
  for (int i = 0; i < 8; ++i) nonce[i] = static_cast<std::uint8_t>(seq >> (8 * i));
  return nonce;
}

}  // namespace fiat::crypto
