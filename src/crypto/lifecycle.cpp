#include "crypto/lifecycle.hpp"

#include <algorithm>

#include "crypto/hkdf.hpp"
#include "crypto/hmac.hpp"
#include "util/error.hpp"

namespace fiat::crypto {

namespace {

std::array<std::uint8_t, 32> to_key(const Digest256& d) {
  std::array<std::uint8_t, 32> out{};
  std::copy(d.begin(), d.end(), out.begin());
  return out;
}

std::array<std::uint8_t, 32> to_key(const std::vector<std::uint8_t>& v) {
  std::array<std::uint8_t, 32> out{};
  std::copy_n(v.begin(), 32, out.begin());
  return out;
}

void append_u32be(std::vector<std::uint8_t>& buf, std::uint32_t v) {
  buf.push_back(static_cast<std::uint8_t>(v >> 24));
  buf.push_back(static_cast<std::uint8_t>(v >> 16));
  buf.push_back(static_cast<std::uint8_t>(v >> 8));
  buf.push_back(static_cast<std::uint8_t>(v));
}

void write_str(util::ByteWriter& w, const std::string& s) {
  w.u32be(static_cast<std::uint32_t>(s.size()));
  w.raw(s);
}

std::string read_str(util::ByteReader& r) {
  std::uint32_t n = r.u32be();
  return r.str(n);
}

}  // namespace

const char* credential_status_name(CredentialStatus status) {
  switch (status) {
    case CredentialStatus::kActive: return "active";
    case CredentialStatus::kRetiring: return "retiring";
    case CredentialStatus::kRevoked: return "revoked";
  }
  return "?";
}

const char* lifecycle_op_name(LifecycleCommand::Op op) {
  switch (op) {
    case LifecycleCommand::Op::kEnrollBegin: return "enroll-begin";
    case LifecycleCommand::Op::kEnrollComplete: return "enroll-complete";
    case LifecycleCommand::Op::kRotate: return "rotate";
    case LifecycleCommand::Op::kRevoke: return "revoke";
  }
  return "?";
}

std::array<std::uint8_t, 32> derive_enroll_challenge(
    std::span<const std::uint8_t> setup_code, const std::string& client_id,
    const std::string& temp_id) {
  std::vector<std::uint8_t> msg;
  const std::string_view domain = "fiat enroll challenge";
  msg.insert(msg.end(), domain.begin(), domain.end());
  append_u32be(msg, static_cast<std::uint32_t>(client_id.size()));
  msg.insert(msg.end(), client_id.begin(), client_id.end());
  msg.insert(msg.end(), temp_id.begin(), temp_id.end());
  return to_key(hmac_sha256(setup_code, msg));
}

std::array<std::uint8_t, 32> derive_enroll_proof(
    std::span<const std::uint8_t> setup_code,
    std::span<const std::uint8_t> challenge) {
  std::vector<std::uint8_t> msg;
  const std::string_view domain = "fiat enroll proof";
  msg.insert(msg.end(), domain.begin(), domain.end());
  msg.insert(msg.end(), challenge.begin(), challenge.end());
  return to_key(hmac_sha256(setup_code, msg));
}

std::array<std::uint8_t, 32> derive_credential_key(
    std::span<const std::uint8_t> setup_code,
    std::span<const std::uint8_t> challenge, std::uint32_t generation) {
  std::string info = "fiat credential g" + std::to_string(generation);
  return to_key(hkdf(challenge, setup_code, info, 32));
}

std::array<std::uint8_t, 32> derive_rotation_key(
    std::span<const std::uint8_t> current_key, std::uint32_t new_generation) {
  std::string info = "fiat rotation g" + std::to_string(new_generation);
  return to_key(hkdf({}, current_key, info, 32));
}

std::array<std::uint8_t, 32> derive_rotation_proof(
    std::span<const std::uint8_t> current_key, std::uint32_t new_generation) {
  std::vector<std::uint8_t> msg;
  const std::string_view domain = "fiat rotate proof";
  msg.insert(msg.end(), domain.begin(), domain.end());
  append_u32be(msg, new_generation);
  return to_key(hmac_sha256(current_key, msg));
}

// ---- CredentialRegistry ---------------------------------------------------

void CredentialRegistry::install_static(KeyStore& keystore,
                                        const std::string& client_id,
                                        std::span<const std::uint8_t> psk) {
  if (psk.size() != 32) throw CryptoError("lifecycle: setup/psk must be 32 bytes");
  ClientState& st = credentials_[client_id];
  if (!st.generations.empty())
    throw CryptoError("lifecycle: client already has credentials: " + client_id);
  CredentialRecord rec;
  rec.generation = 0;
  rec.status = CredentialStatus::kActive;
  std::copy(psk.begin(), psk.end(), rec.material.begin());
  rec.handle = keystore.import_key(psk, "phone:" + client_id);
  st.generations.push_back(rec);
}

void CredentialRegistry::register_setup_code(
    const std::string& client_id, std::span<const std::uint8_t> setup_code) {
  if (setup_code.size() != 32)
    throw CryptoError("lifecycle: setup/psk must be 32 bytes");
  ClientState& st = credentials_[client_id];
  std::copy(setup_code.begin(), setup_code.end(), st.setup_code.begin());
  st.has_setup_code = true;
}

CredentialRegistry::ApplyResult CredentialRegistry::reject() {
  ++commands_rejected_;
  return ApplyResult::kRejected;
}

CredentialRegistry::ApplyResult CredentialRegistry::apply(
    KeyStore& keystore, const std::string& client_id,
    const LifecycleCommand& cmd, double now) {
  switch (cmd.op) {
    case LifecycleCommand::Op::kEnrollBegin:
      return enroll_begin(client_id, cmd, now);
    case LifecycleCommand::Op::kEnrollComplete:
      return enroll_complete(keystore, client_id, cmd, now);
    case LifecycleCommand::Op::kRotate:
      return rotate(keystore, client_id, cmd, now);
    case LifecycleCommand::Op::kRevoke:
      return revoke(client_id, cmd);
  }
  return reject();
}

CredentialRegistry::ApplyResult CredentialRegistry::enroll_begin(
    const std::string& client_id, const LifecycleCommand& cmd, double now) {
  auto it = credentials_.find(client_id);
  if (it == credentials_.end() || !it->second.has_setup_code) return reject();
  if (!it->second.generations.empty()) return reject();  // already enrolled
  // Re-begin replaces the pending challenge (idempotent for journal replay:
  // the same temp_id at the same time re-derives the same challenge).
  PendingEnrollment pending;
  pending.temp_id = cmd.temp_id;
  pending.challenge =
      derive_enroll_challenge(it->second.setup_code, client_id, cmd.temp_id);
  pending.begun_at = now;
  auto [pit, inserted] = pending_.insert_or_assign(client_id, std::move(pending));
  (void)pit;
  if (inserted) ++enrollments_started_;
  return ApplyResult::kEnrollStarted;
}

CredentialRegistry::ApplyResult CredentialRegistry::enroll_complete(
    KeyStore& keystore, const std::string& client_id,
    const LifecycleCommand& cmd, double now) {
  auto cit = credentials_.find(client_id);
  auto pit = pending_.find(client_id);
  if (cit == credentials_.end() || pit == pending_.end()) return reject();
  const PendingEnrollment& pending = pit->second;
  if (config_.enrollment_ttl > 0.0 &&
      now > pending.begun_at + config_.enrollment_ttl) {
    // Stale challenge: roll the half-open enrollment back cleanly.
    pending_.erase(pit);
    return reject();
  }
  auto expect = derive_enroll_proof(cit->second.setup_code, pending.challenge);
  if (!constant_time_equal(cmd.proof, expect)) return reject();
  CredentialRecord rec;
  rec.generation = 0;
  rec.status = CredentialStatus::kActive;
  rec.enrolled_at = now;
  rec.material =
      derive_credential_key(cit->second.setup_code, pending.challenge, 0);
  rec.handle = keystore.import_key(rec.material, "phone:" + client_id);
  cit->second.generations.push_back(rec);
  pending_.erase(pit);
  ++enrollments_completed_;
  return ApplyResult::kEnrolled;
}

CredentialRegistry::ApplyResult CredentialRegistry::rotate(
    KeyStore& keystore, const std::string& client_id,
    const LifecycleCommand& cmd, double now) {
  auto cit = credentials_.find(client_id);
  if (cit == credentials_.end() || cit->second.generations.empty())
    return reject();
  CredentialRecord& current = cit->second.generations.back();
  if (current.status != CredentialStatus::kActive) return reject();
  std::uint32_t next_gen = current.generation + 1;
  auto expect = derive_rotation_proof(current.material, next_gen);
  if (!constant_time_equal(cmd.proof, expect)) return reject();
  CredentialRecord rec;
  rec.generation = next_gen;
  rec.status = CredentialStatus::kActive;
  rec.enrolled_at = now;
  rec.material = derive_rotation_key(current.material, next_gen);
  rec.handle = keystore.import_key(
      rec.material, "phone:" + client_id + ":g" + std::to_string(next_gen));
  current.status = CredentialStatus::kRetiring;
  current.retire_at = now + config_.rotation_overlap;
  cit->second.generations.push_back(rec);
  ++rotations_completed_;
  return ApplyResult::kRotated;
}

CredentialRegistry::ApplyResult CredentialRegistry::revoke(
    const std::string& client_id, const LifecycleCommand& cmd) {
  auto cit = credentials_.find(client_id);
  if (cit == credentials_.end()) return reject();
  bool changed = false;
  for (CredentialRecord& rec : cit->second.generations) {
    if (rec.status == CredentialStatus::kRevoked) continue;
    rec.status = CredentialStatus::kRevoked;
    rec.revoked_at = cmd.effective_ts;
    changed = true;
  }
  // Abandon any half-open enrollment too: a revoked client cannot finish.
  changed |= pending_.erase(client_id) > 0;
  if (!changed) return ApplyResult::kNoop;  // idempotent re-apply
  ++revocations_applied_;
  return ApplyResult::kRevoked;
}

std::vector<KeyHandle> CredentialRegistry::usable_handles(
    const std::string& client_id, double now) const {
  std::vector<KeyHandle> out;
  auto cit = credentials_.find(client_id);
  if (cit == credentials_.end()) return out;
  for (auto it = cit->second.generations.rbegin();
       it != cit->second.generations.rend(); ++it) {
    const CredentialRecord& rec = *it;
    switch (rec.status) {
      case CredentialStatus::kActive:
        break;
      case CredentialStatus::kRetiring:
        if (now > rec.retire_at) continue;
        break;
      case CredentialStatus::kRevoked:
        if (now >= rec.revoked_at) continue;
        break;
    }
    if (config_.credential_ttl > 0.0 &&
        now > rec.enrolled_at + config_.credential_ttl)
      continue;  // expired (evaluative only; nothing mutates)
    out.push_back(rec.handle);
  }
  return out;
}

bool CredentialRegistry::known_client(const std::string& client_id) const {
  return credentials_.count(client_id) > 0;
}

bool CredentialRegistry::has_credentials(const std::string& client_id) const {
  auto cit = credentials_.find(client_id);
  return cit != credentials_.end() && !cit->second.generations.empty();
}

std::optional<double> CredentialRegistry::revoked_since(
    const std::string& client_id) const {
  auto cit = credentials_.find(client_id);
  if (cit == credentials_.end() || cit->second.generations.empty())
    return std::nullopt;
  double latest = 0.0;
  for (const CredentialRecord& rec : cit->second.generations) {
    if (rec.status != CredentialStatus::kRevoked) return std::nullopt;
    latest = std::max(latest, rec.revoked_at);
  }
  return latest;
}

// ---- durable serialization ------------------------------------------------

void CredentialRegistry::encode(util::ByteWriter& w) const {
  w.u32be(static_cast<std::uint32_t>(credentials_.size()));
  for (const auto& [client, st] : credentials_) {
    write_str(w, client);
    w.u8(st.has_setup_code ? 1 : 0);
    if (st.has_setup_code) w.raw(st.setup_code);
    w.u32be(static_cast<std::uint32_t>(st.generations.size()));
    for (const CredentialRecord& rec : st.generations) {
      w.u32be(rec.generation);
      w.u8(static_cast<std::uint8_t>(rec.status));
      w.f64be(rec.enrolled_at);
      w.f64be(rec.retire_at);
      w.f64be(rec.revoked_at);
      w.raw(rec.material);
    }
  }
  w.u32be(static_cast<std::uint32_t>(pending_.size()));
  for (const auto& [client, pending] : pending_) {
    write_str(w, client);
    write_str(w, pending.temp_id);
    w.raw(pending.challenge);
    w.f64be(pending.begun_at);
  }
  w.u64be(enrollments_started_);
  w.u64be(enrollments_completed_);
  w.u64be(rotations_completed_);
  w.u64be(revocations_applied_);
  w.u64be(commands_rejected_);
}

void CredentialRegistry::decode(util::ByteReader& r, KeyStore& keystore) {
  credentials_.clear();
  pending_.clear();
  std::uint32_t clients = r.u32be();
  for (std::uint32_t i = 0; i < clients; ++i) {
    std::string client = read_str(r);
    ClientState st;
    st.has_setup_code = r.u8() != 0;
    if (st.has_setup_code) {
      auto raw = r.raw(32);
      std::copy(raw.begin(), raw.end(), st.setup_code.begin());
    }
    std::uint32_t gens = r.u32be();
    for (std::uint32_t g = 0; g < gens; ++g) {
      CredentialRecord rec;
      rec.generation = r.u32be();
      std::uint8_t status = r.u8();
      if (status < 1 || status > 3)
        throw ParseError("lifecycle: bad credential status");
      rec.status = static_cast<CredentialStatus>(status);
      rec.enrolled_at = r.f64be();
      rec.retire_at = r.f64be();
      rec.revoked_at = r.f64be();
      auto raw = r.raw(32);
      std::copy(raw.begin(), raw.end(), rec.material.begin());
      // Import even revoked records: inside the bounded revocation window
      // (now < revoked_at) the credential still verifies, and a restore that
      // lands in that window must behave byte-identically to the uncrashed
      // run. usable_handles() is the gate that kills it at effective time.
      rec.handle = keystore.import_key(
          rec.material,
          rec.generation == 0
              ? "phone:" + client
              : "phone:" + client + ":g" + std::to_string(rec.generation));
      st.generations.push_back(rec);
    }
    credentials_.emplace(std::move(client), std::move(st));
  }
  std::uint32_t pendings = r.u32be();
  for (std::uint32_t i = 0; i < pendings; ++i) {
    std::string client = read_str(r);
    PendingEnrollment pending;
    pending.temp_id = read_str(r);
    auto raw = r.raw(32);
    std::copy(raw.begin(), raw.end(), pending.challenge.begin());
    pending.begun_at = r.f64be();
    pending_.emplace(std::move(client), std::move(pending));
  }
  enrollments_started_ = r.u64be();
  enrollments_completed_ = r.u64be();
  rotations_completed_ = r.u64be();
  revocations_applied_ = r.u64be();
  commands_rejected_ = r.u64be();
}

}  // namespace fiat::crypto
