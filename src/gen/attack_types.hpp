// Attack taxonomy shared by the single-device generator (attacks.hpp), the
// fleet-scale campaign composer (attack_director.hpp) and the proxy's
// ground-truth attack ledger (core/attack_label.hpp).
//
// The first five types are the scripted single-device attacks of §5.1; the
// last four are campaign-level modes the AttackDirector composes against
// testbed fleets:
//
//  * kBucketMimicry — WiFinger-style: replay the device's own predictable
//    bucket signatures (exact remote/port/proto/size tuples sniffed from its
//    benign traffic) as cover chaff around a real command, hoping the event
//    classifier reads the event as a predictable burst.
//  * kPaddingEvasion — pad/stretch the command's sizes and inter-arrival
//    times away from the learned manual signature so the classifier misses
//    the manual shape.
//  * kProofReplay — flood the proxy's auth channel with captured (stale or
//    duplicate) humanness proofs while issuing commands, attacking
//    ReplayCache and the proof-sequence high-water.
//  * kSybilHome — attacker-controlled homes emitting plausible benign-shaped
//    traffic to skew fleet-level statistics (no per-packet violation; graded
//    on fleet accounting, not per-packet verdicts).
//  * kRevokedCredential — a phone whose pairing was revoked keeps using its
//    stolen credential: proofs sealed with the dead key plus the commands
//    they try to cover. Synthesized by the churn scenario
//    (fleet/fleet_testbed.hpp), not composed as director waves.
#pragma once

namespace fiat::gen {

enum class AttackType {
  kAccountCompromise,
  kBruteForce,
  kLanInjection,
  kRuleMimicry,
  kPiggyback,
  kBucketMimicry,
  kPaddingEvasion,
  kProofReplay,
  kSybilHome,
  kRevokedCredential,
};

inline constexpr int kAttackTypeCount = 10;

const char* attack_name(AttackType type);

}  // namespace fiat::gen
