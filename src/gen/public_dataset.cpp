#include "gen/public_dataset.hpp"

#include <algorithm>
#include <set>
#include <cmath>

#include "sim/rng.hpp"

namespace fiat::gen {

namespace {

struct SyntheticFlow {
  net::Ipv4Addr remote;
  std::string domain;
  net::Transport proto;
  std::uint16_t dst_port;
  std::uint32_t size_up;
  std::uint32_t size_down;  // 0 = unidirectional
  double period;
  bool stable_src_port;
};

net::Ipv4Addr random_public_ip(sim::Rng& rng) {
  return net::Ipv4Addr(static_cast<std::uint8_t>(rng.uniform_int(11, 223)),
                       static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
                       static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
                       static_cast<std::uint8_t>(rng.uniform_int(1, 254)));
}

/// Period mix matching Fig 1(c): 80-90% of periodic traffic recurs within
/// 5 minutes; nothing beyond 10 minutes. A slice of sub-5-second flows
/// (keep-alives, media heartbeats) is what makes IoT-Inspector-style 5 s
/// aggregation lossy: several beats fold into one window sum.
double draw_period(sim::Rng& rng) {
  double u = rng.uniform();
  if (u < 0.20) return rng.uniform(1.0, 5.0);
  if (u < 0.55) return rng.uniform(5.0, 60.0);
  if (u < 0.88) return rng.uniform(60.0, 300.0);
  return rng.uniform(300.0, 600.0);
}

}  // namespace

std::vector<PublicDeviceTrace> generate_public_dataset(
    const PublicDatasetConfig& config) {
  sim::Rng master(config.seed);
  std::vector<PublicDeviceTrace> out;
  out.reserve(config.num_devices);
  double duration = config.duration_hours * 3600.0;

  for (std::size_t d = 0; d < config.num_devices; ++d) {
    sim::Rng rng = master.fork();
    PublicDeviceTrace trace;
    trace.name = "device-" + std::to_string(d);
    trace.device_ip = net::Ipv4Addr(192, 168, 0,
                                    static_cast<std::uint8_t>(2 + (d % 250)));

    // Periodic control flows. Packet sizes are unique per device so flows
    // sharing a cloud remote never collide into one packet-level bucket
    // (firmware message schemas differ per endpoint/flow).
    int n_flows = static_cast<int>(rng.uniform_int(2, 9));
    std::vector<SyntheticFlow> flows;
    std::set<std::uint32_t> used_sizes;
    auto unique_size = [&rng, &used_sizes]() {
      for (;;) {
        auto s = static_cast<std::uint32_t>(rng.uniform_int(70, 600));
        if (used_sizes.insert(s).second) return s;
      }
    };
    for (int f = 0; f < n_flows; ++f) {
      SyntheticFlow flow;
      // Devices multiplex several services behind one cloud frontend: about
      // half the flows reuse an earlier flow's remote. At packet level the
      // distinct sizes keep the buckets separate; under 5-second aggregation
      // the flows merge and their combinatorial window sums stop repeating —
      // the IoT-Inspector degradation of §2.2.
      if (f > 0 && rng.chance(0.45)) {
        const auto& prev = flows[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(flows.size()) - 1))];
        flow.remote = prev.remote;
        flow.domain = prev.domain;
      } else {
        flow.remote = random_public_ip(rng);
        flow.domain = "svc" + std::to_string(f) + "." + trace.name + ".example";
      }
      flow.proto = rng.chance(0.7) ? net::Transport::kTcp : net::Transport::kUdp;
      flow.dst_port = rng.chance(0.6) ? 443 : static_cast<std::uint16_t>(
                                                  rng.uniform_int(1024, 49151));
      flow.size_up = unique_size();
      flow.size_down = rng.chance(0.6) ? unique_size() : 0;
      flow.period = draw_period(rng);
      // Per-flow port behaviour: reconnecting flows break the Classic
      // definition but stay PortLess-predictable.
      flow.stable_src_port = rng.chance(0.55);
      flows.push_back(flow);
      trace.dns.add(flow.remote, flow.domain);
    }

    for (const auto& flow : flows) {
      std::uint16_t stable_port =
          static_cast<std::uint16_t>(rng.uniform_int(32768, 60999));
      double jitter = std::min(0.2, flow.period * 0.01);
      double t = rng.uniform(0.0, flow.period);
      while (t < duration) {
        std::uint16_t sport =
            flow.stable_src_port
                ? stable_port
                : static_cast<std::uint16_t>(rng.uniform_int(32768, 60999));
        net::PacketRecord up;
        up.ts = t;
        up.size = flow.size_up;
        up.src_ip = trace.device_ip;
        up.dst_ip = flow.remote;
        up.src_port = sport;
        up.dst_port = flow.dst_port;
        up.proto = flow.proto;
        up.tcp_flags = flow.proto == net::Transport::kTcp ? 0x18 : 0;
        up.tls_version = (flow.proto == net::Transport::kTcp && flow.dst_port == 443)
                             ? 0x0303
                             : 0;
        trace.packets.push_back(up);
        if (flow.size_down > 0) {
          net::PacketRecord down = up;
          down.ts = t + rng.uniform(0.005, 0.05);
          down.size = flow.size_down;
          down.src_ip = flow.remote;
          down.dst_ip = trace.device_ip;
          down.src_port = flow.dst_port;
          down.dst_port = sport;
          trace.packets.push_back(down);
        }
        t += flow.period + rng.uniform(-jitter, jitter);
      }
    }

    // Aperiodic (unpredictable) traffic, calibrated as a per-device target
    // fraction of the device's own periodic volume. Idle captures have very
    // little; continuous captures span a wide range (most devices mostly
    // predictable, a tail of chatty/media devices is not — the Fig 1(b)
    // spread); active captures add human-triggered bursts on top.
    double periodic_pps = 0.0;
    for (const auto& flow : flows) {
      periodic_pps += (flow.size_down > 0 ? 2.0 : 1.0) / flow.period;
    }
    double unpred_target;
    switch (config.mode) {
      case PublicMode::kIdle:
        unpred_target = rng.uniform(0.002, 0.06);
        break;
      case PublicMode::kContinuous:
        unpred_target = rng.chance(0.25) ? rng.uniform(0.15, 0.55)
                                         : 0.01 + 0.14 * rng.uniform() * rng.uniform();
        break;
      case PublicMode::kActive:
        unpred_target = rng.uniform(0.10, 0.55);
        break;
    }
    double mean_burst_packets = 7.0;
    double burst_rate =  // bursts per second
        periodic_pps * unpred_target / ((1.0 - unpred_target) * mean_burst_packets);
    double t = rng.exponential(1.0 / burst_rate);
    while (t < duration) {
      int n = static_cast<int>(rng.uniform_int(2, 12));  // mean ~7 packets
      // Bursts mostly ride the device's existing cloud sessions, so their
      // odd-sized packets contaminate the same aggregation identities the
      // periodic flows live in (the §2.2 window-poisoning effect).
      net::Ipv4Addr remote = rng.chance(0.8) ? flows[static_cast<std::size_t>(
                                                   rng.uniform_int(0, n_flows - 1))]
                                                   .remote
                                             : random_public_ip(rng);
      std::uint16_t sport = static_cast<std::uint16_t>(rng.uniform_int(32768, 60999));
      double bt = t;
      for (int i = 0; i < n; ++i) {
        net::PacketRecord pkt;
        pkt.ts = bt;
        pkt.size = static_cast<std::uint32_t>(
            std::clamp(rng.lognormal(6.1, 0.8), 60.0, 1500.0));
        bool outbound = rng.chance(0.5);
        pkt.src_ip = outbound ? trace.device_ip : remote;
        pkt.dst_ip = outbound ? remote : trace.device_ip;
        pkt.src_port = outbound ? sport : 443;
        pkt.dst_port = outbound ? 443 : sport;
        pkt.proto = net::Transport::kTcp;
        pkt.tcp_flags = 0x18;
        pkt.tls_version = 0x0303;
        trace.packets.push_back(pkt);
        bt += rng.exponential(2.2);  // bursts span multiple 5 s windows
      }
      t = bt + rng.exponential(1.0 / burst_rate);
    }

    std::sort(trace.packets.begin(), trace.packets.end(),
              [](const net::PacketRecord& a, const net::PacketRecord& b) {
                return a.ts < b.ts;
              });

    // Mon(IoT)r active captures often miss the start of connections (§3):
    // drop the first few packets of the capture window.
    if (config.mode == PublicMode::kActive && trace.packets.size() > 20) {
      auto drop = static_cast<std::size_t>(rng.uniform_int(3, 15));
      trace.packets.erase(trace.packets.begin(),
                          trace.packets.begin() + static_cast<long>(drop));
    }
    out.push_back(std::move(trace));
  }
  return out;
}

}  // namespace fiat::gen
