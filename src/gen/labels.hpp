// Ground-truth label types for generated traces.
//
// The paper labels testbed traffic into three categories (§2): control
// (software keep-alive/telemetry), automated (routines, e.g. IFTTT), and
// manual (human-triggered through a companion app). Our generators attach
// these labels to every packet, which is exactly the ground truth the IL
// household's logging app + routine timestamps gave the authors (§3.1).
#pragma once

#include <string>
#include <vector>

#include "net/dns.hpp"
#include "net/packet.hpp"

namespace fiat::gen {

enum class TrafficClass : int { kControl = 0, kAutomated = 1, kManual = 2 };

const char* traffic_class_name(TrafficClass c);

struct LabeledPacket {
  net::PacketRecord pkt;
  TrafficClass label = TrafficClass::kControl;
  /// Generator event id for packets belonging to a discrete event
  /// (automated routine firing or manual interaction); -1 for background
  /// flow packets.
  int event_id = -1;
};

/// One ground-truth interaction window (mirrors the IL user's logging app:
/// when, for how long, and with which class of action).
struct Interaction {
  int event_id = -1;
  double start = 0.0;
  double end = 0.0;
  TrafficClass cls = TrafficClass::kManual;
};

/// A fully labeled, time-sorted capture for one device at one location.
struct LabeledTrace {
  std::string device_name;
  std::string location;  // "US", "JP", "DE", "IL"
  net::Ipv4Addr device_ip;
  net::Ipv4Addr phone_ip;
  std::vector<LabeledPacket> packets;
  std::vector<Interaction> interactions;
  /// IP->domain ground truth accumulated from the DNS traffic the generator
  /// emitted (what a passive observer could learn from the trace).
  net::DnsTable dns;

  double duration() const {
    return packets.empty() ? 0.0 : packets.back().pkt.ts - packets.front().pkt.ts;
  }
  std::size_t count_of(TrafficClass c) const;
};

}  // namespace fiat::gen
