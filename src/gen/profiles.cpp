// The ten testbed device profiles of Table 1, with behavioural parameters
// calibrated to reproduce the paper's per-device observations:
//
//  * control predictability ~98% everywhere except Nest-E (~91%, hourly
//    quirk events with drifting intervals, §3.2);
//  * automated events of 2 packets (SP10/WP3, predictability 0) up to ~30
//    packets (Google Home), followed by a repetitive phase (~90% overall);
//  * manual events: fixed-size notification packets for the simple-rule
//    devices (SP10/WP3 235 B, Nest-E 267 B); streaming tails for the cameras
//    (60-65% manual predictability); distinctive first-packet signatures
//    (proto / direction / TLS carry the signal, per Table 4);
//  * command-completion packet counts N from 1 (plugs) to 41 (WyzeCam).
//
// Class signatures derive from three templates — the §3.3 communication
// models: unpredictable *control* is device-initiated, slow, small packets,
// mostly non-TLS; *automated* is cloud-pushed, fast, mid-sized, TLS 1.2;
// *manual* is cloud/phone-pushed, chatty, large, TLS 1.3. A per-device
// `blur` knob pulls the class distributions together, which is how the
// Table 3 F1 spread (Google Home hardest ~0.77, cameras ~0.99) arises.
#include "gen/device_profile.hpp"

#include "util/error.hpp"

namespace fiat::gen {

namespace {

// The three class templates spread the signal across MANY weakly
// informative per-packet features (direction, flags, TLS, proto, size, iat
// — each overlapping heavily between classes) instead of a single clean
// separator. Real traffic looks like this too, and it is what gives the
// paper's Table 2 its shape: aggregating models (NCC, BernoulliNB) combine
// dozens of weak cues and win, while a depth-3 tree can only consult three.

EventSignature control_template() {
  EventSignature s;
  s.min_packets = 5;
  s.max_packets = 9;
  s.first_inbound_prob = 0.12;
  s.alternate_prob = 0.15;
  s.proto = net::Transport::kTcp;
  s.proto_noise = 0.25;
  s.tls_prob = 0.15;
  s.tls_version = 0x0303;
  s.psh_prob = 0.25;
  s.alt_port_prob = 0.70;
  s.size_mu = 5.85;    // ~330 B
  s.size_sigma = 0.40;
  s.iat_mean = 0.45;
  return s;
}

EventSignature automated_template() {
  EventSignature s;
  s.min_packets = 5;
  s.max_packets = 10;
  s.first_inbound_prob = 0.20;
  s.alternate_prob = 0.25;
  s.proto = net::Transport::kTcp;
  s.proto_noise = 0.02;
  s.tls_prob = 0.90;
  s.tls_version = 0x0303;
  s.psh_prob = 0.20;
  s.alt_port_prob = 0.70;
  s.size_mu = 6.15;   // ~470 B
  s.size_sigma = 0.40;
  s.iat_mean = 0.18;
  return s;
}

EventSignature manual_template() {
  EventSignature s;
  s.min_packets = 5;
  s.max_packets = 12;
  s.first_inbound_prob = 0.92;
  s.alternate_prob = 0.70;
  s.proto = net::Transport::kTcp;
  s.proto_noise = 0.04;
  s.tls_prob = 0.92;
  s.tls_version = 0x0304;
  s.psh_prob = 0.85;
  s.alt_port_prob = 0.05;
  s.size_mu = 6.45;    // ~665 B
  s.size_sigma = 0.40;
  s.iat_mean = 0.09;
  s.lan_peer_prob = 0.15;
  return s;
}

double blur_p(double p, double amount) { return p + (0.5 - p) * amount; }

/// Pulls a signature towards the class-agnostic middle: probabilities
/// towards 0.5, sizes towards ~490 B, spreads wider. amount in [0,1].
void blur(EventSignature& s, double amount) {
  s.first_inbound_prob = blur_p(s.first_inbound_prob, amount);
  s.alternate_prob = blur_p(s.alternate_prob, amount);
  s.proto_noise = blur_p(s.proto_noise, amount * 0.6);
  s.tls_prob = blur_p(s.tls_prob, amount);
  s.size_mu = s.size_mu + (6.2 - s.size_mu) * amount;
  s.size_sigma *= (1.0 + 1.5 * amount);
  s.iat_mean = s.iat_mean + (0.25 - s.iat_mean) * amount;
}

void apply_blur(DeviceProfile& p, double amount) {
  blur(p.control_sig, amount);
  blur(p.automated_sig, amount);
  blur(p.manual_sig, amount);
}

DeviceProfile echo_dot(const std::string& name, std::uint64_t variant) {
  DeviceProfile p;
  p.name = name;
  p.min_command_packets = 7;
  p.control_flows = {
      {"avs.amazon.example", net::Transport::kTcp, 443, 140, 180, 60.0, 0.05, true, true},
      {"device-metrics.amazon.example", net::Transport::kTcp, 443, 210, 0, 150.0, 0.08,
       false, true},
      {"ntp.amazon.example", net::Transport::kUdp, 123, 90, 90, 300.0, 0.05, true, false},
  };
  p.event_services = {"avs.amazon.example", "todo.amazon.example"};
  p.unpred_control_per_hour = 0.14;
  p.control_sig = control_template();
  p.routines = {{7 * 3600.0 + 1800, 60.0, 40, 420, 1.0},
                {19 * 3600.0, 60.0, 40, 420, 1.0}};
  p.automated_sig = automated_template();
  p.manual_sig = manual_template();
  p.manual_sig.stream_prob = 0.35;  // music playback tail
  p.manual_sig.stream_rate = 0.4;
  p.manual_sig.stream_duration_mean = 4.0;
  p.manual_sig.stream_size = 980;
  p.manual_per_day = 1.5;
  // Dot 4 shows slightly noisier separation than the older Dot 3
  // (Table 3: F1 0.88 vs 0.94 under BernoulliNB).
  apply_blur(p, variant == 4 ? 0.12 : 0.03);
  return p;
}

DeviceProfile google_speaker(const std::string& name, bool mini) {
  DeviceProfile p;
  p.name = name;
  p.min_command_packets = mini ? 9 : 12;
  p.control_flows = {
      {"clients.google.example", net::Transport::kTcp, 443, 130, 160, 45.0, 0.05, true, true},
      {"cast.google.example", net::Transport::kTcp, 8009, 180, 0, 120.0, 0.06, true, true},
      {"time.google.example", net::Transport::kUdp, 123, 90, 90, 600.0, 0.05, true, false},
  };
  p.event_services = {"clients.google.example", "assistant.google.example"};
  p.unpred_control_per_hour = 0.14;
  p.control_sig = control_template();
  p.routines = {{6 * 3600.0, 90.0, 60, 512, 0.8},
                {18 * 3600.0 + 600, 90.0, 60, 512, 0.8}};
  p.automated_sig = automated_template();
  // Google Home's automated bursts run up to ~30 packets (§3.2).
  p.automated_sig.min_packets = 5;
  p.automated_sig.max_packets = 18;
  p.manual_sig = manual_template();
  p.manual_sig.min_packets = 5;
  p.manual_sig.max_packets = 16;
  p.manual_sig.lan_peer_prob = 0.2;
  p.manual_sig.stream_prob = 0.3;
  p.manual_sig.stream_rate = 0.35;
  p.manual_sig.stream_duration_mean = 4.0;
  p.manual_sig.stream_size = 1020;
  p.manual_per_day = 1.5;
  // The full-size Home is the hardest device in Table 3 (F1 ~0.77): its
  // manual and automated app flows run through the same assistant stack.
  apply_blur(p, mini ? 0.08 : 0.30);
  return p;
}

DeviceProfile camera(const std::string& name, const std::string& vendor) {
  DeviceProfile p;
  p.name = name;
  p.min_command_packets = name == "WyzeCam" ? 41 : 25;
  p.control_flows = {
      {"api." + vendor + ".example", net::Transport::kTcp, 443, 150, 190, 60.0, 0.05,
       true, true},
      {"heartbeat." + vendor + ".example", net::Transport::kUdp, 10001, 110, 110, 20.0,
       0.04, true, false},
      {"upload." + vendor + ".example", net::Transport::kTcp, 443, 260, 0, 240.0, 0.08,
       false, true},
  };
  p.event_services = {"api." + vendor + ".example", "relay." + vendor + ".example"};
  p.unpred_control_per_hour = 0.14;
  p.control_sig = control_template();
  p.routines = {{8 * 3600.0, 60.0, 50, 760, 0.6},
                {20 * 3600.0 + 900, 60.0, 50, 760, 0.6}};
  p.automated_sig = automated_template();
  // Manual = live view: a UDP media session — pkt1-proto is the giveaway
  // (top permutation importance for WyzeCam-DE, Table 4).
  p.manual_sig = manual_template();
  p.manual_sig.proto = net::Transport::kUdp;
  p.manual_sig.proto_noise = 0.04;
  p.manual_sig.tls_prob = 0.10;
  p.manual_sig.size_mu = 6.9;
  p.manual_sig.size_sigma = 0.3;
  p.manual_sig.iat_mean = 0.08;
  p.manual_sig.lan_peer_prob = 0.25;
  p.manual_sig.stream_prob = 0.85;  // the video itself
  p.manual_sig.stream_rate = 0.5;
  p.manual_sig.stream_duration_mean = 11.0;
  p.manual_sig.stream_size = 1372;
  p.manual_per_day = 1.5;
  apply_blur(p, 0.0);
  return p;
}

DeviceProfile smart_plug(const std::string& name, const std::string& vendor) {
  DeviceProfile p;
  p.name = name;
  p.simple_rule = true;
  p.rule_packet_size = 235;
  p.min_command_packets = 1;  // one 235 B packet flips the relay (§3.3)
  p.control_flows = {
      {"mqtt." + vendor + ".example", net::Transport::kTcp, 8883, 120, 120, 30.0, 0.04,
       true, true},
      {"api." + vendor + ".example", net::Transport::kTcp, 443, 170, 0, 300.0, 0.07,
       false, true},
  };
  p.event_services = {"mqtt." + vendor + ".example"};
  p.unpred_control_per_hour = 0.14;
  p.control_sig = control_template();
  p.control_sig.min_packets = 2;
  p.control_sig.max_packets = 5;
  p.control_sig.size_mu = 5.4;

  // Routines are bare 2-packet commands: no repetitive phase at all, which
  // is why Figure 2 shows automated predictability 0 for SP10/WP3.
  p.routines = {{7 * 3600.0, 45.0, 0, 0, 0.0}, {22 * 3600.0, 45.0, 0, 0, 0.0}};
  p.automated_sig = automated_template();
  p.automated_sig.min_packets = 2;
  p.automated_sig.max_packets = 2;
  p.automated_sig.first_inbound_prob = 1.0;
  p.automated_sig.alternate_prob = 1.0;
  p.automated_sig.size_mu = 5.5;   // ~245 B, near but never equal to 235
  p.automated_sig.size_sigma = 0.08;

  p.manual_sig = manual_template();
  p.manual_sig.min_packets = 2;
  p.manual_sig.max_packets = 2;
  p.manual_sig.first_inbound_prob = 1.0;
  p.manual_sig.alternate_prob = 1.0;
  p.manual_sig.stream_prob = 0.0;
  p.manual_sig.lan_peer_prob = 0.0;
  p.manual_per_day = 2.7;  // the plugs were the most-used devices (§3.1)
  return p;
}

DeviceProfile nest_thermostat() {
  DeviceProfile p;
  p.name = "Nest-E";
  p.simple_rule = true;
  p.rule_packet_size = 267;
  p.min_command_packets = 3;
  p.control_flows = {
      {"transport.nest.example", net::Transport::kTcp, 443, 160, 200, 60.0, 0.05, true,
       true},
      {"weather.nest.example", net::Transport::kTcp, 443, 230, 0, 300.0, 0.08, false,
       true},
      {"time.nest.example", net::Transport::kUdp, 123, 90, 90, 600.0, 0.05, true, false},
  };
  p.event_services = {"transport.nest.example"};
  // The §3.2 outlier: motion-sensor / phone-presence behaviours produce
  // "events happening every hour but with slightly different intervals",
  // dragging control predictability down to ~91%.
  p.unpred_control_per_hour = 0.95;
  p.control_sig = control_template();
  p.control_sig.min_packets = 14;
  p.control_sig.max_packets = 26;
  p.control_sig.size_mu = 5.7;
  p.control_sig.iat_mean = 0.35;

  p.routines = {{6 * 3600.0, 30.0, 25, 330, 1.2}, {21 * 3600.0, 30.0, 25, 330, 1.2}};
  p.automated_sig = automated_template();
  p.automated_sig.min_packets = 3;
  p.automated_sig.max_packets = 7;

  p.manual_sig = manual_template();
  p.manual_sig.min_packets = 3;
  p.manual_sig.max_packets = 5;
  p.manual_sig.stream_prob = 0.0;
  p.manual_sig.lan_peer_prob = 0.0;
  p.manual_per_day = 1.2;
  return p;
}

DeviceProfile mop_robot() {
  DeviceProfile p;
  p.name = "E4";
  p.min_command_packets = 6;
  p.control_flows = {
      {"iot.roborock.example", net::Transport::kTcp, 443, 140, 170, 90.0, 0.06, true,
       true},
      {"ota.roborock.example", net::Transport::kTcp, 443, 200, 0, 600.0, 0.1, false,
       true},
  };
  p.event_services = {"iot.roborock.example", "cmd.roborock.example"};
  p.unpred_control_per_hour = 0.14;
  p.control_sig = control_template();
  p.routines = {{10 * 3600.0, 120.0, 45, 540, 1.0}};
  p.automated_sig = automated_template();
  p.manual_sig = manual_template();
  // Least-used device in the IL household: ~8 interactions over 15 days
  // (§3.1) — the small training set is what hurts its Table 3/6 numbers.
  p.manual_per_day = 0.55;
  apply_blur(p, 0.10);
  return p;
}

}  // namespace

std::vector<DeviceProfile> testbed_profiles() {
  std::vector<DeviceProfile> out;
  out.push_back(echo_dot("EchoDot4", 4));
  out.push_back(google_speaker("HomeMini", /*mini=*/true));
  out.push_back(camera("WyzeCam", "wyze"));
  out.push_back(smart_plug("SP10", "teckin"));
  out.push_back(google_speaker("Home", /*mini=*/false));
  out.push_back(nest_thermostat());
  out.push_back(echo_dot("EchoDot3", 3));
  out.push_back(mop_robot());
  out.push_back(camera("Blink", "blink"));
  out.push_back(smart_plug("WP3", "gosund"));
  return out;
}

const DeviceProfile& profile_by_name(const std::string& name) {
  static const std::vector<DeviceProfile> profiles = testbed_profiles();
  for (const auto& p : profiles) {
    if (p.name == name) return p;
  }
  throw LogicError("unknown device profile: " + name);
}

DeviceProfile soundtouch_profile() {
  DeviceProfile p;
  p.name = "SoundTouch10";
  p.min_command_packets = 8;
  // Eight steady flows, as the YourThings capture in Figure 1(a) shows.
  p.control_flows = {
      {"streaming.bose.example", net::Transport::kTcp, 443, 150, 190, 30.0, 0.04, true, true},
      {"updates.bose.example", net::Transport::kTcp, 443, 210, 0, 120.0, 0.05, true, true},
      {"telemetry.bose.example", net::Transport::kTcp, 443, 180, 140, 60.0, 0.05, true, true},
      {"ntp.bose.example", net::Transport::kUdp, 123, 90, 90, 64.0, 0.03, true, false},
      {"discovery.bose.example", net::Transport::kUdp, 1900, 300, 0, 90.0, 0.05, true, false},
      {"keepalive.bose.example", net::Transport::kTcp, 8080, 70, 70, 15.0, 0.02, true, false},
  };
  p.event_services = {"streaming.bose.example"};
  p.unpred_control_per_hour = 0.2;
  p.control_sig = control_template();
  p.manual_sig = manual_template();
  p.automated_sig = automated_template();
  p.manual_per_day = 0.0;
  return p;
}

}  // namespace fiat::gen
