// Synthetic stand-ins for the public datasets of Section 2:
//
//  * YourThings: 65 devices, continuous multi-day captures, no labels.
//  * Mon(IoT)r: ~104 devices, split into idle captures (control only) and
//    active captures (idle + human-triggered bursts, with connection starts
//    often missing).
//
// Each synthetic device gets a randomized mix of periodic flows (periods
// mostly under 5 minutes, max 10 — the Figure 1(c) shape) and aperiodic
// bursts; a per-device port-stability draw creates the Classic-vs-PortLess
// predictability gap of Figure 1(b).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/dns.hpp"
#include "net/packet.hpp"

namespace fiat::gen {

enum class PublicMode { kContinuous, kIdle, kActive };

struct PublicDeviceTrace {
  std::string name;
  net::Ipv4Addr device_ip;
  std::vector<net::PacketRecord> packets;  // time-sorted
  net::DnsTable dns;
};

struct PublicDatasetConfig {
  std::size_t num_devices = 65;
  double duration_hours = 24.0;
  std::uint64_t seed = 2022;
  PublicMode mode = PublicMode::kContinuous;
};

std::vector<PublicDeviceTrace> generate_public_dataset(const PublicDatasetConfig& config);

}  // namespace fiat::gen
