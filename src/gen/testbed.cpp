#include "gen/testbed.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace fiat::gen {

const char* traffic_class_name(TrafficClass c) {
  switch (c) {
    case TrafficClass::kControl: return "control";
    case TrafficClass::kAutomated: return "automated";
    case TrafficClass::kManual: return "manual";
  }
  return "?";
}

std::size_t LabeledTrace::count_of(TrafficClass c) const {
  std::size_t n = 0;
  for (const auto& p : packets) {
    if (p.label == c) ++n;
  }
  return n;
}

namespace {

constexpr double kDay = 86400.0;

struct Generator {
  const DeviceProfile& profile;
  const LocationEnv& env;
  const TraceConfig& config;
  sim::Rng rng;
  LabeledTrace trace;
  double duration;
  int next_event_id = 0;

  Generator(const DeviceProfile& p, const LocationEnv& e, const TraceConfig& c)
      : profile(p), env(e), config(c), rng(c.seed),
        duration(c.duration_days * kDay) {
    trace.device_name = profile.name;
    trace.location = env.code();
    trace.device_ip = env.device_ip(config.device_index);
    trace.phone_ip = env.phone_ip();
  }

  std::uint16_t ephemeral_port() {
    return static_cast<std::uint16_t>(rng.uniform_int(32768, 60999));
  }

  void emit(double ts, bool outbound, net::Ipv4Addr remote, std::uint16_t remote_port,
            std::uint16_t local_port, net::Transport proto, std::uint32_t size,
            std::uint16_t tls, TrafficClass label, int event_id,
            std::uint8_t tcp_flags = net::TcpFlags::kPsh | net::TcpFlags::kAck) {
    net::PacketRecord pkt;
    pkt.ts = ts;
    pkt.size = std::clamp<std::uint32_t>(size, 60, 1500);
    if (outbound) {
      pkt.src_ip = trace.device_ip;
      pkt.dst_ip = remote;
      pkt.src_port = local_port;
      pkt.dst_port = remote_port;
    } else {
      pkt.src_ip = remote;
      pkt.dst_ip = trace.device_ip;
      pkt.src_port = remote_port;
      pkt.dst_port = local_port;
    }
    pkt.proto = proto;
    pkt.tcp_flags = proto == net::Transport::kTcp ? tcp_flags : 0;
    pkt.tls_version = (proto == net::Transport::kTcp) ? tls : 0;
    trace.packets.push_back(LabeledPacket{pkt, label, event_id});
  }

  net::Ipv4Addr service_ip(const std::string& logical, std::uint32_t replica) {
    std::string domain = env.localize_domain(logical);
    net::Ipv4Addr ip = env.ip_of(domain, replica);
    trace.dns.add(ip, domain);
    return ip;
  }

  // ---- periodic control flows -------------------------------------------
  void gen_control_flows() {
    for (const auto& flow : profile.control_flows) {
      net::Ipv4Addr remote = service_ip(flow.service, 0);
      std::uint16_t stable_port = ephemeral_port();
      double t = rng.uniform(0.0, flow.period);
      while (t < duration) {
        std::uint16_t sport = flow.stable_src_port ? stable_port : ephemeral_port();
        std::uint16_t tls = flow.with_tls ? 0x0303 : 0;
        emit(t, /*outbound=*/true, remote, flow.dst_port, sport, flow.proto,
             flow.size_up, tls, TrafficClass::kControl, -1);
        if (flow.size_down > 0) {
          emit(t + rng.uniform(0.005, 0.03), /*outbound=*/false, remote, flow.dst_port,
               sport, flow.proto, flow.size_down, tls, TrafficClass::kControl, -1);
        }
        t += flow.period + rng.uniform(-flow.jitter, flow.jitter);
      }
    }
  }

  // ---- DNS refresh traffic ----------------------------------------------
  void gen_dns() {
    std::vector<std::string> services;
    for (const auto& flow : profile.control_flows) services.push_back(flow.service);
    for (const auto& s : profile.event_services) services.push_back(s);
    std::sort(services.begin(), services.end());
    services.erase(std::unique(services.begin(), services.end()), services.end());

    for (const auto& logical : services) {
      std::string domain = env.localize_domain(logical);
      // Query/response sizes are deterministic per name (so DNS itself is a
      // predictable flow, as in real traces); a name-keyed salt models the
      // per-service EDNS/answer-set differences that keep same-length names
      // from colliding into one bucket.
      std::uint32_t salt = 0;
      for (unsigned char ch : domain) salt = salt * 131 + ch;
      auto qsize = static_cast<std::uint32_t>(62 + domain.size() + salt % 5);
      auto rsize = static_cast<std::uint32_t>(78 + domain.size() + salt % 23);
      std::uint16_t sport = ephemeral_port();
      double t = rng.uniform(0.0, 60.0);
      while (t < duration) {
        emit(t, true, env.dns_resolver(), net::kDnsPort, sport, net::Transport::kUdp,
             qsize, 0, TrafficClass::kControl, -1);
        emit(t + rng.uniform(0.002, 0.02), false, env.dns_resolver(), net::kDnsPort,
             sport, net::Transport::kUdp, rsize, 0, TrafficClass::kControl, -1);
        trace.dns.add(env.ip_of(domain, 0), domain);
        t += 600.0 + rng.uniform(-1.0, 1.0);
      }
    }
  }

  // ---- unpredictable events ---------------------------------------------

  /// Draws one packet size from the signature, avoiding the simple-rule size
  /// for non-manual classes so rule devices stay false-positive-free.
  std::uint32_t draw_size(const EventSignature& sig, TrafficClass cls) {
    for (int attempt = 0; attempt < 8; ++attempt) {
      // Bounded log-uniform spread: device payloads have firmware-fixed
      // schemas, so sizes stay within a band rather than ranging freely.
      double log_size = sig.size_mu + rng.uniform(-1.7, 1.7) * sig.size_sigma;
      auto size = static_cast<std::uint32_t>(
          std::clamp(std::exp(log_size), 60.0, 1500.0));
      if (profile.simple_rule && cls != TrafficClass::kManual &&
          size == profile.rule_packet_size) {
        continue;
      }
      return size;
    }
    return 61;
  }

  const EventSignature& signature_of(TrafficClass cls) const {
    switch (cls) {
      case TrafficClass::kAutomated: return profile.automated_sig;
      case TrafficClass::kManual: return profile.manual_sig;
      default: return profile.control_sig;
    }
  }

  /// Emits one unpredictable event; returns its end time.
  ///
  /// Each event draws a latent "intensity" z shared by all its packets: a
  /// high-z event moves more data, more slowly, with less TLS — independent
  /// of its class. This correlated within-event variation is what real
  /// app sessions exhibit, and it blurs every single-feature marginal while
  /// leaving the class centroids separated — the geometry behind Table 2's
  /// ranking (centroid/NB models beat shallow axis-aligned trees).
  double gen_event(double start, const EventSignature& sig_given, TrafficClass cls) {
    // Ground-truth imprecision: keep the label, swap the behaviour.
    const EventSignature* chosen = &sig_given;
    if (!profile.simple_rule && config.label_confusion > 0 &&
        rng.chance(config.label_confusion)) {
      auto other = static_cast<TrafficClass>(
          (static_cast<int>(cls) + static_cast<int>(rng.uniform_int(1, 2))) % 3);
      chosen = &signature_of(other);
    }
    const EventSignature& sig_in = *chosen;
    double z = std::clamp(rng.normal(), -1.8, 1.8);
    EventSignature sig = sig_in;
    sig.size_mu = sig_in.size_mu + 0.30 * z;
    sig.size_sigma = std::max(0.15, sig_in.size_sigma - 0.20);
    sig.iat_mean = sig_in.iat_mean * std::exp(0.6 * z);
    sig.tls_prob = std::clamp(sig_in.tls_prob + 0.18 * z, 0.02, 0.98);
    sig.psh_prob = std::clamp(sig_in.psh_prob - 0.25 * z, 0.02, 0.98);
    sig.alt_port_prob = std::clamp(sig_in.alt_port_prob - 0.15 * z, 0.0, 1.0);
    sig.first_inbound_prob =
        std::clamp(sig_in.first_inbound_prob - 0.15 * z, 0.05, 0.95);

    int event_id = next_event_id++;
    bool lan_peer = rng.chance(sig.lan_peer_prob);
    net::Ipv4Addr remote =
        lan_peer ? trace.phone_ip
                 : service_ip(profile.event_services[sig.service_index % std::max<std::size_t>(
                                  1, profile.event_services.size())],
                              static_cast<std::uint32_t>(
                                  rng.uniform_int(0, LocationEnv::kReplicasPerService - 1)));
    std::uint16_t remote_port =
        lan_peer ? ephemeral_port()
                 : (rng.chance(sig.alt_port_prob) ? sig.alt_port : sig.event_port);
    std::uint16_t local_port = ephemeral_port();

    int n = static_cast<int>(rng.uniform_int(sig.min_packets, sig.max_packets));
    // The latent intensity also stretches/shrinks the burst length, so raw
    // packet counts do not cleanly separate the classes.
    n = std::max(sig.min_packets > 2 ? 3 : sig.min_packets,
                 std::min(30, static_cast<int>(std::lround(n * std::exp(0.25 * z)))));
    bool inbound = rng.chance(sig.first_inbound_prob);
    double t = start;

    bool simple_manual = profile.simple_rule && cls == TrafficClass::kManual;
    // Fleet stand-in mode: every profile's manual events open with the
    // notification packet (the rest of the burst keeps its natural shape).
    bool notify_first = (simple_manual || config.notification_manual) &&
                        cls == TrafficClass::kManual;
    for (int i = 0; i < n; ++i) {
      net::Transport proto = sig.proto;
      if (rng.chance(sig.proto_noise)) {
        proto = (proto == net::Transport::kTcp) ? net::Transport::kUdp
                                                : net::Transport::kTcp;
      }
      std::uint32_t size;
      if (notify_first && i == 0) {
        // The fixed-size notification packet the visual rule keys on (§4).
        size = profile.rule_packet_size;
        inbound = true;
        proto = net::Transport::kTcp;
      } else if (simple_manual) {
        size = 66;  // bare ACK-ish follow-up
      } else {
        size = draw_size(sig, cls);
      }
      std::uint16_t tls = rng.chance(sig.tls_prob) ? sig.tls_version : 0;
      std::uint8_t flags = rng.chance(sig.psh_prob)
                               ? (net::TcpFlags::kPsh | net::TcpFlags::kAck)
                               : net::TcpFlags::kAck;
      emit(t, !inbound, remote, remote_port, local_port, proto, size, tls, cls,
           event_id, flags);
      if (rng.chance(sig.alternate_prob)) inbound = !inbound;
      // Bounded dispersion (not a bare exponential): real app exchanges are
      // paced by RTTs, so gaps cluster around the class-typical value.
      t += std::min(4.5, sig.iat_mean * rng.uniform(0.4, 1.8));
    }

    // Optional constant-rate streaming tail (predictable by design).
    if (sig.stream_prob > 0 && rng.chance(sig.stream_prob)) {
      double stream_end = t + std::max(2.0, rng.exponential(sig.stream_duration_mean));
      while (t < stream_end) {
        emit(t, true, remote, remote_port, local_port, sig.proto, sig.stream_size,
             0, cls, event_id);
        t += sig.stream_rate + rng.uniform(-0.002, 0.002);
      }
    }

    trace.interactions.push_back(Interaction{event_id, start, t, cls});
    return t;
  }

  void gen_unpredictable_control() {
    double rate = profile.unpred_control_per_hour;
    if (rate <= 0) return;
    double t = rng.exponential(3600.0 / rate);
    while (t < duration) {
      t = gen_event(t, profile.control_sig, TrafficClass::kControl) + 30.0;
      t += rng.exponential(3600.0 / rate);
    }
  }

  void gen_routines() {
    for (const auto& routine : profile.routines) {
      for (int day = 0; day < static_cast<int>(config.duration_days); ++day) {
        double fire = day * kDay + routine.time_of_day +
                      rng.uniform(-routine.jitter, routine.jitter);
        if (fire >= duration || fire < 0) continue;
        double end = gen_event(fire, profile.automated_sig, TrafficClass::kAutomated);
        // Repetitive (predictable) phase of the automation.
        if (routine.repeat_count > 0) {
          net::Ipv4Addr remote = service_ip(
              profile.event_services[profile.automated_sig.service_index %
                                     std::max<std::size_t>(1, profile.event_services.size())],
              0);
          std::uint16_t sport = ephemeral_port();
          double t = end + 0.2;
          for (int i = 0; i < routine.repeat_count; ++i) {
            emit(t, true, remote, 443, sport, net::Transport::kTcp,
                 routine.repeat_size, 0x0303, TrafficClass::kAutomated,
                 trace.interactions.back().event_id);
            t += routine.repeat_period + rng.uniform(-0.01, 0.01);
          }
          trace.interactions.back().end = t;
        }
      }
    }
  }

  void gen_manual() {
    double per_day = config.manual_per_day_override >= 0
                         ? config.manual_per_day_override
                         : profile.manual_per_day;
    if (per_day <= 0) return;
    for (int day = 0; day < static_cast<int>(std::ceil(config.duration_days)); ++day) {
      int count = rng.poisson(per_day);
      std::vector<double> starts;
      for (int i = 0; i < count; ++i) {
        starts.push_back(day * kDay +
                         rng.uniform(config.active_day_start, config.active_day_end));
      }
      std::sort(starts.begin(), starts.end());
      double last_end = -1e9;
      for (double s : starts) {
        // Keep interactions > 30 s apart so event grouping can't merge them.
        double start = std::max(s, last_end + 30.0);
        if (start >= duration) break;
        last_end = gen_event(start, profile.manual_sig, TrafficClass::kManual);
      }
    }
  }

  LabeledTrace run() {
    gen_control_flows();
    gen_dns();
    gen_unpredictable_control();
    gen_routines();
    gen_manual();
    std::sort(trace.packets.begin(), trace.packets.end(),
              [](const LabeledPacket& a, const LabeledPacket& b) {
                return a.pkt.ts < b.pkt.ts;
              });
    std::sort(trace.interactions.begin(), trace.interactions.end(),
              [](const Interaction& a, const Interaction& b) {
                return a.start < b.start;
              });
    return std::move(trace);
  }
};

}  // namespace

LabeledTrace generate_trace(const DeviceProfile& profile, const LocationEnv& env,
                            const TraceConfig& config) {
  if (profile.event_services.empty()) {
    throw LogicError("generate_trace: profile needs at least one event service");
  }
  Generator generator(profile, env, config);
  return generator.run();
}

}  // namespace fiat::gen
