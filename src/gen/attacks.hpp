// Attack traffic generator — the §5.1 threat model, made executable.
//
// Each attack produces the packets an adversary with the stated capability
// would inject toward a device, so the proxy's end-to-end behaviour can be
// measured directly (bench_attack_eval) instead of inferred from classifier
// metrics:
//
//  * kAccountCompromise — the adversary owns the IoT/IFTTT account and sends
//    well-formed manual commands from the vendor cloud. No phone, no human.
//  * kBruteForce — the same, repeated rapidly (what §5.4's lockout exists
//    for).
//  * kLanInjection — a local attacker on the WiFi injects commands from a
//    LAN address, spoofing the phone-to-device direct path.
//  * kRuleMimicry — the adversary streams identical packets at a constant
//    pace, trying to teach the proxy's online rule learner an allow rule
//    before the real command (defeated by the online-promotion interval
//    floor, see RuleTableConfig).
//  * kPiggyback — §7's residual risk: the attack is synchronized with a real
//    user interaction so a fresh humanness proof exists.
//
// The campaign-level types appended to AttackType (bucket mimicry, padding
// evasion, proof replay, Sybil homes — see attack_types.hpp) are composed by
// the fleet-scale AttackDirector (attack_director.hpp), not by this
// single-device generator.
#pragma once

#include "gen/attack_types.hpp"
#include "gen/device_profile.hpp"
#include "gen/location.hpp"
#include "net/packet.hpp"
#include "sim/rng.hpp"

namespace fiat::gen {

struct AttackConfig {
  AttackType type = AttackType::kAccountCompromise;
  double start = 0.0;
  /// Distinct command attempts (each one unpredictable event).
  int attempts = 1;
  /// Seconds between attempts (brute force uses small values).
  double spacing = 60.0;
};

/// Generates the attacker's packets against `device_ip`, imitating the
/// device's own manual-command signature (the adversary controls the account
/// and triggers real commands, so the traffic is genuine command traffic).
/// Returned packets are time-sorted. Campaign-only types (kBucketMimicry and
/// later) throw LogicError — use AttackDirector for those.
std::vector<net::PacketRecord> generate_attack(const DeviceProfile& profile,
                                               const LocationEnv& env,
                                               net::Ipv4Addr device_ip,
                                               const AttackConfig& config,
                                               sim::Rng& rng);

/// One command burst following the device's manual signature (the attacker
/// drives the *real* cloud pipeline, so this is genuine command traffic).
/// `iat_scale` stretches the burst's inter-arrival gaps (padding evasion
/// uses > 1); sizes follow the signature unchanged. Exported so the
/// AttackDirector composes campaign payloads from the same tested burst
/// shape the single-device attacks use.
void append_command_burst(std::vector<net::PacketRecord>& out,
                          const DeviceProfile& profile, net::Ipv4Addr device,
                          net::Ipv4Addr peer, double start, sim::Rng& rng,
                          double iat_scale = 1.0);

}  // namespace fiat::gen
