// Attack traffic generator — the §5.1 threat model, made executable.
//
// Each attack produces the packets an adversary with the stated capability
// would inject toward a device, so the proxy's end-to-end behaviour can be
// measured directly (bench_attack_eval) instead of inferred from classifier
// metrics:
//
//  * kAccountCompromise — the adversary owns the IoT/IFTTT account and sends
//    well-formed manual commands from the vendor cloud. No phone, no human.
//  * kBruteForce — the same, repeated rapidly (what §5.4's lockout exists
//    for).
//  * kLanInjection — a local attacker on the WiFi injects commands from a
//    LAN address, spoofing the phone-to-device direct path.
//  * kRuleMimicry — the adversary streams identical packets at a constant
//    pace, trying to teach the proxy's online rule learner an allow rule
//    before the real command (defeated by the online-promotion interval
//    floor, see RuleTableConfig).
//  * kPiggyback — §7's residual risk: the attack is synchronized with a real
//    user interaction so a fresh humanness proof exists.
#pragma once

#include "gen/device_profile.hpp"
#include "gen/location.hpp"
#include "net/packet.hpp"
#include "sim/rng.hpp"

namespace fiat::gen {

enum class AttackType {
  kAccountCompromise,
  kBruteForce,
  kLanInjection,
  kRuleMimicry,
  kPiggyback,
};

const char* attack_name(AttackType type);

struct AttackConfig {
  AttackType type = AttackType::kAccountCompromise;
  double start = 0.0;
  /// Distinct command attempts (each one unpredictable event).
  int attempts = 1;
  /// Seconds between attempts (brute force uses small values).
  double spacing = 60.0;
};

/// Generates the attacker's packets against `device_ip`, imitating the
/// device's own manual-command signature (the adversary controls the account
/// and triggers real commands, so the traffic is genuine command traffic).
/// Returned packets are time-sorted.
std::vector<net::PacketRecord> generate_attack(const DeviceProfile& profile,
                                               const LocationEnv& env,
                                               net::Ipv4Addr device_ip,
                                               const AttackConfig& config,
                                               sim::Rng& rng);

}  // namespace fiat::gen
