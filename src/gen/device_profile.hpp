// DeviceProfile: the behavioural model of one IoT device, encoding the
// communication patterns Section 3.3 of the paper documents.
//
// A device's traffic is composed of:
//  * periodic control flows — keep-alives/telemetry to fixed cloud services
//    with (near-)constant packet sizes and periods; these are what the
//    predictability heuristic learns;
//  * unpredictable control events — software quirks (e.g. Nest-E's hourly
//    bursts with drifting intervals) that are labelled control but fail the
//    heuristic;
//  * automated events — routine firings (IFTTT/companion-app schedules): a
//    short burst of fresh-looking packets, optionally followed by a
//    repetitive (predictable) phase;
//  * manual events — human-triggered command bursts whose first packets form
//    the per-class signature the ML classifier learns, optionally followed
//    by constant-rate streaming (cameras), which is predictable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.hpp"

namespace fiat::gen {

/// One periodic control flow.
struct FlowSpec {
  std::string service;         // logical domain, localized per vantage
  net::Transport proto = net::Transport::kTcp;
  std::uint16_t dst_port = 443;
  std::uint32_t size_up = 120;    // device -> cloud packet size (IP bytes)
  std::uint32_t size_down = 0;    // cloud -> device reply size; 0 = no reply
  double period = 30.0;           // seconds between beats
  double jitter = 0.05;           // absolute jitter (seconds, uniform +/-)
  /// Long-lived connections keep one source port (Classic-predictable);
  /// flows that reconnect per beat draw a fresh ephemeral port each time and
  /// are only PortLess-predictable — the gap Figure 1(b) measures.
  bool stable_src_port = true;
  bool with_tls = true;
};

/// Distribution of one class of unpredictable event (the first-N-packet
/// signature the classifier sees, §4.1).
struct EventSignature {
  int min_packets = 3;
  int max_packets = 10;
  /// Probability the first packet is inbound (cloud/phone -> device); the
  /// command-notification pattern of §3.3 makes this high for manual events.
  double first_inbound_prob = 0.5;
  /// Probability each subsequent packet flips direction.
  double alternate_prob = 0.5;
  net::Transport proto = net::Transport::kTcp;
  /// Probability a packet uses the *other* transport (signature noise).
  double proto_noise = 0.05;
  /// Probability a packet carries a TLS record, and which version.
  double tls_prob = 0.9;
  std::uint16_t tls_version = 0x0303;
  /// Probability a TCP packet carries PSH|ACK rather than bare ACK flags.
  double psh_prob = 0.6;
  /// Remote service port for event traffic, and the probability the event
  /// instead uses `alt_port` (weak per-class port signal, e.g. MQTT 8883).
  std::uint16_t event_port = 443;
  std::uint16_t alt_port = 8883;
  double alt_port_prob = 0.0;
  /// Packet size model: lognormal around exp(size_mu) with spread size_sigma.
  double size_mu = 6.2;     // ~500 B
  double size_sigma = 0.5;
  /// Intra-event inter-arrival (exponential mean, seconds). Must stay well
  /// under the 5 s event-gap threshold.
  double iat_mean = 0.15;
  /// Which peer the event talks to: index into the profile's event_services.
  std::uint32_t service_index = 0;
  /// Probability the event instead goes through the phone on the LAN
  /// (direct phone<->device connection, §3.3 Traffic Direction).
  double lan_peer_prob = 0.0;

  /// Optional constant-rate streaming tail (cameras; §3.2 explains the
  /// 60-65% manual predictability of WyzeCam/Blink this way).
  double stream_prob = 0.0;        // probability an event has a tail
  double stream_rate = 0.05;       // seconds between stream packets
  double stream_duration_mean = 0; // seconds, exponential
  std::uint32_t stream_size = 1400;
};

/// A scheduled routine (automation) on this device.
struct RoutineSpec {
  double time_of_day = 18 * 3600.0;  // seconds since local midnight
  double jitter = 45.0;              // firing-time jitter (IFTTT is sloppy)
  /// Repetitive (predictable) phase after the burst: `repeat_count` packets
  /// of `repeat_size` every `repeat_period` seconds. 0 count = none (SP10/WP3).
  int repeat_count = 0;
  std::uint32_t repeat_size = 400;
  double repeat_period = 1.0;
};

struct DeviceProfile {
  std::string name;
  /// Devices whose manual traffic is identified by a fixed notification
  /// packet size instead of ML (SP10, WP3, Nest-E; §4).
  bool simple_rule = false;
  std::uint32_t rule_packet_size = 235;
  /// Minimum packets an attacker needs for the command to take effect (§3.3
  /// Command Duration). Ranges 1 (plugs) to 41 (WyzeCam).
  int min_command_packets = 5;

  std::vector<FlowSpec> control_flows;
  /// Cloud services unpredictable events may target (shared across classes
  /// so IP features stay uninformative, as Table 4 found).
  std::vector<std::string> event_services;

  double unpred_control_per_hour = 0.2;
  EventSignature control_sig;

  std::vector<RoutineSpec> routines;
  EventSignature automated_sig;

  EventSignature manual_sig;
  /// Mean manual interactions per day in the realistic household schedule.
  double manual_per_day = 1.5;
};

/// The ten testbed devices of Table 1.
std::vector<DeviceProfile> testbed_profiles();
/// Lookup by name; throws fiat::LogicError when absent.
const DeviceProfile& profile_by_name(const std::string& name);
/// The Bose SoundTouch 10 profile used for Figure 1(a)'s flow illustration.
DeviceProfile soundtouch_profile();

}  // namespace fiat::gen
