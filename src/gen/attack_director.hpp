// Campaign composer: fleet-scale, labeled attack scenarios.
//
// Where attacks.hpp scripts one adversary against one device, the
// AttackDirector plans a *campaign* across a testbed fleet: which homes are
// attacked, with which AttackType, and exactly which packets/proofs the
// adversary injects — every one of them stamped with a ground-truth
// core::AttackLabel so detection recall and collateral damage are measured
// by construction, not by post-hoc matching.
//
// Design constraints the fleet determinism contract imposes:
//  * The director draws randomness only from its own seed (forked per home),
//    never from the scenario's per-home streams — a benign home's traffic is
//    byte-identical with the campaign on or off.
//  * Which homes are attacked depends only on (home id, coverage), not on
//    fleet size or build order (Bresenham spread over home ids).
//  * Composed waves depend only on the home's own trace, profile, and the
//    campaign seed, so shards 1 vs 4 and migrated vs pinned runs replay the
//    identical labeled stream.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "gen/attacks.hpp"
#include "gen/labels.hpp"
#include "net/packet.hpp"
#include "sim/rng.hpp"

namespace fiat::gen {

/// Fleet-level campaign knobs (FleetScenarioConfig::attack).
struct CampaignConfig {
  /// Fraction of benign homes that get a per-device AttackProfile (0 = no
  /// per-home attacks). Spread evenly over home ids.
  double coverage = 0.0;
  /// Attack classes assigned round-robin to attacked homes. Empty = every
  /// non-Sybil type (Sybil homes are controlled by sybil_fraction instead).
  std::vector<AttackType> roster;
  /// Command attempts per attacked home.
  int attempts = 4;
  /// Seconds between attempts.
  double spacing = 45.0;
  /// Attack start, as a fraction of the trace duration (past bootstrap).
  double start_frac = 0.55;
  /// Attacker-controlled homes appended to the fleet, as a fraction of the
  /// benign home count (kSybilHome traffic, labeled wholesale).
  double sybil_fraction = 0.0;
  /// Campaign RNG seed — independent of the scenario seed by design.
  std::uint64_t seed = 0xF1A7;

  bool enabled() const { return coverage > 0.0 || sybil_fraction > 0.0; }
};

/// The plan for one attacked home's primary device.
struct AttackProfile {
  AttackType type = AttackType::kAccountCompromise;
  int attempts = 1;
  double spacing = 45.0;
  double start = 0.0;
};

/// One predictable signature sniffed from a device's benign traffic: the
/// exact flow tuple a WiFinger-style observer would learn and replay.
struct SniffedBucket {
  net::Ipv4Addr remote;
  std::uint16_t remote_port = 0;
  std::uint16_t device_port = 0;
  net::Transport proto = net::Transport::kTcp;
  std::uint32_t size = 0;
  bool inbound = false;
};

/// One labeled injected packet.
struct AttackPacket {
  net::PacketRecord pkt;
  /// Campaign command id (>= 0 for command-payload packets), -1 for chaff.
  std::int32_t cmd = -1;
  /// True for packets that must be dropped for the command to be blocked.
  bool payload = false;
};

/// Everything the adversary injects at one home: packets plus scheduled
/// proof-replay deliveries (delivery time; the testbed clones the newest
/// captured legit proof payload available at that time).
struct AttackWave {
  std::vector<AttackPacket> packets;
  std::vector<double> proof_replays;
};

class AttackDirector {
 public:
  AttackDirector(CampaignConfig config, std::size_t benign_homes);

  const CampaignConfig& config() const { return config_; }

  /// The campaign plan for `home` (nullopt = home not attacked). Stable
  /// under fleet growth: depends only on the home id and the config.
  std::optional<AttackProfile> plan(std::uint32_t home,
                                    double trace_duration) const;

  /// Attacker-controlled homes to append after the benign fleet.
  std::size_t sybil_home_count() const { return sybil_homes_; }

  /// Ranks the device's benign flow signatures by packet count — the
  /// adversary's passive-sniffing phase. `top` bounds the result.
  static std::vector<SniffedBucket> sniff_buckets(
      const std::vector<LabeledPacket>& packets, net::Ipv4Addr device_ip,
      std::size_t top);

  /// Composes the labeled wave for one attacked home's primary device.
  /// `trace` is the device's benign trace (sniffing source + piggyback
  /// synchronization); composition never mutates it.
  AttackWave compose(std::uint32_t home, const AttackProfile& profile,
                     const DeviceProfile& device, const LocationEnv& env,
                     const LabeledTrace& trace) const;

  /// Campaign-unique command id: attempt `k` against `home`.
  static std::int32_t command_id(std::uint32_t home, int k) {
    return static_cast<std::int32_t>(home) * 100000 + k;
  }
  /// Command-id block for Sybil homes' own manual events.
  static std::int32_t sybil_command_id(std::uint32_t home, int event_id) {
    return command_id(home, 1000 + event_id);
  }

 private:
  CampaignConfig config_;
  std::size_t benign_homes_ = 0;
  std::size_t sybil_homes_ = 0;
  std::vector<AttackType> roster_;
};

}  // namespace fiat::gen
