#include "gen/attack_director.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

#include "util/error.hpp"

namespace fiat::gen {

namespace {

net::PacketRecord make_pkt(double ts, bool inbound, net::Ipv4Addr device,
                           net::Ipv4Addr peer, std::uint16_t peer_port,
                           std::uint16_t device_port, net::Transport proto,
                           std::uint32_t size, std::uint16_t tls) {
  net::PacketRecord p;
  p.ts = ts;
  p.size = std::clamp<std::uint32_t>(size, 60, 1500);
  p.src_ip = inbound ? peer : device;
  p.dst_ip = inbound ? device : peer;
  p.src_port = inbound ? peer_port : device_port;
  p.dst_port = inbound ? device_port : peer_port;
  p.proto = proto;
  p.tcp_flags = proto == net::Transport::kTcp
                    ? (net::TcpFlags::kPsh | net::TcpFlags::kAck)
                    : 0;
  p.tls_version = proto == net::Transport::kTcp ? tls : 0;
  return p;
}

net::Ipv4Addr cloud_peer(const DeviceProfile& profile, const LocationEnv& env) {
  const std::string service = profile.event_services.empty()
                                  ? "cloud.example"
                                  : profile.event_services[0];
  return env.ip_of(env.localize_domain(service), 1);
}

/// Appends one labeled command burst (every packet is payload).
void labeled_burst(AttackWave& wave, const DeviceProfile& profile,
                   net::Ipv4Addr device, net::Ipv4Addr peer, double start,
                   sim::Rng& rng, std::int32_t cmd, double iat_scale = 1.0) {
  std::vector<net::PacketRecord> burst;
  append_command_burst(burst, profile, device, peer, start, rng, iat_scale);
  for (const net::PacketRecord& pkt : burst) {
    wave.packets.push_back(AttackPacket{pkt, cmd, /*payload=*/true});
  }
}

}  // namespace

AttackDirector::AttackDirector(CampaignConfig config, std::size_t benign_homes)
    : config_(std::move(config)), benign_homes_(benign_homes) {
  if (config_.coverage < 0.0 || config_.coverage > 1.0) {
    throw LogicError("AttackDirector: coverage must be in [0, 1]");
  }
  if (config_.sybil_fraction < 0.0) {
    throw LogicError("AttackDirector: sybil_fraction must be >= 0");
  }
  if (config_.attempts < 1) {
    throw LogicError("AttackDirector: attempts must be >= 1");
  }
  roster_ = config_.roster;
  if (roster_.empty()) {
    roster_ = {AttackType::kAccountCompromise, AttackType::kBruteForce,
               AttackType::kLanInjection,      AttackType::kRuleMimicry,
               AttackType::kPiggyback,         AttackType::kBucketMimicry,
               AttackType::kPaddingEvasion,    AttackType::kProofReplay};
  }
  for (AttackType t : roster_) {
    if (t == AttackType::kSybilHome) {
      throw LogicError(
          "AttackDirector: kSybilHome is fleet-level (sybil_fraction), not a "
          "per-home roster entry");
    }
    if (t == AttackType::kRevokedCredential) {
      throw LogicError(
          "AttackDirector: kRevokedCredential is driven by the churn "
          "scenario (revoke fraction), not a per-home roster entry");
    }
  }
  sybil_homes_ = static_cast<std::size_t>(
      std::llround(config_.sybil_fraction * static_cast<double>(benign_homes)));
}

std::optional<AttackProfile> AttackDirector::plan(std::uint32_t home,
                                                  double trace_duration) const {
  if (config_.coverage <= 0.0 || home >= benign_homes_) return std::nullopt;
  // Bresenham spread: home h is attacked iff the running total
  // floor((h+1)*coverage) advances at h. Depends only on (h, coverage), so
  // the attacked set is stable under fleet growth.
  auto steps = [&](std::uint64_t h) {
    return static_cast<std::uint64_t>(
        std::floor(static_cast<double>(h) * config_.coverage + 1e-9));
  };
  if (steps(home + 1) <= steps(home)) return std::nullopt;
  std::uint64_t attack_index = steps(home);
  AttackProfile profile;
  profile.type = roster_[attack_index % roster_.size()];
  profile.attempts = config_.attempts;
  profile.spacing = profile.type == AttackType::kBruteForce
                        ? std::min(config_.spacing, 20.0)
                        : config_.spacing;
  profile.start = config_.start_frac * trace_duration;
  return profile;
}

std::vector<SniffedBucket> AttackDirector::sniff_buckets(
    const std::vector<LabeledPacket>& packets, net::Ipv4Addr device_ip,
    std::size_t top) {
  // (inbound, remote, remote_port, device_port, proto, size) -> count.
  using Key = std::tuple<bool, std::uint32_t, std::uint16_t, std::uint16_t,
                         std::uint8_t, std::uint32_t>;
  std::map<Key, std::size_t> counts;
  for (const LabeledPacket& lp : packets) {
    const net::PacketRecord& pkt = lp.pkt;
    bool inbound;
    if (pkt.dst_ip == device_ip) {
      inbound = true;
    } else if (pkt.src_ip == device_ip) {
      inbound = false;
    } else {
      continue;
    }
    net::Ipv4Addr remote = inbound ? pkt.src_ip : pkt.dst_ip;
    std::uint16_t remote_port = inbound ? pkt.src_port : pkt.dst_port;
    std::uint16_t device_port = inbound ? pkt.dst_port : pkt.src_port;
    ++counts[Key{inbound, remote.value(), remote_port, device_port,
                 static_cast<std::uint8_t>(pkt.proto), pkt.size}];
  }
  // Rank by count, ties broken by the (ordered) key — fully deterministic.
  std::vector<std::pair<Key, std::size_t>> ranked(counts.begin(), counts.end());
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  std::vector<SniffedBucket> out;
  for (const auto& [key, count] : ranked) {
    if (out.size() >= top) break;
    if (count < 3) break;  // not a recurring signature; nothing to mimic
    SniffedBucket b;
    b.inbound = std::get<0>(key);
    b.remote = net::Ipv4Addr(std::get<1>(key));
    b.remote_port = std::get<2>(key);
    b.device_port = std::get<3>(key);
    b.proto = static_cast<net::Transport>(std::get<4>(key));
    b.size = std::get<5>(key);
    out.push_back(b);
  }
  return out;
}

AttackWave AttackDirector::compose(std::uint32_t home,
                                   const AttackProfile& profile,
                                   const DeviceProfile& device,
                                   const LocationEnv& env,
                                   const LabeledTrace& trace) const {
  AttackWave wave;
  sim::Rng rng = sim::Rng(config_.seed).fork(home);
  net::Ipv4Addr device_ip = trace.device_ip;
  net::Ipv4Addr cloud = cloud_peer(device, env);

  switch (profile.type) {
    case AttackType::kAccountCompromise:
    case AttackType::kBruteForce: {
      double t = profile.start;
      for (int k = 0; k < profile.attempts; ++k) {
        labeled_burst(wave, device, device_ip, cloud, t, rng,
                      command_id(home, k));
        t += std::max(6.0, profile.spacing);
      }
      break;
    }
    case AttackType::kLanInjection: {
      net::Ipv4Addr attacker = env.phone_ip();
      double t = profile.start;
      for (int k = 0; k < profile.attempts; ++k) {
        labeled_burst(wave, device, device_ip, attacker, t, rng,
                      command_id(home, k));
        t += std::max(6.0, profile.spacing);
      }
      break;
    }
    case AttackType::kRuleMimicry: {
      // Constant pace, byte-identical burst: bait for the online learner.
      double t = profile.start;
      for (int k = 0; k < profile.attempts; ++k) {
        sim::Rng burst_rng(7);
        labeled_burst(wave, device, device_ip, cloud, t, burst_rng,
                      command_id(home, k));
        t += 20.0;
      }
      break;
    }
    case AttackType::kPiggyback: {
      // §7 residual: synchronize with real interactions, so a fresh proof
      // covers the attacker's command too.
      int k = 0;
      for (const Interaction& interaction : trace.interactions) {
        if (interaction.cls != TrafficClass::kManual) continue;
        if (k >= profile.attempts) break;
        labeled_burst(wave, device, device_ip, cloud, interaction.start + 0.8,
                      rng, command_id(home, k));
        ++k;
      }
      if (k == 0) {
        // No interaction to ride — the attacker fires blind (and loses).
        labeled_burst(wave, device, device_ip, cloud, profile.start, rng,
                      command_id(home, 0));
      }
      break;
    }
    case AttackType::kBucketMimicry: {
      // WiFinger mimicry: dress the event in the device's own predictable
      // signatures (sniffed flow tuples), replayed off-rhythm as cover, then
      // slip the real command in.
      std::vector<SniffedBucket> buckets =
          sniff_buckets(trace.packets, device_ip, 4);
      double t = profile.start;
      for (int k = 0; k < profile.attempts; ++k) {
        double ct = t;
        for (const SniffedBucket& b : buckets) {
          for (int rep = 0; rep < 2; ++rep) {
            wave.packets.push_back(AttackPacket{
                make_pkt(ct, b.inbound, device_ip, b.remote, b.remote_port,
                         b.device_port, b.proto, b.size, 0x0303),
                -1, /*payload=*/false});
            ct += 0.4;
          }
        }
        labeled_burst(wave, device, device_ip, cloud, ct + 0.5, rng,
                      command_id(home, k));
        t += std::max(6.0, profile.spacing);
      }
      break;
    }
    case AttackType::kPaddingEvasion: {
      // Pad the event's opening away from the manual signature (random-size
      // chaff), then stretch the command's own rhythm 4x.
      double t = profile.start;
      for (int k = 0; k < profile.attempts; ++k) {
        double ct = t;
        for (int i = 0; i < 5; ++i) {
          auto size = static_cast<std::uint32_t>(rng.uniform_int(100, 1200));
          wave.packets.push_back(AttackPacket{
              make_pkt(ct, i % 2 == 0, device_ip, cloud, 443,
                       static_cast<std::uint16_t>(rng.uniform_int(32768, 60999)),
                       net::Transport::kTcp, size, 0x0303),
              -1, /*payload=*/false});
          ct += 0.4;
        }
        labeled_burst(wave, device, device_ip, cloud, ct + 0.5, rng,
                      command_id(home, k), /*iat_scale=*/4.0);
        t += std::max(6.0, profile.spacing);
      }
      break;
    }
    case AttackType::kProofReplay: {
      // Stolen-proof flood: replay captured proof datagrams, then issue the
      // command hoping a replayed proof re-validates it.
      double t = profile.start;
      for (int k = 0; k < profile.attempts; ++k) {
        wave.proof_replays.push_back(t);
        wave.proof_replays.push_back(t + 0.4);
        wave.proof_replays.push_back(t + 0.8);
        labeled_burst(wave, device, device_ip, cloud, t + 1.2, rng,
                      command_id(home, k));
        t += std::max(6.0, profile.spacing);
      }
      break;
    }
    case AttackType::kSybilHome:
      throw LogicError(
          "AttackDirector::compose: kSybilHome homes are synthesized by the "
          "fleet testbed, not composed as waves");
    case AttackType::kRevokedCredential:
      throw LogicError(
          "AttackDirector::compose: kRevokedCredential traffic is "
          "synthesized by the churn scenario, not composed as waves");
  }

  std::stable_sort(
      wave.packets.begin(), wave.packets.end(),
      [](const AttackPacket& a, const AttackPacket& b) { return a.pkt.ts < b.pkt.ts; });
  std::sort(wave.proof_replays.begin(), wave.proof_replays.end());
  return wave;
}

}  // namespace fiat::gen
