// Motion-sensor simulation and featurization for humanness verification.
//
// FIAT's app samples accelerometer + gyroscope at 250 Hz while an IoT app is
// foregrounded, extracts 48 features, and a depth-9 decision tree (trained as
// in zkSENSE) decides human vs. non-human (§5.3-5.4). We simulate the two
// populations:
//  * human: gravity + hand tremor + 1-4 touch-induced motion bursts; a small
//    fraction are "gentle" interactions (phone nearly still) that are
//    genuinely hard to separate — they produce the ~0.93 human recall.
//  * machine (ADB/spyware-injected taps): device flat on a table, noise-floor
//    readings only; a small fraction sit near environmental vibration.
//
// Features: for each of the 6 streams (accel x/y/z, gyro x/y/z), 8
// statistics {mean, std, min, max, range, rms, mean |delta|, max |delta|}
// = 48 features.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "sim/rng.hpp"

namespace fiat::gen {

struct SensorSample {
  double t = 0.0;
  double ax = 0.0, ay = 0.0, az = 0.0;  // m/s^2
  double gx = 0.0, gy = 0.0, gz = 0.0;  // rad/s
};

struct SensorTrace {
  std::vector<SensorSample> samples;
  bool human = false;
};

struct SensorConfig {
  double duration = 1.0;      // seconds of capture per decision
  double sample_rate = 250.0; // Hz, the paper's maximum rate
  double gentle_human_prob = 0.065;  // hard-to-detect humans
  double noisy_machine_prob = 0.018; // machines near a vibration source
};

/// Generates one capture window.
SensorTrace generate_sensor_trace(sim::Rng& rng, bool human,
                                  const SensorConfig& config = {});

constexpr std::size_t kSensorFeatureCount = 48;

/// Extracts the 48-dimensional feature vector.
std::vector<double> sensor_features(const SensorTrace& trace);
std::vector<std::string> sensor_feature_names();

/// Builds a labeled dataset (label 1 = human, 0 = machine) of `per_class`
/// traces per class.
ml::Dataset make_humanness_dataset(sim::Rng& rng, std::size_t per_class,
                                   const SensorConfig& config = {});

}  // namespace fiat::gen
