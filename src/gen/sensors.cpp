#include "gen/sensors.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace fiat::gen {

SensorTrace generate_sensor_trace(sim::Rng& rng, bool human,
                                  const SensorConfig& config) {
  SensorTrace trace;
  trace.human = human;
  auto n = static_cast<std::size_t>(config.duration * config.sample_rate);
  trace.samples.reserve(n);

  bool gentle = human && rng.chance(config.gentle_human_prob);
  bool noisy_machine = !human && rng.chance(config.noisy_machine_prob);

  // Gravity vector: handheld phones are tilted; docked/table phones mostly
  // see gravity on z — but stands and props leave machines slightly tilted,
  // and a "gentle" user taps a phone lying flat, so the ranges overlap.
  double tilt = human ? (gentle ? rng.uniform(0.0, 0.10) : rng.uniform(0.08, 0.7))
                      : rng.uniform(0.0, 0.12);
  double g = 9.81;
  double gz0 = g * std::cos(tilt);
  double gx0 = g * std::sin(tilt) * 0.7;
  double gy0 = g * std::sin(tilt) * 0.3;

  // Tremor / noise floor amplitudes.
  // Gentle humans and vibrating tables are drawn from overlapping noise
  // ranges on purpose: they are the genuinely ambiguous cases that set the
  // verifier's ~0.93 human / ~0.98 non-human recall ceiling (zkSENSE-like).
  double accel_noise = human ? (gentle ? rng.uniform(0.002, 0.008)
                                       : rng.uniform(0.03, 0.15))
                             : (noisy_machine ? rng.uniform(0.03, 0.09)
                                              : rng.uniform(0.002, 0.008));
  double gyro_noise = human ? (gentle ? rng.uniform(0.0004, 0.0018)
                                      : rng.uniform(0.01, 0.06))
                            : (noisy_machine ? rng.uniform(0.008, 0.03)
                                             : rng.uniform(0.0003, 0.0018));

  // Touch bursts: short, damped oscillations triggered by finger impact.
  struct Burst {
    double start, duration, accel_amp, gyro_amp, freq;
  };
  std::vector<Burst> bursts;
  if (human && !gentle) {
    int n_bursts = static_cast<int>(rng.uniform_int(1, 4));
    for (int b = 0; b < n_bursts; ++b) {
      Burst burst;
      burst.start = rng.uniform(0.05, config.duration * 0.8);
      burst.duration = rng.uniform(0.06, 0.18);
      burst.accel_amp = rng.uniform(0.5, 3.0);
      burst.gyro_amp = rng.uniform(0.15, 1.2);
      burst.freq = rng.uniform(12.0, 30.0);
      bursts.push_back(burst);
    }
  } else if (gentle) {
    // One barely-perceptible burst, at the machine noise floor.
    bursts.push_back(Burst{rng.uniform(0.1, 0.8), 0.05, rng.uniform(0.004, 0.012),
                           rng.uniform(0.0008, 0.003), 18.0});
  } else if (noisy_machine) {
    // Environmental knock: a vibration spike that mimics a touch.
    bursts.push_back(Burst{rng.uniform(0.1, 0.8), rng.uniform(0.05, 0.12),
                           rng.uniform(0.2, 0.9), rng.uniform(0.05, 0.3),
                           rng.uniform(20.0, 45.0)});
  }

  double dt = 1.0 / config.sample_rate;
  for (std::size_t i = 0; i < n; ++i) {
    SensorSample s;
    s.t = static_cast<double>(i) * dt;
    s.ax = gx0 + rng.normal(0.0, accel_noise);
    s.ay = gy0 + rng.normal(0.0, accel_noise);
    s.az = gz0 + rng.normal(0.0, accel_noise);
    s.gx = rng.normal(0.0, gyro_noise);
    s.gy = rng.normal(0.0, gyro_noise);
    s.gz = rng.normal(0.0, gyro_noise);
    for (const auto& burst : bursts) {
      if (s.t < burst.start || s.t > burst.start + burst.duration) continue;
      double phase = (s.t - burst.start) / burst.duration;
      double envelope = std::exp(-3.0 * phase);
      double osc = std::sin(2.0 * M_PI * burst.freq * (s.t - burst.start));
      s.ax += burst.accel_amp * envelope * osc * 0.6;
      s.ay += burst.accel_amp * envelope * osc * 0.3;
      s.az += burst.accel_amp * envelope * osc;
      s.gx += burst.gyro_amp * envelope * osc * 0.8;
      s.gy += burst.gyro_amp * envelope * osc;
      s.gz += burst.gyro_amp * envelope * osc * 0.4;
    }
    trace.samples.push_back(s);
  }
  return trace;
}

namespace {

void stream_stats(const std::vector<double>& v, std::vector<double>& out) {
  if (v.empty()) throw LogicError("sensor_features: empty stream");
  double mean = 0.0, min_v = v[0], max_v = v[0], sq = 0.0;
  for (double x : v) {
    mean += x;
    min_v = std::min(min_v, x);
    max_v = std::max(max_v, x);
    sq += x * x;
  }
  mean /= static_cast<double>(v.size());
  double var = 0.0;
  for (double x : v) var += (x - mean) * (x - mean);
  var /= static_cast<double>(v.size());
  double mean_delta = 0.0, max_delta = 0.0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    double d = std::fabs(v[i] - v[i - 1]);
    mean_delta += d;
    max_delta = std::max(max_delta, d);
  }
  if (v.size() > 1) mean_delta /= static_cast<double>(v.size() - 1);

  out.push_back(mean);
  out.push_back(std::sqrt(var));
  out.push_back(min_v);
  out.push_back(max_v);
  out.push_back(max_v - min_v);
  out.push_back(std::sqrt(sq / static_cast<double>(v.size())));
  out.push_back(mean_delta);
  out.push_back(max_delta);
}

}  // namespace

std::vector<double> sensor_features(const SensorTrace& trace) {
  const auto& s = trace.samples;
  std::vector<std::vector<double>> streams(6);
  for (auto& stream : streams) stream.reserve(s.size());
  for (const auto& sample : s) {
    streams[0].push_back(sample.ax);
    streams[1].push_back(sample.ay);
    streams[2].push_back(sample.az);
    streams[3].push_back(sample.gx);
    streams[4].push_back(sample.gy);
    streams[5].push_back(sample.gz);
  }
  std::vector<double> out;
  out.reserve(kSensorFeatureCount);
  for (const auto& stream : streams) stream_stats(stream, out);
  return out;
}

std::vector<std::string> sensor_feature_names() {
  static const char* streams[6] = {"ax", "ay", "az", "gx", "gy", "gz"};
  static const char* stats[8] = {"mean", "std", "min", "max",
                                 "range", "rms", "mad", "maxd"};
  std::vector<std::string> names;
  names.reserve(kSensorFeatureCount);
  for (const char* stream : streams) {
    for (const char* stat : stats) {
      names.push_back(std::string(stream) + "-" + stat);
    }
  }
  return names;
}

ml::Dataset make_humanness_dataset(sim::Rng& rng, std::size_t per_class,
                                   const SensorConfig& config) {
  ml::Dataset data;
  data.feature_names = sensor_feature_names();
  for (std::size_t i = 0; i < per_class; ++i) {
    data.add(sensor_features(generate_sensor_trace(rng, false, config)), 0);
    data.add(sensor_features(generate_sensor_trace(rng, true, config)), 1);
  }
  return data;
}

}  // namespace fiat::gen
