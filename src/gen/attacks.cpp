#include "gen/attacks.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace fiat::gen {

const char* attack_name(AttackType type) {
  switch (type) {
    case AttackType::kAccountCompromise: return "account-compromise";
    case AttackType::kBruteForce: return "brute-force";
    case AttackType::kLanInjection: return "lan-injection";
    case AttackType::kRuleMimicry: return "rule-mimicry";
    case AttackType::kPiggyback: return "piggyback";
    case AttackType::kBucketMimicry: return "bucket-mimicry";
    case AttackType::kPaddingEvasion: return "padding-evasion";
    case AttackType::kProofReplay: return "proof-replay";
    case AttackType::kSybilHome: return "sybil-home";
    case AttackType::kRevokedCredential: return "revoked-credential";
  }
  return "?";
}

namespace {

net::PacketRecord make_pkt(double ts, bool inbound, net::Ipv4Addr device,
                           net::Ipv4Addr peer, std::uint16_t peer_port,
                           std::uint16_t device_port, net::Transport proto,
                           std::uint32_t size, std::uint16_t tls) {
  net::PacketRecord p;
  p.ts = ts;
  p.size = std::clamp<std::uint32_t>(size, 60, 1500);
  p.src_ip = inbound ? peer : device;
  p.dst_ip = inbound ? device : peer;
  p.src_port = inbound ? peer_port : device_port;
  p.dst_port = inbound ? device_port : peer_port;
  p.proto = proto;
  p.tcp_flags = proto == net::Transport::kTcp
                    ? (net::TcpFlags::kPsh | net::TcpFlags::kAck)
                    : 0;
  p.tls_version = proto == net::Transport::kTcp ? tls : 0;
  return p;
}

}  // namespace

void append_command_burst(std::vector<net::PacketRecord>& out,
                          const DeviceProfile& profile, net::Ipv4Addr device,
                          net::Ipv4Addr peer, double start, sim::Rng& rng,
                          double iat_scale) {
  const EventSignature& sig = profile.manual_sig;
  std::uint16_t device_port = static_cast<std::uint16_t>(rng.uniform_int(32768, 60999));
  double t = start;
  // A triggered command necessarily runs the device's own command protocol,
  // which opens with the fixed-size notification push — the attacker cannot
  // strip it without the device ignoring the command.
  out.push_back(make_pkt(t, true, device, peer, 443, device_port,
                         net::Transport::kTcp, profile.rule_packet_size, 0x0303));
  if (profile.simple_rule) {
    out.push_back(make_pkt(t + 0.08 * iat_scale, false, device, peer, 443,
                           device_port, net::Transport::kTcp, 66, 0x0303));
    return;
  }
  t += 0.08 * iat_scale;
  int n = static_cast<int>(rng.uniform_int(sig.min_packets, sig.max_packets));
  bool inbound = true;  // cloud-pushed command
  for (int i = 0; i < n; ++i) {
    net::Transport proto = sig.proto;
    if (rng.chance(sig.proto_noise)) {
      proto = proto == net::Transport::kTcp ? net::Transport::kUdp
                                            : net::Transport::kTcp;
    }
    auto size = static_cast<std::uint32_t>(
        std::clamp(std::exp(sig.size_mu + rng.uniform(-1.0, 1.0) * sig.size_sigma),
                   60.0, 1500.0));
    std::uint16_t tls = rng.chance(sig.tls_prob) ? sig.tls_version : 0;
    out.push_back(
        make_pkt(t, inbound, device, peer, 443, device_port, proto, size, tls));
    if (rng.chance(sig.alternate_prob)) inbound = !inbound;
    // The device's command protocol keeps the exchange alive; an attacker
    // stretching the rhythm past the keepalive would abort the command, so
    // the inter-packet gap stays below the proxy's 5 s event-gap horizon.
    t += std::min(sig.iat_mean * rng.uniform(0.4, 1.8) * iat_scale, 4.0);
  }
}

std::vector<net::PacketRecord> generate_attack(const DeviceProfile& profile,
                                               const LocationEnv& env,
                                               net::Ipv4Addr device_ip,
                                               const AttackConfig& config,
                                               sim::Rng& rng) {
  if (config.attempts < 1) throw LogicError("generate_attack: attempts must be >= 1");
  std::vector<net::PacketRecord> out;
  std::string service = profile.event_services.empty()
                            ? "cloud.example"
                            : profile.event_services[0];
  net::Ipv4Addr cloud = env.ip_of(env.localize_domain(service), 1);

  switch (config.type) {
    case AttackType::kAccountCompromise:
    case AttackType::kBruteForce:
    case AttackType::kPiggyback: {
      double t = config.start;
      for (int attempt = 0; attempt < config.attempts; ++attempt) {
        append_command_burst(out, profile, device_ip, cloud, t, rng);
        t += std::max(6.0, config.spacing);  // > the 5 s gap: separate events
      }
      break;
    }
    case AttackType::kLanInjection: {
      // Local attacker spoofing the phone's direct path.
      net::Ipv4Addr attacker = env.phone_ip();
      double t = config.start;
      for (int attempt = 0; attempt < config.attempts; ++attempt) {
        append_command_burst(out, profile, device_ip, attacker, t, rng);
        t += std::max(6.0, config.spacing);
      }
      break;
    }
    case AttackType::kRuleMimicry: {
      // The patient attacker: issue the REAL command at an exactly constant
      // pace, hoping the online rule learner starts treating the command's
      // packets as a predictable flow and whitelists them.
      double t = config.start;
      for (int attempt = 0; attempt < config.attempts; ++attempt) {
        sim::Rng burst_rng(7);  // reset: byte-identical command each time
        append_command_burst(out, profile, device_ip, cloud, t, burst_rng);
        t += 20.0;  // constant spacing, well inside max_match_interval
      }
      break;
    }
    case AttackType::kBucketMimicry:
    case AttackType::kPaddingEvasion:
    case AttackType::kProofReplay:
    case AttackType::kSybilHome:
    case AttackType::kRevokedCredential:
      throw LogicError(std::string("generate_attack: ") +
                       attack_name(config.type) +
                       " is a campaign-level attack; use gen::AttackDirector");
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.ts < b.ts; });
  return out;
}

}  // namespace fiat::gen
