// Testbed trace generator: produces labeled packet traces for one device at
// one vantage point, following its DeviceProfile. This is the synthetic
// stand-in for the paper's NJ/IL households (§3.1): the NJ side scripted
// human-like interactions via ADB for two weeks; the IL side logged a real
// user for 15 days.
#pragma once

#include <cstdint>

#include "gen/device_profile.hpp"
#include "gen/labels.hpp"
#include "gen/location.hpp"

namespace fiat::gen {

struct TraceConfig {
  double duration_days = 14.0;
  std::uint64_t seed = 1;
  /// Device index on the LAN (sets its 192.168.x.y address).
  std::uint32_t device_index = 0;
  /// Override the profile's manual interaction rate; <0 keeps the profile
  /// value. The NJ scripted runs push this up to gather training events.
  double manual_per_day_override = -1.0;
  /// Earliest/latest local time of day for manual interactions.
  double active_day_start = 7 * 3600.0;
  double active_day_end = 23 * 3600.0;
  /// Ground-truth imprecision: probability an event's *behaviour* comes from
  /// a different class than its label. Models the paper's labeling path —
  /// the IL logging app records only when a companion app was open, and
  /// routine timestamps are approximate (§3.1), so a fraction of events are
  /// effectively mislabeled. Scripted (ADB) collections set this to ~0.
  double label_confusion = 0.0;
  /// Open every manual event with the profile's fixed-size notification
  /// packet, even for non-simple-rule devices. The fleet testbed's stand-in
  /// for per-device ML classifiers is the notification-size rule
  /// (fleet_testbed.cpp); without the packet, those devices' command traffic
  /// would be invisible to it. Off for the ML evaluation benches, which
  /// need the natural lognormal shapes.
  bool notification_manual = false;
};

/// Generates the full labeled trace (packets sorted by timestamp).
LabeledTrace generate_trace(const DeviceProfile& profile, const LocationEnv& env,
                            const TraceConfig& config);

}  // namespace fiat::gen
