// LocationEnv: the network environment of one vantage point.
//
// The paper exercises the NJ testbed from three apparent locations (US,
// plus Germany and Japan through a VPN); devices then resolve their cloud
// endpoints to geolocated IPs and sometimes different domains (e.g.
// google.com vs google.co.jp, §3.3). LocationEnv deterministically maps a
// logical service name to a per-location domain and IP pool, so the same
// DeviceProfile generates location-shifted but behaviourally identical
// traffic — which is what the transfer experiments (Table 5) rely on.
#pragma once

#include <cstdint>
#include <string>

#include "net/ip.hpp"
#include "sim/rng.hpp"

namespace fiat::gen {

class LocationEnv {
 public:
  /// `code`: "US", "JP", "DE", or "IL" (IL = the Illinois household, which
  /// is a US vantage with a different LAN).
  explicit LocationEnv(std::string code);

  const std::string& code() const { return code_; }

  /// Localizes a logical domain: "cloud.nest.example" stays for US/IL,
  /// becomes "cloud.nest.example.jp" / ".de" elsewhere (mirroring
  /// google.com -> google.co.jp).
  std::string localize_domain(const std::string& logical) const;

  /// Deterministic public IP for a (localized) domain. `replica` selects one
  /// of the service's load-balanced addresses within the same /24 pool.
  net::Ipv4Addr ip_of(const std::string& localized_domain, std::uint32_t replica = 0) const;
  /// Number of replicas we model per service pool.
  static constexpr std::uint32_t kReplicasPerService = 4;

  /// LAN addressing for this household.
  net::Ipv4Addr gateway() const;
  net::Ipv4Addr phone_ip() const;
  net::Ipv4Addr device_ip(std::uint32_t device_index) const;
  net::Ipv4Addr dns_resolver() const { return gateway(); }

 private:
  std::string code_;
  std::uint8_t lan_third_octet_;
  std::uint32_t geo_salt_;
};

}  // namespace fiat::gen
