#include "gen/location.hpp"

#include "util/error.hpp"

namespace fiat::gen {

namespace {

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

std::uint64_t hash_str(const std::string& s, std::uint64_t seed) {
  std::uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return mix(h);
}

}  // namespace

LocationEnv::LocationEnv(std::string code) : code_(std::move(code)) {
  if (code_ == "US") {
    lan_third_octet_ = 10;
    geo_salt_ = 1;
  } else if (code_ == "JP") {
    lan_third_octet_ = 10;  // same physical LAN (VPN changes only the WAN view)
    geo_salt_ = 2;
  } else if (code_ == "DE") {
    lan_third_octet_ = 10;
    geo_salt_ = 3;
  } else if (code_ == "IL") {
    lan_third_octet_ = 20;
    geo_salt_ = 4;
  } else {
    throw LogicError("LocationEnv: unknown location code " + code_);
  }
}

std::string LocationEnv::localize_domain(const std::string& logical) const {
  if (code_ == "JP") return logical + ".jp";
  if (code_ == "DE") return logical + ".de";
  return logical;
}

net::Ipv4Addr LocationEnv::ip_of(const std::string& localized_domain,
                                 std::uint32_t replica) const {
  // One /24 pool per (domain, location); replicas share the pool, mirroring
  // load-balanced cloud frontends.
  std::uint64_t h = hash_str(localized_domain, geo_salt_);
  auto b = static_cast<std::uint8_t>((h >> 8) & 0xff);
  auto c = static_cast<std::uint8_t>((h >> 16) & 0xff);
  auto host = static_cast<std::uint8_t>(10 + (replica % kReplicasPerService) * 7);
  // Public-looking 52.x.y.z (cloud provider style).
  return net::Ipv4Addr(52, b, c, host);
}

net::Ipv4Addr LocationEnv::gateway() const {
  return net::Ipv4Addr(192, 168, lan_third_octet_, 1);
}

net::Ipv4Addr LocationEnv::phone_ip() const {
  return net::Ipv4Addr(192, 168, lan_third_octet_, 50);
}

net::Ipv4Addr LocationEnv::device_ip(std::uint32_t device_index) const {
  return net::Ipv4Addr(192, 168, lan_third_octet_,
                       static_cast<std::uint8_t>(100 + device_index));
}

}  // namespace fiat::gen
