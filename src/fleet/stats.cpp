#include "fleet/stats.hpp"

#include <cstdio>

namespace fiat::fleet {

double FleetStats::throughput() const {
  if (wall_seconds <= 0.0) return 0.0;
  return static_cast<double>(packets_out + proofs_out) / wall_seconds;
}

double FleetStats::utilization(std::size_t shard) const {
  if (shard >= shards.size() || wall_seconds <= 0.0) return 0.0;
  return shards[shard].busy_seconds / wall_seconds;
}

std::string FleetStats::render() const {
  std::string out;
  char line[384];
  std::snprintf(line, sizeof(line),
                "%-6s %6s %10s %8s %8s %9s %9s %8s %5s %7s %8s %7s %8s %8s "
                "%8s %6s %6s %6s %10s %6s %8s\n",
                row_label.c_str(), "homes", "packets", "proofs", "shed",
                "shed-cls", "discard", "restart", "quar", "mig-in", "mig-out",
                "atk-in", "atk-blk", "atk-cmp", "flagged", "enroll", "rotate",
                "revoke", "high-water", "util", "busy-s");
  out += line;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const ShardStats& s = shards[i];
    std::snprintf(line, sizeof(line),
                  "%-6zu %6zu %10zu %8zu %8zu %9zu %9zu %8zu %5zu %7zu %8zu "
                  "%7zu %8zu %8zu %8zu %6zu %6zu %6zu %10zu %5.0f%% %8.3f\n",
                  i, s.homes, s.packets, s.proofs, s.queue_shed,
                  s.queue_shed_on_close, s.discarded, s.restarts,
                  s.quarantined, s.migrations_in, s.migrations_out,
                  s.attack_injected, s.attack_blocked, s.attack_completed,
                  s.flagged, s.enrolled, s.rotated, s.revoked,
                  s.queue_high_water, 100.0 * utilization(i), s.busy_seconds);
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "total: %zu homes, %zu/%zu packets, %zu/%zu proofs, "
                "%zu shed, %zu shed-on-close, %zu discarded, %zu restarts, "
                "%zu quarantined\n",
                homes, packets_out, packets_in, proofs_out, proofs_in, shed,
                shed_on_close, discarded, restarts, quarantined);
  out += line;
  // The attack totals line only exists when a campaign ran.
  if (attack_injected > 0 || attack_blocked > 0 || attack_completed > 0) {
    std::snprintf(line, sizeof(line),
                  "attacks: %zu injected, %zu commands blocked, %zu commands "
                  "completed\n",
                  attack_injected, attack_blocked, attack_completed);
    out += line;
  }
  // The correlation totals line only exists when the correlator ran AND
  // found something (annotate_stats leaves an all-benign run untouched).
  if (flagged_homes > 0 || correlation_shared_signatures > 0 ||
      correlation_flood_sources > 0 || correlation_cohorts > 0) {
    std::snprintf(line, sizeof(line),
                  "correlation: %zu homes flagged, %zu shared signatures, "
                  "%zu flood sources, %zu sybil cohorts\n",
                  flagged_homes, correlation_shared_signatures,
                  correlation_flood_sources, correlation_cohorts);
    out += line;
  }
  // The lifecycle totals line only exists when credentials actually moved
  // (an all-static fleet renders exactly as it did before the lifecycle tier).
  if (lifecycle_enrolled > 0 || lifecycle_rotated > 0 ||
      lifecycle_revoked > 0 || lifecycle_rejected_proofs > 0) {
    std::snprintf(line, sizeof(line),
                  "lifecycle: %zu enrolled, %zu rotated, %zu revoked, "
                  "%zu proofs rejected\n",
                  lifecycle_enrolled, lifecycle_rotated, lifecycle_revoked,
                  lifecycle_rejected_proofs);
    out += line;
  }
  // The cluster totals line only exists where a control plane does (or ran).
  if (row_label != "shard" || migrations > 0 || node_failovers > 0) {
    std::snprintf(line, sizeof(line),
                  "cluster: %zu migrations, %zu node failovers, handoff p95 "
                  "%.6f s\n",
                  migrations, node_failovers, handoff_p95_seconds);
    out += line;
  }
  std::snprintf(line, sizeof(line), "wall %.3f s, aggregate %.0f items/s\n",
                wall_seconds, throughput());
  out += line;
  return out;
}

}  // namespace fiat::fleet
