#include "fleet/engine.hpp"

#include <algorithm>
#include <cstdio>

#include "util/error.hpp"

namespace fiat::fleet {

FleetEngine::FleetEngine(std::vector<HomeSpec> homes,
                         const core::HumannessVerifier& humanness,
                         FleetConfig config)
    : config_(config) {
  if (config_.shards == 0) throw LogicError("FleetEngine: zero shards");
  // Keep every router batch within one queue's capacity. The queue survives
  // batch > capacity (the producer blocks mid-batch and the consumer drains),
  // but a batch that can never land in one shot just thrashes the condition
  // variables — clamp rather than make `fleet --capacity 64` a footgun.
  if (config_.ingest_batch > config_.queue_capacity) {
    config_.ingest_batch = config_.queue_capacity;
  }
  std::sort(homes.begin(), homes.end(),
            [](const HomeSpec& a, const HomeSpec& b) { return a.id < b.id; });
  for (std::size_t i = 1; i < homes.size(); ++i) {
    if (homes[i].id == homes[i - 1].id) {
      throw LogicError("FleetEngine: duplicate home id");
    }
  }
  home_count_ = homes.size();

  std::vector<HomeId> ids;
  ids.reserve(homes.size());
  for (const HomeSpec& spec : homes) ids.push_back(spec.id);
  partition_ = HomePartition::contiguous(ids, config_.shards);

  if (config_.recovery.enabled) {
    // Restarts re-apply revocations from the engine-owned ledger; the caller
    // cannot point the supervisor anywhere else.
    config_.recovery.revocations = &revocations_;
    supervisor_ = std::make_unique<Supervisor>(config_.recovery);
    shard_supervisors_.reserve(partition_.shard_count());
  }

  // Build each shard's contiguous slice. Homes are constructed spec-by-spec
  // (independent of the slicing), so a home's initial proxy state never
  // depends on the shard count.
  shards_.reserve(partition_.shard_count());
  std::size_t next = 0;
  for (std::size_t s = 0; s < partition_.shard_count(); ++s) {
    std::vector<Home> slice;
    std::vector<HomeSpec> spec_slice;
    while (next < homes.size() && partition_.shard_of(homes[next].id) == s) {
      slice.emplace_back(homes[next], humanness);
      if (supervisor_) spec_slice.push_back(homes[next]);
      ++next;
    }
    ShardSupervisor* shard_supervisor = nullptr;
    if (supervisor_) {
      shard_supervisors_.push_back(std::make_unique<ShardSupervisor>(
          s, supervisor_.get(), std::move(spec_slice), humanness));
      shard_supervisor = shard_supervisors_.back().get();
    }
    shards_.push_back(std::make_unique<Shard>(std::move(slice),
                                              config_.queue_capacity,
                                              config_.on_full,
                                              config_.trace_capacity,
                                              shard_supervisor));
    shards_.back()->set_batch(config_.batch);
  }
  if (next != homes.size()) throw LogicError("FleetEngine: partition hole");

  std::vector<Shard*> raw;
  raw.reserve(shards_.size());
  for (auto& shard : shards_) raw.push_back(shard.get());
  router_ = std::make_unique<IngestRouter>(std::move(raw), partition_,
                                           config_.ingest_batch);
}

void FleetEngine::start() {
  if (started_) throw LogicError("FleetEngine: started twice");
  started_ = true;
  start_time_ = std::chrono::steady_clock::now();
  for (auto& shard : shards_) shard->start();
}

void FleetEngine::drain() {
  if (stopped_) return;
  router_->flush();
  for (auto& shard : shards_) shard->stop(/*drain=*/true);
  wall_seconds_ = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                start_time_)
                      .count();
  stopped_ = true;
}

void FleetEngine::abort() {
  if (stopped_) return;
  // Deliberately no router flush: an abort discards, it does not publish.
  for (auto& shard : shards_) shard->stop(/*drain=*/false);
  wall_seconds_ = started_
                      ? std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start_time_)
                            .count()
                      : 0.0;
  stopped_ = true;
}

void FleetEngine::require_stopped(const char* op) const {
  if (started_ && !stopped_) {
    throw LogicError(std::string("FleetEngine: ") + op +
                     " requires a stopped engine");
  }
}

FleetStats FleetEngine::stats() const {
  require_stopped("stats()");
  FleetStats out;
  out.homes = home_count_;
  out.packets_in = router_->packets_offered();
  out.proofs_in = router_->proofs_offered();
  out.wall_seconds = wall_seconds_;
  for (const auto& shard : shards_) {
    ShardStats s = shard->stats();
    out.packets_out += s.packets;
    out.proofs_out += s.proofs;
    out.shed += s.queue_shed;
    out.shed_on_close += s.queue_shed_on_close;
    out.discarded += s.discarded;
    out.restarts += s.restarts;
    out.quarantined += s.quarantined;
    out.attack_injected += s.attack_injected;
    out.attack_blocked += s.attack_blocked;
    out.attack_completed += s.attack_completed;
    out.lifecycle_enrolled += s.enrolled;
    out.lifecycle_rotated += s.rotated;
    out.lifecycle_revoked += s.revoked;
    out.shards.push_back(s);
  }
  for (const auto& shard : shards_) {
    out.lifecycle_rejected_proofs += shard->lifecycle_rejected_proofs();
  }
  return out;
}

telemetry::MetricsRegistry FleetEngine::merged_metrics() const {
  require_stopped("merged_metrics()");
  telemetry::MetricsRegistry merged;
  // Shard order = partition order, so accumulated histogram sums (doubles)
  // merge in a fixed order and stay deterministic.
  for (const auto& shard : shards_) {
    merged.merge_from(shard->telemetry().metrics);
  }
  merged.counter("fleet.packets_in").inc(router_->packets_offered());
  merged.counter("fleet.proofs_in").inc(router_->proofs_offered());
  std::uint64_t trace_dropped = 0;
  for (const auto& shard : shards_) {
    trace_dropped += shard->telemetry().trace.dropped();
  }
  merged.counter("fleet.trace_spans_dropped").inc(trace_dropped);
  merged.gauge("fleet.wall_seconds", telemetry::Domain::kWall).set(wall_seconds_);
  return merged;
}

std::vector<telemetry::TraceSpan> FleetEngine::merged_trace() const {
  require_stopped("merged_trace()");
  std::vector<const telemetry::TraceBuffer*> buffers;
  buffers.reserve(shards_.size());
  for (const auto& shard : shards_) buffers.push_back(&shard->telemetry().trace);
  return telemetry::merge_ordered(buffers);
}

telemetry::SignalSet FleetEngine::signals() {
  require_stopped("signals()");
  telemetry::SignalSet out;
  for (auto& shard : shards_) out.merge_from(shard->signals());
  return out;
}

void FleetEngine::annotate_stats(FleetStats& stats,
                                 const CorrelationReport& report) const {
  for (std::uint32_t home : report.flagged_home_ids()) {
    std::size_t shard = partition_.shard_of(home);
    if (shard < stats.shards.size()) ++stats.shards[shard].flagged;
    ++stats.flagged_homes;
  }
  stats.correlation_shared_signatures = report.shared_signatures;
  stats.correlation_flood_sources = report.flood_sources;
  stats.correlation_cohorts = report.cohorts;
}

FleetReport FleetEngine::report() {
  require_stopped("report()");
  FleetReport out;
  out.stats = stats();
  out.homes.reserve(home_count_);
  for (auto& shard : shards_) {
    for (Home& home : shard->homes()) {
      home.proxy().flush_events();
      FleetReport::HomeEntry entry;
      entry.home = home.id();
      entry.counters = home.proxy().counters();
      entry.report = core::build_security_report(home.proxy());
      out.totals += entry.counters;
      out.attack.merge(entry.report.attack);
      if (!entry.report.incidents.empty()) ++out.homes_with_incidents;
      out.homes.push_back(std::move(entry));
    }
  }
  std::sort(out.homes.begin(), out.homes.end(),
            [](const FleetReport::HomeEntry& a, const FleetReport::HomeEntry& b) {
              return a.home < b.home;
            });
  return out;
}

std::string FleetReport::render(std::size_t max_homes) const {
  std::string out = "=== FIAT fleet report ===\n";
  char line[256];
  std::snprintf(line, sizeof(line),
                "%zu homes, %zu with incidents; packets %zu allowed / %zu "
                "dropped; %zu events\n",
                homes.size(), homes_with_incidents, totals.packets_allowed,
                totals.packets_dropped, totals.events_closed);
  out += line;
  std::snprintf(line, sizeof(line),
                "proofs: %zu accepted, %zu bad-sig, %zu non-human, %zu late, "
                "%zu duplicate; %zu alerts\n",
                totals.proofs_accepted, totals.proofs_rejected_signature,
                totals.proofs_rejected_nonhuman, totals.proofs_late,
                totals.proofs_duplicate, totals.alerts);
  out += line;
  std::snprintf(line, sizeof(line),
                "degraded: %zu events, %zu allows, %zu violations forgiven\n",
                totals.events_decided_degraded, totals.degraded_allows,
                totals.violations_forgiven);
  out += line;
  if (!attack.empty()) {
    std::snprintf(line, sizeof(line),
                  "attacks: %llu/%llu packets dropped, %llu/%llu proofs "
                  "rejected, %llu commands blocked, %llu completed\n",
                  static_cast<unsigned long long>(attack.dropped()),
                  static_cast<unsigned long long>(attack.injected()),
                  static_cast<unsigned long long>(attack.proofs_rejected()),
                  static_cast<unsigned long long>(attack.proofs_injected()),
                  static_cast<unsigned long long>(attack.commands_blocked()),
                  static_cast<unsigned long long>(attack.commands_completed()));
    out += line;
  }
  out += "\n-- runtime --\n";
  out += stats.render();

  std::size_t show = max_homes == 0 ? homes.size() : std::min(max_homes, homes.size());
  if (show == 0) return out;
  out += "\n-- homes --\n";
  std::snprintf(line, sizeof(line), "%-8s %9s %9s %7s %7s %7s %9s\n", "home",
                "allowed", "dropped", "events", "proofs", "alerts", "incidents");
  out += line;
  for (std::size_t i = 0; i < show; ++i) {
    const HomeEntry& h = homes[i];
    std::snprintf(line, sizeof(line), "%-8u %9zu %9zu %7zu %7zu %7zu %9zu\n",
                  h.home, h.counters.packets_allowed, h.counters.packets_dropped,
                  h.counters.events_closed, h.counters.proofs_accepted,
                  h.counters.alerts, h.report.incidents.size());
    out += line;
  }
  if (show < homes.size()) {
    std::snprintf(line, sizeof(line), "... %zu more homes\n", homes.size() - show);
    out += line;
  }
  return out;
}

}  // namespace fiat::fleet
