// The unit of work flowing through the fleet pipeline: one intercepted
// packet, one humanness-proof datagram, or one credential-lifecycle command,
// addressed to a home.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/attack_label.hpp"
#include "crypto/lifecycle.hpp"
#include "net/packet.hpp"

namespace fiat::fleet {

struct FleetItem {
  enum class Kind : std::uint8_t { kPacket, kProof, kLifecycle };

  std::uint32_t home = 0;
  Kind kind = Kind::kPacket;
  double ts = 0.0;  // packet timestamp / proof delivery / lifecycle effect time

  net::PacketRecord pkt;  // kPacket

  // kProof: QuicLite payload (u64 seq || sealed auth message) from a phone.
  // kLifecycle: client_id addresses the pairing the command mutates.
  std::string client_id;
  std::vector<std::uint8_t> payload;

  // kLifecycle: enroll/rotate/revoke command (crypto/lifecycle.hpp). Rides
  // the same ordered per-home stream as proofs, so replays through the
  // journal and the cluster handoff restore lifecycle state losslessly.
  crypto::LifecycleCommand lifecycle_cmd;

  /// Ground-truth campaign label (benign by default; see attack_label.hpp).
  /// Travels with the item through shards, supervisors, and the cluster
  /// control plane so every injected packet/proof is graded at the proxy.
  core::AttackLabel attack;

  static FleetItem packet(std::uint32_t home, const net::PacketRecord& pkt) {
    FleetItem item;
    item.home = home;
    item.kind = Kind::kPacket;
    item.ts = pkt.ts;
    item.pkt = pkt;
    return item;
  }

  static FleetItem proof(std::uint32_t home, double now, std::string client_id,
                         std::vector<std::uint8_t> payload) {
    FleetItem item;
    item.home = home;
    item.kind = Kind::kProof;
    item.ts = now;
    item.client_id = std::move(client_id);
    item.payload = std::move(payload);
    return item;
  }

  static FleetItem lifecycle(std::uint32_t home, double now,
                             std::string client_id,
                             crypto::LifecycleCommand cmd) {
    FleetItem item;
    item.home = home;
    item.kind = Kind::kLifecycle;
    item.ts = now;
    item.client_id = std::move(client_id);
    item.lifecycle_cmd = std::move(cmd);
    return item;
  }
};

}  // namespace fiat::fleet
