// Home -> node placement for the cluster tier (DESIGN.md §12).
//
// Rendezvous (highest-random-weight) hashing: every (node, home) pair gets a
// deterministic 64-bit score and a home lives on the alive node with the
// highest score. The property that makes this the right tool for a fleet
// control plane is *minimal disruption*: when a node dies, only the homes it
// owned move (each to its next-highest scorer); when a node joins, only the
// homes that score highest on the newcomer move. Everything else stays put,
// which is exactly what keeps failover and scale-out from turning into a
// fleet-wide state shuffle.
//
// On top of the pure hash the PlacementTable carries *overrides* — explicit
// home pins written by live migration and the rebalancer. An override
// survives unrelated node churn but is erased when its target node dies
// (the home falls back to rendezvous among the survivors).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "fleet/home.hpp"

namespace fiat::fleet {

using NodeId = std::uint32_t;

/// Deterministic rendezvous score for one (node, home) pair: a splitmix64
/// finalizer over the packed pair, so scores are stable across processes,
/// platforms and runs.
std::uint64_t rendezvous_score(NodeId node, HomeId home);

class PlacementTable {
 public:
  PlacementTable() = default;
  /// `nodes` are the initially-alive node ids (need not be contiguous).
  explicit PlacementTable(std::vector<NodeId> nodes);

  std::size_t alive_count() const { return alive_.size(); }
  const std::vector<NodeId>& alive_nodes() const { return alive_; }
  bool alive(NodeId node) const;

  /// Pure rendezvous owner among the alive nodes (overrides ignored).
  /// Throws when no node is alive.
  NodeId natural_owner(HomeId home) const;
  /// Effective owner: the override when one is pinned, else natural_owner().
  NodeId owner_of(HomeId home) const;

  /// Pins `home` onto `node` (migration / rebalancer). The pin holds until
  /// cleared or until `node` is removed.
  void set_override(HomeId home, NodeId node);
  void clear_override(HomeId home);
  std::size_t override_count() const { return overrides_.size(); }

  /// Marks `node` dead: it stops owning homes and every override pinned to
  /// it is erased (those homes fall back to rendezvous among survivors).
  void remove_node(NodeId node);
  /// (Re-)adds an alive node.
  void add_node(NodeId node);

 private:
  std::vector<NodeId> alive_;  // sorted
  std::map<HomeId, NodeId> overrides_;
};

}  // namespace fiat::fleet
