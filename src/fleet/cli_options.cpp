#include "fleet/cli_options.hpp"

#include <string>

#include "core/simd.hpp"
#include "gen/attacks.hpp"
#include "util/error.hpp"

namespace fiat::fleet {

namespace {

/// number_or() plus a positivity check, for counts that must be >= 1.
std::size_t count_flag(const util::Flags& flags, const char* cmd,
                       const std::string& name, double fallback) {
  double v = flags.number_or(name, fallback);
  if (v < 1.0) {
    throw Error(std::string(cmd) + ": --" + name + " must be at least 1");
  }
  return static_cast<std::size_t>(v);
}

double positive_interval(const util::Flags& flags, const char* cmd,
                         const std::string& name, double fallback) {
  double v = flags.number_or(name, fallback);
  if (v <= 0.0) {
    throw Error(std::string(cmd) + ": --" + name +
                " must be a positive sim-second interval");
  }
  return v;
}

std::uint64_t parse_u64(const char* cmd, const std::string& flag,
                        const std::string& text) {
  try {
    std::size_t used = 0;
    std::uint64_t v = std::stoull(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw Error(std::string(cmd) + ": --" + flag + " wants a number, got '" +
                text + "'");
  }
}

}  // namespace

FleetScenarioConfig parse_scenario_flags(const util::Flags& flags) {
  FleetScenarioConfig config;
  config.homes = count_flag(flags, "fleet", "homes", 100.0);
  config.devices_per_home = count_flag(flags, "fleet", "devices", 2.0);
  config.duration_days = flags.number_or("days", 0.03);
  config.seed = static_cast<std::uint64_t>(
      flags.number_or("seed", static_cast<double>(config.seed)));
  config.with_proofs = !flags.has("no-proofs");
  if (flags.has("manual-per-day")) {
    config.manual_per_day = flags.number_or("manual-per-day", 24.0);
    if (config.manual_per_day <= 0.0) {
      throw Error("fleet: --manual-per-day must be a positive rate");
    }
  }
  if (flags.has("zipf-skew")) {
    config.zipf_skew = flags.number_or("zipf-skew", 0.0);
    if (config.zipf_skew < 0.0) {
      throw Error("fleet: --zipf-skew must be >= 0");
    }
    config.zipf_max_devices =
        count_flag(flags, "fleet", "zipf-max-devices", 8.0);
  }

  // SIMD dispatch for the batch pipeline (core/simd.hpp). "auto" (default)
  // uses the vector kernels when the build has them; "on" demands them so a
  // perf run cannot silently measure the scalar fallback; "off" forces
  // scalar. Results are bit-identical in every mode.
  if (auto simd = flags.get("simd")) {
    if (*simd == "on") {
      if (!core::simd::available()) {
        throw Error(std::string("fleet: --simd on requires a vector ISA; "
                                "this build has none (use off or auto)"));
      }
      config.simd = true;
    } else if (*simd == "off") {
      config.simd = false;
    } else if (*simd == "auto") {
      config.simd = core::simd::available();
    } else {
      throw Error("fleet: --simd wants on, off, or auto, got '" + *simd + "'");
    }
  }

  // Campaign knobs (gen::AttackDirector). --attack-coverage or --sybil-frac
  // arms the director; the rest refine it.
  if (flags.has("attack-coverage")) {
    config.attack.coverage = flags.number_or("attack-coverage", 0.0);
    if (config.attack.coverage < 0.0 || config.attack.coverage > 1.0) {
      throw Error("fleet: --attack-coverage must be in [0, 1]");
    }
  }
  if (flags.has("sybil-frac")) {
    config.attack.sybil_fraction = flags.number_or("sybil-frac", 0.0);
    if (config.attack.sybil_fraction < 0.0) {
      throw Error("fleet: --sybil-frac must be >= 0");
    }
  }
  if (flags.has("attack-attempts")) {
    config.attack.attempts =
        static_cast<int>(count_flag(flags, "fleet", "attack-attempts", 4.0));
  }
  if (flags.has("attack-spacing")) {
    config.attack.spacing =
        positive_interval(flags, "fleet", "attack-spacing", 45.0);
  }
  if (flags.has("attack-seed")) {
    config.attack.seed = static_cast<std::uint64_t>(
        flags.number_or("attack-seed", static_cast<double>(config.attack.seed)));
  }
  if (auto cls = flags.get("attack-class")) {
    // Restrict the round-robin roster to one class — a single-class campaign,
    // the shape the fleet correlator's detectors are graded against.
    bool found = false;
    for (int i = 0; i < gen::kAttackTypeCount; ++i) {
      auto type = static_cast<gen::AttackType>(i);
      if (*cls == gen::attack_name(type)) {
        if (type == gen::AttackType::kSybilHome) {
          throw Error(
              "fleet: --attack-class sybil-home is driven by --sybil-frac, "
              "not the per-home roster");
        }
        if (type == gen::AttackType::kRevokedCredential) {
          throw Error(
              "fleet: --attack-class revoked-credential is driven by "
              "--churn-revoke, not the per-home roster");
        }
        config.attack.roster = {type};
        found = true;
        break;
      }
    }
    if (!found) {
      throw Error("fleet: --attack-class unknown class '" + *cls + "'");
    }
  }
  return config;
}

FleetConfig parse_fleet_flags(const util::Flags& flags, std::size_t homes) {
  FleetConfig config;
  config.shards = count_flag(flags, "fleet", "shards", 2.0);
  config.queue_capacity = count_flag(flags, "fleet", "capacity", 8192.0);
  if (flags.has("shed")) config.on_full = FullPolicy::kShed;
  config.trace_capacity =
      static_cast<std::size_t>(flags.number_or("trace-capacity", 8192.0));
  // Batch pipeline master switch (DESIGN.md §15); per-home results are
  // byte-identical either way, so this exists for A/B runs and the golden
  // matrix's scalar reference engine.
  config.batch = !flags.has("no-batch");

  // Recovery knobs (DESIGN.md §11). Any of them switches the supervised item
  // path on; without them the fleet runs the bare hot path.
  if (flags.has("snapshot-every")) {
    config.recovery.enabled = true;
    config.recovery.snapshot_every =
        positive_interval(flags, "fleet", "snapshot-every", 300.0);
  }
  if (flags.has("crash-at")) {
    std::uint64_t item = static_cast<std::uint64_t>(
        flags.number_or("crash-at", 0.0));
    if (item < 1) {
      throw Error("fleet: --crash-at wants a 1-based item ordinal");
    }
    config.recovery.enabled = true;
    config.recovery.fault = sim::ShardFaultPlan::crash_once_at(item);
  }
  if (auto spec = flags.get("crash-home")) {
    auto colon = spec->find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= spec->size()) {
      throw Error("fleet: --crash-home wants HOME:ITEM (e.g. 3:500)");
    }
    std::uint64_t home =
        parse_u64("fleet", "crash-home", spec->substr(0, colon));
    std::uint64_t item =
        parse_u64("fleet", "crash-home", spec->substr(colon + 1));
    if (home >= homes) {
      throw Error("fleet: --crash-home home " + std::to_string(home) +
                  " out of range (fleet has " + std::to_string(homes) +
                  " homes)");
    }
    if (item < 1) {
      throw Error("fleet: --crash-home wants a 1-based item ordinal");
    }
    config.recovery.enabled = true;
    config.recovery.fault = sim::ShardFaultPlan::crash_home_at(
        static_cast<HomeId>(home), item);
  }
  return config;
}

ClusterConfig parse_cluster_flags(const util::Flags& flags) {
  ClusterConfig config;
  config.nodes = count_flag(flags, "cluster", "nodes", 4.0);
  config.queue_capacity = count_flag(flags, "cluster", "capacity", 8192.0);
  if (flags.has("shed")) config.on_full = FullPolicy::kShed;
  if (flags.has("snapshot-every")) {
    config.snapshot_every =
        positive_interval(flags, "cluster", "snapshot-every", 300.0);
  }
  config.snapshot_retention = count_flag(flags, "cluster", "retention", 3.0);
  config.journal = !flags.has("no-journal");
  config.cold_failover = flags.has("cold-failover");

  if (flags.has("kill-node") || flags.has("kill-at")) {
    double at = flags.number_or("kill-at", 0.0);
    if (at <= 0.0) {
      throw Error("cluster: --kill-at wants a positive sim time");
    }
    std::uint64_t node = static_cast<std::uint64_t>(
        flags.number_or("kill-node", 0.0));
    if (node >= config.nodes) {
      throw Error("cluster: --kill-node " + std::to_string(node) +
                  " out of range (cluster has " +
                  std::to_string(config.nodes) + " nodes)");
    }
    double detect = flags.number_or("detect-after", 0.0);
    if (detect < 0.0) {
      throw Error("cluster: --detect-after must be >= 0");
    }
    config.fault =
        sim::NodeFaultPlan::kill_at(static_cast<NodeId>(node), at, detect);
  }
  if (flags.has("rebalance-every")) {
    config.rebalance_every =
        positive_interval(flags, "cluster", "rebalance-every", 0.0);
    config.rebalance_top = count_flag(flags, "cluster", "rebalance-top", 1.0);
    config.rebalance_ratio = flags.number_or("rebalance-ratio", 1.25);
    if (config.rebalance_ratio < 1.0) {
      throw Error("cluster: --rebalance-ratio must be >= 1");
    }
  }
  return config;
}

CorrelateOptions parse_correlate_flags(const util::Flags& flags,
                                       const char* cmd) {
  CorrelateOptions opts;
  opts.enabled = flags.has("correlate");
  if (auto path = flags.get("correlation-json")) {
    if (!opts.enabled) {
      throw Error(std::string(cmd) +
                  ": --correlation-json requires --correlate");
    }
    if (path->empty()) {
      throw Error(std::string(cmd) + ": --correlation-json wants a path");
    }
    opts.json_path = *path;
  }
  if (!opts.enabled) {
    // Tuning flags without --correlate are silent dead weight; reject them
    // so a typo'd invocation does not quietly skip the correlator.
    for (const char* name : {"correlate-min-homes", "correlate-min-replays",
                             "correlate-epsilon", "correlate-min-cohort"}) {
      if (flags.has(name)) {
        throw Error(std::string(cmd) + ": --" + name +
                    " requires --correlate");
      }
    }
    return opts;
  }
  if (flags.has("correlate-min-homes")) {
    opts.config.min_actor_homes =
        count_flag(flags, cmd, "correlate-min-homes", 3.0);
    if (opts.config.min_actor_homes < 2) {
      throw Error(std::string(cmd) +
                  ": --correlate-min-homes must be at least 2 (a campaign "
                  "spans homes)");
    }
  }
  if (flags.has("correlate-min-replays")) {
    opts.config.min_replays =
        count_flag(flags, cmd, "correlate-min-replays", 3.0);
  }
  if (flags.has("correlate-epsilon")) {
    opts.config.shape_epsilon = flags.number_or("correlate-epsilon", 0.25);
    if (opts.config.shape_epsilon <= 0.0) {
      throw Error(std::string(cmd) + ": --correlate-epsilon must be > 0");
    }
  }
  if (flags.has("correlate-min-cohort")) {
    opts.config.min_cohort =
        count_flag(flags, cmd, "correlate-min-cohort", 3.0);
    if (opts.config.min_cohort < 2) {
      throw Error(std::string(cmd) +
                  ": --correlate-min-cohort must be at least 2");
    }
  }
  return opts;
}

FleetScenarioConfig::ChurnConfig parse_churn_flags(const util::Flags& flags,
                                                   const char* cmd) {
  FleetScenarioConfig::ChurnConfig churn;
  if (flags.has("churn-join")) {
    churn.join_fraction = flags.number_or("churn-join", 0.0);
    if (churn.join_fraction < 0.0 || churn.join_fraction > 1.0) {
      throw Error(std::string(cmd) + ": --churn-join must be in [0, 1]");
    }
  }
  if (flags.has("churn-rotate-every")) {
    churn.rotate_every =
        positive_interval(flags, cmd, "churn-rotate-every", 0.0);
  }
  if (flags.has("churn-revoke")) {
    churn.revoke_fraction = flags.number_or("churn-revoke", 0.0);
    if (churn.revoke_fraction < 0.0 || churn.revoke_fraction > 1.0) {
      throw Error(std::string(cmd) + ": --churn-revoke must be in [0, 1]");
    }
  }
  if (!flags.has("churn-revoke")) {
    // Schedule tuners without the revoke knob are silent dead weight; reject
    // them so a typo'd invocation does not quietly run without revocations
    // (same contract as the --correlate tuning flags).
    for (const char* name : {"churn-revoke-at", "churn-window"}) {
      if (flags.has(name)) {
        throw Error(std::string(cmd) + ": --" + name +
                    " requires --churn-revoke");
      }
    }
    return churn;
  }
  if (flags.has("churn-revoke-at")) {
    churn.revoke_at_frac = flags.number_or("churn-revoke-at", 0.6);
    if (churn.revoke_at_frac <= 0.0 || churn.revoke_at_frac >= 1.0) {
      throw Error(std::string(cmd) +
                  ": --churn-revoke-at must be in (0, 1) — a mid-trace "
                  "fraction");
    }
  }
  if (flags.has("churn-window")) {
    churn.revocation_window =
        positive_interval(flags, cmd, "churn-window", 30.0);
  }
  return churn;
}

}  // namespace fiat::fleet
