#include "fleet/home.hpp"

namespace fiat::fleet {

core::FiatProxy make_home_proxy(const HomeSpec& spec,
                                const core::HumannessVerifier& humanness) {
  core::FiatProxy proxy(spec.proxy, humanness);
  for (const auto& dev : spec.devices) proxy.add_device(dev);
  for (const auto& phone : spec.phones) {
    if (phone.enroll) {
      proxy.register_enrollable(phone.client_id, phone.psk);
    } else {
      proxy.pair_phone(phone.client_id, phone.psk);
    }
  }
  for (const auto& [src, dst] : spec.dag_edges) proxy.add_dag_edge(src, dst);
  return proxy;
}

}  // namespace fiat::fleet
