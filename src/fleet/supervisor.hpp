// Crash supervision + durability for the fleet runtime (DESIGN.md §11).
//
// A Supervisor is the fleet-level ledger: it owns the SnapshotStore and the
// (mutex-protected) restart/quarantine/resume logs every shard reports into.
// A ShardSupervisor is one shard's recovery brain. It wraps the worker's
// item loop:
//
//   on_item (crash injection) -> shard.process -> journal -> maybe_snapshot
//
// and when any exception escapes processing it performs an in-worker restart
// of the shard's state: every home is rebuilt from its HomeSpec, warm-
// restored from its latest snapshot when one opens cleanly (else cold, with
// bootstrap forced elapsed under fail-closed so a restart never re-opens the
// insecure learning window), and the since-snapshot journal is replayed.
// The worker thread itself survives — per-home state is single-threaded
// either way, so healing in place gives the same guarantees as killing and
// re-spawning the thread with none of the handoff races.
//
// Retry discipline: a crashing item is retried after each restart; after
// `max_attempts` crashes at the same (home, ordinal) the item is declared
// deterministic poison, quarantined (skipped + logged), and the shard moves
// on instead of crash-looping. Items are journaled only AFTER they process
// successfully, so replay can never re-execute the crash.
//
// With journaling on, restore-point + journal covers every processed item —
// recovery loses nothing and the merged FleetReport is byte-identical to an
// uninterrupted run. With journaling off, items between the last snapshot
// and the crash are lost (the "recovery gap" bench_recovery measures); the
// per-(home, ordinal) attempt counter still converges because a poison
// ordinal keeps accumulating attempts across rewinds even if a different
// item aliases onto it.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/humanness.hpp"
#include "fleet/enrollment.hpp"
#include "fleet/home.hpp"
#include "fleet/item.hpp"
#include "fleet/snapshot_store.hpp"
#include "sim/faults.hpp"
#include "telemetry/sink.hpp"

namespace fiat::fleet {

class Shard;

struct RecoveryConfig {
  /// Master switch; off = zero per-item overhead (Shard bypasses the
  /// supervisor entirely).
  bool enabled = false;
  /// Sim-seconds between snapshots per home (cadence driven by that home's
  /// own item timestamps; sim t=0 counts as the last snapshot). 0 disables
  /// snapshotting.
  double snapshot_every = 300.0;
  /// Crashes at one (home, ordinal) before the item is quarantined.
  int max_attempts = 3;
  /// Journal items since the last snapshot and replay them after a restore:
  /// lossless recovery (the golden byte-identity mode). Off = restore to the
  /// snapshot only, losing the gap (what bench_recovery measures).
  bool journal = true;
  /// Ignore snapshots on restart (bench baseline: cold re-bootstrap).
  bool cold_restart = false;
  /// Crash injection, applied to every shard (per-home plans only fire on
  /// the shard owning that home; shard-global ordinals fire per shard).
  sim::ShardFaultPlan fault;
  /// Fleet-wide revocation ledger (owned by the engine). When set, every
  /// restart re-applies the recorded revocations after the journal replay,
  /// so a crash can never resurrect a revoked credential even when the
  /// revoke item itself fell in a recovery gap.
  const RevocationLedger* revocations = nullptr;
};

struct RestartRecord {
  std::size_t shard = 0;
  HomeId crash_home = 0;        // home of the item that crashed
  std::uint64_t crash_ordinal = 0;  // that home's 1-based item ordinal
  double ts = 0.0;              // sim time of the crashing item
  bool quarantined = false;     // this crash exhausted max_attempts
  std::string error;
};

struct QuarantinedItem {
  HomeId home = 0;
  std::uint64_t ordinal = 0;
  double ts = 0.0;
  std::string error;
};

/// Where one home resumed after one restart — the bench's alignment anchor.
struct ResumePoint {
  std::size_t shard = 0;
  HomeId home = 0;
  bool warm = false;                  // restored from a snapshot
  std::uint64_t resume_ordinal = 0;   // items of this home in restored state
  std::uint64_t lost_items = 0;       // processed before crash, absent after
  std::uint64_t restored_log_len = 0; // decision-log length after restore
};

/// Fleet-level recovery ledger; one per engine, shared by every shard's
/// supervisor. The note_*/logs are mutex-protected (multiple workers);
/// everything else is read after the engine stops.
class Supervisor {
 public:
  explicit Supervisor(RecoveryConfig config) : config_(std::move(config)) {}

  const RecoveryConfig& config() const { return config_; }
  SnapshotStore& store() { return store_; }
  const SnapshotStore& store() const { return store_; }

  void note_restart(RestartRecord rec);
  void note_quarantine(QuarantinedItem item);
  void note_resume(ResumePoint point);

  std::vector<RestartRecord> restarts() const;
  std::vector<QuarantinedItem> quarantined() const;
  std::vector<ResumePoint> resume_points() const;

  /// One-paragraph recovery summary for the CLI.
  std::string render() const;

 private:
  RecoveryConfig config_;
  SnapshotStore store_;
  mutable std::mutex mu_;
  std::vector<RestartRecord> restarts_;
  std::vector<QuarantinedItem> quarantined_;
  std::vector<ResumePoint> resume_points_;
};

/// One shard's recovery state. Constructed before the worker starts; after
/// that every member is touched only by the worker thread (the same
/// ownership rule as the shard's homes), which is what keeps the whole
/// recovery path TSan-clean. Holds its own copy of the shard's HomeSpecs and
/// the humanness verifier so it can rebuild homes without reaching into
/// engine state.
class ShardSupervisor {
 public:
  ShardSupervisor(std::size_t shard_index, Supervisor* fleet,
                  std::vector<HomeSpec> specs,
                  core::HumannessVerifier humanness);

  /// Caches telemetry handles in the shard's worker-owned sink. Called by
  /// the Shard constructor, before the worker thread exists.
  void attach(telemetry::Sink* sink);

  /// The supervised item path (worker thread only): crash injection, retry/
  /// restart/quarantine, journaling, snapshot cadence.
  void process(Shard& shard, const FleetItem& item);

  /// Supervised batch path (DESIGN.md §15), used by Shard::run only when
  /// fault_active() is false: splits the batch into segments that end at the
  /// first item whose home hits its snapshot cadence (cadence state is
  /// frozen inside a segment, so the cut points are exactly where the
  /// per-item loop would snapshot), hands each segment to
  /// Shard::process_batch, then replays the per-item bookkeeping (ordinals,
  /// journal) and snapshots at the boundary. Byte-identical to process()
  /// per item. Organic (non-injected) exceptions propagate instead of
  /// triggering a restart — the same behavior as an unsupervised shard.
  void process_batch(Shard& shard, std::span<const FleetItem> items);

  /// True when the configured fault plan can still inject a crash; batching
  /// must stay per-item so the crash/retry bracket wraps the exact item.
  bool fault_active() const { return injector_.plan().active(); }

  // ---- post-stop introspection -------------------------------------------
  std::size_t restarts() const { return restarts_; }
  std::size_t quarantined_count() const { return quarantined_; }
  std::size_t snapshots_taken() const { return snapshots_taken_; }

 private:
  struct HomeState {
    std::uint64_t processed = 0;  // this home's items applied to its proxy
    double last_snapshot_ts = 0.0;
    std::vector<std::pair<std::uint64_t, FleetItem>> journal;
  };

  HomeState& state_of(HomeId home);
  void take_snapshot(Home& home, double sim_ts);
  void maybe_snapshot(Shard& shard, const FleetItem& item);
  /// Rebuild + restore every home of this shard (see file comment).
  void restart_shard(Shard& shard, const FleetItem& crash_item,
                     std::uint64_t crash_ordinal, bool quarantining,
                     const std::string& error);

  std::size_t shard_index_;
  Supervisor* fleet_;
  std::vector<HomeSpec> specs_;  // sorted by id, parallel to shard homes
  core::HumannessVerifier humanness_;
  sim::ShardFaultInjector injector_;
  std::map<HomeId, HomeState> homes_;
  std::uint64_t shard_items_ = 0;  // shard-global on_item ordinal
  std::size_t restarts_ = 0;
  std::size_t quarantined_ = 0;
  std::size_t snapshots_taken_ = 0;
  /// Crash attempts per (home, ordinal); keyed by ordinal, not item
  /// identity, so lossy-mode ordinal rewinds still converge to quarantine.
  std::map<std::pair<HomeId, std::uint64_t>, int> attempts_;

  // Telemetry (cached in attach(); all worker-owned).
  telemetry::Sink* sink_ = nullptr;
  telemetry::Counter* tm_restarts_ = nullptr;
  telemetry::Counter* tm_quarantined_ = nullptr;
  telemetry::Counter* tm_snapshots_ = nullptr;
  telemetry::Counter* tm_snapshots_rejected_ = nullptr;
  telemetry::Counter* tm_restores_warm_ = nullptr;
  telemetry::Counter* tm_restores_cold_ = nullptr;
  telemetry::Counter* tm_gap_items_ = nullptr;
  telemetry::Histogram* tm_snapshot_bytes_ = nullptr;
  telemetry::Histogram* tm_snapshot_seconds_ = nullptr;
  telemetry::Histogram* tm_restore_seconds_ = nullptr;
};

}  // namespace fiat::fleet
