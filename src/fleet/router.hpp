// IngestRouter: the fleet's ingestion front-end.
//
// Partitions items by home id onto the owning shard's bounded queue,
// buffering per shard so the queue lock is amortized over `batch_size`
// items. Backpressure (block) or shedding happens at the queue according to
// its FullPolicy; the router reports what it offered and what was accepted.
//
// A router instance is single-producer: it keeps unsynchronized per-shard
// buffers. The shard queues themselves are MPSC, so concurrent producers
// are supported by giving each producer thread its own IngestRouter over
// the same shards. Per-home determinism then requires all items of one home
// to flow through one producer in timestamp order — the per-home total
// order the shard preserves is the enqueue order.
#pragma once

#include <cstddef>
#include <vector>

#include "fleet/item.hpp"
#include "fleet/shard.hpp"

namespace fiat::fleet {

/// Maps home ids to shard indexes: contiguous ranges over the sorted home
/// ids (shard 0 gets the lowest ids, and so on, balanced within +/-1 home).
class HomePartition {
 public:
  HomePartition() = default;
  /// `sorted_ids` must be ascending and duplicate-free.
  static HomePartition contiguous(const std::vector<HomeId>& sorted_ids,
                                  std::size_t shard_count);

  std::size_t shard_of(HomeId id) const;
  std::size_t shard_count() const { return range_start_.size(); }
  /// Home ids of shard `i`'s range: [first(i), first(i+1)).
  HomeId range_start(std::size_t shard) const { return range_start_[shard]; }

 private:
  std::vector<HomeId> range_start_;  // range_start_[i] = first home id of shard i
};

class IngestRouter {
 public:
  IngestRouter(std::vector<Shard*> shards, HomePartition partition,
               std::size_t batch_size = 128);
  ~IngestRouter();

  IngestRouter(const IngestRouter&) = delete;
  IngestRouter& operator=(const IngestRouter&) = delete;

  /// Buffers the item towards its shard; flushes that shard's buffer when it
  /// reaches batch_size. Acceptance/shedding is only known at flush time, so
  /// the return value reports routing success (false = no such shard).
  bool ingest(FleetItem item);
  /// Pushes out all buffered items. Returns how many were accepted.
  std::size_t flush();

  std::size_t packets_offered() const { return packets_offered_; }
  std::size_t proofs_offered() const { return proofs_offered_; }
  std::size_t accepted() const { return accepted_; }

 private:
  std::vector<Shard*> shards_;
  HomePartition partition_;
  std::size_t batch_size_;
  std::vector<std::vector<FleetItem>> buffers_;  // per shard
  std::size_t packets_offered_ = 0;
  std::size_t proofs_offered_ = 0;
  std::size_t accepted_ = 0;
};

}  // namespace fiat::fleet
