// ClusterEngine: the multi-node tier above FleetEngine (DESIGN.md §12).
//
// N simulated proxy nodes, each a worker thread owning a dynamic set of
// homes behind a BoundedQueue, under a single-threaded control plane (the
// ingest thread) that owns routing and all fleet choreography:
//
//   ingest(item) -> PlacementTable (rendezvous + overrides) -> node queue
//                    |         |            |
//                    |         |            +-- NodeFaultPlan: node kill,
//                    |         |                detection window, failover
//                    |         +-- planned + load-aware live migrations
//                    +-- per-home routed counters (loss accounting)
//
// Live migration: the controller flips routing instantly and enqueues a cut
// to the source and an install to the destination, joined by a Handoff
// barrier (fleet/migration.hpp). FIFO queues order the cut after every
// pre-flip item and the install before every post-flip item, so a clean
// migration loses nothing and the migrated home's history is byte-identical
// to an unmigrated run.
//
// Failover: when the fault plan kills a node, items for its homes inside the
// detection window are black-holed (counted — that exposure is what
// bench_cluster measures); at detection the controller drains the corpse's
// queue (pre-kill items were routed, so they count as processed and
// journaled), discards its in-memory state, removes it from the placement,
// and re-places its homes on the survivors from the durable SnapshotStore +
// JournalStore via restore_home() — warm where a snapshot generation
// decodes, fail-closed-strict where items were genuinely lost.
//
// Determinism contract: every control decision (kill, detection, migration,
// rebalance, black-holing) keys off item timestamps and ingest-order
// counters, never thread timing, so verdict counts, per-home reports, and
// all Domain::kSim telemetry are byte-identical across runs of one seed.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/humanness.hpp"
#include "fleet/bounded_queue.hpp"
#include "fleet/engine.hpp"
#include "fleet/home.hpp"
#include "fleet/item.hpp"
#include "fleet/migration.hpp"
#include "fleet/placement.hpp"
#include "fleet/snapshot_store.hpp"
#include "fleet/stats.hpp"
#include "sim/faults.hpp"
#include "telemetry/sink.hpp"

namespace fiat::fleet {

struct ClusterConfig {
  std::size_t nodes = 4;
  /// Per-node queue capacity (items).
  std::size_t queue_capacity = 8192;
  FullPolicy on_full = FullPolicy::kBlock;
  /// Controller buffering: messages per queue-lock acquisition.
  std::size_t ingest_batch = 128;
  /// Per-node telemetry trace ring (spans); 0 disables tracing.
  std::size_t trace_capacity = 0;
  /// Sim-seconds between durable snapshots per home; 0 disables.
  double snapshot_every = 300.0;
  /// Snapshot generations kept per home (newest-first fallback on restore).
  std::size_t snapshot_retention = 3;
  /// Journal processed items (lossless migration cut + warm failover). Off =
  /// cuts write a fresh snapshot, failover loses the since-snapshot gap.
  bool journal = true;
  /// Failover baseline: ignore the durable stores and re-bootstrap cold.
  bool cold_failover = false;
  /// At most one whole-node kill per run (sim/faults.hpp).
  sim::NodeFaultPlan fault;

  // ---- load-aware rebalancer ------------------------------------------------
  /// Sim-seconds between load scans; 0 disables the rebalancer.
  double rebalance_every = 0.0;
  /// Hot homes migrated off the loaded node per scan.
  std::size_t rebalance_top = 1;
  /// Trigger: max node load > ratio * mean node load since the last scan.
  double rebalance_ratio = 1.25;

  /// Scripted migrations (tests, benches): move `home` to node `to` at the
  /// first item with ts >= at_time.
  struct PlannedMigration {
    HomeId home = 0;
    NodeId to = 0;
    double at_time = 0.0;
  };
  std::vector<PlannedMigration> migrations;
};

/// One live migration the controller ran (in decision order).
struct MigrationRecord {
  HomeId home = 0;
  NodeId from = 0;
  NodeId to = 0;
  double ts = 0.0;      // sim time of the routing flip
  bool planned = false;  // scripted (vs rebalancer-chosen)
};

/// One whole-node failover.
struct FailoverRecord {
  NodeId node = 0;
  double killed_ts = 0.0;
  double detected_ts = 0.0;
  std::size_t homes_replaced = 0;
  /// Detection-window items addressed to the dead node, fleet-total.
  std::uint64_t items_black_holed = 0;
};

/// One message on a node's queue. Control messages ride the same FIFO as
/// items — their queue position IS the protocol (cut after pre-flip items,
/// install before post-flip items).
struct NodeMsg {
  enum class Kind : std::uint8_t { kItem, kCut, kInstall, kRestore };

  Kind kind = Kind::kItem;
  FleetItem item;  // kItem
  HomeId home = 0;                     // control kinds
  double now = 0.0;                    // sim time of the control decision
  std::uint64_t expected_ordinal = 0;  // kRestore: items routed pre-failure
  std::shared_ptr<Handoff> handoff;    // kCut / kInstall
};

/// One proxy node: a worker thread over a dynamic home set. Mirrors Shard's
/// ownership discipline — per-home state and the sink belong to the worker;
/// stats/telemetry are read only after the join.
class ClusterNode {
 public:
  ClusterNode(NodeId id, const ClusterConfig& config,
              const std::vector<HomeSpec>& specs,
              const core::HumannessVerifier& humanness,
              SnapshotStore& snapshots, JournalStore& journal,
              const RevocationLedger& revocations);
  ~ClusterNode();

  ClusterNode(const ClusterNode&) = delete;
  ClusterNode& operator=(const ClusterNode&) = delete;

  NodeId id() const { return id_; }

  /// Installs an initial home (before start()).
  void add_home(Home home);

  void start();
  /// Closes the queue and joins the worker; idempotent. With `drain` every
  /// accepted message is processed, without it the backlog is discarded.
  void stop(bool drain);

  BoundedQueue<NodeMsg>& queue() { return queue_; }

  std::map<HomeId, Home>& homes() { return homes_; }
  ShardStats stats() const;
  /// Proofs this node's homes rejected for lifecycle reasons (revoked /
  /// expired / not-yet-enrolled credentials). Same stopped-state rule as
  /// stats().
  std::size_t lifecycle_rejected_proofs() const;
  /// This node's homes' correlation fingerprints (flushes open events).
  /// Same stopped-state rule as stats().
  telemetry::SignalSet signals();
  telemetry::Sink& telemetry();
  const telemetry::Sink& telemetry() const;

 private:
  struct ProcState {
    std::uint64_t processed = 0;  // this home's global item ordinal
    double last_snapshot_ts = 0.0;
  };

  void run();
  void handle(NodeMsg& msg);
  void process_item(const FleetItem& item);
  void do_cut(NodeMsg& msg);
  void do_install(NodeMsg& msg);
  void do_restore(NodeMsg& msg);
  void take_snapshot(Home& home, ProcState& st, double sim_ts);
  void maybe_snapshot(Home& home, ProcState& st, double sim_ts);
  Home restore_into_node(const HomeSpec& spec, const RestoreOptions& opts,
                         RestoreOutcome& out);
  const HomeSpec& spec_of(HomeId home) const;
  void require_quiescent(const char* op) const;

  NodeId id_;
  const ClusterConfig& config_;
  const std::vector<HomeSpec>& specs_;  // all homes, sorted by id
  const core::HumannessVerifier& humanness_;
  SnapshotStore& snapshots_;
  JournalStore& journal_;
  const RevocationLedger& revocations_;

  std::map<HomeId, Home> homes_;
  std::map<HomeId, ProcState> proc_;
  BoundedQueue<NodeMsg> queue_;
  telemetry::Sink sink_;
  std::thread worker_;
  bool started_ = false;
  bool stopped_ = false;
  std::atomic<bool> discard_{false};

  // Worker-owned counters (read after join).
  std::size_t packets_ = 0;
  std::size_t proofs_ = 0;
  std::size_t lifecycle_ops_ = 0;
  std::size_t discarded_ = 0;
  std::size_t migrations_in_ = 0;
  std::size_t migrations_out_ = 0;
  double busy_seconds_ = 0.0;

  // Telemetry handles (cached before the thread exists).
  telemetry::Counter* tm_installs_ = nullptr;
  telemetry::Counter* tm_cuts_ = nullptr;
  telemetry::Counter* tm_installs_aborted_ = nullptr;
  telemetry::Counter* tm_snapshots_ = nullptr;
  telemetry::Counter* tm_snapshots_rejected_ = nullptr;
  telemetry::Counter* tm_restores_warm_ = nullptr;
  telemetry::Counter* tm_restores_cold_ = nullptr;
  telemetry::Counter* tm_gap_items_ = nullptr;
  telemetry::Histogram* tm_snapshot_bytes_ = nullptr;
  telemetry::Histogram* tm_handoff_seconds_ = nullptr;  // kWall
};

class ClusterEngine {
 public:
  ClusterEngine(std::vector<HomeSpec> homes,
                const core::HumannessVerifier& humanness,
                ClusterConfig config = {});

  std::size_t home_count() const { return specs_.size(); }
  std::size_t node_count() const { return nodes_.size(); }
  const PlacementTable& placement() const { return placement_; }

  void start();

  /// Single-producer ingestion in timestamp order (same contract as
  /// FleetEngine). Returns false only for an unknown home id.
  bool ingest(FleetItem item);

  /// Graceful stop: run any still-pending failover, flush the routing
  /// buffers, drain and join every node.
  void drain();
  /// Hard stop: abandon outstanding handoffs, discard backlogs, join.
  void abort();
  bool stopped() const { return stopped_; }

  /// Runtime counters (row per node). Requires a stopped engine.
  FleetStats stats() const;
  /// Merged per-home report across the surviving nodes. Requires a stopped
  /// engine.
  FleetReport report();
  /// Every surviving home's correlation fingerprint, merged in node order
  /// (byte-identical regardless of placement, migrations, or failovers —
  /// fingerprints derive from durable proxy state only). Requires a stopped
  /// engine.
  telemetry::SignalSet signals();
  /// Marks correlator-flagged homes on the per-node rows and copies the
  /// rollups into the totals. Requires a stopped engine.
  void annotate_stats(FleetStats& stats, const CorrelationReport& report) const;
  /// All node registries + the controller registry merged in fixed order.
  telemetry::MetricsRegistry merged_metrics() const;
  /// Node trace spans merged in deterministic order.
  std::vector<telemetry::TraceSpan> merged_trace() const;

  const std::vector<MigrationRecord>& migrations() const { return migrations_; }
  const std::vector<FailoverRecord>& failovers() const { return failovers_; }
  std::uint64_t items_black_holed() const { return black_holed_total_; }

  SnapshotStore& snapshots() { return snapshots_; }
  JournalStore& journal() { return journal_; }
  ClusterNode& node(std::size_t i) { return *nodes_[i]; }
  /// Fleet-wide revocation ledger (populated at ingest; re-applied by every
  /// restore, install and failover re-placement).
  const RevocationLedger& revocations() const { return revocations_; }

  /// One-paragraph control-plane summary for the CLI.
  std::string render_control_plane() const;

 private:
  std::size_t index_of(HomeId home) const;  // npos for unknown ids
  void flush_node(NodeId node);
  void flush_all();
  void on_time(double ts);  // kill / failover / migrations / rebalance
  bool migrate(HomeId home, NodeId to, double ts, bool planned);
  void maybe_rebalance(double ts);
  void run_failover(double detected_ts);
  void require_stopped(const char* op) const;

  ClusterConfig config_;
  core::HumannessVerifier humanness_;
  std::vector<HomeSpec> specs_;  // sorted by id
  std::vector<HomeId> home_ids_;  // parallel to specs_
  SnapshotStore snapshots_;
  JournalStore journal_;
  RevocationLedger revocations_;  // before nodes_: they hold references
  PlacementTable placement_;
  std::vector<std::unique_ptr<ClusterNode>> nodes_;
  std::vector<bool> node_dead_;
  std::vector<std::vector<NodeMsg>> pending_;  // per-node routing buffers
  std::vector<NodeMsg> scratch_;               // flush_node batch staging

  // Controller-side accounting (single ingest thread).
  std::vector<std::uint64_t> routed_;       // per home index
  std::vector<std::uint64_t> black_holed_;  // per home index
  std::uint64_t black_holed_total_ = 0;
  std::vector<std::uint64_t> home_load_;  // since the last rebalance scan
  std::vector<std::uint64_t> node_load_;
  double last_rebalance_ts_ = 0.0;
  std::vector<ClusterConfig::PlannedMigration> planned_;  // sorted by at_time
  std::size_t next_planned_ = 0;
  std::vector<std::shared_ptr<Handoff>> handoffs_;
  std::vector<MigrationRecord> migrations_;
  std::vector<FailoverRecord> failovers_;
  bool killed_ = false;
  bool failed_over_ = false;
  std::size_t offered_packets_ = 0;
  std::size_t offered_proofs_ = 0;

  telemetry::Sink controller_sink_;
  telemetry::Counter* tm_migrations_ = nullptr;
  telemetry::Counter* tm_failovers_ = nullptr;
  telemetry::Counter* tm_homes_replaced_ = nullptr;
  telemetry::Counter* tm_black_holed_ = nullptr;

  bool started_ = false;
  bool stopped_ = false;
  std::chrono::steady_clock::time_point start_time_;
  double wall_seconds_ = 0.0;
};

}  // namespace fiat::fleet
