#include "fleet/supervisor.hpp"

#include <chrono>
#include <cstdio>

#include "core/state_codec.hpp"
#include "fleet/migration.hpp"
#include "fleet/shard.hpp"

namespace fiat::fleet {

void Supervisor::note_restart(RestartRecord rec) {
  std::lock_guard<std::mutex> lock(mu_);
  restarts_.push_back(std::move(rec));
}

void Supervisor::note_quarantine(QuarantinedItem item) {
  std::lock_guard<std::mutex> lock(mu_);
  quarantined_.push_back(std::move(item));
}

void Supervisor::note_resume(ResumePoint point) {
  std::lock_guard<std::mutex> lock(mu_);
  resume_points_.push_back(point);
}

std::vector<RestartRecord> Supervisor::restarts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return restarts_;
}

std::vector<QuarantinedItem> Supervisor::quarantined() const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantined_;
}

std::vector<ResumePoint> Supervisor::resume_points() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resume_points_;
}

std::string Supervisor::render() const {
  std::vector<RestartRecord> restarts;
  std::vector<QuarantinedItem> quarantined;
  {
    std::lock_guard<std::mutex> lock(mu_);
    restarts = restarts_;
    quarantined = quarantined_;
  }
  char line[192];
  std::snprintf(line, sizeof(line),
                "recovery: %zu shard restarts, %zu items quarantined; "
                "snapshots: %zu homes, %zu puts, %zu bytes held\n",
                restarts.size(), quarantined.size(), store_.home_count(),
                store_.puts(), store_.total_bytes());
  std::string out = line;
  for (const QuarantinedItem& q : quarantined) {
    std::snprintf(line, sizeof(line),
                  "  quarantined: home %u item %llu at t=%.3f (%s)\n", q.home,
                  static_cast<unsigned long long>(q.ordinal), q.ts,
                  q.error.c_str());
    out += line;
  }
  return out;
}

ShardSupervisor::ShardSupervisor(std::size_t shard_index, Supervisor* fleet,
                                 std::vector<HomeSpec> specs,
                                 core::HumannessVerifier humanness)
    : shard_index_(shard_index),
      fleet_(fleet),
      specs_(std::move(specs)),
      humanness_(std::move(humanness)),
      injector_(fleet->config().fault) {}

void ShardSupervisor::attach(telemetry::Sink* sink) {
  sink_ = sink;
  auto& m = sink->metrics;
  tm_restarts_ = &m.counter("fleet.shard_restarts");
  tm_quarantined_ = &m.counter("fleet.items_quarantined");
  tm_snapshots_ = &m.counter("fleet.snapshots_taken");
  tm_snapshots_rejected_ = &m.counter("fleet.snapshots_rejected");
  tm_restores_warm_ = &m.counter("fleet.restores_warm");
  tm_restores_cold_ = &m.counter("fleet.restores_cold");
  tm_gap_items_ = &m.counter("fleet.recovery_gap_items");
  tm_snapshot_bytes_ = &m.histogram("fleet.snapshot_bytes");
  tm_snapshot_seconds_ =
      &m.histogram("fleet.snapshot_seconds", telemetry::Domain::kWall);
  tm_restore_seconds_ =
      &m.histogram("fleet.restore_seconds", telemetry::Domain::kWall);
}

ShardSupervisor::HomeState& ShardSupervisor::state_of(HomeId home) {
  return homes_[home];
}

void ShardSupervisor::process(Shard& shard, const FleetItem& item) {
  // HomeState nodes live in a std::map: the reference stays valid across the
  // restart path below, which inserts no new homes.
  HomeState& st = state_of(item.home);
  std::uint64_t ordinal = st.processed + 1;
  ++shard_items_;
  for (;;) {
    try {
      injector_.on_item(item.home, ordinal, shard_items_);
      shard.process(item);
      st.processed = ordinal;
      // Journal AFTER success: replay can never re-execute a crash.
      if (fleet_->config().journal) st.journal.emplace_back(ordinal, item);
      maybe_snapshot(shard, item);
      return;
    } catch (const std::exception& e) {
      // Attempts are keyed by (home, ordinal), not item identity: a lossy
      // restore rewinds ordinals, and a poison ordinal must keep
      // accumulating attempts across rewinds to converge on quarantine.
      int attempts = ++attempts_[{item.home, ordinal}];
      bool quarantine = attempts >= fleet_->config().max_attempts;
      restart_shard(shard, item, ordinal, quarantine, e.what());
      if (quarantine) {
        // Consume the poison ordinal without applying (or journaling) the
        // item, then move on instead of crash-looping.
        st.processed = ordinal;
        ++quarantined_;
        if (tm_quarantined_) tm_quarantined_->inc();
        fleet_->note_quarantine({item.home, ordinal, item.ts, e.what()});
        return;
      }
      // Transient (or not-yet-exhausted) crash: retry the same item against
      // the restored state.
    }
  }
}

void ShardSupervisor::process_batch(Shard& shard,
                                    std::span<const FleetItem> items) {
  if (fault_active()) {
    // Defensive: the shard should not route batches here with a live fault
    // plan, but if it does, fall back to the exact per-item bracket.
    for (const FleetItem& item : items) process(shard, item);
    return;
  }
  const double every = fleet_->config().snapshot_every;
  const bool journal = fleet_->config().journal;
  std::size_t begin = 0;
  while (begin < items.size()) {
    // Segment ends at the first item that will trigger a snapshot for its
    // home. No snapshot can happen before the boundary, so last_snapshot_ts
    // is frozen during the scan and the cut lands exactly where the
    // per-item loop would have called take_snapshot.
    std::size_t end = items.size();
    if (every > 0.0) {
      for (std::size_t j = begin; j < end; ++j) {
        if (items[j].ts - state_of(items[j].home).last_snapshot_ts >= every) {
          end = j + 1;
          break;
        }
      }
    }
    std::span<const FleetItem> seg = items.subspan(begin, end - begin);
    shard.process_batch(seg);
    for (const FleetItem& item : seg) {
      HomeState& st = state_of(item.home);
      ++st.processed;
      ++shard_items_;
      if (journal) st.journal.emplace_back(st.processed, item);
    }
    // No-op unless the boundary item actually triggered (a batch can also
    // end because the queue drained).
    maybe_snapshot(shard, items[end - 1]);
    begin = end;
  }
}

void ShardSupervisor::maybe_snapshot(Shard& shard, const FleetItem& item) {
  double every = fleet_->config().snapshot_every;
  if (every <= 0.0) return;
  HomeState& st = state_of(item.home);
  if (item.ts - st.last_snapshot_ts < every) return;
  Home* home = shard.find_home(item.home);
  if (home) take_snapshot(*home, item.ts);
}

void ShardSupervisor::take_snapshot(Home& home, double sim_ts) {
  auto t0 = std::chrono::steady_clock::now();
  util::Bytes blob = core::encode_proxy_state(home.proxy(), home.id());
  HomeState& st = state_of(home.id());
  if (tm_snapshot_bytes_) {
    tm_snapshot_bytes_->record(static_cast<double>(blob.size()));
  }
  fleet_->store().put(home.id(), st.processed, sim_ts, std::move(blob));
  // The snapshot now covers everything the journal held.
  st.journal.clear();
  st.last_snapshot_ts = sim_ts;
  ++snapshots_taken_;
  if (tm_snapshots_) tm_snapshots_->inc();
  if (tm_snapshot_seconds_) {
    tm_snapshot_seconds_->record(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  }
  if (sink_ && sink_->trace.enabled()) {
    telemetry::TraceSpan span;
    span.name = "snapshot";
    span.category = "fleet.recovery";
    span.start = sim_ts;
    span.home = home.id();
    span.track = "supervisor";
    sink_->trace.record(std::move(span));
  }
}

void ShardSupervisor::restart_shard(Shard& shard, const FleetItem& crash_item,
                                    std::uint64_t crash_ordinal,
                                    bool quarantining,
                                    const std::string& error) {
  auto t0 = std::chrono::steady_clock::now();
  ++restarts_;
  if (tm_restarts_) tm_restarts_->inc();
  const RecoveryConfig& cfg = fleet_->config();

  std::vector<Home> rebuilt;
  rebuilt.reserve(specs_.size());
  for (const HomeSpec& spec : specs_) {
    HomeState& st = state_of(spec.id);
    std::uint64_t before = st.processed;
    Home home(spec, humanness_);
    bool warm = false;
    std::uint64_t resume = 0;
    if (!cfg.cold_restart) {
      if (auto rec = fleet_->store().latest(spec.id)) {
        core::CodecStatus status =
            core::decode_proxy_state(home.proxy(), rec->blob, spec.id);
        if (status == core::CodecStatus::kOk) {
          warm = true;
          resume = rec->ordinal;
        } else {
          // Rejected snapshot (corrupt / truncated / skewed / misdirected):
          // the decode may have half-mutated the proxy, so rebuild once more
          // and fall through to the cold path.
          if (tm_snapshots_rejected_) tm_snapshots_rejected_->inc();
          home = Home(spec, humanness_);
        }
      }
    }
    // Size the hole this restore leaves BEFORE deciding on bootstrap
    // forcing: items processed before the crash that neither the snapshot
    // nor the journal can reproduce (a crash before the first snapshot
    // with journaling on is fully covered — ordinal 1 onward).
    std::uint64_t journal_reach = resume;
    std::uint64_t journal_holes = 0;
    for (const auto& [ord, journaled] : st.journal) {
      if (ord <= journal_reach) continue;
      journal_holes += ord - journal_reach - 1;
      journal_reach = ord;
    }
    std::uint64_t lost =
        (before > journal_reach ? before - journal_reach : 0) + journal_holes;
    if (!warm && lost > 0 &&
        spec.proxy.degraded_policy == core::FailPolicy::kFailClosed) {
      // Lossy restart under fail-closed: re-running bootstrap on attack-
      // reachable traffic would re-open the 20-minute allow-all window, so
      // the rebuilt proxy starts strict (the cost — transient lockouts — is
      // exactly what bench_recovery quantifies). When the journal covers
      // the full gap the replay reconstructs bootstrap state exactly, so
      // forcing would needlessly diverge from the uninterrupted run.
      home.proxy().force_bootstrap_elapsed(crash_item.ts);
    }
    for (const auto& [ord, journaled] : st.journal) {
      if (ord <= resume) continue;
      apply_item(home, journaled);
      resume = ord;
    }
    if (cfg.revocations != nullptr) {
      // Revocation is never forgotten: re-drive every ledger-recorded
      // revocation for this home after the replay. Idempotent (kNoop when
      // the journal already covered it); decisive when the revoke item fell
      // in a recovery gap.
      for (const RevocationLedger::Entry& rev :
           cfg.revocations->for_home(spec.id)) {
        crypto::LifecycleCommand cmd;
        cmd.op = crypto::LifecycleCommand::Op::kRevoke;
        cmd.effective_ts = rev.effective_ts;
        home.proxy().on_lifecycle(rev.client_id, cmd, crash_item.ts);
      }
    }
    if (tm_gap_items_ && lost > 0) tm_gap_items_->inc(lost);
    if (auto* c = warm ? tm_restores_warm_ : tm_restores_cold_) c->inc();
    fleet_->note_resume({shard_index_, spec.id, warm, resume, lost,
                         home.proxy().decision_log().size()});
    st.processed = resume;
    rebuilt.push_back(std::move(home));
  }
  shard.adopt_homes(std::move(rebuilt));

  if (tm_restore_seconds_) {
    tm_restore_seconds_->record(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  }
  if (sink_ && sink_->trace.enabled()) {
    telemetry::TraceSpan span;
    span.name = quarantining ? "quarantine-restart" : "restart";
    span.category = "fleet.recovery";
    span.start = crash_item.ts;
    span.home = crash_item.home;
    span.track = "supervisor";
    span.args = {{"error", error}};
    sink_->trace.record(std::move(span));
  }
  fleet_->note_restart({shard_index_, crash_item.home, crash_ordinal,
                        crash_item.ts, quarantining, error});
}

}  // namespace fiat::fleet
