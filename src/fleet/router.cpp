#include "fleet/router.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fiat::fleet {

const char* full_policy_name(FullPolicy p) {
  switch (p) {
    case FullPolicy::kBlock: return "block";
    case FullPolicy::kShed: return "shed";
  }
  return "?";
}

HomePartition HomePartition::contiguous(const std::vector<HomeId>& sorted_ids,
                                        std::size_t shard_count) {
  if (shard_count == 0) throw LogicError("HomePartition: zero shards");
  if (!std::is_sorted(sorted_ids.begin(), sorted_ids.end())) {
    throw LogicError("HomePartition: ids must be sorted");
  }
  HomePartition p;
  std::size_t n = sorted_ids.size();
  std::size_t shards = std::min(shard_count, std::max<std::size_t>(n, 1));
  p.range_start_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    // Balanced split: shard i starts at index floor(i*n/shards).
    std::size_t start = i * n / shards;
    p.range_start_.push_back(n == 0 ? 0 : sorted_ids[start]);
  }
  return p;
}

std::size_t HomePartition::shard_of(HomeId id) const {
  if (range_start_.size() <= 1) return 0;
  auto it = std::upper_bound(range_start_.begin() + 1, range_start_.end(), id);
  return static_cast<std::size_t>(it - range_start_.begin()) - 1;
}

IngestRouter::IngestRouter(std::vector<Shard*> shards, HomePartition partition,
                           std::size_t batch_size)
    : shards_(std::move(shards)),
      partition_(std::move(partition)),
      batch_size_(batch_size ? batch_size : 1),
      buffers_(shards_.size()) {
  if (partition_.shard_count() != shards_.size()) {
    throw LogicError("IngestRouter: partition/shard count mismatch");
  }
}

IngestRouter::~IngestRouter() { flush(); }

bool IngestRouter::ingest(FleetItem item) {
  std::size_t shard = partition_.shard_of(item.home);
  if (shard >= shards_.size()) return false;
  // Lifecycle commands ride the proof lane in the offered counters: both are
  // rare control-plane datagrams next to the packet firehose.
  if (item.kind == FleetItem::Kind::kPacket) {
    ++packets_offered_;
  } else {
    ++proofs_offered_;
  }
  auto& buf = buffers_[shard];
  buf.push_back(std::move(item));
  if (buf.size() >= batch_size_) {
    accepted_ += shards_[shard]->queue().push_batch(buf);
  }
  return true;
}

std::size_t IngestRouter::flush() {
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < buffers_.size(); ++i) {
    if (buffers_[i].empty()) continue;
    accepted += shards_[i]->queue().push_batch(buffers_[i]);
  }
  accepted_ += accepted;
  return accepted;
}

}  // namespace fiat::fleet
