// Defining this before any include turns core/attack_label.hpp into a
// compile error here: the detector must never see ground-truth labels.
#define FIAT_CORRELATOR_TU 1

#include "fleet/correlator.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

namespace fiat::fleet {

const char* flag_reason_name(FlagReason r) {
  switch (r) {
    case FlagReason::kSharedSignatureReplay: return "shared-signature";
    case FlagReason::kProofReplayFlood: return "proof-flood";
    case FlagReason::kSybilCohort: return "sybil-cohort";
  }
  return "?";
}

namespace {

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

CorrelationReport correlate(const telemetry::SignalSet& signals,
                            const CorrelatorConfig& config) {
  const auto& homes = signals.homes();  // sorted by home id
  CorrelationReport out;
  out.homes_observed = homes.size();

  // ---- detector 1: shared sniffed signature -------------------------------
  // A costume signature in the escalation sketches of >= M homes is one
  // device fingerprint replayed fleet-wide; a lone home tripping its own
  // guard never qualifies.
  std::map<std::uint64_t, std::vector<std::uint32_t>> sig_homes;
  for (const auto& h : homes) {
    for (const auto& sc : h.signature_sketch) {
      if (sc.count >= config.min_shared_sig_count) {
        sig_homes[sc.signature].push_back(h.home);
      }
    }
  }
  std::map<std::uint32_t, std::pair<std::uint64_t, std::size_t>> sig_flagged;
  for (const auto& [sig, members] : sig_homes) {
    if (members.size() < config.min_actor_homes) continue;
    ++out.shared_signatures;
    for (std::uint32_t home : members) {
      auto [it, fresh] = sig_flagged.try_emplace(home, sig, members.size());
      if (!fresh) it->second.second = std::max(it->second.second, members.size());
    }
  }
  for (const auto& [home, ev] : sig_flagged) {
    char detail[96];
    std::snprintf(detail, sizeof(detail),
                  "escalation signature shared with %zu homes",
                  ev.second - 1);
    out.actors.push_back({home, FlagReason::kSharedSignatureReplay, ev.first,
                          detail});
  }

  // ---- detector 2: proof-replay flood -------------------------------------
  // >= M homes each rejecting >= R proofs from the same source: captured
  // payloads sprayed across the fleet. Benign phones produce strictly
  // increasing sequences, so their rejection counts stay at zero.
  std::map<std::uint64_t, std::vector<std::uint32_t>> source_homes;
  for (const auto& h : homes) {
    for (const auto& ps : h.proof_sources) {
      if (ps.rejected >= config.min_replays) {
        source_homes[ps.source].push_back(h.home);
      }
    }
  }
  std::map<std::uint32_t, std::pair<std::uint64_t, std::size_t>> flood_flagged;
  for (const auto& [source, members] : source_homes) {
    if (members.size() < config.min_actor_homes) continue;
    ++out.flood_sources;
    for (std::uint32_t home : members) {
      auto [it, fresh] = flood_flagged.try_emplace(home, source, members.size());
      if (!fresh) it->second.second = std::max(it->second.second, members.size());
    }
  }
  for (const auto& [home, ev] : flood_flagged) {
    char detail[96];
    std::snprintf(detail, sizeof(detail),
                  "proof-replay flood source hitting %zu homes",
                  ev.second);
    out.actors.push_back({home, FlagReason::kProofReplayFlood, ev.first,
                          detail});
  }

  // ---- detector 3: Sybil cohort -------------------------------------------
  // Candidacy is the benign separator: a real home with a paired phone has
  // proofs accepted (or at least proof-channel traffic); a fabricated one
  // blocks manual commands forever and never produces a proof. Candidates
  // are then clustered by traffic shape, greedily against the lowest-id
  // seed (deterministic: candidates arrive sorted by home id).
  std::vector<const telemetry::HomeSignals*> candidates;
  for (const auto& h : homes) {
    if (h.manual_blocked > 0 && h.proofs_accepted == 0 &&
        h.proof_sources.empty()) {
      candidates.push_back(&h);
    }
  }
  struct Cohort {
    const telemetry::HomeSignals* seed;
    std::vector<std::uint32_t> members;
  };
  std::vector<Cohort> cohorts;
  for (const auto* cand : candidates) {
    Cohort* joined = nullptr;
    for (auto& cohort : cohorts) {
      if (telemetry::shape_distance(*cohort.seed, *cand) <=
          config.shape_epsilon) {
        joined = &cohort;
        break;
      }
    }
    if (joined) {
      joined->members.push_back(cand->home);
    } else {
      cohorts.push_back({cand, {cand->home}});
    }
  }
  for (const auto& cohort : cohorts) {
    if (cohort.members.size() < config.min_cohort) continue;
    ++out.cohorts;
    for (std::uint32_t home : cohort.members) {
      char detail[96];
      std::snprintf(detail, sizeof(detail),
                    "sybil cohort of %zu near-identical homes",
                    cohort.members.size());
      out.actors.push_back({home, FlagReason::kSybilCohort,
                            cohort.seed->home, detail});
    }
  }

  std::sort(out.actors.begin(), out.actors.end(),
            [](const FlaggedActor& a, const FlaggedActor& b) {
              if (a.home != b.home) return a.home < b.home;
              if (a.reason != b.reason) return a.reason < b.reason;
              return a.evidence < b.evidence;
            });
  for (const auto& actor : out.actors) {
    ++out.flagged_by_reason[static_cast<std::size_t>(actor.reason)];
  }
  return out;
}

std::vector<std::uint32_t> CorrelationReport::flagged_home_ids() const {
  std::vector<std::uint32_t> ids;
  ids.reserve(actors.size());
  for (const auto& actor : actors) ids.push_back(actor.home);
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());  // already sorted
  return ids;
}

bool CorrelationReport::flagged(std::uint32_t home) const {
  return std::any_of(actors.begin(), actors.end(),
                     [&](const FlaggedActor& a) { return a.home == home; });
}

std::string CorrelationReport::render() const {
  std::string out = "=== fleet correlation ===\n";
  char line[192];
  std::snprintf(line, sizeof(line),
                "%zu homes observed, %zu flagged (%zu shared-signature, "
                "%zu proof-flood, %zu sybil-cohort)\n",
                homes_observed, flagged_homes(),
                flagged_by_reason[0], flagged_by_reason[1],
                flagged_by_reason[2]);
  out += line;
  std::snprintf(line, sizeof(line),
                "rollups: %zu shared signatures, %zu flood sources, "
                "%zu sybil cohorts\n",
                shared_signatures, flood_sources, cohorts);
  out += line;
  if (actors.empty()) {
    out += "no campaign-level actors flagged\n";
    return out;
  }
  for (const auto& actor : actors) {
    std::snprintf(line, sizeof(line), "  home %-6u %-16s %s  %s\n",
                  actor.home, flag_reason_name(actor.reason),
                  hex64(actor.evidence).c_str(), actor.detail.c_str());
    out += line;
  }
  return out;
}

util::Json CorrelationReport::to_json() const {
  auto by_reason = util::Json::object();
  for (std::size_t i = 0; i < kFlagReasonCount; ++i) {
    by_reason.put(flag_reason_name(static_cast<FlagReason>(i)),
                  flagged_by_reason[i]);
  }
  auto rollups = util::Json::object()
                     .put("shared_signatures", shared_signatures)
                     .put("flood_sources", flood_sources)
                     .put("cohorts", cohorts);
  auto actor_array = util::Json::array();
  for (const auto& actor : actors) {
    actor_array.push(util::Json::object()
                         .put("home", static_cast<std::size_t>(actor.home))
                         .put("reason", flag_reason_name(actor.reason))
                         .put("evidence", hex64(actor.evidence))
                         .put("detail", actor.detail));
  }
  return util::Json::object()
      .put("schema_version", static_cast<std::size_t>(1))
      .put("homes_observed", homes_observed)
      .put("flagged_homes", flagged_homes())
      .put("flagged_by_reason", std::move(by_reason))
      .put("rollups", std::move(rollups))
      .put("actors", std::move(actor_array));
}

void CorrelationReport::rollups_into(telemetry::MetricsRegistry& m) const {
  m.counter("correlation.homes_observed").inc(homes_observed);
  m.counter("correlation.flagged_homes").inc(flagged_homes());
  for (std::size_t i = 0; i < kFlagReasonCount; ++i) {
    m.counter(std::string("correlation.flagged.") +
              flag_reason_name(static_cast<FlagReason>(i)))
        .inc(flagged_by_reason[i]);
  }
  m.counter("correlation.shared_signatures").inc(shared_signatures);
  m.counter("correlation.flood_sources").inc(flood_sources);
  m.counter("correlation.cohorts").inc(cohorts);
}

}  // namespace fiat::fleet
