// Per-home snapshot store with atomic generation-swap semantics.
//
// Shard workers publish sealed state blobs (core/state_codec.hpp) here on a
// sim-time cadence; the supervisor reads the latest generation back when it
// warm-restores a restarted shard. The store keeps exactly one record per
// home — the newest generation — and swaps it in atomically under the store
// mutex: a reader either sees the complete old snapshot or the complete new
// one, never a torn mix (the moral equivalent of write-to-temp + rename on a
// real filesystem). Blobs are opaque bytes; validation happens at restore
// time via open_state(), which is what lets a test inject corrupted blobs to
// drive the cold-start fallback path.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "fleet/home.hpp"
#include "util/bytes.hpp"

namespace fiat::fleet {

class SnapshotStore {
 public:
  struct Record {
    HomeId home = 0;
    /// Monotone per home; bumped on every put.
    std::uint64_t generation = 0;
    /// Items of this home processed when the snapshot was taken (the journal
    /// replay point).
    std::uint64_t ordinal = 0;
    /// Sim time of the item that triggered the snapshot.
    double sim_ts = 0.0;
    util::Bytes blob;
  };

  /// Publishes a new snapshot for `home`, replacing any previous generation
  /// whole. Returns the new generation number.
  std::uint64_t put(HomeId home, std::uint64_t ordinal, double sim_ts,
                    util::Bytes blob);

  /// Copy of the latest record for `home`, if any. A copy, not a reference:
  /// the worker may swap in a newer generation while the caller reads.
  std::optional<Record> latest(HomeId home) const;

  /// Test/bench hook: identical to put(), spelled differently so corruption-
  /// matrix tests that plant hostile bytes read as what they are.
  std::uint64_t inject(HomeId home, std::uint64_t ordinal, double sim_ts,
                       util::Bytes blob) {
    return put(home, ordinal, sim_ts, std::move(blob));
  }

  std::size_t home_count() const;
  std::size_t puts() const;
  /// Bytes held across all current generations (superseded blobs are freed).
  std::size_t total_bytes() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<HomeId, Record> latest_;
  std::size_t puts_ = 0;
};

}  // namespace fiat::fleet
