// Per-home snapshot store with atomic generation-swap semantics.
//
// Shard workers publish sealed state blobs (core/state_codec.hpp) here on a
// sim-time cadence; the supervisor reads the latest generation back when it
// warm-restores a restarted shard, and the cluster tier's failover path
// walks generations newest-first so a corrupt newest snapshot falls back to
// the previous one instead of forcing a cold start. The store keeps the last
// `retention` generations per home (default 1 — the PR 5 behavior) and
// evicts older ones on put, so arbitrarily long runs hold bounded memory.
// Generations swap in atomically under the store mutex: a reader either sees
// a complete old record or a complete new one, never a torn mix (the moral
// equivalent of write-to-temp + rename on a real filesystem). Blobs are
// opaque bytes; validation happens at restore time via open_state(), which
// is what lets a test inject corrupted blobs to drive the fallback paths.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "fleet/home.hpp"
#include "util/bytes.hpp"

namespace fiat::fleet {

class SnapshotStore {
 public:
  struct Record {
    HomeId home = 0;
    /// Monotone per home; bumped on every put.
    std::uint64_t generation = 0;
    /// Items of this home processed when the snapshot was taken (the journal
    /// replay point).
    std::uint64_t ordinal = 0;
    /// Sim time of the item that triggered the snapshot.
    double sim_ts = 0.0;
    util::Bytes blob;
  };

  /// `retention` = generations kept per home (>= 1; 0 is clamped to 1).
  explicit SnapshotStore(std::size_t retention = 1);

  std::size_t retention() const { return retention_; }
  /// Adjusts the per-home retention bound; shrinking evicts immediately.
  void set_retention(std::size_t retention);

  /// Publishes a new snapshot for `home` and evicts generations beyond the
  /// retention bound. Returns the new generation number.
  std::uint64_t put(HomeId home, std::uint64_t ordinal, double sim_ts,
                    util::Bytes blob);

  /// Copy of the latest record for `home`, if any. A copy, not a reference:
  /// the worker may swap in a newer generation while the caller reads.
  /// Unaffected by retention eviction — the newest generation always stays.
  std::optional<Record> latest(HomeId home) const;

  /// Copies of every retained generation for `home`, newest first (the
  /// fallback order a restore walks).
  std::vector<Record> history(HomeId home) const;

  /// Test/bench hook: identical to put(), spelled differently so corruption-
  /// matrix tests that plant hostile bytes read as what they are.
  std::uint64_t inject(HomeId home, std::uint64_t ordinal, double sim_ts,
                       util::Bytes blob) {
    return put(home, ordinal, sim_ts, std::move(blob));
  }

  std::size_t home_count() const;
  std::size_t puts() const;
  /// Bytes held across all retained generations (evicted blobs are freed).
  std::size_t total_bytes() const;

 private:
  mutable std::mutex mu_;
  std::size_t retention_ = 1;
  /// Newest generation at the front.
  std::unordered_map<HomeId, std::deque<Record>> generations_;
  std::size_t puts_ = 0;
};

}  // namespace fiat::fleet
