#include "fleet/migration.hpp"

#include <algorithm>

#include "core/state_codec.hpp"

namespace fiat::fleet {

void apply_item(Home& home, const FleetItem& item) {
  // Labeled overloads: a journal replay re-tallies the attack ledger exactly
  // as live processing did (the snapshot carries the ledger up to its cut).
  switch (item.kind) {
    case FleetItem::Kind::kPacket:
      home.proxy().process(item.pkt, item.attack);
      break;
    case FleetItem::Kind::kProof:
      home.proxy().on_auth_payload(item.client_id, item.payload, item.ts,
                                   item.attack);
      break;
    case FleetItem::Kind::kLifecycle:
      home.proxy().on_lifecycle(item.client_id, item.lifecycle_cmd, item.ts);
      break;
  }
}

void JournalStore::append(HomeId home, std::uint64_t ordinal,
                          const FleetItem& item) {
  std::lock_guard<std::mutex> lock(mu_);
  tails_[home].emplace_back(ordinal, item);
}

std::vector<JournalStore::Entry> JournalStore::tail_after(
    HomeId home, std::uint64_t after) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tails_.find(home);
  if (it == tails_.end()) return {};
  const std::deque<Entry>& tail = it->second;
  // Tails are appended in ascending ordinal order, so the cut is a
  // lower_bound, not a scan.
  auto first = std::lower_bound(
      tail.begin(), tail.end(), after,
      [](const Entry& e, std::uint64_t o) { return e.first <= o; });
  return {first, tail.end()};
}

void JournalStore::truncate_upto(HomeId home, std::uint64_t upto) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tails_.find(home);
  if (it == tails_.end()) return;
  std::deque<Entry>& tail = it->second;
  while (!tail.empty() && tail.front().first <= upto) tail.pop_front();
}

std::size_t JournalStore::entries(HomeId home) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tails_.find(home);
  return it == tails_.end() ? 0 : it->second.size();
}

std::size_t JournalStore::total_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [home, tail] : tails_) n += tail.size();
  return n;
}

void Handoff::complete(std::uint64_t ordinal, double sim_ts) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (done_) return;
    done_ = true;
    cut_.ok = true;
    cut_.ordinal = ordinal;
    cut_.sim_ts = sim_ts;
  }
  cv_.notify_all();
}

void Handoff::abandon() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (done_) return;
    done_ = true;
    cut_.ok = false;
  }
  cv_.notify_all();
}

Handoff::Cut Handoff::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return done_; });
  return cut_;
}

double Handoff::age_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       created_)
      .count();
}

RestoreOutcome restore_home(Home& home, const HomeSpec& spec,
                            const core::HumannessVerifier& humanness,
                            const SnapshotStore& snapshots,
                            const JournalStore& journal,
                            const RestoreOptions& opts) {
  RestoreOutcome out;
  std::uint64_t resume = 0;
  if (opts.use_snapshots) {
    for (const SnapshotStore::Record& rec : snapshots.history(spec.id)) {
      ++out.generations_tried;
      core::CodecStatus status =
          core::decode_proxy_state(home.proxy(), rec.blob, spec.id);
      if (status == core::CodecStatus::kOk) {
        out.warm = true;
        resume = rec.ordinal;
        break;
      }
      // Rejected generation (corrupt / truncated / misdirected): the decode
      // may have half-mutated the proxy, so rebuild and try the next-older
      // generation — the functional payoff of snapshot retention > 1.
      home = Home(spec, humanness);
    }
  }

  std::vector<JournalStore::Entry> tail;
  std::uint64_t reach = resume;
  std::uint64_t holes = 0;
  if (opts.use_journal) {
    tail = journal.tail_after(spec.id, resume);
    for (const auto& [ord, item] : tail) {
      holes += ord - reach - 1;
      reach = ord;
    }
  }
  out.lost_items =
      (opts.expected_ordinal > reach ? opts.expected_ordinal - reach : 0) +
      holes;

  if (!out.warm && out.lost_items > 0 &&
      spec.proxy.degraded_policy == core::FailPolicy::kFailClosed) {
    // Lossy cold restore under fail-closed: re-running bootstrap on attack-
    // reachable traffic would re-open the allow-all learning window, so the
    // rebuilt proxy starts strict (same rule as the supervisor restart).
    home.proxy().force_bootstrap_elapsed(opts.now);
    out.forced_bootstrap = true;
  }

  for (const auto& [ord, item] : tail) apply_item(home, item);

  if (opts.revocations != nullptr) {
    // Re-drive every recorded revocation. CredentialRegistry::apply(kRevoke)
    // is idempotent (kNoop when the client is already fully revoked), so a
    // journal-covered revocation replays harmlessly while a lost one is
    // restored here.
    for (const RevocationLedger::Entry& rev :
         opts.revocations->for_home(spec.id)) {
      crypto::LifecycleCommand cmd;
      cmd.op = crypto::LifecycleCommand::Op::kRevoke;
      cmd.effective_ts = rev.effective_ts;
      home.proxy().on_lifecycle(rev.client_id, cmd, opts.now);
    }
  }
  out.resume_ordinal = reach;
  return out;
}

}  // namespace fiat::fleet
