// Bounded MPSC queue for the fleet runtime.
//
// Producers (the IngestRouter) push packet/proof items; one shard worker
// drains them in FIFO order. The queue is *bounded*: when full it either
// blocks the producer (backpressure propagates to the ingestion front-end)
// or sheds the item with a counter — never unbounded growth. Modeled on the
// lokinet worker-queue shape (llarp/util/thread/queue.hpp): mutex + two
// condition variables, batch drain on the consumer side so the lock is taken
// once per wakeup, not once per item.
//
// Shutdown contract:
//  * close() wakes every blocked producer (their pushes fail, counted as
//    shed-on-close) and the consumer. Items already queued remain poppable,
//    so a "drain" stop processes everything accepted before the close.
//  * pop_wait() returns false only when the queue is closed AND empty —
//    the worker's exit condition. No path leaves a thread waiting forever.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace fiat::fleet {

/// What a producer experiences when the queue is at capacity.
enum class FullPolicy {
  kBlock,  // wait for space (backpressure)
  kShed,   // drop the item, count it
};

const char* full_policy_name(FullPolicy p);

template <typename T>
class BoundedQueue {
 public:
  struct Stats {
    std::size_t pushed = 0;      // items accepted
    std::size_t popped = 0;      // items handed to the consumer
    std::size_t shed = 0;        // rejected: queue full under kShed
    std::size_t shed_on_close = 0;  // rejected: push after/during close
    std::size_t high_water = 0;  // max queue depth observed
  };

  explicit BoundedQueue(std::size_t capacity, FullPolicy policy)
      : capacity_(capacity ? capacity : 1), policy_(policy) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Stamps each accepted item with its push time so pop_wait() can report
  /// per-item queue-wait durations (host wall clock — a Domain::kWall
  /// metric). Off by default: untracked queues pay nothing. Call before the
  /// first push.
  void enable_wait_tracking() {
    std::lock_guard lock(mu_);
    track_waits_ = true;
  }

  /// Pushes one item. Returns false when the item was shed (full queue under
  /// kShed, or the queue is closed).
  bool push(T item) {
    std::unique_lock lock(mu_);
    if (!wait_for_space(lock)) return false;
    items_.push_back(std::move(item));
    if (track_waits_) push_times_.push_back(Clock::now());
    ++stats_.pushed;
    if (items_.size() > stats_.high_water) stats_.high_water = items_.size();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Pushes a batch under one lock acquisition; consumes accepted items from
  /// `items` (the vector is cleared). Returns how many were accepted. Under
  /// kShed a full queue sheds the batch's tail; under kBlock the producer
  /// waits whenever capacity runs out mid-batch.
  std::size_t push_batch(std::vector<T>& items) {
    std::size_t accepted = 0;
    {
      std::unique_lock lock(mu_);
      // One clock read for the whole batch; re-read only if kBlock parked us.
      Clock::time_point batch_now{};
      if (track_waits_) batch_now = Clock::now();
      for (auto& item : items) {
        std::size_t depth_before = items_.size();
        if (!wait_for_space(lock)) continue;  // keep counting sheds for the rest
        items_.push_back(std::move(item));
        if (track_waits_) {
          if (items_.size() <= depth_before) batch_now = Clock::now();
          push_times_.push_back(batch_now);
        }
        ++stats_.pushed;
        ++accepted;
        // Per-item, not post-loop: under kBlock the consumer drains mid-batch,
        // so a single sample after the loop can understate the true max depth.
        if (items_.size() > stats_.high_water) stats_.high_water = items_.size();
      }
    }
    items.clear();
    if (accepted) not_empty_.notify_one();
    return accepted;
  }

  /// Blocks until items are available or the queue is closed; moves the
  /// entire backlog into `out` (appended). With wait tracking enabled and
  /// `waits_out` given, appends each popped item's queue-wait in seconds
  /// (same order as `out`). Returns false when closed and fully drained —
  /// the consumer's exit signal.
  bool pop_wait(std::vector<T>& out, std::vector<double>* waits_out = nullptr) {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;  // closed and drained
    stats_.popped += items_.size();
    out.reserve(out.size() + items_.size());
    for (auto& item : items_) out.push_back(std::move(item));
    items_.clear();
    if (track_waits_) {
      if (waits_out) {
        auto now = Clock::now();
        waits_out->reserve(waits_out->size() + push_times_.size());
        for (auto t : push_times_) {
          waits_out->push_back(std::chrono::duration<double>(now - t).count());
        }
      }
      push_times_.clear();
    }
    lock.unlock();
    // Every blocked producer may now make progress (capacity fully freed).
    not_full_.notify_all();
    return true;
  }

  /// Closes the queue: subsequent (and currently blocked) pushes fail and
  /// are counted as shed_on_close; queued items stay poppable.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }
  FullPolicy policy() const { return policy_; }

  Stats stats() const {
    std::lock_guard lock(mu_);
    return stats_;
  }

 private:
  /// Waits (kBlock) or fails (kShed) until a slot is free. Caller holds mu_.
  bool wait_for_space(std::unique_lock<std::mutex>& lock) {
    if (closed_) {
      ++stats_.shed_on_close;
      return false;
    }
    if (items_.size() >= capacity_) {
      if (policy_ == FullPolicy::kShed) {
        ++stats_.shed;
        return false;
      }
      // About to block with items queued: make sure the consumer has a wakeup
      // pending. push_batch() only notifies after its loop, so a batch that
      // fills the queue would otherwise park the producer on not_full_ while
      // the consumer stays parked on not_empty_ — mutual deadlock.
      if (!items_.empty()) not_empty_.notify_one();
      not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
      if (closed_) {
        ++stats_.shed_on_close;
        return false;
      }
    }
    return true;
  }

  using Clock = std::chrono::steady_clock;

  const std::size_t capacity_;
  const FullPolicy policy_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  /// Parallel to items_ when track_waits_; one push stamp per queued item.
  std::deque<Clock::time_point> push_times_;
  bool track_waits_ = false;
  bool closed_ = false;
  Stats stats_;
};

}  // namespace fiat::fleet
