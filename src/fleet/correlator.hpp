// Fleet correlation observatory (DESIGN.md §14): detects campaign-level
// actors no single home can see, from behavioral signals alone.
//
// Input is a telemetry::SignalSet — per-home fingerprints derived from
// durable proxy state (fleet/signal_probe.hpp). Three detectors:
//
//   shared-signature  the same costume signature shows up in the escalation
//                     sketches of >= M homes: one sniffed device signature
//                     replayed across the fleet (bucket mimicry at scale);
//   proof-flood       >= M homes each rejected >= R proofs from the same
//                     source: a proof-replay flood reusing captured payloads;
//   sybil-cohort      >= C homes that block manual traffic, never had a
//                     proof accepted, and show near-identical traffic shape:
//                     fabricated homes padding fleet accounting.
//
// The correlator is deterministic (sorted inputs, fixed iteration order) and
// NEVER reads attack ground truth: its .cpp defines FIAT_CORRELATOR_TU, which
// turns any include of core/attack_label.hpp into a compile error. Labels
// grade the detector (bench_attack_eval part 3); they must not feed it.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/signals.hpp"
#include "util/json.hpp"

namespace fiat::fleet {

enum class FlagReason : std::uint8_t {
  kSharedSignatureReplay = 0,
  kProofReplayFlood = 1,
  kSybilCohort = 2,
};
inline constexpr std::size_t kFlagReasonCount = 3;

const char* flag_reason_name(FlagReason r);

struct CorrelatorConfig {
  /// M: minimum homes sharing a signature / flood source before flagging.
  std::size_t min_actor_homes = 3;
  /// A sketch entry participates once its per-home count reaches this.
  /// Benign escalations replay universal signatures (ACK / DNS sizes) a
  /// couple of times; a mimicry campaign replays each sniffed bucket twice
  /// per attempt, so >= 4 means >= 2 escalated attempts — empirically a
  /// clean margin over the benign ceiling.
  std::uint64_t min_shared_sig_count = 4;
  /// R: per-home rejected proofs from one source before it reads as a flood.
  std::uint64_t min_replays = 3;
  /// Max shape distance (telemetry::shape_distance) to a cohort's seed.
  double shape_epsilon = 0.25;
  /// C: minimum Sybil-cohort size before its members are flagged.
  std::size_t min_cohort = 3;
};

/// One (home, reason) flag. `evidence` is the shared signature, the flood
/// source, or the cohort seed home — whatever ties this home to its peers.
struct FlaggedActor {
  std::uint32_t home = 0;
  FlagReason reason = FlagReason::kSharedSignatureReplay;
  std::uint64_t evidence = 0;
  std::string detail;
};

struct CorrelationReport {
  std::size_t homes_observed = 0;
  /// Sorted by (home, reason, evidence); one entry per (home, reason).
  std::vector<FlaggedActor> actors;
  std::array<std::size_t, kFlagReasonCount> flagged_by_reason{};
  // Fleet-health rollups.
  std::size_t shared_signatures = 0;  // distinct signatures seen at >= M homes
  std::size_t flood_sources = 0;      // distinct sources flooding >= M homes
  std::size_t cohorts = 0;            // Sybil cohorts of size >= C

  /// Distinct flagged home ids, sorted.
  std::vector<std::uint32_t> flagged_home_ids() const;
  std::size_t flagged_homes() const { return flagged_home_ids().size(); }
  bool flagged(std::uint32_t home) const;
  bool empty() const { return actors.empty(); }

  /// Human-readable summary (CLI).
  std::string render() const;
  /// Deterministic JSON (64-bit evidence rendered as hex strings — they must
  /// not round-trip through doubles).
  util::Json to_json() const;
  /// Folds the rollups into a registry as Domain::kSim counters, so the
  /// existing Prometheus/JSON exporters carry them with no new plumbing.
  void rollups_into(telemetry::MetricsRegistry& m) const;
};

/// Runs all three detectors over the merged fingerprints. Pure function of
/// (signals, config): byte-identical output for byte-identical input.
CorrelationReport correlate(const telemetry::SignalSet& signals,
                            const CorrelatorConfig& config = {});

}  // namespace fiat::fleet
