#include "fleet/shard.hpp"

#include <algorithm>
#include <chrono>

#include "fleet/signal_probe.hpp"
#include "fleet/supervisor.hpp"
#include "util/error.hpp"

namespace fiat::fleet {

Shard::Shard(std::vector<Home> homes, std::size_t queue_capacity, FullPolicy policy,
             std::size_t trace_capacity, ShardSupervisor* supervisor)
    : homes_(std::move(homes)),
      queue_(queue_capacity, policy),
      sink_(trace_capacity),
      supervisor_(supervisor) {
  home_ids_.reserve(homes_.size());
  for (const Home& home : homes_) home_ids_.push_back(home.id());
  if (!std::is_sorted(home_ids_.begin(), home_ids_.end())) {
    throw LogicError("Shard: homes must be sorted by id");
  }
  // The sink is worker-owned once start() runs; wiring happens here, before
  // the thread exists. Queue wait and batch size measure the host, not the
  // simulation — Domain::kWall keeps them out of deterministic exports.
  queue_.enable_wait_tracking();
  tm_queue_wait_ = &sink_.metrics.histogram("fleet.queue_wait_seconds",
                                            telemetry::Domain::kWall);
  tm_batch_items_ =
      &sink_.metrics.histogram("fleet.batch_items", telemetry::Domain::kWall);
  for (Home& home : homes_) home.proxy().set_telemetry(&sink_, home.id());
  if (supervisor_) supervisor_->attach(&sink_);
}

Shard::~Shard() {
  if (worker_.joinable()) {
    queue_.close();
    discard_.store(true, std::memory_order_relaxed);
    worker_.join();
  }
}

Home* Shard::find_home(HomeId id) {
  auto it = std::lower_bound(home_ids_.begin(), home_ids_.end(), id);
  if (it == home_ids_.end() || *it != id) return nullptr;
  return &homes_[static_cast<std::size_t>(it - home_ids_.begin())];
}

void Shard::start() {
  if (started_) throw LogicError("Shard: started twice");
  started_ = true;
  worker_ = std::thread([this] { run(); });
}

void Shard::stop(bool drain) {
  if (!drain) discard_.store(true, std::memory_order_relaxed);
  queue_.close();
  if (worker_.joinable()) worker_.join();
  stopped_ = true;
}

void Shard::adopt_homes(std::vector<Home> homes) {
  if (homes.size() != home_ids_.size()) {
    throw LogicError("Shard: adopt_homes home-count mismatch");
  }
  for (std::size_t i = 0; i < homes.size(); ++i) {
    if (homes[i].id() != home_ids_[i]) {
      throw LogicError("Shard: adopt_homes home-id mismatch");
    }
  }
  homes_ = std::move(homes);
  for (Home& home : homes_) home.proxy().set_telemetry(&sink_, home.id());
}

void Shard::require_quiescent(const char* op) const {
  if (started_ && !stopped_) {
    throw LogicError(std::string("Shard: ") + op +
                     " while the worker is running reads torn state; stop() "
                     "the shard first");
  }
}

void Shard::process(const FleetItem& item) {
  Home* home = find_home(item.home);
  if (!home) return;  // router bug or stale id; dropping beats crashing a shard
  switch (item.kind) {
    case FleetItem::Kind::kPacket:
      home->proxy().process(item.pkt, item.attack);
      ++packets_;
      break;
    case FleetItem::Kind::kProof:
      home->proxy().on_auth_payload(item.client_id, item.payload, item.ts,
                                    item.attack);
      ++proofs_;
      break;
    case FleetItem::Kind::kLifecycle:
      home->proxy().on_lifecycle(item.client_id, item.lifecycle_cmd, item.ts);
      ++lifecycle_ops_;
      break;
  }
}

void Shard::process_batch(std::span<const FleetItem> items) {
  // Group per home. Grow-only slot reuse keeps the index vectors' capacity.
  std::size_t groups_used = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    HomeGroup* group = nullptr;
    for (std::size_t g = 0; g < groups_used; ++g) {
      if (batch_groups_[g].home == items[i].home) {
        group = &batch_groups_[g];
        break;
      }
    }
    if (!group) {
      if (groups_used == batch_groups_.size()) batch_groups_.emplace_back();
      group = &batch_groups_[groups_used++];
      group->home = items[i].home;
      group->idx.clear();
    }
    group->idx.push_back(static_cast<std::uint32_t>(i));
  }
  for (std::size_t g = 0; g < groups_used; ++g) {
    const HomeGroup& group = batch_groups_[g];
    Home* home = find_home(group.home);
    if (!home) continue;  // same drop-don't-crash rule as process()
    core::FiatProxy& proxy = home->proxy();
    batch_pkts_.clear();
    batch_labels_.clear();
    auto flush = [&] {
      if (batch_pkts_.empty()) return;
      proxy.process_batch(batch_pkts_, batch_labels_);
      batch_pkts_.clear();
      batch_labels_.clear();
    };
    for (std::uint32_t i : group.idx) {
      const FleetItem& item = items[i];
      if (item.kind == FleetItem::Kind::kPacket) {
        batch_pkts_.push_back(item.pkt);
        batch_labels_.push_back(item.attack);
        ++packets_;
      } else if (item.kind == FleetItem::Kind::kProof) {
        // Proofs interact with every open event, so they fence packet runs.
        flush();
        proxy.on_auth_payload(item.client_id, item.payload, item.ts,
                              item.attack);
        ++proofs_;
      } else {
        // Lifecycle commands change which keys verify, so they fence too.
        flush();
        proxy.on_lifecycle(item.client_id, item.lifecycle_cmd, item.ts);
        ++lifecycle_ops_;
      }
    }
    flush();
  }
}

void Shard::run() {
  std::vector<FleetItem> batch;
  std::vector<double> waits;
  // The batch fast path only engages when no supervised fault can fire
  // inside a batch; an active fault plan needs the per-item crash/retry
  // bracket (the supervisor still segments around snapshot points).
  const bool batched =
      batch_enabled_ && (!supervisor_ || !supervisor_->fault_active());
  while (queue_.pop_wait(batch, &waits)) {
    auto t0 = std::chrono::steady_clock::now();
    tm_batch_items_->record(static_cast<double>(batch.size()));
    for (double wait : waits) tm_queue_wait_->record(wait);
    if (batched && !discard_.load(std::memory_order_relaxed)) {
      if (supervisor_) {
        supervisor_->process_batch(*this, batch);
      } else {
        process_batch(batch);
      }
    } else {
      for (const FleetItem& item : batch) {
        if (discard_.load(std::memory_order_relaxed)) {
          ++discarded_;
          continue;
        }
        if (supervisor_) {
          supervisor_->process(*this, item);
        } else {
          process(item);
        }
      }
    }
    busy_seconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    batch.clear();
    waits.clear();
  }
}

ShardStats Shard::stats() const {
  require_quiescent("stats()");
  ShardStats s;
  s.homes = homes_.size();
  s.packets = packets_;
  s.proofs = proofs_;
  s.discarded = discarded_;
  s.busy_seconds = busy_seconds_;
  if (supervisor_) {
    s.restarts = supervisor_->restarts();
    s.quarantined = supervisor_->quarantined_count();
  }
  auto q = queue_.stats();
  s.queue_pushed = q.pushed;
  s.queue_high_water = q.high_water;
  s.queue_shed = q.shed;
  s.queue_shed_on_close = q.shed_on_close;
  core::AttackLedger ledger = attack_ledger();
  s.attack_injected = ledger.injected() + ledger.proofs_injected();
  s.attack_blocked = ledger.commands_blocked();
  s.attack_completed = ledger.commands_completed();
  for (const Home& home : homes_) {
    const crypto::CredentialRegistry& creds = home.proxy().credentials();
    s.enrolled += creds.enrollments_completed();
    s.rotated += creds.rotations_completed();
    s.revoked += creds.revocations_applied();
  }
  return s;
}

std::size_t Shard::lifecycle_rejected_proofs() const {
  require_quiescent("lifecycle_rejected_proofs()");
  std::size_t n = 0;
  for (const Home& home : homes_) n += home.proxy().proofs_rejected_lifecycle();
  return n;
}

core::AttackLedger Shard::attack_ledger() const {
  require_quiescent("attack_ledger()");
  core::AttackLedger ledger;
  for (const Home& home : homes_) ledger.merge(home.proxy().attack_ledger());
  return ledger;
}

telemetry::SignalSet Shard::signals() {
  require_quiescent("signals()");
  telemetry::SignalSet out;
  for (Home& home : homes_) {
    home.proxy().flush_events();  // idempotent alongside report()'s flush
    out.add(derive_home_signals(home.id(), home.proxy()));
  }
  return out;
}

}  // namespace fiat::fleet
