// Flag parsing + validation for the `fiat fleet` and `fiat cluster`
// subcommands, factored out of tools/fiat_cli.cpp so the argv -> config
// translation is testable through the same util::Flags path the binary uses.
//
// Contract: invalid input throws fiat::Error with a user-facing message
// naming the flag and the constraint ("cluster: --snapshot-every must be a
// positive sim-second interval"); the CLI's catch-all prints it and exits
// non-zero. Validation happens here, at the boundary — the engines keep
// their LogicError checks as invariants, not as a UX layer.
#pragma once

#include <cstddef>

#include "fleet/cluster.hpp"
#include "fleet/engine.hpp"
#include "fleet/fleet_testbed.hpp"
#include "util/flags.hpp"

namespace fiat::fleet {

/// Workload knobs shared by `fleet` and `cluster` (--homes, --devices,
/// --days, --seed, --no-proofs, --zipf-skew, --zipf-max-devices).
FleetScenarioConfig parse_scenario_flags(const util::Flags& flags);

/// `fiat fleet` engine + recovery knobs. `homes` bounds --crash-home.
FleetConfig parse_fleet_flags(const util::Flags& flags, std::size_t homes);

/// `fiat cluster` control-plane knobs (--nodes, --kill-node/--kill-at/
/// --detect-after, --rebalance-every, --retention, --no-journal,
/// --cold-failover, ...).
ClusterConfig parse_cluster_flags(const util::Flags& flags);

}  // namespace fiat::fleet
