// Flag parsing + validation for the `fiat fleet` and `fiat cluster`
// subcommands, factored out of tools/fiat_cli.cpp so the argv -> config
// translation is testable through the same util::Flags path the binary uses.
//
// Contract: invalid input throws fiat::Error with a user-facing message
// naming the flag and the constraint ("cluster: --snapshot-every must be a
// positive sim-second interval"); the CLI's catch-all prints it and exits
// non-zero. Validation happens here, at the boundary — the engines keep
// their LogicError checks as invariants, not as a UX layer.
#pragma once

#include <cstddef>
#include <string>

#include "fleet/cluster.hpp"
#include "fleet/correlator.hpp"
#include "fleet/engine.hpp"
#include "fleet/fleet_testbed.hpp"
#include "util/flags.hpp"

namespace fiat::fleet {

/// Workload knobs shared by `fleet` and `cluster` (--homes, --devices,
/// --days, --seed, --no-proofs, --zipf-skew, --zipf-max-devices).
FleetScenarioConfig parse_scenario_flags(const util::Flags& flags);

/// `fiat fleet` engine + recovery knobs. `homes` bounds --crash-home.
FleetConfig parse_fleet_flags(const util::Flags& flags, std::size_t homes);

/// `fiat cluster` control-plane knobs (--nodes, --kill-node/--kill-at/
/// --detect-after, --rebalance-every, --retention, --no-journal,
/// --cold-failover, ...).
ClusterConfig parse_cluster_flags(const util::Flags& flags);

/// Correlation knobs shared by `fleet` and `cluster` (--correlate,
/// --correlation-json, --correlate-min-homes, --correlate-min-replays,
/// --correlate-epsilon, --correlate-min-cohort).
struct CorrelateOptions {
  bool enabled = false;
  /// Non-empty: write CorrelationReport::to_json() here after the run.
  std::string json_path;
  CorrelatorConfig config;
};

/// `cmd` names the subcommand in error messages ("fleet" / "cluster").
CorrelateOptions parse_correlate_flags(const util::Flags& flags,
                                       const char* cmd);

/// Credential-lifecycle churn knobs shared by `fleet` and `cluster`
/// (--churn-join, --churn-rotate-every, --churn-revoke, --churn-revoke-at,
/// --churn-window). Any of the first three arms churn; the last two tune the
/// revocation schedule and are rejected without --churn-revoke, mirroring
/// the --correlate tuning-flag contract. `cmd` names the subcommand in error
/// messages.
FleetScenarioConfig::ChurnConfig parse_churn_flags(const util::Flags& flags,
                                                   const char* cmd);

}  // namespace fiat::fleet
