// PION-style onboarding over the QuicLite transport, plus the fleet-wide
// revocation ledger (DESIGN.md §16).
//
// Roles, mirroring the PION spec the ROADMAP names:
//   * EnrollmentAuthenticator — home-side. Sits behind a QuicServer keyed by
//     the out-of-band setup code (the QR-code secret doubles as the QUIC
//     PSK for the enrollment session) and translates EHLO/EPRF datagrams
//     into crypto::LifecycleCommands for the home's proxy.
//   * EnrollmentSession — phone-side temporary identity. Connects, announces
//     itself (EHLO temp_id), derives the challenge locally from the setup
//     code (both sides derive it — no server->client data channel needed),
//     answers with the proof (EPRF), and on the final ack derives the same
//     credential key the proxy issued. Every step retries with capped
//     exponential backoff, so loss bursts and blackouts delay enrollment
//     instead of wedging it.
//   * RevocationLedger — append-only fleet-wide record of revocations,
//     written at the single-producer ingest points (FleetEngine /
//     ClusterEngine) and re-applied after journal replay on restore, so a
//     revocation is never forgotten even when the journal lost items.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "crypto/lifecycle.hpp"
#include "fleet/home.hpp"
#include "transport/quic_lite.hpp"

namespace fiat::fleet {

/// Fleet-wide, append-only revocation record. Thread-safe: the engine's
/// ingest front-end records while shard workers run; restores read after the
/// workers quiesce. Keeps the EARLIEST effective time per (home, client) —
/// re-recording is idempotent, so replays and restores cannot move a
/// revocation later.
class RevocationLedger {
 public:
  struct Entry {
    std::string client_id;
    double effective_ts = 0.0;
  };

  void record(HomeId home, const std::string& client_id, double effective_ts);
  /// All revocations for `home`, sorted by client id.
  std::vector<Entry> for_home(HomeId home) const;
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::pair<HomeId, std::string>, double> revocations_;
};

/// Home-side enrollment endpoint: QuicServer (keyed by setup codes) whose
/// application messages are parsed into lifecycle commands and handed to
/// `on_command` — typically FiatProxy::on_lifecycle for a standalone home,
/// or FleetEngine::ingest of a Kind::kLifecycle item in fleet runs.
class EnrollmentAuthenticator {
 public:
  using SetupCodeFn = std::function<std::optional<std::vector<std::uint8_t>>(
      const std::string& client_id)>;
  using CommandFn = std::function<void(const std::string& client_id,
                                       const crypto::LifecycleCommand& cmd,
                                       double now)>;

  EnrollmentAuthenticator(transport::Network& network,
                          transport::EndpointId id, SetupCodeFn setup_code_of,
                          std::span<const std::uint8_t> ticket_key_entropy,
                          CommandFn on_command);

  std::size_t commands_delivered() const { return commands_; }
  std::size_t malformed_datagrams() const { return malformed_; }
  const transport::QuicServer& server() const { return server_; }

  // ---- wire format (application payloads inside QuicLite) -----------------
  static util::Bytes encode_hello(const std::string& temp_id);
  static util::Bytes encode_proof(std::span<const std::uint8_t> proof);
  /// nullopt on malformed payloads (never throws: hostile bytes threat model).
  static std::optional<crypto::LifecycleCommand> parse_payload(
      std::span<const std::uint8_t> payload);

 private:
  transport::QuicServer server_;
  CommandFn on_command_;
  std::size_t commands_ = 0;
  std::size_t malformed_ = 0;
};

/// Phone-side enrollment state machine. Construct once, call start(); the
/// object must stay at a stable address until done (callbacks capture this).
class EnrollmentSession {
 public:
  struct Config {
    transport::QuicRetryConfig retry;  // per-datagram QUIC retry policy
    double retry_backoff = 2.0;        // session-level backoff after a failure
    double retry_backoff_max = 60.0;
    /// Session-level attempts before giving up; 0 = retry forever (the
    /// default: an unplugged-router blackout must delay enrollment, not
    /// cancel it).
    std::size_t max_attempts = 0;
  };

  /// Called once enrollment completes: `credential_key` is the phone's copy
  /// of the issued generation-0 credential (derived, never transmitted).
  using DoneFn = std::function<void(double done_time,
                                    std::span<const std::uint8_t> credential_key)>;
  using GaveUpFn = std::function<void()>;

  EnrollmentSession(transport::Network& network, transport::EndpointId id,
                    transport::EndpointId authenticator, std::string client_id,
                    std::string temp_id,
                    std::span<const std::uint8_t> setup_code, sim::Rng& rng,
                    Config config);
  /// Default-config convenience overload (out-of-line: Config's member
  /// initializers need the complete type).
  EnrollmentSession(transport::Network& network, transport::EndpointId id,
                    transport::EndpointId authenticator, std::string client_id,
                    std::string temp_id,
                    std::span<const std::uint8_t> setup_code, sim::Rng& rng);

  void start(DoneFn on_done, GaveUpFn on_gave_up = nullptr);

  bool enrolled() const { return enrolled_; }
  bool gave_up() const { return gave_up_; }
  std::size_t attempts() const { return attempts_; }
  /// Valid once enrolled(): the derived generation-0 credential key.
  std::span<const std::uint8_t> credential_key() const {
    return credential_key_;
  }

 private:
  void attempt();
  void send_hello();
  void send_proof();
  void schedule_retry();

  transport::Network& network_;
  std::string client_id_;
  std::string temp_id_;
  std::vector<std::uint8_t> setup_code_;
  transport::QuicClient client_;
  Config config_;
  DoneFn on_done_;
  GaveUpFn on_gave_up_;
  bool started_ = false;
  bool hello_acked_ = false;
  bool enrolled_ = false;
  bool gave_up_ = false;
  std::size_t attempts_ = 0;
  double backoff_ = 0.0;
  std::vector<std::uint8_t> credential_key_;
};

}  // namespace fiat::fleet
