#include "fleet/signal_probe.hpp"

#include <algorithm>

namespace fiat::fleet {

telemetry::HomeSignals derive_home_signals(HomeId id,
                                           const core::FiatProxy& proxy,
                                           std::size_t top_k) {
  using core::Disposition;
  telemetry::HomeSignals out;
  out.home = id;

  core::ProxyCounters c = proxy.counters();
  auto by = [&](Disposition d) {
    return static_cast<std::uint64_t>(
        c.by_disposition[static_cast<std::size_t>(d)]);
  };
  out.packets_allowed = c.packets_allowed;
  out.packets_dropped = c.packets_dropped;
  out.events_closed = c.events_closed;
  out.manual_blocked = by(Disposition::kManualUnvalidated);
  out.proofs_accepted = c.proofs_accepted;
  out.proofs_rejected = c.proofs_rejected_signature + c.proofs_duplicate;
  out.mimicry_escalations = proxy.mimicry_escalations();
  out.notification_escalations = proxy.notification_escalations();
  out.alerts = c.alerts;

  // Escalation sketch: top-K by count, re-sorted by signature (canonical).
  std::vector<telemetry::SignatureCount> counts;
  counts.reserve(proxy.escalation_signatures().size());
  for (const auto& [sig, n] : proxy.escalation_signatures()) {
    counts.push_back({sig, n});
  }
  out.signature_sketch = telemetry::top_k_sketch(counts, top_k);

  // Proof sources: union of the accepted high-water map and the rejection
  // map (a flood source may never have a proof accepted).
  const auto& high = proxy.proof_seq_high_water();
  const auto& rej = proxy.proof_rejections();
  for (const auto& [client, seq] : high) {
    telemetry::ProofSource src;
    src.source = telemetry::source_signature(client);
    src.high_water = seq;
    auto it = rej.find(client);
    src.rejected = it == rej.end() ? 0 : it->second;
    out.proof_sources.push_back(src);
  }
  for (const auto& [client, n] : rej) {
    if (high.contains(client)) continue;  // already merged above
    telemetry::ProofSource src;
    src.source = telemetry::source_signature(client);
    src.rejected = n;
    out.proof_sources.push_back(src);
  }
  std::sort(out.proof_sources.begin(), out.proof_sources.end(),
            [](const telemetry::ProofSource& a, const telemetry::ProofSource& b) {
              return a.source < b.source;
            });

  // Traffic shape: decision-mix fractions over all verdicts.
  double total =
      static_cast<double>(c.packets_allowed + c.packets_dropped);
  if (total > 0.0) {
    auto frac = [&](Disposition d) {
      return static_cast<double>(by(d)) / total;
    };
    out.shape[telemetry::kShapeRuleHit] = frac(Disposition::kRuleHit);
    out.shape[telemetry::kShapeBootstrap] = frac(Disposition::kBootstrap);
    out.shape[telemetry::kShapeEventPrefix] = frac(Disposition::kEventPrefix);
    out.shape[telemetry::kShapeNonManual] = frac(Disposition::kNonManual);
    out.shape[telemetry::kShapeManualUnvalidated] =
        frac(Disposition::kManualUnvalidated);
    out.shape[telemetry::kShapeLockout] = frac(Disposition::kLockout);
    out.shape[telemetry::kShapeDropRate] =
        static_cast<double>(c.packets_dropped) / total;
    out.shape[telemetry::kShapeEventRate] =
        static_cast<double>(c.events_closed) / total;
  }
  return out;
}

}  // namespace fiat::fleet
