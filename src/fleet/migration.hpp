// Durable stores + handoff machinery for the cluster tier (DESIGN.md §12).
//
// Three pieces sit between a dying (or donating) node and the node that
// inherits its homes:
//
//  * JournalStore — per-home tails of successfully processed items, living
//    OUTSIDE any node. PR 5's in-worker journals die with their shard; these
//    survive node death, which is what turns a whole-node kill into a warm
//    failover instead of a cold re-bootstrap. A home's ordinals are global
//    (they continue across migrations), so snapshot.ordinal + tail_after()
//    always line up no matter how many nodes the home has visited.
//
//  * Handoff — the cut barrier of a live migration. The controller flips
//    routing the instant it decides to migrate; the source node completes
//    the cut (ordinal watermark) when it reaches the cut message in its FIFO
//    queue, and the destination blocks in wait() until then before it
//    restores. FIFO queues guarantee the destination's install precedes any
//    post-flip item, so no item ever lands on a node that does not yet host
//    its home. abandon() exists solely for the abort path: a discarded cut
//    must never leave the destination parked in wait() forever.
//
//  * restore_home() — one restore routine for installs (migration) and
//    re-placements (failover): walk snapshot generations newest-first until
//    one decodes cleanly, replay the journal tail, size the hole that
//    remains, and under fail-closed force bootstrap elapsed only when items
//    were genuinely lost — the exact semantics of the PR 5 supervisor's
//    restart path (fleet/supervisor.cpp), shared here via apply_item().
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/humanness.hpp"
#include "fleet/enrollment.hpp"
#include "fleet/home.hpp"
#include "fleet/item.hpp"
#include "fleet/snapshot_store.hpp"

namespace fiat::fleet {

/// Applies one item to a home's proxy without touching any runtime counters
/// (replay must not re-count). Shared by the supervisor's restart replay and
/// the cluster tier's restore paths.
void apply_item(Home& home, const FleetItem& item);

/// Node-death-surviving journal: per-home ascending (ordinal, item) tails,
/// appended after an item processes successfully and truncated when a
/// snapshot covers it. Mutex-protected: writers are node workers, readers
/// are whichever node restores the home next.
class JournalStore {
 public:
  using Entry = std::pair<std::uint64_t, FleetItem>;

  void append(HomeId home, std::uint64_t ordinal, const FleetItem& item);
  /// Entries with ordinal > `after`, ascending.
  std::vector<Entry> tail_after(HomeId home, std::uint64_t after) const;
  /// Drops entries with ordinal <= `upto` (a snapshot now covers them).
  void truncate_upto(HomeId home, std::uint64_t upto);

  std::size_t entries(HomeId home) const;
  std::size_t total_entries() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<HomeId, std::deque<Entry>> tails_;
};

/// One migration's cut barrier (see file comment). Created by the controller
/// at routing-flip time; completed by the source, awaited by the
/// destination. The wall clock starts at construction so the destination can
/// report end-to-end handoff latency (flip -> home live again).
class Handoff {
 public:
  struct Cut {
    bool ok = false;  // false = abandoned (abort path): skip the install
    std::uint64_t ordinal = 0;  // items of the home processed at the cut
    double sim_ts = 0.0;        // sim time of the routing flip
  };

  Handoff() : created_(std::chrono::steady_clock::now()) {}

  /// Source side: publishes the cut watermark. First writer wins; a
  /// complete() after abandon() is a no-op.
  void complete(std::uint64_t ordinal, double sim_ts);
  /// Abort side: wakes the destination with ok=false.
  void abandon();
  /// Destination side: blocks until complete() or abandon().
  Cut wait();

  /// Wall seconds since the routing flip (the handoff-latency sample).
  double age_seconds() const;

 private:
  std::chrono::steady_clock::time_point created_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  Cut cut_;
};

struct RestoreOptions {
  /// Off = the cold re-placement baseline (rebuild from spec, lose history).
  bool use_snapshots = true;
  bool use_journal = true;
  /// Items of this home known processed before the restore (the controller's
  /// routed count at failover; the cut ordinal at migration). Anything the
  /// snapshot + journal cannot reach is lost.
  std::uint64_t expected_ordinal = 0;
  /// Sim time of the restore (bootstrap-forcing anchor).
  double now = 0.0;
  /// When set, every revocation recorded for this home is re-applied after
  /// the journal replay (idempotent kRevoke commands). This is the
  /// "revocation is never forgotten" guarantee: even when the snapshot
  /// predates a revocation AND the journal lost the revoke item, the ledger
  /// restores it.
  const RevocationLedger* revocations = nullptr;
};

struct RestoreOutcome {
  bool warm = false;                 // some snapshot generation decoded
  std::uint64_t resume_ordinal = 0;  // items reflected in the restored state
  std::uint64_t lost_items = 0;      // expected - reach, plus journal holes
  std::size_t generations_tried = 0;  // snapshot decode attempts
  bool forced_bootstrap = false;
};

/// Rebuilds `home` (already freshly constructed from `spec`) from the
/// durable stores: newest snapshot generation that decodes cleanly, then the
/// journal tail beyond it. Mirrors ShardSupervisor::restart_shard — lossy
/// restores under fail-closed start strict (force_bootstrap_elapsed) so a
/// restore never re-opens the insecure learning window, while a fully
/// covered restore stays byte-identical to the uninterrupted run.
RestoreOutcome restore_home(Home& home, const HomeSpec& spec,
                            const core::HumannessVerifier& humanness,
                            const SnapshotStore& snapshots,
                            const JournalStore& journal,
                            const RestoreOptions& opts);

}  // namespace fiat::fleet
