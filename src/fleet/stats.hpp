// FleetStats: the counter layer of the fleet runtime.
//
// Per-shard counters are owned by the shard worker thread and snapshotted
// only after the worker joined, so none of them need atomics; queue counters
// are taken under the queue mutex. The snapshot is embedded in FleetReport
// and printed by the CLI / benches.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fiat::fleet {

struct ShardStats {
  std::size_t homes = 0;
  std::size_t packets = 0;        // packets processed
  std::size_t proofs = 0;         // auth datagrams processed
  std::size_t discarded = 0;      // popped but skipped by an abort (no-drain stop)
  std::size_t restarts = 0;       // supervisor shard restarts (crash recoveries)
  std::size_t quarantined = 0;    // poison items quarantined by the supervisor
  std::size_t migrations_in = 0;  // homes installed by live migration (cluster)
  std::size_t migrations_out = 0;  // homes donated by live migration (cluster)
  // Campaign grading (core::AttackLedger aggregated over this shard's homes).
  std::size_t attack_injected = 0;   // labeled attack packets+proofs graded
  std::size_t attack_blocked = 0;    // attack commands with payload dropped
  std::size_t attack_completed = 0;  // attack commands fully delivered
  std::size_t flagged = 0;        // homes flagged by the fleet correlator
  // Credential lifecycle (CredentialRegistry aggregated over this shard's
  // homes).
  std::size_t enrolled = 0;       // enrollments completed
  std::size_t rotated = 0;        // rotations completed
  std::size_t revoked = 0;        // clients revoked
  double busy_seconds = 0.0;      // wall time spent inside proxy calls
  // Queue view (from BoundedQueue::Stats).
  std::size_t queue_pushed = 0;
  std::size_t queue_high_water = 0;
  std::size_t queue_shed = 0;
  std::size_t queue_shed_on_close = 0;
};

struct FleetStats {
  std::size_t homes = 0;
  std::size_t packets_in = 0;     // offered to ingest (accepted + shed)
  std::size_t proofs_in = 0;
  std::size_t packets_out = 0;    // processed by shard workers
  std::size_t proofs_out = 0;
  std::size_t shed = 0;           // rejected by full queues (kShed)
  std::size_t shed_on_close = 0;  // rejected because the engine was stopping
  std::size_t discarded = 0;      // accepted but dropped by an abort
  std::size_t restarts = 0;       // supervisor shard restarts, fleet-wide
  std::size_t quarantined = 0;    // quarantined poison items, fleet-wide
  std::size_t migrations = 0;     // live migrations the cluster controller ran
  std::size_t node_failovers = 0;  // whole-node failovers (node restarts)
  std::size_t attack_injected = 0;   // fleet-wide labeled attack items graded
  std::size_t attack_blocked = 0;    // fleet-wide attack commands blocked
  std::size_t attack_completed = 0;  // fleet-wide attack commands completed
  // Correlation annotations (FleetEngine/ClusterEngine::annotate_stats).
  std::size_t flagged_homes = 0;     // distinct homes the correlator flagged
  std::size_t correlation_shared_signatures = 0;
  std::size_t correlation_flood_sources = 0;
  std::size_t correlation_cohorts = 0;
  // Credential lifecycle, fleet-wide (sums of the per-shard columns plus the
  // lifecycle commands workers processed and proofs lifecycle-rejected).
  std::size_t lifecycle_enrolled = 0;
  std::size_t lifecycle_rotated = 0;
  std::size_t lifecycle_revoked = 0;
  std::size_t lifecycle_rejected_proofs = 0;
  double handoff_p95_seconds = 0.0;  // p95 migration handoff latency (wall)
  double wall_seconds = 0.0;      // start() .. stop() wall time
  /// First column of render(): "shard" for FleetEngine, "node" for the
  /// cluster tier.
  std::string row_label = "shard";
  std::vector<ShardStats> shards;

  /// Aggregate packets+proofs processed per wall second.
  double throughput() const;
  /// busy_seconds / wall_seconds of one shard, in [0, 1]-ish.
  double utilization(std::size_t shard) const;

  /// Human-readable table (one row per shard + a totals line).
  std::string render() const;
};

}  // namespace fiat::fleet
