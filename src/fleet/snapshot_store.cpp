#include "fleet/snapshot_store.hpp"

#include <utility>

namespace fiat::fleet {

SnapshotStore::SnapshotStore(std::size_t retention)
    : retention_(retention == 0 ? 1 : retention) {}

void SnapshotStore::set_retention(std::size_t retention) {
  std::lock_guard<std::mutex> lock(mu_);
  retention_ = retention == 0 ? 1 : retention;
  for (auto& [home, gens] : generations_) {
    while (gens.size() > retention_) gens.pop_back();
  }
}

std::uint64_t SnapshotStore::put(HomeId home, std::uint64_t ordinal,
                                 double sim_ts, util::Bytes blob) {
  // The record is assembled outside the map slot and moved in whole, so a
  // concurrent latest() (which copies under the same mutex) can never observe
  // a half-written generation.
  Record next;
  next.home = home;
  next.ordinal = ordinal;
  next.sim_ts = sim_ts;
  next.blob = std::move(blob);
  std::lock_guard<std::mutex> lock(mu_);
  std::deque<Record>& gens = generations_[home];
  next.generation = gens.empty() ? 1 : gens.front().generation + 1;
  gens.push_front(std::move(next));
  while (gens.size() > retention_) gens.pop_back();
  ++puts_;
  return gens.front().generation;
}

std::optional<SnapshotStore::Record> SnapshotStore::latest(HomeId home) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = generations_.find(home);
  if (it == generations_.end() || it->second.empty()) return std::nullopt;
  return it->second.front();
}

std::vector<SnapshotStore::Record> SnapshotStore::history(HomeId home) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = generations_.find(home);
  if (it == generations_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::size_t SnapshotStore::home_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generations_.size();
}

std::size_t SnapshotStore::puts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return puts_;
}

std::size_t SnapshotStore::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [home, gens] : generations_) {
    for (const Record& rec : gens) n += rec.blob.size();
  }
  return n;
}

}  // namespace fiat::fleet
