#include "fleet/snapshot_store.hpp"

#include <utility>

namespace fiat::fleet {

std::uint64_t SnapshotStore::put(HomeId home, std::uint64_t ordinal,
                                 double sim_ts, util::Bytes blob) {
  // The record is assembled outside the map slot and moved in whole, so a
  // concurrent latest() (which copies under the same mutex) can never observe
  // a half-written generation.
  Record next;
  next.home = home;
  next.ordinal = ordinal;
  next.sim_ts = sim_ts;
  next.blob = std::move(blob);
  std::lock_guard<std::mutex> lock(mu_);
  Record& slot = latest_[home];
  next.generation = slot.generation + 1;
  slot = std::move(next);
  ++puts_;
  return slot.generation;
}

std::optional<SnapshotStore::Record> SnapshotStore::latest(HomeId home) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = latest_.find(home);
  if (it == latest_.end()) return std::nullopt;
  return it->second;
}

std::size_t SnapshotStore::home_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latest_.size();
}

std::size_t SnapshotStore::puts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return puts_;
}

std::size_t SnapshotStore::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [home, rec] : latest_) n += rec.blob.size();
  return n;
}

}  // namespace fiat::fleet
