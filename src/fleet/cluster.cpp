#include "fleet/cluster.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <utility>

#include "core/state_codec.hpp"
#include "fleet/signal_probe.hpp"
#include "util/error.hpp"

namespace fiat::fleet {

namespace {
constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();
}  // namespace

// ---- ClusterNode ------------------------------------------------------------

ClusterNode::ClusterNode(NodeId id, const ClusterConfig& config,
                         const std::vector<HomeSpec>& specs,
                         const core::HumannessVerifier& humanness,
                         SnapshotStore& snapshots, JournalStore& journal,
                         const RevocationLedger& revocations)
    : id_(id),
      config_(config),
      specs_(specs),
      humanness_(humanness),
      snapshots_(snapshots),
      journal_(journal),
      revocations_(revocations),
      queue_(config.queue_capacity, config.on_full),
      sink_(config.trace_capacity) {
  // Wired before the thread exists; worker-owned afterwards (Shard's rule).
  auto& m = sink_.metrics;
  tm_installs_ = &m.counter("fleet.cluster.installs");
  tm_cuts_ = &m.counter("fleet.cluster.cuts");
  tm_installs_aborted_ = &m.counter("fleet.cluster.installs_aborted");
  tm_snapshots_ = &m.counter("fleet.cluster.snapshots_taken");
  tm_snapshots_rejected_ = &m.counter("fleet.cluster.snapshots_rejected");
  tm_restores_warm_ = &m.counter("fleet.cluster.restores_warm");
  tm_restores_cold_ = &m.counter("fleet.cluster.restores_cold");
  tm_gap_items_ = &m.counter("fleet.cluster.gap_items");
  tm_snapshot_bytes_ = &m.histogram("fleet.cluster.snapshot_bytes");
  tm_handoff_seconds_ =
      &m.histogram("fleet.cluster.handoff_seconds", telemetry::Domain::kWall);
}

ClusterNode::~ClusterNode() {
  if (worker_.joinable()) {
    discard_.store(true, std::memory_order_relaxed);
    queue_.close();
    worker_.join();
  }
}

void ClusterNode::add_home(Home home) {
  if (started_) throw LogicError("ClusterNode: add_home after start");
  HomeId id = home.id();
  home.proxy().set_telemetry(&sink_, id);
  proc_[id] = ProcState{};
  homes_.emplace(id, std::move(home));
}

void ClusterNode::start() {
  if (started_) throw LogicError("ClusterNode: started twice");
  started_ = true;
  worker_ = std::thread([this] { run(); });
}

void ClusterNode::stop(bool drain) {
  if (!drain) discard_.store(true, std::memory_order_relaxed);
  queue_.close();
  if (worker_.joinable()) worker_.join();
  stopped_ = true;
}

void ClusterNode::require_quiescent(const char* op) const {
  if (started_ && !stopped_) {
    throw LogicError(std::string("ClusterNode: ") + op +
                     " while the worker is running reads torn state");
  }
}

telemetry::Sink& ClusterNode::telemetry() {
  require_quiescent("telemetry()");
  return sink_;
}

const telemetry::Sink& ClusterNode::telemetry() const {
  require_quiescent("telemetry()");
  return sink_;
}

const HomeSpec& ClusterNode::spec_of(HomeId home) const {
  auto it = std::lower_bound(
      specs_.begin(), specs_.end(), home,
      [](const HomeSpec& s, HomeId id) { return s.id < id; });
  if (it == specs_.end() || it->id != home) {
    throw LogicError("ClusterNode: control message for unknown home");
  }
  return *it;
}

void ClusterNode::run() {
  std::vector<NodeMsg> batch;
  while (queue_.pop_wait(batch)) {
    auto t0 = std::chrono::steady_clock::now();
    for (NodeMsg& msg : batch) {
      if (discard_.load(std::memory_order_relaxed)) {
        // Abort: skip everything. Cuts are never completed here — the
        // controller abandoned every outstanding handoff before closing the
        // queues, so no destination is left waiting.
        if (msg.kind == NodeMsg::Kind::kItem) ++discarded_;
        continue;
      }
      handle(msg);
    }
    busy_seconds_ += std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    batch.clear();
  }
}

void ClusterNode::handle(NodeMsg& msg) {
  switch (msg.kind) {
    case NodeMsg::Kind::kItem:
      process_item(msg.item);
      break;
    case NodeMsg::Kind::kCut:
      do_cut(msg);
      break;
    case NodeMsg::Kind::kInstall:
      do_install(msg);
      break;
    case NodeMsg::Kind::kRestore:
      do_restore(msg);
      break;
  }
}

void ClusterNode::process_item(const FleetItem& item) {
  auto it = homes_.find(item.home);
  if (it == homes_.end()) return;  // routing bug; dropping beats crashing
  switch (item.kind) {
    case FleetItem::Kind::kPacket:
      it->second.proxy().process(item.pkt, item.attack);
      ++packets_;
      break;
    case FleetItem::Kind::kProof:
      it->second.proxy().on_auth_payload(item.client_id, item.payload, item.ts,
                                         item.attack);
      ++proofs_;
      break;
    case FleetItem::Kind::kLifecycle:
      it->second.proxy().on_lifecycle(item.client_id, item.lifecycle_cmd,
                                      item.ts);
      ++lifecycle_ops_;
      break;
  }
  ProcState& st = proc_[item.home];
  ++st.processed;
  // Journal AFTER the item processed: a replay reconstructs exactly the
  // applied history, never a half-applied one.
  if (config_.journal) journal_.append(item.home, st.processed, item);
  maybe_snapshot(it->second, st, item.ts);
}

void ClusterNode::maybe_snapshot(Home& home, ProcState& st, double sim_ts) {
  if (config_.snapshot_every <= 0.0) return;
  if (sim_ts - st.last_snapshot_ts < config_.snapshot_every) return;
  take_snapshot(home, st, sim_ts);
}

void ClusterNode::take_snapshot(Home& home, ProcState& st, double sim_ts) {
  util::Bytes blob = core::encode_proxy_state(home.proxy(), home.id());
  tm_snapshot_bytes_->record(static_cast<double>(blob.size()));
  snapshots_.put(home.id(), st.processed, sim_ts, std::move(blob));
  // The newest generation covers the journal so far. Older retained
  // generations deliberately reach back BEFORE this truncation point — a
  // fallback to them surfaces the gap as genuinely lost items.
  journal_.truncate_upto(home.id(), st.processed);
  st.last_snapshot_ts = sim_ts;
  tm_snapshots_->inc();
}

void ClusterNode::do_cut(NodeMsg& msg) {
  auto it = homes_.find(msg.home);
  if (it == homes_.end()) {
    // The home already left this node (defensive; the controller never
    // double-cuts). Abandon so the destination does not wait forever.
    msg.handoff->abandon();
    return;
  }
  ProcState& st = proc_[msg.home];
  // With journaling the durable snapshot + journal tail already cover every
  // processed item, so the cut is just an ordinal watermark. Without it the
  // cut must seal the state itself: a fresh snapshot at exactly this
  // ordinal, making clean migrations lossless in both modes.
  if (!config_.journal) take_snapshot(it->second, st, msg.now);
  msg.handoff->complete(st.processed, msg.now);
  homes_.erase(it);
  proc_.erase(msg.home);
  ++migrations_out_;
  tm_cuts_->inc();
}

Home ClusterNode::restore_into_node(const HomeSpec& spec,
                                    const RestoreOptions& opts,
                                    RestoreOutcome& out) {
  Home home(spec, humanness_);
  out = restore_home(home, spec, humanness_, snapshots_, journal_, opts);
  if (out.generations_tried > (out.warm ? 1u : 0u)) {
    tm_snapshots_rejected_->inc(out.generations_tried - (out.warm ? 1 : 0));
  }
  if (out.warm) {
    tm_restores_warm_->inc();
  } else {
    tm_restores_cold_->inc();
  }
  if (out.lost_items > 0) tm_gap_items_->inc(out.lost_items);
  home.proxy().set_telemetry(&sink_, spec.id);
  return home;
}

void ClusterNode::do_install(NodeMsg& msg) {
  Handoff::Cut cut = msg.handoff->wait();
  if (!cut.ok) {
    tm_installs_aborted_->inc();
    return;
  }
  const HomeSpec& spec = spec_of(msg.home);
  RestoreOptions opts;
  opts.use_snapshots = true;
  opts.use_journal = config_.journal;
  opts.expected_ordinal = cut.ordinal;
  opts.now = cut.sim_ts;
  opts.revocations = &revocations_;
  RestoreOutcome out;
  Home home = restore_into_node(spec, opts, out);
  tm_handoff_seconds_->record(msg.handoff->age_seconds());
  proc_[msg.home] = ProcState{out.resume_ordinal, cut.sim_ts};
  homes_.insert_or_assign(msg.home, std::move(home));
  ++migrations_in_;
  tm_installs_->inc();
}

void ClusterNode::do_restore(NodeMsg& msg) {
  const HomeSpec& spec = spec_of(msg.home);
  RestoreOptions opts;
  opts.use_snapshots = !config_.cold_failover;
  opts.use_journal = config_.journal && !config_.cold_failover;
  opts.expected_ordinal = msg.expected_ordinal;
  opts.now = msg.now;
  // Even a cold failover must remember revocations — the whole point of the
  // fleet-wide ledger is that no restore path can resurrect a revoked key.
  opts.revocations = &revocations_;
  RestoreOutcome out;
  Home home = restore_into_node(spec, opts, out);
  proc_[msg.home] = ProcState{out.resume_ordinal, msg.now};
  homes_.insert_or_assign(msg.home, std::move(home));
}

ShardStats ClusterNode::stats() const {
  require_quiescent("stats()");
  ShardStats s;
  s.homes = homes_.size();
  s.packets = packets_;
  s.proofs = proofs_;
  s.discarded = discarded_;
  s.migrations_in = migrations_in_;
  s.migrations_out = migrations_out_;
  s.busy_seconds = busy_seconds_;
  auto q = queue_.stats();
  s.queue_pushed = q.pushed;
  s.queue_high_water = q.high_water;
  s.queue_shed = q.shed;
  s.queue_shed_on_close = q.shed_on_close;
  core::AttackLedger ledger;
  for (const auto& [id, home] : homes_) ledger.merge(home.proxy().attack_ledger());
  s.attack_injected = ledger.injected() + ledger.proofs_injected();
  s.attack_blocked = ledger.commands_blocked();
  s.attack_completed = ledger.commands_completed();
  for (const auto& [id, home] : homes_) {
    const crypto::CredentialRegistry& creds = home.proxy().credentials();
    s.enrolled += creds.enrollments_completed();
    s.rotated += creds.rotations_completed();
    s.revoked += creds.revocations_applied();
  }
  return s;
}

std::size_t ClusterNode::lifecycle_rejected_proofs() const {
  require_quiescent("lifecycle_rejected_proofs()");
  std::size_t n = 0;
  for (const auto& [id, home] : homes_) {
    n += home.proxy().proofs_rejected_lifecycle();
  }
  return n;
}

telemetry::SignalSet ClusterNode::signals() {
  require_quiescent("signals()");
  telemetry::SignalSet out;
  for (auto& [id, home] : homes_) {
    home.proxy().flush_events();  // idempotent alongside report()'s flush
    out.add(derive_home_signals(id, home.proxy()));
  }
  return out;
}

// ---- ClusterEngine ----------------------------------------------------------

ClusterEngine::ClusterEngine(std::vector<HomeSpec> homes,
                             const core::HumannessVerifier& humanness,
                             ClusterConfig config)
    : config_(std::move(config)),
      humanness_(humanness),
      snapshots_(config_.snapshot_retention),
      controller_sink_(0) {
  if (config_.nodes == 0) throw LogicError("ClusterEngine: zero nodes");
  if (config_.ingest_batch == 0) config_.ingest_batch = 1;
  if (config_.ingest_batch > config_.queue_capacity) {
    config_.ingest_batch = config_.queue_capacity;
  }
  if (config_.fault.active() &&
      config_.fault.node >= static_cast<NodeId>(config_.nodes)) {
    throw LogicError("ClusterEngine: fault plan kills a node that does not exist");
  }

  std::sort(homes.begin(), homes.end(),
            [](const HomeSpec& a, const HomeSpec& b) { return a.id < b.id; });
  for (std::size_t i = 1; i < homes.size(); ++i) {
    if (homes[i].id == homes[i - 1].id) {
      throw LogicError("ClusterEngine: duplicate home id");
    }
  }
  specs_ = std::move(homes);
  home_ids_.reserve(specs_.size());
  for (const HomeSpec& spec : specs_) home_ids_.push_back(spec.id);
  routed_.assign(specs_.size(), 0);
  black_holed_.assign(specs_.size(), 0);
  home_load_.assign(specs_.size(), 0);
  node_load_.assign(config_.nodes, 0);
  node_dead_.assign(config_.nodes, false);
  pending_.resize(config_.nodes);

  std::vector<NodeId> ids(config_.nodes);
  for (std::size_t i = 0; i < config_.nodes; ++i) {
    ids[i] = static_cast<NodeId>(i);
  }
  placement_ = PlacementTable(ids);

  nodes_.reserve(config_.nodes);
  for (std::size_t i = 0; i < config_.nodes; ++i) {
    nodes_.push_back(std::make_unique<ClusterNode>(
        static_cast<NodeId>(i), config_, specs_, humanness_, snapshots_,
        journal_, revocations_));
  }
  // Homes are constructed spec-by-spec in id order, so a home's initial
  // state never depends on the node count.
  for (const HomeSpec& spec : specs_) {
    nodes_[placement_.owner_of(spec.id)]->add_home(Home(spec, humanness_));
  }

  planned_ = config_.migrations;
  std::stable_sort(planned_.begin(), planned_.end(),
                   [](const ClusterConfig::PlannedMigration& a,
                      const ClusterConfig::PlannedMigration& b) {
                     return a.at_time < b.at_time;
                   });
  for (const auto& plan : planned_) {
    if (plan.to >= static_cast<NodeId>(config_.nodes)) {
      throw LogicError("ClusterEngine: planned migration to unknown node");
    }
    if (index_of(plan.home) == kNpos) {
      throw LogicError("ClusterEngine: planned migration of unknown home");
    }
  }

  auto& m = controller_sink_.metrics;
  tm_migrations_ = &m.counter("fleet.cluster.migrations");
  tm_failovers_ = &m.counter("fleet.cluster.node_failovers");
  tm_homes_replaced_ = &m.counter("fleet.cluster.homes_replaced");
  tm_black_holed_ = &m.counter("fleet.cluster.items_black_holed");
}

std::size_t ClusterEngine::index_of(HomeId home) const {
  auto it = std::lower_bound(home_ids_.begin(), home_ids_.end(), home);
  if (it == home_ids_.end() || *it != home) return kNpos;
  return static_cast<std::size_t>(it - home_ids_.begin());
}

void ClusterEngine::start() {
  if (started_) throw LogicError("ClusterEngine: started twice");
  started_ = true;
  start_time_ = std::chrono::steady_clock::now();
  for (auto& node : nodes_) node->start();
}

void ClusterEngine::flush_node(NodeId node) {
  std::vector<NodeMsg>& buf = pending_[node];
  if (buf.empty()) return;
  BoundedQueue<NodeMsg>& queue = nodes_[node]->queue();
  // Items may shed under kShed — that is load shedding. Control messages are
  // protocol, not load: a shed cut would park its install in wait() forever
  // and a shed install would lose the home outright, so they retry until the
  // consumer makes room (or the queue closed, i.e. the run is aborting and
  // every handoff gets abandoned).
  scratch_.clear();
  auto flush_items = [&] {
    if (!scratch_.empty()) queue.push_batch(scratch_);  // clears scratch_
  };
  for (NodeMsg& msg : buf) {
    if (msg.kind == NodeMsg::Kind::kItem) {
      scratch_.push_back(std::move(msg));
      continue;
    }
    flush_items();
    while (!queue.push(msg)) {
      if (queue.closed()) break;
      std::this_thread::yield();
    }
  }
  flush_items();
  buf.clear();
}

void ClusterEngine::flush_all() {
  for (std::size_t n = 0; n < pending_.size(); ++n) {
    flush_node(static_cast<NodeId>(n));
  }
}

bool ClusterEngine::migrate(HomeId home, NodeId to, double ts, bool planned) {
  NodeId from = placement_.owner_of(home);
  if (from == to || node_dead_[from] || node_dead_[to]) return false;

  auto handoff = std::make_shared<Handoff>();
  handoffs_.push_back(handoff);

  NodeMsg cut;
  cut.kind = NodeMsg::Kind::kCut;
  cut.home = home;
  cut.now = ts;
  cut.handoff = handoff;
  pending_[from].push_back(std::move(cut));

  NodeMsg install;
  install.kind = NodeMsg::Kind::kInstall;
  install.home = home;
  install.now = ts;
  install.handoff = handoff;
  pending_[to].push_back(std::move(install));

  // The pin: route post-flip items to the destination. When the destination
  // happens to be the rendezvous owner the pin is redundant — drop it so the
  // override table only holds real exceptions.
  if (to == placement_.natural_owner(home)) {
    placement_.clear_override(home);
  } else {
    placement_.set_override(home, to);
  }
  migrations_.push_back({home, from, to, ts, planned});
  tm_migrations_->inc();
  // Flush both sides NOW, cut first. A cut parked in the controller's buffer
  // while the destination already blocks in wait() is a deadlock under
  // kBlock (the destination queue fills, push_batch stalls, the cut never
  // ships). Flushing at decision time ensures every handoff's cut is in its
  // source queue before any later-decided install, so the earliest-decided
  // migration can always complete (induction over decision order).
  flush_node(from);
  flush_node(to);
  return true;
}

void ClusterEngine::maybe_rebalance(double ts) {
  if (config_.rebalance_every <= 0.0) return;
  if (ts - last_rebalance_ts_ < config_.rebalance_every) return;
  last_rebalance_ts_ = ts;

  std::uint64_t total = 0;
  std::size_t alive = 0;
  NodeId hottest = 0;
  std::uint64_t hottest_load = 0;
  NodeId coolest = 0;
  std::uint64_t coolest_load = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t n = 0; n < node_load_.size(); ++n) {
    if (node_dead_[n]) continue;
    ++alive;
    total += node_load_[n];
    // Strict > / <: ties break to the lowest node id, deterministically.
    if (node_load_[n] > hottest_load) {
      hottest = static_cast<NodeId>(n);
      hottest_load = node_load_[n];
    }
    if (node_load_[n] < coolest_load) {
      coolest = static_cast<NodeId>(n);
      coolest_load = node_load_[n];
    }
  }
  if (alive < 2 || hottest_load == 0 || hottest == coolest) return;
  double mean = static_cast<double>(total) / static_cast<double>(alive);
  if (static_cast<double>(hottest_load) <= config_.rebalance_ratio * mean) {
    std::fill(home_load_.begin(), home_load_.end(), 0);
    std::fill(node_load_.begin(), node_load_.end(), 0);
    return;
  }

  // Hottest homes currently routed to the hot node, by since-last-scan load
  // (ties -> lower home id). All counters are ingest-order facts, so the
  // pick is identical across runs.
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (home_load_[i] > 0 && placement_.owner_of(specs_[i].id) == hottest) {
      candidates.push_back(i);
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](std::size_t a, std::size_t b) {
                     return home_load_[a] > home_load_[b];
                   });
  std::size_t moved = 0;
  for (std::size_t idx : candidates) {
    if (moved >= config_.rebalance_top) break;
    if (migrate(specs_[idx].id, coolest, ts, /*planned=*/false)) ++moved;
  }
  std::fill(home_load_.begin(), home_load_.end(), 0);
  std::fill(node_load_.begin(), node_load_.end(), 0);
}

void ClusterEngine::on_time(double ts) {
  const sim::NodeFaultPlan& fault = config_.fault;
  if (fault.active() && !killed_ && ts >= fault.at_time) {
    killed_ = true;
    node_dead_[fault.node] = true;
  }
  if (killed_ && !failed_over_ &&
      ts >= fault.at_time + fault.detect_after) {
    run_failover(fault.at_time + fault.detect_after);
  }
  while (next_planned_ < planned_.size() &&
         planned_[next_planned_].at_time <= ts) {
    const auto& plan = planned_[next_planned_++];
    migrate(plan.home, plan.to, ts, /*planned=*/true);
  }
  maybe_rebalance(ts);
}

void ClusterEngine::run_failover(double detected_ts) {
  NodeId dead = config_.fault.node;
  // Deliver every buffered message first: pre-kill items of the dead node
  // count as processed (they were routed before the kill), and cuts destined
  // for other nodes must be reachable or a blocked install would deadlock
  // the join below.
  flush_all();
  // Drain + join the corpse. After this, every item it accepted is journaled
  // and its in-memory state is dead weight — failover restores exclusively
  // from the durable stores.
  nodes_[dead]->stop(/*drain=*/true);

  std::vector<HomeId> victims;
  for (const HomeSpec& spec : specs_) {
    if (placement_.owner_of(spec.id) == dead) victims.push_back(spec.id);
  }
  placement_.remove_node(dead);

  for (HomeId home : victims) {
    NodeId to = placement_.owner_of(home);
    NodeMsg msg;
    msg.kind = NodeMsg::Kind::kRestore;
    msg.home = home;
    msg.now = detected_ts;
    msg.expected_ordinal = routed_[index_of(home)];
    pending_[to].push_back(std::move(msg));
    tm_homes_replaced_->inc();
  }
  failovers_.push_back({dead, config_.fault.at_time, detected_ts,
                        victims.size(), black_holed_total_});
  tm_failovers_->inc();
  failed_over_ = true;
}

bool ClusterEngine::ingest(FleetItem item) {
  if (!started_ || stopped_) {
    throw LogicError("ClusterEngine: ingest on a non-running engine");
  }
  if (item.kind == FleetItem::Kind::kPacket) {
    ++offered_packets_;
  } else {
    ++offered_proofs_;
  }
  // Record revocations BEFORE routing (and before the black-hole check): a
  // revocation addressed to a dead node must still take fleet-wide effect —
  // the failover restore re-applies it from this ledger.
  if (item.kind == FleetItem::Kind::kLifecycle &&
      item.lifecycle_cmd.op == crypto::LifecycleCommand::Op::kRevoke) {
    revocations_.record(item.home, item.client_id,
                        item.lifecycle_cmd.effective_ts);
  }
  on_time(item.ts);
  std::size_t idx = index_of(item.home);
  if (idx == kNpos) return false;

  NodeId owner = placement_.owner_of(item.home);
  if (node_dead_[owner]) {
    // Kill .. detection window: the fleet routes into a corpse. These items
    // are the failover exposure bench_cluster measures.
    ++black_holed_[idx];
    ++black_holed_total_;
    tm_black_holed_->inc();
    return true;
  }
  ++routed_[idx];
  ++home_load_[idx];
  ++node_load_[owner];
  NodeMsg msg;
  msg.kind = NodeMsg::Kind::kItem;
  msg.item = std::move(item);
  pending_[owner].push_back(std::move(msg));
  if (pending_[owner].size() >= config_.ingest_batch) flush_node(owner);
  return true;
}

void ClusterEngine::drain() {
  if (stopped_) return;
  // A kill whose detection window outlived the trace still fails over — the
  // homes must end the run placed on live nodes.
  if (killed_ && !failed_over_) {
    run_failover(config_.fault.at_time + config_.fault.detect_after);
  }
  flush_all();
  for (auto& node : nodes_) node->stop(/*drain=*/true);
  wall_seconds_ = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_time_)
                      .count();
  stopped_ = true;
}

void ClusterEngine::abort() {
  if (stopped_) return;
  // Wake any destination parked on a cut that will never complete; only then
  // is a discard-stop deadlock-free.
  for (auto& handoff : handoffs_) handoff->abandon();
  for (auto& node : nodes_) node->stop(/*drain=*/false);
  wall_seconds_ = started_ ? std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start_time_)
                                 .count()
                           : 0.0;
  stopped_ = true;
}

void ClusterEngine::require_stopped(const char* op) const {
  if (started_ && !stopped_) {
    throw LogicError(std::string("ClusterEngine: ") + op +
                     " requires a stopped engine");
  }
}

FleetStats ClusterEngine::stats() const {
  require_stopped("stats()");
  FleetStats out;
  out.row_label = "node";
  out.homes = specs_.size();
  out.packets_in = offered_packets_;
  out.proofs_in = offered_proofs_;
  out.wall_seconds = wall_seconds_;
  out.migrations = migrations_.size();
  out.node_failovers = failovers_.size();
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    ShardStats s = nodes_[n]->stats();
    out.packets_out += s.packets;
    out.proofs_out += s.proofs;
    out.shed += s.queue_shed;
    out.shed_on_close += s.queue_shed_on_close;
    out.discarded += s.discarded;
    // A dead node's leftover home copies were re-placed elsewhere; counting
    // their ledgers into the totals would double-grade the replayed items.
    if (!node_dead_[n]) {
      out.attack_injected += s.attack_injected;
      out.attack_blocked += s.attack_blocked;
      out.attack_completed += s.attack_completed;
      out.lifecycle_enrolled += s.enrolled;
      out.lifecycle_rotated += s.rotated;
      out.lifecycle_revoked += s.revoked;
      out.lifecycle_rejected_proofs += nodes_[n]->lifecycle_rejected_proofs();
    }
    out.shards.push_back(s);
  }
  telemetry::MetricsRegistry merged;
  for (const auto& node : nodes_) merged.merge_from(node->telemetry().metrics);
  if (const auto* h = merged.find_histogram("fleet.cluster.handoff_seconds")) {
    out.handoff_p95_seconds = h->quantile(0.95);
  }
  return out;
}

FleetReport ClusterEngine::report() {
  require_stopped("report()");
  FleetReport out;
  out.stats = stats();
  out.homes.reserve(specs_.size());
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    // A dead node's homes were re-placed; its leftover in-memory copies are
    // not part of the fleet anymore.
    if (node_dead_[n]) continue;
    for (auto& [id, home] : nodes_[n]->homes()) {
      home.proxy().flush_events();
      FleetReport::HomeEntry entry;
      entry.home = id;
      entry.counters = home.proxy().counters();
      entry.report = core::build_security_report(home.proxy());
      out.totals += entry.counters;
      out.attack.merge(entry.report.attack);
      if (!entry.report.incidents.empty()) ++out.homes_with_incidents;
      out.homes.push_back(std::move(entry));
    }
  }
  std::sort(out.homes.begin(), out.homes.end(),
            [](const FleetReport::HomeEntry& a, const FleetReport::HomeEntry& b) {
              return a.home < b.home;
            });
  return out;
}

telemetry::SignalSet ClusterEngine::signals() {
  require_stopped("signals()");
  telemetry::SignalSet out;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    // A dead node's leftover home copies were re-placed; fingerprinting them
    // would shadow the restored (authoritative) copies.
    if (node_dead_[n]) continue;
    out.merge_from(nodes_[n]->signals());
  }
  return out;
}

void ClusterEngine::annotate_stats(FleetStats& stats,
                                   const CorrelationReport& report) const {
  require_stopped("annotate_stats()");
  for (std::size_t n = 0; n < nodes_.size() && n < stats.shards.size(); ++n) {
    if (node_dead_[n]) continue;
    for (const auto& [id, home] : nodes_[n]->homes()) {
      if (report.flagged(id)) ++stats.shards[n].flagged;
    }
  }
  stats.flagged_homes = report.flagged_homes();
  stats.correlation_shared_signatures = report.shared_signatures;
  stats.correlation_flood_sources = report.flood_sources;
  stats.correlation_cohorts = report.cohorts;
}

telemetry::MetricsRegistry ClusterEngine::merged_metrics() const {
  require_stopped("merged_metrics()");
  telemetry::MetricsRegistry merged;
  // Node order then controller: fixed merge order keeps accumulated sums
  // deterministic.
  for (const auto& node : nodes_) merged.merge_from(node->telemetry().metrics);
  merged.merge_from(controller_sink_.metrics);
  merged.counter("fleet.packets_in").inc(offered_packets_);
  merged.counter("fleet.proofs_in").inc(offered_proofs_);
  std::uint64_t trace_dropped = 0;
  for (const auto& node : nodes_) {
    trace_dropped += node->telemetry().trace.dropped();
  }
  merged.counter("fleet.trace_spans_dropped").inc(trace_dropped);
  merged.gauge("fleet.wall_seconds", telemetry::Domain::kWall)
      .set(wall_seconds_);
  return merged;
}

std::vector<telemetry::TraceSpan> ClusterEngine::merged_trace() const {
  require_stopped("merged_trace()");
  std::vector<const telemetry::TraceBuffer*> buffers;
  buffers.reserve(nodes_.size());
  for (const auto& node : nodes_) buffers.push_back(&node->telemetry().trace);
  return telemetry::merge_ordered(buffers);
}

std::string ClusterEngine::render_control_plane() const {
  require_stopped("render_control_plane()");
  char line[224];
  std::size_t planned = 0;
  for (const MigrationRecord& rec : migrations_) planned += rec.planned ? 1 : 0;
  std::snprintf(line, sizeof(line),
                "cluster: %zu nodes, %zu migrations (%zu planned, %zu "
                "rebalance), %zu failovers, %llu items black-holed\n",
                nodes_.size(), migrations_.size(), planned,
                migrations_.size() - planned, failovers_.size(),
                static_cast<unsigned long long>(black_holed_total_));
  std::string out = line;
  for (const FailoverRecord& f : failovers_) {
    std::snprintf(line, sizeof(line),
                  "  failover: node %u killed t=%.3f detected t=%.3f, %zu "
                  "homes re-placed, %llu items black-holed\n",
                  f.node, f.killed_ts, f.detected_ts, f.homes_replaced,
                  static_cast<unsigned long long>(f.items_black_holed));
    out += line;
  }
  return out;
}

}  // namespace fiat::fleet
