// The one translation unit allowed to look at both sides: derives a home's
// telemetry::HomeSignals fingerprint from its FiatProxy durable state.
//
// Everything in the fingerprint is a pure function of state the codec
// already persists (counters, escalation sketch, proof bookkeeping), so the
// signals inherit the proven byte-identity guarantees: shards=K equals
// shards=1, and a home migrated or failed-over mid-campaign produces the
// same fingerprint as one that never moved. The correlator itself never
// includes this header — it consumes HomeSignals only.
#pragma once

#include <cstddef>

#include "core/proxy.hpp"
#include "fleet/home.hpp"
#include "telemetry/signals.hpp"

namespace fiat::fleet {

/// Sketch entries kept per home (top-K by count; see telemetry::top_k_sketch).
inline constexpr std::size_t kSignalsTopK = 8;

/// Builds the fingerprint. Call proxy.flush_events() first (Shard::signals()
/// does) so an open escalated event has committed its costume signatures.
telemetry::HomeSignals derive_home_signals(HomeId id,
                                           const core::FiatProxy& proxy,
                                           std::size_t top_k = kSignalsTopK);

}  // namespace fiat::fleet
