#include "fleet/fleet_testbed.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <set>

#include "core/auth_message.hpp"
#include "crypto/keystore.hpp"
#include "gen/sensors.hpp"
#include "gen/testbed.hpp"
#include "sim/rng.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace fiat::fleet {

namespace {

const char* kLocations[] = {"US", "JP", "DE", "IL"};

/// Sorts by timestamp, keeping build order for equal stamps (so replays and
/// per-home filtering stay deterministic).
void stable_sort_by_ts(std::vector<FleetItem>& items) {
  std::stable_sort(items.begin(), items.end(),
                   [](const FleetItem& a, const FleetItem& b) { return a.ts < b.ts; });
}

core::AttackLabel label_of(gen::AttackType type, std::int32_t cmd, bool payload) {
  core::AttackLabel label;
  label.cls = static_cast<std::int16_t>(type);
  label.cmd = cmd;
  label.payload = payload;
  return label;
}

}  // namespace

FleetScenario make_fleet_scenario(const FleetScenarioConfig& config) {
  const auto& profiles = gen::testbed_profiles();
  if (config.devices_per_home == 0 || config.devices_per_home > profiles.size()) {
    throw LogicError("make_fleet_scenario: devices_per_home must be 1..10");
  }
  if (config.zipf_skew < 0.0 || config.zipf_max_devices == 0) {
    throw LogicError(
        "make_fleet_scenario: zipf_skew must be >= 0 and zipf_max_devices "
        ">= 1");
  }
  const auto& churn = config.churn;
  if (churn.join_fraction < 0.0 || churn.join_fraction > 1.0 ||
      churn.revoke_fraction < 0.0 || churn.revoke_fraction > 1.0 ||
      churn.rotate_every < 0.0) {
    throw LogicError(
        "make_fleet_scenario: churn fractions must be in [0, 1] and the "
        "rotation cadence >= 0");
  }
  if (churn.enabled() &&
      (churn.revocation_window <= 0.0 || churn.revoke_at_frac <= 0.0 ||
       churn.revoke_at_frac >= 1.0)) {
    throw LogicError(
        "make_fleet_scenario: revocation_window must be > 0 and "
        "revoke_at_frac inside (0, 1)");
  }
  std::size_t zipf_cap = std::min(config.zipf_max_devices, profiles.size());

  FleetScenario scenario;
  scenario.homes.reserve(config.homes);

  // Campaign composer (inert when disabled). Draws only from its own seed:
  // benign homes' traffic is byte-identical with the campaign on or off.
  std::optional<gen::AttackDirector> director;
  if (config.attack.enabled()) {
    director.emplace(config.attack, config.homes);
  }
  const double trace_duration = config.duration_days * 86400.0;

  sim::Rng base(config.seed);
  // One keystore stands in for all the phones' TEEs; each home gets its own
  // pairing key (handles are independent, like the proxies' stores).
  crypto::KeyStore phone_tee;
  gen::SensorConfig clean_sensors;
  clean_sensors.gentle_human_prob = 0.0;
  clean_sensors.noisy_machine_prob = 0.0;

  for (std::size_t h = 0; h < config.homes; ++h) {
    HomeId home_id = static_cast<HomeId>(h);
    // The per-home sub-stream: stable under fleet-size and build-order
    // changes (sim::Rng::fork(stream_id) keys off the construction seed).
    sim::Rng home_rng = base.fork(home_id);

    HomeSpec spec;
    spec.id = home_id;
    spec.proxy.bootstrap_duration = config.bootstrap_duration;
    spec.proxy.degraded_policy = config.policy;
    spec.proxy.rules.legacy_keys = config.legacy_keys;
    spec.proxy.simd = config.simd;

    std::vector<std::uint8_t> psk(32);
    home_rng.fill_bytes(psk);

    // ---- credential churn plan (dedicated sub-stream: benign traffic is
    // ---- byte-identical with churn on or off) ------------------------------
    sim::Rng churn_rng = home_rng.fork(9000);
    ChurnHomeTruth churn_truth;
    churn_truth.home = home_id;
    double enroll_begin_ts = -1.0;
    double enroll_done_ts = -1.0;  // < 0: pre-paired from t=0
    double revoke_ts = -1.0;
    double revoke_effective_ts = -1.0;
    std::vector<double> rotation_times;
    if (churn.enabled()) {
      // Fixed draw order: flipping one churn knob never reshuffles the
      // others' per-home assignments.
      double u_join = churn_rng.uniform();
      double u_phase = churn_rng.uniform();
      double u_revoke = churn_rng.uniform();
      churn_truth.enrolls = u_join < churn.join_fraction;
      churn_truth.revoked = u_revoke < churn.revoke_fraction;
      if (churn_truth.enrolls) {
        // Mid-bootstrap join: pre-enroll manual events fall inside the
        // learning window, so a late phone never locks its owner out.
        enroll_begin_ts = config.bootstrap_duration * (0.2 + 0.5 * u_phase);
        enroll_done_ts = enroll_begin_ts + 1.0;
      }
      if (churn_truth.revoked) {
        revoke_ts = churn.revoke_at_frac * trace_duration;
        revoke_effective_ts = revoke_ts + churn.revocation_window;
        churn_truth.revoke_ts = revoke_ts;
        churn_truth.effective_ts = revoke_effective_ts;
      }
      if (churn.rotate_every > 0.0) {
        double start =
            std::max(config.bootstrap_duration, enroll_done_ts) +
            churn.rotate_every;
        for (double t = start; t < trace_duration; t += churn.rotate_every) {
          if (revoke_ts >= 0.0 && t >= revoke_ts) break;
          rotation_times.push_back(t);
        }
        churn_truth.rotations = rotation_times.size();
      }
    }
    spec.phones.push_back({"phone", psk, churn_truth.enrolls});

    std::vector<FleetItem> home_items;

    // Phone-side key schedule: which credential the phone seals with, by
    // send time. Mirrors the proxy-side derivations exactly — no key bytes
    // ever ride an item.
    struct KeyGen {
      double from_ts;  // active for sends strictly after this time
      crypto::KeyHandle handle;
    };
    const std::string temp_id = "temp:" + std::to_string(home_id);
    std::vector<KeyGen> key_schedule;
    std::vector<std::uint8_t> current_key;
    if (churn_truth.enrolls) {
      auto challenge = crypto::derive_enroll_challenge(psk, "phone", temp_id);
      auto proof = crypto::derive_enroll_proof(psk, challenge);
      auto key0 = crypto::derive_credential_key(psk, challenge, 0);
      current_key.assign(key0.begin(), key0.end());
      key_schedule.push_back(
          {enroll_done_ts, phone_tee.import_key(current_key, "fleet-phone")});
      crypto::LifecycleCommand begin;
      begin.op = crypto::LifecycleCommand::Op::kEnrollBegin;
      begin.temp_id = temp_id;
      home_items.push_back(
          FleetItem::lifecycle(home_id, enroll_begin_ts, "phone", begin));
      crypto::LifecycleCommand done;
      done.op = crypto::LifecycleCommand::Op::kEnrollComplete;
      done.proof.assign(proof.begin(), proof.end());
      home_items.push_back(
          FleetItem::lifecycle(home_id, enroll_done_ts, "phone", done));
      scenario.lifecycle_count += 2;
      scenario.churn.lifecycle_commands += 2;
      ++scenario.churn.enrollments;
    } else {
      current_key = psk;
      key_schedule.push_back({0.0, phone_tee.import_key(psk, "fleet-phone")});
    }
    for (std::size_t k = 0; k < rotation_times.size(); ++k) {
      std::uint32_t new_gen = static_cast<std::uint32_t>(k + 1);
      auto proof = crypto::derive_rotation_proof(current_key, new_gen);
      auto next = crypto::derive_rotation_key(current_key, new_gen);
      current_key.assign(next.begin(), next.end());
      key_schedule.push_back(
          {rotation_times[k],
           phone_tee.import_key(current_key, "fleet-phone-rot")});
      crypto::LifecycleCommand rotate;
      rotate.op = crypto::LifecycleCommand::Op::kRotate;
      rotate.proof.assign(proof.begin(), proof.end());
      home_items.push_back(
          FleetItem::lifecycle(home_id, rotation_times[k], "phone", rotate));
      ++scenario.lifecycle_count;
      ++scenario.churn.lifecycle_commands;
      ++scenario.churn.rotations;
    }
    if (churn_truth.revoked) {
      crypto::LifecycleCommand revoke;
      revoke.op = crypto::LifecycleCommand::Op::kRevoke;
      revoke.effective_ts = revoke_effective_ts;
      home_items.push_back(
          FleetItem::lifecycle(home_id, revoke_ts, "phone", revoke));
      ++scenario.lifecycle_count;
      ++scenario.churn.lifecycle_commands;
      ++scenario.churn.revocations;
    }
    // The key the phone seals with at send time `ts`: the newest generation
    // whose rotation strictly precedes the send. A proof at exactly the
    // rotation instant uses the retiring key — the registry's overlap window
    // keeps it verifiable.
    auto key_at = [&key_schedule](double ts) {
      crypto::KeyHandle key = key_schedule.front().handle;
      for (const KeyGen& kg : key_schedule) {
        if (kg.from_ts < ts) key = kg.handle;
      }
      return key;
    };
    // Proofs are collected first and sealed only after sorting by delivery
    // time: the proxy treats a lower-than-high-water sequence as a replay,
    // so sequence numbers must be issued in the order the phone sends.
    std::vector<std::pair<double, core::AuthMessage>> proofs;
    // Stolen-proof replay schedule (kProofReplay campaigns): delivery times
    // at which the adversary re-sends the newest captured proof datagram.
    std::vector<double> proof_replays;
    std::optional<gen::AttackProfile> attack_profile =
        director ? director->plan(home_id, trace_duration) : std::nullopt;

    std::size_t home_devices = config.devices_per_home;
    if (config.zipf_skew > 0.0) {
      double raw = static_cast<double>(config.zipf_max_devices) /
                   std::pow(static_cast<double>(h + 1), config.zipf_skew);
      home_devices = std::clamp(
          static_cast<std::size_t>(std::llround(raw)), std::size_t{1},
          zipf_cap);
    }
    for (std::size_t d = 0; d < home_devices; ++d) {
      const gen::DeviceProfile& profile = profiles[(h + d) % profiles.size()];
      gen::LocationEnv env(kLocations[h % 4]);
      gen::TraceConfig trace_config;
      trace_config.duration_days = config.duration_days;
      trace_config.seed = home_rng.fork(d).seed();
      trace_config.device_index = static_cast<std::uint32_t>(d);
      trace_config.manual_per_day_override = config.manual_per_day;
      // Sub-day fleet traces end long before the default 07:00 start of the
      // activity window; open it up so manual events actually land.
      trace_config.active_day_start = 0.0;
      trace_config.active_day_end = 24 * 3600.0;
      // Manual events open with the notification packet for every profile,
      // so the fleet's notification-size stand-in classifier can see them.
      trace_config.notification_manual = true;
      gen::LabeledTrace trace = gen::generate_trace(profile, env, trace_config);

      core::ProxyDevice device;
      device.name = profile.name;
      device.ip = trace.device_ip;
      device.allowed_prefix = profile.simple_rule ? 0 : 5;
      // Fleet-scale stand-in for the distributed per-device model (§7): the
      // notification-size rule every profile carries. Training 10k
      // BernoulliNB models would swamp scenario setup without changing what
      // the runtime itself measures.
      device.classifier =
          core::ManualEventClassifier::simple_rule(profile.rule_packet_size);
      device.app_package = "app." + profile.name;
      spec.devices.push_back(device);

      for (const auto& lp : trace.packets) {
        home_items.push_back(FleetItem::packet(home_id, lp.pkt));
      }
      scenario.packet_count += trace.packets.size();

      if (config.with_proofs) {
        sim::Rng sensor_rng = home_rng.fork(1000 + d);
        for (const auto& interaction : trace.interactions) {
          if (interaction.cls != gen::TrafficClass::kManual) continue;
          core::AuthMessage msg;
          msg.app_package = device.app_package;
          // Captured while the user tapped, delivered just ahead of the
          // command traffic (LAN-fast proof channel).
          msg.capture_time = interaction.start - 0.3;
          msg.features = gen::sensor_features(
              gen::generate_sensor_trace(sensor_rng, /*human=*/true, clean_sensors));
          proofs.emplace_back(interaction.start - 0.1, std::move(msg));
        }
      }

      // The campaign targets each attacked home's primary device, composing
      // its wave from the device's own benign trace (WiFinger-style
      // sniffing, piggyback synchronization).
      if (attack_profile && d == 0) {
        gen::AttackWave wave =
            director->compose(home_id, *attack_profile, profile, env, trace);
        scenario.attack.attacked_homes.push_back(home_id);
        std::map<std::int32_t, std::uint64_t> payload_counts;
        for (const gen::AttackPacket& ap : wave.packets) {
          FleetItem item = FleetItem::packet(home_id, ap.pkt);
          item.attack = label_of(attack_profile->type, ap.cmd, ap.payload);
          home_items.push_back(std::move(item));
          ++scenario.packet_count;
          ++scenario.attack.packets;
          ++scenario.attack
            .packets_by_class[static_cast<std::size_t>(attack_profile->type)];
          if (ap.payload && ap.cmd >= 0) ++payload_counts[ap.cmd];
        }
        for (const auto& [cmd, count] : payload_counts) {
          scenario.attack.commands.push_back(
              AttackCommandTruth{home_id, cmd, attack_profile->type, count});
        }
        proof_replays = wave.proof_replays;
      }
    }

    std::stable_sort(proofs.begin(), proofs.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    std::uint64_t proof_seq = 0;
    // (delivery ts, payload) of every legit proof datagram, in send order —
    // the adversary's capture log for replay floods.
    std::vector<std::pair<double, std::vector<std::uint8_t>>> sent_payloads;
    for (auto& [delivery_ts, msg] : proofs) {
      // A phone that has not enrolled yet (or was revoked and taken from its
      // owner) sends nothing; the sequence counter only advances on real
      // sends.
      if (enroll_done_ts >= 0.0 && delivery_ts <= enroll_done_ts) continue;
      if (revoke_ts >= 0.0 && delivery_ts >= revoke_ts) continue;
      ++proof_seq;
      auto sealed = core::seal_auth_message(phone_tee, key_at(delivery_ts),
                                            proof_seq, msg);
      util::ByteWriter payload;
      payload.u64be(proof_seq);
      payload.raw(std::span<const std::uint8_t>(sealed.data(), sealed.size()));
      std::vector<std::uint8_t> bytes(payload.bytes().begin(),
                                      payload.bytes().end());
      sent_payloads.emplace_back(delivery_ts, bytes);
      home_items.push_back(
          FleetItem::proof(home_id, delivery_ts, "phone", std::move(bytes)));
      ++scenario.proof_count;
      ++churn_truth.benign_proofs;
    }

    // Revoked-credential probes: the stolen phone keeps signing fresh,
    // humanness-passing proofs with the real credential. Accepts inside the
    // revocation window are the measured propagation latency; at/after
    // effective_ts every probe must die on the lifecycle-reject path.
    if (churn_truth.revoked) {
      sim::Rng probe_rng = churn_rng.fork(1);
      const std::string probe_app =
          "app." + std::string(profiles[h % profiles.size()].name);
      double step = churn.revocation_window / 8.0;
      double probe_end = std::min(
          trace_duration, revoke_effective_ts + 2.0 * churn.revocation_window);
      for (double t = revoke_ts + step; t < probe_end; t += step) {
        core::AuthMessage msg;
        msg.app_package = probe_app;
        msg.capture_time = t - 0.3;
        msg.features = gen::sensor_features(
            gen::generate_sensor_trace(probe_rng, /*human=*/true, clean_sensors));
        ++proof_seq;
        auto sealed =
            core::seal_auth_message(phone_tee, key_at(t), proof_seq, msg);
        util::ByteWriter payload;
        payload.u64be(proof_seq);
        payload.raw(std::span<const std::uint8_t>(sealed.data(), sealed.size()));
        std::vector<std::uint8_t> bytes(payload.bytes().begin(),
                                        payload.bytes().end());
        FleetItem item = FleetItem::proof(home_id, t, "phone", std::move(bytes));
        item.attack =
            label_of(gen::AttackType::kRevokedCredential, -1, false);
        home_items.push_back(std::move(item));
        ++scenario.proof_count;
        ++scenario.attack.proofs;
        ++churn_truth.probes;
        if (t < revoke_effective_ts) ++churn_truth.probes_in_window;
      }
    }
    for (double replay_ts : proof_replays) {
      // The newest datagram the adversary could have captured by replay
      // time; with nothing captured yet they forge garbage (bad signature).
      std::vector<std::uint8_t> bytes;
      for (const auto& [sent_ts, payload] : sent_payloads) {
        if (sent_ts > replay_ts) break;
        bytes = payload;
      }
      if (bytes.empty()) bytes.assign(24, 0x5A);
      FleetItem item =
          FleetItem::proof(home_id, replay_ts, "phone", std::move(bytes));
      item.attack = label_of(gen::AttackType::kProofReplay, -1, false);
      home_items.push_back(std::move(item));
      ++scenario.proof_count;
      ++scenario.attack.proofs;
    }

    if (churn.enabled() && (churn_truth.enrolls || churn_truth.rotations > 0 ||
                            churn_truth.revoked)) {
      scenario.churn.homes.push_back(churn_truth);
    }

    stable_sort_by_ts(home_items);
    scenario.items.insert(scenario.items.end(),
                          std::make_move_iterator(home_items.begin()),
                          std::make_move_iterator(home_items.end()));
    scenario.homes.push_back(std::move(spec));
  }
  scenario.churn.revocation_window = churn.revocation_window;

  // Sybil homes: attacker-controlled households appended after the benign
  // fleet. Their traffic is plausible (same generator), but every packet is
  // adversarial ground truth — and their manual events come with no phone
  // and no proofs, so each one is a command the proxy must block.
  std::size_t sybil_count = director ? director->sybil_home_count() : 0;
  for (std::size_t s = 0; s < sybil_count; ++s) {
    HomeId home_id = static_cast<HomeId>(config.homes + s);
    sim::Rng home_rng = base.fork(home_id);

    HomeSpec spec;
    spec.id = home_id;
    spec.proxy.bootstrap_duration = config.bootstrap_duration;
    spec.proxy.degraded_policy = config.policy;
    spec.proxy.rules.legacy_keys = config.legacy_keys;
    spec.proxy.simd = config.simd;

    const gen::DeviceProfile& profile = profiles[home_id % profiles.size()];
    gen::LocationEnv env(kLocations[home_id % 4]);
    gen::TraceConfig trace_config;
    trace_config.duration_days = config.duration_days;
    trace_config.seed = home_rng.fork(0).seed();
    trace_config.device_index = 0;
    trace_config.manual_per_day_override = config.manual_per_day;
    trace_config.active_day_start = 0.0;
    trace_config.active_day_end = 24 * 3600.0;
    trace_config.notification_manual = true;
    gen::LabeledTrace trace = gen::generate_trace(profile, env, trace_config);

    core::ProxyDevice device;
    device.name = profile.name;
    device.ip = trace.device_ip;
    device.allowed_prefix = profile.simple_rule ? 0 : 5;
    device.classifier =
        core::ManualEventClassifier::simple_rule(profile.rule_packet_size);
    device.app_package = "app." + profile.name;
    spec.devices.push_back(device);

    // Manual events that land after bootstrap are the Sybil home's command
    // attempts: no proof will ever cover them, so ground truth expects every
    // one blocked. Earlier ones fall in the learning window (allowed by
    // design) and stay plain labeled noise.
    std::set<int> command_events;
    for (const auto& interaction : trace.interactions) {
      if (interaction.cls != gen::TrafficClass::kManual) continue;
      if (interaction.start <= config.bootstrap_duration + 60.0) continue;
      command_events.insert(interaction.event_id);
    }
    std::map<std::int32_t, std::uint64_t> payload_counts;
    std::vector<FleetItem> home_items;
    for (const auto& lp : trace.packets) {
      FleetItem item = FleetItem::packet(home_id, lp.pkt);
      bool payload = lp.label == gen::TrafficClass::kManual &&
                     lp.event_id >= 0 && command_events.contains(lp.event_id);
      std::int32_t cmd =
          payload ? gen::AttackDirector::sybil_command_id(home_id, lp.event_id)
                  : -1;
      item.attack = label_of(gen::AttackType::kSybilHome, cmd, payload);
      home_items.push_back(std::move(item));
      ++scenario.packet_count;
      ++scenario.attack.packets;
      ++scenario.attack
        .packets_by_class[static_cast<std::size_t>(gen::AttackType::kSybilHome)];
      if (payload) ++payload_counts[cmd];
    }
    for (const auto& [cmd, count] : payload_counts) {
      scenario.attack.commands.push_back(AttackCommandTruth{
          home_id, cmd, gen::AttackType::kSybilHome, count});
    }
    scenario.attack.sybil_homes.push_back(home_id);

    stable_sort_by_ts(home_items);
    scenario.items.insert(scenario.items.end(),
                          std::make_move_iterator(home_items.begin()),
                          std::make_move_iterator(home_items.end()));
    scenario.homes.push_back(std::move(spec));
  }

  stable_sort_by_ts(scenario.items);
  return scenario;
}

}  // namespace fiat::fleet
