#include "fleet/fleet_testbed.hpp"

#include <algorithm>
#include <cmath>

#include "core/auth_message.hpp"
#include "crypto/keystore.hpp"
#include "gen/sensors.hpp"
#include "gen/testbed.hpp"
#include "sim/rng.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace fiat::fleet {

namespace {

const char* kLocations[] = {"US", "JP", "DE", "IL"};

/// Sorts by timestamp, keeping build order for equal stamps (so replays and
/// per-home filtering stay deterministic).
void stable_sort_by_ts(std::vector<FleetItem>& items) {
  std::stable_sort(items.begin(), items.end(),
                   [](const FleetItem& a, const FleetItem& b) { return a.ts < b.ts; });
}

}  // namespace

FleetScenario make_fleet_scenario(const FleetScenarioConfig& config) {
  const auto& profiles = gen::testbed_profiles();
  if (config.devices_per_home == 0 || config.devices_per_home > profiles.size()) {
    throw LogicError("make_fleet_scenario: devices_per_home must be 1..10");
  }
  if (config.zipf_skew < 0.0 || config.zipf_max_devices == 0) {
    throw LogicError(
        "make_fleet_scenario: zipf_skew must be >= 0 and zipf_max_devices "
        ">= 1");
  }
  std::size_t zipf_cap = std::min(config.zipf_max_devices, profiles.size());

  FleetScenario scenario;
  scenario.homes.reserve(config.homes);

  sim::Rng base(config.seed);
  // One keystore stands in for all the phones' TEEs; each home gets its own
  // pairing key (handles are independent, like the proxies' stores).
  crypto::KeyStore phone_tee;
  gen::SensorConfig clean_sensors;
  clean_sensors.gentle_human_prob = 0.0;
  clean_sensors.noisy_machine_prob = 0.0;

  for (std::size_t h = 0; h < config.homes; ++h) {
    HomeId home_id = static_cast<HomeId>(h);
    // The per-home sub-stream: stable under fleet-size and build-order
    // changes (sim::Rng::fork(stream_id) keys off the construction seed).
    sim::Rng home_rng = base.fork(home_id);

    HomeSpec spec;
    spec.id = home_id;
    spec.proxy.bootstrap_duration = config.bootstrap_duration;
    spec.proxy.degraded_policy = config.policy;
    spec.proxy.rules.legacy_keys = config.legacy_keys;

    std::vector<std::uint8_t> psk(32);
    home_rng.fill_bytes(psk);
    spec.phones.push_back({"phone", psk});
    crypto::KeyHandle phone_key = phone_tee.import_key(psk, "fleet-phone");

    std::vector<FleetItem> home_items;
    // Proofs are collected first and sealed only after sorting by delivery
    // time: the proxy treats a lower-than-high-water sequence as a replay,
    // so sequence numbers must be issued in the order the phone sends.
    std::vector<std::pair<double, core::AuthMessage>> proofs;

    std::size_t home_devices = config.devices_per_home;
    if (config.zipf_skew > 0.0) {
      double raw = static_cast<double>(config.zipf_max_devices) /
                   std::pow(static_cast<double>(h + 1), config.zipf_skew);
      home_devices = std::clamp(
          static_cast<std::size_t>(std::llround(raw)), std::size_t{1},
          zipf_cap);
    }
    for (std::size_t d = 0; d < home_devices; ++d) {
      const gen::DeviceProfile& profile = profiles[(h + d) % profiles.size()];
      gen::LocationEnv env(kLocations[h % 4]);
      gen::TraceConfig trace_config;
      trace_config.duration_days = config.duration_days;
      trace_config.seed = home_rng.fork(d).seed();
      trace_config.device_index = static_cast<std::uint32_t>(d);
      trace_config.manual_per_day_override = config.manual_per_day;
      // Sub-day fleet traces end long before the default 07:00 start of the
      // activity window; open it up so manual events actually land.
      trace_config.active_day_start = 0.0;
      trace_config.active_day_end = 24 * 3600.0;
      gen::LabeledTrace trace = gen::generate_trace(profile, env, trace_config);

      core::ProxyDevice device;
      device.name = profile.name;
      device.ip = trace.device_ip;
      device.allowed_prefix = profile.simple_rule ? 0 : 5;
      // Fleet-scale stand-in for the distributed per-device model (§7): the
      // notification-size rule every profile carries. Training 10k
      // BernoulliNB models would swamp scenario setup without changing what
      // the runtime itself measures.
      device.classifier =
          core::ManualEventClassifier::simple_rule(profile.rule_packet_size);
      device.app_package = "app." + profile.name;
      spec.devices.push_back(device);

      for (const auto& lp : trace.packets) {
        home_items.push_back(FleetItem::packet(home_id, lp.pkt));
      }
      scenario.packet_count += trace.packets.size();

      if (config.with_proofs) {
        sim::Rng sensor_rng = home_rng.fork(1000 + d);
        for (const auto& interaction : trace.interactions) {
          if (interaction.cls != gen::TrafficClass::kManual) continue;
          core::AuthMessage msg;
          msg.app_package = device.app_package;
          // Captured while the user tapped, delivered just ahead of the
          // command traffic (LAN-fast proof channel).
          msg.capture_time = interaction.start - 0.3;
          msg.features = gen::sensor_features(
              gen::generate_sensor_trace(sensor_rng, /*human=*/true, clean_sensors));
          proofs.emplace_back(interaction.start - 0.1, std::move(msg));
        }
      }
    }

    std::stable_sort(proofs.begin(), proofs.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    std::uint64_t proof_seq = 0;
    for (auto& [delivery_ts, msg] : proofs) {
      ++proof_seq;
      auto sealed = core::seal_auth_message(phone_tee, phone_key, proof_seq, msg);
      util::ByteWriter payload;
      payload.u64be(proof_seq);
      payload.raw(std::span<const std::uint8_t>(sealed.data(), sealed.size()));
      std::vector<std::uint8_t> bytes(payload.bytes().begin(),
                                      payload.bytes().end());
      home_items.push_back(
          FleetItem::proof(home_id, delivery_ts, "phone", std::move(bytes)));
      ++scenario.proof_count;
    }

    stable_sort_by_ts(home_items);
    scenario.items.insert(scenario.items.end(),
                          std::make_move_iterator(home_items.begin()),
                          std::make_move_iterator(home_items.end()));
    scenario.homes.push_back(std::move(spec));
  }

  stable_sort_by_ts(scenario.items);
  return scenario;
}

}  // namespace fiat::fleet
