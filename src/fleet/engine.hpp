// FleetEngine: the sharded multi-home proxy runtime.
//
// Hosts N independent homes (each its own FiatProxy, device set, keystore
// and RNG stream) behind a single ingestion front-end:
//
//   ingest(item) -> IngestRouter -> per-shard BoundedQueue -> Shard worker
//                                                             -> home proxy
//
// Lifecycle: construct -> start() -> ingest()... -> drain() | abort()
//            -> report() / stats().
//
// Determinism contract (asserted in tests/test_fleet.cpp):
//  * per-home results depend only on that home's item stream, never on the
//    shard count: with shards=1 the per-home SecurityReport is byte-identical
//    to driving a FiatProxy directly, and shards=K reproduces shards=1
//    home-for-home;
//  * required of the caller: all items of one home ingested from one thread
//    in timestamp order (the single-threaded merged-stream feed the CLI and
//    benches use satisfies this trivially).
// Backpressure: queues are bounded; FullPolicy::kBlock stalls the producer,
// FullPolicy::kShed drops and counts. Nothing grows without bound.
#pragma once

#include <chrono>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/humanness.hpp"
#include "core/report.hpp"
#include "fleet/correlator.hpp"
#include "fleet/enrollment.hpp"
#include "fleet/home.hpp"
#include "fleet/router.hpp"
#include "fleet/shard.hpp"
#include "fleet/stats.hpp"
#include "fleet/supervisor.hpp"

namespace fiat::fleet {

struct FleetConfig {
  std::size_t shards = 1;
  /// Per-shard queue capacity (items).
  std::size_t queue_capacity = 8192;
  FullPolicy on_full = FullPolicy::kBlock;
  /// Router buffering: items per queue-lock acquisition.
  std::size_t ingest_batch = 128;
  /// Per-shard telemetry trace ring capacity (spans); 0 disables tracing.
  std::size_t trace_capacity = 8192;
  /// Hand whole drained queue batches to the batch pipeline (DESIGN.md §15).
  /// Per-home results are byte-identical either way; --no-batch forces the
  /// per-item scalar loop (the golden matrix's reference engine).
  bool batch = true;
  /// Durability + crash supervision (fleet/supervisor.hpp). Disabled by
  /// default: the unsupervised hot path is unchanged.
  RecoveryConfig recovery;
};

/// Merged fleet-wide report: per-home security reports plus the aggregate
/// verdict/health counters and the runtime's own stats.
struct FleetReport {
  struct HomeEntry {
    HomeId home = 0;
    core::ProxyCounters counters;
    core::SecurityReport report;
  };

  std::vector<HomeEntry> homes;  // sorted by home id
  core::ProxyCounters totals;
  /// Fleet-wide campaign grading: every home's AttackLedger merged. Empty
  /// (and silent in render()) when no campaign ran.
  core::AttackLedger attack;
  std::size_t homes_with_incidents = 0;
  FleetStats stats;

  /// Aggregate rendering: totals, runtime table, and the first `max_homes`
  /// per-home summary lines (0 = all).
  std::string render(std::size_t max_homes = 8) const;
};

class FleetEngine {
 public:
  FleetEngine(std::vector<HomeSpec> homes, const core::HumannessVerifier& humanness,
              FleetConfig config = {});

  std::size_t home_count() const { return home_count_; }
  std::size_t shard_count() const { return shards_.size(); }
  const HomePartition& partition() const { return partition_; }
  std::size_t shard_of(HomeId id) const { return partition_.shard_of(id); }

  void start();

  // ---- ingestion front-end (single producer; see class comment) ----------
  bool ingest(FleetItem item) {
    // Revocations are recorded in the fleet-wide ledger BEFORE routing: even
    // if the item is shed, crashes mid-process, or its journal entry is
    // later lost, restores re-apply it (the "never forgotten" guarantee).
    if (item.kind == FleetItem::Kind::kLifecycle &&
        item.lifecycle_cmd.op == crypto::LifecycleCommand::Op::kRevoke) {
      revocations_.record(item.home, item.client_id,
                          item.lifecycle_cmd.effective_ts);
    }
    return router_->ingest(std::move(item));
  }
  bool ingest_packet(HomeId home, const net::PacketRecord& pkt) {
    return ingest(FleetItem::packet(home, pkt));
  }
  bool ingest_proof(HomeId home, double now, std::string client_id,
                    std::vector<std::uint8_t> payload) {
    return ingest(
        FleetItem::proof(home, now, std::move(client_id), std::move(payload)));
  }
  bool ingest_lifecycle(HomeId home, double now, std::string client_id,
                        crypto::LifecycleCommand cmd) {
    return ingest(
        FleetItem::lifecycle(home, now, std::move(client_id), std::move(cmd)));
  }

  /// Graceful stop: flush the router, close the queues, process every
  /// accepted item, join the workers.
  void drain();
  /// Hard stop: close the queues and discard the backlog (counted). Never
  /// waits on remaining proxy work, so it cannot deadlock against a full
  /// pipeline.
  void abort();
  bool stopped() const { return stopped_; }

  /// Runtime counters. Requires a stopped engine (worker counters are only
  /// safe to read after the join).
  FleetStats stats() const;
  /// Flushes open events on every home proxy and builds the merged report.
  /// Requires a stopped engine.
  FleetReport report();

  /// Every home's correlation fingerprint, merged in shard order (the
  /// SignalSet keeps itself sorted by home id, so the order is cosmetic —
  /// the result is byte-identical for any shard count). Requires a stopped
  /// engine.
  telemetry::SignalSet signals();
  /// Marks correlator-flagged homes on the per-shard rows and copies the
  /// rollups into the totals (FleetStats::render's `flagged` column and
  /// `correlation:` line).
  void annotate_stats(FleetStats& stats, const CorrelationReport& report) const;

  /// Direct access for tests (stopped engine only).
  Shard& shard(std::size_t i) { return *shards_[i]; }

  /// The recovery ledger; nullptr unless config.recovery.enabled.
  Supervisor* supervisor() { return supervisor_.get(); }
  const Supervisor* supervisor() const { return supervisor_.get(); }

  /// Fleet-wide revocation ledger (populated at ingest; re-applied by
  /// supervised restarts).
  const RevocationLedger& revocations() const { return revocations_; }

  /// All per-shard registries merged into one snapshot, plus engine-level
  /// ingest counters and the run's wall time. Requires a stopped engine.
  /// Domain::kSim entries in the snapshot are byte-identical across
  /// fixed-seed runs of the same config (see telemetry/metrics.hpp).
  telemetry::MetricsRegistry merged_metrics() const;
  /// Every shard's trace spans merged in deterministic (start, home, seq)
  /// order. Requires a stopped engine.
  std::vector<telemetry::TraceSpan> merged_trace() const;

 private:
  void require_stopped(const char* op) const;

  FleetConfig config_;
  std::size_t home_count_ = 0;
  HomePartition partition_;
  RevocationLedger revocations_;  // before shards_: restarts read it
  std::unique_ptr<Supervisor> supervisor_;  // before shards_: outlives them
  std::vector<std::unique_ptr<ShardSupervisor>> shard_supervisors_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<IngestRouter> router_;
  bool started_ = false;
  bool stopped_ = false;
  std::chrono::steady_clock::time_point start_time_;
  double wall_seconds_ = 0.0;
};

}  // namespace fiat::fleet
