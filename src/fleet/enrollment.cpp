#include "fleet/enrollment.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fiat::fleet {

namespace {

constexpr std::uint32_t kHelloMagic = 0x45484c4f;  // "EHLO"
constexpr std::uint32_t kProofMagic = 0x45505246;  // "EPRF"

}  // namespace

// ---- RevocationLedger -----------------------------------------------------

void RevocationLedger::record(HomeId home, const std::string& client_id,
                              double effective_ts) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      revocations_.try_emplace({home, client_id}, effective_ts);
  if (!inserted) it->second = std::min(it->second, effective_ts);
}

std::vector<RevocationLedger::Entry> RevocationLedger::for_home(
    HomeId home) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> out;
  // std::map order: (home, client) pairs sorted, so the slice is sorted too.
  for (auto it = revocations_.lower_bound({home, std::string()});
       it != revocations_.end() && it->first.first == home; ++it) {
    out.push_back(Entry{it->first.second, it->second});
  }
  return out;
}

std::size_t RevocationLedger::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return revocations_.size();
}

// ---- EnrollmentAuthenticator ----------------------------------------------

EnrollmentAuthenticator::EnrollmentAuthenticator(
    transport::Network& network, transport::EndpointId id,
    SetupCodeFn setup_code_of, std::span<const std::uint8_t> ticket_key_entropy,
    CommandFn on_command)
    : server_(network, std::move(id), std::move(setup_code_of),
              ticket_key_entropy),
      on_command_(std::move(on_command)) {
  server_.set_on_message([this](const transport::QuicDelivery& delivery) {
    auto cmd = parse_payload(delivery.data);
    if (!cmd) {
      ++malformed_;
      return;
    }
    ++commands_;
    if (on_command_) on_command_(delivery.client_id, *cmd, delivery.receive_time);
  });
}

util::Bytes EnrollmentAuthenticator::encode_hello(const std::string& temp_id) {
  util::ByteWriter w;
  w.u32be(kHelloMagic);
  w.u32be(static_cast<std::uint32_t>(temp_id.size()));
  w.raw(temp_id);
  return w.take();
}

util::Bytes EnrollmentAuthenticator::encode_proof(
    std::span<const std::uint8_t> proof) {
  util::ByteWriter w;
  w.u32be(kProofMagic);
  w.u32be(static_cast<std::uint32_t>(proof.size()));
  w.raw(proof);
  return w.take();
}

std::optional<crypto::LifecycleCommand> EnrollmentAuthenticator::parse_payload(
    std::span<const std::uint8_t> payload) {
  try {
    util::ByteReader r(payload);
    std::uint32_t magic = r.u32be();
    std::uint32_t len = r.u32be();
    if (len > r.remaining()) return std::nullopt;
    crypto::LifecycleCommand cmd;
    if (magic == kHelloMagic) {
      cmd.op = crypto::LifecycleCommand::Op::kEnrollBegin;
      cmd.temp_id = r.str(len);
    } else if (magic == kProofMagic) {
      if (len != 32) return std::nullopt;
      cmd.op = crypto::LifecycleCommand::Op::kEnrollComplete;
      auto raw = r.raw(len);
      cmd.proof.assign(raw.begin(), raw.end());
    } else {
      return std::nullopt;
    }
    if (!r.done()) return std::nullopt;
    return cmd;
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

// ---- EnrollmentSession ----------------------------------------------------

EnrollmentSession::EnrollmentSession(
    transport::Network& network, transport::EndpointId id,
    transport::EndpointId authenticator, std::string client_id,
    std::string temp_id, std::span<const std::uint8_t> setup_code,
    sim::Rng& rng, Config config)
    : network_(network),
      client_id_(std::move(client_id)),
      temp_id_(std::move(temp_id)),
      setup_code_(setup_code.begin(), setup_code.end()),
      client_(network, std::move(id), std::move(authenticator), client_id_,
              setup_code, rng, config.retry),
      config_(config) {}

EnrollmentSession::EnrollmentSession(
    transport::Network& network, transport::EndpointId id,
    transport::EndpointId authenticator, std::string client_id,
    std::string temp_id, std::span<const std::uint8_t> setup_code,
    sim::Rng& rng)
    : EnrollmentSession(network, std::move(id), std::move(authenticator),
                        std::move(client_id), std::move(temp_id), setup_code,
                        rng, Config{}) {}

void EnrollmentSession::start(DoneFn on_done, GaveUpFn on_gave_up) {
  if (started_) throw LogicError("EnrollmentSession: started twice");
  started_ = true;
  on_done_ = std::move(on_done);
  on_gave_up_ = std::move(on_gave_up);
  backoff_ = config_.retry_backoff;
  attempt();
}

void EnrollmentSession::attempt() {
  if (enrolled_ || gave_up_) return;
  ++attempts_;
  if (!client_.connected()) {
    client_.connect([this](double) { send_hello(); },
                    [this] { schedule_retry(); });
  } else if (!hello_acked_) {
    send_hello();
  } else {
    send_proof();
  }
}

void EnrollmentSession::send_hello() {
  client_.send(EnrollmentAuthenticator::encode_hello(temp_id_),
               [this](double) {
                 // The authenticator has the EHLO: its challenge now exists
                 // (and is durable on its side). Answer it.
                 hello_acked_ = true;
                 send_proof();
               },
               [this] { schedule_retry(); });
}

void EnrollmentSession::send_proof() {
  // Both sides derive the challenge independently from the setup code — the
  // EHLO ack is the only signal needed before answering.
  auto challenge =
      crypto::derive_enroll_challenge(setup_code_, client_id_, temp_id_);
  auto proof = crypto::derive_enroll_proof(setup_code_, challenge);
  client_.send(EnrollmentAuthenticator::encode_proof(proof),
               // QuicClient acks report *elapsed* RTT; the done time the
               // caller wants is the absolute sim time the ack landed.
               [this, challenge](double) {
                 if (enrolled_) return;
                 enrolled_ = true;
                 auto key =
                     crypto::derive_credential_key(setup_code_, challenge, 0);
                 credential_key_.assign(key.begin(), key.end());
                 if (on_done_) on_done_(network_.scheduler().now(), credential_key_);
               },
               [this] { schedule_retry(); });
}

void EnrollmentSession::schedule_retry() {
  if (enrolled_ || gave_up_) return;
  if (config_.max_attempts > 0 && attempts_ >= config_.max_attempts) {
    gave_up_ = true;
    if (on_gave_up_) on_gave_up_();
    return;
  }
  double delay = backoff_;
  backoff_ = std::min(backoff_ * 2.0, config_.retry_backoff_max);
  network_.scheduler().after(delay, [this] { attempt(); });
}

}  // namespace fiat::fleet
