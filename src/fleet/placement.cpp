#include "fleet/placement.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fiat::fleet {

std::uint64_t rendezvous_score(NodeId node, HomeId home) {
  std::uint64_t x =
      (static_cast<std::uint64_t>(node) << 32) | static_cast<std::uint64_t>(home);
  // splitmix64 finalizer: full-avalanche, so per-home score order across
  // nodes is effectively an independent random permutation.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

PlacementTable::PlacementTable(std::vector<NodeId> nodes) : alive_(std::move(nodes)) {
  std::sort(alive_.begin(), alive_.end());
  alive_.erase(std::unique(alive_.begin(), alive_.end()), alive_.end());
  if (alive_.empty()) throw LogicError("PlacementTable: no nodes");
}

bool PlacementTable::alive(NodeId node) const {
  return std::binary_search(alive_.begin(), alive_.end(), node);
}

NodeId PlacementTable::natural_owner(HomeId home) const {
  if (alive_.empty()) throw LogicError("PlacementTable: no alive node for home");
  NodeId best = alive_.front();
  std::uint64_t best_score = rendezvous_score(best, home);
  for (std::size_t i = 1; i < alive_.size(); ++i) {
    std::uint64_t score = rendezvous_score(alive_[i], home);
    // Strict '>' with ascending node order: ties (2^-64 events) break to the
    // lowest node id, deterministically.
    if (score > best_score) {
      best = alive_[i];
      best_score = score;
    }
  }
  return best;
}

NodeId PlacementTable::owner_of(HomeId home) const {
  auto it = overrides_.find(home);
  if (it != overrides_.end()) return it->second;
  return natural_owner(home);
}

void PlacementTable::set_override(HomeId home, NodeId node) {
  if (!alive(node)) throw LogicError("PlacementTable: override onto dead node");
  overrides_[home] = node;
}

void PlacementTable::clear_override(HomeId home) { overrides_.erase(home); }

void PlacementTable::remove_node(NodeId node) {
  auto it = std::lower_bound(alive_.begin(), alive_.end(), node);
  if (it == alive_.end() || *it != node) return;
  alive_.erase(it);
  for (auto o = overrides_.begin(); o != overrides_.end();) {
    o = o->second == node ? overrides_.erase(o) : std::next(o);
  }
}

void PlacementTable::add_node(NodeId node) {
  auto it = std::lower_bound(alive_.begin(), alive_.end(), node);
  if (it != alive_.end() && *it == node) return;
  alive_.insert(it, node);
}

}  // namespace fiat::fleet
