// Fleet workload synthesis: N simulated homes built from the gen/ testbed
// device profiles, plus the merged timestamp-ordered packet/proof stream
// that drives the FleetEngine. This is the scaling-trajectory counterpart of
// bench/common.{hpp,cpp}'s per-device traces: instead of 13 carefully
// labeled traces, it mass-produces homes (devices cycle through the ten
// Table-1 profiles, vantage points cycle US/JP/DE/IL) with stable per-home
// RNG sub-streams (sim::Rng::fork(home_id)), so home #742 generates the
// same traffic whether the fleet has 800 or 8,000 homes.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/proxy.hpp"
#include "fleet/home.hpp"
#include "fleet/item.hpp"
#include "gen/attack_director.hpp"

namespace fiat::fleet {

struct FleetScenarioConfig {
  std::size_t homes = 100;
  /// Devices per home, cycling through the testbed profiles (max 10).
  std::size_t devices_per_home = 2;
  double duration_days = 0.03;
  /// Manual-interaction rate override (per device per day); short fleet
  /// traces need a scripted-collection-style rate or no home ever sees a
  /// manual event. Negative = the profile's natural rate.
  double manual_per_day = 24.0;
  std::uint64_t seed = 20260806;
  /// Shorter than the paper's 20 min so short benchmark traces leave the
  /// learning window and exercise the verdict pipeline.
  double bootstrap_duration = 600.0;
  core::FailPolicy policy = core::FailPolicy::kFailClosed;
  /// Emit a signed humanness proof from the home's phone for every manual
  /// interaction (delivered just before the command traffic, as the paper's
  /// §5.3 foreground-capture flow does).
  bool with_proofs = true;
  /// Run every home's rule tables on the seed's string-keyed containers
  /// (RuleTableConfig::legacy_keys): the bench_hotpath baseline and the
  /// golden-equivalence suite's reference configuration.
  bool legacy_keys = false;
  /// ProxyConfig::simd for every home (the CLI's --simd on|off|auto, with
  /// "on" validated against simd::available() at parse time). Pure perf
  /// knob — results are bit-identical either way.
  bool simd = true;
  /// Zipf-skewed per-home load (the cluster rebalancer's workload): home h
  /// gets round(zipf_max_devices / (h+1)^zipf_skew) devices, clamped to
  /// [1, min(zipf_max_devices, 10)], instead of the flat devices_per_home.
  /// Home 0 is the whale, the tail idles at 1 device. 0 = flat (default);
  /// per-home traffic still depends only on the home id, so home #7 sends
  /// identical traffic at any fleet size.
  double zipf_skew = 0.0;
  std::size_t zipf_max_devices = 8;
  /// Adversarial campaign riding the fleet (gen::AttackDirector). Disabled
  /// by default; benign homes generate byte-identical traffic whether the
  /// campaign is on or off (the director draws from its own seed only).
  gen::CampaignConfig attack;

  /// Credential-lifecycle churn riding the fleet (DESIGN.md §16). All draws
  /// come from a dedicated per-home sub-stream (home_rng.fork(9000)), so
  /// benign packet traffic is byte-identical with churn on or off.
  struct ChurnConfig {
    /// Fraction of homes whose phone is NOT pre-provisioned: it enrolls
    /// mid-bootstrap via EnrollBegin/EnrollComplete lifecycle items.
    double join_fraction = 0.0;
    /// Sim-seconds between credential rotations per home; 0 disables.
    /// Rotations start after the bootstrap window.
    double rotate_every = 0.0;
    /// Fraction of homes whose phone is revoked mid-trace (stolen phone:
    /// benign proofs stop, labeled attacker probes continue).
    double revoke_fraction = 0.0;
    /// Revocation point as a fraction of the trace duration.
    double revoke_at_frac = 0.6;
    /// Propagation bound: the revoke command lands at revoke_ts but takes
    /// effect at revoke_ts + revocation_window. Probes inside the window may
    /// still verify (that exposure is the measured revocation latency);
    /// post-window accepts must be zero.
    double revocation_window = 30.0;

    bool enabled() const {
      return join_fraction > 0.0 || rotate_every > 0.0 ||
             revoke_fraction > 0.0;
    }
  };
  ChurnConfig churn;
};

/// Ground truth for one injected command attempt.
struct AttackCommandTruth {
  HomeId home = 0;
  std::int32_t cmd = -1;
  gen::AttackType type = gen::AttackType::kAccountCompromise;
  std::uint64_t payload_packets = 0;
};

/// The campaign's ground truth, accumulated at synthesis time. Benches join
/// this against the fleet's aggregated AttackLedger: label coverage is 100%
/// by construction when ledger totals equal these.
struct AttackTruth {
  std::uint64_t packets = 0;  // labeled attack packets injected
  std::uint64_t proofs = 0;   // labeled attack proof deliveries
  std::array<std::uint64_t, static_cast<std::size_t>(gen::kAttackTypeCount)>
      packets_by_class{};
  std::vector<AttackCommandTruth> commands;
  std::vector<HomeId> attacked_homes;
  std::vector<HomeId> sybil_homes;  // appended after the benign fleet
};

/// Ground truth for one churn-affected home, accumulated at synthesis time.
/// bench_churn joins this against the per-home proxy counters: zero benign
/// lockouts means every benign proof listed here was accepted, and bounded
/// revocation latency means no probe at/after effective_ts ever verified.
struct ChurnHomeTruth {
  HomeId home = 0;
  bool enrolls = false;       // phone joined via enrollment (not pre-paired)
  std::size_t rotations = 0;  // rotation commands scheduled
  bool revoked = false;
  double revoke_ts = 0.0;     // when the revoke command lands
  double effective_ts = 0.0;  // revoke_ts + revocation_window
  std::uint64_t benign_proofs = 0;      // sent with the then-current credential
  std::uint64_t probes = 0;             // kRevokedCredential labeled proofs
  std::uint64_t probes_in_window = 0;   // delivered before effective_ts
};

/// Fleet-wide churn ground truth.
struct ChurnTruth {
  std::vector<ChurnHomeTruth> homes;  // churn-affected homes only, by id
  std::uint64_t lifecycle_commands = 0;  // enroll/rotate/revoke items
  std::uint64_t enrollments = 0;
  std::uint64_t rotations = 0;
  std::uint64_t revocations = 0;
  double revocation_window = 0.0;
};

struct FleetScenario {
  std::vector<HomeSpec> homes;
  /// Merged stream, sorted by timestamp; ties keep per-home relative order,
  /// so replaying `items` (or any per-home filtered subsequence) is
  /// deterministic.
  std::vector<FleetItem> items;
  std::size_t packet_count = 0;
  std::size_t proof_count = 0;
  std::size_t lifecycle_count = 0;
  AttackTruth attack;
  ChurnTruth churn;
};

FleetScenario make_fleet_scenario(const FleetScenarioConfig& config);

}  // namespace fiat::fleet
