// One simulated home inside the fleet: its own FiatProxy, device set,
// keystore (inside the proxy), and — by contract — its own RNG sub-stream
// (sim::Rng::fork(home_id)) wherever the workload generator needs
// randomness. Homes are fully isolated from each other; the fleet runtime
// exploits that to process them on independent shard threads without any
// cross-home synchronization.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/proxy.hpp"
#include "core/report.hpp"

namespace fiat::fleet {

using HomeId = std::uint32_t;

/// Declarative description of one home; the fleet (and the determinism
/// tests, which must rebuild the exact same proxy outside the engine)
/// construct proxies from this via make_home_proxy().
struct HomeSpec {
  HomeId id = 0;
  core::ProxyConfig proxy;
  std::vector<core::ProxyDevice> devices;
  struct Phone {
    std::string client_id;
    /// Static pairing key (enroll == false) or out-of-band setup code the
    /// lifecycle enrollment derives the credential from (enroll == true).
    std::vector<std::uint8_t> psk;
    /// When true the phone is NOT pre-provisioned: make_home_proxy registers
    /// `psk` as the setup code and no proof verifies until an EnrollBegin/
    /// EnrollComplete pair lands (crypto/lifecycle.hpp).
    bool enroll = false;
  };
  std::vector<Phone> phones;
  std::vector<std::pair<net::Ipv4Addr, net::Ipv4Addr>> dag_edges;
};

/// Builds the proxy a HomeSpec describes. Shared by FleetEngine and by the
/// determinism tests, so "fleet with shards=1" and "direct FiatProxy" start
/// from byte-identical state.
core::FiatProxy make_home_proxy(const HomeSpec& spec,
                                const core::HumannessVerifier& humanness);

class Home {
 public:
  Home(const HomeSpec& spec, const core::HumannessVerifier& humanness)
      : id_(spec.id), proxy_(make_home_proxy(spec, humanness)) {}

  Home(Home&&) = default;
  Home& operator=(Home&&) = default;

  HomeId id() const { return id_; }
  core::FiatProxy& proxy() { return proxy_; }
  const core::FiatProxy& proxy() const { return proxy_; }

 private:
  HomeId id_;
  core::FiatProxy proxy_;
};

}  // namespace fiat::fleet
