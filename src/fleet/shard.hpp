// A Shard owns a contiguous range of homes and processes their items on one
// worker thread, strictly in arrival (= enqueue) order. Because the router
// gives every home to exactly one shard and the queue is FIFO, each home
// sees a total order over its own packets and proofs — the same order a
// single-proxy deployment would see — while homes on different shards
// proceed with no ordering relationship at all. That is the entire
// determinism story: per-home state only ever touched by one thread, fed in
// timestamp order.
#pragma once

#include <atomic>
#include <cstddef>
#include <span>
#include <thread>
#include <vector>

#include "fleet/bounded_queue.hpp"
#include "fleet/home.hpp"
#include "fleet/item.hpp"
#include "fleet/stats.hpp"
#include "telemetry/signals.hpp"
#include "telemetry/sink.hpp"

namespace fiat::fleet {

class ShardSupervisor;

class Shard {
 public:
  /// `homes` is this shard's contiguous slice of the fleet (sorted by id).
  /// `trace_capacity` bounds this shard's telemetry trace ring (0 disables
  /// tracing). `supervisor`, when set, wraps every item in the recovery path
  /// (fleet/supervisor.hpp); it must outlive the shard.
  Shard(std::vector<Home> homes, std::size_t queue_capacity, FullPolicy policy,
        std::size_t trace_capacity = 8192,
        ShardSupervisor* supervisor = nullptr);
  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  void start();
  /// Closes the queue and joins the worker. With `drain` every item accepted
  /// before the close is processed; without it the backlog is popped but
  /// skipped (counted as discarded), so stop never waits on proxy work.
  void stop(bool drain);

  BoundedQueue<FleetItem>& queue() { return queue_; }

  /// Worker-side processing of one item; public so a shards=1 caller (or a
  /// test) can run the identical code path synchronously.
  void process(const FleetItem& item);

  /// Worker-side batched processing (DESIGN.md §15): groups the slice per
  /// home (per-home arrival order preserved — homes are independent, so
  /// cross-home reordering is unobservable), hands each home's contiguous
  /// packet runs to FiatProxy::process_batch, and processes proofs scalar
  /// between runs. Byte-identical bookkeeping to calling process() per item.
  void process_batch(std::span<const FleetItem> items);

  /// Engine knob (--no-batch): when false the worker loop processes drained
  /// batches item by item through the scalar path. Set before start().
  void set_batch(bool enabled) { batch_enabled_ = enabled; }

  std::vector<Home>& homes() { return homes_; }
  const std::vector<Home>& homes() const { return homes_; }
  Home* find_home(HomeId id);

  /// Replaces this shard's homes wholesale (supervisor restart path). Ids
  /// must match the original slice; telemetry is re-wired to the shard's
  /// sink. Worker-thread-only once started.
  void adopt_homes(std::vector<Home> homes);

  /// Snapshot; includes queue stats. Worker-owned counters are only
  /// consistent after the join — calling this on a started-but-not-stopped
  /// shard throws fiat::LogicError (it would read torn stats).
  ShardStats stats() const;

  /// This shard's homes' attack ledgers merged (campaign grading). Same
  /// stopped-state rule as stats().
  core::AttackLedger attack_ledger() const;

  /// Proofs this shard's homes rejected for lifecycle reasons (revoked /
  /// expired / not-yet-enrolled credentials). Same stopped-state rule as
  /// stats().
  std::size_t lifecycle_rejected_proofs() const;

  /// This shard's homes' correlation fingerprints (fleet/signal_probe.hpp),
  /// sorted by home id. Flushes open events first so an escalated event in
  /// flight has committed its costume signatures. Same stopped-state rule as
  /// stats().
  telemetry::SignalSet signals();

  /// This shard's thread-owned telemetry sink (its homes' proxies record
  /// into it too). Written by the worker; same stopped-state rule as
  /// stats().
  telemetry::Sink& telemetry() {
    require_quiescent("telemetry()");
    return sink_;
  }
  const telemetry::Sink& telemetry() const {
    require_quiescent("telemetry()");
    return sink_;
  }

 private:
  void run();
  /// Throws unless the worker is not running (never started, or joined).
  void require_quiescent(const char* op) const;

  std::vector<Home> homes_;
  std::vector<HomeId> home_ids_;  // sorted, parallel lookup for find_home
  BoundedQueue<FleetItem> queue_;
  telemetry::Sink sink_;
  telemetry::Histogram* tm_queue_wait_ = nullptr;  // kWall
  telemetry::Histogram* tm_batch_items_ = nullptr;  // kWall
  std::thread worker_;
  ShardSupervisor* supervisor_ = nullptr;
  bool batch_enabled_ = true;
  // Reusable batch scratch (worker-owned). Groups are grow-only so the
  // per-home index vectors keep their capacity across batches.
  struct HomeGroup {
    HomeId home = 0;
    std::vector<std::uint32_t> idx;
  };
  std::vector<HomeGroup> batch_groups_;
  std::vector<net::PacketRecord> batch_pkts_;
  std::vector<core::AttackLabel> batch_labels_;
  bool started_ = false;
  bool stopped_ = false;  // worker joined; counters safe to read
  // Worker-owned counters: written only by the worker thread (or by the
  // owner before start / after join), read after join.
  std::size_t packets_ = 0;
  std::size_t proofs_ = 0;
  std::size_t lifecycle_ops_ = 0;
  std::size_t discarded_ = 0;
  double busy_seconds_ = 0.0;
  // Set (under the queue's closed flag ordering) before a no-drain stop.
  std::atomic<bool> discard_{false};
};

}  // namespace fiat::fleet
