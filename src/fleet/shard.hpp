// A Shard owns a contiguous range of homes and processes their items on one
// worker thread, strictly in arrival (= enqueue) order. Because the router
// gives every home to exactly one shard and the queue is FIFO, each home
// sees a total order over its own packets and proofs — the same order a
// single-proxy deployment would see — while homes on different shards
// proceed with no ordering relationship at all. That is the entire
// determinism story: per-home state only ever touched by one thread, fed in
// timestamp order.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "fleet/bounded_queue.hpp"
#include "fleet/home.hpp"
#include "fleet/item.hpp"
#include "fleet/stats.hpp"
#include "telemetry/sink.hpp"

namespace fiat::fleet {

class Shard {
 public:
  /// `homes` is this shard's contiguous slice of the fleet (sorted by id).
  /// `trace_capacity` bounds this shard's telemetry trace ring (0 disables
  /// tracing).
  Shard(std::vector<Home> homes, std::size_t queue_capacity, FullPolicy policy,
        std::size_t trace_capacity = 8192);
  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  void start();
  /// Closes the queue and joins the worker. With `drain` every item accepted
  /// before the close is processed; without it the backlog is popped but
  /// skipped (counted as discarded), so stop never waits on proxy work.
  void stop(bool drain);

  BoundedQueue<FleetItem>& queue() { return queue_; }

  /// Worker-side processing of one item; public so a shards=1 caller (or a
  /// test) can run the identical code path synchronously.
  void process(const FleetItem& item);

  std::vector<Home>& homes() { return homes_; }
  const std::vector<Home>& homes() const { return homes_; }
  Home* find_home(HomeId id);

  /// Snapshot; includes queue stats. Only consistent after stop().
  ShardStats stats() const;

  /// This shard's thread-owned telemetry sink (its homes' proxies record
  /// into it too). Written by the worker; only consistent after stop().
  telemetry::Sink& telemetry() { return sink_; }
  const telemetry::Sink& telemetry() const { return sink_; }

 private:
  void run();

  std::vector<Home> homes_;
  std::vector<HomeId> home_ids_;  // sorted, parallel lookup for find_home
  BoundedQueue<FleetItem> queue_;
  telemetry::Sink sink_;
  telemetry::Histogram* tm_queue_wait_ = nullptr;  // kWall
  telemetry::Histogram* tm_batch_items_ = nullptr;  // kWall
  std::thread worker_;
  bool started_ = false;
  // Worker-owned counters: written only by the worker thread (or by the
  // owner before start / after join), read after join.
  std::size_t packets_ = 0;
  std::size_t proofs_ = 0;
  std::size_t discarded_ = 0;
  double busy_seconds_ = 0.0;
  // Set (under the queue's closed flag ordering) before a no-drain stop.
  std::atomic<bool> discard_{false};
};

}  // namespace fiat::fleet
