#include "sim/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace fiat::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

/// Non-mutating splitmix64 finalizer (Stafford mix13): a bijective 64-bit
/// hash, used to derive keyed sub-stream seeds.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  // Seed the four 64-bit words with splitmix64 as recommended by the
  // xoshiro authors; guards against the all-zero state.
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw LogicError("uniform_int: lo > hi");
  std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  std::uint64_t limit = (~0ULL / range) * range;
  std::uint64_t v;
  do {
    v = next();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  have_spare_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::exponential(double mean) {
  if (mean <= 0) throw LogicError("exponential: mean must be > 0");
  return -mean * std::log(1.0 - uniform());
}

bool Rng::chance(double p) { return uniform() < p; }

int Rng::poisson(double mean) {
  if (mean < 0) throw LogicError("poisson: mean must be >= 0");
  if (mean == 0) return 0;
  double limit = std::exp(-mean);
  double prod = uniform();
  int n = 0;
  while (prod > limit) {
    prod *= uniform();
    ++n;
  }
  return n;
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

std::size_t Rng::weighted_index(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0) throw LogicError("weighted_index: non-positive total weight");
  double target = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

void Rng::fill_bytes(std::span<std::uint8_t> out) {
  std::size_t i = 0;
  while (i < out.size()) {
    std::uint64_t v = next();
    for (int b = 0; b < 8 && i < out.size(); ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(v >> (8 * b));
    }
  }
}

Rng Rng::fork() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

Rng Rng::fork(std::uint64_t stream_id) const {
  // Two rounds of a bijective mixer over (seed, stream_id). The odd
  // constants decorrelate the child-seed space from the parent's own seed
  // (stream_id 0 must not reproduce the parent), and because only seed_ is
  // read, the derivation is independent of the parent's stream position.
  std::uint64_t child =
      mix64(mix64(seed_ ^ 0xa0761d6478bd642fULL) + stream_id * 0x9e3779b97f4a7c15ULL);
  return Rng(child);
}

}  // namespace fiat::sim
