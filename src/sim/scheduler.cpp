#include "sim/scheduler.hpp"

#include "util/error.hpp"

namespace fiat::sim {

void Scheduler::at(TimePoint when, Action action) {
  if (!action) throw LogicError("scheduler: empty action");
  if (when < now_) when = now_;
  queue_.push(Entry{when, seq_++, std::move(action)});
}

void Scheduler::after(Duration delay, Action action) {
  if (delay < 0) delay = 0;
  at(now_ + delay, std::move(action));
}

std::size_t Scheduler::run() {
  std::size_t n = 0;
  while (!queue_.empty()) {
    // Copy out before pop so the action can schedule more events.
    Entry e = queue_.top();
    queue_.pop();
    now_ = e.when;
    e.action();
    ++n;
  }
  return n;
}

std::size_t Scheduler::run_until(TimePoint deadline) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Entry e = queue_.top();
    queue_.pop();
    now_ = e.when;
    e.action();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace fiat::sim
