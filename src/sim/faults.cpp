#include "sim/faults.hpp"

#include <algorithm>

namespace fiat::sim {

double GilbertElliott::stationary_loss() const {
  double p = p_good_to_bad, r = p_bad_to_good;
  if (p <= 0.0) return loss_good;
  double frac_bad = p / (p + r);
  return (1.0 - frac_bad) * loss_good + frac_bad * loss_bad;
}

bool FaultPlan::injects_anything() const {
  return burst.p_good_to_bad > 0.0 || burst.loss_good > 0.0 ||
         duplicate_prob > 0.0 || reorder_prob > 0.0 || corrupt_prob > 0.0 ||
         !blackouts.empty() || clock_skew > 0.0;
}

FaultPlan FaultPlan::none() {
  FaultPlan p;
  p.name = "none";
  return p;
}

FaultPlan FaultPlan::bursty(double stationary_loss, double mean_burst_len) {
  // Solve for p given r = 1/mean_burst_len, loss_bad = 1, loss_good = 0:
  // stationary_loss = p/(p+r)  =>  p = r * L / (1 - L).
  FaultPlan plan;
  plan.name = "bursty";
  double l = std::clamp(stationary_loss, 0.0, 0.95);
  double r = 1.0 / std::max(1.0, mean_burst_len);
  plan.burst.p_bad_to_good = r;
  plan.burst.p_good_to_bad = l >= 1.0 ? 1.0 : r * l / (1.0 - l);
  plan.burst.loss_good = 0.0;
  plan.burst.loss_bad = 1.0;
  return plan;
}

FaultPlan FaultPlan::periodic_blackout(double first, double period, double dark,
                                       double horizon) {
  FaultPlan plan;
  plan.name = "blackout";
  for (double t = first; t < horizon; t += period) {
    plan.blackouts.push_back({t, t + dark});
  }
  return plan;
}

FaultPlan FaultPlan::chaos() {
  FaultPlan plan = bursty(0.10, 4.0);
  plan.name = "chaos";
  plan.duplicate_prob = 0.05;
  plan.reorder_prob = 0.10;
  plan.reorder_lag = 0.25;
  plan.corrupt_prob = 0.02;
  return plan;
}

FaultDecision FaultInjector::on_datagram(double now, Rng& rng) {
  FaultDecision d;

  // Blackout beats everything: nothing leaves the host during an outage.
  for (const auto& w : plan_.blackouts) {
    if (w.contains(now)) {
      ++dropped_blackout_;
      d.drop = true;
      return d;
    }
  }

  // Advance the Gilbert–Elliott chain once per datagram, then roll loss
  // under the current state.
  if (plan_.burst.p_good_to_bad > 0.0 || plan_.burst.loss_good > 0.0) {
    if (bad_state_) {
      if (rng.chance(plan_.burst.p_bad_to_good)) bad_state_ = false;
    } else {
      if (rng.chance(plan_.burst.p_good_to_bad)) bad_state_ = true;
    }
    double loss = bad_state_ ? plan_.burst.loss_bad : plan_.burst.loss_good;
    if (rng.chance(loss)) {
      ++dropped_burst_;
      d.drop = true;
      return d;
    }
  }

  if (plan_.corrupt_prob > 0.0 && rng.chance(plan_.corrupt_prob)) {
    ++corrupted_;
    d.corrupt = true;
  }
  if (plan_.reorder_prob > 0.0 && rng.chance(plan_.reorder_prob)) {
    ++reordered_;
    d.extra_delay += plan_.reorder_lag;
  }
  if (plan_.duplicate_prob > 0.0 && rng.chance(plan_.duplicate_prob)) {
    ++duplicated_;
    d.duplicate = true;
    d.duplicate_delay = plan_.duplicate_lag;
  }
  d.extra_delay += std::max(0.0, plan_.clock_skew);
  return d;
}

void corrupt_bytes(std::vector<std::uint8_t>& data, Rng& rng) {
  if (data.empty()) return;
  int flips = static_cast<int>(rng.uniform_int(1, 4));
  for (int i = 0; i < flips; ++i) {
    std::size_t pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(data.size()) - 1));
    data[pos] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
  }
}

ShardFaultPlan ShardFaultPlan::crash_once_at(std::uint64_t item) {
  ShardFaultPlan plan;
  plan.kind = Kind::kCrashOnce;
  plan.at_item = item;
  return plan;
}

ShardFaultPlan ShardFaultPlan::crash_home_at(std::uint32_t home,
                                             std::uint64_t item) {
  ShardFaultPlan plan = crash_once_at(item);
  plan.per_home = true;
  plan.home = home;
  return plan;
}

ShardFaultPlan ShardFaultPlan::poison(std::uint32_t home, std::uint64_t item) {
  ShardFaultPlan plan;
  plan.kind = Kind::kPoison;
  plan.at_item = item;
  plan.per_home = true;
  plan.home = home;
  return plan;
}

NodeFaultPlan NodeFaultPlan::kill_at(std::uint32_t node, double at_time,
                                     double detect_after) {
  NodeFaultPlan plan;
  plan.node = node;
  plan.at_time = at_time;
  plan.detect_after = detect_after < 0.0 ? 0.0 : detect_after;
  return plan;
}

void ShardFaultInjector::on_item(std::uint32_t home, std::uint64_t home_ordinal,
                                 std::uint64_t shard_ordinal) {
  if (!plan_.active()) return;
  if (plan_.kind == ShardFaultPlan::Kind::kCrashOnce && latched_) return;
  std::uint64_t ordinal = plan_.per_home ? home_ordinal : shard_ordinal;
  if (plan_.per_home && home != plan_.home) return;
  if (ordinal != plan_.at_item) return;
  ++fired_;
  if (plan_.kind == ShardFaultPlan::Kind::kCrashOnce) latched_ = true;
  throw InjectedCrash("injected shard crash at item " +
                      std::to_string(plan_.at_item) +
                      (plan_.per_home ? " of home " + std::to_string(home) : ""));
}

}  // namespace fiat::sim
