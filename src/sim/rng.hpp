// Deterministic random number generation for all simulations.
//
// Every experiment in this repository must be reproducible bit-for-bit from a
// seed, so we implement xoshiro256** (public-domain algorithm by Blackman &
// Vigna) instead of relying on implementation-defined std::default_random_engine
// behaviour, and we implement our own distributions because libstdc++'s
// std::normal_distribution etc. are not portable across standard libraries.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace fiat::sim {

/// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box-Muller; mean/stddev variants.
  double normal();
  double normal(double mean, double stddev);
  /// Exponential with the given mean (not rate).
  double exponential(double mean);
  /// Bernoulli trial.
  bool chance(double p);
  /// Poisson-distributed count (Knuth's method; fine for small means).
  int poisson(double mean);
  /// Log-normal parameterized by the mean/sigma of the underlying normal.
  double lognormal(double mu, double sigma);
  /// Picks an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(std::span<const double> weights);
  /// Fills `out` with random bytes (for keys/nonces in tests).
  void fill_bytes(std::span<std::uint8_t> out);

  /// Derives an independent child generator; used to give each simulated
  /// device its own stream so adding a device does not perturb others.
  /// NOTE: advances this generator, so the child depends on how much of the
  /// parent stream was already consumed. Prefer fork(stream_id) when the
  /// child must be stable across construction-order changes.
  Rng fork();

  /// Keyed sub-stream derivation: the child seed is a splitmix64-style hash
  /// of (construction seed, stream_id), so `rng.fork(home_id)` yields the
  /// same stream no matter how many values were drawn from the parent or in
  /// which order homes are built. Distinct stream_ids give streams that do
  /// not collide in practice (regression-tested over 10k ids), and no child
  /// equals the parent stream.
  Rng fork(std::uint64_t stream_id) const;

  /// The seed this generator was constructed with (sub-stream derivations
  /// key off it).
  std::uint64_t seed() const { return seed_; }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t seed_ = 0;
  std::uint64_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace fiat::sim
