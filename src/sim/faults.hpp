// Fault-injection for the simulated network (hostile-network evaluation).
//
// The paper's viability argument (§5.3, §6, Table 7) assumes humanness
// proofs reach the proxy in time over lossy home WiFi and heavy-tailed
// mobile paths. Independent per-datagram loss (NetPath::sample_loss) is too
// kind a model: real access networks lose packets in *bursts* (interference,
// handovers), duplicate them (link-layer retransmit races), reorder them,
// corrupt payloads, and go entirely dark for seconds at a time. A FaultPlan
// describes such a regime declaratively; a FaultInjector holds the per-path
// mutable state (the Gilbert–Elliott channel state) and is consulted by the
// Network layer once per datagram. Everything is driven by the shared sim
// Rng, so a fault scenario is reproducible bit-for-bit from a seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/rng.hpp"

namespace fiat::sim {

/// Two-state Gilbert–Elliott loss channel: a Markov chain alternating
/// between a "good" state (low loss) and a "bad" state (high loss). With
/// p_good_to_bad = p and p_bad_to_good = r, the chain spends r/(p+r) of its
/// time good, and bad bursts have geometric length with mean 1/r datagrams.
struct GilbertElliott {
  double p_good_to_bad = 0.0;  // per-datagram transition probability
  double p_bad_to_good = 1.0;
  double loss_good = 0.0;      // loss probability while in the good state
  double loss_bad = 1.0;       // loss probability while in the bad state

  /// Long-run fraction of datagrams lost (stationary average).
  double stationary_loss() const;
};

/// One scheduled total outage: every datagram sent with start <= t < end is
/// dropped (the router rebooted, the uplink flapped, DHCP renewed, ...).
struct BlackoutWindow {
  double start = 0.0;
  double end = 0.0;
  bool contains(double t) const { return t >= start && t < end; }
};

/// Declarative description of a hostile-network regime for one directed
/// path. Default-constructed plans inject nothing.
struct FaultPlan {
  std::string name = "none";

  /// Burst loss; leave at defaults (p_good_to_bad = 0) for no burst loss.
  GilbertElliott burst;
  /// Independent duplication probability (the duplicate is delivered too,
  /// after `duplicate_lag` extra seconds).
  double duplicate_prob = 0.0;
  double duplicate_lag = 0.05;
  /// Probability a datagram is held back `reorder_lag` extra seconds, which
  /// lets later datagrams overtake it.
  double reorder_prob = 0.0;
  double reorder_lag = 0.2;
  /// Probability the payload is corrupted in flight (random byte flips; an
  /// AEAD/MAC layer above must treat this exactly like loss).
  double corrupt_prob = 0.0;
  /// Total outages, consulted against send time.
  std::vector<BlackoutWindow> blackouts;
  /// Constant one-way clock skew of the receiving side (seconds, >= 0 after
  /// clamping): models a receiver whose clock runs behind the sender's, so
  /// everything on this path appears `clock_skew` late.
  double clock_skew = 0.0;

  bool injects_anything() const;

  // -- canned regimes used by tests and bench_fault_matrix ------------------
  /// No faults at all (explicit baseline).
  static FaultPlan none();
  /// Gilbert–Elliott burst loss with the given stationary loss rate and
  /// mean burst length (in datagrams).
  static FaultPlan bursty(double stationary_loss, double mean_burst_len);
  /// Periodic total outages: `dark` seconds dark every `period` seconds,
  /// starting at `first`, until `horizon`.
  static FaultPlan periodic_blackout(double first, double period, double dark,
                                     double horizon);
  /// Everything at once: moderate bursts + duplication + reordering +
  /// corruption (the "hostile home WiFi" kitchen sink).
  static FaultPlan chaos();
};

/// What the injector decided for one datagram.
struct FaultDecision {
  bool drop = false;
  bool corrupt = false;
  bool duplicate = false;
  double extra_delay = 0.0;      // reorder hold-back + clock skew
  double duplicate_delay = 0.0;  // extra delay of the duplicate copy
};

/// Per-path mutable fault state. The Network owns one per directed path
/// that has a plan installed and consults it once per send() in send order,
/// which keeps the Gilbert–Elliott chain (and therefore the whole run)
/// deterministic under a fixed seed.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  /// Rolls the fates of one datagram sent at time `now`.
  FaultDecision on_datagram(double now, Rng& rng);

  const FaultPlan& plan() const { return plan_; }
  bool in_bad_state() const { return bad_state_; }

  // -- health counters ------------------------------------------------------
  std::size_t dropped_burst() const { return dropped_burst_; }
  std::size_t dropped_blackout() const { return dropped_blackout_; }
  std::size_t duplicated() const { return duplicated_; }
  std::size_t reordered() const { return reordered_; }
  std::size_t corrupted() const { return corrupted_; }

 private:
  FaultPlan plan_;
  bool bad_state_ = false;
  std::size_t dropped_burst_ = 0;
  std::size_t dropped_blackout_ = 0;
  std::size_t duplicated_ = 0;
  std::size_t reordered_ = 0;
  std::size_t corrupted_ = 0;
};

/// Flips 1-4 random bytes of `data` in place (no-op on empty payloads).
void corrupt_bytes(std::vector<std::uint8_t>& data, Rng& rng);

// ---- shard-abort faults -----------------------------------------------------
//
// Crash injection for the fleet runtime's supervision layer. Unlike the
// datagram faults above, these are not probabilistic: a plan names the exact
// item ordinal at which the worker throws, so a recovery scenario is
// reproducible without an Rng and identical across shard counts (per-home
// ordinals do not depend on how homes are packed onto shards).

/// Thrown by ShardFaultInjector to simulate a shard worker crash (a proxy
/// bug, a poisoned input, an OOM kill...). The supervisor treats any
/// exception escaping item processing the same way; this type only exists so
/// tests can tell injected crashes from real ones.
class InjectedCrash : public std::runtime_error {
 public:
  explicit InjectedCrash(const std::string& what) : std::runtime_error(what) {}
};

/// Declarative crash plan for one shard worker. Ordinals are 1-based counts
/// of items entering processing; `per_home` counts only the target home's
/// items (stable across shard counts), otherwise the shard-global item count
/// is used.
struct ShardFaultPlan {
  enum class Kind : std::uint8_t {
    kNone,
    kCrashOnce,  // throw once at the ordinal, then never again (transient)
    kPoison,     // throw EVERY time the ordinal comes up (deterministic
                 // poison item: retries re-crash until quarantined)
  };

  Kind kind = Kind::kNone;
  std::uint64_t at_item = 0;  // 1-based; 0 disables the plan
  bool per_home = false;
  std::uint32_t home = 0;  // target home when per_home

  bool active() const { return kind != Kind::kNone && at_item > 0; }

  static ShardFaultPlan none() { return {}; }
  /// Transient crash at the shard-global Nth item.
  static ShardFaultPlan crash_once_at(std::uint64_t item);
  /// Transient crash at home `home`'s Nth item.
  static ShardFaultPlan crash_home_at(std::uint32_t home, std::uint64_t item);
  /// Deterministic poison: home `home`'s Nth item crashes on every attempt.
  static ShardFaultPlan poison(std::uint32_t home, std::uint64_t item);
};

// ---- whole-node faults ------------------------------------------------------
//
// Failure injection one level above the shard crashes: an entire proxy node
// of the cluster tier (fleet/cluster.hpp) dies mid-trace. Like the shard
// plans this is declarative and non-probabilistic — the kill is keyed to sim
// time, so a failover scenario replays bit-for-bit regardless of thread
// scheduling or node count.

/// One scheduled node death. The control plane routes around the corpse only
/// after `detect_after` sim seconds (failure detection + re-placement is not
/// free); items addressed to the dead node's homes inside that window are
/// lost, which is exactly the exposure bench_cluster measures.
struct NodeFaultPlan {
  std::uint32_t node = 0;
  double at_time = 0.0;      // sim time of the kill; <= 0 disables the plan
  double detect_after = 0.0; // sim seconds before failover re-placement

  bool active() const { return at_time > 0.0; }

  static NodeFaultPlan kill_at(std::uint32_t node, double at_time,
                               double detect_after = 0.0);
};

/// Per-shard mutable crash state. Owned by the shard's supervisor and — like
/// every per-home structure — touched only by the worker thread. The
/// kCrashOnce latch survives recovery: a restarted worker must not re-fire a
/// transient crash even though lossy recovery can rewind item ordinals.
class ShardFaultInjector {
 public:
  explicit ShardFaultInjector(ShardFaultPlan plan = {}) : plan_(plan) {}

  /// Consulted once per item before processing; throws InjectedCrash when
  /// the plan fires for (home, home_ordinal, shard_ordinal).
  void on_item(std::uint32_t home, std::uint64_t home_ordinal,
               std::uint64_t shard_ordinal);

  const ShardFaultPlan& plan() const { return plan_; }
  std::size_t fired() const { return fired_; }

 private:
  ShardFaultPlan plan_;
  bool latched_ = false;  // kCrashOnce already fired
  std::size_t fired_ = 0;
};

}  // namespace fiat::sim
