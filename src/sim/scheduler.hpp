// Discrete-event scheduler.
//
// All latency experiments (Table 7) and the QuicLite transport run on this
// scheduler: components schedule closures at absolute simulated times, and
// run() drains the queue in time order. Time is a double in seconds since
// simulation start; ties are broken by insertion order so runs are
// deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace fiat::sim {

using TimePoint = double;  // seconds since simulation start
using Duration = double;   // seconds

class Scheduler {
 public:
  using Action = std::function<void()>;

  /// Current simulated time; advances only inside run()/run_until().
  TimePoint now() const { return now_; }

  /// Schedules `action` at absolute time `when` (>= now, else clamped to now).
  void at(TimePoint when, Action action);
  /// Schedules `action` `delay` seconds from now.
  void after(Duration delay, Action action);

  /// Runs events until the queue is empty. Returns number of events executed.
  std::size_t run();
  /// Runs events with time <= deadline; pending later events remain queued.
  std::size_t run_until(TimePoint deadline);

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  TimePoint now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace fiat::sim
