#include "telemetry/export.hpp"

#include <cstdio>

namespace fiat::telemetry {

namespace {

// Matches the %.6g the Json dumper uses, so Prometheus and JSON exports of
// the same histogram show the same digits.
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

util::Json histogram_json(const Histogram& h) {
  util::Json out = util::Json::object()
                       .put("count", static_cast<std::size_t>(h.count()))
                       .put("sum", h.sum())
                       .put("min", h.min())
                       .put("max", h.max())
                       .put("mean", h.mean())
                       .put("p50", h.quantile(0.50))
                       .put("p95", h.quantile(0.95))
                       .put("p99", h.quantile(0.99));
  util::Json buckets = util::Json::array();
  auto bounds = Histogram::bounds();
  auto counts = h.buckets();
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;  // only occupied buckets; keeps docs small
    util::Json bucket = util::Json::object();
    if (i < bounds.size()) {
      bucket.put("le", bounds[i]);
    } else {
      bucket.put("le", "+Inf");
    }
    bucket.put("count", static_cast<std::size_t>(counts[i]));
    buckets.push(std::move(bucket));
  }
  out.put("buckets", std::move(buckets));
  return out;
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted/hyphenated names
/// map onto '_'.
std::string prom_name(const std::string& name) {
  std::string out = "fiat_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

util::Json metrics_json(const MetricsRegistry& registry, bool include_wall) {
  auto keep = [include_wall](Domain d) {
    return include_wall || d == Domain::kSim;
  };

  util::Json counters = util::Json::object();
  for (const auto& [name, entry] : registry.counters()) {
    if (!keep(entry.first)) continue;
    counters.put(name, util::Json::object()
                           .put("domain", domain_name(entry.first))
                           .put("value", static_cast<std::size_t>(
                                             entry.second.value())));
  }

  util::Json gauges = util::Json::object();
  for (const auto& [name, entry] : registry.gauges()) {
    if (!keep(entry.first)) continue;
    gauges.put(name, util::Json::object()
                         .put("domain", domain_name(entry.first))
                         .put("value", entry.second.value()));
  }

  util::Json histograms = util::Json::object();
  for (const auto& [name, entry] : registry.histograms()) {
    if (!keep(entry.first)) continue;
    histograms.put(name, histogram_json(entry.second)
                             .put("domain", domain_name(entry.first)));
  }

  return util::Json::object()
      .put("schema_version", kMetricsSchemaVersion)
      .put("counters", std::move(counters))
      .put("gauges", std::move(gauges))
      .put("histograms", std::move(histograms));
}

std::string prometheus_text(const MetricsRegistry& registry, bool include_wall) {
  auto keep = [include_wall](Domain d) {
    return include_wall || d == Domain::kSim;
  };
  std::string out;

  for (const auto& [name, entry] : registry.counters()) {
    if (!keep(entry.first)) continue;
    std::string p = prom_name(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(entry.second.value()) + "\n";
  }

  for (const auto& [name, entry] : registry.gauges()) {
    if (!keep(entry.first)) continue;
    std::string p = prom_name(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + fmt(entry.second.value()) + "\n";
  }

  for (const auto& [name, entry] : registry.histograms()) {
    if (!keep(entry.first)) continue;
    const Histogram& h = entry.second;
    std::string p = prom_name(name);
    out += "# TYPE " + p + " histogram\n";
    auto bounds = Histogram::bounds();
    auto counts = h.buckets();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      cumulative += counts[i];
      // Skip leading/interior empty buckets but always emit the running
      // total once it changes, plus the trailing +Inf bucket.
      if (counts[i] == 0 && i + 1 < counts.size()) continue;
      std::string le = i < bounds.size() ? fmt(bounds[i]) : "+Inf";
      out += p + "_bucket{le=\"" + le + "\"} " + std::to_string(cumulative) + "\n";
    }
    out += p + "_sum " + fmt(h.sum()) + "\n";
    out += p + "_count " + std::to_string(h.count()) + "\n";
  }

  return out;
}

}  // namespace fiat::telemetry
