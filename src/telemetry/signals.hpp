// Per-home behavioral signals: the compact, mergeable fingerprints the fleet
// correlator consumes (DESIGN.md §14).
//
// A HomeSignals is a pure function of one home's proxy durable state — no
// wall-clock, no RNG, no cross-home input — so the fleet-level SignalSet
// inherits the determinism contract the shard/cluster reports already prove:
// shards=K merges byte-identical to shards=1, and signals survive live
// migration and node failover unchanged. This header deliberately depends on
// util + std only (NOT on core): the correlator includes it without ever
// seeing proxy internals or AttackLabel ground truth.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"

namespace fiat::telemetry {

/// Current signal-catalog version; bump when HomeSignals gains/changes fields
/// so downstream consumers of encoded SignalSets can detect skew.
inline constexpr std::uint32_t kSignalsVersion = 1;

/// Deterministic 64-bit signature of a packet's *profile-stable* fields.
/// Remote addresses and ports are per-home RNG artifacts, so a cross-home
/// sniff-and-replay campaign only collides on (direction, proto, size) — the
/// tuple the attacker actually copies. splitmix64-style finalizer: cheap,
/// stateless, and identical on every platform.
std::uint64_t packet_signature(bool inbound, std::uint8_t proto,
                               std::uint32_t size);

/// Deterministic 64-bit signature of a proof source (client id). FNV-1a over
/// the bytes: stable across runs, never exposes the raw id in exports.
std::uint64_t source_signature(std::string_view client_id);

/// One entry of a home's escalation-signature sketch.
struct SignatureCount {
  std::uint64_t signature = 0;
  std::uint64_t count = 0;

  friend bool operator==(const SignatureCount&, const SignatureCount&) = default;
};

/// Per-source proof bookkeeping: the sequence high-water the proxy accepted
/// from this source and how many payloads it rejected (duplicate or bad sig).
struct ProofSource {
  std::uint64_t source = 0;      // source_signature(client_id)
  std::uint64_t high_water = 0;  // highest accepted proof sequence
  std::uint64_t rejected = 0;    // duplicate + bad-signature payloads

  friend bool operator==(const ProofSource&, const ProofSource&) = default;
};

/// Dimensions of the traffic-shape vector (fractions/rates in [0, ~1]).
inline constexpr std::size_t kShapeDims = 8;
enum ShapeDim : std::size_t {
  kShapeRuleHit = 0,          // rule-hit fraction of allowed packets
  kShapeBootstrap = 1,        // bootstrap-allowed fraction
  kShapeEventPrefix = 2,      // event-prefix fraction
  kShapeNonManual = 3,        // classified-non-manual fraction
  kShapeManualUnvalidated = 4,  // manual-without-proof fraction
  kShapeLockout = 5,          // lockout-drop fraction
  kShapeDropRate = 6,         // dropped / (allowed + dropped)
  kShapeEventRate = 7,        // events closed per packet seen
};

/// One home's behavioral fingerprint. All fields derive from durable proxy
/// state; encode() is canonical (sorted vectors, fixed field order) so two
/// equal fingerprints serialize byte-identically.
struct HomeSignals {
  std::uint32_t home = 0;

  // Counters (verbatim from ProxyCounters / escalation bookkeeping).
  std::uint64_t packets_allowed = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t events_closed = 0;
  std::uint64_t manual_blocked = 0;  // manual-classified, no valid proof
  std::uint64_t proofs_accepted = 0;
  std::uint64_t proofs_rejected = 0;  // duplicate + bad signature
  std::uint64_t mimicry_escalations = 0;
  std::uint64_t notification_escalations = 0;
  std::uint64_t alerts = 0;

  /// Top-K escalation-signature sketch: signatures of costume packets inside
  /// events the mimicry/notification guards escalated, sorted by signature.
  std::vector<SignatureCount> signature_sketch;

  /// Per-source proof bookkeeping, sorted by source signature.
  std::vector<ProofSource> proof_sources;

  /// Traffic-shape vector (see ShapeDim).
  std::array<double, kShapeDims> shape{};

  void encode(util::ByteWriter& w) const;

  friend bool operator==(const HomeSignals&, const HomeSignals&) = default;
};

/// L1 distance between two shape vectors restricted to the
/// enforcement-independent dimensions: decision mix (kShapeNonManual,
/// kShapeManualUnvalidated) and activity rate (kShapeEventRate). Lockout and
/// drop-rate dims are deliberately excluded — they measure how early the
/// proxy clamped down, not how the traffic behaved, and two clones of the
/// same bot can land on opposite sides of the lockout threshold.
double shape_distance(const HomeSignals& a, const HomeSignals& b);

/// Trims a (signature → count) accumulation to its top-K entries by
/// (count desc, signature asc), returned re-sorted by signature so the sketch
/// stays canonical regardless of selection order.
std::vector<SignatureCount> top_k_sketch(
    const std::vector<SignatureCount>& counts, std::size_t k);

/// An ordered, mergeable set of per-home fingerprints. Kept sorted by home id
/// so merge order (shard 0..N-1, node 0..N-1) never affects the result — the
/// same contract the telemetry sinks and fleet reports follow.
class SignalSet {
 public:
  /// Inserts (or replaces) the entry for `s.home`.
  void add(HomeSignals s);

  /// Folds `other` in; duplicate home ids take the incoming entry (a home
  /// lives on exactly one shard/node, so duplicates only occur in tests).
  void merge_from(const SignalSet& other);

  const std::vector<HomeSignals>& homes() const { return homes_; }
  std::size_t size() const { return homes_.size(); }
  bool empty() const { return homes_.empty(); }

  /// Canonical serialization: version header then each home's encode() in
  /// home-id order. Byte-identity of two SignalSets ⇔ equal fingerprints.
  util::Bytes encode() const;

 private:
  std::vector<HomeSignals> homes_;  // sorted by home id
};

}  // namespace fiat::telemetry
