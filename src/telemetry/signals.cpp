#include "telemetry/signals.hpp"

#include <algorithm>
#include <cmath>

namespace fiat::telemetry {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t packet_signature(bool inbound, std::uint8_t proto,
                               std::uint32_t size) {
  std::uint64_t key = (static_cast<std::uint64_t>(inbound ? 1 : 0) << 40) |
                      (static_cast<std::uint64_t>(proto) << 32) |
                      static_cast<std::uint64_t>(size);
  return splitmix64(key);
}

std::uint64_t source_signature(std::string_view client_id) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  for (unsigned char c : client_id) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  // A final mix so near-identical ids don't land in adjacent buckets.
  return splitmix64(h);
}

void HomeSignals::encode(util::ByteWriter& w) const {
  w.u32be(home);
  w.u64be(packets_allowed);
  w.u64be(packets_dropped);
  w.u64be(events_closed);
  w.u64be(manual_blocked);
  w.u64be(proofs_accepted);
  w.u64be(proofs_rejected);
  w.u64be(mimicry_escalations);
  w.u64be(notification_escalations);
  w.u64be(alerts);
  w.u32be(static_cast<std::uint32_t>(signature_sketch.size()));
  for (const auto& sc : signature_sketch) {
    w.u64be(sc.signature);
    w.u64be(sc.count);
  }
  w.u32be(static_cast<std::uint32_t>(proof_sources.size()));
  for (const auto& ps : proof_sources) {
    w.u64be(ps.source);
    w.u64be(ps.high_water);
    w.u64be(ps.rejected);
  }
  for (double d : shape) w.f64be(d);
}

double shape_distance(const HomeSignals& a, const HomeSignals& b) {
  double d = 0.0;
  for (std::size_t i : {kShapeNonManual, kShapeManualUnvalidated,
                        kShapeEventRate}) {
    d += std::abs(a.shape[i] - b.shape[i]);
  }
  return d;
}

std::vector<SignatureCount> top_k_sketch(
    const std::vector<SignatureCount>& counts, std::size_t k) {
  std::vector<SignatureCount> out = counts;
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.signature < b.signature;
  });
  if (out.size() > k) out.resize(k);
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.signature < b.signature;
  });
  return out;
}

void SignalSet::add(HomeSignals s) {
  auto it = std::lower_bound(
      homes_.begin(), homes_.end(), s.home,
      [](const HomeSignals& h, std::uint32_t id) { return h.home < id; });
  if (it != homes_.end() && it->home == s.home) {
    *it = std::move(s);
  } else {
    homes_.insert(it, std::move(s));
  }
}

void SignalSet::merge_from(const SignalSet& other) {
  for (const auto& h : other.homes_) add(h);
}

util::Bytes SignalSet::encode() const {
  util::ByteWriter w;
  w.u32be(kSignalsVersion);
  w.u32be(static_cast<std::uint32_t>(homes_.size()));
  for (const auto& h : homes_) h.encode(w);
  return w.take();
}

}  // namespace fiat::telemetry
