// Trace layer of the telemetry subsystem: a bounded ring buffer of
// structured spans keyed by *sim time*.
//
// Spans carry only simulated-time stamps (the sim-time determinism rule,
// DESIGN.md §9), so a trace exported from a fixed-seed run is byte-identical
// across runs: per-packet decision instants, per-event lifecycle spans
// (open -> classify -> decide), per-proof journeys (send -> retransmits ->
// ack). The buffer is a drop-oldest ring — tracing a billion-packet replay
// keeps the most recent window and counts what it evicted, never growing.
//
// Export is Chrome trace-event JSON ("traceEvents" array of ph:"X"/"M"
// records, microsecond integer timestamps), which loads directly in
// Perfetto (ui.perfetto.dev) or chrome://tracing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace fiat::telemetry {

struct TraceSpan {
  /// Name/category must be string literals (or otherwise outlive the
  /// buffer): spans are recorded on hot paths and must not allocate for
  /// fixed labels.
  const char* name = "";
  const char* category = "";
  double start = 0.0;     // sim seconds
  double duration = 0.0;  // sim seconds; 0 = instant
  std::uint32_t home = 0; // Chrome pid
  std::string track;      // Chrome thread; e.g. device name or client id
  /// Monotone per-buffer sequence assigned by record(); the deterministic
  /// tie-break for equal (start, home) when merging buffers.
  std::uint64_t seq = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

class TraceBuffer {
 public:
  /// capacity 0 disables the buffer entirely (record() is a no-op).
  explicit TraceBuffer(std::size_t capacity = 8192) : capacity_(capacity) {}

  bool enabled() const { return capacity_ > 0; }
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return ring_.size(); }
  /// Spans evicted (oldest-first) because the ring was full.
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t recorded() const { return seq_; }

  void record(TraceSpan span);

  /// Hot-path variant of record(): hands out the ring slot the span should
  /// be written into, seq already assigned and any recycled slot wiped back
  /// to defaults (track/args keep their capacity, so steady-state recording
  /// never allocates). Returns nullptr when the buffer is disabled. The
  /// per-packet decision path records millions of spans; building a
  /// temporary TraceSpan and moving it through record() costs more than the
  /// span's whole payload.
  TraceSpan* begin_span();

  /// Copies the retained spans oldest-to-newest.
  std::vector<TraceSpan> ordered() const;

 private:
  std::size_t capacity_;
  std::vector<TraceSpan> ring_;
  std::size_t next_ = 0;  // ring slot the next record() overwrites, once full
  std::uint64_t seq_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Merges several buffers into one span list ordered by (start, home, seq).
/// Within one home, spans come from a single thread-owned buffer with
/// monotone seq, so the order is deterministic and independent of how homes
/// were interleaved on their shard.
std::vector<TraceSpan> merge_ordered(const std::vector<const TraceBuffer*>& buffers);

/// Chrome trace-event JSON: complete ("X") events with integer microsecond
/// timestamps, plus thread_name metadata ("M") records mapping each distinct
/// track string to a stable tid.
util::Json chrome_trace_json(const std::vector<TraceSpan>& spans);

}  // namespace fiat::telemetry
