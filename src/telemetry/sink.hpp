// A Sink bundles the two halves of the telemetry subsystem — a metrics
// registry and a trace buffer — under one ownership rule: a sink belongs to
// exactly one thread at a time. Instrumented components (FiatProxy,
// QuicClient, Network, Shard) hold a non-owning Sink* and record with plain
// writes; the fleet gives each shard worker its own sink and merges them
// after the join (see fleet/engine.hpp).
#pragma once

#include <cstddef>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace fiat::telemetry {

struct Sink {
  explicit Sink(std::size_t trace_capacity = 8192) : trace(trace_capacity) {}

  MetricsRegistry metrics;
  TraceBuffer trace;
};

}  // namespace fiat::telemetry
