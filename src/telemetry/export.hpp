// Exporters for a (merged) MetricsRegistry:
//
//  * metrics_json()    — one JSON object (counters / gauges / histograms
//                        with p50/p95/p99 and non-empty buckets), built on
//                        fiat::util::Json. With include_wall=false only
//                        Domain::kSim metrics are emitted, which makes the
//                        document byte-identical across fixed-seed runs —
//                        the form `fiat fleet --telemetry-json` writes and
//                        the determinism tests diff.
//  * prometheus_text() — Prometheus text exposition (counter / gauge /
//                        histogram with cumulative le-buckets), names
//                        prefixed `fiat_` and sanitized.
#pragma once

#include <string>

#include "telemetry/metrics.hpp"
#include "util/json.hpp"

namespace fiat::telemetry {

/// Top-level `schema_version` emitted by metrics_json(). Bump when the
/// document shape changes so downstream consumers of `--telemetry-json` /
/// BENCH snapshots can detect skew (fiat_json_validate --schema-version
/// checks it).
inline constexpr std::size_t kMetricsSchemaVersion = 1;

util::Json metrics_json(const MetricsRegistry& registry, bool include_wall);

std::string prometheus_text(const MetricsRegistry& registry, bool include_wall);

}  // namespace fiat::telemetry
