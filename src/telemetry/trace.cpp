#include "telemetry/trace.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace fiat::telemetry {

void TraceBuffer::record(TraceSpan span) {
  if (capacity_ == 0) return;
  span.seq = seq_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
    return;
  }
  ring_[next_] = std::move(span);
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

TraceSpan* TraceBuffer::begin_span() {
  if (capacity_ == 0) return nullptr;
  TraceSpan* slot;
  if (ring_.size() < capacity_) {
    slot = &ring_.emplace_back();
  } else {
    slot = &ring_[next_];
    next_ = (next_ + 1) % capacity_;
    ++dropped_;
    slot->name = "";
    slot->category = "";
    slot->start = 0.0;
    slot->duration = 0.0;
    slot->home = 0;
    slot->track.clear();
    slot->args.clear();
  }
  slot->seq = seq_++;
  return slot;
}

std::vector<TraceSpan> TraceBuffer::ordered() const {
  std::vector<TraceSpan> out;
  out.reserve(ring_.size());
  // Once the ring wrapped, `next_` points at the oldest retained span.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<TraceSpan> merge_ordered(
    const std::vector<const TraceBuffer*>& buffers) {
  std::vector<TraceSpan> all;
  std::size_t total = 0;
  for (const TraceBuffer* buffer : buffers) {
    if (buffer) total += buffer->size();
  }
  all.reserve(total);
  for (const TraceBuffer* buffer : buffers) {
    if (!buffer) continue;
    auto spans = buffer->ordered();
    all.insert(all.end(), std::make_move_iterator(spans.begin()),
               std::make_move_iterator(spans.end()));
  }
  std::sort(all.begin(), all.end(), [](const TraceSpan& a, const TraceSpan& b) {
    if (a.start != b.start) return a.start < b.start;
    if (a.home != b.home) return a.home < b.home;
    return a.seq < b.seq;
  });
  return all;
}

util::Json chrome_trace_json(const std::vector<TraceSpan>& spans) {
  util::Json events = util::Json::array();

  // Stable track -> tid mapping in first-seen order, emitted as thread_name
  // metadata so Perfetto shows the track strings, not bare tids.
  std::map<std::string, std::size_t> tids;
  std::vector<std::pair<std::uint32_t, const std::string*>> named_tracks;
  for (const TraceSpan& span : spans) {
    auto [it, inserted] = tids.try_emplace(span.track, tids.size() + 1);
    if (inserted) named_tracks.emplace_back(span.home, &it->first);
  }
  for (const auto& [home, track] : named_tracks) {
    events.push(util::Json::object()
                    .put("ph", "M")
                    .put("name", "thread_name")
                    .put("pid", static_cast<std::size_t>(home))
                    .put("tid", tids[*track])
                    .put("args", util::Json::object().put("name", *track)));
  }

  auto micros = [](double seconds) {
    return static_cast<std::size_t>(std::llround(seconds * 1e6));
  };
  for (const TraceSpan& span : spans) {
    util::Json event = util::Json::object()
                           .put("ph", "X")
                           .put("name", span.name)
                           .put("cat", span.category)
                           .put("ts", micros(span.start))
                           .put("dur", micros(span.duration))
                           .put("pid", static_cast<std::size_t>(span.home))
                           .put("tid", tids[span.track]);
    if (!span.args.empty()) {
      util::Json args = util::Json::object();
      for (const auto& [key, value] : span.args) args.put(key, value);
      event.put("args", std::move(args));
    }
    events.push(std::move(event));
  }

  return util::Json::object()
      .put("traceEvents", std::move(events))
      .put("displayTimeUnit", "ms");
}

}  // namespace fiat::telemetry
