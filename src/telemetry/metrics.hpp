// Metrics layer of the telemetry subsystem: named counters, gauges, and
// fixed-bucket log-scale histograms (p50/p95/p99) in a MetricsRegistry.
//
// Threading model (mirrors the fleet's counter discipline, see
// fleet/stats.hpp): a registry is *thread-owned* — each shard worker records
// into its own registry with plain loads/stores, and the engine merges the
// per-shard registries into one snapshot only after the workers joined. No
// atomics anywhere on the hot path. Hot call sites cache the Counter* /
// Histogram* returned by the registry (std::map storage: pointers are
// stable), so steady-state recording is an increment, not a name lookup.
//
// Determinism rule (the "sim-time determinism rule", DESIGN.md §9): every
// metric is tagged with a Domain. kSim metrics derive only from simulated
// time / item counts and are byte-identical across runs of the same seed;
// kWall metrics (queue wait, busy time) measure the host and are excluded
// from the deterministic exports.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>

namespace fiat::telemetry {

enum class Domain {
  kSim,   // deterministic under a fixed seed (sim time, item counts)
  kWall,  // host wall-clock measurements; excluded from deterministic export
};

const char* domain_name(Domain d);

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void merge(const Counter& other) { value_ += other.value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written value; merging keeps the maximum (per-shard gauges are
/// high-water style: queue depth, trace drops).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }
  void merge(const Gauge& other) {
    if (other.value_ > value_) value_ = other.value_;
  }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket log-scale histogram: 1-2-5 decade bounds from 1e-6 to 1e4
/// (microseconds to hours when the unit is seconds; equally serviceable for
/// batch sizes), plus an overflow bucket. Quantiles interpolate linearly
/// inside the winning bucket and are clamped to the observed [min, max], so
/// a single-valued histogram reports that exact value.
class Histogram {
 public:
  static constexpr std::size_t kBounds = 31;  // 10 decades x {1,2,5} + 1e4

  void record(double value);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  /// q in [0, 1]; returns 0 for an empty histogram.
  double quantile(double q) const;

  void merge(const Histogram& other);

  static std::span<const double> bounds();
  /// kBounds+1 entries; bucket i counts values <= bounds()[i], the final
  /// entry is the overflow bucket.
  std::span<const std::uint64_t> buckets() const { return buckets_; }

 private:
  std::array<std::uint64_t, kBounds + 1> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named metrics, one namespace per owning thread. Metric objects live as
/// long as the registry and never move (std::map), so callers may cache the
/// returned references/pointers across calls.
class MetricsRegistry {
 public:
  /// Finds or creates. Re-registering an existing name with a different
  /// domain throws (it would silently corrupt the determinism contract).
  Counter& counter(const std::string& name, Domain domain = Domain::kSim);
  Gauge& gauge(const std::string& name, Domain domain = Domain::kSim);
  Histogram& histogram(const std::string& name, Domain domain = Domain::kSim);

  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// Sums/maxes/merges `other` into this registry, creating any missing
  /// names. Called after worker joins; merge order = caller's call order,
  /// which keeps accumulated sums deterministic.
  void merge_from(const MetricsRegistry& other);

  // Exporter access: name-sorted (std::map), so export order is stable.
  const std::map<std::string, std::pair<Domain, Counter>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::pair<Domain, Gauge>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, std::pair<Domain, Histogram>>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, std::pair<Domain, Counter>> counters_;
  std::map<std::string, std::pair<Domain, Gauge>> gauges_;
  std::map<std::string, std::pair<Domain, Histogram>> histograms_;
};

}  // namespace fiat::telemetry
