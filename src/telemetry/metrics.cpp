#include "telemetry/metrics.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fiat::telemetry {

namespace {

// 1-2-5 decade bounds, 1e-6 .. 1e4. Decimal values print exactly under the
// JSON dumper's %.6g, so exported bucket edges are byte-stable.
constexpr std::array<double, Histogram::kBounds> kBucketBounds = {
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3,
    5e-3, 1e-2, 2e-2, 5e-2, 1e-1, 2e-1, 5e-1, 1e0,  2e0,  5e0,  1e1,
    2e1,  5e1,  1e2,  2e2,  5e2,  1e3,  2e3,  5e3,  1e4};

std::size_t bucket_of(double value) {
  auto it = std::lower_bound(kBucketBounds.begin(), kBucketBounds.end(), value);
  return static_cast<std::size_t>(it - kBucketBounds.begin());
}

}  // namespace

const char* domain_name(Domain d) {
  switch (d) {
    case Domain::kSim: return "sim";
    case Domain::kWall: return "wall";
  }
  return "?";
}

std::span<const double> Histogram::bounds() { return kBucketBounds; }

void Histogram::record(double value) {
  if (value < 0.0) value = 0.0;  // durations only; clamp noise, don't crash
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[bucket_of(value)];
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double rank = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    double lo = i == 0 ? 0.0 : kBucketBounds[i - 1];
    double hi = i < kBounds ? kBucketBounds[i] : max_;
    double before = static_cast<double>(cumulative);
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) >= rank) {
      double within = buckets_[i] ? (rank - before) / static_cast<double>(buckets_[i])
                                  : 0.0;
      double v = lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
      return std::clamp(v, min_, max_);
    }
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
}

namespace {

template <typename T>
T& find_or_create(std::map<std::string, std::pair<Domain, T>>& metrics,
                  const std::string& name, Domain domain, const char* kind) {
  auto [it, inserted] = metrics.try_emplace(name, domain, T{});
  if (!inserted && it->second.first != domain) {
    throw LogicError(std::string("MetricsRegistry: ") + kind + " '" + name +
                     "' re-registered as " + domain_name(domain) + ", was " +
                     domain_name(it->second.first));
  }
  return it->second.second;
}

template <typename T>
const T* find_metric(const std::map<std::string, std::pair<Domain, T>>& metrics,
                     const std::string& name) {
  auto it = metrics.find(name);
  return it == metrics.end() ? nullptr : &it->second.second;
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name, Domain domain) {
  return find_or_create(counters_, name, domain, "counter");
}

Gauge& MetricsRegistry::gauge(const std::string& name, Domain domain) {
  return find_or_create(gauges_, name, domain, "gauge");
}

Histogram& MetricsRegistry::histogram(const std::string& name, Domain domain) {
  return find_or_create(histograms_, name, domain, "histogram");
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  return find_metric(counters_, name);
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  return find_metric(gauges_, name);
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  return find_metric(histograms_, name);
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, entry] : other.counters_) {
    counter(name, entry.first).merge(entry.second);
  }
  for (const auto& [name, entry] : other.gauges_) {
    gauge(name, entry.first).merge(entry.second);
  }
  for (const auto& [name, entry] : other.histograms_) {
    histogram(name, entry.first).merge(entry.second);
  }
}

}  // namespace fiat::telemetry
