#include "transport/netpath.hpp"

namespace fiat::transport {

PathProfile PathProfile::lan() {
  PathProfile p;
  p.name = "lan";
  p.base_owd = 0.0035;    // ~7 ms RTT
  p.jitter_mu = -6.5;     // ~1.5 ms median jitter
  p.jitter_sigma = 0.6;
  p.loss_rate = 0.001;
  return p;
}

PathProfile PathProfile::mobile() {
  PathProfile p;
  p.name = "mobile";
  p.base_owd = 0.045;     // ~90 ms RTT floor
  p.jitter_mu = -3.6;     // ~27 ms median jitter, heavy tail
  p.jitter_sigma = 0.9;
  p.loss_rate = 0.005;
  return p;
}

PathProfile PathProfile::wan_cloud() {
  PathProfile p;
  p.name = "wan-cloud";
  p.base_owd = 0.022;     // ~44 ms RTT
  p.jitter_mu = -5.0;
  p.jitter_sigma = 0.7;
  p.loss_rate = 0.002;
  return p;
}

PathProfile PathProfile::mobile_cloud() {
  PathProfile p;
  p.name = "mobile-cloud";
  p.base_owd = 0.055;
  p.jitter_mu = -3.8;
  p.jitter_sigma = 0.8;
  p.loss_rate = 0.005;
  return p;
}

double NetPath::sample_owd(sim::Rng& rng) const {
  return profile_.base_owd + rng.lognormal(profile_.jitter_mu, profile_.jitter_sigma);
}

bool NetPath::sample_loss(sim::Rng& rng) const {
  return rng.chance(profile_.loss_rate);
}

}  // namespace fiat::transport
