// Simulated datagram network: endpoints register receive callbacks; sends
// are delivered through a NetPath (sampled delay + loss) on the shared
// discrete-event scheduler. QuicLite runs on top of this.
//
// A FaultPlan may additionally be installed per directed path; the injector
// is consulted once per datagram and can drop (bursts, blackouts),
// duplicate, reorder (hold back), corrupt, or skew datagrams on top of the
// NetPath's base delay/loss model.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/faults.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/sink.hpp"
#include "transport/netpath.hpp"
#include "util/bytes.hpp"

namespace fiat::transport {

using EndpointId = std::string;

class Network {
 public:
  using ReceiveFn = std::function<void(const EndpointId& from, util::Bytes data)>;

  Network(sim::Scheduler& scheduler, sim::Rng& rng)
      : scheduler_(scheduler), rng_(rng) {}

  void attach(const EndpointId& id, ReceiveFn on_receive);
  /// Declares the path used for `from` -> `to` (and only that direction).
  void set_path(const EndpointId& from, const EndpointId& to, PathProfile profile);
  /// Installs a fault plan on an existing directed path (replacing any prior
  /// plan and resetting its injector state). The path must exist.
  void set_fault_plan(const EndpointId& from, const EndpointId& to,
                      sim::FaultPlan plan);
  /// The injector for a directed path, or nullptr when none is installed.
  const sim::FaultInjector* fault_injector(const EndpointId& from,
                                           const EndpointId& to) const;

  /// Sends a datagram; delivery is scheduled after the sampled one-way delay,
  /// or never if the loss draw fails. Unknown destinations are dropped.
  void send(const EndpointId& from, const EndpointId& to, util::Bytes data);

  std::size_t datagrams_sent() const { return sent_; }
  std::size_t datagrams_dropped() const { return dropped_; }
  std::size_t datagrams_duplicated() const { return duplicated_; }
  std::size_t datagrams_corrupted() const { return corrupted_; }
  sim::Scheduler& scheduler() { return scheduler_; }

  /// Attaches a telemetry sink: datagram fate counters, the sampled one-way
  /// delay histogram, and instant spans for injected faults — all
  /// Domain::kSim (the network runs entirely on the scheduler clock).
  void set_telemetry(telemetry::Sink* sink, std::uint32_t home = 0);

 private:
  void deliver_after(double delay, const EndpointId& from, const EndpointId& to,
                     util::Bytes data);

  sim::Scheduler& scheduler_;
  sim::Rng& rng_;
  std::map<EndpointId, ReceiveFn> endpoints_;
  std::map<std::pair<EndpointId, EndpointId>, NetPath> paths_;
  std::map<std::pair<EndpointId, EndpointId>, sim::FaultInjector> faults_;
  std::size_t sent_ = 0;
  std::size_t dropped_ = 0;
  std::size_t duplicated_ = 0;
  std::size_t corrupted_ = 0;

  // Telemetry (optional; cached metric pointers, see set_telemetry()).
  telemetry::Sink* telemetry_ = nullptr;
  std::uint32_t telemetry_home_ = 0;
  telemetry::Counter* tm_sent_ = nullptr;
  telemetry::Counter* tm_dropped_ = nullptr;
  telemetry::Counter* tm_duplicated_ = nullptr;
  telemetry::Counter* tm_corrupted_ = nullptr;
  telemetry::Histogram* tm_delay_ = nullptr;
};

}  // namespace fiat::transport
