// One-way-delay models for the network paths in the paper's latency
// evaluation (Table 7): phone->proxy over home LAN WiFi, phone->proxy over a
// mobile carrier (Mint SIM in the paper), and device/phone->cloud over WAN.
//
// Delays are sampled as base + lognormal jitter, which matches the
// heavy-tailed access-network delay distributions the paper's mobile numbers
// display (QUIC 1-RTT on mobile ranged 233-1044 ms across devices).
#pragma once

#include <string>

#include "sim/rng.hpp"

namespace fiat::transport {

struct PathProfile {
  std::string name;
  double base_owd = 0.001;     // seconds, one-way
  double jitter_mu = -7.0;     // lognormal mu of the jitter term (seconds)
  double jitter_sigma = 0.5;   // lognormal sigma
  double loss_rate = 0.0;      // independent per-datagram loss

  /// Home WiFi LAN: ~5-15 ms RTT.
  static PathProfile lan();
  /// Mobile carrier to home: ~100-500 ms RTT with heavy tail.
  static PathProfile mobile();
  /// Home to IoT vendor cloud: ~40-90 ms RTT.
  static PathProfile wan_cloud();
  /// Mobile to IoT vendor cloud.
  static PathProfile mobile_cloud();
};

/// Samples one-way delays for a profile.
class NetPath {
 public:
  explicit NetPath(PathProfile profile) : profile_(std::move(profile)) {}

  /// One-way delay sample (seconds, >= base).
  double sample_owd(sim::Rng& rng) const;
  /// True if this datagram should be dropped.
  bool sample_loss(sim::Rng& rng) const;
  const PathProfile& profile() const { return profile_; }

 private:
  PathProfile profile_;
};

}  // namespace fiat::transport
