// QuicLite: a miniature QUIC-inspired secure datagram protocol.
//
// FIAT ships humanness proofs from the phone to the IoT proxy over QUIC
// because (a) 0-RTT/1-RTT beats TCP+TLS setup and (b) everything including
// transport metadata is encrypted (§5.3). QuicLite reproduces the properties
// Table 7 measures:
//
//   * 1-RTT mode: ClientHello/ServerHello key agreement bound to a pre-shared
//     pairing key (PSK), then application data — data reaches the server one
//     round trip after the client starts.
//   * 0-RTT mode: a session ticket from an earlier handshake lets the client
//     send AEAD-protected early data in the very first datagram.
//   * 0-RTT anti-replay: the server keeps a replay cache of early-data nonces
//     (feasible for a home proxy serving a handful of devices, §5.3) and
//     rejects duplicates.
//
// Key schedule (all HKDF-SHA256 from the 32-byte PSK):
//   session_key    = HKDF(psk, client_random || server_random, "ql session")
//   resumption_sec = HKDF(session_key, "", "ql resumption")
//   zero_rtt_key   = HKDF(resumption_sec, "", "ql early")
// Tickets are opaque to the client: AEAD-sealed under a server-local ticket
// key, containing the client id and resumption secret.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "crypto/aead.hpp"
#include "crypto/replay_cache.hpp"
#include "telemetry/sink.hpp"
#include "transport/network.hpp"

namespace fiat::transport {

enum class QuicPacketType : std::uint8_t {
  kClientHello = 1,
  kServerHello = 2,
  kZeroRtt = 3,
  kOneRttData = 4,
  kAck = 5,
};

/// Server-side delivery record for one application message.
struct QuicDelivery {
  std::string client_id;
  util::Bytes data;
  bool zero_rtt = false;
  double receive_time = 0.0;  // scheduler time when the server processed it
};

class QuicServer {
 public:
  using MessageFn = std::function<void(const QuicDelivery&)>;

  /// `psk_of` maps client id -> 32-byte pairing key; unknown ids are
  /// rejected. `ticket_key_entropy` seeds the server-local ticket key.
  QuicServer(Network& network, EndpointId id,
             std::function<std::optional<std::vector<std::uint8_t>>(const std::string&)> psk_of,
             std::span<const std::uint8_t> ticket_key_entropy);

  void set_on_message(MessageFn fn) { on_message_ = std::move(fn); }

  std::size_t handshakes_completed() const { return handshakes_; }
  std::size_t zero_rtt_accepted() const { return zero_rtt_accepted_; }
  std::size_t zero_rtt_replays_blocked() const { return replays_blocked_; }
  std::size_t auth_failures() const { return auth_failures_; }

 private:
  void on_datagram(const EndpointId& from, util::Bytes data);
  void handle_client_hello(const EndpointId& from, util::ByteReader& r,
                           std::uint32_t conn_id);
  void handle_zero_rtt(const EndpointId& from, util::ByteReader& r,
                       std::uint32_t conn_id, std::span<const std::uint8_t> header);
  void handle_one_rtt(const EndpointId& from, util::ByteReader& r,
                      std::uint32_t conn_id, std::span<const std::uint8_t> header);
  void send_ack(const EndpointId& to, std::uint32_t conn_id, std::uint64_t pn,
                const std::vector<std::uint8_t>& key);

  struct Session {
    std::string client_id;
    std::vector<std::uint8_t> session_key;
    /// Packet numbers already delivered up the stack: a 1-RTT retransmit
    /// whose ack died is re-acked, never re-delivered (QUIC pn dedup).
    std::set<std::uint64_t> delivered_pns;
  };

  Network& network_;
  EndpointId id_;
  std::function<std::optional<std::vector<std::uint8_t>>(const std::string&)> psk_of_;
  std::vector<std::uint8_t> ticket_key_;
  std::map<std::uint32_t, Session> sessions_;  // by connection id
  crypto::ReplayCache replay_cache_;
  MessageFn on_message_;
  std::size_t handshakes_ = 0;
  std::size_t zero_rtt_accepted_ = 0;
  std::size_t replays_blocked_ = 0;
  std::size_t auth_failures_ = 0;
};

/// Retry policy for unacknowledged datagrams: exponential backoff with
/// jitter, a bounded retransmit budget, and (for 0-RTT) automatic fallback
/// to a fresh 1-RTT exchange when the early data is never acknowledged —
/// which is what a rejected/expired ticket, a server restart, or a network
/// blackout all look like from the client.
struct QuicRetryConfig {
  double initial_timeout = 0.4;  // seconds before the first retransmit
  double multiplier = 2.0;       // backoff factor per attempt
  double max_timeout = 6.4;      // backoff cap
  double jitter = 0.1;           // +/- fraction of the timeout, decorrelates
  int max_retransmits = 5;       // budget after the initial send
  bool fallback_to_1rtt = true;  // 0-RTT exhausted -> discard ticket, retry 1-RTT
};

class QuicClient {
 public:
  using ConnectFn = std::function<void(double connect_time)>;
  using AckFn = std::function<void(double ack_time)>;
  /// Terminal failure: the retransmit budget (and any 1-RTT fallback) is
  /// exhausted and the data is NOT at the server. The app must re-prove.
  using FailFn = std::function<void()>;

  QuicClient(Network& network, EndpointId id, EndpointId server,
             std::string client_id, std::span<const std::uint8_t> psk,
             sim::Rng& rng, QuicRetryConfig retry = {});

  void set_retry_config(QuicRetryConfig retry) { retry_ = retry; }
  /// Fallback failure handler for messages sent without their own FailFn
  /// and for failed handshakes.
  void set_on_failed(FailFn fn) { on_failed_ = std::move(fn); }

  /// Starts a 1-RTT handshake; `on_connected` fires when ServerHello
  /// arrives, `on_failed` (or the global handler) when the budget runs out.
  void connect(ConnectFn on_connected, FailFn on_failed = nullptr);
  /// Sends application data on the established session (requires connect()).
  void send(util::Bytes data, AckFn on_acked, FailFn on_failed = nullptr);
  /// Sends 0-RTT early data using a stored ticket. Returns false (and sends
  /// nothing) if no ticket is available yet. If the early data is never
  /// acked and fallback is enabled, the ticket is discarded and the same
  /// payload is re-sent over a fresh 1-RTT exchange before giving up.
  bool send_zero_rtt(util::Bytes data, AckFn on_acked, FailFn on_failed = nullptr);
  /// For replay-attack experiments: re-sends the last 0-RTT datagram bytes
  /// verbatim (what an on-path attacker would do).
  bool replay_last_zero_rtt();

  bool has_ticket() const { return !ticket_.empty(); }
  bool connected() const { return !session_key_.empty(); }

  std::size_t retransmits() const { return retransmits_; }
  std::size_t zero_rtt_fallbacks() const { return fallbacks_; }
  std::size_t failures() const { return failures_; }

  /// Attaches a telemetry sink. Everything the client measures runs on the
  /// scheduler clock, so all its metrics are Domain::kSim: handshake and
  /// ack round-trip histograms, retransmit/fallback/failure counters, and
  /// per-proof journey spans (send -> retransmits -> ack).
  void set_telemetry(telemetry::Sink* sink, std::uint32_t home = 0);

 private:
  struct Pending {
    double send_time = 0.0;
    AckFn on_acked;
    FailFn on_failed;
    util::Bytes plaintext;  // kept for 0-RTT -> 1-RTT fallback
    bool zero_rtt = false;
    int rexmits = 0;  // retransmits this datagram has cost so far
  };

  void on_datagram(const EndpointId& from, util::Bytes data);
  void retransmit(std::uint64_t pn, util::Bytes datagram, int attempts);
  double backoff_timeout(int attempts);
  void on_budget_exhausted(std::uint64_t pn);
  void fail(FailFn& specific);

  Network& network_;
  EndpointId id_;
  EndpointId server_;
  std::string client_id_;
  std::vector<std::uint8_t> psk_;
  sim::Rng& rng_;
  QuicRetryConfig retry_;

  std::uint32_t conn_id_ = 0;
  std::uint64_t next_pn_ = 1;
  std::array<std::uint8_t, 16> client_random_{};
  std::vector<std::uint8_t> session_key_;
  std::vector<std::uint8_t> resumption_secret_;
  std::vector<std::uint8_t> zero_rtt_key_;
  util::Bytes ticket_;
  util::Bytes last_zero_rtt_datagram_;

  double connect_start_ = 0.0;
  ConnectFn on_connected_;
  FailFn on_connect_failed_;
  FailFn on_failed_;
  std::map<std::uint64_t, Pending> pending_acks_;
  std::map<std::uint64_t, bool> acked_;
  std::size_t retransmits_ = 0;
  std::size_t fallbacks_ = 0;
  std::size_t failures_ = 0;

  // Telemetry (optional; cached metric pointers, see set_telemetry()).
  telemetry::Sink* telemetry_ = nullptr;
  std::uint32_t telemetry_home_ = 0;
  telemetry::Histogram* tm_handshake_ = nullptr;
  telemetry::Histogram* tm_ack_ = nullptr;
  telemetry::Counter* tm_retransmits_ = nullptr;
  telemetry::Counter* tm_fallbacks_ = nullptr;
  telemetry::Counter* tm_failures_ = nullptr;
  telemetry::Counter* tm_connects_ = nullptr;
};

}  // namespace fiat::transport
