// QuicLite: a miniature QUIC-inspired secure datagram protocol.
//
// FIAT ships humanness proofs from the phone to the IoT proxy over QUIC
// because (a) 0-RTT/1-RTT beats TCP+TLS setup and (b) everything including
// transport metadata is encrypted (§5.3). QuicLite reproduces the properties
// Table 7 measures:
//
//   * 1-RTT mode: ClientHello/ServerHello key agreement bound to a pre-shared
//     pairing key (PSK), then application data — data reaches the server one
//     round trip after the client starts.
//   * 0-RTT mode: a session ticket from an earlier handshake lets the client
//     send AEAD-protected early data in the very first datagram.
//   * 0-RTT anti-replay: the server keeps a replay cache of early-data nonces
//     (feasible for a home proxy serving a handful of devices, §5.3) and
//     rejects duplicates.
//
// Key schedule (all HKDF-SHA256 from the 32-byte PSK):
//   session_key    = HKDF(psk, client_random || server_random, "ql session")
//   resumption_sec = HKDF(session_key, "", "ql resumption")
//   zero_rtt_key   = HKDF(resumption_sec, "", "ql early")
// Tickets are opaque to the client: AEAD-sealed under a server-local ticket
// key, containing the client id and resumption secret.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crypto/aead.hpp"
#include "crypto/replay_cache.hpp"
#include "transport/network.hpp"

namespace fiat::transport {

enum class QuicPacketType : std::uint8_t {
  kClientHello = 1,
  kServerHello = 2,
  kZeroRtt = 3,
  kOneRttData = 4,
  kAck = 5,
};

/// Server-side delivery record for one application message.
struct QuicDelivery {
  std::string client_id;
  util::Bytes data;
  bool zero_rtt = false;
  double receive_time = 0.0;  // scheduler time when the server processed it
};

class QuicServer {
 public:
  using MessageFn = std::function<void(const QuicDelivery&)>;

  /// `psk_of` maps client id -> 32-byte pairing key; unknown ids are
  /// rejected. `ticket_key_entropy` seeds the server-local ticket key.
  QuicServer(Network& network, EndpointId id,
             std::function<std::optional<std::vector<std::uint8_t>>(const std::string&)> psk_of,
             std::span<const std::uint8_t> ticket_key_entropy);

  void set_on_message(MessageFn fn) { on_message_ = std::move(fn); }

  std::size_t handshakes_completed() const { return handshakes_; }
  std::size_t zero_rtt_accepted() const { return zero_rtt_accepted_; }
  std::size_t zero_rtt_replays_blocked() const { return replays_blocked_; }
  std::size_t auth_failures() const { return auth_failures_; }

 private:
  void on_datagram(const EndpointId& from, util::Bytes data);
  void handle_client_hello(const EndpointId& from, util::ByteReader& r,
                           std::uint32_t conn_id);
  void handle_zero_rtt(const EndpointId& from, util::ByteReader& r,
                       std::uint32_t conn_id, std::span<const std::uint8_t> header);
  void handle_one_rtt(const EndpointId& from, util::ByteReader& r,
                      std::uint32_t conn_id, std::span<const std::uint8_t> header);
  void send_ack(const EndpointId& to, std::uint32_t conn_id, std::uint64_t pn,
                const std::vector<std::uint8_t>& key);

  struct Session {
    std::string client_id;
    std::vector<std::uint8_t> session_key;
  };

  Network& network_;
  EndpointId id_;
  std::function<std::optional<std::vector<std::uint8_t>>(const std::string&)> psk_of_;
  std::vector<std::uint8_t> ticket_key_;
  std::map<std::uint32_t, Session> sessions_;  // by connection id
  crypto::ReplayCache replay_cache_;
  MessageFn on_message_;
  std::size_t handshakes_ = 0;
  std::size_t zero_rtt_accepted_ = 0;
  std::size_t replays_blocked_ = 0;
  std::size_t auth_failures_ = 0;
};

class QuicClient {
 public:
  using ConnectFn = std::function<void(double connect_time)>;
  using AckFn = std::function<void(double ack_time)>;

  QuicClient(Network& network, EndpointId id, EndpointId server,
             std::string client_id, std::span<const std::uint8_t> psk,
             sim::Rng& rng);

  /// Starts a 1-RTT handshake; `on_connected` fires when ServerHello arrives.
  void connect(ConnectFn on_connected);
  /// Sends application data on the established session (requires connect()).
  void send(util::Bytes data, AckFn on_acked);
  /// Sends 0-RTT early data using a stored ticket. Returns false (and sends
  /// nothing) if no ticket is available yet.
  bool send_zero_rtt(util::Bytes data, AckFn on_acked);
  /// For replay-attack experiments: re-sends the last 0-RTT datagram bytes
  /// verbatim (what an on-path attacker would do).
  bool replay_last_zero_rtt();

  bool has_ticket() const { return !ticket_.empty(); }
  bool connected() const { return !session_key_.empty(); }

 private:
  void on_datagram(const EndpointId& from, util::Bytes data);
  void retransmit(std::uint64_t pn, util::Bytes datagram, int attempts);

  Network& network_;
  EndpointId id_;
  EndpointId server_;
  std::string client_id_;
  std::vector<std::uint8_t> psk_;
  sim::Rng& rng_;

  std::uint32_t conn_id_ = 0;
  std::uint64_t next_pn_ = 1;
  std::array<std::uint8_t, 16> client_random_{};
  std::vector<std::uint8_t> session_key_;
  std::vector<std::uint8_t> resumption_secret_;
  std::vector<std::uint8_t> zero_rtt_key_;
  util::Bytes ticket_;
  util::Bytes last_zero_rtt_datagram_;

  double connect_start_ = 0.0;
  ConnectFn on_connected_;
  std::map<std::uint64_t, std::pair<double, AckFn>> pending_acks_;  // pn -> (send time, cb)
  std::map<std::uint64_t, bool> acked_;
};

}  // namespace fiat::transport
