#include "transport/quic_lite.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "crypto/hkdf.hpp"
#include "crypto/hmac.hpp"
#include "util/error.hpp"

namespace fiat::transport {

namespace {

constexpr std::size_t kRandomLen = 16;

std::vector<std::uint8_t> derive_session_key(
    std::span<const std::uint8_t> psk, std::span<const std::uint8_t> client_random,
    std::span<const std::uint8_t> server_random) {
  std::vector<std::uint8_t> salt;
  salt.insert(salt.end(), client_random.begin(), client_random.end());
  salt.insert(salt.end(), server_random.begin(), server_random.end());
  return crypto::hkdf(salt, psk, "ql session", 32);
}

std::vector<std::uint8_t> derive_resumption(std::span<const std::uint8_t> session_key) {
  return crypto::hkdf({}, session_key, "ql resumption", 32);
}

std::vector<std::uint8_t> derive_zero_rtt(std::span<const std::uint8_t> resumption) {
  return crypto::hkdf({}, resumption, "ql early", 32);
}

// ClientHello/ServerHello integrity is a PSK-derived HMAC over the packet.
std::vector<std::uint8_t> derive_hs_mac_key(std::span<const std::uint8_t> psk) {
  return crypto::hkdf({}, psk, "ql hs mac", 32);
}

void append_mac(util::ByteWriter& w, std::span<const std::uint8_t> mac_key) {
  auto mac = crypto::hmac_sha256(mac_key,
                                 std::span<const std::uint8_t>(w.bytes().data(), w.size()));
  w.raw(std::span<const std::uint8_t>(mac.data(), 16));
}

bool check_and_strip_mac(std::span<const std::uint8_t> datagram,
                         std::span<const std::uint8_t> mac_key,
                         std::span<const std::uint8_t>& body_out) {
  if (datagram.size() < 16) return false;
  auto body = datagram.subspan(0, datagram.size() - 16);
  auto mac = datagram.subspan(datagram.size() - 16);
  auto expect = crypto::hmac_sha256(mac_key, body);
  if (!crypto::constant_time_equal(mac, std::span<const std::uint8_t>(expect.data(), 16))) {
    return false;
  }
  body_out = body;
  return true;
}

}  // namespace

// ---------------------------------------------------------------- server ---

QuicServer::QuicServer(
    Network& network, EndpointId id,
    std::function<std::optional<std::vector<std::uint8_t>>(const std::string&)> psk_of,
    std::span<const std::uint8_t> ticket_key_entropy)
    : network_(network), id_(std::move(id)), psk_of_(std::move(psk_of)) {
  ticket_key_ = crypto::hkdf({}, ticket_key_entropy, "ql ticket key", 32);
  network_.attach(id_, [this](const EndpointId& from, util::Bytes data) {
    on_datagram(from, std::move(data));
  });
}

void QuicServer::on_datagram(const EndpointId& from, util::Bytes data) {
  try {
    util::ByteReader r(data);
    auto type = static_cast<QuicPacketType>(r.u8());
    std::uint32_t conn_id = r.u32be();
    switch (type) {
      case QuicPacketType::kClientHello:
        handle_client_hello(from, r, conn_id);
        break;
      case QuicPacketType::kZeroRtt:
        handle_zero_rtt(from, r, conn_id, data);
        break;
      case QuicPacketType::kOneRttData:
        handle_one_rtt(from, r, conn_id, data);
        break;
      default:
        ++auth_failures_;
        break;
    }
  } catch (const ParseError&) {
    ++auth_failures_;
  }
}

void QuicServer::handle_client_hello(const EndpointId& from, util::ByteReader& r,
                                     std::uint32_t conn_id) {
  std::uint16_t id_len = r.u16be();
  std::string client_id = r.str(id_len);
  auto client_random = r.raw(kRandomLen);

  auto psk = psk_of_(client_id);
  if (!psk) {
    ++auth_failures_;  // unpaired device: reject silently (§5.4 Pairing)
    return;
  }
  // The remaining 16 bytes are the handshake MAC over everything before it.
  auto mac_key = derive_hs_mac_key(*psk);
  // Reconstruct the MAC'd body: the reader consumed type+conn+id+random; the
  // remaining bytes must be exactly the MAC.
  if (r.remaining() != 16) {
    ++auth_failures_;
    return;
  }
  // Note: we re-MAC the prefix of the original datagram.
  // (The original datagram is not directly available here, so the caller
  // passes it via handle_* for AEAD paths; for the hello we rebuild it.)
  util::ByteWriter rebuilt;
  rebuilt.u8(static_cast<std::uint8_t>(QuicPacketType::kClientHello));
  rebuilt.u32be(conn_id);
  rebuilt.u16be(id_len);
  rebuilt.raw(client_id);
  rebuilt.raw(client_random);
  auto expect = crypto::hmac_sha256(
      mac_key, std::span<const std::uint8_t>(rebuilt.bytes().data(), rebuilt.size()));
  auto mac = r.raw(16);
  if (!crypto::constant_time_equal(mac, std::span<const std::uint8_t>(expect.data(), 16))) {
    ++auth_failures_;
    return;
  }

  // Server random deterministic per (conn, client): HKDF from ticket key.
  std::vector<std::uint8_t> seed(client_random.begin(), client_random.end());
  seed.push_back(static_cast<std::uint8_t>(conn_id >> 24));
  seed.push_back(static_cast<std::uint8_t>(conn_id >> 16));
  seed.push_back(static_cast<std::uint8_t>(conn_id >> 8));
  seed.push_back(static_cast<std::uint8_t>(conn_id));
  auto server_random = crypto::hkdf(ticket_key_, seed, "ql server random", kRandomLen);

  auto session_key = derive_session_key(*psk, client_random, server_random);
  auto resumption = derive_resumption(session_key);

  // Ticket: AEAD(ticket_key, {client_id, resumption}) with conn_id as seq.
  util::ByteWriter ticket_plain;
  ticket_plain.u16be(static_cast<std::uint16_t>(client_id.size()));
  ticket_plain.raw(client_id);
  ticket_plain.raw(std::span<const std::uint8_t>(resumption.data(), resumption.size()));
  crypto::Aead ticket_aead(ticket_key_);
  auto ticket = ticket_aead.seal(crypto::Aead::nonce_from_seq(conn_id), {},
                                 std::span<const std::uint8_t>(
                                     ticket_plain.bytes().data(), ticket_plain.size()));
  // Prefix the nonce seq so the server can unseal later.
  util::ByteWriter ticket_wire;
  ticket_wire.u32be(conn_id);
  ticket_wire.raw(std::span<const std::uint8_t>(ticket.data(), ticket.size()));

  sessions_[conn_id] = Session{client_id, session_key, {}};
  ++handshakes_;

  util::ByteWriter hello;
  hello.u8(static_cast<std::uint8_t>(QuicPacketType::kServerHello));
  hello.u32be(conn_id);
  hello.raw(std::span<const std::uint8_t>(server_random.data(), server_random.size()));
  hello.u16be(static_cast<std::uint16_t>(ticket_wire.size()));
  hello.raw(std::span<const std::uint8_t>(ticket_wire.bytes().data(), ticket_wire.size()));
  append_mac(hello, mac_key);
  network_.send(id_, from, hello.take());
}

void QuicServer::handle_zero_rtt(const EndpointId& from, util::ByteReader& r,
                                 std::uint32_t conn_id,
                                 std::span<const std::uint8_t> datagram) {
  std::uint64_t pn = r.u64be();
  std::uint64_t nonce = r.u64be();
  std::uint16_t ticket_len = r.u16be();
  auto ticket_wire = r.raw(ticket_len);

  // Unseal the ticket.
  util::ByteReader tr(ticket_wire);
  std::uint32_t ticket_seq = tr.u32be();
  auto sealed = tr.raw(tr.remaining());
  crypto::Aead ticket_aead(ticket_key_);
  auto plain = ticket_aead.open(crypto::Aead::nonce_from_seq(ticket_seq), {}, sealed);
  if (!plain) {
    ++auth_failures_;
    return;
  }
  util::ByteReader pr(*plain);
  std::uint16_t id_len = pr.u16be();
  std::string client_id = pr.str(id_len);
  auto res_span = pr.raw(32);
  std::vector<std::uint8_t> resumption_secret(res_span.begin(), res_span.end());

  auto zero_key = derive_zero_rtt(resumption_secret);
  crypto::Aead aead(zero_key);
  // AAD: the datagram header up to and including the ticket.
  std::size_t header_len = datagram.size() - r.remaining();
  auto header = datagram.subspan(0, header_len);
  auto sealed_payload = r.raw(r.remaining());
  auto payload = aead.open(crypto::Aead::nonce_from_seq(pn ^ nonce), header, sealed_payload);
  if (!payload) {
    ++auth_failures_;
    return;
  }

  // Replay defence, after authentication: a duplicate nonce is never
  // *delivered* twice, but it is re-acknowledged — a client retransmitting
  // because the original ack was lost must not be left hanging. Only
  // authenticated duplicates earn the re-ack, so an attacker cannot probe.
  if (!replay_cache_.check_and_insert(nonce, network_.scheduler().now())) {
    ++replays_blocked_;
    send_ack(from, conn_id, pn, zero_key);
    return;
  }

  ++zero_rtt_accepted_;
  if (on_message_) {
    QuicDelivery d;
    d.client_id = client_id;
    d.data = *payload;
    d.zero_rtt = true;
    d.receive_time = network_.scheduler().now();
    on_message_(d);
  }
  send_ack(from, conn_id, pn, zero_key);
}

void QuicServer::handle_one_rtt(const EndpointId& from, util::ByteReader& r,
                                std::uint32_t conn_id,
                                std::span<const std::uint8_t> datagram) {
  auto session = sessions_.find(conn_id);
  if (session == sessions_.end()) {
    ++auth_failures_;
    return;
  }
  std::uint64_t pn = r.u64be();
  crypto::Aead aead(session->second.session_key);
  std::size_t header_len = datagram.size() - r.remaining();
  auto header = datagram.subspan(0, header_len);
  auto sealed_payload = r.raw(r.remaining());
  auto payload = aead.open(crypto::Aead::nonce_from_seq(pn), header, sealed_payload);
  if (!payload) {
    ++auth_failures_;
    return;
  }
  if (!session->second.delivered_pns.insert(pn).second) {
    // Authenticated duplicate (our ack died and the client retransmitted):
    // re-ack so the sender stops, but never deliver twice.
    send_ack(from, conn_id, pn, session->second.session_key);
    return;
  }
  if (on_message_) {
    QuicDelivery d;
    d.client_id = session->second.client_id;
    d.data = *payload;
    d.zero_rtt = false;
    d.receive_time = network_.scheduler().now();
    on_message_(d);
  }
  send_ack(from, conn_id, pn, session->second.session_key);
}

void QuicServer::send_ack(const EndpointId& to, std::uint32_t conn_id,
                          std::uint64_t pn, const std::vector<std::uint8_t>& key) {
  util::ByteWriter ack;
  ack.u8(static_cast<std::uint8_t>(QuicPacketType::kAck));
  ack.u32be(conn_id);
  ack.u64be(pn);
  auto mac_key = crypto::hkdf({}, key, "ql ack mac", 32);
  append_mac(ack, mac_key);
  network_.send(id_, to, ack.take());
}

// ---------------------------------------------------------------- client ---

QuicClient::QuicClient(Network& network, EndpointId id, EndpointId server,
                       std::string client_id, std::span<const std::uint8_t> psk,
                       sim::Rng& rng, QuicRetryConfig retry)
    : network_(network),
      id_(std::move(id)),
      server_(std::move(server)),
      client_id_(std::move(client_id)),
      psk_(psk.begin(), psk.end()),
      rng_(rng),
      retry_(retry) {
  conn_id_ = static_cast<std::uint32_t>(rng_.next());
  network_.attach(id_, [this](const EndpointId& from, util::Bytes data) {
    on_datagram(from, std::move(data));
  });
}

void QuicClient::set_telemetry(telemetry::Sink* sink, std::uint32_t home) {
  telemetry_ = sink;
  telemetry_home_ = home;
  tm_handshake_ = tm_ack_ = nullptr;
  tm_retransmits_ = tm_fallbacks_ = tm_failures_ = tm_connects_ = nullptr;
  if (!sink) return;
  auto& m = sink->metrics;
  tm_handshake_ = &m.histogram("quic.handshake_seconds");
  tm_ack_ = &m.histogram("quic.ack_seconds");
  tm_retransmits_ = &m.counter("quic.retransmits");
  tm_fallbacks_ = &m.counter("quic.zero_rtt_fallbacks");
  tm_failures_ = &m.counter("quic.failures");
  tm_connects_ = &m.counter("quic.connects");
}

void QuicClient::connect(ConnectFn on_connected, FailFn on_failed) {
  on_connected_ = std::move(on_connected);
  on_connect_failed_ = std::move(on_failed);
  conn_id_ = static_cast<std::uint32_t>(rng_.next());
  connect_start_ = network_.scheduler().now();
  rng_.fill_bytes(client_random_);
  session_key_.clear();  // a reconnect voids the old session until it completes

  util::ByteWriter hello;
  hello.u8(static_cast<std::uint8_t>(QuicPacketType::kClientHello));
  hello.u32be(conn_id_);
  hello.u16be(static_cast<std::uint16_t>(client_id_.size()));
  hello.raw(client_id_);
  hello.raw(std::span<const std::uint8_t>(client_random_.data(), client_random_.size()));
  append_mac(hello, derive_hs_mac_key(psk_));
  util::Bytes datagram = hello.take();
  network_.send(id_, server_, datagram);
  retransmit(0, std::move(datagram), 1);  // pn 0 reserved for the handshake
}

double QuicClient::backoff_timeout(int attempts) {
  double timeout = retry_.initial_timeout;
  for (int i = 1; i < attempts; ++i) timeout *= retry_.multiplier;
  timeout = std::min(timeout, retry_.max_timeout);
  if (retry_.jitter > 0.0) {
    timeout *= 1.0 + retry_.jitter * (2.0 * rng_.uniform() - 1.0);
  }
  return timeout;
}

void QuicClient::retransmit(std::uint64_t pn, util::Bytes datagram, int attempts) {
  if (attempts > retry_.max_retransmits) {
    // Last chance was sent; check back after one more timeout whether it
    // made it, and declare terminal failure if not.
    network_.scheduler().after(backoff_timeout(attempts),
                               [this, pn]() { on_budget_exhausted(pn); });
    return;
  }
  network_.scheduler().after(backoff_timeout(attempts), [this, pn, datagram,
                                                         attempts]() {
    bool done = (pn == 0) ? connected() : acked_[pn];
    if (done) return;
    ++retransmits_;
    if (tm_retransmits_) tm_retransmits_->inc();
    if (auto it = pending_acks_.find(pn); it != pending_acks_.end()) {
      ++it->second.rexmits;
    }
    network_.send(id_, server_, datagram);
    retransmit(pn, datagram, attempts + 1);
  });
}

void QuicClient::fail(FailFn& specific) {
  ++failures_;
  if (tm_failures_) tm_failures_->inc();
  FailFn cb = specific ? std::move(specific) : on_failed_;
  if (cb) cb();
}

void QuicClient::on_budget_exhausted(std::uint64_t pn) {
  if (pn == 0) {
    if (connected()) return;
    FailFn cb = std::exchange(on_connect_failed_, nullptr);
    on_connected_ = nullptr;
    fail(cb);
    return;
  }
  auto it = pending_acks_.find(pn);
  if (it == pending_acks_.end() || acked_[pn]) return;
  Pending pending = std::move(it->second);
  pending_acks_.erase(it);
  acked_[pn] = true;  // silence any still-scheduled retransmit timers

  if (pending.zero_rtt && retry_.fallback_to_1rtt) {
    // The ticket (or the path) is no good: burn it and push the same
    // payload through a fresh full handshake. Only a second exhaustion is
    // a terminal failure.
    ++fallbacks_;
    if (tm_fallbacks_) tm_fallbacks_->inc();
    ticket_.clear();
    zero_rtt_key_.clear();
    last_zero_rtt_datagram_.clear();
    auto plaintext = std::make_shared<util::Bytes>(std::move(pending.plaintext));
    auto on_acked = std::make_shared<AckFn>(std::move(pending.on_acked));
    auto on_failed = std::make_shared<FailFn>(std::move(pending.on_failed));
    connect(
        [this, plaintext, on_acked, on_failed](double) {
          send(std::move(*plaintext), std::move(*on_acked), std::move(*on_failed));
        },
        [this, on_failed]() { fail(*on_failed); });
    return;
  }
  fail(pending.on_failed);
}

void QuicClient::send(util::Bytes data, AckFn on_acked, FailFn on_failed) {
  if (!connected()) throw LogicError("QuicClient::send before connect completes");
  std::uint64_t pn = next_pn_++;
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(QuicPacketType::kOneRttData));
  w.u32be(conn_id_);
  w.u64be(pn);
  crypto::Aead aead(session_key_);
  auto sealed = aead.seal(crypto::Aead::nonce_from_seq(pn),
                          std::span<const std::uint8_t>(w.bytes().data(), w.size()),
                          std::span<const std::uint8_t>(data.data(), data.size()));
  w.raw(std::span<const std::uint8_t>(sealed.data(), sealed.size()));
  util::Bytes datagram = w.take();
  pending_acks_[pn] = Pending{network_.scheduler().now(), std::move(on_acked),
                              std::move(on_failed), {}, /*zero_rtt=*/false};
  acked_[pn] = false;
  network_.send(id_, server_, datagram);
  retransmit(pn, std::move(datagram), 1);
}

bool QuicClient::send_zero_rtt(util::Bytes data, AckFn on_acked, FailFn on_failed) {
  if (!has_ticket()) return false;
  std::uint64_t pn = next_pn_++;
  std::uint64_t nonce = rng_.next();
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(QuicPacketType::kZeroRtt));
  w.u32be(conn_id_);
  w.u64be(pn);
  w.u64be(nonce);
  w.u16be(static_cast<std::uint16_t>(ticket_.size()));
  w.raw(std::span<const std::uint8_t>(ticket_.data(), ticket_.size()));
  crypto::Aead aead(zero_rtt_key_);
  auto sealed = aead.seal(crypto::Aead::nonce_from_seq(pn ^ nonce),
                          std::span<const std::uint8_t>(w.bytes().data(), w.size()),
                          std::span<const std::uint8_t>(data.data(), data.size()));
  w.raw(std::span<const std::uint8_t>(sealed.data(), sealed.size()));
  util::Bytes datagram = w.take();
  last_zero_rtt_datagram_ = datagram;
  pending_acks_[pn] = Pending{network_.scheduler().now(), std::move(on_acked),
                              std::move(on_failed), data, /*zero_rtt=*/true};
  acked_[pn] = false;
  network_.send(id_, server_, datagram);
  retransmit(pn, std::move(datagram), 1);
  return true;
}

bool QuicClient::replay_last_zero_rtt() {
  if (last_zero_rtt_datagram_.empty()) return false;
  network_.send(id_, server_, last_zero_rtt_datagram_);
  return true;
}

void QuicClient::on_datagram(const EndpointId& /*from*/, util::Bytes data) {
  try {
    util::ByteReader r(data);
    auto type = static_cast<QuicPacketType>(r.u8());
    std::uint32_t conn_id = r.u32be();
    if (conn_id != conn_id_) return;

    if (type == QuicPacketType::kServerHello) {
      if (connected()) return;  // duplicate (retransmitted hello)
      std::span<const std::uint8_t> body;
      if (!check_and_strip_mac(data, derive_hs_mac_key(psk_), body)) return;
      auto server_random = r.raw(kRandomLen);
      std::uint16_t ticket_len = r.u16be();
      auto ticket = r.raw(ticket_len);
      session_key_ = derive_session_key(psk_, client_random_, server_random);
      resumption_secret_ = derive_resumption(session_key_);
      zero_rtt_key_ = derive_zero_rtt(resumption_secret_);
      ticket_.assign(ticket.begin(), ticket.end());
      on_connect_failed_ = nullptr;
      double elapsed = network_.scheduler().now() - connect_start_;
      if (telemetry_) {
        tm_connects_->inc();
        tm_handshake_->record(elapsed);
        if (telemetry_->trace.enabled()) {
          telemetry::TraceSpan span;
          span.name = "handshake";
          span.category = "quic.handshake";
          span.start = connect_start_;
          span.duration = elapsed;
          span.home = telemetry_home_;
          span.track = client_id_;
          telemetry_->trace.record(std::move(span));
        }
      }
      if (on_connected_) {
        auto cb = std::move(on_connected_);
        on_connected_ = nullptr;
        cb(elapsed);
      }
    } else if (type == QuicPacketType::kAck) {
      std::uint64_t pn = r.u64be();
      auto it = pending_acks_.find(pn);
      if (it == pending_acks_.end() || acked_[pn]) return;
      // Verify the ack MAC under whichever key the packet used.
      std::span<const std::uint8_t> body;
      bool ok = false;
      if (!session_key_.empty()) {
        ok = check_and_strip_mac(data, crypto::hkdf({}, session_key_, "ql ack mac", 32), body);
      }
      if (!ok && !zero_rtt_key_.empty()) {
        ok = check_and_strip_mac(data, crypto::hkdf({}, zero_rtt_key_, "ql ack mac", 32), body);
      }
      if (!ok) return;
      acked_[pn] = true;
      double elapsed = network_.scheduler().now() - it->second.send_time;
      if (telemetry_) {
        tm_ack_->record(elapsed);
        if (telemetry_->trace.enabled()) {
          // One span per proof journey: send (+ any retransmits) -> ack.
          telemetry::TraceSpan span;
          span.name = it->second.zero_rtt ? "send-0rtt" : "send-1rtt";
          span.category = "quic.proof";
          span.start = it->second.send_time;
          span.duration = elapsed;
          span.home = telemetry_home_;
          span.track = client_id_;
          span.args = {{"rexmits", std::to_string(it->second.rexmits)}};
          telemetry_->trace.record(std::move(span));
        }
      }
      auto cb = std::move(it->second.on_acked);
      pending_acks_.erase(it);
      if (cb) cb(elapsed);
    }
  } catch (const ParseError&) {
    // Corrupt datagram: ignore (datagram networks drop garbage).
  }
}

}  // namespace fiat::transport
