#include "transport/tcp_model.hpp"

#include <algorithm>

namespace fiat::transport {

double sample_tcp_first_byte(sim::Rng& rng, const NetPath& path, bool with_tls) {
  // SYN + SYN/ACK (1 RTT), optional TLS 1.3 flight (1 RTT), then data
  // reaching the peer (0.5 RTT) and its response (0.5 RTT).
  double total = 0.0;
  int one_way_legs = with_tls ? 8 : 6;  // each RTT = 2 legs
  for (int leg = 0; leg < one_way_legs; ++leg) total += path.sample_owd(rng);
  // Peer processing (handshake crypto, app logic): a few ms.
  total += rng.uniform(0.002, 0.008);
  return total;
}

DelayedTransferResult simulate_delayed_command(double rtt, double extra_delay,
                                               const RtoConfig& config) {
  DelayedTransferResult result;

  // The first copy of the packet arrives at rtt/2 + extra_delay; its ACK is
  // back at the sender at rtt + extra_delay. Retransmissions do not finish
  // earlier (same path, same proxy delay), so the earliest possible ack is:
  double ack_time = rtt + extra_delay;

  // Count RTO firings strictly before the ack lands; each firing consumes a
  // retry. If the budget is exhausted first, the connection is reset.
  double rto = config.initial_rto;
  double next_fire = rto;
  while (next_fire < ack_time) {
    ++result.retransmissions;
    if (result.retransmissions > config.max_retries) {
      result.completed = false;
      result.completion_time = next_fire;
      return result;
    }
    rto = std::min(rto * 2.0, config.max_rto);
    next_fire += rto;
  }

  if (ack_time > config.app_timeout) {
    result.completed = false;
    result.completion_time = ack_time;
    return result;
  }
  result.completed = true;
  result.completion_time = ack_time;
  return result;
}

}  // namespace fiat::transport
