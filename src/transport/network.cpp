#include "transport/network.hpp"

#include "util/error.hpp"

namespace fiat::transport {

void Network::attach(const EndpointId& id, ReceiveFn on_receive) {
  if (!on_receive) throw LogicError("Network::attach: empty callback");
  endpoints_[id] = std::move(on_receive);
}

void Network::set_path(const EndpointId& from, const EndpointId& to,
                       PathProfile profile) {
  paths_.insert_or_assign({from, to}, NetPath(std::move(profile)));
}

void Network::send(const EndpointId& from, const EndpointId& to, util::Bytes data) {
  ++sent_;
  auto path_it = paths_.find({from, to});
  if (path_it == paths_.end()) throw LogicError("Network: no path " + from + "->" + to);
  if (path_it->second.sample_loss(rng_)) {
    ++dropped_;
    return;
  }
  double delay = path_it->second.sample_owd(rng_);
  scheduler_.after(delay, [this, from, to, data = std::move(data)]() mutable {
    auto ep = endpoints_.find(to);
    if (ep == endpoints_.end()) {
      ++dropped_;
      return;
    }
    ep->second(from, std::move(data));
  });
}

}  // namespace fiat::transport
