#include "transport/network.hpp"

#include "util/error.hpp"

namespace fiat::transport {

void Network::attach(const EndpointId& id, ReceiveFn on_receive) {
  if (!on_receive) throw LogicError("Network::attach: empty callback");
  endpoints_[id] = std::move(on_receive);
}

void Network::set_path(const EndpointId& from, const EndpointId& to,
                       PathProfile profile) {
  paths_.insert_or_assign({from, to}, NetPath(std::move(profile)));
}

void Network::set_fault_plan(const EndpointId& from, const EndpointId& to,
                             sim::FaultPlan plan) {
  if (!paths_.contains({from, to})) {
    throw LogicError("Network: fault plan on unknown path " + from + "->" + to);
  }
  faults_.insert_or_assign({from, to}, sim::FaultInjector(std::move(plan)));
}

const sim::FaultInjector* Network::fault_injector(const EndpointId& from,
                                                  const EndpointId& to) const {
  auto it = faults_.find({from, to});
  return it == faults_.end() ? nullptr : &it->second;
}

void Network::set_telemetry(telemetry::Sink* sink, std::uint32_t home) {
  telemetry_ = sink;
  telemetry_home_ = home;
  tm_sent_ = tm_dropped_ = tm_duplicated_ = tm_corrupted_ = nullptr;
  tm_delay_ = nullptr;
  if (!sink) return;
  auto& m = sink->metrics;
  tm_sent_ = &m.counter("net.datagrams_sent");
  tm_dropped_ = &m.counter("net.datagrams_dropped");
  tm_duplicated_ = &m.counter("net.datagrams_duplicated");
  tm_corrupted_ = &m.counter("net.datagrams_corrupted");
  tm_delay_ = &m.histogram("net.delay_seconds");
}

void Network::deliver_after(double delay, const EndpointId& from,
                            const EndpointId& to, util::Bytes data) {
  scheduler_.after(delay, [this, from, to, data = std::move(data)]() mutable {
    auto ep = endpoints_.find(to);
    if (ep == endpoints_.end()) {
      ++dropped_;
      if (tm_dropped_) tm_dropped_->inc();
      return;
    }
    ep->second(from, std::move(data));
  });
}

void Network::send(const EndpointId& from, const EndpointId& to, util::Bytes data) {
  ++sent_;
  if (tm_sent_) tm_sent_->inc();
  auto fault_span = [this, &from, &to](const char* name) {
    if (!telemetry_ || !telemetry_->trace.enabled()) return;
    telemetry::TraceSpan span;
    span.name = name;
    span.category = "net.fault";
    span.start = scheduler_.now();
    span.home = telemetry_home_;
    span.track = from + "->" + to;
    telemetry_->trace.record(std::move(span));
  };
  auto path_it = paths_.find({from, to});
  if (path_it == paths_.end()) throw LogicError("Network: no path " + from + "->" + to);
  if (path_it->second.sample_loss(rng_)) {
    ++dropped_;
    if (tm_dropped_) tm_dropped_->inc();
    return;
  }
  double delay = path_it->second.sample_owd(rng_);

  auto fault_it = faults_.find({from, to});
  if (fault_it != faults_.end()) {
    sim::FaultDecision fate = fault_it->second.on_datagram(scheduler_.now(), rng_);
    if (fate.drop) {
      ++dropped_;
      if (tm_dropped_) tm_dropped_->inc();
      fault_span("fault-drop");
      return;
    }
    if (fate.corrupt) {
      ++corrupted_;
      if (tm_corrupted_) tm_corrupted_->inc();
      fault_span("fault-corrupt");
      sim::corrupt_bytes(data, rng_);
    }
    if (fate.duplicate) {
      ++duplicated_;
      if (tm_duplicated_) tm_duplicated_->inc();
      fault_span("fault-duplicate");
      // The duplicate copy rides its own (later) delivery event.
      deliver_after(delay + fate.extra_delay + fate.duplicate_delay, from, to, data);
    }
    delay += fate.extra_delay;
  }
  if (tm_delay_) tm_delay_->record(delay);
  deliver_after(delay, from, to, std::move(data));
}

}  // namespace fiat::transport
