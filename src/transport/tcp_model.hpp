// TCP(+TLS 1.3) latency baseline and the delay-tolerance model.
//
// Two uses in the evaluation:
//  * Table 7 context: all testbed IoT devices speak TCP; the "time to first
//    packet" of an IoT command includes TCP/TLS connection setup to the
//    cloud, which FIAT's QUIC 0-RTT channel undercuts.
//  * §6 final experiment: FIAT's proxy may hold packets while humanness
//    validation completes. The paper found every device tolerates ~2 s of
//    added delay because TCP absorbs it with timeouts/retransmissions. We
//    model an RFC 6298-style retransmission schedule to regenerate that
//    tolerance curve (bench_delay_tolerance).
#pragma once

#include "sim/rng.hpp"
#include "transport/netpath.hpp"

namespace fiat::transport {

/// Samples the latency until the first application byte is delivered over a
/// fresh TCP connection: 1 RTT handshake (+ optional 1 RTT TLS 1.3) + the
/// data flight, each leg with independently sampled delays.
double sample_tcp_first_byte(sim::Rng& rng, const NetPath& path, bool with_tls);

struct DelayedTransferResult {
  bool completed = false;
  double completion_time = 0.0;  // sender-side ack time, seconds
  int retransmissions = 0;
};

struct RtoConfig {
  double initial_rto = 1.0;   // RFC 6298 floor once RTT estimates exist
  double max_rto = 60.0;
  int max_retries = 6;        // typical net.ipv4.tcp_retries2 territory
  double app_timeout = 15.0;  // device/app gives up after this
};

/// Models a command packet whose delivery the FIAT proxy delays by
/// `extra_delay` seconds on top of the path RTT. The sender retransmits on an
/// exponential-backoff RTO schedule; every (re)transmission is subject to the
/// same proxy delay. Completion = the first ACK returning before the
/// application timeout and within the retry budget.
DelayedTransferResult simulate_delayed_command(double rtt, double extra_delay,
                                               const RtoConfig& config = {});

}  // namespace fiat::transport
