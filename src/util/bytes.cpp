#include "util/bytes.hpp"

#include <bit>

#include "util/error.hpp"

namespace fiat::util {

void ByteWriter::u16be(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32be(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u64be(std::uint64_t v) {
  u32be(static_cast<std::uint32_t>(v >> 32));
  u32be(static_cast<std::uint32_t>(v));
}

void ByteWriter::u16le(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32le(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
}

void ByteWriter::u64le(std::uint64_t v) {
  u32le(static_cast<std::uint32_t>(v));
  u32le(static_cast<std::uint32_t>(v >> 32));
}

void ByteWriter::f64be(double v) { u64be(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::raw(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::raw(std::string_view data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::pad(std::size_t n, std::uint8_t fill) {
  buf_.insert(buf_.end(), n, fill);
}

void ByteWriter::patch_u16be(std::size_t offset, std::uint16_t v) {
  if (offset + 2 > buf_.size()) throw LogicError("patch_u16be out of range");
  buf_[offset] = static_cast<std::uint8_t>(v >> 8);
  buf_[offset + 1] = static_cast<std::uint8_t>(v);
}

void ByteWriter::patch_u32be(std::size_t offset, std::uint32_t v) {
  if (offset + 4 > buf_.size()) throw LogicError("patch_u32be out of range");
  buf_[offset] = static_cast<std::uint8_t>(v >> 24);
  buf_[offset + 1] = static_cast<std::uint8_t>(v >> 16);
  buf_[offset + 2] = static_cast<std::uint8_t>(v >> 8);
  buf_[offset + 3] = static_cast<std::uint8_t>(v);
}

void ByteReader::require(std::size_t n) const {
  if (pos_ + n > data_.size()) throw ParseError("byte reader underrun");
}

std::uint8_t ByteReader::u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16be() {
  require(2);
  auto v = static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32be() {
  require(4);
  std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                    (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                    (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                    static_cast<std::uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64be() {
  std::uint64_t hi = u32be();
  std::uint64_t lo = u32be();
  return (hi << 32) | lo;
}

std::uint16_t ByteReader::u16le() {
  require(2);
  auto v = static_cast<std::uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32le() {
  require(4);
  std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) |
                    (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8) |
                    (static_cast<std::uint32_t>(data_[pos_ + 2]) << 16) |
                    (static_cast<std::uint32_t>(data_[pos_ + 3]) << 24);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64le() {
  std::uint64_t lo = u32le();
  std::uint64_t hi = u32le();
  return (hi << 32) | lo;
}

double ByteReader::f64be() { return std::bit_cast<double>(u64be()); }

std::span<const std::uint8_t> ByteReader::raw(std::size_t n) {
  require(n);
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::string ByteReader::str(std::size_t n) {
  auto view = raw(n);
  return std::string(view.begin(), view.end());
}

void ByteReader::skip(std::size_t n) {
  require(n);
  pos_ += n;
}

std::uint8_t ByteReader::peek_u8(std::size_t ahead) const {
  require(ahead + 1);
  return data_[pos_ + ahead];
}

}  // namespace fiat::util
