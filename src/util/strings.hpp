// Small string helpers used by DNS name handling and report formatting.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace fiat::util {

/// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Joins with a delimiter string.
std::string join(const std::vector<std::string>& parts, std::string_view delim);

/// ASCII lower-casing (DNS names are case-insensitive).
std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Fixed-precision float formatting for benchmark tables ("0.93", "1130.4").
std::string fmt(double v, int precision);

}  // namespace fiat::util
