#include "util/hex.hpp"

#include "util/error.hpp"

namespace fiat::util {

namespace {
constexpr char kDigits[] = "0123456789abcdef";

int nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (auto b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

std::vector<std::uint8_t> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) throw ParseError("hex string has odd length");
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = nibble(hex[i]);
    int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) throw ParseError("invalid hex digit");
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

}  // namespace fiat::util
