// Hex encoding/decoding helpers (used for key fingerprints, log output, and
// test vectors).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace fiat::util {

/// Lower-case hex encoding of a byte span.
std::string to_hex(std::span<const std::uint8_t> data);

/// Decodes a hex string (case-insensitive, even length). Throws
/// fiat::ParseError on bad input.
std::vector<std::uint8_t> from_hex(std::string_view hex);

}  // namespace fiat::util
