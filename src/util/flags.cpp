#include "util/flags.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace fiat::util {

Flags Flags::parse(int argc, char** argv, int start) {
  Flags flags;
  for (int i = start; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      std::string name = token.substr(2);
      if (name.empty()) throw ParseError("bare '--' is not a valid option");
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        flags.options_[name] = argv[++i];
      } else {
        flags.options_[name] = "";
      }
    } else {
      flags.positional_.push_back(token);
    }
  }
  return flags;
}

std::optional<std::string> Flags::get(const std::string& name) const {
  auto it = options_.find(name);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

std::string Flags::get_or(const std::string& name, const std::string& fallback) const {
  return get(name).value_or(fallback);
}

double Flags::number_or(const std::string& name, double fallback) const {
  auto value = get(name);
  if (!value || value->empty()) return fallback;
  char* end = nullptr;
  double parsed = std::strtod(value->c_str(), &end);
  if (end == value->c_str() || *end != '\0') {
    throw ParseError("option --" + name + " expects a number, got '" + *value + "'");
  }
  return parsed;
}

}  // namespace fiat::util
