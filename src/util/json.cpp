#include "util/json.hpp"

#include <cctype>
#include <cstdio>

namespace fiat::util {

Json& Json::put(const std::string& key, Json value) {
  fields_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::put(const std::string& key, const std::string& value) {
  Json j(Kind::kString);
  j.string_ = value;
  return put(key, std::move(j));
}

Json& Json::put(const std::string& key, const char* value) {
  return put(key, std::string(value));
}

Json& Json::put(const std::string& key, double value) {
  Json j(Kind::kNumber);
  j.number_ = value;
  return put(key, std::move(j));
}

Json& Json::put(const std::string& key, std::size_t value) {
  Json j(Kind::kInteger);
  j.integer_ = value;
  return put(key, std::move(j));
}

Json& Json::put(const std::string& key, bool value) {
  Json j(Kind::kBool);
  j.boolean_ = value;
  return put(key, std::move(j));
}

Json& Json::push(Json value) {
  items_.push_back(std::move(value));
  return *this;
}

Json& Json::push(double value) {
  Json j(Kind::kNumber);
  j.number_ = value;
  return push(std::move(j));
}

Json& Json::push(std::size_t value) {
  Json j(Kind::kInteger);
  j.integer_ = value;
  return push(std::move(j));
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  auto pad = [&](int d) {
    if (indent > 0) out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  char buf[64];
  switch (kind_) {
    case Kind::kNumber:
      std::snprintf(buf, sizeof(buf), "%.6g", number_);
      out += buf;
      break;
    case Kind::kInteger:
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(integer_));
      out += buf;
      break;
    case Kind::kBool:
      out += boolean_ ? "true" : "false";
      break;
    case Kind::kString:
      out += '"';
      for (char c : string_) {
        if (c == '"' || c == '\\') {
          out += '\\';
          out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
      }
      out += '"';
      break;
    case Kind::kArray:
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < items_.size(); ++i) {
        pad(depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < items_.size()) out += ',';
        out += '\n';
      }
      pad(depth);
      out += ']';
      break;
    case Kind::kObject:
      if (fields_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < fields_.size(); ++i) {
        pad(depth + 1);
        out += '"';
        out += fields_[i].first;
        out += "\": ";
        fields_[i].second.dump_to(out, indent, depth + 1);
        if (i + 1 < fields_.size()) out += ',';
        out += '\n';
      }
      pad(depth);
      out += '}';
      break;
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ---- validator --------------------------------------------------------------

namespace {

/// Recursive-descent RFC 8259 parser that keeps no values — only validity.
class JsonScanner {
 public:
  explicit JsonScanner(std::string_view text) : text_(text) {}

  bool scan(std::string* error) {
    skip_ws();
    if (!value()) return fail(error);
    skip_ws();
    if (pos_ != text_.size()) {
      reason_ = "trailing content after top-level value";
      return fail(error);
    }
    return true;
  }

 private:
  bool fail(std::string* error) const {
    if (reason_.empty()) return true;
    if (error) {
      *error = reason_ + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool error_out(const char* why) {
    if (reason_.empty()) reason_ = why;
    return false;
  }

  bool value() {
    if (pos_ >= text_.size()) return error_out("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return error_out("invalid literal");
    }
    pos_ += word.size();
    return true;
  }

  bool object() {
    if (++depth_ > kMaxDepth) return error_out("nesting depth limit exceeded");
    ++pos_;  // '{'
    skip_ws();
    if (eat('}')) return --depth_, true;
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return error_out("expected object key string");
      }
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return error_out("expected ':' after object key");
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat('}')) return --depth_, true;
      if (!eat(',')) return error_out("expected ',' or '}' in object");
    }
  }

  bool array() {
    if (++depth_ > kMaxDepth) return error_out("nesting depth limit exceeded");
    ++pos_;  // '['
    skip_ws();
    if (eat(']')) return --depth_, true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat(']')) return --depth_, true;
      if (!eat(',')) return error_out("expected ',' or ']' in array");
    }
  }

  bool string() {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return error_out("unescaped control character in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return error_out("truncated escape");
        char e = text_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + static_cast<std::size_t>(i) >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return error_out("invalid \\u escape");
            }
          }
          pos_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return error_out("invalid escape character");
        }
      }
      ++pos_;
    }
    return error_out("unterminated string");
  }

  bool digits() {
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return false;
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return true;
  }

  bool number() {
    eat('-');
    // Integer part: 0, or a nonzero digit followed by digits (no leading 0s).
    if (eat('0')) {
      // ok
    } else if (!digits()) {
      return error_out("invalid number");
    }
    if (eat('.')) {
      if (!digits()) return error_out("digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digits()) return error_out("digits required in exponent");
    }
    return true;
  }

  /// Containers are parsed by recursion, so attacker-supplied input like
  /// "[[[[..." converts directly into C++ stack frames. Cap the nesting well
  /// below any real stack limit and reject, instead of overflowing.
  static constexpr int kMaxDepth = 128;

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string reason_;
};

}  // namespace

bool json_valid(std::string_view text, std::string* error) {
  return JsonScanner(text).scan(error);
}

bool write_json_file(const std::string& path, const Json& json) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::string text = json.dump();
  text += '\n';
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace fiat::util
