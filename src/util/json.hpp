// Minimal JSON support shared by non-bench emitters (telemetry exporters,
// the CLI) and the benches: a value *builder* (objects, arrays, numbers,
// strings, bools) plus a strict RFC 8259 *validator* used by the CI smoke
// step and the export tests. Promoted out of bench/common.hpp so library
// code never has to link bench helpers to write JSON.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fiat::util {

/// Minimal JSON value builder (objects, arrays, numbers, strings, bools).
class Json {
 public:
  static Json object() { return Json(Kind::kObject); }
  static Json array() { return Json(Kind::kArray); }

  /// Object field setters (chainable). Integers are emitted without an
  /// exponent so diffs stay readable.
  Json& put(const std::string& key, Json value);
  Json& put(const std::string& key, const std::string& value);
  Json& put(const std::string& key, const char* value);
  Json& put(const std::string& key, double value);
  Json& put(const std::string& key, std::size_t value);
  Json& put(const std::string& key, bool value);

  /// Array appenders (chainable).
  Json& push(Json value);
  Json& push(double value);
  Json& push(std::size_t value);

  std::string dump(int indent = 2) const;

 private:
  enum class Kind { kObject, kArray, kNumber, kInteger, kString, kBool };
  explicit Json(Kind kind) : kind_(kind) {}

  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  double number_ = 0.0;
  std::uint64_t integer_ = 0;
  bool boolean_ = false;
  std::string string_;
  std::vector<Json> items_;                           // kArray
  std::vector<std::pair<std::string, Json>> fields_;  // kObject
};

/// Strict validation of one complete JSON document (RFC 8259: one top-level
/// value, no trailing content). On failure, `error` (when non-null) receives
/// a byte offset + reason. Container nesting deeper than 128 levels is
/// rejected rather than recursed into (stack-overflow guard for untrusted
/// input). No external dependencies — this is what the CI smoke validator
/// and the telemetry export tests run on emitted files.
bool json_valid(std::string_view text, std::string* error = nullptr);

/// Writes `json.dump()` + trailing newline to `path`. Returns false when the
/// file cannot be written. Silent; callers print their own breadcrumbs.
bool write_json_file(const std::string& path, const Json& json);

}  // namespace fiat::util
