// Endian-safe byte buffer reader/writer used by all wire-format codecs
// (Ethernet/IP/TCP/UDP frames, pcap files, DNS messages, QuicLite packets).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace fiat::util {

using Bytes = std::vector<std::uint8_t>;

/// Appends big-endian (network order) and little-endian integers and raw
/// bytes to a growable buffer. All writes are appends; random-access patching
/// is available via patch_u16be/patch_u32be for length fields.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16be(std::uint16_t v);
  void u32be(std::uint32_t v);
  void u64be(std::uint64_t v);
  void u16le(std::uint16_t v);
  void u32le(std::uint32_t v);
  void u64le(std::uint64_t v);
  /// IEEE-754 double as its big-endian bit pattern: exact round-trips (state
  /// snapshots must re-serialize byte-identically, so no decimal detour).
  void f64be(double v);
  void raw(std::span<const std::uint8_t> data);
  void raw(std::string_view data);
  /// Appends `n` copies of `fill`.
  void pad(std::size_t n, std::uint8_t fill = 0);

  /// Overwrites 2/4 bytes at `offset` (must already be written).
  void patch_u16be(std::size_t offset, std::uint16_t v);
  void patch_u32be(std::size_t offset, std::uint32_t v);

  std::size_t size() const { return buf_.size(); }
  const Bytes& bytes() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Sequential reader over a borrowed byte span. Throws fiat::ParseError on
/// out-of-bounds reads so codecs never read past malformed input.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16be();
  std::uint32_t u32be();
  std::uint64_t u64be();
  std::uint16_t u16le();
  std::uint32_t u32le();
  std::uint64_t u64le();
  double f64be();
  /// Returns a view of the next `n` bytes and advances.
  std::span<const std::uint8_t> raw(std::size_t n);
  std::string str(std::size_t n);
  void skip(std::size_t n);

  std::size_t offset() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }
  /// Peek without advancing; throws if fewer than n bytes remain.
  std::uint8_t peek_u8(std::size_t ahead = 0) const;

 private:
  void require(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace fiat::util
