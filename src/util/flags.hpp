// Minimal command-line flag parsing for the fiat CLI tool: positional
// arguments plus --key value / --switch options.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace fiat::util {

class Flags {
 public:
  /// Parses argv[start..). Tokens starting with "--" are options; an option
  /// followed by a non-option token consumes it as its value, otherwise it
  /// is a boolean switch. Everything else is positional.
  static Flags parse(int argc, char** argv, int start = 1);

  const std::vector<std::string>& positional() const { return positional_; }
  std::optional<std::string> get(const std::string& name) const;
  std::string get_or(const std::string& name, const std::string& fallback) const;
  bool has(const std::string& name) const { return options_.contains(name); }
  double number_or(const std::string& name, double fallback) const;

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> options_;
};

}  // namespace fiat::util
