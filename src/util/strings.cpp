#include "util/strings.hpp"

#include <cctype>
#include <cstdio>

namespace fiat::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view delim) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(delim);
    out.append(parts[i]);
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace fiat::util
