// Open-addressing hash tables for the packet hot path (DESIGN.md §10).
//
// FlatMap / FlatSet replace node-based std::unordered_map / std::set on the
// per-packet path: one contiguous slot array, power-of-two capacity, robin-
// hood insertion and backward-shift deletion (no tombstones), and a cached
// 64-bit hash per slot so growth and deletion never re-hash keys. Probing is
// linear, so a lookup touches one cache line in the common case instead of
// chasing list nodes — and inserting never allocates except when the whole
// table grows.
//
// Determinism: for a fixed sequence of operations the slot layout (and thus
// iteration order) is identical across runs, but it is NOT sorted and NOT
// stable under different insertion orders. Anything exported to users
// (reports, telemetry) must sort at the boundary; see DESIGN.md §10.3.
//
// Invalidation: any insert or erase may move entries (robin-hood shifts,
// growth), so pointers/iterators into the table are invalidated by every
// mutation. The hot-path users (rules.cpp, predictability.cpp) only hold a
// value pointer between one lookup and the next mutation-free use.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iterator>
#include <type_traits>
#include <utility>
#include <vector>

namespace fiat::util {

/// splitmix64 finalizer: avalanches a 64-bit value so low bits of the input
/// (e.g. small integer keys) spread over the whole probe range.
inline std::uint64_t flat_mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Default hasher: integral keys go straight through the mixer; everything
/// else avalanches std::hash (libstdc++'s identity hash for ints would
/// cluster sequential keys in a power-of-two table).
template <class Key, class Enable = void>
struct FlatHash {
  std::uint64_t operator()(const Key& key) const {
    return flat_mix64(static_cast<std::uint64_t>(std::hash<Key>{}(key)));
  }
};

template <class Key>
struct FlatHash<Key, std::enable_if_t<std::is_integral_v<Key> || std::is_enum_v<Key>>> {
  std::uint64_t operator()(Key key) const {
    return flat_mix64(static_cast<std::uint64_t>(key));
  }
};

namespace detail {

/// Shared robin-hood core. `Entry` is the stored record (Key for sets,
/// std::pair<Key, T> for maps); `KeyOf` projects the key out of an entry.
template <class Entry, class Key, class KeyOf, class Hash>
class FlatTable {
 public:
  FlatTable() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return slots_.size(); }

  void clear() {
    slots_.clear();
    hashes_.clear();
    dist_.clear();
    size_ = 0;
    ++mutations_;
  }

  /// Monotonic count of mutations that may have moved entries (inserts,
  /// erases, clears, rehashes). The batch pipeline snapshots this around a
  /// probe_batch() and re-resolves any cached pointer whose snapshot went
  /// stale instead of pessimistically re-probing everything.
  std::uint64_t mutations() const { return mutations_; }

  /// Pre-sizes the table for at least `n` entries without rehashing later.
  void reserve(std::size_t n) {
    std::size_t want = kMinCapacity;
    // Grow until `n` fits under the 7/8 load ceiling.
    while (want * 7 < n * 8) want <<= 1;
    if (want > slots_.size()) rehash(want);
  }

  Entry* find(const Key& key) {
    if (size_ == 0) return nullptr;
    return find_slot(key, Hash{}(key));
  }
  const Entry* find(const Key& key) const {
    return const_cast<FlatTable*>(this)->find(key);
  }
  bool contains(const Key& key) const { return find(key) != nullptr; }

  /// find() with a caller-supplied hash (must equal Hash{}(key)): the batch
  /// pipeline hashes all keys up front (possibly SIMD) and reuses each hash
  /// across the bucket and ban tables.
  Entry* find_hashed(const Key& key, std::uint64_t hash) {
    if (size_ == 0) return nullptr;
    return find_slot(key, hash);
  }
  const Entry* find_hashed(const Key& key, std::uint64_t hash) const {
    return const_cast<FlatTable*>(this)->find_hashed(key, hash);
  }

  /// Prefetches the cache lines a find for `hash` touches first (home slot's
  /// dist/hash/entry). Pure; harmless on an empty table.
  void prefetch(std::uint64_t hash) const {
#if defined(__GNUC__) || defined(__clang__)
    if (slots_.empty()) return;
    std::size_t i = static_cast<std::size_t>(hash) & (slots_.size() - 1);
    __builtin_prefetch(&dist_[i], 0, 1);
    __builtin_prefetch(&hashes_[i], 0, 1);
    __builtin_prefetch(&slots_[i], 0, 1);
#else
    (void)hash;
#endif
  }

  /// Inserts `entry` unless its key is present. Returns {slot, inserted}.
  /// The returned pointer is invalidated by any later mutation.
  std::pair<Entry*, bool> insert(Entry entry) {
    std::uint64_t hash = Hash{}(KeyOf{}(entry));
    return insert_hashed(std::move(entry), hash);
  }

  /// insert() with a caller-supplied hash (must equal Hash{}(key)).
  std::pair<Entry*, bool> insert_hashed(Entry entry, std::uint64_t hash) {
    if (size_ != 0) {
      if (Entry* hit = find_slot(KeyOf{}(entry), hash)) return {hit, false};
    }
    if ((size_ + 1) * 8 > slots_.size() * 7) {
      rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
    // place() may swap the new entry along a robin-hood displacement chain
    // (or grow on probe-distance overflow), so locate it again afterwards —
    // an extra probe per insert, paid only on the rare bucket-creation path.
    Key key = KeyOf{}(entry);
    place(std::move(entry), hash);
    ++mutations_;
    return {find_slot(key, hash), true};
  }

  bool erase(const Key& key) {
    if (size_ == 0) return false;
    std::uint64_t hash = Hash{}(key);
    std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(hash) & mask;
    std::uint8_t d = 1;
    while (true) {
      if (dist_[i] < d) return false;  // would have been robbed: absent
      if (hashes_[i] == hash && KeyOf{}(slots_[i]) == key) break;
      i = (i + 1) & mask;
      ++d;
      if (d == 0) return false;
    }
    // Backward-shift deletion: pull every displaced successor one slot left
    // until a home slot (dist 1) or an empty slot ends the cluster.
    std::size_t next = (i + 1) & mask;
    while (dist_[next] > 1) {
      slots_[i] = std::move(slots_[next]);
      hashes_[i] = hashes_[next];
      dist_[i] = static_cast<std::uint8_t>(dist_[next] - 1);
      i = next;
      next = (next + 1) & mask;
    }
    dist_[i] = 0;
    slots_[i] = Entry{};
    --size_;
    ++mutations_;
    return true;
  }

  // ---- iteration (skips empty slots; slot order, see header comment) -----
  template <bool Const>
  class Iter {
   public:
    using table_t = std::conditional_t<Const, const FlatTable, FlatTable>;
    using entry_t = std::conditional_t<Const, const Entry, Entry>;
    using iterator_category = std::forward_iterator_tag;
    using value_type = Entry;
    using difference_type = std::ptrdiff_t;
    using pointer = entry_t*;
    using reference = entry_t&;
    Iter(table_t* table, std::size_t i) : table_(table), i_(i) { skip(); }
    entry_t& operator*() const { return table_->slots_[i_]; }
    entry_t* operator->() const { return &table_->slots_[i_]; }
    Iter& operator++() {
      ++i_;
      skip();
      return *this;
    }
    bool operator==(const Iter& o) const { return i_ == o.i_; }

   private:
    void skip() {
      while (i_ < table_->slots_.size() && table_->dist_[i_] == 0) ++i_;
    }
    table_t* table_;
    std::size_t i_;
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;
  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, slots_.size()); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, slots_.size()); }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  Entry* find_slot(const Key& key, std::uint64_t hash) {
    std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(hash) & mask;
    std::uint8_t d = 1;
    while (true) {
      // Robin-hood early exit: once our probe distance exceeds the
      // incumbent's, our key (had it been inserted) would occupy this slot.
      if (dist_[i] < d) return nullptr;
      if (hashes_[i] == hash && KeyOf{}(slots_[i]) == key) return &slots_[i];
      i = (i + 1) & mask;
      ++d;
      // Stored distances are capped at 255 (insert grows instead), so a
      // wrapped probe counter proves absence.
      if (d == 0) return nullptr;
    }
  }

  /// Robin-hood placement of a key known to be absent.
  void place(Entry entry, std::uint64_t hash) {
    std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(hash) & mask;
    std::uint8_t d = 1;
    while (true) {
      if (dist_[i] == 0) {
        slots_[i] = std::move(entry);
        hashes_[i] = hash;
        dist_[i] = d;
        ++size_;
        return;
      }
      if (dist_[i] < d) {
        // Rob the rich: park the in-flight entry, keep walking the evictee.
        std::swap(slots_[i], entry);
        std::swap(hashes_[i], hash);
        std::swap(dist_[i], d);
      }
      i = (i + 1) & mask;
      ++d;
      if (d == 0) {
        // Probe distance overflowed its uint8 budget. Unreachable under the
        // 7/8 load ceiling with a sane hash, but a pathological hash must
        // degrade to a rehash, not to corruption: grow and re-place the
        // in-flight entry from scratch.
        rehash(slots_.size() * 2);
        mask = slots_.size() - 1;
        i = static_cast<std::size_t>(hash) & mask;
        d = 1;
      }
    }
  }

  void rehash(std::size_t new_capacity) {
    ++mutations_;  // every entry may move (covers reserve() too)
    std::vector<Entry> old_slots = std::move(slots_);
    std::vector<std::uint64_t> old_hashes = std::move(hashes_);
    std::vector<std::uint8_t> old_dist = std::move(dist_);
    slots_.assign(new_capacity, Entry{});
    hashes_.assign(new_capacity, 0);
    dist_.assign(new_capacity, 0);
    size_ = 0;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (old_dist[i] != 0) place(std::move(old_slots[i]), old_hashes[i]);
    }
  }

  std::vector<Entry> slots_;
  std::vector<std::uint64_t> hashes_;  // cached full hash per occupied slot
  std::vector<std::uint8_t> dist_;     // 0 = empty, else probe distance + 1
  std::size_t size_ = 0;
  std::uint64_t mutations_ = 0;
};

struct IdentityKeyOf {
  template <class Key>
  const Key& operator()(const Key& key) const {
    return key;
  }
};

struct PairKeyOf {
  template <class Pair>
  const auto& operator()(const Pair& pair) const {
    return pair.first;
  }
};

}  // namespace detail

/// Open-addressing map. Entries are std::pair<Key, T>; iteration yields the
/// pair (mutate only `.second`). See the header comment for the
/// determinism/invalidation contract.
template <class Key, class T, class Hash = FlatHash<Key>>
class FlatMap {
  using Table = detail::FlatTable<std::pair<Key, T>, Key, detail::PairKeyOf, Hash>;

 public:
  using value_type = std::pair<Key, T>;

  std::size_t size() const { return table_.size(); }
  bool empty() const { return table_.empty(); }
  std::size_t capacity() const { return table_.capacity(); }
  void clear() { table_.clear(); }
  void reserve(std::size_t n) { table_.reserve(n); }

  /// Value for `key`, default-constructing it on first access (the
  /// `buckets_[key]` idiom). Pointer validity: see header comment.
  T& operator[](const Key& key) {
    return table_.insert(value_type{key, T{}}).first->second;
  }

  T* find(const Key& key) {
    auto* entry = table_.find(key);
    return entry ? &entry->second : nullptr;
  }
  const T* find(const Key& key) const {
    auto* entry = table_.find(key);
    return entry ? &entry->second : nullptr;
  }
  bool contains(const Key& key) const { return table_.contains(key); }

  /// What Hash{} would say — batch callers hash once and reuse the value
  /// for find_hashed/try_emplace_hashed/prefetch across several tables.
  static std::uint64_t hash_key(const Key& key) { return Hash{}(key); }

  T* find_hashed(const Key& key, std::uint64_t hash) {
    auto* entry = table_.find_hashed(key, hash);
    return entry ? &entry->second : nullptr;
  }
  const T* find_hashed(const Key& key, std::uint64_t hash) const {
    auto* entry = table_.find_hashed(key, hash);
    return entry ? &entry->second : nullptr;
  }

  /// See FlatTable::prefetch.
  void prefetch(std::uint64_t hash) const { table_.prefetch(hash); }

  /// See FlatTable::mutations.
  std::uint64_t mutations() const { return table_.mutations(); }

  /// Bulk lookup for the batch hot path: out[i] = find(keys[i]) at call
  /// time, with hashes[i] == hash_key(keys[i]) computed up front (possibly
  /// SIMD). Prefetches each probe's home slot a fixed window ahead so
  /// independent lookups overlap their cache misses instead of serializing
  /// them. Duplicate keys within one batch resolve to the same slot; every
  /// returned pointer obeys the usual invalidation contract at once (any
  /// later insert/erase invalidates all of them — watch mutations()).
  void probe_batch(const Key* keys, const std::uint64_t* hashes, T** out,
                   std::size_t n) {
    constexpr std::size_t kWindow = 8;
    std::size_t warm = n < kWindow ? n : kWindow;
    for (std::size_t i = 0; i < warm; ++i) table_.prefetch(hashes[i]);
    for (std::size_t i = 0; i < n; ++i) {
      if (i + kWindow < n) table_.prefetch(hashes[i + kWindow]);
      auto* entry = table_.find_hashed(keys[i], hashes[i]);
      out[i] = entry ? &entry->second : nullptr;
    }
  }

  /// Returns {value pointer, inserted}.
  std::pair<T*, bool> try_emplace(const Key& key, T value = T{}) {
    auto [entry, inserted] = table_.insert(value_type{key, std::move(value)});
    return {&entry->second, inserted};
  }

  /// try_emplace() with a caller-supplied hash (must equal hash_key(key)).
  std::pair<T*, bool> try_emplace_hashed(const Key& key, std::uint64_t hash,
                                         T value = T{}) {
    auto [entry, inserted] =
        table_.insert_hashed(value_type{key, std::move(value)}, hash);
    return {&entry->second, inserted};
  }

  bool erase(const Key& key) { return table_.erase(key); }

  auto begin() { return table_.begin(); }
  auto end() { return table_.end(); }
  auto begin() const { return table_.begin(); }
  auto end() const { return table_.end(); }

 private:
  Table table_;
};

/// Open-addressing set with the same layout/determinism contract as FlatMap.
template <class Key, class Hash = FlatHash<Key>>
class FlatSet {
  using Table = detail::FlatTable<Key, Key, detail::IdentityKeyOf, Hash>;

 public:
  std::size_t size() const { return table_.size(); }
  bool empty() const { return table_.empty(); }
  std::size_t capacity() const { return table_.capacity(); }
  void clear() { table_.clear(); }
  void reserve(std::size_t n) { table_.reserve(n); }

  /// True if `key` was newly inserted (false: already present).
  bool insert(const Key& key) { return table_.insert(Key{key}).second; }
  bool contains(const Key& key) const { return table_.contains(key); }
  bool erase(const Key& key) { return table_.erase(key); }

  /// What Hash{} would say (see FlatMap::hash_key).
  static std::uint64_t hash_key(const Key& key) { return Hash{}(key); }

  /// contains() with a caller-supplied hash (must equal hash_key(key)).
  bool contains_hashed(const Key& key, std::uint64_t hash) const {
    return table_.find_hashed(key, hash) != nullptr;
  }

  /// See FlatTable::prefetch.
  void prefetch(std::uint64_t hash) const { table_.prefetch(hash); }

  /// See FlatTable::mutations.
  std::uint64_t mutations() const { return table_.mutations(); }

  auto begin() const { return table_.begin(); }
  auto end() const { return table_.end(); }

 private:
  Table table_;
};

}  // namespace fiat::util
